package kanon

import (
	"strings"
	"testing"
)

var (
	exampleHeader = []string{"a", "b", "c", "d"}
	exampleRows   = [][]string{
		{"1", "0", "1", "0"},
		{"1", "1", "1", "0"},
		{"0", "1", "1", "0"},
	}
)

func allAlgorithms() []Algorithm {
	return []Algorithm{
		AlgoGreedyBall, AlgoGreedyExhaustive, AlgoPattern, AlgoExact,
		AlgoKMember, AlgoMondrian, AlgoSorted, AlgoRandom,
	}
}

func TestAnonymizePaperExampleAllAlgorithms(t *testing.T) {
	for _, a := range allAlgorithms() {
		t.Run(a.String(), func(t *testing.T) {
			res, err := Anonymize(exampleHeader, exampleRows, 3, &Options{Algorithm: a})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost != 6 {
				t.Errorf("cost = %d, want 6 (the §4 example has a forced single group)", res.Cost)
			}
			ok, err := Verify(res.Header, res.Rows, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Error("output fails Verify")
			}
			if Cost(res.Rows) != res.Cost {
				t.Errorf("Cost(rows) = %d, want %d", Cost(res.Rows), res.Cost)
			}
			if len(res.Groups) != 1 || len(res.Groups[0]) != 3 {
				t.Errorf("groups = %v, want one group of 3", res.Groups)
			}
			if res.Optimal != (a == AlgoExact) {
				t.Errorf("Optimal = %v for %v", res.Optimal, a)
			}
		})
	}
}

func TestAnonymizeGroupsAreTextuallyIdentical(t *testing.T) {
	header := []string{"x", "y", "z"}
	rows := [][]string{
		{"p", "q", "r"}, {"p", "q", "s"}, {"a", "b", "c"},
		{"a", "b", "d"}, {"p", "q", "t"}, {"a", "b", "e"},
	}
	res, err := Anonymize(header, rows, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		first := strings.Join(res.Rows[g[0]], "|")
		for _, i := range g[1:] {
			if got := strings.Join(res.Rows[i], "|"); got != first {
				t.Errorf("group %v not identical: %q vs %q", g, got, first)
			}
		}
		if len(g) < 3 {
			t.Errorf("group %v smaller than k", g)
		}
	}
	// This instance has two obvious clusters; cost should be 6 (one
	// starred column per cluster of 3).
	if res.Cost != 6 {
		t.Errorf("cost = %d, want 6", res.Cost)
	}
}

func TestAnonymizeInputValidation(t *testing.T) {
	if _, err := Anonymize(nil, exampleRows, 2, nil); err == nil {
		t.Error("accepted empty header")
	}
	if _, err := Anonymize(exampleHeader, nil, 2, nil); err == nil {
		t.Error("accepted no rows")
	}
	if _, err := Anonymize(exampleHeader, [][]string{{"1"}}, 1, nil); err == nil {
		t.Error("accepted ragged row")
	}
	if _, err := Anonymize(exampleHeader, exampleRows, 0, nil); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Anonymize(exampleHeader, exampleRows, 4, nil); err == nil {
		t.Error("accepted k > n")
	}
	if _, err := Anonymize(exampleHeader, exampleRows, 2, &Options{Algorithm: Algorithm(99)}); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestVerify(t *testing.T) {
	ok, err := Verify(exampleHeader, exampleRows, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("distinct rows reported 2-anonymous")
	}
	starred := [][]string{
		{"*", "*", "1", "0"}, {"*", "*", "1", "0"}, {"*", "*", "1", "0"},
	}
	ok, err = Verify(exampleHeader, starred, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("identical starred rows reported not 3-anonymous")
	}
	if _, err := Verify(nil, starred, 2); err == nil {
		t.Error("accepted empty header")
	}
}

func TestCost(t *testing.T) {
	rows := [][]string{{"*", "x"}, {"y", "*"}, {"*", "*"}}
	if got := Cost(rows); got != 4 {
		t.Errorf("Cost = %d, want 4", got)
	}
	if got := Cost(nil); got != 0 {
		t.Errorf("Cost(nil) = %d, want 0", got)
	}
}

func TestOptimalCost(t *testing.T) {
	got, err := OptimalCost(exampleHeader, exampleRows, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("OptimalCost = %d, want 6", got)
	}
	if _, err := OptimalCost(nil, nil, 2); err == nil {
		t.Error("accepted empty input")
	}
}

func TestAlgorithmStringRoundTrip(t *testing.T) {
	for _, a := range allAlgorithms() {
		back, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", a.String(), err)
		}
		if back != a {
			t.Errorf("round trip %v → %q → %v", a, a.String(), back)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm accepted junk")
	}
	if got := Algorithm(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown algorithm String = %q", got)
	}
}

func TestBound(t *testing.T) {
	if got := Bound(AlgoExact, 3, 8); got != 1 {
		t.Errorf("exact bound = %v, want 1", got)
	}
	if got := Bound(AlgoSorted, 3, 8); got != 0 {
		t.Errorf("baseline bound = %v, want 0 (no guarantee)", got)
	}
	if Bound(AlgoGreedyExhaustive, 3, 8) <= 1 || Bound(AlgoGreedyBall, 3, 8) <= 1 {
		t.Error("greedy bounds should exceed 1")
	}
}

func TestAnonymizeStarInputRoundTrip(t *testing.T) {
	// Tables containing stars already (e.g. re-anonymizing a release)
	// are accepted; stars compare equal to each other.
	header := []string{"a", "b"}
	rows := [][]string{{"*", "1"}, {"*", "1"}, {"*", "2"}, {"*", "2"}}
	res, err := Anonymize(header, rows, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Errorf("cost = %d, want 0 (already 2-anonymous)", res.Cost)
	}
}

func TestAnonymizeDoesNotMutateInput(t *testing.T) {
	rows := [][]string{
		{"1", "0", "1", "0"},
		{"1", "1", "1", "0"},
		{"0", "1", "1", "0"},
	}
	if _, err := Anonymize(exampleHeader, rows, 3, nil); err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "1" || rows[2][1] != "1" {
		t.Error("Anonymize mutated its input")
	}
}

func TestAnonymizeK1NoOp(t *testing.T) {
	res, err := Anonymize(exampleHeader, exampleRows, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Errorf("k=1 cost = %d", res.Cost)
	}
	for i, r := range res.Rows {
		if strings.Join(r, ",") != strings.Join(exampleRows[i], ",") {
			t.Errorf("k=1 changed row %d", i)
		}
	}
}

func TestRefineOptionNeverWorse(t *testing.T) {
	header := []string{"a", "b", "c"}
	rows := [][]string{
		{"1", "1", "x"}, {"1", "1", "y"}, {"2", "2", "x"},
		{"2", "2", "y"}, {"1", "1", "z"}, {"2", "2", "z"},
		{"3", "3", "x"}, {"3", "3", "y"}, {"3", "3", "z"},
	}
	for _, a := range []Algorithm{AlgoGreedyBall, AlgoRandom, AlgoSorted} {
		base, err := Anonymize(header, rows, 3, &Options{Algorithm: a})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := Anonymize(header, rows, 3, &Options{Algorithm: a, Refine: true})
		if err != nil {
			t.Fatal(err)
		}
		if refined.Cost > base.Cost {
			t.Errorf("%v: refine increased cost %d → %d", a, base.Cost, refined.Cost)
		}
		ok, err := Verify(refined.Header, refined.Rows, 3)
		if err != nil || !ok {
			t.Errorf("%v: refined output not 3-anonymous (err=%v)", a, err)
		}
	}
	// On this instance the clusters are clean: refined random chunking
	// should reach the optimum 9 (each cluster stars only column c).
	refined, err := Anonymize(header, rows, 3, &Options{Algorithm: AlgoRandom, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalCost(header, rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Cost != opt {
		t.Logf("refined random cost %d vs OPT %d (local search is not guaranteed to reach OPT)", refined.Cost, opt)
	}
}

func TestColumnWeights(t *testing.T) {
	header := []string{"a", "b"}
	rows := [][]string{
		{"1", "7"}, {"1", "8"}, {"2", "7"}, {"2", "8"},
	}
	// Column a is expensive: the release must group by a and star b.
	res, err := Anonymize(header, rows, 2, &Options{ColumnWeights: []int{100, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightedCost != 4 {
		t.Errorf("weighted cost = %d, want 4", res.WeightedCost)
	}
	for i, r := range res.Rows {
		if r[0] == Star {
			t.Errorf("row %d starred the expensive column: %v", i, r)
		}
	}
	// Exact agrees under the same weights.
	ex, err := Anonymize(header, rows, 2, &Options{Algorithm: AlgoExact, ColumnWeights: []int{100, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ex.WeightedCost != 4 {
		t.Errorf("exact weighted cost = %d, want 4", ex.WeightedCost)
	}
	// Nil weights: WeightedCost equals Cost.
	plain, err := Anonymize(header, rows, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.WeightedCost != plain.Cost {
		t.Errorf("nil-weight WeightedCost %d != Cost %d", plain.WeightedCost, plain.Cost)
	}
	// Validation.
	if _, err := Anonymize(header, rows, 2, &Options{ColumnWeights: []int{1}}); err == nil {
		t.Error("accepted wrong-length weights")
	}
	if _, err := Anonymize(header, rows, 2, &Options{ColumnWeights: []int{1, -1}}); err == nil {
		t.Error("accepted negative weight")
	}
}
