package kanon

// Benchmarks for the extension subsystems built on top of the paper's
// algorithms: the local-search refiner, the bounded-memory streaming
// pipeline, the full-domain lattice, and the parallel distance matrix.

import (
	"math/rand"
	"testing"

	"kanon/internal/algo"
	"kanon/internal/dataset"
	"kanon/internal/generalize"
	"kanon/internal/lattice"
	"kanon/internal/metric"
	"kanon/internal/refine"
	"kanon/internal/stream"
)

func BenchmarkRefine(b *testing.B) {
	tab := benchTable(b, 150, 6)
	base, err := algo.GreedyBall(tab, 3, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Refinement mutates the partition; clone per iteration.
		p := base.Partition
		groups := make([][]int, len(p.Groups))
		for gi, g := range p.Groups {
			groups[gi] = append([]int(nil), g...)
		}
		clone := *p
		clone.Groups = groups
		if _, err := refine.Partition(tab, &clone, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStream(b *testing.B) {
	for _, n := range []int{2000, 8000} {
		tab := dataset.Census(rand.New(rand.NewSource(2)), n, 8)
		b.Run("n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stream.Anonymize(tab, 5, &stream.Options{BlockRows: 1000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLatticeSearch(b *testing.B) {
	tab := dataset.Census(rand.New(rand.NewSource(3)), 200, 6)
	scheme := generalize.ForTable(tab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lattice.Search(tab, scheme, 3, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixParallel(b *testing.B) {
	for _, n := range []int{200, 1000, 3000} {
		tab := dataset.Census(rand.New(rand.NewSource(4)), n, 8)
		b.Run("n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				metric.NewMatrix(tab)
			}
		})
	}
}
