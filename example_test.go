package kanon_test

// Runnable documentation: these examples appear in godoc and are
// executed by go test, so the documented behavior cannot drift.

import (
	"fmt"

	"kanon"
)

// ExampleAnonymize shows the §4 worked example from the paper:
// V = {1010, 1110, 0110} with k = 3 collapses to one group keeping the
// common suffix.
func ExampleAnonymize() {
	header := []string{"b1", "b2", "b3", "b4"}
	rows := [][]string{
		{"1", "0", "1", "0"},
		{"1", "1", "1", "0"},
		{"0", "1", "1", "0"},
	}
	res, err := kanon.Anonymize(header, rows, 3, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("cost:", res.Cost)
	for _, r := range res.Rows {
		fmt.Println(r)
	}
	// Output:
	// cost: 6
	// [* * 1 0]
	// [* * 1 0]
	// [* * 1 0]
}

// ExampleAnonymize_algorithms selects the provably optimal solver for a
// small table and compares it with the default greedy.
func ExampleAnonymize_algorithms() {
	header := []string{"age", "zip"}
	rows := [][]string{
		{"34", "15213"}, {"36", "15213"},
		{"34", "15217"}, {"47", "15217"},
	}
	exact, _ := kanon.Anonymize(header, rows, 2, &kanon.Options{Algorithm: kanon.AlgoExact})
	greedy, _ := kanon.Anonymize(header, rows, 2, nil)
	refined, _ := kanon.Anonymize(header, rows, 2, &kanon.Options{Refine: true})
	fmt.Println("exact:", exact.Cost, "greedy:", greedy.Cost, "greedy+refine:", refined.Cost)
	fmt.Println("optimal flag:", exact.Optimal)
	// Output:
	// exact: 4 greedy: 8 greedy+refine: 4
	// optimal flag: true
}

// ExampleVerify checks a release independently of how it was produced.
func ExampleVerify() {
	header := []string{"a", "b"}
	release := [][]string{
		{"*", "x"}, {"*", "x"}, {"*", "y"}, {"*", "y"},
	}
	ok, _ := kanon.Verify(header, release, 2)
	fmt.Println("2-anonymous:", ok, "suppressed:", kanon.Cost(release))
	// Output:
	// 2-anonymous: true suppressed: 4
}

// ExampleBound reports the proven approximation guarantees.
func ExampleBound() {
	fmt.Printf("Theorem 4.1 (k=3):   %.1f\n", kanon.Bound(kanon.AlgoGreedyExhaustive, 3, 8))
	fmt.Printf("Theorem 4.2 (k=3, m=8): %.1f\n", kanon.Bound(kanon.AlgoGreedyBall, 3, 8))
	// Output:
	// Theorem 4.1 (k=3):   18.9
	// Theorem 4.2 (k=3, m=8): 55.4
}

// ExampleAnonymize_columnWeights prices the zip column 100× so the
// release suppresses elsewhere.
func ExampleAnonymize_columnWeights() {
	header := []string{"zip", "age"}
	rows := [][]string{
		{"15213", "34"}, {"15213", "47"},
		{"15217", "36"}, {"15217", "22"},
	}
	res, err := kanon.Anonymize(header, rows, 2, &kanon.Options{
		ColumnWeights: []int{100, 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("stars:", res.Cost, "weighted:", res.WeightedCost)
	for _, r := range res.Rows {
		fmt.Println(r)
	}
	// Output:
	// stars: 4 weighted: 4
	// [15213 *]
	// [15213 *]
	// [15217 *]
	// [15217 *]
}
