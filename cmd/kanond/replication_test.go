package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"math/rand"

	"kanon/internal/dataset"
	"kanon/internal/relation"
	"kanon/internal/stream"
)

// reservePorts binds n ephemeral listeners, records their addresses,
// and releases them — the replicated cluster needs every node's
// address before any node starts, since each one names its peers on
// the command line.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	return addrs
}

// submitKeyed posts a CSV body with an Idempotency-Key and returns the
// response, decoded status, and replay marker.
func submitKeyed(t *testing.T, base, query, key string, body []byte) (jobStatus, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs?"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit %q: status %d, id %q", query, resp.StatusCode, st.ID)
	}
	return st, resp
}

// countReplicaJobs asks one node how many job records its store holds.
func countReplicaJobs(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/v1/replica/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	return len(jobs)
}

// TestReplicatedFailoverByteIdentical is the no-shared-filesystem
// kill-and-steal e2e: three kanond processes with three private data
// directories converge through -replicate-peers pull loops. A long
// multi-block job is submitted (with an Idempotency-Key) through one
// node; the node running it is SIGKILLed mid-stream; a survivor must
// steal the lease from its own replica of the job, finish it, and
// release bytes identical to a single-node in-process run. Replaying
// the submission with the same key against a survivor must return the
// original job — exactly one job exists cluster-wide.
func TestReplicatedFailoverByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns three subprocesses and runs a multi-second job")
	}

	const kAnon, blockRows = 3, 500
	rng := rand.New(rand.NewSource(97))
	tab := dataset.Census(rng, 10000, 6)
	header, rows := tableOf(tab)
	totalBlocks := (tab.Len() + blockRows - 1) / blockRows
	var body bytes.Buffer
	if err := relation.WriteCSVRows(&body, header, rows); err != nil {
		t.Fatal(err)
	}

	// Boot 3 nodes, each with a PRIVATE data directory; addresses are
	// reserved up front so every node can name its peers.
	ids := []string{"node-a", "node-b", "node-c"}
	addrs := reservePorts(t, len(ids))
	dirs := make(map[string]string, len(ids))
	nodes := make(map[string]*node, len(ids))
	for i, id := range ids {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, "http://"+a)
			}
		}
		dir := t.TempDir()
		dirs[id] = dir
		cmd, addr := startHelper(t, dir,
			"-addr", addrs[i],
			"-node-id", id,
			"-replicate-peers", strings.Join(peers, ","),
			"-replicate-interval", "100ms",
			"-lease-ttl", "2s", "-claim-interval", "100ms", "-workers", "2")
		n := &node{id: id, cmd: cmd, base: "http://" + addr}
		nodes[id] = n
		defer func() {
			_ = n.cmd.Process.Signal(syscall.SIGTERM)
			_ = n.cmd.Wait()
		}()
	}
	entry := nodes["node-a"].base

	const idemKey = "e2e-replicated-1"
	streamJob, resp := submitKeyed(t, entry,
		fmt.Sprintf("k=%d&block=%d&refine=true&workers=1", kAnon, blockRows), idemKey, body.Bytes())
	if got := resp.Header.Get("Idempotency-Key"); got != idemKey {
		t.Errorf("acceptance did not echo the key: %q", got)
	}

	// Wait until the job is demonstrably mid-flight on some node: the
	// claimant's own directory holds committed blocks with more to go.
	var victim *node
	deadline := time.Now().Add(60 * time.Second)
	for victim == nil {
		st := getStatus(t, entry, streamJob.ID)
		if st.State == "running" && st.Node != "" {
			n := len(statFiles(t, dirs[st.Node], streamJob.ID))
			if n >= 1 && n < totalBlocks {
				victim = nodes[st.Node]
				break
			}
			if n >= totalBlocks {
				t.Fatalf("job finished all %d blocks before the kill; enlarge the instance", totalBlocks)
			}
		}
		if st.State == "succeeded" {
			t.Fatal("job succeeded before the kill window; enlarge the instance")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a mid-flight claimed state")
		}
		time.Sleep(time.Millisecond)
	}
	// Give the pull loops one more interval so survivors hold a replica
	// that includes at least the early checkpoints, then kill.
	time.Sleep(300 * time.Millisecond)
	replicated := 0
	for id, dir := range dirs {
		if id != victim.id {
			replicated += len(statFiles(t, dir, streamJob.ID))
		}
	}
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.cmd.Wait()
	delete(nodes, victim.id)
	t.Logf("killed %s mid-stream; survivors hold %d replicated checkpoint files", victim.id, replicated)

	// A survivor steals the lease from its replica and finishes.
	var survivor *node
	for _, n := range nodes {
		survivor = n
		break
	}
	final := waitSucceeded(t, survivor.base, streamJob.ID, 180*time.Second)
	if final.Node == victim.id || final.Node == "" {
		t.Fatalf("job finished under node %q, want a surviving peer (killed %s)", final.Node, victim.id)
	}

	// Byte identity with an uninterrupted single-node run.
	sres, err := stream.Anonymize(tab, kAnon, &stream.Options{BlockRows: blockRows, Refine: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := make([][]string, sres.Anonymized.Len())
	for i := range wantRows {
		wantRows[i] = sres.Anonymized.Strings(i)
	}
	want := renderCSV(t, header, wantRows)

	// Every survivor converges to the same release bytes — the result
	// spool replicates to nodes that never ran the job.
	for _, n := range nodes {
		waitSucceeded(t, n.base, streamJob.ID, 60*time.Second)
		deadline := time.Now().Add(60 * time.Second)
		for {
			rr, err := http.Get(n.base + "/v1/jobs/" + streamJob.ID + "/result")
			if err != nil {
				t.Fatal(err)
			}
			got, _ := io.ReadAll(rr.Body)
			rr.Body.Close()
			if rr.StatusCode == http.StatusOK {
				if !bytes.Equal(got, want) {
					t.Fatalf("release served by %s differs from single-node run (%d vs %d bytes)",
						n.id, len(got), len(want))
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("result never became readable on %s (last status %d)", n.id, rr.StatusCode)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Exactly-once: replaying the submission with the same key against
	// each survivor returns the original job, marked as a replay, and
	// no node's store grew a twin.
	for _, n := range nodes {
		st, resp := submitKeyed(t, n.base,
			fmt.Sprintf("k=%d&block=%d&refine=true&workers=1", kAnon, blockRows), idemKey, body.Bytes())
		if st.ID != streamJob.ID {
			t.Fatalf("replay via %s admitted a twin: %s (original %s)", n.id, st.ID, streamJob.ID)
		}
		if resp.Header.Get("Idempotency-Replay") != "true" {
			t.Errorf("replay via %s missing Idempotency-Replay: true", n.id)
		}
		if got := countReplicaJobs(t, n.base); got != 1 {
			t.Fatalf("node %s holds %d job records after the replay, want exactly 1", n.id, got)
		}
	}
}

// TestReplicatePeersFlagValidation: misconfiguration fails at startup
// with a clear error, not at the first pull.
func TestReplicatePeersFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-replicate-peers", "http://127.0.0.1:1"},                                                                         // no -data-dir
		{"-data-dir", t.TempDir(), "-replicate-peers", "http://127.0.0.1:1"},                                               // no -node-id
		{"-data-dir", t.TempDir(), "-node-id", "n1", "-replicate-peers", "not-a-url"},                                      // bad peer
		{"-data-dir", t.TempDir(), "-node-id", "n1", "-replicate-peers", " , "},                                            // empty list
		{"-addr", "127.0.0.1:0", "-data-dir", t.TempDir(), "-node-id", "bad/id", "-replicate-peers", "http://127.0.0.1:1"}, // bad node id
	} {
		var errOut bytes.Buffer
		if err := run(args, io.Discard, &errOut, nil, nil); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
