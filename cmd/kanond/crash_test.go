package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"kanon/internal/dataset"
	"kanon/internal/relation"
	"kanon/internal/stream"

	"math/rand"
)

// TestMain doubles as the crash test's server process: when re-executed
// with KANOND_HELPER=1 the test binary runs the real kanond loop
// instead of the test suite, so SIGKILL hits an actual process — not a
// goroutine the test could never kill uncleanly.
func TestMain(m *testing.M) {
	if os.Getenv("KANOND_HELPER") == "1" {
		args := strings.Split(os.Getenv("KANOND_HELPER_ARGS"), "\x1f")
		if err := run(args, os.Stdout, os.Stderr, nil, nil); err != nil {
			fmt.Fprintln(os.Stderr, "helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startHelper re-execs the test binary as a kanond server over dataDir
// and returns the child plus its bound address (scraped from the
// kanond_listening log event). extra flags are appended — the cluster
// e2e passes -node-id and lease knobs through here.
func startHelper(t *testing.T, dataDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-drain", "2s", "-log=true"}
	args = append(args, extra...)
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"KANOND_HELPER=1",
		"KANOND_HELPER_ARGS="+strings.Join(args, "\x1f"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			var ev struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Msg == "kanond_listening" {
				select {
				case addrCh <- ev.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("helper server never became ready")
		return nil, ""
	}
}

// statFiles returns the committed checkpoint markers of a job, mapped
// to their mtimes.
func statFiles(t *testing.T, dataDir, jobID string) map[string]time.Time {
	t.Helper()
	dir := filepath.Join(dataDir, "jobs", jobID, "checkpoints")
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	out := make(map[string]time.Time)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".stat.json") {
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = info.ModTime()
		}
	}
	return out
}

// TestCrashRecoveryResumesByteIdentical is the kill-and-restart e2e:
// a multi-block refine job is SIGKILLed mid-run, the server restarts
// over the same data directory, and the recovered job must (a) release
// bytes identical to an uninterrupted run and (b) replay — not
// recompute — the blocks that were checkpointed before the kill.
func TestCrashRecoveryResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and runs a multi-second job")
	}
	dataDir := t.TempDir()
	const kAnon, blockRows = 3, 500
	rng := rand.New(rand.NewSource(71))
	tab := dataset.Census(rng, 10000, 6)
	var body bytes.Buffer
	header := tab.Schema().Names()
	rows := make([][]string, tab.Len())
	for i := range rows {
		rows[i] = tab.Strings(i)
	}
	if err := relation.WriteCSVRows(&body, header, rows); err != nil {
		t.Fatal(err)
	}

	cmd, addr := startHelper(t, dataDir)
	base := "http://" + addr
	resp, err := http.Post(
		fmt.Sprintf("%s/v1/jobs?k=%d&block=%d&refine=true&workers=1", base, kAnon, blockRows),
		"text/csv", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, st.ID)
	}

	// Kill the process the moment the run is demonstrably mid-flight:
	// some blocks committed, some still to come.
	totalBlocks := (tab.Len() + blockRows - 1) / blockRows
	deadline := time.Now().Add(60 * time.Second)
	for {
		n := len(statFiles(t, dataDir, st.ID))
		if n >= 1 && n < totalBlocks {
			break
		}
		if n >= totalBlocks {
			t.Fatalf("job finished all %d blocks before the kill; enlarge the instance", totalBlocks)
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint ever appeared")
		}
		time.Sleep(time.Millisecond)
	}
	preKill := statFiles(t, dataDir, st.ID)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	if len(preKill) == 0 || len(preKill) >= totalBlocks {
		t.Fatalf("kill landed outside the mid-run window: %d of %d blocks", len(preKill), totalBlocks)
	}

	// Restart over the same directory; recovery re-admits the job.
	cmd2, addr2 := startHelper(t, dataDir)
	defer func() {
		_ = cmd2.Process.Signal(syscall.SIGTERM)
		_ = cmd2.Wait()
	}()
	base2 := "http://" + addr2
	deadline = time.Now().Add(120 * time.Second)
	for {
		sr, err := http.Get(base2 + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(sr.Body).Decode(&st)
		sr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "succeeded" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("recovered job ended in %q", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	rr, err := http.Get(base2 + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", rr.StatusCode)
	}

	// (a) Byte identity with an uninterrupted run of the same pipeline.
	sres, err := stream.Anonymize(tab, kAnon, &stream.Options{BlockRows: blockRows, Refine: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := make([][]string, sres.Anonymized.Len())
	for i := range wantRows {
		wantRows[i] = sres.Anonymized.Strings(i)
	}
	var want bytes.Buffer
	if err := relation.WriteCSVRows(&want, header, wantRows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("resumed release differs from uninterrupted run (%d vs %d bytes)", len(got), want.Len())
	}

	// (b) Pre-kill checkpoints were replayed, not recomputed: their
	// commit markers are untouched, and the server counted the replays.
	postRun := statFiles(t, dataDir, st.ID)
	for name, mtime := range preKill {
		after, ok := postRun[name]
		if !ok {
			t.Fatalf("checkpoint %s vanished during recovery", name)
		}
		if !after.Equal(mtime) {
			t.Errorf("checkpoint %s rewritten on resume (mtime %v → %v)", name, mtime, after)
		}
	}
	mr, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	resumed := -1
	re := regexp.MustCompile(`(?m)^kanon_server_blocks_resumed\S*\s+(\d+)$`)
	if m := re.FindSubmatch(metrics); m != nil {
		resumed, _ = strconv.Atoi(string(m[1]))
	}
	if resumed != len(preKill) {
		t.Errorf("blocks_resumed metric = %d, want %d (pre-kill checkpoints)", resumed, len(preKill))
	}
}
