package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kanon/internal/obs"
)

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-version"}, &out, &errb, nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Error("-version printed nothing")
	}
}

func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errb, nil, nil); err == nil {
		t.Error("accepted unknown flag")
	}
	if err := run([]string{"-addr", "127.0.0.1:notaport"}, &out, &errb, nil, nil); err == nil {
		t.Error("accepted unlistenable address")
	}
}

// TestServeSubmitShutdown boots the real binary loop on an ephemeral
// port, pushes one job through the full HTTP lifecycle, and shuts the
// process down via its stop channel — checking the -metrics-out final
// snapshot and the /healthz build version along the way.
func TestServeSubmitShutdown(t *testing.T) {
	stop := make(chan struct{})
	ready := make(chan string, 1)
	done := make(chan error, 1)
	metricsPath := filepath.Join(t.TempDir(), "final.prom")
	var errb bytes.Buffer
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-log=false", "-drain", "5s",
			"-metrics-out", metricsPath},
			io.Discard, &errb, stop, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited early: %v (stderr: %s)", err, errb.String())
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Post(base+"/v1/jobs?k=2", "text/csv",
		strings.NewReader("a,b\n1,2\n1,3\n2,2\n2,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, st.ID)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		sr, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(sr.Body).Decode(&st)
		sr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "succeeded" {
			break
		}
		if st.State == "failed" || st.State == "canceled" || time.Now().After(deadline) {
			t.Fatalf("job ended in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rr, err := http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "a,b\n") {
		t.Fatalf("result: status %d body %q", rr.StatusCode, body)
	}

	// The node's /healthz names its build, so a router (or a human) can
	// spot a mixed-version cluster in one request.
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Version string `json:"version"`
	}
	err = json.NewDecoder(hr.Body).Decode(&health)
	hr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Version == "" {
		t.Error("/healthz missing the build version")
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v (stderr: %s)", err, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	// -metrics-out lands after the drain: the process's final telemetry
	// word, and it must be valid exposition.
	final, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("final metrics not written: %v", err)
	}
	if err := obs.LintPrometheus(final); err != nil {
		t.Fatalf("final metrics do not lint: %v\n%s", err, final)
	}
	if !strings.Contains(string(final), "kanon_server_jobs_succeeded_total 1") {
		t.Errorf("final metrics missing the job's success count:\n%s", final)
	}
}
