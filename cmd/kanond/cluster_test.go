package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"

	"math/rand"

	"kanon"
	"kanon/internal/dataset"
	"kanon/internal/obs"
	"kanon/internal/relation"
	"kanon/internal/stream"
)

// node is one live kanond process in the e2e cluster.
type node struct {
	id   string
	cmd  *exec.Cmd
	base string
}

// jobStatus is the slice of the status JSON the e2e acts on.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Node  string `json:"node"`
}

// submitCSV posts a table and returns the accepted job's status.
func submitCSV(t *testing.T, base, query string, header []string, rows [][]string) jobStatus {
	t.Helper()
	var body bytes.Buffer
	if err := relation.WriteCSVRows(&body, header, rows); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs?"+query, "text/csv", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit %q: status %d, id %q", query, resp.StatusCode, st.ID)
	}
	return st
}

// getStatus polls one node for a job's status.
func getStatus(t *testing.T, base, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitSucceeded polls until the job succeeds, failing fast on a
// terminal failure.
func waitSucceeded(t *testing.T, base, id string, timeout time.Duration) jobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, base, id)
		switch st.State {
		case "succeeded":
			return st
		case "failed", "canceled":
			t.Fatalf("job %s ended in %q", id, st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getResult fetches the released CSV bytes of a succeeded job.
func getResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d: %s", id, resp.StatusCode, b)
	}
	return b
}

// getEvents fetches a job's decoded lifecycle journal.
func getEvents(t *testing.T, base, id string) []obs.JournalEvent {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events %s: status %d", id, resp.StatusCode)
	}
	var events []obs.JournalEvent
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	return events
}

// getTrace fetches a job's merged span timeline.
func getTrace(t *testing.T, base, id string) *obs.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: status %d", id, resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return &snap
}

// renderCSV flattens an in-process result into the byte form the
// service releases.
func renderCSV(t *testing.T, header []string, rows [][]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := relation.WriteCSVRows(&buf, header, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// scrapeCounter reads one Prometheus counter off a node's /metrics.
func scrapeCounter(t *testing.T, base, name string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`(?m)^` + name + `\S*\s+(\d+)$`)
	if m := re.FindSubmatch(b); m != nil {
		n, _ := strconv.Atoi(string(m[1]))
		return n
	}
	return 0
}

// tableOf renders a dataset table into header/rows form.
func tableOf(t *relation.Table) (header []string, rows [][]string) {
	header = t.Schema().Names()
	rows = make([][]string, t.Len())
	for i := range rows {
		rows[i] = t.Strings(i)
	}
	return header, rows
}

// TestClusterFailoverByteIdentical is the 3-node kill-and-steal e2e:
// three kanond processes share one data directory; a batch covering
// every algorithm × kernel combination the service exposes is submitted
// through one of them; the node running the long multi-block stream job
// is SIGKILLed mid-flight; a surviving node must steal the lease, resume
// from the dead node's committed checkpoints, and every job's release —
// stolen or not — must be byte-identical to a single-node in-process run
// of the same pipeline.
func TestClusterFailoverByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns three subprocesses and runs a multi-second job")
	}
	dataDir := t.TempDir()

	// The long job: a multi-block refine stream big enough to guarantee
	// a mid-flight kill window.
	const kAnon, blockRows = 3, 500
	rng := rand.New(rand.NewSource(83))
	streamTab := dataset.Census(rng, 10000, 6)
	streamHeader, streamRows := tableOf(streamTab)
	totalBlocks := (streamTab.Len() + blockRows - 1) / blockRows

	// The quick batch: every algorithm × kernel combination the API
	// exposes, each with an in-process single-node baseline.
	medHeader, medRows := tableOf(dataset.Census(rand.New(rand.NewSource(84)), 300, 4))
	smallHeader, smallRows := tableOf(dataset.Census(rand.New(rand.NewSource(85)), 20, 3))
	type combo struct {
		query        string
		header       []string
		rows         [][]string
		k            int
		opts         kanon.Options
	}
	combos := []combo{
		{"k=3&algo=ball&kernel=dense", medHeader, medRows, 3,
			kanon.Options{Algorithm: kanon.AlgoGreedyBall, Kernel: kanon.KernelDense}},
		{"k=3&algo=ball&kernel=bitset", medHeader, medRows, 3,
			kanon.Options{Algorithm: kanon.AlgoGreedyBall, Kernel: kanon.KernelBitset}},
		{"k=3&algo=ball&refine=true", medHeader, medRows, 3,
			kanon.Options{Algorithm: kanon.AlgoGreedyBall, Refine: true}},
		{"k=3&algo=random&seed=9", medHeader, medRows, 3,
			kanon.Options{Algorithm: kanon.AlgoRandom, Seed: 9}},
		{"k=2&algo=exact&kernel=dense", smallHeader, smallRows, 2,
			kanon.Options{Algorithm: kanon.AlgoExact, Kernel: kanon.KernelDense}},
	}

	// Boot the cluster: 3 nodes, one shared directory, short leases so
	// failover lands inside the test budget.
	nodes := make(map[string]*node)
	for _, id := range []string{"node-a", "node-b", "node-c"} {
		cmd, addr := startHelper(t, dataDir,
			"-node-id", id, "-lease-ttl", "2s", "-claim-interval", "100ms", "-workers", "2")
		n := &node{id: id, cmd: cmd, base: "http://" + addr}
		nodes[id] = n
		defer func() {
			_ = n.cmd.Process.Signal(syscall.SIGTERM)
			_ = n.cmd.Wait()
		}()
	}
	entry := nodes["node-a"].base

	// Submit the whole batch through one node; the cluster spreads it.
	streamJob := submitCSV(t, entry,
		fmt.Sprintf("k=%d&block=%d&refine=true&workers=1", kAnon, blockRows),
		streamHeader, streamRows)
	batch := make([]jobStatus, len(combos))
	for i, c := range combos {
		batch[i] = submitCSV(t, entry, c.query, c.header, c.rows)
	}

	// Wait until the stream job is demonstrably mid-flight — claimed by
	// some node, with committed blocks behind it and blocks to go.
	var victim *node
	deadline := time.Now().Add(60 * time.Second)
	for {
		n := len(statFiles(t, dataDir, streamJob.ID))
		if n >= 1 && n < totalBlocks {
			st := getStatus(t, entry, streamJob.ID)
			if st.State == "running" && st.Node != "" {
				victim = nodes[st.Node]
				break
			}
		}
		if n >= totalBlocks {
			t.Fatalf("stream job finished all %d blocks before the kill; enlarge the instance", totalBlocks)
		}
		if time.Now().After(deadline) {
			t.Fatal("stream job never reached a mid-flight claimed state")
		}
		time.Sleep(time.Millisecond)
	}
	if victim == nil {
		t.Fatal("could not resolve the stream job's node to a cluster member")
	}
	preKill := statFiles(t, dataDir, streamJob.ID)
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.cmd.Wait()
	delete(nodes, victim.id)
	t.Logf("killed %s mid-stream with %d/%d blocks committed", victim.id, len(preKill), totalBlocks)

	// Poll through a survivor: a peer must steal the lease once it
	// expires and run the job to completion.
	var survivor *node
	for _, n := range nodes {
		survivor = n
		break
	}
	final := waitSucceeded(t, survivor.base, streamJob.ID, 180*time.Second)
	if final.Node == victim.id || final.Node == "" {
		t.Fatalf("stream job finished under node %q, want a surviving peer (killed %s)", final.Node, victim.id)
	}
	stolen := 0
	for _, n := range nodes {
		stolen += scrapeCounter(t, n.base, "kanon_server_leases_stolen")
	}
	if stolen < 1 {
		t.Errorf("no survivor counted a lease steal")
	}

	// The stolen stream job's release must be byte-identical to an
	// uninterrupted single-node run, and the dead node's checkpoints
	// must have been replayed, not recomputed.
	sres, err := stream.Anonymize(streamTab, kAnon, &stream.Options{BlockRows: blockRows, Refine: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := make([][]string, sres.Anonymized.Len())
	for i := range wantRows {
		wantRows[i] = sres.Anonymized.Strings(i)
	}
	got := getResult(t, survivor.base, streamJob.ID)
	if !bytes.Equal(got, renderCSV(t, streamHeader, wantRows)) {
		t.Fatalf("stolen stream release differs from single-node run (%d bytes)", len(got))
	}
	postRun := statFiles(t, dataDir, streamJob.ID)
	for name, mtime := range preKill {
		after, ok := postRun[name]
		if !ok {
			t.Fatalf("checkpoint %s vanished across the steal", name)
		}
		if !after.Equal(mtime) {
			t.Errorf("checkpoint %s rewritten after the steal (mtime %v → %v)", name, mtime, after)
		}
	}

	// The durable journal must narrate the failover: claimed by the
	// victim, lease stolen by the survivor, checkpoints resumed — every
	// surviving node serves the same story about a job whose first owner
	// no longer exists.
	for _, n := range nodes {
		events := getEvents(t, n.base, streamJob.ID)
		firstClaim := -1
		for i, e := range events {
			if e.Event == "claimed" {
				firstClaim = i
				break
			}
		}
		if firstClaim < 0 || events[firstClaim].Node != victim.id {
			t.Fatalf("journal via %s: first claim not by the victim %s: %+v", n.id, victim.id, events)
		}
		stoleAt, resumedAt, succeededAt := -1, -1, -1
		for i, e := range events {
			switch e.Event {
			case "lease_stolen":
				if stoleAt < 0 {
					stoleAt = i
					if e.Node == victim.id || e.Node == "" {
						t.Errorf("lease_stolen recorded by %q, want a surviving peer", e.Node)
					}
					if e.Fence <= events[firstClaim].Fence {
						t.Errorf("steal fence %d not above the victim's claim fence %d",
							e.Fence, events[firstClaim].Fence)
					}
				}
			case "checkpoint_resumed":
				resumedAt = i
			case "succeeded":
				succeededAt = i
			}
		}
		if stoleAt < firstClaim || resumedAt < stoleAt || succeededAt < resumedAt {
			t.Fatalf("journal via %s out of order (claim %d, steal %d, resume %d, success %d): %+v",
				n.id, firstClaim, stoleAt, resumedAt, succeededAt, events)
		}
	}

	// The merged trace must cover both segments as one timeline: a root
	// span per run, naming the victim then the thief, in wall-clock
	// order.
	trace := getTrace(t, survivor.base, streamJob.ID)
	if len(trace.Spans) < 2 {
		t.Fatalf("merged trace has %d root spans, want the victim's and the thief's: %+v",
			len(trace.Spans), trace.Spans)
	}
	sawVictim, sawThief := false, false
	lastWall := int64(0)
	for _, sp := range trace.Spans {
		if sp.WallNS < lastWall {
			t.Fatalf("trace roots not in wall-clock order: %+v", trace.Spans)
		}
		lastWall = sp.WallNS
		switch sp.Name {
		case "job@" + victim.id:
			sawVictim = true
			if sawThief {
				t.Errorf("victim segment after the thief's: %+v", trace.Spans)
			}
		case "job@" + final.Node:
			sawThief = true
		}
	}
	if !sawVictim || !sawThief {
		t.Fatalf("merged trace does not name both nodes (victim %s, thief %s): %+v",
			victim.id, final.Node, trace.Spans)
	}

	// Every combo in the batch — wherever it ran, killed node included —
	// must release byte-identically to its single-node baseline, served
	// by every surviving node.
	for i, c := range combos {
		st := waitSucceeded(t, survivor.base, batch[i].ID, 120*time.Second)
		if st.Node == "" {
			t.Errorf("combo %q: no node recorded", c.query)
		}
		opts := c.opts
		direct, err := kanon.Anonymize(c.header, c.rows, c.k, &opts)
		if err != nil {
			t.Fatal(err)
		}
		want := renderCSV(t, direct.Header, direct.Rows)
		for _, n := range nodes {
			if got := getResult(t, n.base, batch[i].ID); !bytes.Equal(got, want) {
				t.Errorf("combo %q served by %s differs from single-node run", c.query, n.id)
			}
		}
	}
}
