// Command kanond serves the kanon anonymization pipeline as a
// long-running HTTP service: clients POST CSV tables to /v1/jobs and
// poll for results while the server bounds queue depth, concurrency,
// and per-job deadlines around the NP-hard solve.
//
// Usage:
//
//	kanond -addr :8080 [-workers 4] [-queue 64] [-job-timeout 5m] [-data-dir /var/lib/kanond]
//
// SIGINT/SIGTERM triggers a graceful shutdown: admission stops, running
// jobs drain for up to -drain, and whatever remains is cancelled.
//
// With -data-dir, every job is persisted (request, lifecycle manifest,
// result, and per-block checkpoints for streamed jobs); after a crash,
// a restart with -recover (the default) re-admits unfinished jobs and
// resumes streamed jobs from their last completed block.
//
// With -data-dir AND -node-id, kanond runs in cluster mode: any number
// of kanond processes sharing the same data directory (each with a
// distinct -node-id) drain one queue together. Jobs are claimed under
// renewable leases with fencing tokens; when a node dies, its jobs
// become stealable one -lease-ttl after its last renewal, and streamed
// jobs continue from the dead node's committed block checkpoints —
// byte-identically. Any node answers status/result/cancel for any job.
//
// Adding -replicate-peers removes the shared-directory requirement:
// each node keeps a private -data-dir and a pull loop converges
// manifests, checkpoints, journals, and result spools across the named
// peers (the other nodes' listen addresses), so the same claim, steal,
// and resume semantics run with no shared filesystem at all.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kanon"
	"kanon/internal/obs"
	"kanon/internal/server"
	"kanon/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kanond:", err)
		os.Exit(1)
	}
}

// run parses flags, starts the server, and blocks until a signal (or a
// close of the optional test-only stop channel) initiates shutdown.
// ready, if non-nil, receives the bound listen address once the server
// is accepting — how tests find a :0 port.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}, ready chan<- string) error {
	fs := flag.NewFlagSet("kanond", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent jobs (0 = half the CPUs)")
	queue := fs.Int("queue", 64, "queued-job capacity; beyond it submissions get 429")
	jobTimeout := fs.Duration("job-timeout", 5*time.Minute, "per-job deadline and the ceiling for client-requested timeouts")
	resultTTL := fs.Duration("result-ttl", 15*time.Minute, "how long finished jobs stay retrievable")
	maxBody := fs.Int64("max-body", 32<<20, "request body limit in bytes")
	kernelName := fs.String("kernel", "auto", "default distance kernel for jobs that omit ?kernel=: auto, dense, or bitset (output is identical)")
	dataDir := fs.String("data-dir", "", "persist jobs (requests, manifests, results, block checkpoints) under this directory; empty keeps everything in memory")
	recoverJobs := fs.Bool("recover", true, "with -data-dir, re-admit jobs found queued or running on disk at startup and resume their block checkpoints")
	nodeID := fs.String("node-id", "", "with -data-dir, join the cluster sharing that directory under this identity; empty runs single-node")
	replicatePeers := fs.String("replicate-peers", "", "cluster mode without a shared filesystem: comma-separated base URLs of the other nodes; each node keeps a full copy of -data-dir and pulls what it is missing (requires -node-id)")
	replicateInterval := fs.Duration("replicate-interval", 500*time.Millisecond, "pull-loop interval of the replicated store backend")
	leaseTTL := fs.Duration("lease-ttl", 15*time.Second, "cluster mode: lease duration per claimed job — the crash-failover delay before peers steal a dead node's work")
	claimInterval := fs.Duration("claim-interval", 0, "cluster mode: poll interval for foreign work and expired leases (0 = lease-ttl/5, clamped to [50ms, 2s])")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown budget before running jobs are cancelled")
	metricsOut := fs.String("metrics-out", "", "write the final telemetry snapshot (Prometheus text) to this file on graceful shutdown")
	logEvents := fs.Bool("log", true, "emit structured JSON lifecycle events to stderr")
	version := fs.Bool("version", false, "print build provenance and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, obs.ReadBuild().String())
		return nil
	}
	kern, err := kanon.ParseKernel(*kernelName)
	if err != nil {
		return err
	}

	var logger *slog.Logger
	if *logEvents {
		logger = slog.New(slog.NewJSONHandler(stderr, nil))
	}
	var st *store.Store
	var repl *store.Replicated
	switch {
	case *replicatePeers != "":
		if *dataDir == "" || *nodeID == "" {
			return errors.New("-replicate-peers requires -data-dir and -node-id (each node is a private replica)")
		}
		var err error
		st, repl, err = store.OpenReplicated(*dataDir, splitPeers(*replicatePeers),
			store.ReplicateOptions{Interval: *replicateInterval})
		if err != nil {
			return err
		}
	case *dataDir != "":
		var err error
		if st, err = store.Open(*dataDir); err != nil {
			return err
		}
	}
	if *nodeID != "" {
		if st == nil {
			return errors.New("-node-id requires -data-dir (the shared directory is the cluster)")
		}
		if err := store.ValidateNodeID(*nodeID); err != nil {
			return err
		}
	}
	srv := server.New(server.Config{
		QueueCapacity: *queue,
		Workers:       *workers,
		JobTimeout:    *jobTimeout,
		ResultTTL:     *resultTTL,
		MaxBodyBytes:  *maxBody,
		Kernel:        kern,
		Log:           logger,
		Store:         st,
		Recover:       *recoverJobs,
		NodeID:        *nodeID,
		LeaseTTL:      *leaseTTL,
		ClaimInterval: *claimInterval,
	})
	hs := &http.Server{Handler: srv}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	if logger != nil {
		logger.Info("kanond_listening", slog.String("addr", ln.Addr().String()))
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	if repl != nil {
		// Start pulling only once we are serving: peers poll us on the
		// same listener, and a symmetric start keeps the first rounds from
		// burning timeouts against half-up processes.
		repl.StartSync()
		defer repl.StopSync()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return err
	case <-sig:
	case <-stop:
	}

	if logger != nil {
		logger.Info("kanond_draining", slog.Duration("budget", *drain))
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job manager first (admission off, running jobs finish or
	// are cancelled at the deadline), then close the listener.
	draineErr := srv.Shutdown(ctx)
	if err := hs.Shutdown(ctx); err != nil && draineErr == nil {
		draineErr = err
	}
	if draineErr != nil {
		fmt.Fprintf(stderr, "kanond: shutdown forced cancellation: %v\n", draineErr)
	}
	if *metricsOut != "" {
		// The drain is done: this snapshot is the process's final word,
		// matching the -metrics-out contract of kanon and kanon-bench.
		if err := writeMetrics(*metricsOut, srv.Manager().Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

// splitPeers parses the comma-separated -replicate-peers value.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// writeMetrics dumps a snapshot as Prometheus text exposition.
func writeMetrics(path string, snap *obs.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WritePrometheus(f, "kanon"); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
