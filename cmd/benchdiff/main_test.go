package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kanon/internal/harness"
)

func report(t *testing.T) *harness.BenchReport {
	t.Helper()
	return &harness.BenchReport{
		Schema:        harness.BenchSchema,
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		GOMAXPROCS:    8,
		Seed:          harness.DefaultSeed,
		Workers:       1,
		CalibrationNS: 10_000_000,
		Cases: []harness.BenchCase{
			{Name: "ball_planted", N: 1200, M: 8, K: 3, Cost: 100, WallNS: 50_000_000},
			{Name: "exact_dp", N: 18, M: 5, K: 3, Cost: 12, WallNS: 4_000_000},
		},
	}
}

func write(t *testing.T, rep *harness.BenchReport) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rep.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func diff(t *testing.T, base, cur *harness.BenchReport, extra ...string) (string, error) {
	t.Helper()
	args := append([]string{"-baseline", write(t, base), "-current", write(t, cur)}, extra...)
	var out, errOut bytes.Buffer
	err := run(args, &out, &errOut)
	return out.String(), err
}

func TestIdenticalReportsPass(t *testing.T) {
	out, err := diff(t, report(t), report(t))
	if err != nil {
		t.Fatalf("identical reports should pass: %v\n%s", err, out)
	}
	if !strings.Contains(out, "all 2 cases within tolerance") {
		t.Errorf("missing pass summary:\n%s", out)
	}
}

func TestSlowdownFails(t *testing.T) {
	cur := report(t)
	for i := range cur.Cases {
		cur.Cases[i].WallNS *= 2
	}
	out, err := diff(t, report(t), cur)
	if err == nil {
		t.Fatalf("2x slowdown should fail:\n%s", out)
	}
	if !strings.Contains(out, "SLOW") {
		t.Errorf("expected SLOW status:\n%s", out)
	}
}

func TestSlowdownWithinTolerancePasses(t *testing.T) {
	cur := report(t)
	for i := range cur.Cases {
		cur.Cases[i].WallNS = cur.Cases[i].WallNS * 11 / 10 // +10% < 25% tol
	}
	if out, err := diff(t, report(t), cur); err != nil {
		t.Fatalf("+10%% should pass under the default 25%% tolerance: %v\n%s", err, out)
	}
}

func TestCostChangeFailsEvenWhenFast(t *testing.T) {
	cur := report(t)
	cur.Cases[0].Cost++
	cur.Cases[0].WallNS /= 2
	out, err := diff(t, report(t), cur)
	if err == nil {
		t.Fatalf("cost drift should fail regardless of speed:\n%s", out)
	}
	if !strings.Contains(out, "COST CHANGED") {
		t.Errorf("expected COST CHANGED status:\n%s", out)
	}
}

func TestMissingAndNewCasesFail(t *testing.T) {
	cur := report(t)
	cur.Cases[1].Name = "renamed"
	out, err := diff(t, report(t), cur)
	if err == nil {
		t.Fatalf("renamed case should fail both directions:\n%s", out)
	}
	if !strings.Contains(out, "MISSING") || !strings.Contains(out, "NEW") {
		t.Errorf("expected MISSING and NEW statuses:\n%s", out)
	}
}

func TestConfigMismatchFails(t *testing.T) {
	cur := report(t)
	cur.Seed = 1
	if _, err := diff(t, report(t), cur); err == nil {
		t.Fatal("seed mismatch should fail")
	}
}

func TestCalibrationScalesLimit(t *testing.T) {
	// Current machine is 2x slower (calibration 2x larger); walls 1.8x
	// larger. Without -calibrate this fails; with it, it passes.
	cur := report(t)
	cur.CalibrationNS *= 2
	for i := range cur.Cases {
		cur.Cases[i].WallNS = cur.Cases[i].WallNS * 18 / 10
	}
	if _, err := diff(t, report(t), cur); err == nil {
		t.Fatal("1.8x slowdown should fail without -calibrate")
	}
	if out, err := diff(t, report(t), cur, "-calibrate"); err != nil {
		t.Fatalf("1.8x slowdown on a 2x slower machine should pass with -calibrate: %v\n%s", err, out)
	}
}

// manifest builds a healthy two-experiment manifest for the -manifest
// mode tests.
func manifest(t *testing.T) *harness.RunManifest {
	t.Helper()
	return &harness.RunManifest{
		Schema:     harness.ManifestSchema,
		GOOS:       "linux",
		GOARCH:     "amd64",
		GOMAXPROCS: 8,
		Seed:       harness.DefaultSeed,
		Workers:    1,
		Experiments: []harness.ManifestExperiment{
			{ID: "E1", Title: "planted", WallNS: 40_000_000, Verdict: harness.VerdictOK, Tables: 1},
			{ID: "E2", Title: "census", WallNS: 90_000_000, Verdict: harness.VerdictOK, Tables: 2},
		},
	}
}

func diffManifest(t *testing.T, base, cur *harness.RunManifest, extra ...string) (string, error) {
	t.Helper()
	dir := t.TempDir()
	bp := filepath.Join(dir, "base.json")
	cp := filepath.Join(dir, "cur.json")
	if err := base.Write(bp); err != nil {
		t.Fatal(err)
	}
	if err := cur.Write(cp); err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-manifest", "-baseline", bp, "-current", cp}, extra...)
	var out, errOut bytes.Buffer
	err := run(args, &out, &errOut)
	return out.String(), err
}

func TestManifestIdenticalPass(t *testing.T) {
	out, err := diffManifest(t, manifest(t), manifest(t))
	if err != nil {
		t.Fatalf("identical manifests should pass: %v\n%s", err, out)
	}
	if !strings.Contains(out, "all 2 experiments accounted for") {
		t.Errorf("missing pass summary:\n%s", out)
	}
}

func TestManifestVerdictRegressionFails(t *testing.T) {
	cur := manifest(t)
	cur.Experiments[1].Verdict = harness.VerdictError
	cur.Experiments[1].Error = "ratio bound violated"
	out, err := diffManifest(t, manifest(t), cur)
	if err == nil {
		t.Fatalf("ok→error verdict should fail:\n%s", out)
	}
	if !strings.Contains(out, "VERDICT REGRESSED") || !strings.Contains(out, "ratio bound violated") {
		t.Errorf("expected VERDICT REGRESSED with the error message:\n%s", out)
	}
}

func TestManifestMissingExperimentFails(t *testing.T) {
	cur := manifest(t)
	cur.Experiments = cur.Experiments[:1]
	out, err := diffManifest(t, manifest(t), cur)
	if err == nil {
		t.Fatalf("missing experiment should fail:\n%s", out)
	}
	if !strings.Contains(out, "MISSING") {
		t.Errorf("expected MISSING status:\n%s", out)
	}
}

func TestManifestNewExperimentInformational(t *testing.T) {
	cur := manifest(t)
	cur.Experiments = append(cur.Experiments, harness.ManifestExperiment{
		ID: "E3", Title: "new", WallNS: 1_000_000, Verdict: harness.VerdictOK, Tables: 1,
	})
	out, err := diffManifest(t, manifest(t), cur)
	if err != nil {
		t.Fatalf("a new experiment alone should not fail: %v\n%s", err, out)
	}
	if !strings.Contains(out, "NEW") {
		t.Errorf("expected NEW status line:\n%s", out)
	}
}

func TestManifestConfigMismatchFails(t *testing.T) {
	cur := manifest(t)
	cur.Seed = 1
	if _, err := diffManifest(t, manifest(t), cur); err == nil {
		t.Fatal("seed mismatch should fail")
	}
}

func TestManifestEmbeddedBenchCompared(t *testing.T) {
	base, cur := manifest(t), manifest(t)
	base.Bench = report(t)
	curRep := report(t)
	curRep.Cases[0].Cost++
	cur.Bench = curRep
	out, err := diffManifest(t, base, cur)
	if err == nil {
		t.Fatalf("embedded bench cost drift should fail:\n%s", out)
	}
	if !strings.Contains(out, "COST CHANGED") {
		t.Errorf("expected the embedded reports to go through the bench gate:\n%s", out)
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-version"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kanon") {
		t.Errorf("version output = %q", out.String())
	}
}

func TestFasterCalibrationNeverLoosens(t *testing.T) {
	// Current machine 2x faster but walls 1.5x slower: a genuine
	// regression that a naive calibration scale (0.5) would flag even
	// harder — but the scale must clamp at 1, not drop below it.
	cur := report(t)
	cur.CalibrationNS /= 2
	for i := range cur.Cases {
		cur.Cases[i].WallNS = cur.Cases[i].WallNS * 15 / 10
	}
	if _, err := diff(t, report(t), cur, "-calibrate"); err == nil {
		t.Fatal("1.5x slowdown should fail even with a faster calibration")
	}
}
