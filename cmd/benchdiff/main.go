// Command benchdiff compares two regression bench reports (the output
// of kanon-bench -regress) and fails when the current run regresses
// against the baseline. It is the CI benchmark gate.
//
// Usage:
//
//	benchdiff -baseline BENCH_BASELINE.json -current bench.json
//	benchdiff -manifest -baseline base-manifest.json -current run-manifest.json
//
// Costs must match exactly — the solvers are deterministic for a fixed
// seed, so any cost drift is a behavior change, not noise. Wall times
// may drift up to -wall-tol (relative) plus -wall-slack-ms (absolute,
// so sub-millisecond cases don't trip on scheduler noise). With
// -calibrate, the wall limit is additionally scaled by the ratio of the
// two reports' calibration timings, compensating for baseline and
// current runs executing on machines of different speeds.
//
// With -manifest, both inputs are provenance manifests (kanon-bench
// -manifest output): an experiment whose verdict regresses from ok to
// error, or that disappears entirely, fails the gate; wall-time drift
// and build-provenance changes are reported but informational. When
// both manifests embed a bench report, those reports are compared under
// the usual rules as well.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kanon/internal/harness"
	"kanon/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	basePath := fs.String("baseline", "BENCH_BASELINE.json", "baseline report (kanon-bench -regress output)")
	curPath := fs.String("current", "", "current report to compare against the baseline")
	wallTol := fs.Float64("wall-tol", 0.25, "allowed relative wall-time growth per case (0.25 = +25%)")
	slackMS := fs.Float64("wall-slack-ms", 5, "absolute wall-time slack per case, in milliseconds")
	calibrate := fs.Bool("calibrate", false, "scale the wall limit by the reports' calibration ratio (cross-machine runs)")
	manifest := fs.Bool("manifest", false, "compare provenance manifests (kanon-bench -manifest output) instead of bench reports")
	version := fs.Bool("version", false, "print build provenance and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, obs.ReadBuild().String())
		return nil
	}
	if *curPath == "" {
		return fmt.Errorf("-current is required")
	}
	if *manifest {
		return diffManifests(stdout, *basePath, *curPath, *wallTol, *slackMS, *calibrate)
	}
	base, err := load(*basePath)
	if err != nil {
		return err
	}
	cur, err := load(*curPath)
	if err != nil {
		return err
	}
	return diffReports(stdout, base, cur, *wallTol, *slackMS, *calibrate)
}

// diffReports applies the bench gate to two BenchReports; shared by the
// report and manifest modes.
func diffReports(stdout io.Writer, base, cur *harness.BenchReport, wallTol, slackMS float64, calibrate bool) error {
	if base.Schema != cur.Schema {
		return fmt.Errorf("schema mismatch: baseline %q vs current %q", base.Schema, cur.Schema)
	}
	if base.Seed != cur.Seed || base.Quick != cur.Quick || base.Workers != cur.Workers {
		return fmt.Errorf("configuration mismatch: baseline (seed=%d quick=%v workers=%d) vs current (seed=%d quick=%v workers=%d); regenerate the baseline",
			base.Seed, base.Quick, base.Workers, cur.Seed, cur.Quick, cur.Workers)
	}

	calScale := 1.0
	if calibrate && base.CalibrationNS > 0 {
		calScale = float64(cur.CalibrationNS) / float64(base.CalibrationNS)
		if calScale < 1 {
			// A faster current machine never loosens the gate.
			calScale = 1
		}
		fmt.Fprintf(stdout, "calibration: baseline %s, current %s (wall limit ×%.2f)\n",
			dur(base.CalibrationNS), dur(cur.CalibrationNS), calScale)
	}

	baseBy := map[string]harness.BenchCase{}
	for _, c := range base.Cases {
		baseBy[c.Name] = c
	}
	curBy := map[string]harness.BenchCase{}
	for _, c := range cur.Cases {
		curBy[c.Name] = c
	}

	// The mem columns (peak_alloc_bytes) are informational only: heap
	// accounting shifts with the Go version and GC timing, so the gate
	// never fails on them — they exist to make the O(n²) → O(n·m/64)
	// memory trajectory visible next to the wall times.
	fmt.Fprintf(stdout, "%-16s %12s %12s %7s  %8s %8s  %9s %9s  %s\n",
		"case", "base wall", "cur wall", "ratio", "base $", "cur $", "base mem", "cur mem", "status")
	failures := 0
	for _, bc := range base.Cases {
		cc, ok := curBy[bc.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-16s %12s %12s %7s  %8d %8s  %9s %9s  MISSING\n",
				bc.Name, dur(bc.WallNS), "-", "-", bc.Cost, "-", mem(bc.PeakAllocBytes), "-")
			failures++
			continue
		}
		ratio := float64(cc.WallNS) / float64(bc.WallNS)
		limit := float64(bc.WallNS)*(1+wallTol)*calScale + slackMS*1e6
		status := "ok"
		switch {
		case cc.Cost != bc.Cost:
			status = "COST CHANGED"
			failures++
		case float64(cc.WallNS) > limit:
			status = fmt.Sprintf("SLOW (limit %s)", dur(int64(limit)))
			failures++
		}
		fmt.Fprintf(stdout, "%-16s %12s %12s %6.2fx  %8d %8d  %9s %9s  %s\n",
			bc.Name, dur(bc.WallNS), dur(cc.WallNS), ratio, bc.Cost, cc.Cost,
			mem(bc.PeakAllocBytes), mem(cc.PeakAllocBytes), status)
	}
	for _, cc := range cur.Cases {
		if _, ok := baseBy[cc.Name]; !ok {
			fmt.Fprintf(stdout, "%-16s %12s %12s %7s  %8s %8d  %9s %9s  NEW (regenerate baseline)\n",
				cc.Name, "-", dur(cc.WallNS), "-", "-", cc.Cost, "-", mem(cc.PeakAllocBytes))
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d case(s) regressed or diverged from the baseline", failures)
	}
	fmt.Fprintf(stdout, "all %d cases within tolerance\n", len(base.Cases))
	return nil
}

// diffManifests compares two provenance manifests. Verdict regressions
// (ok → error) and experiments missing from the current run fail the
// gate; wall-time drift and provenance changes print informationally.
// Embedded bench reports, when present in both, go through diffReports.
func diffManifests(stdout io.Writer, basePath, curPath string, wallTol, slackMS float64, calibrate bool) error {
	base, err := harness.ReadManifest(basePath)
	if err != nil {
		return err
	}
	cur, err := harness.ReadManifest(curPath)
	if err != nil {
		return err
	}
	if base.Seed != cur.Seed || base.Quick != cur.Quick || base.Workers != cur.Workers {
		return fmt.Errorf("configuration mismatch: baseline (seed=%d quick=%v workers=%d) vs current (seed=%d quick=%v workers=%d); regenerate the baseline",
			base.Seed, base.Quick, base.Workers, cur.Seed, cur.Quick, cur.Workers)
	}
	if base.Build.VCSRevision != cur.Build.VCSRevision || base.Build.GoVersion != cur.Build.GoVersion {
		fmt.Fprintf(stdout, "provenance: baseline %s vs current %s\n", base.Build.String(), cur.Build.String())
	}

	curBy := map[string]harness.ManifestExperiment{}
	for _, e := range cur.Experiments {
		curBy[e.ID] = e
	}
	fmt.Fprintf(stdout, "%-4s %-10s %-10s %12s %12s  %s\n",
		"exp", "base", "cur", "base wall", "cur wall", "status")
	failures := 0
	for _, be := range base.Experiments {
		ce, ok := curBy[be.ID]
		if !ok {
			fmt.Fprintf(stdout, "%-4s %-10s %-10s %12s %12s  MISSING\n",
				be.ID, be.Verdict, "-", dur(be.WallNS), "-")
			failures++
			continue
		}
		status := "ok"
		if be.Verdict == harness.VerdictOK && ce.Verdict != harness.VerdictOK {
			status = fmt.Sprintf("VERDICT REGRESSED (%s)", ce.Error)
			failures++
		}
		fmt.Fprintf(stdout, "%-4s %-10s %-10s %12s %12s  %s\n",
			be.ID, be.Verdict, ce.Verdict, dur(be.WallNS), dur(ce.WallNS), status)
	}
	for _, ce := range cur.Experiments {
		found := false
		for _, be := range base.Experiments {
			if be.ID == ce.ID {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(stdout, "%-4s %-10s %-10s %12s %12s  NEW\n",
				ce.ID, "-", ce.Verdict, "-", dur(ce.WallNS))
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) regressed or went missing", failures)
	}
	if base.Bench != nil && cur.Bench != nil {
		fmt.Fprintln(stdout, "embedded bench reports:")
		return diffReports(stdout, base.Bench, cur.Bench, wallTol, slackMS, calibrate)
	}
	fmt.Fprintf(stdout, "all %d experiments accounted for\n", len(base.Experiments))
	return nil
}

func load(path string) (*harness.BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep harness.BenchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema == "" {
		return nil, fmt.Errorf("%s: not a bench report (missing schema)", path)
	}
	return &rep, nil
}

// mem renders a peak_alloc_bytes value; "-" for reports predating the
// field.
func mem(b int64) string {
	switch {
	case b <= 0:
		return "-"
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func dur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
