// Command benchdiff compares two regression bench reports (the output
// of kanon-bench -regress) and fails when the current run regresses
// against the baseline. It is the CI benchmark gate.
//
// Usage:
//
//	benchdiff -baseline BENCH_BASELINE.json -current bench.json
//
// Costs must match exactly — the solvers are deterministic for a fixed
// seed, so any cost drift is a behavior change, not noise. Wall times
// may drift up to -wall-tol (relative) plus -wall-slack-ms (absolute,
// so sub-millisecond cases don't trip on scheduler noise). With
// -calibrate, the wall limit is additionally scaled by the ratio of the
// two reports' calibration timings, compensating for baseline and
// current runs executing on machines of different speeds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kanon/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	basePath := fs.String("baseline", "BENCH_BASELINE.json", "baseline report (kanon-bench -regress output)")
	curPath := fs.String("current", "", "current report to compare against the baseline")
	wallTol := fs.Float64("wall-tol", 0.25, "allowed relative wall-time growth per case (0.25 = +25%)")
	slackMS := fs.Float64("wall-slack-ms", 5, "absolute wall-time slack per case, in milliseconds")
	calibrate := fs.Bool("calibrate", false, "scale the wall limit by the reports' calibration ratio (cross-machine runs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *curPath == "" {
		return fmt.Errorf("-current is required")
	}
	base, err := load(*basePath)
	if err != nil {
		return err
	}
	cur, err := load(*curPath)
	if err != nil {
		return err
	}
	if base.Schema != cur.Schema {
		return fmt.Errorf("schema mismatch: baseline %q vs current %q", base.Schema, cur.Schema)
	}
	if base.Seed != cur.Seed || base.Quick != cur.Quick || base.Workers != cur.Workers {
		return fmt.Errorf("configuration mismatch: baseline (seed=%d quick=%v workers=%d) vs current (seed=%d quick=%v workers=%d); regenerate the baseline",
			base.Seed, base.Quick, base.Workers, cur.Seed, cur.Quick, cur.Workers)
	}

	calScale := 1.0
	if *calibrate && base.CalibrationNS > 0 {
		calScale = float64(cur.CalibrationNS) / float64(base.CalibrationNS)
		if calScale < 1 {
			// A faster current machine never loosens the gate.
			calScale = 1
		}
		fmt.Fprintf(stdout, "calibration: baseline %s, current %s (wall limit ×%.2f)\n",
			dur(base.CalibrationNS), dur(cur.CalibrationNS), calScale)
	}

	baseBy := map[string]harness.BenchCase{}
	for _, c := range base.Cases {
		baseBy[c.Name] = c
	}
	curBy := map[string]harness.BenchCase{}
	for _, c := range cur.Cases {
		curBy[c.Name] = c
	}

	fmt.Fprintf(stdout, "%-16s %12s %12s %7s  %8s %8s  %s\n",
		"case", "base wall", "cur wall", "ratio", "base $", "cur $", "status")
	failures := 0
	for _, bc := range base.Cases {
		cc, ok := curBy[bc.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-16s %12s %12s %7s  %8d %8s  MISSING\n",
				bc.Name, dur(bc.WallNS), "-", "-", bc.Cost, "-")
			failures++
			continue
		}
		ratio := float64(cc.WallNS) / float64(bc.WallNS)
		limit := float64(bc.WallNS)*(1+*wallTol)*calScale + *slackMS*1e6
		status := "ok"
		switch {
		case cc.Cost != bc.Cost:
			status = "COST CHANGED"
			failures++
		case float64(cc.WallNS) > limit:
			status = fmt.Sprintf("SLOW (limit %s)", dur(int64(limit)))
			failures++
		}
		fmt.Fprintf(stdout, "%-16s %12s %12s %6.2fx  %8d %8d  %s\n",
			bc.Name, dur(bc.WallNS), dur(cc.WallNS), ratio, bc.Cost, cc.Cost, status)
	}
	for _, cc := range cur.Cases {
		if _, ok := baseBy[cc.Name]; !ok {
			fmt.Fprintf(stdout, "%-16s %12s %12s %7s  %8s %8d  NEW (regenerate baseline)\n",
				cc.Name, "-", dur(cc.WallNS), "-", "-", cc.Cost)
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d case(s) regressed or diverged from the baseline", failures)
	}
	fmt.Fprintf(stdout, "all %d cases within tolerance\n", len(base.Cases))
	return nil
}

func load(path string) (*harness.BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep harness.BenchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema == "" {
		return nil, fmt.Errorf("%s: not a bench report (missing schema)", path)
	}
	return &rep, nil
}

func dur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
