package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kanon/internal/obs"
)

// fakeNode is an httptest stand-in for one kanond: a fixed /healthz
// payload, counted submissions, and canned job answers.
type fakeNode struct {
	name    string
	health  peerHealth
	submits atomic.Int64
	srv     *httptest.Server
}

func newFakeNode(t *testing.T, name string, free int, status string) *fakeNode {
	t.Helper()
	n := &fakeNode{name: name, health: peerHealth{
		Status: status, Node: name, Capacity: 4, Free: free, Queued: 2, Claimed: 1,
	}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		code := http.StatusOK
		if n.health.Status != "ok" {
			code = http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(n.health)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		n.submits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Location", "/v1/jobs/job-on-"+name)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"job-on-%s","state":"queued","bytes":%d}`, name, len(body))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"id":%q,"state":"succeeded","node":%q}`, r.PathValue("id"), name)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":%q,"state":"canceled"}`, r.PathValue("id"))
	})
	mux.HandleFunc("GET /debug/obs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&obs.Snapshot{
			Node:     name,
			Counters: map[string]int64{"server.jobs_succeeded": int64(free)},
			Gauges:   map[string]obs.GaugeStat{"server.jobs_running": {Last: 1, Max: 2}},
		})
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func newTestRouter(t *testing.T, nodes ...*fakeNode) *router {
	t.Helper()
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.srv.URL
	}
	rt, err := newRouter(routerConfig{
		peers:         strings.Join(urls, ","),
		timeout:       2 * time.Second,
		maxBody:       1 << 20,
		submitRetries: 1,
		retryBackoff:  time.Millisecond,
		resultTTL:     time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestSubmitGoesToFreestPeer: the submission lands on the peer
// advertising the most free slots, not the first one listed.
func TestSubmitGoesToFreestPeer(t *testing.T) {
	busy := newFakeNode(t, "busy", 0, "ok")
	free := newFakeNode(t, "free", 3, "ok")
	rt := newTestRouter(t, busy, free)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs?k=3", strings.NewReader("a\n1\n2\n3\n")))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if free.submits.Load() != 1 || busy.submits.Load() != 0 {
		t.Fatalf("submits: free=%d busy=%d, want 1/0", free.submits.Load(), busy.submits.Load())
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/jobs/job-on-free" {
		t.Errorf("Location = %q", loc)
	}
	if !strings.Contains(rec.Body.String(), `"bytes":8`) {
		t.Errorf("body not forwarded intact: %s", rec.Body)
	}
}

// TestSubmitSkipsDrainingAndDeadPeers: draining and unreachable peers
// never see the submission.
func TestSubmitSkipsDrainingAndDeadPeers(t *testing.T) {
	draining := newFakeNode(t, "draining", 4, "draining")
	dead := newFakeNode(t, "dead", 4, "ok")
	ok := newFakeNode(t, "ok", 1, "ok")
	dead.srv.Close()
	rt := newTestRouter(t, draining, dead, ok)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs?k=2", strings.NewReader("x\n1\n2\n")))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ok.submits.Load() != 1 || draining.submits.Load() != 0 {
		t.Fatalf("submits: ok=%d draining=%d", ok.submits.Load(), draining.submits.Load())
	}
}

// TestSubmitAllPeersDown: with nothing admitting, the router answers
// 503 itself instead of hanging or crashing.
func TestSubmitAllPeersDown(t *testing.T) {
	dead := newFakeNode(t, "dead", 4, "ok")
	dead.srv.Close()
	rt := newTestRouter(t, dead)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs?k=2", strings.NewReader("x\n1\n2\n")))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

// TestReadsForwardToAnyLivePeer: status reads skip dead peers and relay
// the first live answer verbatim.
func TestReadsForwardToAnyLivePeer(t *testing.T) {
	dead := newFakeNode(t, "dead", 4, "ok")
	live := newFakeNode(t, "live", 0, "ok") // busy but reachable: reads still work
	dead.srv.Close()
	rt := newTestRouter(t, dead, live)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/j-123", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"node":"live"`) {
		t.Fatalf("status %d body %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("DELETE", "/v1/jobs/j-123", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("cancel status %d", rec.Code)
	}
}

// TestAggregateHealth: capacity sums, store depths take the max (every
// node reports the same cluster-wide scan), and one admitting peer
// keeps the cluster "ok".
func TestAggregateHealth(t *testing.T) {
	a := newFakeNode(t, "a", 3, "ok")
	b := newFakeNode(t, "b", 1, "ok")
	down := newFakeNode(t, "down", 4, "ok")
	down.srv.Close()
	rt := newTestRouter(t, a, b, down)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var h struct {
		Status   string `json:"status"`
		Version  string `json:"version"`
		Capacity int    `json:"capacity"`
		Free     int    `json:"free"`
		Queued   int    `json:"queued"`
		Claimed  int    `json:"claimed"`
		Peers    []struct {
			Status string `json:"status"`
		} `json:"peers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Capacity != 8 || h.Free != 4 || h.Queued != 2 || h.Claimed != 1 {
		t.Fatalf("aggregate = %+v", h)
	}
	if h.Version == "" {
		t.Error("router /healthz missing its build version")
	}
	if len(h.Peers) != 3 || h.Peers[2].Status != "unreachable" {
		t.Fatalf("peers = %+v", h.Peers)
	}
}

// TestAggregateMetrics: the router's /metrics merges every reachable
// peer's telemetry into one lintable exposition where each sample
// carries its node label — one scrape target for the whole cluster.
func TestAggregateMetrics(t *testing.T) {
	a := newFakeNode(t, "node-a", 3, "ok")
	b := newFakeNode(t, "node-b", 1, "ok")
	down := newFakeNode(t, "down", 4, "ok")
	down.srv.Close()
	rt := newTestRouter(t, a, b, down)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	out := rec.Body.String()
	if err := obs.LintPrometheus(rec.Body.Bytes()); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		`kanon_server_jobs_succeeded_total{node="node-a"} 3`,
		`kanon_server_jobs_succeeded_total{node="node-b"} 1`,
		`kanon_server_jobs_running{node="node-a"} 1`,
		`kanon_server_jobs_running_max{node="node-b"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "down") {
		t.Errorf("unreachable peer leaked into the exposition:\n%s", out)
	}
	// One family head covers both nodes.
	if got := strings.Count(out, "# TYPE kanon_server_jobs_succeeded_total counter"); got != 1 {
		t.Errorf("family head appears %d times, want 1:\n%s", got, out)
	}
}

// TestAggregateMetricsAllPeersDown: an unreachable cluster is a failed
// scrape (503), never an empty-but-200 exposition.
func TestAggregateMetricsAllPeersDown(t *testing.T) {
	dead := newFakeNode(t, "dead", 4, "ok")
	dead.srv.Close()
	rt := newTestRouter(t, dead)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

// TestNewRouterRejectsBadPeers: configuration errors fail at startup,
// not at the first request.
func TestNewRouterRejectsBadPeers(t *testing.T) {
	if _, err := newRouter(routerConfig{peers: "", timeout: time.Second, maxBody: 1}); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := newRouter(routerConfig{peers: "node-a:8080", timeout: time.Second, maxBody: 1}); err == nil {
		t.Error("schemeless peer accepted")
	}
	if _, err := newRouter(routerConfig{peers: "http://a", timeout: time.Second, maxBody: 1, submitRetries: -1}); err == nil {
		t.Error("negative submit-retries accepted")
	}
	rt, err := newRouter(routerConfig{peers: " http://a/ , http://b ", timeout: time.Second, maxBody: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.peers) != 2 || rt.peers[0] != "http://a" || rt.peers[1] != "http://b" {
		t.Fatalf("peers = %v", rt.peers)
	}
}

// TestForwardOversizedBodyIs413: forwardAny must refuse a body over
// -max-body with 413, exactly as routeSubmit does — not forward a
// silently truncated read. Regression: the read error was discarded.
func TestForwardOversizedBodyIs413(t *testing.T) {
	live := newFakeNode(t, "live", 4, "ok")
	rt := newTestRouter(t, live)
	rt.maxBody = 8

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("PUT", "/v1/jobs/j-1/whatever",
		strings.NewReader(strings.Repeat("x", 64))))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
}

// TestForwardRotatesAcrossPeers: repeated reads spread across live
// peers deterministically instead of always hitting the first-listed
// one. Regression: forwardAny walked rt.peers in flag order.
func TestForwardRotatesAcrossPeers(t *testing.T) {
	var hits [2]atomic.Int64
	nodes := make([]*fakeNode, 2)
	for i := range nodes {
		i := i
		n := &fakeNode{name: fmt.Sprintf("n%d", i)}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			fmt.Fprintf(w, `{"id":%q,"state":"queued"}`, r.PathValue("id"))
		})
		n.srv = httptest.NewServer(mux)
		t.Cleanup(n.srv.Close)
		nodes[i] = n
	}
	rt := newTestRouter(t, nodes...)

	for i := 0; i < 4; i++ {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/j-1", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	if hits[0].Load() != 2 || hits[1].Load() != 2 {
		t.Fatalf("hits = %d/%d, want 2/2", hits[0].Load(), hits[1].Load())
	}
}

// TestProbeRejectsLyingPeer: a peer answering non-2xx while its body
// claims "ok" (a proxy error page, a half-crashed process) must rank
// as unreachable, not admitting. An honest non-ok status on a non-2xx
// answer (draining) keeps its word. Regression: probe never looked at
// the status code.
func TestProbeRejectsLyingPeer(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		_ = json.NewEncoder(w).Encode(peerHealth{Status: "ok", Node: "liar", Free: 4})
	})
	liar := httptest.NewServer(mux)
	defer liar.Close()

	rt, err := newRouter(routerConfig{peers: liar.URL, timeout: time.Second, maxBody: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if h := rt.probe(liar.URL); h.Status != "unreachable" {
		t.Fatalf("probe of 500-but-ok peer = %q, want unreachable", h.Status)
	}

	draining := newFakeNode(t, "drainer", 4, "draining") // answers 503 honestly
	rt2, err := newRouter(routerConfig{peers: draining.srv.URL, timeout: time.Second, maxBody: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if h := rt2.probe(draining.srv.URL); h.Status != "draining" {
		t.Fatalf("probe of honest draining peer = %q, want draining", h.Status)
	}
}

// TestMetricsSingleProbe: one scrape costs exactly one request per
// peer — the /debug/obs snapshot carries the node label itself.
// Regression: aggregateMetrics probed /healthz first, doubling probe
// traffic on every scrape.
func TestMetricsSingleProbe(t *testing.T) {
	var healthz, debug atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		healthz.Add(1)
		_ = json.NewEncoder(w).Encode(peerHealth{Status: "ok", Node: "n1"})
	})
	mux.HandleFunc("GET /debug/obs", func(w http.ResponseWriter, r *http.Request) {
		debug.Add(1)
		_ = json.NewEncoder(w).Encode(&obs.Snapshot{
			Node:     "n1",
			Counters: map[string]int64{"server.jobs_succeeded": 1},
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rt, err := newRouter(routerConfig{peers: srv.URL, timeout: time.Second, maxBody: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `node="n1"`) {
		t.Errorf("exposition missing snapshot-carried node label:\n%s", rec.Body)
	}
	if healthz.Load() != 0 || debug.Load() != 1 {
		t.Fatalf("scrape cost healthz=%d debug=%d requests, want 0/1", healthz.Load(), debug.Load())
	}
}

// TestMetricsSkipsErroringPeer: a peer whose /debug/obs answers non-200
// is skipped, not merged as an empty snapshot.
func TestMetricsSkipsErroringPeer(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/obs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{}`)
	})
	broken := httptest.NewServer(mux)
	defer broken.Close()
	good := newFakeNode(t, "good", 2, "ok")

	rt, err := newRouter(routerConfig{
		peers: broken.URL + "," + good.srv.URL, timeout: time.Second, maxBody: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `node="good"`) {
		t.Errorf("good peer missing from exposition:\n%s", rec.Body)
	}
}

// TestSubmitCarriesIdempotencyKey: the router forwards the client's
// key verbatim, and generates one when the client sent none — no
// submission ever reaches a peer unkeyed.
func TestSubmitCarriesIdempotencyKey(t *testing.T) {
	var got atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(peerHealth{Status: "ok", Node: "n1", Free: 4})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("Idempotency-Key"))
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j-1","state":"queued"}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	rt, err := newRouter(routerConfig{peers: srv.URL, timeout: time.Second, maxBody: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("POST", "/v1/jobs?k=2", strings.NewReader("x\n1\n2\n"))
	req.Header.Set("Idempotency-Key", "client-key-1")
	rt.ServeHTTP(httptest.NewRecorder(), req)
	if got.Load() != "client-key-1" {
		t.Fatalf("peer saw key %q, want the client's", got.Load())
	}

	rt.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/jobs?k=2", strings.NewReader("x\n1\n2\n")))
	key, _ := got.Load().(string)
	if !strings.HasPrefix(key, "rtr-") || len(key) <= len("rtr-") {
		t.Fatalf("peer saw generated key %q, want rtr-*", key)
	}
}

// TestSubmitRetriesSamePeerWithSameKey: a peer that accepts the job
// but drops the connection before answering gets retried — same peer,
// same Idempotency-Key — instead of the router blindly failing over
// and admitting a twin elsewhere. Exactly one job results.
func TestSubmitRetriesSamePeerWithSameKey(t *testing.T) {
	var admitted sync.Map // key → job id
	var submits atomic.Int64
	var dropped atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(peerHealth{Status: "ok", Node: "flaky", Free: 4})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		n := submits.Add(1)
		key := r.Header.Get("Idempotency-Key")
		if key == "" {
			t.Error("submission arrived without an Idempotency-Key")
		}
		id, replay := admitted.LoadOrStore(key, fmt.Sprintf("j-%d", n))
		if n == 1 {
			// Admit the job, then kill the connection before the
			// response: the client cannot tell this from a lost request.
			dropped.Store(true)
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder does not support hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		if replay {
			w.Header().Set("Idempotency-Replay", "true")
		}
		w.Header().Set("Idempotency-Key", key)
		w.Header().Set("Location", "/v1/jobs/"+id.(string))
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":%q,"state":"queued"}`, id)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rt, err := newRouter(routerConfig{
		peers: srv.URL, timeout: time.Second, maxBody: 1 << 20,
		submitRetries: 2, retryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs?k=2", strings.NewReader("x\n1\n2\n")))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !dropped.Load() || submits.Load() < 2 {
		t.Fatalf("expected a dropped first attempt plus a retry, saw %d submits", submits.Load())
	}
	jobs := 0
	admitted.Range(func(_, _ any) bool { jobs++; return true })
	if jobs != 1 {
		t.Fatalf("%d jobs admitted cluster-wide, want exactly 1", jobs)
	}
	if rec.Header().Get("Idempotency-Replay") != "true" {
		t.Errorf("replayed acceptance lost its Idempotency-Replay header")
	}
	if !strings.Contains(rec.Body.String(), `"id":"j-1"`) {
		t.Errorf("retry answered a different job: %s", rec.Body)
	}
}

// TestResultCache: a fetched result is served from the router's cache
// within the TTL — one peer round-trip no matter how often the client
// re-downloads — and expires after it.
func TestResultCache(t *testing.T) {
	var fetches atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		w.Header().Set("Content-Type", "text/csv")
		fmt.Fprint(w, "a\n1\n")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	rt, err := newRouter(routerConfig{
		peers: srv.URL, timeout: time.Second, maxBody: 1 << 20, resultTTL: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/j-1/result", nil))
		if rec.Code != http.StatusOK || rec.Body.String() != "a\n1\n" {
			t.Fatalf("fetch %d: status %d body %q", i, rec.Code, rec.Body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "text/csv" {
			t.Errorf("fetch %d: Content-Type %q", i, ct)
		}
	}
	if fetches.Load() != 1 {
		t.Fatalf("peer saw %d result fetches, want 1 (cache)", fetches.Load())
	}

	time.Sleep(60 * time.Millisecond)
	rt.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/jobs/j-1/result", nil))
	if fetches.Load() != 2 {
		t.Fatalf("peer saw %d fetches after TTL expiry, want 2", fetches.Load())
	}
}
