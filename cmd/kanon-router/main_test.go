package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kanon/internal/obs"
)

// fakeNode is an httptest stand-in for one kanond: a fixed /healthz
// payload, counted submissions, and canned job answers.
type fakeNode struct {
	name    string
	health  peerHealth
	submits atomic.Int64
	srv     *httptest.Server
}

func newFakeNode(t *testing.T, name string, free int, status string) *fakeNode {
	t.Helper()
	n := &fakeNode{name: name, health: peerHealth{
		Status: status, Node: name, Capacity: 4, Free: free, Queued: 2, Claimed: 1,
	}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		code := http.StatusOK
		if n.health.Status != "ok" {
			code = http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(n.health)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		n.submits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Location", "/v1/jobs/job-on-"+name)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"job-on-%s","state":"queued","bytes":%d}`, name, len(body))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"id":%q,"state":"succeeded","node":%q}`, r.PathValue("id"), name)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":%q,"state":"canceled"}`, r.PathValue("id"))
	})
	mux.HandleFunc("GET /debug/obs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&obs.Snapshot{
			Counters: map[string]int64{"server.jobs_succeeded": int64(free)},
			Gauges:   map[string]obs.GaugeStat{"server.jobs_running": {Last: 1, Max: 2}},
		})
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func newTestRouter(t *testing.T, nodes ...*fakeNode) *router {
	t.Helper()
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.srv.URL
	}
	rt, err := newRouter(strings.Join(urls, ","), 2*time.Second, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestSubmitGoesToFreestPeer: the submission lands on the peer
// advertising the most free slots, not the first one listed.
func TestSubmitGoesToFreestPeer(t *testing.T) {
	busy := newFakeNode(t, "busy", 0, "ok")
	free := newFakeNode(t, "free", 3, "ok")
	rt := newTestRouter(t, busy, free)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs?k=3", strings.NewReader("a\n1\n2\n3\n")))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if free.submits.Load() != 1 || busy.submits.Load() != 0 {
		t.Fatalf("submits: free=%d busy=%d, want 1/0", free.submits.Load(), busy.submits.Load())
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/jobs/job-on-free" {
		t.Errorf("Location = %q", loc)
	}
	if !strings.Contains(rec.Body.String(), `"bytes":8`) {
		t.Errorf("body not forwarded intact: %s", rec.Body)
	}
}

// TestSubmitSkipsDrainingAndDeadPeers: draining and unreachable peers
// never see the submission.
func TestSubmitSkipsDrainingAndDeadPeers(t *testing.T) {
	draining := newFakeNode(t, "draining", 4, "draining")
	dead := newFakeNode(t, "dead", 4, "ok")
	ok := newFakeNode(t, "ok", 1, "ok")
	dead.srv.Close()
	rt := newTestRouter(t, draining, dead, ok)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs?k=2", strings.NewReader("x\n1\n2\n")))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ok.submits.Load() != 1 || draining.submits.Load() != 0 {
		t.Fatalf("submits: ok=%d draining=%d", ok.submits.Load(), draining.submits.Load())
	}
}

// TestSubmitAllPeersDown: with nothing admitting, the router answers
// 503 itself instead of hanging or crashing.
func TestSubmitAllPeersDown(t *testing.T) {
	dead := newFakeNode(t, "dead", 4, "ok")
	dead.srv.Close()
	rt := newTestRouter(t, dead)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs?k=2", strings.NewReader("x\n1\n2\n")))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

// TestReadsForwardToAnyLivePeer: status reads skip dead peers and relay
// the first live answer verbatim.
func TestReadsForwardToAnyLivePeer(t *testing.T) {
	dead := newFakeNode(t, "dead", 4, "ok")
	live := newFakeNode(t, "live", 0, "ok") // busy but reachable: reads still work
	dead.srv.Close()
	rt := newTestRouter(t, dead, live)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/j-123", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"node":"live"`) {
		t.Fatalf("status %d body %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("DELETE", "/v1/jobs/j-123", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("cancel status %d", rec.Code)
	}
}

// TestAggregateHealth: capacity sums, store depths take the max (every
// node reports the same cluster-wide scan), and one admitting peer
// keeps the cluster "ok".
func TestAggregateHealth(t *testing.T) {
	a := newFakeNode(t, "a", 3, "ok")
	b := newFakeNode(t, "b", 1, "ok")
	down := newFakeNode(t, "down", 4, "ok")
	down.srv.Close()
	rt := newTestRouter(t, a, b, down)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var h struct {
		Status   string `json:"status"`
		Version  string `json:"version"`
		Capacity int    `json:"capacity"`
		Free     int    `json:"free"`
		Queued   int    `json:"queued"`
		Claimed  int    `json:"claimed"`
		Peers    []struct {
			Status string `json:"status"`
		} `json:"peers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Capacity != 8 || h.Free != 4 || h.Queued != 2 || h.Claimed != 1 {
		t.Fatalf("aggregate = %+v", h)
	}
	if h.Version == "" {
		t.Error("router /healthz missing its build version")
	}
	if len(h.Peers) != 3 || h.Peers[2].Status != "unreachable" {
		t.Fatalf("peers = %+v", h.Peers)
	}
}

// TestAggregateMetrics: the router's /metrics merges every reachable
// peer's telemetry into one lintable exposition where each sample
// carries its node label — one scrape target for the whole cluster.
func TestAggregateMetrics(t *testing.T) {
	a := newFakeNode(t, "node-a", 3, "ok")
	b := newFakeNode(t, "node-b", 1, "ok")
	down := newFakeNode(t, "down", 4, "ok")
	down.srv.Close()
	rt := newTestRouter(t, a, b, down)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	out := rec.Body.String()
	if err := obs.LintPrometheus(rec.Body.Bytes()); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		`kanon_server_jobs_succeeded_total{node="node-a"} 3`,
		`kanon_server_jobs_succeeded_total{node="node-b"} 1`,
		`kanon_server_jobs_running{node="node-a"} 1`,
		`kanon_server_jobs_running_max{node="node-b"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "down") {
		t.Errorf("unreachable peer leaked into the exposition:\n%s", out)
	}
	// One family head covers both nodes.
	if got := strings.Count(out, "# TYPE kanon_server_jobs_succeeded_total counter"); got != 1 {
		t.Errorf("family head appears %d times, want 1:\n%s", got, out)
	}
}

// TestAggregateMetricsAllPeersDown: an unreachable cluster is a failed
// scrape (503), never an empty-but-200 exposition.
func TestAggregateMetricsAllPeersDown(t *testing.T) {
	dead := newFakeNode(t, "dead", 4, "ok")
	dead.srv.Close()
	rt := newTestRouter(t, dead)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

// TestNewRouterRejectsBadPeers: configuration errors fail at startup,
// not at the first request.
func TestNewRouterRejectsBadPeers(t *testing.T) {
	if _, err := newRouter("", time.Second, 1); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := newRouter("node-a:8080", time.Second, 1); err == nil {
		t.Error("schemeless peer accepted")
	}
	rt, err := newRouter(" http://a/ , http://b ", time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.peers) != 2 || rt.peers[0] != "http://a" || rt.peers[1] != "http://b" {
		t.Fatalf("peers = %v", rt.peers)
	}
}
