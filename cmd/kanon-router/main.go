// Command kanon-router is a thin HTTP front end for a kanond cluster:
// one stable address in front of N nodes sharing a data directory (or
// replicating it with -replicate-peers).
//
// Usage:
//
//	kanon-router -addr :8080 -peers http://node-a:8081,http://node-b:8082
//
// Submissions (POST /v1/jobs) go to the peer advertising the most free
// worker slots on its /healthz; peers that are down or draining are
// skipped. Every submission carries an Idempotency-Key — the client's
// if it sent one, a router-generated one otherwise — so a request that
// fails at the connection level is retried against the same peer with
// backoff: if the peer admitted the job and died before answering, the
// retry replays the original acceptance instead of admitting a twin,
// and failing over to a sibling is equally safe. Admission rejections
// (429, 503) fail over to the next-freest peer.
//
// Reads (status, results) and cancels go to any live peer — cluster
// nodes answer for every job in the store, not just their own — with
// the starting peer rotated per request so one node does not absorb
// all read traffic. Fetched job results are kept in a TTL-bounded
// cache (results are immutable once written), so a client polling a
// finished job's result does not hammer the cluster. Beyond that cache
// the router holds no state: no queue, no job table, nothing to lose.
// Its own /healthz aggregates the per-node payloads into a cluster
// capacity picture, and /metrics merges every node's telemetry into
// one exposition.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"kanon/internal/obs"
)

// buildVersion identifies this router binary in /healthz, alongside
// the per-peer versions — one request shows whether a rolling upgrade
// left the cluster mixed.
var buildVersion = obs.ReadBuild().String()

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kanon-router:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until a signal (or a close of the
// test-only stop channel). ready, if non-nil, receives the bound
// address.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}, ready chan<- string) error {
	fs := flag.NewFlagSet("kanon-router", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	peers := fs.String("peers", "", "comma-separated base URLs of the kanond nodes (required)")
	timeout := fs.Duration("peer-timeout", 30*time.Second, "per-peer request timeout")
	maxBody := fs.Int64("max-body", 32<<20, "request body limit in bytes (buffered for submit failover)")
	submitRetries := fs.Int("submit-retries", 2, "same-peer retries when a submission fails at the connection level")
	retryBackoff := fs.Duration("retry-backoff", 100*time.Millisecond, "backoff before the first submit retry (doubles per attempt)")
	resultTTL := fs.Duration("result-cache-ttl", 30*time.Second, "how long fetched job results are served from the router's cache (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rt, err := newRouter(routerConfig{
		peers:         *peers,
		timeout:       *timeout,
		maxBody:       *maxBody,
		submitRetries: *submitRetries,
		retryBackoff:  *retryBackoff,
		resultTTL:     *resultTTL,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{Handler: rt}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(stdout, "kanon-router listening on %s, %d peers\n", ln.Addr(), len(rt.peers))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return err
	case <-sig:
	case <-stop:
	}
	// The router is stateless; nothing needs draining beyond in-flight
	// responses.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return hs.Shutdown(ctx)
}

// peerHealth mirrors the fields of kanond's /healthz the router
// balances on.
type peerHealth struct {
	Status   string `json:"status"`
	Node     string `json:"node"`
	Version  string `json:"version,omitempty"`
	Capacity int    `json:"capacity"`
	Free     int    `json:"free"`
	Running  int    `json:"running"`
	Queued   int    `json:"queued"`
	Claimed  int    `json:"claimed"`
}

// routerConfig carries the router's knobs from flags (or tests).
type routerConfig struct {
	peers         string
	timeout       time.Duration
	maxBody       int64
	submitRetries int
	retryBackoff  time.Duration
	resultTTL     time.Duration
}

// router forwards requests to the healthiest peer. Routing decisions
// are made from live /healthz probes; the only state is a rotation
// counter (so ties don't always land on the first-listed peer) and the
// TTL cache of immutable job results.
type router struct {
	peers         []string
	client        *http.Client
	maxBody       int64
	submitRetries int
	retryBackoff  time.Duration
	rr            atomic.Uint64
	cache         resultCache
}

func newRouter(cfg routerConfig) (*router, error) {
	var peers []string
	for _, p := range strings.Split(cfg.peers, ",") {
		p = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(p), "/"))
		if p == "" {
			continue
		}
		if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
			return nil, fmt.Errorf("peer %q: want an http(s) base URL", p)
		}
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, errors.New("no peers: pass -peers http://host:port[,...]")
	}
	if cfg.submitRetries < 0 {
		return nil, fmt.Errorf("submit-retries %d: want >= 0", cfg.submitRetries)
	}
	return &router{
		peers:         peers,
		client:        &http.Client{Timeout: cfg.timeout},
		maxBody:       cfg.maxBody,
		submitRetries: cfg.submitRetries,
		retryBackoff:  cfg.retryBackoff,
		cache:         resultCache{ttl: cfg.resultTTL},
	}, nil
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
		rt.routeSubmit(w, r)
	case r.URL.Path == "/healthz":
		rt.aggregateHealth(w)
	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		rt.aggregateMetrics(w)
	default:
		// Status, results, cancels, debug: any live peer can answer
		// (job reads go through the replicated store on every node).
		rt.forwardAny(w, r)
	}
}

// next returns the starting offset into rt.peers for this request,
// advancing once per call so ties rotate across peers instead of
// always landing on the first one listed. A counter, not randomness:
// replaying a request sequence reproduces the same peer choices.
func (rt *router) next() int {
	return int((rt.rr.Add(1) - 1) % uint64(len(rt.peers)))
}

// probe fetches one peer's health. Unreachable peers come back with
// Status "unreachable" rather than an error, so callers can rank and
// report them uniformly. A non-2xx answer counts as unreachable unless
// the body decodes to an honest non-ok status (a draining node answers
// 503 with status "draining"); a 500 claiming "ok" — a proxy error
// page, a half-crashed process — must not rank as admitting.
func (rt *router) probe(peer string) peerHealth {
	resp, err := rt.client.Get(peer + "/healthz")
	if err != nil {
		return peerHealth{Status: "unreachable"}
	}
	defer resp.Body.Close()
	var h peerHealth
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return peerHealth{Status: "unreachable"}
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		if h.Status == "" || h.Status == "ok" {
			return peerHealth{Status: "unreachable", Node: h.Node}
		}
	}
	return h
}

// rankedPeers probes every peer and orders the admitting ones freest
// first; draining or unreachable peers are excluded. The probe order
// rotates per request, so equally-free peers share the load instead of
// the tie always resolving in flag order.
func (rt *router) rankedPeers() []string {
	type ranked struct {
		peer string
		h    peerHealth
	}
	start, n := rt.next(), len(rt.peers)
	var ok []ranked
	for i := 0; i < n; i++ {
		p := rt.peers[(start+i)%n]
		if h := rt.probe(p); h.Status == "ok" {
			ok = append(ok, ranked{p, h})
		}
	}
	sort.SliceStable(ok, func(i, j int) bool { return ok[i].h.Free > ok[j].h.Free })
	out := make([]string, len(ok))
	for i, r := range ok {
		out[i] = r.peer
	}
	return out
}

// peerReply is one peer's complete answer to a forwarded request.
type peerReply struct {
	code int
	hdr  http.Header
	body []byte
}

// routeSubmit buffers the body (so it can be replayed) and offers the
// submission to admitting peers, freest first, until one accepts it.
// Every attempt carries the same Idempotency-Key — the client's, or a
// generated one — so retries and failover can never admit the job
// twice. Admission rejections that a sibling might not repeat (429,
// 503) fail over; anything else — including 4xx validation errors,
// which every peer would repeat verbatim — is relayed as-is.
func (rt *router) routeSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		key = "rtr-" + obs.NewRunID()
	}
	peers := rt.rankedPeers()
	if len(peers) == 0 {
		writeError(w, http.StatusServiceUnavailable, errors.New("no admitting peers"))
		return
	}
	var last *peerReply
	for _, peer := range peers {
		reply, err := rt.submitTo(r.Context(), peer, r.URL.RawQuery, r.Header.Get("Content-Type"), key, body)
		if err != nil {
			continue // connection errors exhausted their retries: fail over
		}
		if reply.code == http.StatusTooManyRequests || reply.code == http.StatusServiceUnavailable {
			last = reply
			continue
		}
		relay(w, reply.code, reply.hdr, reply.body)
		return
	}
	if last != nil {
		relay(w, last.code, last.hdr, last.body)
		return
	}
	writeError(w, http.StatusServiceUnavailable, errors.New("every peer refused the submission"))
}

// submitTo posts the buffered submission to one peer, retrying the
// same peer with backoff when the connection fails. A connection error
// is ambiguous — the peer may have admitted the job and died before
// answering — and only a retry with the same Idempotency-Key can tell
// "lost request" from "lost response": kanond replays the original
// acceptance for a key it has already bound.
func (rt *router) submitTo(ctx context.Context, peer, rawQuery, contentType, key string, body []byte) (*peerReply, error) {
	var lastErr error
	for attempt := 0; attempt <= rt.submitRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(rt.retryBackoff << (attempt - 1)):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			peer+"/v1/jobs?"+rawQuery, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		req.Header.Set("Idempotency-Key", key)
		resp, err := rt.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return &peerReply{code: resp.StatusCode, hdr: resp.Header, body: b}, nil
	}
	return nil, lastErr
}

// forwardAny relays the request to the first peer that answers at all —
// for reads any node's answer is authoritative, and 404 from a live
// peer means the job is gone everywhere, not "try the next one". The
// starting peer rotates per request. Successful result fetches are
// served from (and feed) the TTL cache: a job's result bytes are
// immutable once written.
func (rt *router) forwardAny(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBody))
		if err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
	}
	id := resultJobID(r)
	if id != "" {
		if hdr, b, ok := rt.cache.get(id); ok {
			relay(w, http.StatusOK, hdr, b)
			return
		}
	}
	start, n := rt.next(), len(rt.peers)
	for i := 0; i < n; i++ {
		peer := rt.peers[(start+i)%n]
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			peer+r.URL.Path+query(r), bytes.NewReader(body))
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if id != "" && resp.StatusCode == http.StatusOK {
			rt.cache.put(id, resp.Header, b)
		}
		relay(w, resp.StatusCode, resp.Header, b)
		return
	}
	writeError(w, http.StatusServiceUnavailable, errors.New("no reachable peers"))
}

// resultJobID extracts the job ID when the request is a result fetch
// (GET /v1/jobs/{id}/result) — the one response the router may cache.
// Everything else returns "".
func resultJobID(r *http.Request) string {
	if r.Method != http.MethodGet {
		return ""
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/jobs/")
	if !ok {
		return ""
	}
	id, ok := strings.CutSuffix(rest, "/result")
	if !ok || id == "" || strings.Contains(id, "/") {
		return ""
	}
	return id
}

// resultCache holds recently fetched job results. Result bytes are
// immutable once a job succeeds, so serving them from memory is always
// correct; the TTL only bounds how long the router holds them (and how
// long a deleted job's result outlives its reaping).
type resultCache struct {
	ttl     time.Duration
	mu      sync.Mutex
	entries map[string]resultEntry
}

type resultEntry struct {
	hdr     http.Header
	body    []byte
	expires time.Time
}

func (c *resultCache) get(id string) (http.Header, []byte, bool) {
	if c.ttl <= 0 {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok || time.Now().After(e.expires) {
		delete(c.entries, id)
		return nil, nil, false
	}
	return e.hdr, e.body, true
}

func (c *resultCache) put(id string, hdr http.Header, body []byte) {
	if c.ttl <= 0 {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]resultEntry)
	}
	for k, e := range c.entries { // opportunistic prune: the map stays TTL-bounded
		if now.After(e.expires) {
			delete(c.entries, k)
		}
	}
	c.entries[id] = resultEntry{hdr: hdr, body: body, expires: now.Add(c.ttl)}
}

// aggregateHealth renders the cluster capacity picture: per-peer
// payloads plus totals. 200 while any peer admits work.
func (rt *router) aggregateHealth(w http.ResponseWriter) {
	type entry struct {
		Peer string `json:"peer"`
		peerHealth
	}
	out := struct {
		Status   string  `json:"status"`
		Version  string  `json:"version,omitempty"`
		Capacity int     `json:"capacity"`
		Free     int     `json:"free"`
		Running  int     `json:"running"`
		Queued   int     `json:"queued"`
		Claimed  int     `json:"claimed"`
		Peers    []entry `json:"peers"`
	}{Status: "unavailable", Version: buildVersion}
	for _, p := range rt.peers {
		h := rt.probe(p)
		out.Peers = append(out.Peers, entry{Peer: p, peerHealth: h})
		if h.Status != "ok" {
			continue
		}
		out.Status = "ok"
		out.Capacity += h.Capacity
		out.Free += h.Free
		out.Running += h.Running
		// Queued/Claimed are cluster-wide store scans, identical on every
		// node; report the max rather than a multiple-counted sum.
		out.Queued = max(out.Queued, h.Queued)
		out.Claimed = max(out.Claimed, h.Claimed)
	}
	code := http.StatusOK
	if out.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(out)
}

// aggregateMetrics renders one Prometheus exposition for the whole
// cluster: every reachable peer's telemetry snapshot (its /debug/obs
// payload), merged with a `node` label distinguishing the series. A
// single scrape target therefore covers N nodes without any peer
// needing to know about the others. One request per peer per scrape:
// the snapshot itself carries the node ID (falling back to the peer
// address for single-node peers), so no separate health probe is
// needed. Peers that are down or answer non-200 are skipped; if none
// answer, the scrape fails loudly with 503 rather than masquerading as
// an empty-but-healthy cluster.
func (rt *router) aggregateMetrics(w http.ResponseWriter) {
	var nodes []obs.NodeSnapshot
	for _, p := range rt.peers {
		resp, err := rt.client.Get(p + "/debug/obs")
		if err != nil {
			continue
		}
		var snap obs.Snapshot
		err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&snap)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		node := snap.Node
		if node == "" {
			// Single-node peers report no node id; label by address so
			// the series still separate per peer.
			node = strings.TrimPrefix(strings.TrimPrefix(p, "http://"), "https://")
		}
		nodes = append(nodes, obs.NodeSnapshot{Node: node, Snap: &snap})
	}
	if len(nodes) == 0 {
		writeError(w, http.StatusServiceUnavailable, errors.New("no reachable peers"))
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = obs.WritePrometheusNodes(w, "kanon", nodes)
}

// query re-renders the request's query string, ?-prefixed when present.
func query(r *http.Request) string {
	if r.URL.RawQuery == "" {
		return ""
	}
	return "?" + r.URL.RawQuery
}

// relay copies a peer response (selected headers, code, body) out.
func relay(w http.ResponseWriter, code int, hdr http.Header, body []byte) {
	for _, k := range []string{"Content-Type", "Location", "Retry-After", "Idempotency-Key", "Idempotency-Replay"} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// writeError answers a JSON error envelope, matching kanond's shape.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
