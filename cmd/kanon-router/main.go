// Command kanon-router is a thin HTTP front end for a kanond cluster:
// one stable address in front of N nodes sharing a data directory.
//
// Usage:
//
//	kanon-router -addr :8080 -peers http://node-a:8081,http://node-b:8082
//
// Submissions (POST /v1/jobs) go to the peer advertising the most free
// worker slots on its /healthz; peers that are down or draining are
// skipped, and a rejected submission fails over to the next-freest peer.
// Reads (status, results) and cancels go to any live peer — cluster
// nodes answer for every job in the shared store, not just their own —
// so the router holds no state at all: no queue, no job table, nothing
// to lose. Its own /healthz aggregates the per-node payloads into a
// cluster capacity picture.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"kanon/internal/obs"
)

// buildVersion identifies this router binary in /healthz, alongside
// the per-peer versions — one request shows whether a rolling upgrade
// left the cluster mixed.
var buildVersion = obs.ReadBuild().String()

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kanon-router:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until a signal (or a close of the
// test-only stop channel). ready, if non-nil, receives the bound
// address.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}, ready chan<- string) error {
	fs := flag.NewFlagSet("kanon-router", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	peers := fs.String("peers", "", "comma-separated base URLs of the kanond nodes (required)")
	timeout := fs.Duration("peer-timeout", 30*time.Second, "per-peer request timeout")
	maxBody := fs.Int64("max-body", 32<<20, "request body limit in bytes (buffered for submit failover)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rt, err := newRouter(*peers, *timeout, *maxBody)
	if err != nil {
		return err
	}

	hs := &http.Server{Handler: rt}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(stdout, "kanon-router listening on %s, %d peers\n", ln.Addr(), len(rt.peers))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return err
	case <-sig:
	case <-stop:
	}
	// The router is stateless; nothing needs draining beyond in-flight
	// responses.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return hs.Shutdown(ctx)
}

// peerHealth mirrors the fields of kanond's /healthz the router
// balances on.
type peerHealth struct {
	Status   string `json:"status"`
	Node     string `json:"node"`
	Version  string `json:"version,omitempty"`
	Capacity int    `json:"capacity"`
	Free     int    `json:"free"`
	Running  int    `json:"running"`
	Queued   int    `json:"queued"`
	Claimed  int    `json:"claimed"`
}

// router forwards requests to the healthiest peer. It is stateless:
// every routing decision is made from live /healthz probes.
type router struct {
	peers   []string
	client  *http.Client
	maxBody int64
}

func newRouter(peerList string, timeout time.Duration, maxBody int64) (*router, error) {
	var peers []string
	for _, p := range strings.Split(peerList, ",") {
		p = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(p), "/"))
		if p == "" {
			continue
		}
		if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
			return nil, fmt.Errorf("peer %q: want an http(s) base URL", p)
		}
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, errors.New("no peers: pass -peers http://host:port[,...]")
	}
	return &router{
		peers:   peers,
		client:  &http.Client{Timeout: timeout},
		maxBody: maxBody,
	}, nil
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
		rt.routeSubmit(w, r)
	case r.URL.Path == "/healthz":
		rt.aggregateHealth(w)
	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		rt.aggregateMetrics(w)
	default:
		// Status, results, cancels, debug: any live peer can answer
		// (job reads go through the shared store on every node).
		rt.forwardAny(w, r)
	}
}

// probe fetches one peer's health. Unreachable peers come back with
// Status "unreachable" rather than an error, so callers can rank and
// report them uniformly.
func (rt *router) probe(peer string) peerHealth {
	resp, err := rt.client.Get(peer + "/healthz")
	if err != nil {
		return peerHealth{Status: "unreachable"}
	}
	defer resp.Body.Close()
	var h peerHealth
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return peerHealth{Status: "unreachable"}
	}
	return h
}

// rankedPeers probes every peer and orders the admitting ones freest
// first; draining or unreachable peers are excluded.
func (rt *router) rankedPeers() []string {
	type ranked struct {
		peer string
		h    peerHealth
	}
	var ok []ranked
	for _, p := range rt.peers {
		if h := rt.probe(p); h.Status == "ok" {
			ok = append(ok, ranked{p, h})
		}
	}
	sort.SliceStable(ok, func(i, j int) bool { return ok[i].h.Free > ok[j].h.Free })
	out := make([]string, len(ok))
	for i, r := range ok {
		out[i] = r.peer
	}
	return out
}

// routeSubmit buffers the body (so it can be replayed) and offers the
// submission to admitting peers, freest first, until one accepts it.
// Admission rejections that a sibling might not repeat (429, 503) fail
// over; anything else — including 4xx validation errors, which every
// peer would repeat verbatim — is relayed as-is.
func (rt *router) routeSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	peers := rt.rankedPeers()
	if len(peers) == 0 {
		writeError(w, http.StatusServiceUnavailable, errors.New("no admitting peers"))
		return
	}
	var lastCode int
	var lastBody []byte
	var lastHdr http.Header
	for _, peer := range peers {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			peer+"/v1/jobs?"+r.URL.RawQuery, bytes.NewReader(body))
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
		resp, err := rt.client.Do(req)
		if err != nil {
			continue // peer died between probe and submit: next
		}
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			lastCode, lastBody, lastHdr = resp.StatusCode, b, resp.Header
			continue
		}
		relay(w, resp.StatusCode, resp.Header, b)
		return
	}
	if lastCode != 0 {
		relay(w, lastCode, lastHdr, lastBody)
		return
	}
	writeError(w, http.StatusServiceUnavailable, errors.New("every peer refused the submission"))
}

// forwardAny relays the request to the first peer that answers at all —
// for reads any node's answer is authoritative, and 404 from a live
// peer means the job is gone everywhere, not "try the next one".
func (rt *router) forwardAny(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		body, _ = io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBody))
	}
	for _, peer := range rt.peers {
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			peer+r.URL.Path+query(r), bytes.NewReader(body))
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		relay(w, resp.StatusCode, resp.Header, b)
		return
	}
	writeError(w, http.StatusServiceUnavailable, errors.New("no reachable peers"))
}

// aggregateHealth renders the cluster capacity picture: per-peer
// payloads plus totals. 200 while any peer admits work.
func (rt *router) aggregateHealth(w http.ResponseWriter) {
	type entry struct {
		Peer string `json:"peer"`
		peerHealth
	}
	out := struct {
		Status   string  `json:"status"`
		Version  string  `json:"version,omitempty"`
		Capacity int     `json:"capacity"`
		Free     int     `json:"free"`
		Running  int     `json:"running"`
		Queued   int     `json:"queued"`
		Claimed  int     `json:"claimed"`
		Peers    []entry `json:"peers"`
	}{Status: "unavailable", Version: buildVersion}
	for _, p := range rt.peers {
		h := rt.probe(p)
		out.Peers = append(out.Peers, entry{Peer: p, peerHealth: h})
		if h.Status != "ok" {
			continue
		}
		out.Status = "ok"
		out.Capacity += h.Capacity
		out.Free += h.Free
		out.Running += h.Running
		// Queued/Claimed are cluster-wide store scans, identical on every
		// node; report the max rather than a multiple-counted sum.
		out.Queued = max(out.Queued, h.Queued)
		out.Claimed = max(out.Claimed, h.Claimed)
	}
	code := http.StatusOK
	if out.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(out)
}

// aggregateMetrics renders one Prometheus exposition for the whole
// cluster: every reachable peer's telemetry snapshot (its /debug/obs
// payload), merged with a `node` label distinguishing the series. A
// single scrape target therefore covers N nodes without any peer
// needing to know about the others. Peers that are down are skipped;
// if none answer, the scrape fails loudly with 503 rather than
// masquerading as an empty-but-healthy cluster.
func (rt *router) aggregateMetrics(w http.ResponseWriter) {
	var nodes []obs.NodeSnapshot
	for _, p := range rt.peers {
		node := rt.probe(p).Node
		if node == "" {
			// Single-node peers report no node id; label by address so
			// the series still separate per peer.
			node = strings.TrimPrefix(strings.TrimPrefix(p, "http://"), "https://")
		}
		resp, err := rt.client.Get(p + "/debug/obs")
		if err != nil {
			continue
		}
		var snap obs.Snapshot
		err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			continue
		}
		nodes = append(nodes, obs.NodeSnapshot{Node: node, Snap: &snap})
	}
	if len(nodes) == 0 {
		writeError(w, http.StatusServiceUnavailable, errors.New("no reachable peers"))
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = obs.WritePrometheusNodes(w, "kanon", nodes)
}

// query re-renders the request's query string, ?-prefixed when present.
func query(r *http.Request) string {
	if r.URL.RawQuery == "" {
		return ""
	}
	return "?" + r.URL.RawQuery
}

// relay copies a peer response (selected headers, code, body) out.
func relay(w http.ResponseWriter, code int, hdr http.Header, body []byte) {
	for _, k := range []string{"Content-Type", "Location", "Retry-After"} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// writeError answers a JSON error envelope, matching kanond's shape.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
