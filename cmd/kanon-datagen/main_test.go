package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kanon/internal/hierarchy"
	"kanon/internal/relation"
)

func runGen(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), err
}

func TestAllWorkloads(t *testing.T) {
	for _, w := range []string{"uniform", "zipf", "planted", "census"} {
		out, err := runGen(t, "-workload", w, "-n", "20", "-m", "4")
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 21 {
			t.Errorf("%s: %d lines, want 21", w, len(lines))
		}
		if fields := strings.Split(lines[0], ","); len(fields) != 4 {
			t.Errorf("%s: header %q", w, lines[0])
		}
	}
}

func TestSunflower(t *testing.T) {
	out, err := runGen(t, "-workload", "sunflower", "-petals", "3", "-width", "2")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + center + 3 petals
		t.Errorf("%d lines, want 5", len(lines))
	}
}

func TestDeterministic(t *testing.T) {
	a, err := runGen(t, "-workload", "census", "-n", "15", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	b, err := runGen(t, "-workload", "census", "-n", "15", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed produced different output")
	}
}

func TestValidation(t *testing.T) {
	if _, err := runGen(t, "-workload", "bogus"); err == nil {
		t.Error("accepted unknown workload")
	}
	if _, err := runGen(t, "-n", "0"); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := runGen(t, "-badflag"); err == nil {
		t.Error("accepted unknown flag")
	}
}

// TestPipelineIntoAnonymizer: datagen output must be valid kanon input
// (integration through the CSV contract).
func TestPipelineIntoAnonymizer(t *testing.T) {
	out, err := runGen(t, "-workload", "zipf", "-n", "30", "-m", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ",") || strings.Contains(out, "*") {
		t.Errorf("unexpected datagen output: %q", out[:50])
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runGen(t, "-version")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) == "" {
		t.Error("-version printed nothing")
	}
	if strings.Contains(out, ",") {
		t.Errorf("-version emitted CSV instead of provenance: %q", out)
	}
}

func TestHierarchySidecar(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	out, err := runGen(t, "-workload", "census", "-n", "30", "-m", "5", "-hierarchy", specPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := hierarchy.ParseSpec(b)
	if err != nil {
		t.Fatalf("emitted sidecar does not parse: %v", err)
	}
	// The sidecar must compile against the very table it was derived
	// from — every emitted value covered, every column declared.
	header, rows, err := relation.ReadCSVRows(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(relation.NewSchema(header...))
	for _, r := range rows {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := hierarchy.Compile(spec, tab); err != nil {
		t.Fatalf("sidecar does not compile against its own table: %v", err)
	}
}
