// Command kanon-datagen emits the reproduction's synthetic workloads as
// CSV, for experimenting with cmd/kanon or external tools.
//
// Usage:
//
//	kanon-datagen -workload census -n 500 -m 8 [-seed 1] > data.csv
//
// Workloads: uniform, zipf, planted, census, sunflower.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"kanon/internal/dataset"
	"kanon/internal/hierarchy"
	"kanon/internal/obs"
	"kanon/internal/relation"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kanon-datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kanon-datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "census", "uniform | zipf | planted | census | sunflower")
	n := fs.Int("n", 100, "rows")
	m := fs.Int("m", 8, "columns")
	alphabet := fs.Int("alphabet", 6, "alphabet size per column (uniform, zipf, planted)")
	k := fs.Int("k", 3, "cluster size for the planted workload")
	noise := fs.Int("noise", 1, "max perturbed coordinates per planted row")
	skew := fs.Float64("skew", 1.5, "Zipf exponent (> 1)")
	petals := fs.Int("petals", 4, "sunflower petals")
	width := fs.Int("width", 2, "sunflower petal width")
	seed := fs.Int64("seed", 1, "generator seed")
	hierOut := fs.String("hierarchy", "", "also write a matching generalization-hierarchy sidecar (JSON) to this path, for kanon -algo hierarchy")
	version := fs.Bool("version", false, "print build provenance and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, obs.ReadBuild().String())
		return nil
	}
	if *n < 1 || *m < 1 {
		return fmt.Errorf("need n ≥ 1 and m ≥ 1")
	}

	rng := rand.New(rand.NewSource(*seed))
	var t *relation.Table
	switch *workload {
	case "uniform":
		t = dataset.Uniform(rng, *n, *m, *alphabet)
	case "zipf":
		t = dataset.Zipf(rng, *n, *m, *alphabet, *skew)
	case "planted":
		t = dataset.Planted(rng, *n, *m, *alphabet, *k, *noise)
	case "census":
		t = dataset.Census(rng, *n, *m)
	case "sunflower":
		t = dataset.Sunflower(*petals, *width)
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}

	if *hierOut != "" {
		// The derived spec covers exactly this table's values, so the
		// pair is ready for `kanon -algo hierarchy -hierarchy <path>`.
		b, err := hierarchy.Derive(t).Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*hierOut, b, 0o644); err != nil {
			return err
		}
	}

	cw := csv.NewWriter(stdout)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	for i := 0; i < t.Len(); i++ {
		if err := cw.Write(t.Strings(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
