package main

import (
	"encoding/csv"
	"fmt"
	"io"
)

// readCSV parses a header + rows table from CSV.
func readCSV(r io.Reader) (header []string, rows [][]string, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err = cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("reading CSV header: %w", err)
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, nil, fmt.Errorf("CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		rows = append(rows, rec)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("no data rows")
	}
	return header, rows, nil
}

// writeCSV renders a header + rows table as CSV.
func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
