// Command kanon k-anonymizes a CSV table by entry suppression.
//
// Usage:
//
//	kanon -k 3 [-algo ball] [-in table.csv] [-out anon.csv] [-stats]
//
// The input's first record is the header. The output is the same table
// with suppressed entries replaced by "*"; -stats prints the objective
// value and group structure to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kanon"
	"kanon/internal/core"
	"kanon/internal/metric"
	"kanon/internal/obs"
	"kanon/internal/quality"
	"kanon/internal/relation"
	"kanon/internal/stream"
)

func main() {
	// SIGINT/SIGTERM cancel the run's context, so even a large -block
	// pass (or a long exact solve) aborts at its next context poll and
	// unwinds cleanly instead of dying at process teardown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "kanon: canceled")
		} else {
			fmt.Fprintln(os.Stderr, "kanon:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	// `kanon jobs ...` is a remote-inspection subcommand, not an
	// anonymization run; dispatch before the main flag set sees it.
	if len(args) > 0 && args[0] == "jobs" {
		return runJobsCmd(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("kanon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	k := fs.Int("k", 3, "anonymity parameter: every released row is identical to ≥ k−1 others")
	algoName := fs.String("algo", "ball", "algorithm: "+strings.Join(kanon.AlgorithmNames(), ", "))
	hierPath := fs.String("hierarchy", "", "generalization-hierarchy sidecar (JSON or CSV) for -algo hierarchy; empty derives one from the data")
	suppress := fs.Int("suppress", 0, "row-suppression budget for -algo hierarchy: up to this many outlier rows release fully starred")
	inPath := fs.String("in", "", "input CSV path (default stdin)")
	outPath := fs.String("out", "", "output CSV path (default stdout)")
	stats := fs.Bool("stats", false, "print cost and group sizes to stderr")
	seed := fs.Int64("seed", 1, "shuffle seed for -algo random")
	refine := fs.Bool("refine", false, "post-optimize with cost-direct local search (never worse)")
	verify := fs.Bool("verify", false, "verify the input is already k-anonymous instead of anonymizing; exit 1 if not")
	block := fs.Int("block", 0, "stream in blocks of this many rows (bounded memory; 0 = whole table at once)")
	workers := fs.Int("workers", 0, "worker goroutines for the parallel hot paths (0 = all CPUs, 1 = sequential; output is identical)")
	kernelName := fs.String("kernel", "auto", "distance kernel: auto, dense (precomputed O(n²) matrix), or bitset (matrix-free popcount rows; output is identical)")
	weightsArg := fs.String("weights", "", "comma-separated per-column suppression weights, e.g. 3,1,1,5 (ball and exact only)")
	trace := fs.Bool("trace", false, "print the phase-timing tree and counters to stderr")
	traceJSON := fs.Bool("trace-json", false, "print the trace as one JSON object to stderr")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof, expvar, /debug/obs, and /metrics on this address for the duration of the run (e.g. localhost:6060)")
	progress := fs.Bool("progress", false, "render a live progress/ETA line to stderr during the run")
	metricsOut := fs.String("metrics-out", "", "write the final metrics in Prometheus text format to this file")
	logEvents := fs.Bool("log", false, "emit structured JSON run events (log/slog) to stderr")
	version := fs.Bool("version", false, "print build provenance and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, obs.ReadBuild().String())
		return nil
	}

	alg, err := kanon.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	kern, err := kanon.ParseKernel(*kernelName)
	if err != nil {
		return err
	}
	if alg != kanon.AlgoHierarchy && (*hierPath != "" || *suppress != 0) {
		return fmt.Errorf("-hierarchy and -suppress require -algo hierarchy (got -algo %s)", alg)
	}
	if alg == kanon.AlgoHierarchy && *block > 0 {
		return fmt.Errorf("-algo hierarchy searches the whole lattice and cannot stream; drop -block")
	}
	var hspec *kanon.HierarchySpec
	if *hierPath != "" {
		b, err := os.ReadFile(*hierPath)
		if err != nil {
			return err
		}
		hspec, err = kanon.ParseHierarchySpec(b)
		if err != nil {
			return err
		}
	}

	// The whole run is traced under one root span so the printed tree
	// accounts for (nearly) all of the process wall time: CSV load, the
	// anonymization itself (the facade attaches its phase tree under the
	// span it is handed), and CSV write. Everything is a no-op when
	// tracing is off; -progress, -metrics-out, and -debug-addr need the
	// live tracer, so they imply it.
	tracing := *trace || *traceJSON || *debugAddr != "" || *progress || *metricsOut != ""
	var tr *obs.Tracer
	var root *obs.Span
	if tracing {
		tr = obs.New()
		root = tr.Start("kanon")
	}
	if *debugAddr != "" {
		if _, err := obs.StartDebugServer(*debugAddr, func() *obs.Snapshot { return tr.Snapshot() }); err != nil {
			return err
		}
	}
	var logger *slog.Logger
	if *logEvents {
		logger = slog.New(slog.NewJSONHandler(stderr, nil))
	}
	stopProgress := func() {}
	if *progress {
		stopProgress = startProgressTicker(stderr, tr)
	}
	defer stopProgress()

	in := stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	ls := root.Start("load-csv")
	header, rows, err := relation.ReadCSVRows(in)
	ls.End()
	if err != nil {
		return err
	}

	if *verify {
		ok, err := kanon.Verify(header, rows, *k)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("input is NOT %d-anonymous", *k)
		}
		fmt.Fprintf(stderr, "input is %d-anonymous (%d suppressed entries)\n", *k, kanon.Cost(rows))
		return nil
	}

	weights, err := parseWeights(*weightsArg, len(header))
	if err != nil {
		return err
	}

	var res *kanon.Result
	as := root.Start("anonymize")
	if *block > 0 {
		// The block path threads the span straight into the stream
		// pipeline, so its per-block spans land under "anonymize".
		res, err = streamAnonymize(ctx, header, rows, *k, *block, *refine, *workers, *kernelName, as, obs.NewEvents(logger, obs.NewRunID()))
	} else {
		// The facade attaches its phase tree under this span directly,
		// so the debug server and the progress ticker observe the run
		// live rather than after the fact.
		res, err = kanon.AnonymizeContext(ctx, header, rows, *k, &kanon.Options{
			Algorithm: alg, Kernel: kern, Seed: *seed, Refine: *refine,
			ColumnWeights: weights, Workers: *workers, Span: as, Log: logger,
			Hierarchy: hspec, MaxSuppress: *suppress,
		})
	}
	as.End()
	stopProgress() // idempotent; the deferred call covers error paths
	if err != nil {
		return err
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	ws := root.Start("write-csv")
	err = relation.WriteCSVRows(out, res.Header, res.Rows)
	ws.End()
	if err != nil {
		return err
	}

	if tracing {
		root.End()
		snap := tr.Snapshot()
		if *trace {
			snap.WriteTree(stderr)
		}
		if *traceJSON {
			if err := json.NewEncoder(stderr).Encode(snap); err != nil {
				return err
			}
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				return err
			}
			if err := snap.WritePrometheus(f, "kanon"); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}

	if *stats {
		rep, err := measureQuality(header, res.Rows, *k)
		if err != nil {
			return err
		}
		cells := len(rows) * len(header)
		fmt.Fprintf(stderr, "algorithm: %s\n", alg)
		fmt.Fprintf(stderr, "rows: %d, columns: %d\n", len(rows), len(header))
		if alg == kanon.AlgoHierarchy {
			fmt.Fprintf(stderr, "generalized entries: %d of %d (%.1f%%)\n",
				res.Cost, cells, 100*float64(res.Cost)/float64(cells))
			fmt.Fprintf(stderr, "NCP: %.4f, suppressed rows: %d of budget %d (optimal: %v)\n",
				res.NCP, len(res.Suppressed), *suppress, res.Optimal)
		} else {
			fmt.Fprintf(stderr, "suppressed entries: %d of %d (%.1f%%)\n",
				res.Cost, cells, 100*float64(res.Cost)/float64(cells))
		}
		fmt.Fprintf(stderr, "k-groups: %d (min size %d, discernibility %d, C_avg %.2f)\n",
			rep.Groups, rep.MinGroup, rep.Discernibility, rep.CAvg)
		fmt.Fprint(stderr, "stars per column:")
		for j, n := range rep.StarsPerColumn {
			fmt.Fprintf(stderr, " %s=%d", header[j], n)
		}
		fmt.Fprintln(stderr)
		if b := kanon.Bound(alg, *k, len(header)); b > 0 {
			fmt.Fprintf(stderr, "proven approximation bound: %.1f×\n", b)
		}
	}
	return nil
}

// startProgressTicker renders the tracer's progress instruments as a
// carriage-return status line on w every 200ms. The returned stop
// function blanks the line and waits for the goroutine to exit; it is
// safe to call more than once.
func startProgressTicker(w io.Writer, tr *obs.Tracer) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		width := 0
		for {
			select {
			case <-stop:
				if width > 0 {
					fmt.Fprintf(w, "\r%*s\r", width, "")
				}
				return
			case <-tick.C:
				line := tr.Snapshot().ProgressLine()
				if line == "" {
					continue
				}
				// Pad to the widest line seen so shrinking text doesn't
				// leave stale characters behind.
				fmt.Fprintf(w, "\r%-*s", width, line)
				if len(line) > width {
					width = len(line)
				}
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		close(stop)
		<-done
	}
}

// parseWeights parses the -weights flag into one integer per column.
func parseWeights(arg string, m int) ([]int, error) {
	if arg == "" {
		return nil, nil
	}
	parts := strings.Split(arg, ",")
	if len(parts) != m {
		return nil, fmt.Errorf("-weights has %d entries for %d columns", len(parts), m)
	}
	out := make([]int, m)
	for j, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-weights entry %d: %q is not a nonnegative integer", j, p)
		}
		out[j] = w
	}
	return out, nil
}

// streamAnonymize runs the bounded-memory block pipeline and adapts its
// output to the facade's Result shape; groups are recovered from the
// released table's textual equivalence classes.
func streamAnonymize(ctx context.Context, header []string, rows [][]string, k, block int, doRefine bool, workers int, kernelName string, sp *obs.Span, ev *obs.Events) (*kanon.Result, error) {
	t := relation.NewTable(relation.NewSchema(header...))
	for _, r := range rows {
		if err := t.AppendStrings(r...); err != nil {
			return nil, err
		}
	}
	kern, err := metric.ParseChoice(kernelName)
	if err != nil {
		return nil, err
	}
	sr, err := stream.Anonymize(t, k, &stream.Options{Ctx: ctx, BlockRows: block, Refine: doRefine, Workers: workers, Kernel: kern, Trace: sp, Log: ev})
	if err != nil {
		return nil, err
	}
	out := make([][]string, sr.Anonymized.Len())
	for i := range out {
		out[i] = sr.Anonymized.Strings(i)
	}
	groups := core.FromAnonymized(sr.Anonymized)
	groups.Normalize()
	return &kanon.Result{
		K:      k,
		Header: append([]string(nil), header...),
		Rows:   out,
		Groups: groups.Groups,
		Cost:   sr.Cost,
	}, nil
}

// measureQuality builds a relation table from the anonymized rows and
// runs the quality metrics over it.
func measureQuality(header []string, rows [][]string, k int) (*quality.Report, error) {
	t := relation.NewTable(relation.NewSchema(header...))
	for _, r := range rows {
		if err := t.AppendStrings(r...); err != nil {
			return nil, err
		}
	}
	return quality.Measure(t, k)
}
