package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kanon/internal/relation"
)

const sampleCSV = "age,zip,dx\n34,15213,flu\n36,15213,flu\n34,15217,cold\n47,15217,cold\n"

func runCLI(t *testing.T, args []string, stdin string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb bytes.Buffer
	err = run(context.Background(), args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), err
}

func TestAnonymizeStdinStdout(t *testing.T) {
	out, _, err := runCLI(t, []string{"-k", "2"}, sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("output has %d lines, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "age,zip,dx" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "*") {
		t.Error("no suppression in output")
	}
}

func TestStatsOutput(t *testing.T) {
	_, stderr, err := runCLI(t, []string{"-k", "2", "-stats"}, sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"suppressed entries:", "k-groups:", "approximation bound"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stats missing %q:\n%s", want, stderr)
		}
	}
}

func TestAlgorithmSelection(t *testing.T) {
	for _, algo := range []string{"ball", "exhaustive", "pattern", "exact", "kmember", "mondrian", "sorted", "random"} {
		out, _, err := runCLI(t, []string{"-k", "2", "-algo", algo}, sampleCSV)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out, "age,zip,dx") {
			t.Errorf("%s produced no table", algo)
		}
	}
	if _, _, err := runCLI(t, []string{"-algo", "bogus"}, sampleCSV); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestRefineFlagNeverWorse(t *testing.T) {
	base, _, err := runCLI(t, []string{"-k", "2", "-algo", "random"}, sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	refined, _, err := runCLI(t, []string{"-k", "2", "-algo", "random", "-refine"}, sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(refined, "*") > strings.Count(base, "*") {
		t.Errorf("-refine increased stars: %d → %d", strings.Count(base, "*"), strings.Count(refined, "*"))
	}
}

func TestVerifyFlag(t *testing.T) {
	// Raw data is not 2-anonymous.
	if _, _, err := runCLI(t, []string{"-k", "2", "-verify"}, sampleCSV); err == nil {
		t.Error("verify passed on non-anonymous input")
	}
	// Anonymize first, then verify the output.
	out, _, err := runCLI(t, []string{"-k", "2"}, sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	_, stderr, err := runCLI(t, []string{"-k", "2", "-verify"}, out)
	if err != nil {
		t.Fatalf("verify failed on anonymized output: %v", err)
	}
	if !strings.Contains(stderr, "2-anonymous") {
		t.Errorf("verify stderr = %q", stderr)
	}
}

func TestFileInputOutput(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.csv")
	outPath := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(inPath, []byte(sampleCSV), 0o600); err != nil {
		t.Fatal(err)
	}
	_, _, err := runCLI(t, []string{"-k", "2", "-in", inPath, "-out", outPath}, "")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "age,zip,dx") {
		t.Errorf("output file content: %q", data)
	}
}

func TestFileErrors(t *testing.T) {
	if _, _, err := runCLI(t, []string{"-in", "/nonexistent/x.csv"}, ""); err == nil {
		t.Error("accepted missing input file")
	}
	if _, _, err := runCLI(t, []string{"-k", "2", "-out", "/nonexistent/dir/out.csv"}, sampleCSV); err == nil {
		t.Error("accepted unwritable output path")
	}
}

func TestBadInputs(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"header only": "a,b\n",
		"ragged":      "a,b\n1\n",
	}
	for name, in := range cases {
		if _, _, err := runCLI(t, []string{"-k", "2"}, in); err == nil {
			t.Errorf("%s input accepted", name)
		}
	}
	if _, _, err := runCLI(t, []string{"-k", "99"}, sampleCSV); err == nil {
		t.Error("k > n accepted")
	}
	if _, _, err := runCLI(t, []string{"-bogusflag"}, sampleCSV); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestCSVHelpers(t *testing.T) {
	// The CLI reads and writes through the shared relation codec; this
	// pins the round trip the CLI depends on.
	h, rows, err := relation.ReadCSVRows(strings.NewReader("x,y\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 || len(rows) != 2 || rows[1][1] != "4" {
		t.Errorf("ReadCSVRows = %v %v", h, rows)
	}
	var buf bytes.Buffer
	if err := relation.WriteCSVRows(&buf, h, rows); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "x,y\n1,2\n3,4\n" {
		t.Errorf("WriteCSVRows = %q", buf.String())
	}
}

func TestBlockStreaming(t *testing.T) {
	var rows []string
	rows = append(rows, "a,b")
	for i := 0; i < 40; i++ {
		rows = append(rows, string(rune('a'+i%4))+","+string(rune('p'+i%3)))
	}
	in := strings.Join(rows, "\n") + "\n"
	out, _, err := runCLI(t, []string{"-k", "2", "-block", "10"}, in)
	if err != nil {
		t.Fatal(err)
	}
	// Streamed output must verify.
	if _, _, err := runCLI(t, []string{"-k", "2", "-verify"}, out); err != nil {
		t.Fatalf("streamed output failed verification: %v", err)
	}
	// Stats path works with streaming too.
	_, stderr, err := runCLI(t, []string{"-k", "2", "-block", "10", "-stats", "-refine"}, in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "k-groups:") {
		t.Errorf("stats missing under streaming:\n%s", stderr)
	}
}

func TestWeightsFlag(t *testing.T) {
	in := "a,b\n1,7\n1,8\n2,7\n2,8\n"
	out, _, err := runCLI(t, []string{"-k", "2", "-weights", "100,1"}, in)
	if err != nil {
		t.Fatal(err)
	}
	// The expensive column a must survive.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		if strings.HasPrefix(line, "*") {
			t.Errorf("expensive column starred: %q", line)
		}
	}
	if _, _, err := runCLI(t, []string{"-k", "2", "-weights", "1"}, in); err == nil {
		t.Error("accepted wrong-arity weights")
	}
	if _, _, err := runCLI(t, []string{"-k", "2", "-weights", "1,x"}, in); err == nil {
		t.Error("accepted non-numeric weight")
	}
	if _, _, err := runCLI(t, []string{"-k", "2", "-weights", "1,-3"}, in); err == nil {
		t.Error("accepted negative weight")
	}
}
