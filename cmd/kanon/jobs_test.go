package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func fakeJobServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/job-1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`[
			{"v":"kanon-events/1","ts":"2026-08-07T12:00:00Z","event":"claimed","node":"node-a","fence":1},
			{"v":"kanon-events/1","ts":"2026-08-07T12:00:20Z","event":"lease_stolen","node":"node-b","fence":2,"detail":"from node-a"},
			{"v":"kanon-events/1","ts":"2026-08-07T12:00:30Z","event":"succeeded","node":"node-b","fence":2}
		]`))
	})
	mux.HandleFunc("GET /v1/jobs/job-1/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"spans":[
			{"name":"job@node-a","start_ns":0,"dur_ns":1000000,"wall_ns":100},
			{"name":"job@node-b","start_ns":0,"dur_ns":2000000,"wall_ns":200}
		]}`))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error":"unknown job id"}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestJobsEventsRender(t *testing.T) {
	srv := fakeJobServer(t)
	var out, errb strings.Builder
	err := runJobsCmd([]string{"events", "-server", srv.URL, "-id", "job-1"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"claimed", "node=node-a", "fence=1", "lease_stolen", "from node-a", "succeeded"} {
		if !strings.Contains(text, want) {
			t.Errorf("events output missing %q:\n%s", want, text)
		}
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 3 {
		t.Errorf("got %d event lines, want 3:\n%s", len(lines), text)
	}
}

func TestJobsTraceRender(t *testing.T) {
	srv := fakeJobServer(t)
	var out, errb strings.Builder
	err := runJobsCmd([]string{"trace", "-server", srv.URL, "-id", "job-1"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "job@node-a") || !strings.Contains(text, "job@node-b") {
		t.Errorf("trace tree missing node segments:\n%s", text)
	}
}

func TestJobsJSONPassthrough(t *testing.T) {
	srv := fakeJobServer(t)
	var out, errb strings.Builder
	err := runJobsCmd([]string{"events", "-server", srv.URL, "-id", "job-1", "-json"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"event":"lease_stolen"`) {
		t.Errorf("-json did not pass the payload through:\n%s", out.String())
	}
}

func TestJobsErrors(t *testing.T) {
	srv := fakeJobServer(t)
	var out, errb strings.Builder
	if err := runJobsCmd(nil, &out, &errb); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := runJobsCmd([]string{"status"}, &out, &errb); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := runJobsCmd([]string{"events", "-server", srv.URL}, &out, &errb); err == nil {
		t.Error("missing -id accepted")
	}
	err := runJobsCmd([]string{"events", "-server", srv.URL, "-id", "nope"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "unknown job id") {
		t.Errorf("404 not surfaced as the server's error: %v", err)
	}
}
