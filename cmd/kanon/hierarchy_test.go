package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const hierSpecJSON = `{
  "columns": [
    {"name": "age", "kind": "interval", "width": 10, "min": 0, "max": 79},
    {"name": "zip", "kind": "tree", "paths": {
      "15213": ["152xx"],
      "15217": ["152xx"]
    }},
    {"name": "dx", "kind": "suppress"}
  ]
}`

func TestHierarchyDerivedMode(t *testing.T) {
	out, stderr, err := runCLI(t, []string{"-k", "2", "-algo", "hierarchy", "-stats"}, sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("output has %d lines, want 5:\n%s", len(lines), out)
	}
	for _, want := range []string{"NCP:", "generalized entries:", "k-groups:"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stats missing %q:\n%s", want, stderr)
		}
	}
}

func TestHierarchySpecFileMode(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(hierSpecJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	// Ages and diagnoses already pair up, so the minimum-NCP cut only
	// has to merge the two zips — exactly what the spec's tree offers.
	in := "age,zip,dx\n34,15213,flu\n34,15217,flu\n47,15213,cold\n47,15217,cold\n"
	out, _, err := runCLI(t, []string{"-k", "2", "-algo", "hierarchy", "-hierarchy", specPath}, in)
	if err != nil {
		t.Fatal(err)
	}
	// The released table must use the spec's label, not a derived one.
	if !strings.Contains(out, "152xx") {
		t.Errorf("spec labels missing from release:\n%s", out)
	}
}

func TestHierarchySuppressBudget(t *testing.T) {
	// One outlier row: with a budget it can be starred instead of
	// dragging every column to the root.
	in := "age,zip\n34,15213\n35,15213\n34,15213\n99,90210\n"
	out, _, err := runCLI(t, []string{"-k", "3", "-algo", "hierarchy", "-suppress", "1"}, in)
	if err != nil {
		t.Fatal(err)
	}
	var starred int
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		if line == "*,*" {
			starred++
		}
	}
	if starred != 1 {
		t.Errorf("want exactly 1 fully starred row, got %d:\n%s", starred, out)
	}
}

func TestHierarchyDeterministicAcrossWorkers(t *testing.T) {
	var base string
	for _, workers := range []string{"1", "4"} {
		for _, extra := range [][]string{nil, {"-trace"}} {
			args := append([]string{"-k", "2", "-algo", "hierarchy", "-workers", workers}, extra...)
			out, _, err := runCLI(t, args, sampleCSV)
			if err != nil {
				t.Fatal(err)
			}
			if base == "" {
				base = out
			} else if out != base {
				t.Fatalf("workers=%s trace=%v changed the release:\n%s\nvs\n%s", workers, extra != nil, out, base)
			}
		}
	}
}

func TestHierarchyFlagValidation(t *testing.T) {
	if _, _, err := runCLI(t, []string{"-k", "2", "-suppress", "1"}, sampleCSV); err == nil {
		t.Error("-suppress accepted without -algo hierarchy")
	}
	if _, _, err := runCLI(t, []string{"-k", "2", "-hierarchy", "x.json"}, sampleCSV); err == nil {
		t.Error("-hierarchy accepted without -algo hierarchy")
	}
	if _, _, err := runCLI(t, []string{"-k", "2", "-algo", "hierarchy", "-block", "10"}, sampleCSV); err == nil {
		t.Error("-block accepted with -algo hierarchy")
	}
	if _, _, err := runCLI(t, []string{"-k", "2", "-algo", "hierarchy", "-hierarchy", "/nonexistent/spec.json"}, sampleCSV); err == nil {
		t.Error("missing spec file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"columns":[]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, []string{"-k", "2", "-algo", "hierarchy", "-hierarchy", bad}, sampleCSV); err == nil {
		t.Error("invalid spec file accepted")
	}
}
