package main

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// kernelCSV builds a deterministic clustered table big enough that the
// greedy ball path does real work on both kernels.
func kernelCSV(n int) string {
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	b.WriteString("age,zip,dx,ins\n")
	for i := 0; i < n; i++ {
		c := rng.Intn(8)
		fmt.Fprintf(&b, "%d,%d,d%d,i%d\n",
			20+c*5+rng.Intn(2), 15200+c, c%4, rng.Intn(3))
	}
	return b.String()
}

// TestKernelFlagByteIdentity is the CLI half of the cross-kernel
// acceptance criterion: for every algorithm, with telemetry off and on,
// -kernel dense and -kernel bitset must produce byte-identical output.
func TestKernelFlagByteIdentity(t *testing.T) {
	big := kernelCSV(200)
	for _, tc := range []struct {
		algo string
		csv  string
	}{
		{"ball", big},
		{"pattern", big},
		{"kmember", big},
		{"mondrian", big},
		{"sorted", big},
		{"random", big},
		{"exhaustive", sampleCSV},
		{"exact", sampleCSV},
	} {
		for _, trace := range []bool{false, true} {
			args := func(kernel string) []string {
				a := []string{"-k", "2", "-algo", tc.algo, "-kernel", kernel, "-seed", "7"}
				if trace {
					a = append(a, "-trace")
				}
				return a
			}
			dense, _, err := runCLI(t, args("dense"), tc.csv)
			if err != nil {
				t.Fatalf("%s dense: %v", tc.algo, err)
			}
			bitset, _, err := runCLI(t, args("bitset"), tc.csv)
			if err != nil {
				t.Fatalf("%s bitset: %v", tc.algo, err)
			}
			auto, _, err := runCLI(t, args("auto"), tc.csv)
			if err != nil {
				t.Fatalf("%s auto: %v", tc.algo, err)
			}
			if dense != bitset {
				t.Errorf("%s (trace=%v): dense and bitset outputs differ", tc.algo, trace)
			}
			if dense != auto {
				t.Errorf("%s (trace=%v): dense and auto outputs differ", tc.algo, trace)
			}
		}
	}
}

// TestKernelFlagBlockStreaming pins the stream pipeline's kernel
// threading: the block path must be byte-identical across kernels too.
func TestKernelFlagBlockStreaming(t *testing.T) {
	csv := kernelCSV(300)
	run := func(kernel string) string {
		out, _, err := runCLI(t, []string{"-k", "2", "-block", "64", "-kernel", kernel}, csv)
		if err != nil {
			t.Fatalf("block %s: %v", kernel, err)
		}
		return out
	}
	dense, bitset := run("dense"), run("bitset")
	if dense != bitset {
		t.Error("block streaming: dense and bitset outputs differ")
	}
}

func TestKernelFlagRejectsUnknown(t *testing.T) {
	if _, _, err := runCLI(t, []string{"-k", "2", "-kernel", "sparse"}, sampleCSV); err == nil {
		t.Error("accepted unknown kernel name")
	}
}
