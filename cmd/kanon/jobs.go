package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"kanon/internal/obs"
)

// runJobsCmd implements the `kanon jobs` subcommand family — the CLI
// view onto a running kanond's (or kanon-router's) per-job
// observability artifacts:
//
//	kanon jobs events -server http://host:8080 -id JOB [-json]
//	kanon jobs trace  -server http://host:8080 -id JOB [-json]
//
// `events` prints the job's durable lifecycle journal, one line per
// event; `trace` renders the job's merged span timeline as the same
// tree -trace prints for local runs. Both read GET /v1/jobs/{id}/...,
// so against a router (or any cluster node) they narrate jobs that ran
// anywhere in the cluster, including jobs stolen across nodes.
func runJobsCmd(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: kanon jobs events|trace -server URL -id JOB [-json]")
	}
	sub := args[0]
	switch sub {
	case "events", "trace":
	default:
		return fmt.Errorf("unknown jobs subcommand %q (want events or trace)", sub)
	}
	fs := flag.NewFlagSet("kanon jobs "+sub, flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://localhost:8080", "base URL of a kanond node or kanon-router")
	id := fs.String("id", "", "job id (required)")
	asJSON := fs.Bool("json", false, "print the raw JSON payload instead of rendering")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing required flag -id")
	}
	url := strings.TrimSuffix(*server, "/") + "/v1/jobs/" + *id + "/" + sub
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &env) == nil && env.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, env.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if *asJSON {
		_, err := stdout.Write(append(body, '\n'))
		return err
	}
	switch sub {
	case "events":
		var events []obs.JournalEvent
		if err := json.Unmarshal(body, &events); err != nil {
			return fmt.Errorf("decoding events: %w", err)
		}
		writeEventLines(stdout, events)
	case "trace":
		var snap obs.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			return fmt.Errorf("decoding trace: %w", err)
		}
		if err := snap.WriteTree(stdout); err != nil {
			return err
		}
	}
	return nil
}

// writeEventLines renders journal events one per line, timestamp
// first, with the optional fields (node, fence, phase, detail) only
// when present — a failover's story reads straight down the page.
func writeEventLines(w io.Writer, events []obs.JournalEvent) {
	for _, e := range events {
		line := fmt.Sprintf("%s  %-20s", e.TS.UTC().Format(time.RFC3339Nano), e.Event)
		if e.Node != "" {
			line += " node=" + e.Node
		}
		if e.Fence != 0 {
			line += fmt.Sprintf(" fence=%d", e.Fence)
		}
		if e.Phase != "" {
			line += " phase=" + e.Phase
		}
		if e.Detail != "" {
			line += "  " + e.Detail
		}
		fmt.Fprintln(w, strings.TrimRight(line, " "))
	}
}
