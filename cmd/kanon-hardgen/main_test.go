package main

import (
	"bytes"
	"strings"
	"testing"
)

func runGen(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestEntryVariantPlantedSolve(t *testing.T) {
	out, stderr, err := runGen(t, "-n", "9", "-m", "7", "-k", "3", "-planted", "-solve")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a0") {
		t.Error("no CSV emitted")
	}
	for _, want := range []string{
		"perfect matching: true",
		"witness suppressor stars:",
		"matching exists: true",
		"extracted matching",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

func TestAttributeVariant(t *testing.T) {
	_, stderr, err := runGen(t, "-n", "9", "-m", "7", "-k", "3", "-planted", "-variant", "attribute", "-solve")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"attribute-suppression threshold", "matching exists: true"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

func TestUnplantedMayLackMatching(t *testing.T) {
	// Deterministic seed; just require the command to succeed and
	// report a boolean either way.
	_, stderr, err := runGen(t, "-n", "9", "-m", "4", "-k", "3", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "perfect matching:") {
		t.Errorf("stderr missing matching report:\n%s", stderr)
	}
}

func TestValidation(t *testing.T) {
	if _, _, err := runGen(t, "-n", "10", "-k", "3"); err == nil {
		t.Error("accepted n not divisible by k")
	}
	if _, _, err := runGen(t, "-variant", "bogus"); err == nil {
		t.Error("accepted unknown variant")
	}
	if _, _, err := runGen(t, "-badflag"); err == nil {
		t.Error("accepted unknown flag")
	}
	// -solve over the DP limit must error rather than hang.
	if _, _, err := runGen(t, "-n", "27", "-m", "30", "-k", "3", "-planted", "-solve"); err == nil {
		t.Error("accepted -solve beyond the DP limit")
	}
}

func TestVersionFlag(t *testing.T) {
	out, _, err := runGen(t, "-version")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) == "" {
		t.Error("-version printed nothing")
	}
}
