// Command kanon-hardgen emits hard k-anonymity instances via the
// paper's §3 reductions and demonstrates the witness round trip.
//
// Usage:
//
//	kanon-hardgen -n 9 -m 7 -k 3 [-planted] [-variant entry|attribute] [-seed 1]
//
// It generates a k-uniform hypergraph, reduces it to a k-anonymity
// instance, prints the instance as CSV on stdout and, on stderr, the
// threshold, whether a perfect matching exists, and the round-tripped
// witness when it does.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"kanon/internal/attribute"
	"kanon/internal/exact"
	"kanon/internal/hypergraph"
	"kanon/internal/obs"
	"kanon/internal/reduction"
	"kanon/internal/relation"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kanon-hardgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kanon-hardgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 9, "hypergraph vertices (rows of the instance)")
	m := fs.Int("m", 7, "hyperedges (columns of the instance)")
	k := fs.Int("k", 3, "hyperedge arity = anonymity parameter")
	seed := fs.Int64("seed", 1, "generator seed")
	planted := fs.Bool("planted", false, "plant a perfect matching")
	variant := fs.String("variant", "entry", "reduction variant: entry (Thm 3.1) or attribute (Thm 3.2)")
	solve := fs.Bool("solve", false, "additionally run the exact solver and report OPT vs threshold (small instances)")
	version := fs.Bool("version", false, "print build provenance and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, obs.ReadBuild().String())
		return nil
	}
	if *n%*k != 0 {
		return fmt.Errorf("n = %d must be divisible by k = %d for a perfect matching to be possible", *n, *k)
	}

	rng := rand.New(rand.NewSource(*seed))
	var g *hypergraph.Graph
	if *planted {
		g = hypergraph.RandomWithPlantedMatching(rng, *n, *k, *m)
	} else {
		g = hypergraph.RandomSimple(rng, *n, *k, *m)
	}
	if g.M() == 0 {
		return fmt.Errorf("generated graph has no edges; increase -m")
	}
	fmt.Fprintf(stderr, "hypergraph: %d vertices, %d edges, %d-uniform\n", g.N, g.M(), g.K)

	matching := g.PerfectMatching()
	fmt.Fprintf(stderr, "perfect matching: %v\n", matching != nil)

	switch *variant {
	case "entry":
		inst, err := reduction.FromMatchingEntry(g)
		if err != nil {
			return err
		}
		if err := writeTable(stdout, inst.Table); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "entry-suppression threshold: OPT ≤ %d iff matching exists\n", inst.Threshold)
		if matching != nil {
			sup, err := inst.SuppressorFromMatching(matching)
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "witness suppressor stars: %d (= threshold: %v)\n", sup.Stars(), sup.Stars() == inst.Threshold)
		}
		if *solve {
			if inst.Table.Len() > exact.MaxDPRows {
				return fmt.Errorf("-solve needs n ≤ %d", exact.MaxDPRows)
			}
			r, err := exact.Solve(inst.Table, inst.K, exact.Stars)
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "exact OPT: %d (threshold %d) → matching exists: %v\n",
				r.Value, inst.Threshold, r.Value <= inst.Threshold)
			if r.Value <= inst.Threshold {
				back, err := inst.MatchingFromPartition(r.Partition)
				if err != nil {
					return err
				}
				fmt.Fprintf(stderr, "extracted matching (edge indices): %v\n", back)
			}
		}
	case "attribute":
		inst, err := reduction.FromMatchingAttribute(g)
		if err != nil {
			return err
		}
		if err := writeTable(stdout, inst.Table); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "attribute-suppression threshold: min drop = %d iff matching exists\n", inst.Threshold)
		if *solve {
			r, err := attribute.Exact(inst.Table, inst.K)
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "exact minimum columns dropped: %d (threshold %d) → matching exists: %v\n",
				len(r.Dropped), inst.Threshold, len(r.Dropped) <= inst.Threshold)
		}
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	return nil
}

func writeTable(w io.Writer, t *relation.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	for i := 0; i < t.Len(); i++ {
		if err := cw.Write(t.Strings(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
