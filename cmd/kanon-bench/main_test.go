package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kanon/internal/harness"
	"kanon/internal/obs"
)

func runBench(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestList(t *testing.T) {
	out, _, err := runBench(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E4", "E10"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunSelected(t *testing.T) {
	out, _, err := runBench(t, "-quick", "-run", "E7,E9")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E7") || !strings.Contains(out, "E9") {
		t.Errorf("selected run output missing tables:\n%s", out)
	}
	if strings.Contains(out, "== E1") {
		t.Error("ran E1 despite -run E7,E9")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, _, err := runBench(t, "-run", "E99"); err == nil {
		t.Error("accepted unknown experiment ID")
	}
}

func TestBadFlag(t *testing.T) {
	if _, _, err := runBench(t, "-nope"); err == nil {
		t.Error("accepted unknown flag")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite in -short mode")
	}
	out, _, err := runBench(t, "-quick")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 14; i++ {
		id := "== E" + itoa(i)
		if !strings.Contains(out, id) {
			t.Errorf("full run missing %s", id)
		}
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return "1" + string(rune('0'+n-10))
}

func TestVersionFlag(t *testing.T) {
	out, _, err := runBench(t, "-version")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "kanon") || !strings.Contains(out, "go1") {
		t.Errorf("version output = %q", out)
	}
}

func TestManifestAndMetricsOut(t *testing.T) {
	dir := t.TempDir()
	manPath := filepath.Join(dir, "run-manifest.json")
	promPath := filepath.Join(dir, "metrics.prom")
	if _, _, err := runBench(t, "-quick", "-run", "E9", "-manifest", manPath, "-metrics-out", promPath); err != nil {
		t.Fatal(err)
	}
	man, err := harness.ReadManifest(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Experiments) != 1 {
		t.Fatalf("experiments = %+v, want just E9", man.Experiments)
	}
	e := man.Experiments[0]
	if e.ID != "E9" || e.Verdict != harness.VerdictOK || e.WallNS <= 0 || e.Tables < 1 {
		t.Errorf("E9 record = %+v", e)
	}
	if man.Build.GoVersion == "" || man.GOMAXPROCS < 1 || man.WallNS <= 0 {
		t.Errorf("provenance not stamped: %+v", man)
	}
	if man.Bench != nil {
		t.Error("Bench set without -regress")
	}
	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintPrometheus(prom); err != nil {
		t.Fatalf("metrics file lint: %v\n%s", err, prom)
	}
	if !strings.Contains(string(prom), `kanon_span_seconds{span="E9"}`) {
		t.Errorf("metrics missing the E9 span:\n%s", prom)
	}
}

func TestRegressManifestEmbedsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("bench suite in -short mode")
	}
	manPath := filepath.Join(t.TempDir(), "run-manifest.json")
	out, _, err := runBench(t, "-regress", "-quick", "-manifest", manPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, harness.BenchSchema) {
		t.Errorf("stdout is not a bench report:\n%s", out)
	}
	man, err := harness.ReadManifest(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if man.Bench == nil || len(man.Bench.Cases) == 0 {
		t.Errorf("manifest did not embed the bench report: %+v", man.Bench)
	}
}

func TestMarkdownFormat(t *testing.T) {
	out, _, err := runBench(t, "-quick", "-run", "E9", "-format", "md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "### E9:") || !strings.Contains(out, "| --- |") {
		t.Errorf("markdown output malformed:\n%s", out)
	}
	if _, _, err := runBench(t, "-format", "bogus", "-run", "E9"); err == nil {
		t.Error("accepted unknown format")
	}
}
