package main

import (
	"bytes"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestList(t *testing.T) {
	out, _, err := runBench(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E4", "E10"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunSelected(t *testing.T) {
	out, _, err := runBench(t, "-quick", "-run", "E7,E9")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E7") || !strings.Contains(out, "E9") {
		t.Errorf("selected run output missing tables:\n%s", out)
	}
	if strings.Contains(out, "== E1") {
		t.Error("ran E1 despite -run E7,E9")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, _, err := runBench(t, "-run", "E99"); err == nil {
		t.Error("accepted unknown experiment ID")
	}
}

func TestBadFlag(t *testing.T) {
	if _, _, err := runBench(t, "-nope"); err == nil {
		t.Error("accepted unknown flag")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite in -short mode")
	}
	out, _, err := runBench(t, "-quick")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 14; i++ {
		id := "== E" + itoa(i)
		if !strings.Contains(out, id) {
			t.Errorf("full run missing %s", id)
		}
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return "1" + string(rune('0'+n-10))
}

func TestMarkdownFormat(t *testing.T) {
	out, _, err := runBench(t, "-quick", "-run", "E9", "-format", "md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "### E9:") || !strings.Contains(out, "| --- |") {
		t.Errorf("markdown output malformed:\n%s", out)
	}
	if _, _, err := runBench(t, "-format", "bogus", "-run", "E9"); err == nil {
		t.Error("accepted unknown format")
	}
}
