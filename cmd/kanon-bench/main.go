// Command kanon-bench regenerates the reproduction experiments E1–E15
// (the tables recorded in EXPERIMENTS.md).
//
// Usage:
//
//	kanon-bench            # run everything at full scale
//	kanon-bench -quick     # shrunken corpora, finishes in seconds
//	kanon-bench -run E4,E5 # selected experiments only
//	kanon-bench -list      # list experiment IDs and titles
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"kanon/internal/harness"
	"kanon/internal/metric"
	"kanon/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kanon-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kanon-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "shrink corpora for a fast smoke run")
	seed := fs.Int64("seed", 0, "corpus seed (0 = the EXPERIMENTS.md default)")
	runIDs := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	list := fs.Bool("list", false, "list experiments and exit")
	format := fs.String("format", "text", "table format: text, md (markdown), or json (one object per line)")
	jsonOut := fs.Bool("json", false, "shorthand for -format json (machine-readable bench results)")
	workers := fs.Int("workers", 0, "worker goroutines for the algorithms under test (0 = all CPUs, 1 = sequential)")
	kernelName := fs.String("kernel", "auto", "distance kernel for the algorithms under test: auto, dense, or bitset (cases pinned to a backend ignore it)")
	regress := fs.Bool("regress", false, "run the pinned regression bench suite and emit one BenchReport JSON object (compare with benchdiff)")
	slowdown := fs.Float64("slowdown", 1, "multiply the regression suite's recorded wall times (CI gate self-test only)")
	trace := fs.Bool("trace", false, "print a per-experiment phase-timing tree to stderr")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof, expvar, and /debug/obs on this address for the duration of the run (e.g. localhost:6060)")
	metricsOut := fs.String("metrics-out", "", "write the final metrics in Prometheus text format to this file")
	manifestOut := fs.String("manifest", "", "write a provenance manifest (build info, config, per-experiment verdicts) as JSON to this file")
	version := fs.Bool("version", false, "print build provenance and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, obs.ReadBuild().String())
		return nil
	}
	if *jsonOut {
		*format = "json"
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	tracing := *trace || *debugAddr != "" || *metricsOut != ""
	var tr *obs.Tracer
	var root *obs.Span
	if tracing {
		tr = obs.New()
		root = tr.Start("kanon-bench")
	}
	if *debugAddr != "" {
		if _, err := obs.StartDebugServer(*debugAddr, func() *obs.Snapshot { return tr.Snapshot() }); err != nil {
			return err
		}
	}

	kern, err := metric.ParseChoice(*kernelName)
	if err != nil {
		return err
	}
	cfg := harness.Config{Quick: *quick, Seed: *seed, Workers: *workers, Kernel: kern}
	var man *harness.RunManifest
	if *manifestOut != "" {
		man = harness.NewManifest(cfg)
	}

	if *regress {
		rep, err := harness.RunBenchSuite(cfg, *slowdown)
		if err != nil {
			return err
		}
		if man != nil {
			man.Bench = rep
			man.Finish()
			if err := man.Write(*manifestOut); err != nil {
				return err
			}
		}
		return json.NewEncoder(stdout).Encode(rep)
	}

	render := (*harness.Table).Render
	switch *format {
	case "text":
	case "md":
		render = (*harness.Table).RenderMarkdown
	case "json":
		render = (*harness.Table).RenderJSON
	default:
		return fmt.Errorf("unknown format %q (want text, md, or json)", *format)
	}

	if *format == "json" {
		// A self-describing meta line precedes the experiment objects so
		// consumers know exactly what produced the stream. The struct's
		// field order is the serialization order — stable by construction.
		build := obs.ReadBuild()
		meta := struct {
			Schema      string `json:"schema"`
			GoVersion   string `json:"go_version"`
			Version     string `json:"version,omitempty"`
			VCSRevision string `json:"vcs_revision,omitempty"`
			VCSModified bool   `json:"vcs_modified,omitempty"`
			GOOS        string `json:"goos"`
			GOARCH      string `json:"goarch"`
			GOMAXPROCS  int    `json:"gomaxprocs"`
			Seed        int64  `json:"seed"`
			Workers     int    `json:"workers"`
			Quick       bool   `json:"quick"`
		}{
			Schema:      "kanon-bench/1",
			GoVersion:   runtime.Version(),
			Version:     build.Version,
			VCSRevision: build.VCSRevision,
			VCSModified: build.VCSModified,
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Seed:        cfg.EffectiveSeed(),
			Workers:     *workers,
			Quick:       *quick,
		}
		if err := json.NewEncoder(stdout).Encode(meta); err != nil {
			return err
		}
	}
	ids := *runIDs
	if ids == "" {
		all := make([]string, 0, len(harness.All()))
		for _, e := range harness.All() {
			all = append(all, e.ID)
		}
		ids = strings.Join(all, ",")
	}
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		e, ok := harness.Find(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		es := root.Start(e.ID)
		var expStart time.Time
		if man != nil {
			expStart = time.Now()
		}
		tables, err := e.Run(cfg)
		es.End()
		if man != nil {
			man.AddExperiment(e.ID, e.Title, time.Since(expStart), len(tables), err)
		}
		if err != nil {
			// Best effort: a manifest that records the failing experiment
			// is more useful than no manifest at all.
			writeManifest(man, *manifestOut)
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := render(t, stdout); err != nil {
				return err
			}
		}
	}
	if err := writeManifest(man, *manifestOut); err != nil {
		return err
	}
	if tracing {
		root.End()
		if *trace {
			if err := tr.Snapshot().WriteTree(stderr); err != nil {
				return err
			}
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				return err
			}
			if err := tr.Snapshot().WritePrometheus(f, "kanon"); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeManifest finalizes and writes the manifest; a nil manifest (no
// -manifest flag) is a no-op.
func writeManifest(m *harness.RunManifest, path string) error {
	if m == nil {
		return nil
	}
	m.Finish()
	return m.Write(path)
}
