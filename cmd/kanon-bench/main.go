// Command kanon-bench regenerates the reproduction experiments E1–E10
// (the tables recorded in EXPERIMENTS.md).
//
// Usage:
//
//	kanon-bench            # run everything at full scale
//	kanon-bench -quick     # shrunken corpora, finishes in seconds
//	kanon-bench -run E4,E5 # selected experiments only
//	kanon-bench -list      # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kanon/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kanon-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kanon-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "shrink corpora for a fast smoke run")
	seed := fs.Int64("seed", 0, "corpus seed (0 = the EXPERIMENTS.md default)")
	runIDs := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	list := fs.Bool("list", false, "list experiments and exit")
	format := fs.String("format", "text", "table format: text, md (markdown), or json (one object per line)")
	jsonOut := fs.Bool("json", false, "shorthand for -format json (machine-readable bench results)")
	workers := fs.Int("workers", 0, "worker goroutines for the algorithms under test (0 = all CPUs, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut {
		*format = "json"
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	render := (*harness.Table).Render
	switch *format {
	case "text":
	case "md":
		render = (*harness.Table).RenderMarkdown
	case "json":
		render = (*harness.Table).RenderJSON
	default:
		return fmt.Errorf("unknown format %q (want text, md, or json)", *format)
	}

	cfg := harness.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	ids := *runIDs
	if ids == "" {
		all := make([]string, 0, len(harness.All()))
		for _, e := range harness.All() {
			all = append(all, e.ID)
		}
		ids = strings.Join(all, ",")
	}
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		e, ok := harness.Find(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := render(t, stdout); err != nil {
				return err
			}
		}
	}
	return nil
}
