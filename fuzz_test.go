package kanon

// Fuzz targets for the robustness surface: arbitrary string tables
// through the facade, and arbitrary k. `go test` runs the seed corpus;
// `go test -fuzz=FuzzAnonymize .` explores further.

import (
	"strings"
	"testing"
)

// FuzzAnonymize feeds an arbitrary flattened table through Anonymize
// and checks the invariants that must survive any input: either an
// error, or a Verify-passing release whose cost matches its stars and
// whose non-starred cells equal the input.
func FuzzAnonymize(f *testing.F) {
	f.Add("a|b\nx|y\nx|z\nw|y", uint8(2), uint8(0))
	f.Add("c\n1\n1\n1", uint8(3), uint8(1))
	f.Add("a|b|c\n*|2|3\n*|2|4\n5|2|3", uint8(2), uint8(2))
	f.Add("h\n\n", uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, flat string, k uint8, algoPick uint8) {
		header, rows, ok := parseFlat(flat)
		if !ok {
			return
		}
		algos := []Algorithm{AlgoGreedyBall, AlgoPattern, AlgoSorted, AlgoRandom}
		alg := algos[int(algoPick)%len(algos)]
		kk := int(k%8) + 1
		if len(rows) > 64 || len(header) > 12 {
			return // keep the fuzz loop fast
		}
		res, err := Anonymize(header, rows, kk, &Options{Algorithm: alg})
		if err != nil {
			return // rejection is always acceptable
		}
		okAnon, verr := Verify(res.Header, res.Rows, kk)
		if verr != nil || !okAnon {
			t.Fatalf("accepted input produced non-%d-anonymous output (verr=%v)", kk, verr)
		}
		if Cost(res.Rows) != res.Cost+Cost(rows) {
			t.Fatalf("stars out %d != new cost %d + stars in %d", Cost(res.Rows), res.Cost, Cost(rows))
		}
		for i, r := range res.Rows {
			for j, c := range r {
				if c != Star && c != rows[i][j] {
					t.Fatalf("cell (%d,%d) rewritten %q → %q", i, j, rows[i][j], c)
				}
			}
		}
	})
}

// FuzzVerifyCost checks that Verify and Cost never panic and stay
// consistent on arbitrary tables: a table Verify accepts for k must
// also verify for every smaller k.
func FuzzVerifyCost(f *testing.F) {
	f.Add("a|b\n*|y\n*|y", uint8(2))
	f.Add("x\np\nq", uint8(1))
	f.Fuzz(func(t *testing.T, flat string, k uint8) {
		header, rows, ok := parseFlat(flat)
		if !ok {
			return
		}
		kk := int(k%6) + 1
		anon, err := Verify(header, rows, kk)
		if err != nil {
			return
		}
		if anon {
			for smaller := 1; smaller < kk; smaller++ {
				less, err := Verify(header, rows, smaller)
				if err != nil || !less {
					t.Fatalf("%d-anonymous table failed Verify(%d)", kk, smaller)
				}
			}
		}
		if Cost(rows) < 0 {
			t.Fatal("negative cost")
		}
	})
}

// parseFlat decodes "h1|h2\nv1|v2\n…" into a rectangular table; returns
// ok=false for shapes the fuzz target should skip rather than feed in.
func parseFlat(flat string) ([]string, [][]string, bool) {
	lines := strings.Split(flat, "\n")
	if len(lines) < 2 {
		return nil, nil, false
	}
	header := strings.Split(lines[0], "|")
	var rows [][]string
	for _, l := range lines[1:] {
		r := strings.Split(l, "|")
		if len(r) != len(header) {
			return nil, nil, false
		}
		rows = append(rows, r)
	}
	return header, rows, true
}
