// Lattice: full-domain generalization — the original Samarati/Sweeney
// k-anonymity mechanism ([10] in the paper) that the paper's cell-level
// suppression model refines. Every value of a column is generalized to
// the same hierarchy level; the search finds the minimal-height lattice
// node that is k-anonymous, optionally dropping a few outlier rows.
//
//	go run ./examples/lattice
package main

import (
	"fmt"
	"log"
	"strings"

	"kanon/internal/generalize"
	"kanon/internal/lattice"
	"kanon/internal/relation"
)

func main() {
	tab := relation.NewTable(relation.NewSchema("zip", "age", "sex"))
	for _, r := range [][]string{
		{"15213", "34", "M"},
		{"15217", "36", "M"},
		{"15213", "38", "F"},
		{"15217", "31", "F"},
		{"15301", "52", "M"},
		{"15301", "57", "F"},
		{"15305", "55", "M"},
		{"15305", "59", "F"},
		{"90210", "23", "F"}, // a geographic outlier
	} {
		if err := tab.AppendStrings(r...); err != nil {
			log.Fatal(err)
		}
	}

	zip := generalize.NewHierarchy("*")
	for _, p := range []string{"152**", "153**", "902**"} {
		zip.MustAdd(p, "*")
	}
	zip.MustAdd("15213", "152**")
	zip.MustAdd("15217", "152**")
	zip.MustAdd("15301", "153**")
	zip.MustAdd("15305", "153**")
	zip.MustAdd("90210", "902**")
	age := generalize.NewHierarchy("*")
	for _, b := range []string{"20-39", "40-59"} {
		age.MustAdd(b, "*")
	}
	for _, a := range []string{"23", "31", "34", "36", "38"} {
		age.MustAdd(a, "20-39")
	}
	for _, a := range []string{"52", "55", "57", "59"} {
		age.MustAdd(a, "40-59")
	}
	scheme := generalize.Scheme{zip, age, generalize.Suppression()}

	fmt.Println("input:")
	printRows(tab.Schema().Names(), allRows(tab))

	for _, maxSup := range []int{0, 1} {
		node, minimal, err := lattice.Search(tab, scheme, 2, maxSup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nk = 2, outlier budget %d → minimal height %d, levels %v (of %d minimal nodes)\n",
			maxSup, node.Height, node.Levels, len(minimal))
		if len(node.Suppressed) > 0 {
			fmt.Printf("rows dropped as outliers: %v\n", node.Suppressed)
		}
		printRows(tab.Schema().Names(), node.Rows)
	}
	fmt.Println("\n(with one row of suppression budget the 90210 outlier is dropped")
	fmt.Println(" instead of dragging every zip code and age to the root)")
}

func allRows(t *relation.Table) [][]string {
	out := make([][]string, t.Len())
	for i := range out {
		out[i] = t.Strings(i)
	}
	return out
}

func printRows(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for j, h := range header {
		widths[j] = len(h)
	}
	for _, r := range rows {
		for j, c := range r {
			if len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for j, c := range cells {
			parts[j] = c + strings.Repeat(" ", widths[j]-len(c))
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}
