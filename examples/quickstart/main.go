// Quickstart: anonymize a small in-memory table with the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kanon"
)

func main() {
	header := []string{"age", "zip", "diagnosis"}
	rows := [][]string{
		{"34", "15213", "flu"},
		{"36", "15213", "flu"},
		{"34", "15217", "cold"},
		{"47", "15217", "cold"},
		{"36", "15213", "covid"},
		{"47", "15217", "flu"},
	}

	// 2-anonymize with the paper's strongly polynomial greedy
	// (Theorem 4.2). Every output row is textually identical to at
	// least one other, so no record can be singled out.
	res, err := kanon.Anonymize(header, rows, 2, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("suppressed %d of %d entries (proven bound: %.1f× optimal)\n\n",
		res.Cost, len(rows)*len(header), kanon.Bound(kanon.AlgoGreedyBall, 2, len(header)))
	fmt.Println(header)
	for i, r := range res.Rows {
		fmt.Printf("%v   (was %v)\n", r, rows[i])
	}

	// Verify independently, and compare against the provable optimum
	// (exact DP — feasible because the table is tiny).
	ok, err := kanon.Verify(res.Header, res.Rows, 2)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := kanon.OptimalCost(header, rows, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2-anonymous: %v; greedy cost %d vs optimal %d\n", ok, res.Cost, opt)
}
