// Hardness: walks through the paper's Theorem 3.1 reduction end to end.
// It builds a 3-Dimensional Matching instance, reduces it to an optimal
// 3-anonymity instance, solves both sides exactly, and extracts the
// matching back out of the optimal anonymization — the constructive
// content of the NP-hardness proof.
//
//	go run ./examples/hardness
package main

import (
	"fmt"
	"log"

	"kanon/internal/exact"
	"kanon/internal/hypergraph"
	"kanon/internal/reduction"
)

func main() {
	// A 3-uniform hypergraph on 9 vertices: a hidden matching
	// {0,1,2},{3,4,5},{6,7,8} among overlapping distractors.
	g := hypergraph.New(9, 3)
	for _, e := range [][]int{
		{0, 4, 8}, {0, 1, 2}, {1, 5, 6}, {3, 4, 5}, {2, 3, 7}, {6, 7, 8}, {0, 5, 7},
	} {
		g.MustAddEdge(e[0], e[1], e[2])
	}
	fmt.Printf("3-DM instance: %d vertices, %d hyperedges\n", g.N, g.M())

	inst, err := reduction.FromMatchingEntry(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreduced k-anonymity instance (%d rows × %d columns, alphabet {0..%d}):\n\n",
		inst.Table.Len(), inst.Table.Degree(), g.N)
	fmt.Println(inst.Table.String())
	fmt.Printf("Theorem 3.1: OPT ≤ n(m−1) = %d  ⇔  the hypergraph has a perfect matching\n\n", inst.Threshold)

	// Side A: the matching solver.
	matching := g.PerfectMatching()
	fmt.Printf("matching solver: perfect matching = %v (edges %v)\n", matching != nil, matching)

	// Side B: the anonymity solver.
	r, err := exact.Solve(inst.Table, 3, exact.Stars)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymity solver: OPT = %d (threshold %d) → matching exists: %v\n",
		r.Value, inst.Threshold, r.Value <= inst.Threshold)

	// Extract the witness from the anonymization.
	back, err := inst.MatchingFromPartition(r.Partition)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matching extracted from the optimal anonymization: edges %v\n", back)
	for _, ej := range back {
		fmt.Printf("  e%d = %v\n", ej, g.Edges[ej])
	}
	fmt.Println("\nanonymized release (each row keeps exactly its matching edge's column):")
	sup, err := inst.SuppressorFromMatching(back)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sup.Apply(inst.Table).String())
}
