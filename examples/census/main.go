// Census: anonymize a census-like microdata extract with every
// algorithm in the library and print the cost/latency frontier — the
// deployment decision the paper's §4.3 "fast in practice" remark is
// about.
//
//	go run ./examples/census [-n 500] [-k 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"kanon"
	"kanon/internal/dataset"
	"kanon/internal/exact"
)

func main() {
	n := flag.Int("n", 500, "rows")
	k := flag.Int("k", 5, "anonymity parameter (the paper cites k ≈ 5-6 in practice)")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	tab := dataset.Census(rng, *n, 8)
	header := tab.Schema().Names()
	rows := make([][]string, tab.Len())
	for i := range rows {
		rows[i] = tab.Strings(i)
	}
	fmt.Printf("census-like microdata: %d rows × %d quasi-identifiers, k = %d\n", *n, len(header), *k)
	fmt.Printf("sample row: %v\n\n", rows[0])

	lb := exact.LowerBoundNN(tab, *k)
	fmt.Printf("%-22s %10s %12s %10s\n", "algorithm", "stars", "vs NN-bound", "time")
	for _, alg := range []kanon.Algorithm{
		kanon.AlgoGreedyBall, kanon.AlgoKMember, kanon.AlgoMondrian,
		kanon.AlgoSorted, kanon.AlgoRandom, kanon.AlgoPattern,
	} {
		start := time.Now()
		res, err := kanon.Anonymize(header, rows, *k, &kanon.Options{Algorithm: alg})
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		elapsed := time.Since(start)
		vs := "-"
		if lb > 0 {
			vs = fmt.Sprintf("%.2f×", float64(res.Cost)/float64(lb))
		}
		fmt.Printf("%-22s %10d %12s %10s\n", alg.String(), res.Cost, vs, elapsed.Round(time.Millisecond))
	}
	fmt.Printf("\nNN lower bound on OPT: %d stars (no algorithm can beat this)\n", lb)
}
