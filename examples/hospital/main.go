// Hospital: reproduces the paper's §1 motivating example — the X-ray
// relation, 2-anonymized two ways:
//
//  1. by entry suppression (the model the paper analyzes), and
//
//  2. by the generalization hierarchies the paper displays ("20-40",
//     "R*", …), reproducing its printed table exactly.
//
//     go run ./examples/hospital
package main

import (
	"fmt"
	"log"
	"strings"

	"kanon"
	"kanon/internal/generalize"
	"kanon/internal/relation"
)

func main() {
	header := []string{"first", "last", "age", "race"}
	rows := [][]string{
		{"Harry", "Stone", "34", "Afr-Am"},
		{"John", "Reyser", "36", "Cauc"},
		{"Beatrice", "Stone", "47", "Afr-Am"},
		{"John", "Ramos", "22", "Hisp"},
	}
	fmt.Println("Who had an X-ray at this hospital yesterday?")
	printTable(header, rows)

	// Model 1: pure suppression via the public API (the table is tiny,
	// so use the provably optimal solver).
	res, err := kanon.Anonymize(header, rows, 2, &kanon.Options{Algorithm: kanon.AlgoExact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2-anonymized by suppression (%d stars):\n", res.Cost)
	printTable(header, res.Rows)

	// Model 2: the paper's generalization hierarchies. Admissible
	// generalizations are declared up front, as the paper requires.
	tab := relation.NewTable(relation.NewSchema(header...))
	for _, r := range rows {
		if err := tab.AppendStrings(r...); err != nil {
			log.Fatal(err)
		}
	}
	last := generalize.NewHierarchy("*")
	last.MustAdd("R*", "*")
	last.MustAdd("S*", "*")
	last.MustAdd("Reyser", "R*")
	last.MustAdd("Ramos", "R*")
	last.MustAdd("Stone", "S*")
	age := generalize.NewHierarchy("*")
	age.MustAdd("20-40", "*")
	age.MustAdd("40-60", "*")
	age.MustAdd("22", "20-40")
	age.MustAdd("34", "20-40")
	age.MustAdd("36", "20-40")
	age.MustAdd("47", "40-60")
	scheme := generalize.Scheme{generalize.Suppression(), last, age, generalize.Suppression()}

	gres, err := generalize.Anonymize(tab, 2, scheme)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2-anonymized with the paper's hierarchies (cost %d level-climbs):\n", gres.Cost)
	printTable(header, gres.Rows)
	fmt.Println("\n(compare with the table printed in §1 of the paper)")
}

func printTable(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for j, h := range header {
		widths[j] = len(h)
	}
	for _, r := range rows {
		for j, c := range r {
			if len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for j, c := range cells {
			parts[j] = c + strings.Repeat(" ", widths[j]-len(c))
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}
