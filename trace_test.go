package kanon_test

// Determinism under tracing: Options.Trace observes a run, it must
// never steer it. These tests re-run the same instance with tracing on
// and off, across worker counts, and require byte-identical output —
// the property the instrumentation layer promises and the CI race job
// leans on.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"kanon"
)

// genTable builds a deterministic categorical table.
func genTable(n, m int, seed int64) ([]string, [][]string) {
	rng := rand.New(rand.NewSource(seed))
	header := make([]string, m)
	for j := range header {
		header[j] = fmt.Sprintf("c%d", j)
	}
	rows := make([][]string, n)
	for i := range rows {
		rows[i] = make([]string, m)
		for j := range rows[i] {
			rows[i][j] = fmt.Sprintf("v%d", rng.Intn(5))
		}
	}
	return header, rows
}

func TestTraceDeterminism(t *testing.T) {
	header, rows := genTable(240, 6, 42)
	algos := []kanon.Algorithm{kanon.AlgoGreedyBall, kanon.AlgoPattern}
	for _, alg := range algos {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/workers=%d", alg, workers), func(t *testing.T) {
				base, err := kanon.Anonymize(header, rows, 3, &kanon.Options{
					Algorithm: alg, Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				traced, err := kanon.Anonymize(header, rows, 3, &kanon.Options{
					Algorithm: alg, Workers: workers, Trace: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if base.Cost != traced.Cost {
					t.Errorf("cost changed under tracing: %d vs %d", base.Cost, traced.Cost)
				}
				if !reflect.DeepEqual(base.Rows, traced.Rows) {
					t.Error("released rows changed under tracing")
				}
				if !reflect.DeepEqual(base.Groups, traced.Groups) {
					t.Error("groups changed under tracing")
				}
				if base.Stats != nil {
					t.Error("Stats set without Options.Trace")
				}
				if traced.Stats == nil {
					t.Fatal("Stats nil with Options.Trace")
				}
				if len(traced.Stats.Spans) == 0 || traced.Stats.SpanTotalNS() <= 0 {
					t.Errorf("trace has no spans: %+v", traced.Stats)
				}
				if len(traced.Stats.Counters) == 0 {
					t.Error("trace has no counters")
				}
				if got := traced.Stats.Counters["kanon.entries_suppressed"]; got != int64(traced.Cost) {
					t.Errorf("kanon.entries_suppressed = %d, want cost %d", got, traced.Cost)
				}
			})
		}
	}
}

// TestStatsJSONStable marshals the same run's Stats twice and requires
// identical bytes — the machine-readable trace is deterministic within
// a run (across runs, durations differ by nature).
func TestStatsJSONStable(t *testing.T) {
	header, rows := genTable(120, 5, 7)
	res, err := kanon.Anonymize(header, rows, 3, &kanon.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("Stats JSON not stable across marshals")
	}
	var back kanon.Stats
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatalf("Stats JSON does not round-trip: %v", err)
	}
}

// TestTraceExactAndWeighted covers the remaining facade arms: the DP
// and the weighted ball path must also be unaffected by tracing.
func TestTraceExactAndWeighted(t *testing.T) {
	header, rows := genTable(14, 4, 3)
	for _, opts := range []*kanon.Options{
		{Algorithm: kanon.AlgoExact},
		{Algorithm: kanon.AlgoGreedyBall, ColumnWeights: []int{3, 1, 1, 5}},
	} {
		plain := *opts
		res, err := kanon.Anonymize(header, rows, 2, &plain)
		if err != nil {
			t.Fatal(err)
		}
		withTrace := *opts
		withTrace.Trace = true
		traced, err := kanon.Anonymize(header, rows, 2, &withTrace)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != traced.Cost || !reflect.DeepEqual(res.Rows, traced.Rows) {
			t.Errorf("%+v: output changed under tracing", opts)
		}
		if traced.Stats == nil || len(traced.Stats.Spans) == 0 {
			t.Errorf("%+v: missing trace", opts)
		}
	}
}
