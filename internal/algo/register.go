package algo

import "kanon/internal/solver"

// The greedy families register themselves so the facade and every
// binary dispatch through the solver registry instead of a switch.
func init() {
	solver.Register(solver.Info{
		Name:        "ball",
		Description: "Theorem 4.2's strongly polynomial 6k(1+ln m) greedy",
		Run: func(req solver.Request) (*solver.Result, error) {
			if req.Weights != nil {
				r, err := GreedyBallWeighted(req.Table, req.K, req.Weights, &Options{
					Ctx: req.Ctx, SplitSorted: req.SplitSorted, Workers: req.Workers,
					Trace: req.Trace, Log: req.Log,
				})
				if err != nil {
					return nil, err
				}
				return &solver.Result{Partition: r.Partition}, nil
			}
			r, err := GreedyBall(req.Table, req.K, &Options{
				Ctx:                 req.Ctx,
				SplitSorted:         req.SplitSorted,
				TrueDiameterWeights: req.TrueDiameterWeights,
				Workers:             req.Workers,
				Kernel:              req.Kernel,
				Trace:               req.Trace,
				Log:                 req.Log,
			})
			if err != nil {
				return nil, err
			}
			return &solver.Result{Partition: r.Partition}, nil
		},
	})
	solver.Register(solver.Info{
		Name:        "exhaustive",
		Description: "Theorem 4.1's 3k(1+ln k) greedy over all small subsets",
		Run: func(req solver.Request) (*solver.Result, error) {
			r, err := GreedyExhaustive(req.Table, req.K, &Options{
				Ctx: req.Ctx, SplitSorted: req.SplitSorted, Workers: req.Workers,
				Kernel: req.Kernel, Trace: req.Trace, Log: req.Log,
			})
			if err != nil {
				return nil, err
			}
			return &solver.Result{Partition: r.Partition}, nil
		},
	})
}
