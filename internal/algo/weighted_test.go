package algo

import (
	"math/rand"
	"testing"

	"kanon/internal/core"
	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/relation"
)

func TestGreedyBallWeightedReducesToUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := dataset.Census(rng, 40, 6)
	plain, err := GreedyBall(tab, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := GreedyBallWeighted(tab, 3, core.UniformWeights(6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if uni.Cost != plain.Cost {
		t.Errorf("uniform-weight cost %d != plain %d", uni.Cost, plain.Cost)
	}
	if uni.WeightedCost != uni.Cost {
		t.Errorf("uniform weighted cost %d != star count %d", uni.WeightedCost, uni.Cost)
	}
	nilW, err := GreedyBallWeighted(tab, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nilW.Cost != plain.Cost {
		t.Errorf("nil-weight cost %d != plain %d", nilW.Cost, plain.Cost)
	}
}

func TestGreedyBallWeightedProtectsExpensiveColumn(t *testing.T) {
	// Two grouping choices: by column 0 (then column 1 is starred) or
	// by column 1 (then column 0 is starred). With a heavy weight on
	// column 0, the weighted greedy must keep column 0.
	tab := relation.MustFromVectors([][]int{
		{1, 7}, {1, 8}, {2, 7}, {2, 8},
	})
	w := core.Weights{100, 1}
	r, err := GreedyBallWeighted(tab, 2, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Anonymized.IsKAnonymous(2) {
		t.Fatal("output not 2-anonymous")
	}
	// The cheap release groups {0,1} and {2,3}, starring only column 1:
	// weighted cost 4·1 = 4.
	if r.WeightedCost != 4 {
		t.Errorf("weighted cost = %d, want 4 (column 0 preserved)", r.WeightedCost)
	}
	for i := 0; i < tab.Len(); i++ {
		if r.Anonymized.Row(i)[0] == relation.Star {
			t.Errorf("row %d starred the expensive column", i)
		}
	}
	// The unweighted greedy has no reason to prefer either column; the
	// exact weighted optimum confirms 4 is best possible.
	opt, err := exact.SolveWeighted(tab, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Value != 4 {
		t.Errorf("weighted OPT = %d, want 4", opt.Value)
	}
}

func TestGreedyBallWeightedNeverBelowWeightedOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		tab := dataset.Uniform(rng, 12, 5, 3)
		w := make(core.Weights, 5)
		for j := range w {
			w[j] = 1 + rng.Intn(9)
		}
		k := 2 + trial%2
		opt, err := exact.SolveWeighted(tab, k, w)
		if err != nil {
			t.Fatal(err)
		}
		r, err := GreedyBallWeighted(tab, k, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.WeightedCost < opt.Value {
			t.Fatalf("trial %d: greedy %d below weighted OPT %d", trial, r.WeightedCost, opt.Value)
		}
		if got := r.Partition.CostWeighted(tab, w); got != r.WeightedCost {
			t.Fatalf("trial %d: partition weighted cost %d != reported %d", trial, got, r.WeightedCost)
		}
	}
}

func TestGreedyBallWeightedValidation(t *testing.T) {
	tab := dataset.Uniform(rand.New(rand.NewSource(3)), 6, 3, 2)
	if _, err := GreedyBallWeighted(tab, 2, core.Weights{1, 2}, nil); err == nil {
		t.Error("accepted wrong-length weights")
	}
	if _, err := GreedyBallWeighted(tab, 2, core.Weights{1, -1, 2}, nil); err == nil {
		t.Error("accepted negative weight")
	}
	if _, err := GreedyBallWeighted(tab, 0, nil, nil); err == nil {
		t.Error("accepted k=0")
	}
}

func TestSolveWeightedReducesToSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		tab := dataset.Uniform(rng, 9, 4, 2)
		a, err := exact.Solve(tab, 2, exact.Stars)
		if err != nil {
			t.Fatal(err)
		}
		b, err := exact.SolveWeighted(tab, 2, core.UniformWeights(4))
		if err != nil {
			t.Fatal(err)
		}
		if a.Value != b.Value {
			t.Fatalf("trial %d: unweighted %d != uniform-weighted %d", trial, a.Value, b.Value)
		}
	}
}
