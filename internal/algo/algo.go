// Package algo assembles the paper's two headline approximation
// algorithms end-to-end (§4.2.4's summary):
//
//  1. Π := Cover(V, family)        — Phase 1, greedy set cover
//  2. Π := Reduce(Π) until stable  — Phase 2, cover → partition
//  3. Suppress each S ∈ Π to uniformity.
//
// GreedyExhaustive runs Phase 1 over the collection C of all subsets
// with cardinality in [k, 2k−1] (Theorem 4.1, 3k(1+ln k)-approximation,
// O(|V|^{2k}) time). GreedyBall runs it over the ball collection D of
// §4.3 (Theorem 4.2, 6k(1+ln m)-approximation, strongly polynomial).
package algo

import (
	"context"
	"fmt"
	"time"

	"kanon/internal/core"
	"kanon/internal/cover"
	"kanon/internal/metric"
	"kanon/internal/obs"
	"kanon/internal/relation"
)

// Options tunes the algorithms; the zero value reproduces the paper.
type Options struct {
	// Ctx cancels or bounds the run: the hot phases (family
	// construction, greedy rounds) poll it and abort with an error
	// wrapping ctx.Err(). Nil means context.Background() — never
	// cancelled. Cancellation never corrupts state; a cancelled run
	// simply returns no result.
	Ctx context.Context
	// SplitSorted selects the similarity-aware oversize-group split
	// instead of the paper's arbitrary split (ablation E10).
	SplitSorted bool
	// TrueDiameterWeights makes the ball family weight sets by exact
	// diameter instead of the 2·radius bound (ablation E10). Ignored by
	// GreedyExhaustive, which always uses exact diameters.
	TrueDiameterWeights bool
	// MaterializeBalls forces GreedyBall through the explicit family
	// constructor instead of the scalable implicit one; used by tests
	// and ablations. Implied by TrueDiameterWeights.
	MaterializeBalls bool
	// MaxExhaustiveSets caps the enumerated family size of
	// GreedyExhaustive (0 means the cover package default).
	MaxExhaustiveSets int
	// Workers bounds the parallelism of the distance-matrix fill and
	// the ball-family construction: 0 (or negative) means all CPUs, 1
	// forces the sequential path. Results are byte-identical for every
	// worker count.
	Workers int
	// Kernel selects the distance-kernel backend: metric.Auto (the
	// zero value) picks dense below metric.AutoBitsetThreshold rows and
	// the matrix-free bitset kernel at or above it; metric.Dense and
	// metric.Bitset force a backend. Results are byte-identical for
	// every choice — only time and memory change. The weighted variant
	// ignores it (column weights need the dense matrix).
	Kernel metric.Choice
	// Trace is the parent span phase spans and counters attach under;
	// nil (the default) disables instrumentation at the cost of a nil
	// check per span. Tracing never changes results.
	Trace *obs.Span
	// Log receives structured events: phase boundaries and anomalies
	// (matrix widening, oversize-group splits). Nil (the default) is
	// silent; logging never changes results.
	Log *obs.Events
}

// Stats records instrumentation for the experiments.
type Stats struct {
	FamilySize   int           // candidate sets enumerated (0 if implicit)
	CoverSets    int           // sets chosen by Phase 1
	CoverWeight  int           // Σ weights of chosen sets
	DiameterSum  int           // Σ true diameters of final partition
	PhaseCover   time.Duration // Phase 1 wall time
	PhaseReduce  time.Duration // Phase 2 wall time
	PhaseSupress time.Duration // Step 3 wall time
}

// Result is an anonymization outcome: the partition, the induced
// suppressor, the anonymized table, and the star count.
type Result struct {
	K          int
	Partition  *core.Partition
	Suppressor *core.Suppressor
	Anonymized *relation.Table
	Cost       int
	// WeightedCost is the column-weighted objective; set only by the
	// *Weighted entry points (zero otherwise).
	WeightedCost int
	Stats        Stats
}

// GreedyExhaustive is the algorithm of Theorem 4.1.
func GreedyExhaustive(t *relation.Table, k int, opt *Options) (*Result, error) {
	if opt == nil {
		opt = &Options{}
	}
	ctx := opt.ctx()
	if err := checkInstance(t, k); err != nil {
		return nil, err
	}
	if r, done := trivialResult(t, k); done {
		return r, nil
	}
	mat, err := buildKernel(t, opt)
	if err != nil {
		return nil, err
	}
	var st Stats

	opt.Log.PhaseStart("cover")
	start := time.Now()
	cs := opt.Trace.Start("algo.cover")
	family, err := cover.ExhaustiveCtx(ctx, mat, k, opt.MaxExhaustiveSets, cs)
	if err != nil {
		cs.End()
		return nil, fmt.Errorf("algo: building exhaustive family: %w", err)
	}
	st.FamilySize = len(family)
	chosen, err := cover.GreedyCtx(ctx, t.Len(), family, cs)
	cs.End()
	if err != nil {
		return nil, fmt.Errorf("algo: greedy cover: %w", err)
	}
	st.PhaseCover = time.Since(start)
	opt.Log.PhaseDone("cover", st.PhaseCover)

	return finish(t, mat, k, chosen, opt, st)
}

// GreedyBall is the algorithm of Theorem 4.2.
func GreedyBall(t *relation.Table, k int, opt *Options) (*Result, error) {
	if opt == nil {
		opt = &Options{}
	}
	ctx := opt.ctx()
	if err := checkInstance(t, k); err != nil {
		return nil, err
	}
	if r, done := trivialResult(t, k); done {
		return r, nil
	}
	mat, err := buildKernel(t, opt)
	if err != nil {
		return nil, err
	}
	var st Stats

	opt.Log.PhaseStart("cover")
	start := time.Now()
	cs := opt.Trace.Start("algo.cover")
	var chosen []cover.Set
	if opt.MaterializeBalls || opt.TrueDiameterWeights {
		w := cover.WeightRadiusBound
		if opt.TrueDiameterWeights {
			w = cover.WeightTrueDiameter
		}
		var family []cover.Set
		family, err = cover.BallsCtx(ctx, mat, k, w, opt.Workers, cs)
		if err == nil {
			st.FamilySize = len(family)
			chosen, err = cover.GreedyCtx(ctx, t.Len(), family, cs)
		}
	} else {
		chosen, err = cover.GreedyBallsCtx(ctx, mat, k, opt.Workers, cs)
	}
	cs.End()
	if err != nil {
		return nil, fmt.Errorf("algo: greedy ball cover: %w", err)
	}
	st.PhaseCover = time.Since(start)
	opt.Log.PhaseDone("cover", st.PhaseCover)

	return finish(t, mat, k, chosen, opt, st)
}

// buildKernel constructs the distance kernel selected by Options.Kernel
// under the phase span, reporting the int16→int32 widening fallback of
// the dense path as an anomaly event when it fires and counting which
// backend ran. Construction polls the Options context (per row on the
// dense fill, per row block on the bitset packing), so a cancelled run
// aborts its heaviest phase promptly.
func buildKernel(t *relation.Table, opt *Options) (metric.Kernel, error) {
	opt.Log.PhaseStart("matrix")
	var start time.Time
	if opt.Log.Enabled() {
		start = time.Now()
	}
	ms := opt.Trace.Start("algo.distance-matrix")
	kern, err := metric.NewKernelCtx(opt.ctx(), t, opt.Kernel, opt.Workers)
	ms.End()
	if err != nil {
		return nil, fmt.Errorf("algo: distance kernel: %w", err)
	}
	if mat, ok := kern.(*metric.Matrix); ok {
		opt.Trace.Counter("algo.kernel_dense").Add(1)
		if mat.Wide() {
			opt.Log.Anomaly("matrix_widened", int64(t.Len()))
		}
	} else {
		opt.Trace.Counter("algo.kernel_bitset").Add(1)
	}
	if opt.Log.Enabled() {
		opt.Log.PhaseDone("matrix", time.Since(start))
	}
	return kern, nil
}

// finish runs Phase 2 and the suppression step shared by both
// algorithms.
func finish(t *relation.Table, mat metric.Kernel, k int, chosen []cover.Set, opt *Options, st Stats) (*Result, error) {
	if err := opt.ctx().Err(); err != nil {
		return nil, fmt.Errorf("algo: %w", err)
	}
	st.CoverSets = len(chosen)
	st.CoverWeight = cover.WeightSum(chosen)

	opt.Log.PhaseStart("reduce")
	start := time.Now()
	rs := opt.Trace.Start("algo.reduce")
	p, err := cover.ReduceTraced(t.Len(), chosen, k, rs)
	if err != nil {
		rs.End()
		return nil, fmt.Errorf("algo: reduce: %w", err)
	}
	if opt.Log.Enabled() {
		oversize := 0
		for _, g := range p.Groups {
			if len(g) > 2*k-1 {
				oversize++
			}
		}
		if oversize > 0 {
			opt.Log.Anomaly("split_oversize", int64(oversize))
		}
	}
	if opt.SplitSorted {
		p.SplitOversizeSorted(k, mat)
	} else {
		p.SplitOversize(k)
	}
	if err := p.Validate(t.Len(), k, 2*k-1); err != nil {
		rs.End()
		return nil, fmt.Errorf("algo: internal: invalid partition after reduce: %w", err)
	}
	rs.End()
	st.PhaseReduce = time.Since(start)
	opt.Log.PhaseDone("reduce", st.PhaseReduce)
	st.DiameterSum = p.DiameterSum(mat)

	opt.Log.PhaseStart("suppress")
	start = time.Now()
	ss := opt.Trace.Start("algo.suppress")
	sup := p.Suppressor(t)
	anon := sup.Apply(t)
	ss.End()
	st.PhaseSupress = time.Since(start)
	opt.Log.PhaseDone("suppress", st.PhaseSupress)
	opt.Trace.Counter("algo.entries_suppressed").Add(int64(sup.Stars()))
	opt.Trace.Counter("algo.groups").Add(int64(len(p.Groups)))
	if gh := opt.Trace.Histogram("algo.group_size"); gh != nil {
		for _, g := range p.Groups {
			gh.Observe(int64(len(g)))
		}
	}

	if !anon.IsKAnonymous(k) {
		return nil, fmt.Errorf("algo: internal: output is not %d-anonymous", k)
	}
	return &Result{
		K:          k,
		Partition:  p,
		Suppressor: sup,
		Anonymized: anon,
		Cost:       sup.Stars(),
		Stats:      st,
	}, nil
}

// ctx resolves the Options context, treating nil (and a nil receiver)
// as the never-cancelled background context.
func (o *Options) ctx() context.Context {
	if o == nil || o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// checkInstance validates the (t, k) input shared by all algorithms.
func checkInstance(t *relation.Table, k int) error {
	if k < 1 {
		return fmt.Errorf("algo: k = %d < 1", k)
	}
	if t.Len() == 0 {
		return fmt.Errorf("algo: empty table")
	}
	if t.Len() < k {
		return fmt.Errorf("algo: table has %d rows, fewer than k = %d", t.Len(), k)
	}
	return nil
}

// trivialResult handles k = 1, where the identity suppressor is optimal
// (every row is its own group).
func trivialResult(t *relation.Table, k int) (*Result, bool) {
	if k != 1 {
		return nil, false
	}
	p := &core.Partition{}
	for i := 0; i < t.Len(); i++ {
		p.Groups = append(p.Groups, []int{i})
	}
	sup := core.NewSuppressor(t.Len(), t.Degree())
	return &Result{
		K:          1,
		Partition:  p,
		Suppressor: sup,
		Anonymized: sup.Apply(t),
		Cost:       0,
	}, true
}
