package algo

import (
	"fmt"
	"time"

	"kanon/internal/core"
	"kanon/internal/cover"
	"kanon/internal/relation"
)

// GreedyBallWeighted is GreedyBall under column-weighted suppression
// costs: candidate balls are drawn from the weighted metric d_w, and
// the reported WeightedCost is Σ over starred entries of the column's
// weight. With nil weights it coincides with GreedyBall. The Theorem
// 4.2 analysis survives weighting because d_w is still a metric (see
// internal/core's weighted.go); the multiplicative guarantee becomes
// 6k(1 + ln W) with W the weighted degree Σ_j w_j.
func GreedyBallWeighted(t *relation.Table, k int, w core.Weights, opt *Options) (*Result, error) {
	if opt == nil {
		opt = &Options{}
	}
	if err := checkInstance(t, k); err != nil {
		return nil, err
	}
	if err := w.Validate(t.Degree()); err != nil {
		return nil, fmt.Errorf("algo: %w", err)
	}
	if r, done := trivialResult(t, k); done {
		return r, nil
	}
	ms := opt.Trace.Start("algo.distance-matrix")
	mat, err := core.WeightedMatrixCtx(opt.ctx(), t, w, opt.Workers)
	ms.End()
	if err != nil {
		return nil, fmt.Errorf("algo: weighted distance matrix: %w", err)
	}
	var st Stats

	start := time.Now()
	cs := opt.Trace.Start("algo.cover")
	chosen, err := cover.GreedyBallsCtx(opt.ctx(), mat, k, opt.Workers, cs)
	cs.End()
	if err != nil {
		return nil, fmt.Errorf("algo: weighted greedy ball cover: %w", err)
	}
	st.PhaseCover = time.Since(start)

	res, err := finish(t, mat, k, chosen, opt, st)
	if err != nil {
		return nil, err
	}
	res.WeightedCost = res.Suppressor.WeightedStars(w)
	return res, nil
}
