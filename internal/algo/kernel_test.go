package algo

import (
	"math/rand"
	"os"
	"runtime"
	"testing"

	"kanon/internal/dataset"
	"kanon/internal/metric"
)

// TestKernelByteIdentity pins the algo layer's half of the cross-kernel
// contract: GreedyBall and GreedyExhaustive return identical results
// (rows, groups, cost, family stats) under every kernel choice.
func TestKernelByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := dataset.Planted(rng, 300, 8, 6, 3, 1)
	for _, k := range []int{2, 3} {
		want, err := GreedyBall(tab, k, &Options{Kernel: metric.Dense})
		if err != nil {
			t.Fatal(err)
		}
		for _, kern := range []metric.Choice{metric.Bitset, metric.Auto} {
			got, err := GreedyBall(tab, k, &Options{Kernel: kern})
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.Cost {
				t.Errorf("k=%d kernel=%v: cost %d, want %d", k, kern, got.Cost, want.Cost)
			}
			for i := 0; i < tab.Len(); i++ {
				if !got.Anonymized.Row(i).Equal(want.Anonymized.Row(i)) {
					t.Fatalf("k=%d kernel=%v: row %d differs", k, kern, i)
				}
			}
		}
	}
	small := dataset.Planted(rng, 40, 6, 4, 2, 1)
	want, err := GreedyExhaustive(small, 2, &Options{Kernel: metric.Dense})
	if err != nil {
		t.Fatal(err)
	}
	got, err := GreedyExhaustive(small, 2, &Options{Kernel: metric.Bitset})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Errorf("exhaustive: bitset cost %d, want %d", got.Cost, want.Cost)
	}
}

// TestLazyBallPeakAlloc is the scale acceptance run: a matrix-free
// greedy ball pass at n=50000, m=8, k=3 must complete without ever
// materializing an n×n array. A dense int16 matrix alone would be
// n² · 2 = 5 GB; the assertion bounds the run's entire allocation well
// under that, so any accidental densification fails loudly. The run
// takes minutes of CPU, so it is opt-in: CI enables it via
// KANON_BIG_TESTS=1 (see .github/workflows/ci.yml); the tier-1 suite
// skips it.
func TestLazyBallPeakAlloc(t *testing.T) {
	if os.Getenv("KANON_BIG_TESTS") == "" {
		t.Skip("set KANON_BIG_TESTS=1 to run the n=50000 matrix-free scale test")
	}
	const n = 50_000
	rng := rand.New(rand.NewSource(20040614))
	tab := dataset.Planted(rng, n, 8, 6, 3, 1)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := GreedyBall(tab, 3, &Options{Kernel: metric.Bitset})
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	alloc := int64(after.TotalAlloc - before.TotalAlloc)

	if !res.Anonymized.IsKAnonymous(3) {
		t.Fatal("output not 3-anonymous")
	}
	const denseBytes = int64(n) * int64(n) * 2
	const limit = denseBytes / 4 // 1.25 GB — far above the real footprint, far below n×n
	if alloc > limit {
		t.Errorf("matrix-free ball allocated %d bytes (limit %d; a dense matrix is %d)",
			alloc, limit, denseBytes)
	}
	t.Logf("n=%d matrix-free ball: cost %d, %d bytes allocated (dense matrix would be %d)",
		n, res.Cost, alloc, denseBytes)
}
