package algo

import (
	"math/rand"
	"testing"

	"kanon/internal/core"
	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/relation"
)

type runner func(t *relation.Table, k int, opt *Options) (*Result, error)

var runners = map[string]runner{
	"exhaustive": GreedyExhaustive,
	"ball":       GreedyBall,
}

func checkResult(t *testing.T, tab *relation.Table, k int, r *Result) {
	t.Helper()
	if err := r.Partition.Validate(tab.Len(), k, 2*k-1); err != nil {
		t.Fatalf("partition invalid: %v", err)
	}
	if !r.Anonymized.IsKAnonymous(k) {
		t.Fatal("output not k-anonymous")
	}
	if r.Anonymized.TotalStars() != r.Cost {
		t.Fatalf("cost %d != stars in table %d", r.Cost, r.Anonymized.TotalStars())
	}
	if r.Suppressor.Stars() != r.Cost {
		t.Fatalf("cost %d != suppressor stars %d", r.Cost, r.Suppressor.Stars())
	}
	// Non-starred entries must match the original (suppressors never
	// rewrite values).
	for i := 0; i < tab.Len(); i++ {
		orig, anon := tab.Row(i), r.Anonymized.Row(i)
		for j := range orig {
			if anon[j] != relation.Star && anon[j] != orig[j] {
				t.Fatalf("entry (%d,%d) rewritten from %d to %d", i, j, orig[j], anon[j])
			}
		}
	}
}

func TestPaperExample(t *testing.T) {
	// §4's worked example: V = {1010, 1110, 0110}, k = 3. The only
	// (3,5)-partition is the single 3-group with diameter 2, cost 6.
	tab := relation.MustFromBitstrings("1010", "1110", "0110")
	for name, run := range runners {
		t.Run(name, func(t *testing.T) {
			r, err := run(tab, 3, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkResult(t, tab, 3, r)
			if r.Cost != 6 {
				t.Errorf("cost = %d, want 6", r.Cost)
			}
			// Suffixes b3b4 survive: every anonymized row ends "10".
			for i := 0; i < 3; i++ {
				s := r.Anonymized.Strings(i)
				if s[2] != "1" || s[3] != "0" {
					t.Errorf("row %d = %v, want suffix 1,0 kept", i, s)
				}
			}
		})
	}
}

func TestAlreadyAnonymousCostsZero(t *testing.T) {
	tab := dataset.Planted(rand.New(rand.NewSource(1)), 20, 6, 3, 4, 0)
	for name, run := range runners {
		t.Run(name, func(t *testing.T) {
			r, err := run(tab, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkResult(t, tab, 4, r)
			if r.Cost != 0 {
				t.Errorf("cost = %d on an already 4-anonymous table, want 0", r.Cost)
			}
		})
	}
}

func TestKOne(t *testing.T) {
	tab := dataset.Uniform(rand.New(rand.NewSource(2)), 8, 4, 3)
	for name, run := range runners {
		t.Run(name, func(t *testing.T) {
			r, err := run(tab, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			if r.Cost != 0 {
				t.Errorf("k=1 cost = %d, want 0", r.Cost)
			}
			if len(r.Partition.Groups) != 8 {
				t.Errorf("k=1 groups = %d, want 8 singletons", len(r.Partition.Groups))
			}
		})
	}
}

func TestInputValidation(t *testing.T) {
	tab := dataset.Uniform(rand.New(rand.NewSource(3)), 3, 2, 2)
	empty := relation.NewTable(relation.NewSchema("a"))
	for name, run := range runners {
		t.Run(name, func(t *testing.T) {
			if _, err := run(tab, 0, nil); err == nil {
				t.Error("accepted k=0")
			}
			if _, err := run(tab, 4, nil); err == nil {
				t.Error("accepted n < k")
			}
			if _, err := run(empty, 2, nil); err == nil {
				t.Error("accepted empty table")
			}
		})
	}
}

func TestExhaustiveFamilyCap(t *testing.T) {
	tab := dataset.Uniform(rand.New(rand.NewSource(4)), 40, 4, 2)
	if _, err := GreedyExhaustive(tab, 3, &Options{MaxExhaustiveSets: 500}); err == nil {
		t.Error("GreedyExhaustive ignored the family cap")
	}
}

// TestApproximationRatios measures both algorithms against exact OPT on
// random instances and asserts the paper's guarantees (and that the
// measured ratios are far better in practice — the E1/E2 shape).
func TestApproximationRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	type gen func() *relation.Table
	gens := map[string]gen{
		"uniform": func() *relation.Table { return dataset.Uniform(rng, 9+rng.Intn(5), 4+rng.Intn(4), 3) },
		"planted": func() *relation.Table { return dataset.Planted(rng, 9+rng.Intn(5), 6, 3, 3, 2) },
	}
	for gname, g := range gens {
		for _, k := range []int{2, 3} {
			worst := map[string]float64{"exhaustive": 1, "ball": 1}
			for trial := 0; trial < 8; trial++ {
				tab := g()
				opt, err := exact.OPT(tab, k)
				if err != nil {
					t.Fatal(err)
				}
				for name, run := range runners {
					r, err := run(tab, k, nil)
					if err != nil {
						t.Fatalf("%s/%s k=%d: %v", gname, name, k, err)
					}
					checkResult(t, tab, k, r)
					if r.Cost < opt {
						t.Fatalf("%s/%s: cost %d below OPT %d — exact solver or algorithm broken", gname, name, r.Cost, opt)
					}
					ratio := exact.Ratio(r.Cost, opt)
					if ratio > worst[name] {
						worst[name] = ratio
					}
				}
			}
			bounds := map[string]float64{
				"exhaustive": core.Theorem41SafeBound(k),
				"ball":       core.Theorem42SafeBound(k, 14),
			}
			for name, w := range worst {
				if w > bounds[name] {
					t.Errorf("%s/%s k=%d: worst ratio %.3f exceeds bound %.3f", gname, name, k, w, bounds[name])
				}
				// Practical shape: greedy is typically within 3× of OPT
				// on these instances.
				if w > 3.5 {
					t.Errorf("%s/%s k=%d: worst ratio %.3f unexpectedly poor", gname, name, k, w)
				}
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	tab := dataset.Uniform(rand.New(rand.NewSource(7)), 12, 5, 3)
	r, err := GreedyExhaustive(tab, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.FamilySize == 0 || r.Stats.CoverSets == 0 {
		t.Errorf("stats not populated: %+v", r.Stats)
	}
	rb, err := GreedyBall(tab, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Stats.FamilySize != 0 {
		t.Errorf("implicit ball run should report FamilySize 0, got %d", rb.Stats.FamilySize)
	}
	if rb.Stats.CoverSets == 0 {
		t.Error("ball stats missing cover sets")
	}
}

func TestOptionVariantsStillValid(t *testing.T) {
	tab := dataset.Zipf(rand.New(rand.NewSource(8)), 30, 6, 5, 1.6)
	opts := []*Options{
		{SplitSorted: true},
		{TrueDiameterWeights: true},
		{MaterializeBalls: true},
		{SplitSorted: true, TrueDiameterWeights: true},
	}
	for i, o := range opts {
		r, err := GreedyBall(tab, 3, o)
		if err != nil {
			t.Fatalf("option set %d: %v", i, err)
		}
		checkResult(t, tab, 3, r)
	}
}

// TestTrueDiameterNeverWorseOnAverage: with exact diameters the greedy
// has strictly better information; check it is not systematically worse
// across a fixed corpus (allowing individual instances to flip).
func TestTrueDiameterWeightsComparable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sumBound, sumTrue := 0, 0
	for trial := 0; trial < 10; trial++ {
		tab := dataset.Uniform(rng, 20, 6, 3)
		a, err := GreedyBall(tab, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GreedyBall(tab, 3, &Options{TrueDiameterWeights: true})
		if err != nil {
			t.Fatal(err)
		}
		sumBound += a.Cost
		sumTrue += b.Cost
	}
	if sumTrue > sumBound*3/2 {
		t.Errorf("true-diameter weights much worse in aggregate: %d vs %d", sumTrue, sumBound)
	}
}

func TestDeterministicOutput(t *testing.T) {
	tab := dataset.Census(rand.New(rand.NewSource(10)), 40, 6)
	a, err := GreedyBall(tab, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyBall(tab, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("same input, different costs %d vs %d", a.Cost, b.Cost)
	}
	a.Partition.Normalize()
	b.Partition.Normalize()
	if len(a.Partition.Groups) != len(b.Partition.Groups) {
		t.Fatal("same input, different partitions")
	}
}

// TestExhaustiveBeatsBallTypically: on small instances the richer
// family should never lose by much; the E10 ablation quantifies this.
func TestExhaustiveVsBall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	worse := 0
	for trial := 0; trial < 10; trial++ {
		tab := dataset.Uniform(rng, 12, 5, 2)
		e, err := GreedyExhaustive(tab, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GreedyBall(tab, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if e.Cost > b.Cost {
			worse++
		}
	}
	if worse > 5 {
		t.Errorf("exhaustive family lost to ball family on %d/10 instances", worse)
	}
}

// TestGreedyBallWorkersDeterministic: the Workers knob must not change
// a single released cell — the anonymized table, partition, and cost
// are byte-identical at every worker count.
func TestGreedyBallWorkersDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 44} {
		for _, n := range []int{40, 150} {
			for _, k := range []int{2, 3, 5} {
				rng := rand.New(rand.NewSource(seed))
				tab := dataset.Census(rng, n, 6)
				seq, err := GreedyBall(tab, k, &Options{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{0, 2, 4} {
					par, err := GreedyBall(tab, k, &Options{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if par.Cost != seq.Cost {
						t.Fatalf("seed=%d n=%d k=%d workers=%d: cost %d != %d", seed, n, k, workers, par.Cost, seq.Cost)
					}
					for i := 0; i < seq.Anonymized.Len(); i++ {
						a, b := seq.Anonymized.Row(i), par.Anonymized.Row(i)
						for j := range a {
							if a[j] != b[j] {
								t.Fatalf("seed=%d n=%d k=%d workers=%d: cell (%d,%d) differs", seed, n, k, workers, i, j)
							}
						}
					}
				}
			}
		}
	}
}
