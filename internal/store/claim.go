// Lease-based job claiming: the primitives that let N kanond processes
// share one data directory and drain a single queue.
//
// The manifest is still the single source of truth; what cluster mode
// adds is a Claim record inside it (node ID, fencing token, lease
// deadline) and a way to transition it atomically *across processes*.
// temp+fsync+rename alone gives atomic replacement but not mutual
// exclusion — two nodes could both read an unclaimed manifest and both
// rename a "claimed by me" version over it, each believing it won. So
// every claim-path mutation runs as a locked read-modify-write:
//
//  1. acquire <job>/manifest.lock with O_CREATE|O_EXCL — exactly one
//     process can create the file, so exactly one mutator is inside
//  2. re-read the manifest under the lock and check the transition is
//     still legal (the queued job is still queued, the lease really is
//     expired, the caller's fencing token is still current)
//  3. commit via the existing temp+fsync+rename primitive
//  4. release the lock by removing it
//
// A process that crashes between 1 and 4 leaves a stale lock; claimers
// break locks older than Store.lockStale (default 30s — mutations hold
// the lock for microseconds), so a crash stalls a job briefly instead
// of wedging it forever.
//
// Fencing: every successful claim increments the manifest's Fence.
// RenewLease, UpdateClaimed, and ReleaseJob all verify (node, fence)
// under the lock before writing, so a node whose lease was stolen gets
// ErrFenced instead of silently clobbering the new owner's state — the
// stale writer becomes a no-op. The one write the fence does not gate
// is spool content (results, block checkpoints), and it does not need
// to: jobs are deterministic, so a stale owner racing the new one
// writes byte-identical files through unique temp names.
package store

import (
	"errors"
	"fmt"
	"os"
	"path"
	"time"
)

// Claim-path errors. Callers branch on these: ErrNotClaimable means
// "someone else holds it, move on", ErrFenced means "you lost the
// lease, stop writing".
var (
	// ErrNotClaimable means the job is not in a claimable state: it is
	// terminal, or another node holds an unexpired lease on it.
	ErrNotClaimable = errors.New("store: job not claimable")
	// ErrFenced means the caller's fencing token is no longer current —
	// its lease expired and another node claimed the job. The caller
	// must treat the job as no longer its own and discard local writes.
	ErrFenced = errors.New("store: lease lost to a newer claim")
	// ErrLockBusy means the per-job mutation lock stayed contended past
	// the acquisition deadline. Transient; callers may retry.
	ErrLockBusy = errors.New("store: job mutation lock busy")
)

// lockAcquireTimeout bounds how long a mutation waits for the per-job
// lock before giving up with ErrLockBusy. Lock holds are microseconds;
// hitting this means something is deeply wrong (or a stale lock is
// waiting out lockStale).
const lockAcquireTimeout = 10 * time.Second

// lockJob acquires the per-job mutation lock, returning the unlock
// function. The lock is a file created with O_EXCL — the one primitive
// that arbitrates between processes sharing the directory. Stale locks
// (older than lockStale, i.e. abandoned by a crash) are broken.
func (s *Store) lockJob(id string) (func(), error) {
	rel := path.Join(jobRel(id), "manifest.lock")
	deadline := time.Now().Add(lockAcquireTimeout)
	for {
		err := s.be.TryLock(rel)
		if err == nil {
			return func() { _ = s.be.Remove(rel) }, nil
		}
		if !errors.Is(err, os.ErrExist) {
			// Typically ENOENT: the job directory was reaped while we
			// were trying — surface that as the job being gone.
			return nil, fmt.Errorf("store: locking job %s: %w", id, err)
		}
		if _, mt, serr := s.be.Stat(rel); serr == nil && time.Since(mt) > s.lockStale {
			// Abandoned by a crashed process. Removal may race another
			// breaker; whoever's TryLock wins next loop is the single
			// winner either way.
			_ = s.be.Remove(rel)
			continue
		}
		if time.Now().After(deadline) {
			return nil, ErrLockBusy
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// mutate applies fn to the job's manifest as one locked
// read-modify-write. fn sees the freshest committed manifest; if it
// returns an error nothing is written. The committed manifest is
// returned on success.
func (s *Store) mutate(id string, fn func(*Manifest) error) (*Manifest, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	unlock, err := s.lockJob(id)
	if err != nil {
		return nil, err
	}
	defer unlock()
	b, err := s.be.ReadFile(path.Join(jobRel(id), "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	m, err := DecodeManifest(b)
	if err != nil {
		return nil, err
	}
	if err := fn(m); err != nil {
		return nil, err
	}
	out, err := EncodeManifest(m)
	if err != nil {
		return nil, err
	}
	if err := s.be.WriteAtomic(path.Join(jobRel(id), "manifest.json"), out); err != nil {
		return nil, err
	}
	return m, nil
}

// checkOwner verifies the caller still holds the job's lease. Called
// under the mutation lock, so the check and the subsequent write are
// one atomic step.
func checkOwner(m *Manifest, node string, fence uint64) error {
	if m.Claim == nil || m.Claim.Node != node || m.Fence != fence {
		return fmt.Errorf("%w (job %s: holder %s fence %d, caller %s fence %d)",
			ErrFenced, m.ID, claimNode(m), m.Fence, node, fence)
	}
	return nil
}

// claimNode names the current lease holder, for error text.
func claimNode(m *Manifest) string {
	if m.Claim == nil {
		return "<none>"
	}
	return m.Claim.Node
}

// ClaimJob atomically claims a job for node: a queued job, or a running
// job whose lease has expired (crash-failover steal) or was never
// leased (an orphan from a pre-cluster crash). On success the manifest
// is running, fenced one higher than before, and leased to node until
// now+ttl; stolen reports whether the claim displaced a previous
// holder. Any other state returns ErrNotClaimable.
func (s *Store) ClaimJob(id, node string, ttl time.Duration, now time.Time) (m *Manifest, stolen bool, err error) {
	if err := ValidateNodeID(node); err != nil {
		return nil, false, err
	}
	if ttl <= 0 {
		return nil, false, fmt.Errorf("store: lease ttl %v, want > 0", ttl)
	}
	m, err = s.mutate(id, func(m *Manifest) error {
		switch {
		case m.State == StateQueued:
		case m.State == StateRunning && m.Claim == nil:
			stolen = true // orphaned mid-run by a crashed pre-cluster server
		case m.State == StateRunning && !now.Before(m.Claim.Expires):
			stolen = true
		default:
			return fmt.Errorf("%w (job %s: state %s, holder %s until %v)",
				ErrNotClaimable, m.ID, m.State, claimNode(m), claimExpiry(m))
		}
		m.State = StateRunning
		m.Fence++
		m.Claim = &Claim{Node: node, Expires: now.Add(ttl)}
		m.Node = node // survives the claim, so terminal status names its runner
		t := now
		m.StartedAt = &t
		m.FinishedAt = nil
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return m, stolen, nil
}

// claimExpiry is the holder's lease deadline, for error text.
func claimExpiry(m *Manifest) time.Time {
	if m.Claim == nil {
		return time.Time{}
	}
	return m.Claim.Expires
}

// RenewLease extends the lease of a job the caller owns to now+ttl.
// It returns the committed manifest so the owner also observes
// cross-node signals riding on it (CancelRequested). ErrFenced if the
// lease was stolen.
func (s *Store) RenewLease(id, node string, fence uint64, ttl time.Duration, now time.Time) (*Manifest, error) {
	return s.mutate(id, func(m *Manifest) error {
		if err := checkOwner(m, node, fence); err != nil {
			return err
		}
		m.Claim.Expires = now.Add(ttl)
		return nil
	})
}

// UpdateClaimed applies a fenced manifest mutation — how a lease holder
// persists a job transition (typically to a terminal state). fn runs
// only if the caller still owns the lease; if fn leaves the job in any
// non-running state the claim record is cleared (the lease dies with
// the run; the fence survives as a high-water mark).
func (s *Store) UpdateClaimed(id, node string, fence uint64, fn func(*Manifest) error) (*Manifest, error) {
	return s.mutate(id, func(m *Manifest) error {
		if err := checkOwner(m, node, fence); err != nil {
			return err
		}
		if err := fn(m); err != nil {
			return err
		}
		if m.State != StateRunning {
			m.Claim = nil
		}
		return nil
	})
}

// ReleaseJob returns a job the caller owns to the queue: state queued,
// claim cleared, start time reset — as if never claimed, except the
// fence keeps growing so writes issued under the released lease stay
// fenced off. Used when a node must give up work it cannot finish
// (graceful shutdown with jobs still running); any node, including the
// releaser, may claim the job again.
func (s *Store) ReleaseJob(id, node string, fence uint64) (*Manifest, error) {
	return s.mutate(id, func(m *Manifest) error {
		if err := checkOwner(m, node, fence); err != nil {
			return err
		}
		m.State = StateQueued
		m.Claim = nil
		m.Node = "" // back on the queue, the job is nobody's again
		m.StartedAt = nil
		return nil
	})
}

// RequestCancel asks for a job's cancellation from anywhere in the
// cluster. A queued job is cancelled on the spot (terminal, with
// reason); a running job gets CancelRequested set, which its lease
// holder observes at the next renewal and unwinds; a terminal job is
// untouched. The committed manifest is returned either way.
func (s *Store) RequestCancel(id, reason string, now time.Time) (*Manifest, error) {
	return s.mutate(id, func(m *Manifest) error {
		switch m.State {
		case StateQueued:
			m.State = StateCanceled
			m.Error = reason
			t := now
			m.FinishedAt = &t
			m.Claim = nil
		case StateRunning:
			m.CancelRequested = true
		}
		return nil
	})
}

// ReapTerminal removes a job's directory iff its manifest is terminal
// and it finished at or before cutoff. The check and the removal happen
// under the job's mutation lock, so a reap can never race a concurrent
// claim or recovery read into resurrecting (or half-deleting) the job:
// claimers serialized behind the lock find the directory gone and move
// on. Jobs that are absent, non-terminal, or too fresh report
// reaped=false with no error; an undecodable manifest is an error (the
// janitor should warn, not silently destroy evidence).
func (s *Store) ReapTerminal(id string, cutoff time.Time) (reaped bool, err error) {
	if err := ValidateID(id); err != nil {
		return false, err
	}
	unlock, err := s.lockJob(id)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil // already gone
		}
		return false, err
	}
	defer unlock()
	b, err := s.be.ReadFile(path.Join(jobRel(id), "manifest.json"))
	if err != nil {
		if notExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("store: %w", err)
	}
	m, err := DecodeManifest(b)
	if err != nil {
		return false, err
	}
	if !m.Terminal() || m.FinishedAt == nil || m.FinishedAt.After(cutoff) {
		return false, nil
	}
	// RemoveAll takes the lock file with the directory; the deferred
	// unlock's Remove then fails with ENOENT, which it ignores. Any
	// mutator waiting on the lock next sees ENOENT from its O_EXCL
	// create and reports the job gone.
	if err := s.be.RemoveAll(jobRel(id)); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	return true, nil
}
