package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kanon/internal/stream"
)

// testManifest builds a minimal valid manifest; tests mutate what they
// need to break.
func testManifest(id string) *Manifest {
	return &Manifest{
		ID:          id,
		State:       StateQueued,
		K:           3,
		Algo:        "ball",
		Rows:        10,
		Cols:        2,
		SubmittedAt: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
	}
}

func TestManifestRoundTrip(t *testing.T) {
	cost := 7
	started := time.Date(2026, 1, 2, 3, 4, 6, 0, time.UTC)
	finished := started.Add(time.Second)
	m := testManifest("job-1")
	m.State = StateSucceeded
	m.Workers = 4
	m.BlockRows = 128
	m.Refine = true
	m.Seed = -9
	m.TimeoutMS = 30000
	m.Cost = &cost
	m.StartedAt = &started
	m.FinishedAt = &finished

	b, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(b), "\n") {
		t.Error("encoded manifest missing trailing newline")
	}
	got, err := DecodeManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != ManifestVersion {
		t.Errorf("version = %q", got.Version)
	}
	if got.ID != m.ID || got.State != m.State || got.K != m.K || got.Algo != m.Algo ||
		got.Workers != m.Workers || got.BlockRows != m.BlockRows || !got.Refine ||
		got.Seed != m.Seed || got.TimeoutMS != m.TimeoutMS ||
		got.Rows != m.Rows || got.Cols != m.Cols {
		t.Errorf("round trip changed fields: %+v", got)
	}
	if got.Cost == nil || *got.Cost != cost {
		t.Errorf("cost = %v", got.Cost)
	}
	if !got.SubmittedAt.Equal(m.SubmittedAt) || got.StartedAt == nil || !got.StartedAt.Equal(started) ||
		got.FinishedAt == nil || !got.FinishedAt.Equal(finished) {
		t.Errorf("timestamps changed: %+v", got)
	}
}

func TestManifestStates(t *testing.T) {
	for state, want := range map[string]struct{ rec, term bool }{
		StateQueued:    {true, false},
		StateRunning:   {true, false},
		StateSucceeded: {false, true},
		StateFailed:    {false, true},
		StateCanceled:  {false, true},
	} {
		m := testManifest("j")
		m.State = state
		if m.Recoverable() != want.rec {
			t.Errorf("%s: Recoverable = %v", state, m.Recoverable())
		}
		if m.Terminal() != want.term {
			t.Errorf("%s: Terminal = %v", state, m.Terminal())
		}
	}
}

func TestDecodeManifestRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"unknown state", func(m *Manifest) { m.State = "paused" }},
		{"zero k", func(m *Manifest) { m.K = 0 }},
		{"rows below k", func(m *Manifest) { m.Rows = 2 }},
		{"zero cols", func(m *Manifest) { m.Cols = 0 }},
		{"empty algo", func(m *Manifest) { m.Algo = "" }},
		{"negative workers", func(m *Manifest) { m.Workers = -1 }},
		{"negative block", func(m *Manifest) { m.BlockRows = -1 }},
		{"negative timeout", func(m *Manifest) { m.TimeoutMS = -1 }},
		{"zero submitted", func(m *Manifest) { m.SubmittedAt = time.Time{} }},
		{"traversal id", func(m *Manifest) { m.ID = "../evil" }},
	}
	for _, tc := range cases {
		m := testManifest("ok-job")
		tc.mutate(m)
		// Encode skips validation only if we bypass it, so build the bytes
		// from a valid manifest and patch the struct before re-encoding by
		// hand via DecodeManifest on hand-rolled JSON is overkill; the
		// encoder itself must refuse.
		if _, err := EncodeManifest(m); err == nil {
			t.Errorf("%s: EncodeManifest accepted %+v", tc.name, m)
		}
	}
	if _, err := DecodeManifest([]byte(`{"version":"kanon-job/9","id":"a","state":"queued","k":2,"algo":"ball","rows":5,"cols":1,"submitted_at":"2026-01-02T03:04:05Z"}`)); err == nil {
		t.Error("accepted foreign manifest version")
	}
	if _, err := DecodeManifest([]byte(`{"version":"kanon-job/1"`)); err == nil {
		t.Error("accepted torn JSON")
	}
	if _, err := DecodeManifest(nil); err == nil {
		t.Error("accepted empty bytes")
	}
}

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"a", "A9", "job-1", "r_2.csv", "x" + strings.Repeat("0", 63)} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("rejected %q: %v", ok, err)
		}
	}
	for _, bad := range []string{
		"", "-lead", "_lead", ".hidden", "..", "a/b", `a\b`, "a b",
		"a\x00b", "ü", "x" + strings.Repeat("0", 64),
	} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("accepted empty data directory")
	}
}

func TestJobLifecycleOnDisk(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	header := []string{"age", "zip"}
	rows := [][]string{{"34", "15213"}, {"36", "15213"}, {"34", "*"}}
	m := testManifest("job-a")
	m.Rows, m.Cols, m.K = len(rows), len(header), 2
	if err := s.CreateJob(m, header, rows); err != nil {
		t.Fatal(err)
	}

	h2, r2, err := s.ReadRequest("job-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(h2) != 2 || h2[0] != "age" || len(r2) != 3 || r2[2][1] != "*" {
		t.Errorf("request round trip: %v %v", h2, r2)
	}

	got, err := s.ReadManifest("job-a")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateQueued {
		t.Errorf("state = %q", got.State)
	}

	// Transition commit: the manifest file is replaced atomically.
	m.State = StateRunning
	if err := s.WriteManifest(m); err != nil {
		t.Fatal(err)
	}
	if got, err = s.ReadManifest("job-a"); err != nil || got.State != StateRunning {
		t.Fatalf("after transition: %+v, %v", got, err)
	}

	if err := s.WriteResult("job-a", header, rows); err != nil {
		t.Fatal(err)
	}
	if _, r3, err := s.ReadResult("job-a"); err != nil || len(r3) != 3 {
		t.Fatalf("result round trip: %v, %v", r3, err)
	}

	// No temp files may survive a completed write.
	matches, err := filepath.Glob(filepath.Join(s.Dir(), "jobs", "job-a", "*.tmp"))
	if err != nil || len(matches) != 0 {
		t.Errorf("stray temp files: %v (%v)", matches, err)
	}

	if err := s.Delete("job-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadManifest("job-a"); err == nil {
		t.Error("manifest readable after Delete")
	}
	if err := s.Delete("job-a"); err != nil {
		t.Errorf("second Delete not a no-op: %v", err)
	}
}

func TestReadRejectsBadID(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadManifest("../../etc/passwd"); err == nil {
		t.Error("ReadManifest accepted traversal id")
	}
	if _, _, err := s.ReadRequest("a/b"); err == nil {
		t.Error("ReadRequest accepted traversal id")
	}
	if err := s.WriteResult("", nil, nil); err == nil {
		t.Error("WriteResult accepted empty id")
	}
	if err := s.Delete(".."); err == nil {
		t.Error("Delete accepted traversal id")
	}
	if _, err := s.Checkpoint("a/b", nil); err == nil {
		t.Error("Checkpoint accepted traversal id")
	}
}

func TestJobsScanOrderAndSkips(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	mk := func(id string, at time.Time) {
		m := testManifest(id)
		m.SubmittedAt = at
		if err := s.CreateJob(m, []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}, {"4"}, {"5"}, {"6"}, {"7"}, {"8"}, {"9"}, {"10"}}); err != nil {
			t.Fatal(err)
		}
	}
	mk("late", base.Add(time.Hour))
	mk("early", base)
	mk("tie-b", base.Add(time.Minute))
	mk("tie-a", base.Add(time.Minute))

	// Corruptions the scan must skip without hiding the rest: a torn
	// manifest, a directory with no manifest, a stray file, and a
	// directory whose manifest claims a different ID.
	jobs := filepath.Join(s.Dir(), "jobs")
	if err := os.WriteFile(filepath.Join(jobs, "late", "manifest.json"), []byte(`{"version":"kanon-`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(jobs, "empty-dir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobs, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	liar := testManifest("other-id")
	lb, err := EncodeManifest(liar)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(jobs, "liar"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobs, "liar", "manifest.json"), lb, 0o644); err != nil {
		t.Fatal(err)
	}

	manifests, skipped, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, m := range manifests {
		ids = append(ids, m.ID)
	}
	if want := "early,tie-a,tie-b"; strings.Join(ids, ",") != want {
		t.Errorf("scan order %v, want %s", ids, want)
	}
	if len(skipped) != 4 {
		t.Errorf("skipped %v, want 4 entries", skipped)
	}
}

func TestCheckpointSaveLoadBlocks(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest("ckpt-job")
	if err := s.CreateJob(m, []string{"a", "b"}, [][]string{{"1", "2"}}); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Checkpoint("ckpt-job", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}

	if _, _, ok, err := ck.Load(0, 2); ok || err != nil {
		t.Fatalf("Load on empty sink: ok=%v err=%v", ok, err)
	}

	rows := [][]string{{"1", "*"}, {"3", "4"}}
	stat := stream.BlockStat{Lo: 0, Hi: 2, Cost: 1}
	if err := ck.Save(stat, rows); err != nil {
		t.Fatal(err)
	}
	got, gst, ok, err := ck.Load(0, 2)
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if gst.Lo != 0 || gst.Hi != 2 || gst.Cost != 1 {
		t.Errorf("stat = %+v", gst)
	}
	if len(got) != 2 || got[0][1] != "*" || got[1][0] != "3" {
		t.Errorf("rows = %v", got)
	}

	// A second block, then the in-order listing.
	if err := ck.Save(stream.BlockStat{Lo: 2, Hi: 5, Cost: 3}, [][]string{{"5", "6"}, {"7", "8"}, {"9", "0"}}); err != nil {
		t.Fatal(err)
	}
	stats, err := ck.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[0].Lo != 0 || stats[1].Lo != 2 {
		t.Errorf("Blocks = %+v", stats)
	}
}

func TestCheckpointLoadRejectsDamage(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest("dmg-job")
	if err := s.CreateJob(m, []string{"a", "b"}, [][]string{{"1", "2"}}); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Checkpoint("dmg-job", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(s.Dir(), "jobs", "dmg-job", "checkpoints")
	save := func() {
		t.Helper()
		if err := ck.Save(stream.BlockStat{Lo: 0, Hi: 2, Cost: 1}, [][]string{{"1", "2"}, {"3", "4"}}); err != nil {
			t.Fatal(err)
		}
	}

	// Torn write before the commit marker: CSV present, stat missing.
	save()
	if err := os.Remove(filepath.Join(dir, blockBase(0, 2)+".stat.json")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := ck.Load(0, 2); ok || err != nil {
		t.Fatalf("CSV without stat: ok=%v err=%v", ok, err)
	}

	// Stat present, rows missing.
	save()
	if err := os.Remove(filepath.Join(dir, blockBase(0, 2)+".csv")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := ck.Load(0, 2); ok || err != nil {
		t.Fatalf("stat without CSV: ok=%v err=%v", ok, err)
	}

	// Garbage stat JSON.
	save()
	if err := os.WriteFile(filepath.Join(dir, blockBase(0, 2)+".stat.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := ck.Load(0, 2); ok || err != nil {
		t.Fatalf("torn stat: ok=%v err=%v", ok, err)
	}

	// Stat whose range disagrees with its filename's block.
	save()
	if err := os.WriteFile(filepath.Join(dir, blockBase(0, 2)+".stat.json"), []byte(`{"Lo":5,"Hi":7,"Cost":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := ck.Load(0, 2); ok || err != nil {
		t.Fatalf("foreign stat range: ok=%v err=%v", ok, err)
	}

	// Header arity mismatch — the sink was built for another schema.
	save()
	ck2, err := s.Checkpoint("dmg-job", []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := ck2.Load(0, 2); ok || err != nil {
		t.Fatalf("schema mismatch: ok=%v err=%v", ok, err)
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	be, err := NewLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f.json")
	if err := be.WriteAtomic("f.json", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := be.WriteAtomic("f.json", []byte("two")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "two" {
		t.Fatalf("read %q, %v", b, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("directory has %d entries (%v)", len(entries), err)
	}
	// A missing parent directory fails cleanly, leaving nothing behind.
	if err := be.WriteAtomic("no-such/f", []byte("x")); err == nil {
		t.Error("write into missing directory succeeded")
	}
}
