package store

import (
	"bytes"
	"fmt"
	"path"
)

// Per-job observability artifacts: events.jsonl (the append-only
// lifecycle journal) and trace.json (the job's latest merged span
// snapshot). The store keeps both at the bytes level — obs owns the
// formats — and applies the same disk discipline as every other spool:
// writes go through writeFileAtomic (temp + fsync + rename), and
// journal appends serialize under the per-job mutation lock so a fenced
// old owner and the thief that replaced it cannot interleave a
// read-modify-write.

// AppendJournal appends one pre-encoded, newline-terminated journal
// line to the job's events.jsonl. The append is a locked
// read-modify-write of the whole spool: anything after the final
// newline (a torn tail from a crashed writer) is dropped before the new
// line lands, so the spool only ever grows by complete lines.
func (s *Store) AppendJournal(id string, line []byte) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	if len(line) == 0 || line[len(line)-1] != '\n' {
		return fmt.Errorf("store: journal line for job %s not newline-terminated", id)
	}
	unlock, err := s.lockJob(id)
	if err != nil {
		return err
	}
	defer unlock()
	rel := path.Join(jobRel(id), "events.jsonl")
	prev, err := s.be.ReadFile(rel)
	if err != nil && !notExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	if i := bytes.LastIndexByte(prev, '\n'); i != len(prev)-1 {
		prev = prev[:i+1] // drop the torn tail (i == -1 drops everything)
	}
	return s.be.WriteAtomic(rel, append(prev, line...))
}

// ReadJournal returns the job's raw events.jsonl bytes. A job with no
// journal yet reads as empty, not as an error — journaling is optional
// and older jobs have no spool.
func (s *Store) ReadJournal(id string) ([]byte, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	b, err := s.be.ReadFile(path.Join(jobRel(id), "events.jsonl"))
	if notExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return b, nil
}

// WriteTrace atomically replaces the job's persisted trace snapshot
// (trace.json). The server flushes at checkpoint commits and terminal
// transitions; last write wins, which is correct because each flush is
// a fuller view of the same timeline.
func (s *Store) WriteTrace(id string, data []byte) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	return s.be.WriteAtomic(path.Join(jobRel(id), "trace.json"), data)
}

// ReadTrace returns the job's persisted trace snapshot, nil if none has
// been flushed yet.
func (s *Store) ReadTrace(id string) ([]byte, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	b, err := s.be.ReadFile(path.Join(jobRel(id), "trace.json"))
	if notExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return b, nil
}
