// Manifest merging: the convergence rule of the replicated backend.
//
// Every node holds a full local copy of every job; the pull loop
// (replicated.go) repeatedly confronts a local manifest with a peer's
// copy of the same job and must pick one — deterministically, so all
// nodes settle on the same record no matter the order peers are
// polled. The order below is total:
//
//  1. A terminal record beats a non-terminal one. A job that finished
//     anywhere finished everywhere; in particular a stale steal racing
//     a completed run cannot resurrect the job (the thief's renewal
//     fences out at its next write).
//  2. Otherwise the higher fencing token wins — every claim, including
//     a steal, increments it, so the fence is the authoritative "who
//     acted last" clock the manifests already carry.
//  3. Equal fences, one running: running beats queued (the claim is
//     newer information than the queue state it came from).
//  4. Equal fences, both running, same claim node: the later lease
//     deadline wins, so renewals propagate — without this, every
//     renewal would look like a no-op to peers and survivors would
//     steal from live nodes.
//  5. Equal fences, both running, different claim nodes — two nodes
//     claimed independently inside one replication interval. The
//     lexically smaller node ID wins on every node, the loser sees
//     itself fenced at its next renewal and abandons; the duplicated
//     partial work is harmless because jobs are deterministic.
//
// CancelRequested is OR-merged onto the winner (unless it is already
// terminal): a cancellation observed anywhere must reach the lease
// holder regardless of which record wins.
package store

// mergeManifests resolves local and remote copies of one job into the
// record both sides should converge on. It never mutates its inputs;
// on a full tie the local copy wins (no write, no churn).
func mergeManifests(local, remote *Manifest) *Manifest {
	winner := pickManifest(local, remote)
	merged := *winner
	if merged.Claim != nil {
		c := *merged.Claim
		merged.Claim = &c
	}
	if !merged.Terminal() && (local.CancelRequested || remote.CancelRequested) {
		merged.CancelRequested = true
	}
	return &merged
}

// pickManifest applies rules 1–5 above; local is preferred on ties.
func pickManifest(local, remote *Manifest) *Manifest {
	lt, rt := local.Terminal(), remote.Terminal()
	switch {
	case lt && !rt:
		return local
	case rt && !lt:
		return remote
	case lt && rt:
		if remote.Fence > local.Fence {
			return remote
		}
		return local
	}
	if local.Fence != remote.Fence {
		if remote.Fence > local.Fence {
			return remote
		}
		return local
	}
	lr, rr := local.State == StateRunning, remote.State == StateRunning
	switch {
	case lr && !rr:
		return local
	case rr && !lr:
		return remote
	case !lr && !rr:
		return local
	}
	ln, rn := claimNode(local), claimNode(remote)
	if ln == rn {
		if local.Claim != nil && remote.Claim != nil &&
			remote.Claim.Expires.After(local.Claim.Expires) {
			return remote
		}
		return local
	}
	if rn < ln {
		return remote
	}
	return local
}
