package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openClaimStore opens a store with a job already persisted queued.
func openClaimStore(t *testing.T, ids ...string) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := s.CreateJob(testManifest(id), []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}, {"5", "6"}}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestClaimLifecycle(t *testing.T) {
	s := openClaimStore(t, "job-1")
	now := time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC)
	ttl := time.Minute

	m, stolen, err := s.ClaimJob("job-1", "node-a", ttl, now)
	if err != nil {
		t.Fatal(err)
	}
	if stolen {
		t.Error("claiming a queued job reported stolen")
	}
	if m.State != StateRunning || m.Fence != 1 || m.Claim == nil ||
		m.Claim.Node != "node-a" || !m.Claim.Expires.Equal(now.Add(ttl)) {
		t.Fatalf("claimed manifest wrong: %+v claim %+v", m, m.Claim)
	}
	if m.StartedAt == nil || !m.StartedAt.Equal(now) {
		t.Errorf("claim did not stamp StartedAt: %v", m.StartedAt)
	}

	// A live lease blocks other claimers.
	if _, _, err := s.ClaimJob("job-1", "node-b", ttl, now.Add(time.Second)); !errors.Is(err, ErrNotClaimable) {
		t.Fatalf("second claim under a live lease: err = %v, want ErrNotClaimable", err)
	}

	// The owner renews; the deadline moves.
	m, err = s.RenewLease("job-1", "node-a", 1, ttl, now.Add(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Claim.Expires.Equal(now.Add(90 * time.Second)) {
		t.Errorf("renew deadline = %v", m.Claim.Expires)
	}

	// The owner finishes; the claim clears, the fence survives.
	cost := 2
	m, err = s.UpdateClaimed("job-1", "node-a", 1, func(m *Manifest) error {
		m.State = StateSucceeded
		m.Cost = &cost
		fin := now.Add(time.Minute)
		m.FinishedAt = &fin
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.State != StateSucceeded || m.Claim != nil || m.Fence != 1 {
		t.Fatalf("terminal manifest wrong: %+v", m)
	}

	// Terminal jobs are not claimable.
	if _, _, err := s.ClaimJob("job-1", "node-b", ttl, now.Add(2*time.Minute)); !errors.Is(err, ErrNotClaimable) {
		t.Fatalf("claim of terminal job: err = %v, want ErrNotClaimable", err)
	}
}

func TestClaimStealAfterExpiryFencesOldOwner(t *testing.T) {
	s := openClaimStore(t, "job-1")
	now := time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC)

	if _, _, err := s.ClaimJob("job-1", "node-a", time.Second, now); err != nil {
		t.Fatal(err)
	}
	// Before expiry: not stealable.
	if _, _, err := s.ClaimJob("job-1", "node-b", time.Second, now.Add(500*time.Millisecond)); !errors.Is(err, ErrNotClaimable) {
		t.Fatalf("pre-expiry steal: err = %v", err)
	}
	// At/after expiry: stolen, fence bumps.
	m, stolen, err := s.ClaimJob("job-1", "node-b", time.Minute, now.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !stolen || m.Fence != 2 || m.Claim.Node != "node-b" {
		t.Fatalf("steal wrong: stolen=%v %+v claim %+v", stolen, m, m.Claim)
	}

	// Every write path of the displaced owner is a fenced no-op.
	if _, err := s.RenewLease("job-1", "node-a", 1, time.Minute, now.Add(2*time.Second)); !errors.Is(err, ErrFenced) {
		t.Errorf("stale renew: err = %v, want ErrFenced", err)
	}
	if _, err := s.UpdateClaimed("job-1", "node-a", 1, func(m *Manifest) error {
		m.State = StateFailed
		return nil
	}); !errors.Is(err, ErrFenced) {
		t.Errorf("stale update: err = %v, want ErrFenced", err)
	}
	if _, err := s.ReleaseJob("job-1", "node-a", 1); !errors.Is(err, ErrFenced) {
		t.Errorf("stale release: err = %v, want ErrFenced", err)
	}
	// None of those touched the new owner's claim.
	m2, err := s.ReadManifest("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if m2.State != StateRunning || m2.Fence != 2 || m2.Claim == nil || m2.Claim.Node != "node-b" {
		t.Fatalf("stale writers changed the manifest: %+v claim %+v", m2, m2.Claim)
	}
}

func TestClaimOrphanedRunningJob(t *testing.T) {
	// A running manifest without a claim is an orphan from a pre-cluster
	// crash; it is immediately claimable and reported as stolen.
	s := openClaimStore(t)
	m := testManifest("job-1")
	m.State = StateRunning
	if err := s.CreateJob(m, []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
		t.Fatal(err)
	}
	got, stolen, err := s.ClaimJob("job-1", "node-a", time.Minute, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !stolen || got.Fence != 1 {
		t.Fatalf("orphan claim: stolen=%v fence=%d", stolen, got.Fence)
	}
}

func TestReleaseMakesJobReclaimable(t *testing.T) {
	s := openClaimStore(t, "job-1")
	now := time.Now()
	if _, _, err := s.ClaimJob("job-1", "node-a", time.Minute, now); err != nil {
		t.Fatal(err)
	}
	m, err := s.ReleaseJob("job-1", "node-a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.State != StateQueued || m.Claim != nil || m.StartedAt != nil || m.Fence != 1 {
		t.Fatalf("released manifest wrong: %+v", m)
	}
	m, stolen, err := s.ClaimJob("job-1", "node-b", time.Minute, now)
	if err != nil {
		t.Fatal(err)
	}
	if stolen || m.Fence != 2 || m.Claim.Node != "node-b" {
		t.Fatalf("re-claim after release: stolen=%v %+v", stolen, m)
	}
}

func TestRequestCancel(t *testing.T) {
	now := time.Now()
	s := openClaimStore(t, "queued-1", "running-1")

	m, err := s.RequestCancel("queued-1", "context canceled", now)
	if err != nil {
		t.Fatal(err)
	}
	if m.State != StateCanceled || m.Error != "context canceled" || m.FinishedAt == nil {
		t.Fatalf("queued cancel: %+v", m)
	}

	if _, _, err := s.ClaimJob("running-1", "node-a", time.Minute, now); err != nil {
		t.Fatal(err)
	}
	m, err = s.RequestCancel("running-1", "context canceled", now)
	if err != nil {
		t.Fatal(err)
	}
	if m.State != StateRunning || !m.CancelRequested {
		t.Fatalf("running cancel: %+v", m)
	}
	// The owner sees the flag ride back on its next renewal.
	m, err = s.RenewLease("running-1", "node-a", 1, time.Minute, now)
	if err != nil {
		t.Fatal(err)
	}
	if !m.CancelRequested {
		t.Error("renewal did not surface CancelRequested")
	}

	// Cancelling a terminal job is a no-op.
	if _, err := s.UpdateClaimed("running-1", "node-a", 1, func(m *Manifest) error {
		m.State = StateCanceled
		m.Error = "context canceled"
		fin := now
		m.FinishedAt = &fin
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	m, err = s.RequestCancel("running-1", "again", now)
	if err != nil {
		t.Fatal(err)
	}
	if m.State != StateCanceled || m.Error != "context canceled" {
		t.Fatalf("terminal cancel mutated the job: %+v", m)
	}
}

func TestReapTerminalOnlyReapsExpiredTerminal(t *testing.T) {
	now := time.Now()
	s := openClaimStore(t, "job-1")

	// Queued: not reapable — and, critically, still claimable after the
	// refused reap (the lease-before-reap fix: reap and claim serialize
	// on the same lock, so neither can half-win).
	if reaped, err := s.ReapTerminal("job-1", now); err != nil || reaped {
		t.Fatalf("reap of queued job: reaped=%v err=%v", reaped, err)
	}
	if _, _, err := s.ClaimJob("job-1", "node-a", time.Minute, now); err != nil {
		t.Fatal(err)
	}
	if reaped, err := s.ReapTerminal("job-1", now); err != nil || reaped {
		t.Fatalf("reap of running job: reaped=%v err=%v", reaped, err)
	}

	fin := now.Add(-time.Hour)
	if _, err := s.UpdateClaimed("job-1", "node-a", 1, func(m *Manifest) error {
		m.State = StateSucceeded
		m.FinishedAt = &fin
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Finished an hour ago; cutoff before that → too fresh.
	if reaped, err := s.ReapTerminal("job-1", now.Add(-2*time.Hour)); err != nil || reaped {
		t.Fatalf("reap before cutoff: reaped=%v err=%v", reaped, err)
	}
	if reaped, err := s.ReapTerminal("job-1", now); err != nil || !reaped {
		t.Fatalf("reap of expired terminal: reaped=%v err=%v", reaped, err)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "jobs", "job-1")); !os.IsNotExist(err) {
		t.Fatalf("job directory survived the reap: %v", err)
	}
	// Idempotent, and the gone job is cleanly unclaimable.
	if reaped, err := s.ReapTerminal("job-1", now); err != nil || reaped {
		t.Fatalf("second reap: reaped=%v err=%v", reaped, err)
	}
	if _, _, err := s.ClaimJob("job-1", "node-a", time.Minute, now); err == nil {
		t.Fatal("claim of reaped job succeeded")
	}
}

func TestStaleLockBroken(t *testing.T) {
	s := openClaimStore(t, "job-1")
	s.SetLockStale(50 * time.Millisecond)
	lock := filepath.Join(s.Dir(), "jobs", "job-1", "manifest.lock")
	if err := os.WriteFile(lock, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	// The abandoned lock is broken and the claim goes through.
	if _, _, err := s.ClaimJob("job-1", "node-a", time.Minute, time.Now()); err != nil {
		t.Fatalf("claim under stale lock: %v", err)
	}
}

// TestConcurrentClaimProperty is the cluster-safety property test: N
// goroutine "nodes" hammer ClaimJob over a batch of queued jobs through
// independent Store handles (as cross-process as a unit test gets).
// Exactly one node wins each job, the losers' fenced writes are
// no-ops, and a released job is claimable again — by exactly one node.
func TestConcurrentClaimProperty(t *testing.T) {
	const nodes, jobs = 8, 16
	dir := t.TempDir()
	seed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, jobs)
	for i := range ids {
		ids[i] = fmt.Sprintf("job-%03d", i)
		if err := seed.CreateJob(testManifest(ids[i]), []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
			t.Fatal(err)
		}
	}

	type win struct {
		node  int
		fence uint64
	}
	wins := make([][]win, jobs) // per job, appended under mu
	var mu sync.Mutex
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			s, err := Open(dir) // each "node" gets its own handle
			if err != nil {
				t.Error(err)
				return
			}
			node := fmt.Sprintf("node-%d", n)
			for i, id := range ids {
				m, _, err := s.ClaimJob(id, node, time.Hour, time.Now())
				switch {
				case err == nil:
					mu.Lock()
					wins[i] = append(wins[i], win{node: n, fence: m.Fence})
					mu.Unlock()
				case errors.Is(err, ErrNotClaimable):
					// Lost the race: every fenced write must bounce. A
					// loser guesses the winner's fence correctly (1) but
					// still must not pass, because the node differs.
					if _, rerr := s.RenewLease(id, node, 1, time.Hour, time.Now()); !errors.Is(rerr, ErrFenced) {
						t.Errorf("loser %s renew on %s: err = %v, want ErrFenced", node, id, rerr)
					}
					if _, uerr := s.UpdateClaimed(id, node, 1, func(m *Manifest) error {
						m.State = StateFailed
						return nil
					}); !errors.Is(uerr, ErrFenced) {
						t.Errorf("loser %s update on %s: err = %v, want ErrFenced", node, id, uerr)
					}
				default:
					t.Errorf("claim %s by %s: unexpected error %v", id, node, err)
				}
			}
		}(n)
	}
	wg.Wait()

	for i, w := range wins {
		if len(w) != 1 {
			t.Fatalf("job %s won by %d nodes (%v), want exactly 1", ids[i], len(w), w)
		}
		if w[0].fence != 1 {
			t.Errorf("job %s first claim fence = %d, want 1", ids[i], w[0].fence)
		}
		m, err := seed.ReadManifest(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if m.State != StateRunning || m.Claim == nil || m.Claim.Node != fmt.Sprintf("node-%d", w[0].node) {
			t.Fatalf("job %s manifest disagrees with the recorded winner %d: %+v claim %+v",
				ids[i], w[0].node, m, m.Claim)
		}
	}

	// Round two: every winner releases, the pack re-claims. Again one
	// winner per job, now at fence 2.
	for i, w := range wins {
		if _, err := seed.ReleaseJob(ids[i], fmt.Sprintf("node-%d", w[0].node), 1); err != nil {
			t.Fatal(err)
		}
	}
	var reclaims [jobs]int64
	var rmu sync.Mutex
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			s, _ := Open(dir)
			node := fmt.Sprintf("node-%d", n)
			for i, id := range ids {
				if m, _, err := s.ClaimJob(id, node, time.Hour, time.Now()); err == nil {
					if m.Fence != 2 {
						t.Errorf("re-claim of %s fence = %d, want 2", id, m.Fence)
					}
					rmu.Lock()
					reclaims[i]++
					rmu.Unlock()
				}
			}
		}(n)
	}
	wg.Wait()
	for i, c := range reclaims {
		if c != 1 {
			t.Errorf("released job %s re-claimed %d times, want 1", ids[i], c)
		}
	}
}

// TestReapClaimRace drives the recovery-vs-janitor race the lock
// closes: goroutines repeatedly try to claim a terminal-but-expired job
// while another reaps it. The job must end exactly one way — reaped —
// and no claim may succeed after the reap reports done.
func TestReapClaimRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := openClaimStore(t, "job-1")
		now := time.Now()
		if _, _, err := s.ClaimJob("job-1", "node-a", time.Minute, now); err != nil {
			t.Fatal(err)
		}
		fin := now.Add(-time.Hour)
		if _, err := s.UpdateClaimed("job-1", "node-a", 1, func(m *Manifest) error {
			m.State = StateFailed
			m.Error = "x"
			m.FinishedAt = &fin
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		claimed := make(chan struct{}, 4)
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				h, _ := Open(s.Dir())
				if _, _, err := h.ClaimJob("job-1", "node-b", time.Minute, time.Now()); err == nil {
					claimed <- struct{}{}
				}
			}()
		}
		wg.Add(1)
		var reaped bool
		go func() {
			defer wg.Done()
			h, _ := Open(s.Dir())
			r, err := h.ReapTerminal("job-1", now)
			if err != nil {
				t.Error(err)
			}
			reaped = r
		}()
		wg.Wait()
		close(claimed)
		// Terminal jobs are never claimable, so no claimer may have won,
		// and the reap must have gone through.
		if n := len(claimed); n != 0 {
			t.Fatalf("round %d: %d claims of a terminal job succeeded", round, n)
		}
		if !reaped {
			t.Fatalf("round %d: reap did not happen", round)
		}
	}
}

// TestClaimOpsOnMissingOrInvalidJobs: every claim-path operation fails
// cleanly — no panic, no directory creation — on IDs that are unsafe or
// simply not there.
func TestClaimOpsOnMissingOrInvalidJobs(t *testing.T) {
	s := openClaimStore(t)
	now := time.Now()
	if _, _, err := s.ClaimJob("ghost", "node-a", time.Minute, now); err == nil {
		t.Error("claim of missing job succeeded")
	}
	if _, err := s.RenewLease("ghost", "node-a", 1, time.Minute, now); err == nil {
		t.Error("renew of missing job succeeded")
	}
	if _, err := s.ReleaseJob("ghost", "node-a", 1); err == nil {
		t.Error("release of missing job succeeded")
	}
	if _, err := s.RequestCancel("ghost", "bye", now); err == nil {
		t.Error("cancel of missing job succeeded")
	}
	if _, _, err := s.ClaimJob("../evil", "node-a", time.Minute, now); err == nil {
		t.Error("claim of traversal id succeeded")
	}
	if _, _, err := s.ClaimJob("job", "../evil", time.Minute, now); err == nil {
		t.Error("claim under traversal node id succeeded")
	}
	if _, _, err := s.ClaimJob("job", "node-a", 0, now); err == nil {
		t.Error("claim with zero ttl succeeded")
	}
	if _, err := s.ReapTerminal("../evil", now); err == nil {
		t.Error("reap of traversal id succeeded")
	}
	if reaped, err := s.ReapTerminal("ghost", now); err != nil || reaped {
		t.Errorf("reap of missing job: reaped=%v err=%v", reaped, err)
	}
	if entries, err := os.ReadDir(filepath.Join(s.Dir(), "jobs")); err != nil || len(entries) != 0 {
		t.Errorf("claim ops left artifacts behind: %v %v", entries, err)
	}
}

// TestMutateRejectsCorruptManifest: a torn or foreign manifest stops
// the mutation instead of being overwritten with guessed content.
func TestMutateRejectsCorruptManifest(t *testing.T) {
	s := openClaimStore(t, "job-1")
	path := filepath.Join(s.Dir(), "jobs", "job-1", "manifest.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ClaimJob("job-1", "node-a", time.Minute, time.Now()); err == nil {
		t.Fatal("claim over corrupt manifest succeeded")
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "{not json" {
		t.Fatalf("corrupt manifest was rewritten: %q %v", b, err)
	}
}
