package store

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kanon/internal/stream"
)

// serveReplica exposes src's replication surface over HTTP the way
// internal/server does, so Replicated can be exercised against real
// request/response plumbing without a kanond process.
func serveReplica(t *testing.T, src *Store) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replica/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs, err := src.ReplicaJobs()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(jobs)
	})
	mux.HandleFunc("GET /v1/replica/jobs/{id}/file", func(w http.ResponseWriter, r *http.Request) {
		b, err := src.ReadJobFile(r.PathValue("id"), r.URL.Query().Get("name"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		_, _ = w.Write(b)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// openReplicatedAt mounts a replicated store pulling from the given
// peer servers.
func openReplicatedAt(t *testing.T, peers ...*httptest.Server) (*Store, *Replicated) {
	t.Helper()
	urls := make([]string, len(peers))
	for i, p := range peers {
		urls[i] = p.URL
	}
	st, repl, err := OpenReplicated(t.TempDir(), urls, ReplicateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return st, repl
}

func TestPickManifestOrder(t *testing.T) {
	at := func(sec int) *time.Time {
		ts := time.Date(2026, 1, 2, 3, 4, sec, 0, time.UTC)
		return &ts
	}
	mk := func(state string, fence uint64, node string, expSec int) *Manifest {
		m := testManifest("job-m")
		m.State = state
		m.Fence = fence
		if state == StateRunning {
			m.Claim = &Claim{Node: node, Expires: *at(expSec)}
		}
		if m.Terminal() {
			m.FinishedAt = at(1)
		}
		return m
	}
	cases := []struct {
		name          string
		local, remote *Manifest
		wantRemote    bool
	}{
		{"terminal beats running", mk(StateRunning, 5, "node-a", 10), mk(StateSucceeded, 3, "", 0), true},
		{"terminal beats queued locally", mk(StateFailed, 2, "", 0), mk(StateQueued, 9, "", 0), false},
		{"both terminal, higher fence wins", mk(StateSucceeded, 1, "", 0), mk(StateCanceled, 2, "", 0), true},
		{"both terminal, tie keeps local", mk(StateSucceeded, 2, "", 0), mk(StateFailed, 2, "", 0), false},
		{"higher fence wins", mk(StateQueued, 1, "", 0), mk(StateRunning, 2, "node-b", 10), true},
		{"equal fence, running beats queued", mk(StateQueued, 3, "", 0), mk(StateRunning, 3, "node-b", 10), true},
		{"equal fence, both queued keeps local", mk(StateQueued, 0, "", 0), mk(StateQueued, 0, "", 0), false},
		{"same claimant, later lease wins", mk(StateRunning, 3, "node-a", 10), mk(StateRunning, 3, "node-a", 20), true},
		{"same claimant, older lease loses", mk(StateRunning, 3, "node-a", 20), mk(StateRunning, 3, "node-a", 10), false},
		{"split claim, lexically smaller node wins", mk(StateRunning, 3, "node-b", 10), mk(StateRunning, 3, "node-a", 10), true},
		{"split claim, local already smaller", mk(StateRunning, 3, "node-a", 10), mk(StateRunning, 3, "node-b", 10), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := pickManifest(tc.local, tc.remote)
			want := tc.local
			if tc.wantRemote {
				want = tc.remote
			}
			if got != want {
				t.Errorf("picked %+v", got)
			}
		})
	}
}

func TestMergeManifestsCancelPropagates(t *testing.T) {
	local := testManifest("job-m")
	local.CancelRequested = true
	remote := testManifest("job-m")
	remote.State = StateRunning
	remote.Fence = 2
	remote.Claim = &Claim{Node: "node-b", Expires: time.Date(2026, 1, 2, 4, 0, 0, 0, time.UTC)}

	merged := mergeManifests(local, remote)
	if merged.State != StateRunning || !merged.CancelRequested {
		t.Fatalf("merged = %+v: remote must win but carry the local cancel", merged)
	}
	if remote.CancelRequested {
		t.Error("mergeManifests mutated its input")
	}
	if merged.Claim == remote.Claim {
		t.Error("merged manifest shares the remote's Claim pointer")
	}

	// A terminal winner stays terminal: no cancel resurrection.
	done := testManifest("job-m")
	done.State = StateSucceeded
	fin := time.Date(2026, 1, 2, 5, 0, 0, 0, time.UTC)
	done.FinishedAt = &fin
	done.Fence = 3
	if m := mergeManifests(local, done); m.CancelRequested {
		t.Errorf("terminal winner gained cancel_requested: %+v", m)
	}
}

func TestUnionJournal(t *testing.T) {
	local := []byte("a\nb\ntorn-loc")
	remote := []byte("b\nc\na\ntorn-rem")
	merged, changed := unionJournal(local, remote)
	if !changed {
		t.Fatal("union with new remote lines reported no change")
	}
	if got := string(merged); got != "a\nb\nc\n" {
		t.Fatalf("merged = %q: want local order, then unseen remote lines, torn tails dropped", got)
	}

	again, changed := unionJournal(merged, remote)
	if changed || string(again) != "a\nb\nc\n" {
		t.Fatalf("re-merge changed=%v %q: union must be idempotent", changed, again)
	}

	if m, changed := unionJournal(nil, []byte("x\ny\n")); !changed || string(m) != "x\ny\n" {
		t.Fatalf("empty local: %q", m)
	}
	if _, changed := unionJournal([]byte("x\n"), nil); changed {
		t.Fatal("empty remote reported a change")
	}
}

func TestValidateReplicaFile(t *testing.T) {
	for _, ok := range []string{"request.csv", "result.csv", "events.jsonl", "trace.json",
		"checkpoints/block-000000000-000000010.csv", "checkpoints/block-000000000-000000010.stat.json"} {
		if err := ValidateReplicaFile(ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"manifest.json", ".lock", "../request.csv",
		"checkpoints/../manifest.json", "checkpoints/evil", "checkpoints/block-a/b", ""} {
		if err := ValidateReplicaFile(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestValidateIdempotencyKey(t *testing.T) {
	for _, ok := range []string{"k", "client-key-1", "a1:b2.c3_d4", strings.Repeat("x", 128)} {
		if err := ValidateIdempotencyKey(ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"", "-leading", strings.Repeat("x", 129), "sp ace", "new\nline", "sla/sh"} {
		if err := ValidateIdempotencyKey(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestFindIdempotent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	early := testManifest("job-early")
	early.IdempotencyKey = "key-1"
	late := testManifest("job-late")
	late.IdempotencyKey = "key-1"
	late.SubmittedAt = early.SubmittedAt.Add(time.Hour)
	other := testManifest("job-other")
	for _, m := range []*Manifest{late, early, other} {
		if err := s.CreateJob(m, []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
			t.Fatal(err)
		}
	}

	got, err := s.FindIdempotent("key-1")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.ID != "job-early" {
		t.Fatalf("FindIdempotent = %+v, want the oldest binding job-early", got)
	}
	if got, err := s.FindIdempotent("key-none"); err != nil || got != nil {
		t.Fatalf("unknown key: %+v, %v", got, err)
	}
	if _, err := s.FindIdempotent("bad key"); err == nil {
		t.Error("invalid key accepted")
	}
}

func TestReplicaJobsAndReadJobFile(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateJob(testManifest("job-r"), []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendJournal("job-r", []byte(`{"ev":"admitted"}`+"\n")); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Checkpoint("job-r", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(stream.BlockStat{Lo: 0, Hi: 3, Cost: 1}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
		t.Fatal(err)
	}

	jobs, err := s.ReplicaJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Manifest.ID != "job-r" {
		t.Fatalf("jobs = %+v", jobs)
	}
	names := make(map[string]int64)
	for _, f := range jobs[0].Files {
		names[f.Name] = f.Size
	}
	for _, want := range []string{"request.csv", "events.jsonl",
		"checkpoints/block-000000000-000000003.csv", "checkpoints/block-000000000-000000003.stat.json"} {
		if names[want] <= 0 {
			t.Errorf("listing missing %s (files: %v)", want, names)
		}
	}
	if _, ok := names["manifest.json"]; ok {
		t.Error("manifest advertised as a pullable file")
	}

	if _, err := s.ReadJobFile("job-r", "manifest.json"); err == nil {
		t.Error("ReadJobFile served the manifest")
	}
	if b, err := s.ReadJobFile("job-r", "events.jsonl"); err != nil || !strings.Contains(string(b), "admitted") {
		t.Errorf("journal read: %q, %v", b, err)
	}
}

// TestSyncAdoptsJob: a never-seen job — spools, journal, checkpoint
// blocks — materializes byte-identically on the puller.
func TestSyncAdoptsJob(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CreateJob(testManifest("job-a"), []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
		t.Fatal(err)
	}
	if err := src.AppendJournal("job-a", []byte(`{"ev":"admitted"}`+"\n")); err != nil {
		t.Fatal(err)
	}
	if err := src.WriteResult("job-a", []string{"a"}, [][]string{{"*"}, {"*"}, {"*"}}); err != nil {
		t.Fatal(err)
	}
	ck, err := src.Checkpoint("job-a", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(stream.BlockStat{Lo: 0, Hi: 3, Cost: 2}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
		t.Fatal(err)
	}

	dst, repl := openReplicatedAt(t, serveReplica(t, src))
	if err := repl.SyncOnce(time.Now()); err != nil {
		t.Fatal(err)
	}

	m, err := dst.ReadManifest("job-a")
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != "job-a" || m.State != StateQueued {
		t.Fatalf("adopted manifest = %+v", m)
	}
	for _, name := range []string{"request.csv", "result.csv", "events.jsonl",
		"checkpoints/block-000000000-000000003.csv", "checkpoints/block-000000000-000000003.stat.json"} {
		want, err := src.ReadJobFile("job-a", name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dst.ReadJobFile("job-a", name)
		if err != nil {
			t.Fatalf("%s not adopted: %v", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s differs after adopt", name)
		}
	}
	// Idempotent: a second round writes nothing new and errors nothing.
	if err := repl.SyncOnce(time.Now()); err != nil {
		t.Fatal(err)
	}
}

// TestSyncMergesNewerFence: a claim taken on the peer (higher fence)
// overwrites the puller's stale queued record.
func TestSyncMergesNewerFence(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CreateJob(testManifest("job-f"), []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
		t.Fatal(err)
	}

	dst, repl := openReplicatedAt(t, serveReplica(t, src))
	if err := repl.SyncOnce(time.Now()); err != nil {
		t.Fatal(err)
	}

	// The peer claims the job after the first pull.
	if _, _, err := src.ClaimJob("job-f", "node-b", 15*time.Second, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := repl.SyncOnce(time.Now()); err != nil {
		t.Fatal(err)
	}
	m, err := dst.ReadManifest("job-f")
	if err != nil {
		t.Fatal(err)
	}
	if m.State != StateRunning || m.Fence != 1 || m.Claim == nil || m.Claim.Node != "node-b" {
		t.Fatalf("claim did not propagate: %+v", m)
	}

	// And a local terminal record must never be clobbered by the peer's
	// stale running copy.
	fin := time.Now().UTC()
	m.State = StateSucceeded
	m.Claim = nil
	m.FinishedAt = &fin
	if err := dst.WriteManifest(m); err != nil {
		t.Fatal(err)
	}
	if err := repl.SyncOnce(time.Now()); err != nil {
		t.Fatal(err)
	}
	if m2, _ := dst.ReadManifest("job-f"); m2 == nil || m2.State != StateSucceeded {
		t.Fatalf("stale remote running record resurrected the job: %+v", m2)
	}
}

// TestSyncSkipsOldTerminal: jobs that finished longer than the adopt
// grace ago stay with the janitor; pulling them back would churn
// against reaping.
func TestSyncSkipsOldTerminal(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	old := testManifest("job-old")
	old.State = StateSucceeded
	fin := time.Now().Add(-time.Hour)
	old.FinishedAt = &fin
	if err := src.CreateJob(old, []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
		t.Fatal(err)
	}
	fresh := testManifest("job-fresh")
	fresh.State = StateSucceeded
	fin2 := time.Now().Add(-time.Minute)
	fresh.FinishedAt = &fin2
	if err := src.CreateJob(fresh, []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
		t.Fatal(err)
	}

	dst, repl := openReplicatedAt(t, serveReplica(t, src))
	if err := repl.SyncOnce(time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ReadManifest("job-old"); err == nil {
		t.Error("job finished beyond the grace window was adopted")
	}
	if _, err := dst.ReadManifest("job-fresh"); err != nil {
		t.Errorf("recently finished job not adopted: %v", err)
	}
}

// TestSyncJournalUnion: lines appended on both sides converge to one
// journal holding every line exactly once.
func TestSyncJournalUnion(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CreateJob(testManifest("job-j"), []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
		t.Fatal(err)
	}
	if err := src.AppendJournal("job-j", []byte(`{"ev":"admitted","node":"src"}`+"\n")); err != nil {
		t.Fatal(err)
	}

	dst, repl := openReplicatedAt(t, serveReplica(t, src))
	if err := repl.SyncOnce(time.Now()); err != nil {
		t.Fatal(err)
	}
	// Both sides write after the adopt.
	if err := dst.AppendJournal("job-j", []byte(`{"ev":"claimed","node":"dst"}`+"\n")); err != nil {
		t.Fatal(err)
	}
	if err := src.AppendJournal("job-j", []byte(`{"ev":"claimed","node":"src"}`+"\n")); err != nil {
		t.Fatal(err)
	}
	if err := repl.SyncOnce(time.Now()); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ReadJournal("job-j")
	if err != nil {
		t.Fatal(err)
	}
	want := `{"ev":"admitted","node":"src"}` + "\n" +
		`{"ev":"claimed","node":"dst"}` + "\n" +
		`{"ev":"claimed","node":"src"}` + "\n"
	if string(got) != want {
		t.Fatalf("journal after union:\n%s\nwant:\n%s", got, want)
	}
}

// TestSyncSurvivesDeadPeer: an unreachable peer is an error from
// SyncOnce but leaves local state untouched — the loop just tries
// again next round.
func TestSyncSurvivesDeadPeer(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	st, repl, err := OpenReplicated(t.TempDir(), []string{dead.URL}, ReplicateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateJob(testManifest("job-l"), []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
		t.Fatal(err)
	}
	if err := repl.SyncOnce(time.Now()); err == nil {
		t.Error("dead peer produced no error")
	}
	if _, err := st.ReadManifest("job-l"); err != nil {
		t.Errorf("local job damaged by failed sync: %v", err)
	}
}

// TestStartStopSync: the background loop starts, pulls, and stops
// cleanly; StopSync without StartSync is a no-op.
func TestStartStopSync(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CreateJob(testManifest("job-bg"), []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}); err != nil {
		t.Fatal(err)
	}
	srv := serveReplica(t, src)
	dst, repl, err := OpenReplicated(t.TempDir(), []string{srv.URL}, ReplicateOptions{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	repl.StartSync()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := dst.ReadManifest("job-bg"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never adopted the job")
		}
		time.Sleep(10 * time.Millisecond)
	}
	repl.StopSync()
	repl.StopSync() // idempotent

	_, neverStarted, err := OpenReplicated(t.TempDir(), []string{srv.URL}, ReplicateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	neverStarted.StopSync() // must not hang
}
