package store

import (
	"encoding/json"
	"fmt"
	"time"
)

// ManifestVersion is the on-disk format tag every new job manifest
// carries. Version 2 added the idempotency key; version 1 manifests
// (from before the field existed) still decode — the key is simply
// absent — but anything else is rejected instead of guessed at, so a
// future format change cannot be misread as this one.
const (
	ManifestVersion       = "kanon-job/2"
	manifestVersionLegacy = "kanon-job/1"
)

// Job states as persisted in manifests. They mirror the server's
// lifecycle states textually; the store validates against this set but
// attaches no semantics beyond "queued and running jobs are recoverable,
// terminal jobs are reapable".
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateSucceeded = "succeeded"
	StateFailed    = "failed"
	StateCanceled  = "canceled"
)

// validStates is the closed set a decoded manifest may carry.
var validStates = map[string]bool{
	StateQueued:    true,
	StateRunning:   true,
	StateSucceeded: true,
	StateFailed:    true,
	StateCanceled:  true,
}

// Manifest is the durable record of one job: the request parameters
// needed to re-run it, its lifecycle state, and its terminal outcome.
// It is the only file the recovery scan has to trust, so DecodeManifest
// validates every field it later acts on.
type Manifest struct {
	// Version must be ManifestVersion.
	Version string `json:"version"`
	// ID is the job identifier and its directory name under jobs/.
	ID string `json:"id"`
	// State is the last persisted lifecycle state.
	State string `json:"state"`
	// K is the anonymity parameter.
	K int `json:"k"`
	// Algo is the algorithm's short name (kanon.ParseAlgorithm format).
	Algo string `json:"algo"`
	// Kernel is the distance-kernel's short name (kanon.ParseKernel
	// format). Manifests written before the field existed decode it as
	// "", which parses to the auto kernel.
	Kernel string `json:"kernel,omitempty"`
	// Workers, BlockRows, Refine, and Seed replay the request's knobs.
	Workers   int   `json:"workers,omitempty"`
	BlockRows int   `json:"block_rows,omitempty"`
	Refine    bool  `json:"refine,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	// TimeoutMS is the client-requested deadline in milliseconds
	// (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// HierarchySpec is the hierarchy sidecar of an algo=hierarchy job,
	// persisted as canonical JSON so recovery re-runs the same lattice.
	// Empty means none (other algorithms, or a derived hierarchy).
	HierarchySpec string `json:"hierarchy_spec,omitempty"`
	// MaxSuppress is the hierarchy job's row-suppression budget.
	MaxSuppress int `json:"max_suppress,omitempty"`
	// Rows and Cols record the request table's shape.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Cost is the suppression objective; present once succeeded.
	Cost *int `json:"cost,omitempty"`
	// Error is the failure or cancellation reason, if any.
	Error string `json:"error,omitempty"`
	// Lifecycle timestamps; zero values are omitted.
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Fence is the job's monotonically increasing fencing token. Every
	// successful claim (including a steal) increments it, so a node that
	// lost its lease can be recognized — and rejected — by comparing the
	// token it was issued against the current one. It only grows; it is
	// never reset, even when the claim is released.
	Fence uint64 `json:"fence,omitempty"`
	// Claim, when non-nil, records the lease: which node currently owns
	// the job and until when. Only running jobs carry a claim; a claim
	// whose Expires has passed is stealable by any node.
	Claim *Claim `json:"claim,omitempty"`
	// Node is the last node to hold the job's lease. Unlike Claim it
	// survives terminal transitions (so status can report who ran the
	// job) and is cleared only when a release hands the job back to the
	// queue, where it is nobody's again.
	Node string `json:"node,omitempty"`
	// CancelRequested asks the lease holder to cancel the job. Any node
	// can set it (DELETE may land anywhere in the cluster); the owner
	// notices at its next lease renewal and unwinds promptly.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// IdempotencyKey is the client-supplied (or router-generated)
	// exactly-once submission token. At most one admitted job carries a
	// given key; a resubmission with the same key replays this job's
	// original acceptance instead of admitting a twin. Empty for jobs
	// submitted without a key.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// Claim is the lease record of a claimed (running) job.
type Claim struct {
	// Node identifies the kanond process holding the lease.
	Node string `json:"node"`
	// Expires is the lease deadline. The owner renews it while the job
	// runs; once it passes, any node may steal the claim.
	Expires time.Time `json:"expires"`
}

// Recoverable reports whether the manifest describes work lost to a
// crash: a job admitted (queued) or claimed (running) but never
// finished.
func (m *Manifest) Recoverable() bool {
	return m.State == StateQueued || m.State == StateRunning
}

// Terminal reports whether the job reached a final state, so its
// directory is subject to TTL reaping.
func (m *Manifest) Terminal() bool {
	return m.State == StateSucceeded || m.State == StateFailed || m.State == StateCanceled
}

// validate rejects manifests the recovery path could not act on safely.
func (m *Manifest) validate() error {
	if m.Version != ManifestVersion && m.Version != manifestVersionLegacy {
		return fmt.Errorf("store: manifest version %q, want %q", m.Version, ManifestVersion)
	}
	if err := ValidateID(m.ID); err != nil {
		return err
	}
	if !validStates[m.State] {
		return fmt.Errorf("store: unknown job state %q", m.State)
	}
	if m.K < 1 {
		return fmt.Errorf("store: manifest k = %d < 1", m.K)
	}
	if m.Rows < m.K {
		return fmt.Errorf("store: manifest has %d rows, fewer than k = %d", m.Rows, m.K)
	}
	if m.Cols < 1 {
		return fmt.Errorf("store: manifest has %d columns", m.Cols)
	}
	if m.Algo == "" {
		return fmt.Errorf("store: manifest missing algorithm")
	}
	if m.Workers < 0 || m.BlockRows < 0 || m.TimeoutMS < 0 || m.MaxSuppress < 0 {
		return fmt.Errorf("store: manifest has negative knobs")
	}
	if m.SubmittedAt.IsZero() {
		return fmt.Errorf("store: manifest missing submitted_at")
	}
	if m.Node != "" {
		if err := ValidateNodeID(m.Node); err != nil {
			return err
		}
	}
	if m.IdempotencyKey != "" {
		if err := ValidateIdempotencyKey(m.IdempotencyKey); err != nil {
			return err
		}
	}
	if m.Claim != nil {
		if m.State != StateRunning {
			return fmt.Errorf("store: %s job carries a claim; only running jobs may", m.State)
		}
		if err := ValidateNodeID(m.Claim.Node); err != nil {
			return err
		}
		if m.Claim.Expires.IsZero() {
			return fmt.Errorf("store: claim missing lease deadline")
		}
		if m.Fence < 1 {
			return fmt.Errorf("store: claimed job has fence %d, want >= 1", m.Fence)
		}
	}
	return nil
}

// EncodeManifest serializes m (stamping the version) after validation.
func EncodeManifest(m *Manifest) ([]byte, error) {
	m.Version = ManifestVersion
	if err := m.validate(); err != nil {
		return nil, err
	}
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("store: encoding manifest: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeManifest parses and validates a manifest. Untrusted input —
// the bytes come off disk, possibly from a torn write or another
// version of this software — so every failure is an error, never a
// guess.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("store: decoding manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// ValidateID vets a job ID for use as a directory name: short,
// alphanumeric-led, and free of path separators or traversal, so a
// manifest (or URL) can never name a directory outside jobs/.
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("store: empty job id")
	}
	if len(id) > 64 {
		return fmt.Errorf("store: job id longer than 64 bytes")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case i > 0 && (c == '-' || c == '_' || c == '.'):
		default:
			return fmt.Errorf("store: job id %q has unsafe byte %q at %d", id, c, i)
		}
	}
	return nil
}

// ValidateNodeID vets a cluster node identifier found in a lease
// record. Node IDs share the job-ID character rules: they appear in
// logs, metrics labels, and manifests read by other nodes, so the same
// "no path bytes, no control bytes" discipline applies.
func ValidateNodeID(node string) error {
	if err := ValidateID(node); err != nil {
		return fmt.Errorf("store: invalid node id: %w", err)
	}
	return nil
}

// ValidateIdempotencyKey vets a client-supplied Idempotency-Key. Keys
// travel in headers, manifests, and logs, so they follow the job-ID
// byte rules (with a longer budget for UUID-ish client formats).
func ValidateIdempotencyKey(key string) error {
	if key == "" {
		return fmt.Errorf("store: empty idempotency key")
	}
	if len(key) > 128 {
		return fmt.Errorf("store: idempotency key longer than 128 bytes")
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case i > 0 && (c == '-' || c == '_' || c == '.' || c == ':'):
		default:
			return fmt.Errorf("store: idempotency key has unsafe byte %q at %d", c, i)
		}
	}
	return nil
}
