// The Backend interface: the file primitives the Store (and the
// replication puller) are built on, extracted so the same job-store
// logic can run over more than one durability substrate.
//
// A Backend is deliberately dumb — atomic whole-file replacement,
// reads, listings, removal, and an O_EXCL lock-file create — because
// every correctness argument the store makes (manifest-as-commit-
// record, locked read-modify-write claims, torn-tail journal repair)
// reduces to exactly these primitives. Two implementations exist:
//
//   - Local: one disk directory, the original behavior. N processes
//     sharing the directory coordinate through the lock primitive.
//   - Replicated: a Local copy per node plus a pull loop that
//     converges job state across peers over HTTP (replicated.go), so
//     a cluster runs with no shared filesystem at all.
//
// Paths handed to a Backend are slash-separated and relative to the
// backend's root; callers (the Store) validate every path component
// before it gets here.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Entry is one directory-listing element a Backend reports.
type Entry struct {
	// Name is the entry's base name.
	Name string
	// Dir reports whether the entry is a directory.
	Dir bool
}

// Backend is the file-primitive surface the job store drives. All
// methods must be safe for concurrent use, including by other
// processes sharing the same substrate.
type Backend interface {
	// WriteAtomic commits data at rel so a concurrent reader sees
	// either the previous complete file or the new complete file,
	// never a torn one.
	WriteAtomic(rel string, data []byte) error
	// ReadFile returns the complete content at rel. A missing file
	// reports an error satisfying errors.Is(err, os.ErrNotExist).
	ReadFile(rel string) ([]byte, error)
	// MkdirAll ensures the directory rel (and parents) exists.
	MkdirAll(rel string) error
	// Remove deletes the single file rel; missing files are an error
	// (os.Remove semantics), so lock-release races stay visible.
	Remove(rel string) error
	// RemoveAll deletes rel recursively; removing nothing is a no-op.
	RemoveAll(rel string) error
	// List returns the entries of directory rel.
	List(rel string) ([]Entry, error)
	// TryLock atomically creates the lock file rel. Exactly one caller
	// (across every process sharing the substrate) can succeed while
	// the file exists; a held lock reports an error satisfying
	// errors.Is(err, os.ErrExist).
	TryLock(rel string) error
	// Stat returns rel's size and modification time — how lock
	// staleness is judged and how the replication loop detects journal
	// growth without refetching.
	Stat(rel string) (size int64, mtime time.Time, err error)
	// Root is the backend's local root directory. Every Backend in
	// this package is at least locally materialized (the replicated
	// backend keeps a full local copy), so tools and tests can always
	// reach the files.
	Root() string
}

// Local is the disk Backend: one data directory, every write landing
// via write-to-temp + fsync + rename.
type Local struct {
	root string
}

// NewLocal returns a Local backend rooted at dir.
func NewLocal(dir string) (*Local, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	return &Local{root: dir}, nil
}

// abs resolves a backend-relative slash path against the root.
func (l *Local) abs(rel string) string {
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// Root returns the backing directory.
func (l *Local) Root() string { return l.root }

// WriteAtomic writes data to a same-directory temp file, fsyncs, and
// renames it over rel — the only write primitive in the store, so
// every on-disk file is either absent or complete. The temp name is
// unique per writer: in cluster mode two nodes may race to write the
// same (deterministic, byte-identical) spool, and a shared temp name
// would let their writes interleave into a torn file before the rename.
func (l *Local) WriteAtomic(rel string, data []byte) error {
	path := l.abs(rel)
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	merr := f.Chmod(0o644)
	serr := f.Sync()
	cerr := f.Close()
	if err := errors.Join(werr, merr, serr, cerr); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", base, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// ReadFile returns the complete content at rel.
func (l *Local) ReadFile(rel string) ([]byte, error) {
	return os.ReadFile(l.abs(rel))
}

// MkdirAll ensures the directory rel exists.
func (l *Local) MkdirAll(rel string) error {
	return os.MkdirAll(l.abs(rel), 0o755)
}

// Remove deletes the single file rel.
func (l *Local) Remove(rel string) error {
	return os.Remove(l.abs(rel))
}

// RemoveAll deletes rel recursively.
func (l *Local) RemoveAll(rel string) error {
	return os.RemoveAll(l.abs(rel))
}

// List returns the entries of directory rel.
func (l *Local) List(rel string) ([]Entry, error) {
	entries, err := os.ReadDir(l.abs(rel))
	if err != nil {
		return nil, err
	}
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = Entry{Name: e.Name(), Dir: e.IsDir()}
	}
	return out, nil
}

// TryLock creates rel with O_CREATE|O_EXCL — the one primitive that
// arbitrates between processes sharing the directory.
func (l *Local) TryLock(rel string) error {
	f, err := os.OpenFile(l.abs(rel), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

// Stat returns rel's size and modification time.
func (l *Local) Stat(rel string) (int64, time.Time, error) {
	info, err := os.Stat(l.abs(rel))
	if err != nil {
		return 0, time.Time{}, err
	}
	return info.Size(), info.ModTime(), nil
}
