// Package store persists kanond jobs so a crash or restart loses no
// admitted work. The layout is one directory per job:
//
//	<data-dir>/jobs/<job-id>/
//	    manifest.json     versioned (kanon-job/2) lifecycle record
//	    request.csv       the submitted table, via the shared CSV codec
//	    result.csv        the release, written before the manifest says
//	                      succeeded
//	    checkpoints/      per-block spools for resumable stream jobs:
//	        block-<lo>-<hi>.csv        anonymized rows (header + rows)
//	        block-<lo>-<hi>.stat.json  the block's BlockStat (commit marker)
//
// Every write lands through a Backend (backend.go) whose atomic-write
// primitive guarantees a reader (including the post-crash recovery
// scan) sees either the previous complete file or the new complete
// file, never a torn one. The manifest is the commit record: result
// and checkpoint spools are written before the state that makes them
// authoritative, so a crash between the two at worst re-runs
// deterministic work, never serves a phantom result.
//
// The store is mechanism, not policy: it validates what it reads and
// keeps writes atomic, while the server decides what to recover, when
// to reap, and what the states mean.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path"
	"sort"
	"time"

	"kanon/internal/relation"
	"kanon/internal/stream"
)

// Store is a backend-backed job store. All methods are safe for
// concurrent use — including use by other processes sharing the
// backend's substrate: distinct jobs touch distinct directories,
// same-job writes are atomic replacements, and the claim operations
// (claim.go) serialize read-modify-write manifest transitions through
// a per-job lock file.
type Store struct {
	be Backend
	// lockStale is how old a per-job mutation lock may grow before it is
	// presumed abandoned by a crashed process and broken. Mutations hold
	// the lock for microseconds, so the default (30s) is generous; tests
	// shrink it via SetLockStale.
	lockStale time.Duration
}

// Open ensures the data directory (and its jobs/ subdirectory) exists
// and returns a store over the local-disk backend rooted there.
func Open(dir string) (*Store, error) {
	be, err := NewLocal(dir)
	if err != nil {
		return nil, err
	}
	return OpenBackend(be)
}

// OpenBackend returns a store over an explicit Backend — how the
// replicated backend (replicated.go) is mounted.
func OpenBackend(be Backend) (*Store, error) {
	if err := be.MkdirAll("jobs"); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{be: be, lockStale: 30 * time.Second}, nil
}

// SetLockStale overrides how old an abandoned per-job mutation lock may
// grow before claim operations break it. Production never needs this;
// tests use it to exercise crash-failover without waiting 30s.
func (s *Store) SetLockStale(d time.Duration) {
	if d > 0 {
		s.lockStale = d
	}
}

// Dir returns the backend's local root directory.
func (s *Store) Dir() string { return s.be.Root() }

// Backend returns the store's backing primitive layer.
func (s *Store) Backend() Backend { return s.be }

// jobRel returns the backend-relative directory of one job. Callers
// must have validated the ID (every public method does).
func jobRel(id string) string {
	return path.Join("jobs", id)
}

// CreateJob persists a newly admitted job: its directory, the request
// table, and the initial manifest — in that order, so a manifest on
// disk implies its request is readable.
func (s *Store) CreateJob(m *Manifest, header []string, rows [][]string) error {
	b, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	dir := jobRel(m.ID)
	if err := s.be.MkdirAll(path.Join(dir, "checkpoints")); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.writeCSV(path.Join(dir, "request.csv"), header, rows); err != nil {
		return err
	}
	return s.be.WriteAtomic(path.Join(dir, "manifest.json"), b)
}

// WriteManifest atomically replaces a job's manifest — the state
// transition commit.
func (s *Store) WriteManifest(m *Manifest) error {
	b, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	return s.be.WriteAtomic(path.Join(jobRel(m.ID), "manifest.json"), b)
}

// ReadManifest loads and validates one job's manifest.
func (s *Store) ReadManifest(id string) (*Manifest, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	b, err := s.be.ReadFile(path.Join(jobRel(id), "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return DecodeManifest(b)
}

// ReadRequest loads the job's submitted table.
func (s *Store) ReadRequest(id string) (header []string, rows [][]string, err error) {
	return s.readCSV(id, "request.csv")
}

// WriteResult spools the job's release. Called before the manifest
// flips to succeeded, so a succeeded manifest implies a readable
// result.
func (s *Store) WriteResult(id string, header []string, rows [][]string) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	return s.writeCSV(path.Join(jobRel(id), "result.csv"), header, rows)
}

// ReadResult loads the job's release.
func (s *Store) ReadResult(id string) (header []string, rows [][]string, err error) {
	return s.readCSV(id, "result.csv")
}

// readCSV loads one of the job's CSV spools through the shared codec.
func (s *Store) readCSV(id, name string) (header []string, rows [][]string, err error) {
	if err := ValidateID(id); err != nil {
		return nil, nil, err
	}
	b, err := s.be.ReadFile(path.Join(jobRel(id), name))
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	header, rows, err = relation.ReadCSVRows(bytes.NewReader(b))
	if err != nil {
		return nil, nil, fmt.Errorf("store: reading %s for job %s: %w", name, id, err)
	}
	return header, rows, nil
}

// Delete reaps a job's entire directory — the TTL janitor's disk side.
// Deleting a job that is not on disk is a no-op.
func (s *Store) Delete(id string) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	if err := s.be.RemoveAll(jobRel(id)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Jobs scans the store and returns every decodable manifest, oldest
// submission first (ties broken by ID) so recovery re-enqueues in the
// original admission order. Entries that are not job directories or
// whose manifests do not decode are reported in skipped — the caller
// decides whether to warn; one corrupt directory never hides the rest.
func (s *Store) Jobs() (manifests []*Manifest, skipped []string, err error) {
	entries, err := s.be.List("jobs")
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if !e.Dir || ValidateID(e.Name) != nil {
			skipped = append(skipped, e.Name)
			continue
		}
		m, err := s.ReadManifest(e.Name)
		if err != nil || m.ID != e.Name {
			skipped = append(skipped, e.Name)
			continue
		}
		manifests = append(manifests, m)
	}
	sort.Slice(manifests, func(i, j int) bool {
		if !manifests[i].SubmittedAt.Equal(manifests[j].SubmittedAt) {
			return manifests[i].SubmittedAt.Before(manifests[j].SubmittedAt)
		}
		return manifests[i].ID < manifests[j].ID
	})
	return manifests, skipped, nil
}

// FindIdempotent returns the oldest manifest carrying the given
// idempotency key, or nil when no admitted job used it. The scan runs
// over the same manifests recovery trusts, so the answer spans every
// node writing to this store (shared directory) or everything the
// replication loop has converged (replicated backend).
func (s *Store) FindIdempotent(key string) (*Manifest, error) {
	if err := ValidateIdempotencyKey(key); err != nil {
		return nil, err
	}
	manifests, _, err := s.Jobs()
	if err != nil {
		return nil, err
	}
	for _, m := range manifests {
		if m.IdempotencyKey == key {
			return m, nil
		}
	}
	return nil, nil
}

// Checkpoint returns the job's block-checkpoint sink for the stream
// pipeline. The header is spooled with every block so the files are
// self-describing CSV.
func (s *Store) Checkpoint(id string, header []string) (*Checkpoint, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	dir := path.Join(jobRel(id), "checkpoints")
	if err := s.be.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Checkpoint{be: s.be, dir: dir, header: append([]string(nil), header...)}, nil
}

// Checkpoint spools completed stream blocks for one job. It implements
// stream.Checkpoint: Save is called concurrently by block workers (each
// block owns distinct files, so no locking is needed), Load replays a
// block on resume. The stat JSON is written after the row CSV and acts
// as the commit marker: a crash between the two leaves a CSV without a
// stat, which Load treats as "not checkpointed".
type Checkpoint struct {
	be     Backend
	dir    string
	header []string
}

var _ stream.Checkpoint = (*Checkpoint)(nil)

// blockBase names a block's spool files; zero-padded so lexical order
// is row order.
func blockBase(lo, hi int) string {
	return fmt.Sprintf("block-%09d-%09d", lo, hi)
}

// Save durably records one completed block: rows first, stat second.
func (c *Checkpoint) Save(stat stream.BlockStat, rows [][]string) error {
	base := path.Join(c.dir, blockBase(stat.Lo, stat.Hi))
	var buf bytes.Buffer
	if err := relation.WriteCSVRows(&buf, c.header, rows); err != nil {
		return fmt.Errorf("store: encoding %s: %w", path.Base(base)+".csv", err)
	}
	if err := c.be.WriteAtomic(base+".csv", buf.Bytes()); err != nil {
		return err
	}
	b, err := json.Marshal(&stat)
	if err != nil {
		return fmt.Errorf("store: encoding block stat: %w", err)
	}
	return c.be.WriteAtomic(base+".stat.json", append(b, '\n'))
}

// Load replays the block [lo, hi) if both of its spool files are
// present and parse. Anything short of that — missing files, torn or
// foreign content — is ok=false: recomputing a block is always safe,
// so the sink never turns a damaged checkpoint into a fatal error.
func (c *Checkpoint) Load(lo, hi int) (rows [][]string, stat *stream.BlockStat, ok bool, err error) {
	base := path.Join(c.dir, blockBase(lo, hi))
	sb, err := c.be.ReadFile(base + ".stat.json")
	if err != nil {
		return nil, nil, false, nil
	}
	var st stream.BlockStat
	if json.Unmarshal(sb, &st) != nil || st.Lo != lo || st.Hi != hi {
		return nil, nil, false, nil
	}
	rb, err := c.be.ReadFile(base + ".csv")
	if err != nil {
		return nil, nil, false, nil
	}
	header, rows, err := relation.ReadCSVRows(bytes.NewReader(rb))
	if err != nil || len(header) != len(c.header) {
		return nil, nil, false, nil
	}
	return rows, &st, true, nil
}

// Blocks lists the committed checkpoints (stats only), in row order —
// observability and test surface, not used by the resume path.
func (c *Checkpoint) Blocks() ([]stream.BlockStat, error) {
	entries, err := c.be.List(c.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var stats []stream.BlockStat
	for _, e := range entries {
		if e.Dir || path.Ext(e.Name) != ".json" {
			continue
		}
		b, err := c.be.ReadFile(path.Join(c.dir, e.Name))
		if err != nil {
			continue
		}
		var st stream.BlockStat
		if json.Unmarshal(b, &st) != nil {
			continue
		}
		stats = append(stats, st)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Lo < stats[j].Lo })
	return stats, nil
}

// writeCSV spools a header+rows table through the shared codec, then
// commits it atomically.
func (s *Store) writeCSV(rel string, header []string, rows [][]string) error {
	var buf bytes.Buffer
	if err := relation.WriteCSVRows(&buf, header, rows); err != nil {
		return fmt.Errorf("store: encoding %s: %w", path.Base(rel), err)
	}
	return s.be.WriteAtomic(rel, buf.Bytes())
}

// notExist reports whether err means "no such file", unwrapping the
// store's error decoration.
func notExist(err error) bool { return errors.Is(err, os.ErrNotExist) }
