// The replication wire surface: what one node shows its peers. kanond
// exposes these through two HTTP endpoints (internal/server):
//
//	GET /v1/replica/jobs                   → []ReplicaJob (ReplicaJobs)
//	GET /v1/replica/jobs/{id}/file?name=N  → raw bytes    (ReadJobFile)
//
// The listing carries each job's full manifest (small, and the merge
// in merge.go needs every field) plus the names and sizes of its spool
// files, so a puller can fetch exactly what it is missing. The file
// endpoint serves only whitelisted names — the spools the store itself
// writes — never the manifest (it travels in the listing, validated)
// and never the lock file.
package store

import (
	"fmt"
	"path"
	"strings"
)

// ReplicaFile names one spool file of a job and its current size.
// Sizes let pullers skip files they already have in full (immutable
// spools) or already merged (the journal).
type ReplicaFile struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// ReplicaJob is one job as advertised to replication peers.
type ReplicaJob struct {
	Manifest *Manifest     `json:"manifest"`
	Files    []ReplicaFile `json:"files,omitempty"`
}

// replicaSpools are the fixed-name spool files a job may carry, in the
// order they are advertised. request.csv leads: a puller adopting a
// job fetches files in listing order and the request must land before
// the manifest commit makes the job visible.
var replicaSpools = []string{"request.csv", "result.csv", "events.jsonl", "trace.json"}

// ReplicaJobs lists every decodable job with its manifest and spool
// inventory — the body of GET /v1/replica/jobs. Undecodable
// directories are skipped exactly as the recovery scan skips them.
func (s *Store) ReplicaJobs() ([]ReplicaJob, error) {
	manifests, _, err := s.Jobs()
	if err != nil {
		return nil, err
	}
	jobs := make([]ReplicaJob, 0, len(manifests))
	for _, m := range manifests {
		rj := ReplicaJob{Manifest: m}
		for _, name := range replicaSpools {
			if size, _, err := s.be.Stat(path.Join(jobRel(m.ID), name)); err == nil {
				rj.Files = append(rj.Files, ReplicaFile{Name: name, Size: size})
			}
		}
		if entries, err := s.be.List(path.Join(jobRel(m.ID), "checkpoints")); err == nil {
			for _, e := range entries {
				if e.Dir || !strings.HasPrefix(e.Name, "block-") {
					continue
				}
				name := "checkpoints/" + e.Name
				if size, _, err := s.be.Stat(path.Join(jobRel(m.ID), name)); err == nil {
					rj.Files = append(rj.Files, ReplicaFile{Name: name, Size: size})
				}
			}
		}
		jobs = append(jobs, rj)
	}
	return jobs, nil
}

// ValidateReplicaFile vets a spool-file name requested over the wire:
// one of the fixed spools, or a checkpoint block file. Anything else —
// the manifest, the lock, traversal attempts — is rejected.
func ValidateReplicaFile(name string) error {
	for _, s := range replicaSpools {
		if name == s {
			return nil
		}
	}
	dir, base := path.Split(name)
	if dir == "checkpoints/" && strings.HasPrefix(base, "block-") && ValidateID(base) == nil {
		return nil
	}
	return fmt.Errorf("store: %q is not a replicable job file", name)
}

// ReadJobFile returns the raw bytes of one whitelisted spool file —
// the body of GET /v1/replica/jobs/{id}/file. Missing files surface
// the backend's not-exist error so the handler can answer 404.
func (s *Store) ReadJobFile(id, name string) ([]byte, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	if err := ValidateReplicaFile(name); err != nil {
		return nil, err
	}
	return s.be.ReadFile(path.Join(jobRel(id), name))
}
