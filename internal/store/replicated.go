// The Replicated backend: a full local copy per node plus a pull loop
// that converges job state across peers, so a cluster runs with no
// shared filesystem.
//
// Locally it IS a Local backend — every correctness property the store
// argues from its primitives (atomic replacement, O_EXCL locks) holds
// unchanged, and node-local claim mutations stay serialized through
// the same per-job lock. What replication adds is anti-entropy: every
// interval, each node asks each peer for its job inventory
// (GET /v1/replica/jobs) and
//
//   - adopts jobs it has never seen (spools first, manifest last, so a
//     half-adopted job is invisible exactly like a half-created one);
//   - merges manifests it already has under the job's mutation lock,
//     using the deterministic total order in merge.go (fencing tokens
//     are the version clock);
//   - pulls immutable spools it is missing (request, result, committed
//     checkpoint blocks — all deterministic, so byte-identical wherever
//     they were produced);
//   - union-appends the event journal (each node's lines are internally
//     ordered; unseen remote lines append in remote order) and refreshes
//     the trace snapshot when the remote record won the merge.
//
// Pulling is symmetric — every node pulls from every peer — so state
// spreads even when only one direction of a link works. The loop is
// deliberately dumb: no deltas, no leadership, just "what do you have
// that I don't, and whose manifest is newer". Inventory payloads are
// manifest-sized, file fetches happen once per missing file, and the
// journal is refetched only when its advertised size changes.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"path"
	"sync"
	"time"
)

// ReplicateOptions tune the pull loop. The zero value is usable.
type ReplicateOptions struct {
	// Interval between pull rounds. Default 500ms — well under the
	// default lease TTL (15s), so lease renewals propagate long before
	// a peer would judge the lease expired and steal a live job.
	Interval time.Duration
	// Timeout bounds each peer HTTP request. Default 10s.
	Timeout time.Duration
	// AdoptTerminalGrace stops a node from adopting a never-seen job
	// that finished longer than this ago — such a job is either reaped
	// locally already or about to be reaped everywhere, and pulling it
	// back would churn against the janitor. Default 10m.
	AdoptTerminalGrace time.Duration
	// Client overrides the HTTP client (tests). When set, Timeout is
	// ignored.
	Client *http.Client
}

// Replicated is the no-shared-filesystem Backend: a Local copy of
// everything plus the pull loop that keeps it converged with peers.
type Replicated struct {
	*Local
	peers []string
	opts  ReplicateOptions

	st *Store // the store this backend serves; set by OpenReplicated

	mu          sync.Mutex
	journalSeen map[string]int64 // "peer|job" → last merged remote journal size

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// OpenReplicated mounts a store over a Replicated backend: a private
// local data directory plus the peer set to converge with. Peers are
// base URLs of the other nodes' kanond listeners (the replication
// endpoints live on the same mux as the job API). The returned
// Replicated is idle until StartSync.
func OpenReplicated(dir string, peers []string, opts ReplicateOptions) (*Store, *Replicated, error) {
	local, err := NewLocal(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(peers) == 0 {
		return nil, nil, fmt.Errorf("store: replicated backend needs at least one peer")
	}
	clean := make([]string, 0, len(peers))
	for _, p := range peers {
		u, err := url.Parse(p)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, nil, fmt.Errorf("store: replication peer %q is not an absolute URL", p)
		}
		clean = append(clean, (&url.URL{Scheme: u.Scheme, Host: u.Host}).String())
	}
	if opts.Interval <= 0 {
		opts.Interval = 500 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.AdoptTerminalGrace <= 0 {
		opts.AdoptTerminalGrace = 10 * time.Minute
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: opts.Timeout}
	}
	r := &Replicated{
		Local:       local,
		peers:       clean,
		opts:        opts,
		journalSeen: make(map[string]int64),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	st, err := OpenBackend(r)
	if err != nil {
		return nil, nil, err
	}
	r.st = st
	return st, r, nil
}

// Peers returns the normalized peer base URLs.
func (r *Replicated) Peers() []string { return append([]string(nil), r.peers...) }

// StartSync launches the pull loop. Call once, after the local HTTP
// listener is up (peers pull from us independently; our loop only
// needs them to be reachable eventually).
func (r *Replicated) StartSync() {
	r.startOnce.Do(func() {
		go func() {
			defer close(r.done)
			t := time.NewTicker(r.opts.Interval)
			defer t.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-t.C:
					_ = r.SyncOnce(time.Now())
				}
			}
		}()
	})
}

// StopSync halts the pull loop and waits for the in-flight round to
// finish. Safe to call without StartSync.
func (r *Replicated) StopSync() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.startOnce.Do(func() { close(r.done) }) // never started: nothing to wait for
	<-r.done
}

// SyncOnce runs one full anti-entropy round against every peer. Peer
// failures are collected, not fatal — a partitioned peer just means
// its state arrives later (possibly via another peer that can still
// reach it).
func (r *Replicated) SyncOnce(now time.Time) error {
	var errs []error
	for _, peer := range r.peers {
		if err := r.syncPeer(peer, now); err != nil {
			errs = append(errs, fmt.Errorf("peer %s: %w", peer, err))
		}
	}
	return errors.Join(errs...)
}

// syncPeer pulls one peer's inventory and converges every job in it.
func (r *Replicated) syncPeer(peer string, now time.Time) error {
	body, err := r.fetch(peer + "/v1/replica/jobs")
	if err != nil {
		return err
	}
	var jobs []ReplicaJob
	if err := json.Unmarshal(body, &jobs); err != nil {
		return fmt.Errorf("store: decoding replica listing: %w", err)
	}
	var errs []error
	for _, rj := range jobs {
		if rj.Manifest == nil || rj.Manifest.validate() != nil {
			continue // a peer running different software; skip, don't import
		}
		if err := r.syncJob(peer, rj, now); err != nil {
			errs = append(errs, fmt.Errorf("job %s: %w", rj.Manifest.ID, err))
		}
	}
	return errors.Join(errs...)
}

// syncJob converges one remote job record with the local copy.
func (r *Replicated) syncJob(peer string, rj ReplicaJob, now time.Time) error {
	id := rj.Manifest.ID
	_, err := r.st.ReadManifest(id)
	switch {
	case err != nil && notExist(err):
		return r.adoptJob(peer, rj, now)
	case err != nil:
		return err
	}
	remoteWon, err := r.mergeJob(id, rj.Manifest)
	if err != nil {
		// The job was reaped between the read and the merge, or is
		// mid-reap; skip quietly — the next round sees a clean state.
		if notExist(err) {
			return nil
		}
		return err
	}
	return r.pullFiles(peer, rj, remoteWon)
}

// adoptJob materializes a job this node has never seen: directory and
// spools first, manifest last, so the job becomes visible locally only
// once its request is readable — the same commit order CreateJob uses.
func (r *Replicated) adoptJob(peer string, rj ReplicaJob, now time.Time) error {
	m := rj.Manifest
	if m.Terminal() && m.FinishedAt != nil &&
		now.Sub(*m.FinishedAt) > r.opts.AdoptTerminalGrace {
		return nil // finished long ago; the janitor owns its fate
	}
	dir := jobRel(m.ID)
	if err := r.st.be.MkdirAll(path.Join(dir, "checkpoints")); err != nil {
		return err
	}
	gotRequest := false
	for _, f := range rj.Files {
		if err := r.pullFile(peer, m.ID, f.Name); err != nil {
			if f.Name == "request.csv" {
				return err // without the request the job cannot run or resume
			}
			continue // best-effort: the next round retries
		}
		if f.Name == "request.csv" {
			gotRequest = true
		}
	}
	if !gotRequest {
		return fmt.Errorf("store: peer listing for %s has no request.csv", m.ID)
	}
	b, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	r.rememberJournal(peer, m.ID, rj.Files)
	return r.st.be.WriteAtomic(path.Join(dir, "manifest.json"), b)
}

// mergeJob merges the remote manifest into the local one under the
// job's mutation lock, so the merge cannot interleave with a local
// claim transition. Reports whether the remote record won.
func (r *Replicated) mergeJob(id string, remote *Manifest) (remoteWon bool, err error) {
	unlock, err := r.st.lockJob(id)
	if err != nil {
		return false, err
	}
	defer unlock()
	b, err := r.st.be.ReadFile(path.Join(jobRel(id), "manifest.json"))
	if err != nil {
		return false, err
	}
	local, err := DecodeManifest(b)
	if err != nil {
		return false, err
	}
	merged := mergeManifests(local, remote)
	remoteWon = pickManifest(local, remote) == remote
	out, err := EncodeManifest(merged)
	if err != nil {
		return false, err
	}
	cur, err := EncodeManifest(local)
	if err != nil {
		return false, err
	}
	if string(out) == string(cur) {
		return remoteWon, nil // converged already; no write, no churn
	}
	return remoteWon, r.st.be.WriteAtomic(path.Join(jobRel(id), "manifest.json"), out)
}

// pullFiles fetches what the local copy is missing from one job's
// advertised spools. Immutable files (request, result, checkpoint
// blocks) are pulled iff absent; the journal is union-merged; the
// trace snapshot is refreshed when the remote manifest won (the
// remote's view of the timeline is the fresher one) or absent locally.
func (r *Replicated) pullFiles(peer string, rj ReplicaJob, remoteWon bool) error {
	id := rj.Manifest.ID
	var errs []error
	for _, f := range rj.Files {
		switch f.Name {
		case "events.jsonl":
			if err := r.mergeJournal(peer, id, f.Size); err != nil {
				errs = append(errs, err)
			}
		case "trace.json":
			_, _, statErr := r.st.be.Stat(path.Join(jobRel(id), f.Name))
			if remoteWon || notExist(statErr) {
				if err := r.pullFile(peer, id, f.Name); err != nil {
					errs = append(errs, err)
				}
			}
		default:
			if _, _, err := r.st.be.Stat(path.Join(jobRel(id), f.Name)); notExist(err) {
				if err := r.pullFile(peer, id, f.Name); err != nil {
					errs = append(errs, err)
				}
			}
		}
	}
	return errors.Join(errs...)
}

// pullFile fetches one spool file from a peer and commits it locally.
func (r *Replicated) pullFile(peer, id, name string) error {
	if err := ValidateReplicaFile(name); err != nil {
		return err
	}
	b, err := r.fetch(peer + "/v1/replica/jobs/" + url.PathEscape(id) + "/file?name=" + url.QueryEscape(name))
	if err != nil {
		return err
	}
	return r.st.be.WriteAtomic(path.Join(jobRel(id), name), b)
}

// mergeJournal union-appends the peer's journal lines into the local
// spool: local order is preserved, unseen remote lines append in
// remote order. Each writer's lines are internally ordered, and
// cross-node ordering is carried by the events themselves (fence,
// phase), so union-append preserves every per-node happens-before the
// journal promises. The advertised size gates refetching: a journal
// that has not grown since the last merge is skipped.
func (r *Replicated) mergeJournal(peer, id string, remoteSize int64) error {
	key := peer + "|" + id
	r.mu.Lock()
	seen := r.journalSeen[key]
	r.mu.Unlock()
	if remoteSize == seen {
		return nil
	}
	remote, err := r.fetch(peer + "/v1/replica/jobs/" + url.PathEscape(id) + "/file?name=events.jsonl")
	if err != nil {
		return err
	}
	unlock, err := r.st.lockJob(id)
	if err != nil {
		if notExist(err) {
			return nil // reaped underneath us
		}
		return err
	}
	defer unlock()
	local, err := r.st.be.ReadFile(path.Join(jobRel(id), "events.jsonl"))
	if err != nil && !notExist(err) {
		return err
	}
	merged, changed := unionJournal(local, remote)
	if changed {
		if err := r.st.be.WriteAtomic(path.Join(jobRel(id), "events.jsonl"), merged); err != nil {
			return err
		}
	}
	r.mu.Lock()
	r.journalSeen[key] = remoteSize
	r.mu.Unlock()
	return nil
}

// rememberJournal primes the journal-size cache after an adopt, where
// the spool was copied wholesale and needs no immediate re-merge.
func (r *Replicated) rememberJournal(peer, id string, files []ReplicaFile) {
	for _, f := range files {
		if f.Name == "events.jsonl" {
			r.mu.Lock()
			r.journalSeen[peer+"|"+id] = f.Size
			r.mu.Unlock()
		}
	}
}

// unionJournal merges two journal spools by complete lines: all of
// local (torn tail trimmed), then every remote line not already
// present, in remote order.
func unionJournal(local, remote []byte) (merged []byte, changed bool) {
	trim := func(b []byte) []byte {
		if len(b) == 0 || b[len(b)-1] == '\n' {
			return b
		}
		// Everything after the last newline is a torn tail from a
		// crashed writer; drop it.
		i := len(b) - 1
		for i >= 0 && b[i] != '\n' {
			i--
		}
		return b[:i+1]
	}
	local, remote = trim(local), trim(remote)
	seen := make(map[string]bool)
	for _, line := range splitLines(local) {
		seen[line] = true
	}
	merged = append([]byte(nil), local...)
	for _, line := range splitLines(remote) {
		if !seen[line] {
			seen[line] = true
			merged = append(merged, line...)
			merged = append(merged, '\n')
			changed = true
		}
	}
	return merged, changed
}

// splitLines splits a newline-terminated spool into its lines, without
// the terminators.
func splitLines(b []byte) []string {
	var out []string
	for len(b) > 0 {
		i := 0
		for i < len(b) && b[i] != '\n' {
			i++
		}
		out = append(out, string(b[:i]))
		if i == len(b) {
			break
		}
		b = b[i+1:]
	}
	return out
}

// maxReplicaBody bounds any single replication response. Spools are
// CSV tables the admission path already capped; this is a backstop
// against a confused peer, not a tuning knob.
const maxReplicaBody = 256 << 20

// fetch GETs one replication URL, returning the body on 200.
func (r *Replicated) fetch(u string) ([]byte, error) {
	resp, err := r.opts.Client.Get(u)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("store: %s answered %s", u, resp.Status)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxReplicaBody+1))
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", u, err)
	}
	if len(b) > maxReplicaBody {
		return nil, fmt.Errorf("store: %s response exceeds %d bytes", u, int64(maxReplicaBody))
	}
	return b, nil
}
