package store

import (
	"testing"
)

// FuzzJobManifest drives the manifest decoder — the one file the
// post-crash recovery scan has to trust — with arbitrary bytes. The
// invariants: the decoder never panics; anything it accepts passes its
// own validation rules (version pinned, ID directory-safe, state in the
// closed set, shape consistent) and survives an encode/decode round
// trip unchanged in every field recovery acts on.
func FuzzJobManifest(f *testing.F) {
	if b, err := EncodeManifest(testManifest("seed-1")); err == nil {
		f.Add(b)
	}
	m := testManifest("seed-2")
	m.State = StateSucceeded
	cost := 3
	m.Cost = &cost
	if b, err := EncodeManifest(m); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"version":"kanon-job/1","id":"x","state":"queued"}`))
	f.Add([]byte(`{"version":"kanon-job/2","id":"x","state":"queued","k":2,"algo":"ball","rows":4,"cols":1,"submitted_at":"2026-01-01T00:00:00Z"}`))
	f.Add([]byte(`{"id":"../../etc","state":"queued"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.Version != ManifestVersion {
			t.Fatalf("accepted version %q", m.Version)
		}
		if err := ValidateID(m.ID); err != nil {
			t.Fatalf("accepted unsafe id %q: %v", m.ID, err)
		}
		if !validStates[m.State] {
			t.Fatalf("accepted state %q", m.State)
		}
		if m.K < 1 || m.Rows < m.K || m.Cols < 1 || m.Algo == "" {
			t.Fatalf("accepted inconsistent shape: %+v", m)
		}
		if m.Workers < 0 || m.BlockRows < 0 || m.TimeoutMS < 0 {
			t.Fatalf("accepted negative knobs: %+v", m)
		}
		b, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-encode: %v", err)
		}
		m2, err := DecodeManifest(b)
		if err != nil {
			t.Fatalf("re-encoded manifest does not decode: %v", err)
		}
		if m2.ID != m.ID || m2.State != m.State || m2.K != m.K || m2.Algo != m.Algo ||
			m2.Rows != m.Rows || m2.Cols != m.Cols || m2.BlockRows != m.BlockRows ||
			m2.Seed != m.Seed || !m2.SubmittedAt.Equal(m.SubmittedAt) {
			t.Fatalf("round trip changed fields:\n%+v\n%+v", m, m2)
		}
	})
}
