package store

import (
	"testing"
	"time"
)

// FuzzJobManifest drives the manifest decoder — the one file the
// post-crash recovery scan has to trust — with arbitrary bytes. The
// invariants: the decoder never panics; anything it accepts passes its
// own validation rules (version pinned, ID directory-safe, state in the
// closed set, shape consistent) and survives an encode/decode round
// trip unchanged in every field recovery acts on.
func FuzzJobManifest(f *testing.F) {
	if b, err := EncodeManifest(testManifest("seed-1")); err == nil {
		f.Add(b)
	}
	m := testManifest("seed-2")
	m.State = StateSucceeded
	cost := 3
	m.Cost = &cost
	if b, err := EncodeManifest(m); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"version":"kanon-job/1","id":"x","state":"queued"}`))
	f.Add([]byte(`{"version":"kanon-job/2","id":"x","state":"queued","k":2,"algo":"ball","rows":4,"cols":1,"submitted_at":"2026-01-01T00:00:00Z"}`))
	f.Add([]byte(`{"id":"../../etc","state":"queued"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.Version != ManifestVersion {
			t.Fatalf("accepted version %q", m.Version)
		}
		if err := ValidateID(m.ID); err != nil {
			t.Fatalf("accepted unsafe id %q: %v", m.ID, err)
		}
		if !validStates[m.State] {
			t.Fatalf("accepted state %q", m.State)
		}
		if m.K < 1 || m.Rows < m.K || m.Cols < 1 || m.Algo == "" {
			t.Fatalf("accepted inconsistent shape: %+v", m)
		}
		if m.Workers < 0 || m.BlockRows < 0 || m.TimeoutMS < 0 {
			t.Fatalf("accepted negative knobs: %+v", m)
		}
		b, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-encode: %v", err)
		}
		m2, err := DecodeManifest(b)
		if err != nil {
			t.Fatalf("re-encoded manifest does not decode: %v", err)
		}
		if m2.ID != m.ID || m2.State != m.State || m2.K != m.K || m2.Algo != m.Algo ||
			m2.Rows != m.Rows || m2.Cols != m.Cols || m2.BlockRows != m.BlockRows ||
			m2.Seed != m.Seed || !m2.SubmittedAt.Equal(m.SubmittedAt) {
			t.Fatalf("round trip changed fields:\n%+v\n%+v", m, m2)
		}
	})
}

// FuzzClaimManifest drives the strict decoder with hostile lease
// records — the cluster-mode analogue of FuzzJobManifest. Any manifest
// the decoder accepts must carry a claim the claim machinery can act on
// safely: only running jobs leased, the holder's node ID directory- and
// label-safe, a real deadline, a fence ≥ 1 — and the fencing rules must
// hold over it: the recorded holder passes checkOwner, every other
// (node, fence) pair is fenced out, and the claim survives an
// encode/decode round trip bit-for-bit.
func FuzzClaimManifest(f *testing.F) {
	mk := func(mut func(*Manifest)) []byte {
		m := testManifest("seed-claim")
		m.State = StateRunning
		m.Fence = 3
		m.Claim = &Claim{Node: "node-a", Expires: time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC)}
		mut(m)
		b, err := EncodeManifest(m)
		if err != nil {
			return nil
		}
		return b
	}
	if b := mk(func(m *Manifest) {}); b != nil {
		f.Add(b)
	}
	if b := mk(func(m *Manifest) { m.CancelRequested = true }); b != nil {
		f.Add(b)
	}
	// Hostile shapes the decoder must reject or normalize: leases on
	// non-running jobs, traversal node IDs, zero deadlines, fence 0.
	f.Add([]byte(`{"version":"kanon-job/1","id":"x","state":"queued","k":2,"algo":"ball","rows":4,"cols":1,"submitted_at":"2026-01-01T00:00:00Z","claim":{"node":"n1","expires":"2026-01-01T00:01:00Z"},"fence":1}`))
	f.Add([]byte(`{"version":"kanon-job/1","id":"x","state":"running","k":2,"algo":"ball","rows":4,"cols":1,"submitted_at":"2026-01-01T00:00:00Z","claim":{"node":"../../etc","expires":"2026-01-01T00:01:00Z"},"fence":1}`))
	f.Add([]byte(`{"version":"kanon-job/1","id":"x","state":"running","k":2,"algo":"ball","rows":4,"cols":1,"submitted_at":"2026-01-01T00:00:00Z","claim":{"node":"n1","expires":"0001-01-01T00:00:00Z"},"fence":1}`))
	f.Add([]byte(`{"version":"kanon-job/1","id":"x","state":"running","k":2,"algo":"ball","rows":4,"cols":1,"submitted_at":"2026-01-01T00:00:00Z","claim":{"node":"n1","expires":"2026-01-01T00:01:00Z"}}`))
	f.Add([]byte(`{"version":"kanon-job/1","id":"x","state":"running","k":2,"algo":"ball","rows":4,"cols":1,"submitted_at":"2026-01-01T00:00:00Z","claim":{"node":""},"fence":18446744073709551615}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.Claim == nil {
			return
		}
		if m.State != StateRunning {
			t.Fatalf("accepted a lease on a %s job", m.State)
		}
		if err := ValidateNodeID(m.Claim.Node); err != nil {
			t.Fatalf("accepted unsafe lease node %q: %v", m.Claim.Node, err)
		}
		if m.Claim.Expires.IsZero() {
			t.Fatal("accepted a lease without a deadline")
		}
		if m.Fence < 1 {
			t.Fatalf("accepted a leased job with fence %d", m.Fence)
		}
		if err := checkOwner(m, m.Claim.Node, m.Fence); err != nil {
			t.Fatalf("recorded holder does not pass checkOwner: %v", err)
		}
		if err := checkOwner(m, m.Claim.Node+"x", m.Fence); err == nil {
			t.Fatal("foreign node passed checkOwner")
		}
		if err := checkOwner(m, m.Claim.Node, m.Fence+1); err == nil {
			t.Fatal("stale fence passed checkOwner")
		}
		b, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("accepted claim does not re-encode: %v", err)
		}
		m2, err := DecodeManifest(b)
		if err != nil {
			t.Fatalf("re-encoded claim does not decode: %v", err)
		}
		if m2.Fence != m.Fence || m2.Claim.Node != m.Claim.Node ||
			!m2.Claim.Expires.Equal(m.Claim.Expires) || m2.CancelRequested != m.CancelRequested {
			t.Fatalf("round trip changed the lease:\n%+v\n%+v", m.Claim, m2.Claim)
		}
	})
}
