package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func journalStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateJob(testManifest("job-j"), []string{"a"}, [][]string{{"1"}}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestJournalAppendRead(t *testing.T) {
	s := journalStore(t)
	if b, err := s.ReadJournal("job-j"); err != nil || b != nil {
		t.Fatalf("fresh job journal: %q, %v (want empty, nil)", b, err)
	}
	lines := []string{
		`{"event":"submitted"}` + "\n",
		`{"event":"claimed"}` + "\n",
		`{"event":"succeeded"}` + "\n",
	}
	for _, l := range lines {
		if err := s.AppendJournal("job-j", []byte(l)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.ReadJournal("job-j")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != strings.Join(lines, "") {
		t.Errorf("journal = %q, want the three lines in order", got)
	}
}

func TestJournalAppendRejectsUnterminated(t *testing.T) {
	s := journalStore(t)
	for _, bad := range [][]byte{nil, {}, []byte(`{"event":"claimed"}`)} {
		if err := s.AppendJournal("job-j", bad); err == nil {
			t.Errorf("append accepted %q without a trailing newline", bad)
		}
	}
	if err := s.AppendJournal("../etc", []byte("x\n")); err == nil {
		t.Error("append accepted a path-traversal job id")
	}
}

// TestJournalAppendDropsTornTail: a torn tail left by a crashed writer
// is discarded before the next complete line lands, so the spool only
// ever grows by complete lines.
func TestJournalAppendDropsTornTail(t *testing.T) {
	s := journalStore(t)
	if err := s.AppendJournal("job-j", []byte("{\"event\":\"submitted\"}\n")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), "jobs", "job-j", "events.jsonl")
	// Simulate a crash mid-append: a partial line with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"event":"cla`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := s.AppendJournal("job-j", []byte("{\"event\":\"failed\"}\n")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadJournal("job-j")
	if err != nil {
		t.Fatal(err)
	}
	want := "{\"event\":\"submitted\"}\n{\"event\":\"failed\"}\n"
	if string(got) != want {
		t.Errorf("after torn tail, journal = %q, want %q", got, want)
	}
}

// TestJournalConcurrentAppends: the per-job lock serializes appends —
// every line survives intact, none interleave.
func TestJournalConcurrentAppends(t *testing.T) {
	s := journalStore(t)
	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			line := fmt.Sprintf(`{"i":%d}`+"\n", i)
			if err := s.AppendJournal("job-j", []byte(line)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	got, err := s.ReadJournal("job-j")
	if err != nil {
		t.Fatal(err)
	}
	gotLines := strings.Split(strings.TrimSuffix(string(got), "\n"), "\n")
	if len(gotLines) != n {
		t.Fatalf("got %d lines, want %d:\n%s", len(gotLines), n, got)
	}
	seen := map[string]bool{}
	for _, l := range gotLines {
		if !strings.HasPrefix(l, `{"i":`) || !strings.HasSuffix(l, "}") {
			t.Errorf("interleaved or torn line %q", l)
		}
		seen[l] = true
	}
	if len(seen) != n {
		t.Errorf("lost lines: %d distinct of %d", len(seen), n)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	s := journalStore(t)
	if b, err := s.ReadTrace("job-j"); err != nil || b != nil {
		t.Fatalf("fresh job trace: %q, %v (want nil, nil)", b, err)
	}
	v1 := []byte(`{"spans":[{"name":"job@a"}]}`)
	if err := s.WriteTrace("job-j", v1); err != nil {
		t.Fatal(err)
	}
	// Last write wins: each flush is a fuller view of the same timeline.
	v2 := []byte(`{"spans":[{"name":"job@a"},{"name":"job@b"}]}`)
	if err := s.WriteTrace("job-j", v2); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadTrace("job-j")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(v2) {
		t.Errorf("trace = %q, want %q", got, v2)
	}
	if err := s.WriteTrace("bad/../id", v1); err == nil {
		t.Error("WriteTrace accepted a path-traversal job id")
	}
}
