package lattice

import (
	"math/rand"
	"strings"
	"testing"

	"kanon/internal/generalize"
	"kanon/internal/relation"
)

// zipAgeTable: zip has a 2-level hierarchy (digit prefixes), age a
// 2-level hierarchy (bands).
func zipAgeTable(t *testing.T) (*relation.Table, generalize.Scheme) {
	t.Helper()
	tab := relation.NewTable(relation.NewSchema("zip", "age"))
	for _, r := range [][]string{
		{"15213", "34"}, {"15217", "36"},
		{"15213", "47"}, {"15217", "49"},
	} {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatal(err)
		}
	}
	zip := generalize.NewHierarchy("*")
	zip.MustAdd("152**", "*")
	zip.MustAdd("15213", "152**")
	zip.MustAdd("15217", "152**")
	age := generalize.NewHierarchy("*")
	age.MustAdd("30-39", "*")
	age.MustAdd("40-49", "*")
	age.MustAdd("34", "30-39")
	age.MustAdd("36", "30-39")
	age.MustAdd("47", "40-49")
	age.MustAdd("49", "40-49")
	return tab, generalize.Scheme{zip, age}
}

func TestSearchFindsMinimalNode(t *testing.T) {
	tab, scheme := zipAgeTable(t)
	node, minimal, err := Search(tab, scheme, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Generalizing zip one level (152**) and age one level (bands)
	// creates two classes of 2: (152**, 30-39) and (152**, 40-49).
	// Height 2 is minimal: height 0 is the raw table (all distinct);
	// at height 1, either zips alone (ages still distinguish) or ages
	// alone (zips distinguish) stay 1-anonymous.
	if node.Height != 2 {
		t.Fatalf("height = %d (levels %v), want 2", node.Height, node.Levels)
	}
	if len(node.Suppressed) != 0 {
		t.Errorf("suppressed %v, want none", node.Suppressed)
	}
	if len(node.Rows) != 4 {
		t.Fatalf("released %d rows", len(node.Rows))
	}
	// Two minimal nodes exist at height 2: (0,2) — ages suppressed to *
	// — and (1,1) — both columns one level up. (2,0) is infeasible
	// because distinct ages survive. The representative is the
	// lexicographically smallest, (0,2).
	if len(minimal) != 2 {
		t.Fatalf("minimal = %v, want two nodes", minimal)
	}
	if minimal[0][0] != 0 || minimal[0][1] != 2 || minimal[1][0] != 1 || minimal[1][1] != 1 {
		t.Errorf("minimal = %v, want [[0 2] [1 1]]", minimal)
	}
	if node.Rows[0][0] != "15213" || node.Rows[0][1] != "*" {
		t.Errorf("row 0 = %v, want [15213 *]", node.Rows[0])
	}
}

func TestSearchHeightZeroWhenAlreadyAnonymous(t *testing.T) {
	tab := relation.NewTable(relation.NewSchema("a"))
	for _, v := range []string{"x", "x", "x"} {
		if err := tab.AppendStrings(v); err != nil {
			t.Fatal(err)
		}
	}
	node, _, err := Search(tab, generalize.Scheme{generalize.Suppression()}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if node.Height != 0 {
		t.Errorf("height = %d, want 0", node.Height)
	}
}

func TestSuppressionBudgetLowersHeight(t *testing.T) {
	// Three rows pair up after one generalization; a single outlier
	// otherwise forces the root. With maxSup = 1 the outlier is dropped
	// instead.
	tab := relation.NewTable(relation.NewSchema("v"))
	for _, v := range []string{"a1", "a2", "a1", "zz"} {
		if err := tab.AppendStrings(v); err != nil {
			t.Fatal(err)
		}
	}
	h := generalize.NewHierarchy("*")
	h.MustAdd("A", "*")
	h.MustAdd("a1", "A")
	h.MustAdd("a2", "A")
	h.MustAdd("Z", "*")
	h.MustAdd("zz", "Z")
	scheme := generalize.Scheme{h}

	strict, _, err := Search(tab, scheme, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Height != 2 { // must climb to * to merge zz with the rest
		t.Errorf("strict height = %d, want 2", strict.Height)
	}
	relaxed, _, err := Search(tab, scheme, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Height != 1 {
		t.Errorf("relaxed height = %d, want 1", relaxed.Height)
	}
	if len(relaxed.Suppressed) != 1 || relaxed.Suppressed[0] != 3 {
		t.Errorf("suppressed = %v, want [3]", relaxed.Suppressed)
	}
	if len(relaxed.Kept) != 3 {
		t.Errorf("kept = %v", relaxed.Kept)
	}
}

func TestSearchAllMinimalSolutions(t *testing.T) {
	// Symmetric instance: generalizing either column alone suffices, so
	// there are exactly two minimal nodes at height 1.
	tab := relation.NewTable(relation.NewSchema("x", "y"))
	for _, r := range [][]string{
		{"x1", "y1"}, {"x2", "y2"},
	} {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatal(err)
		}
	}
	hx := generalize.NewHierarchy("*")
	hx.MustAdd("x1", "*")
	hx.MustAdd("x2", "*")
	hy := generalize.NewHierarchy("*")
	hy.MustAdd("y1", "*")
	hy.MustAdd("y2", "*")
	node, minimal, err := Search(tab, generalize.Scheme{hx, hy}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Height 1 cannot merge the rows (the other column still differs),
	// so the answer is height 2 with a single node (1,1).
	if node.Height != 2 || len(minimal) != 1 {
		t.Errorf("height %d, minimal %v", node.Height, minimal)
	}
}

func TestSearchErrors(t *testing.T) {
	tab, scheme := zipAgeTable(t)
	if _, _, err := Search(tab, scheme, 0, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, _, err := Search(tab, scheme[:1], 2, 0); err == nil {
		t.Error("accepted short scheme")
	}
	empty := relation.NewTable(relation.NewSchema("a"))
	if _, _, err := Search(empty, generalize.Scheme{nil}, 2, 0); err == nil {
		t.Error("accepted empty table")
	}
	// n < k without budget is infeasible even at the root.
	small := relation.NewTable(relation.NewSchema("a"))
	if err := small.AppendStrings("v"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Search(small, generalize.Scheme{nil}, 2, 0); err == nil {
		t.Error("accepted n < k with no suppression budget")
	}
	// …but with budget ≥ n the degenerate all-suppressed node works.
	node, _, err := Search(small, generalize.Scheme{nil}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(node.Suppressed) != 1 || len(node.Rows) != 0 {
		t.Errorf("degenerate node = %+v", node)
	}
}

func TestNilHierarchyMeansSuppression(t *testing.T) {
	tab := relation.NewTable(relation.NewSchema("a", "b"))
	for _, r := range [][]string{{"p", "1"}, {"p", "2"}} {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatal(err)
		}
	}
	node, _, err := Search(tab, generalize.Scheme{nil, nil}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Column b must climb to * (suppression); column a is already
	// uniform.
	if node.Height != 1 || node.Rows[0][1] != "*" {
		t.Errorf("node = %+v", node)
	}
	if node.Rows[0][0] != "p" {
		t.Errorf("column a generalized unnecessarily: %v", node.Rows[0])
	}
}

// TestReleaseIsKAnonymous: on random tables with random 2-level
// hierarchies, the released rows always form classes of size ≥ k.
func TestReleaseIsKAnonymous(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(10)
		m := 2 + rng.Intn(2)
		tab := relation.NewTable(relation.NewSchema(colNames(m)...))
		scheme := make(generalize.Scheme, m)
		for j := 0; j < m; j++ {
			h := generalize.NewHierarchy("*")
			h.MustAdd("G0", "*")
			h.MustAdd("G1", "*")
			for v := 0; v < 4; v++ {
				h.MustAdd(val(j, v), "G"+itoa(v%2))
			}
			scheme[j] = h
		}
		for i := 0; i < n; i++ {
			row := make([]string, m)
			for j := range row {
				row[j] = val(j, rng.Intn(4))
			}
			if err := tab.AppendStrings(row...); err != nil {
				t.Fatal(err)
			}
		}
		k := 2 + rng.Intn(2)
		maxSup := rng.Intn(3)
		node, _, err := Search(tab, scheme, k, maxSup)
		if err != nil {
			t.Fatal(err)
		}
		if len(node.Suppressed) > maxSup {
			t.Fatalf("trial %d: suppressed %d > budget %d", trial, len(node.Suppressed), maxSup)
		}
		counts := map[string]int{}
		for _, r := range node.Rows {
			counts[strings.Join(r, "|")]++
		}
		for key, c := range counts {
			if c < k {
				t.Fatalf("trial %d: class %q has %d < k rows", trial, key, c)
			}
		}
	}
}

func colNames(m int) []string {
	out := make([]string, m)
	for j := range out {
		out[j] = "c" + itoa(j)
	}
	return out
}

func val(j, v int) string { return "v" + itoa(j) + "_" + itoa(v) }

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + itoa(n%10)
}
