// Package lattice implements full-domain generalization — the original
// k-anonymity mechanism of Samarati & Sweeney ([10] in the paper, the
// model behind the paper's §1 example). Every value of attribute j is
// generalized to the same level ℓ_j of that attribute's hierarchy; a
// release is a node (ℓ_1, …, ℓ_m) of the product lattice. The goal is a
// minimal-height node whose projection is k-anonymous, optionally after
// fully suppressing at most maxSup outlier rows.
//
// The search exploits generalization monotonicity: if a node is
// feasible, so is every node above it. Samarati's algorithm binary
// searches on total height; this implementation enumerates nodes in
// height order with early exit (equivalent result, simpler, and it can
// return *all* minimal-height solutions), which is comfortably fast for
// the m ≤ 10 quasi-identifier counts the model is used with.
package lattice

import (
	"fmt"
	"sort"

	"kanon/internal/generalize"
	"kanon/internal/relation"
)

// Node is one lattice point: a generalization level per column.
type Node struct {
	// Levels[j] is how many hierarchy edges column j's values climb.
	Levels []int
	// Height is the sum of levels.
	Height int
	// Suppressed lists the row indices removed as outliers (rows whose
	// equivalence class stayed below k at this node).
	Suppressed []int
	// Rows is the generalized release (suppressed rows excluded),
	// parallel to Kept.
	Rows [][]string
	// Kept lists the surviving original row indices, parallel to Rows.
	Kept []int
}

// Search finds the minimal-height feasible node(s). It returns the
// lexicographically smallest level vector among them (a deterministic
// representative) and the full list of minimal solutions' level
// vectors. maxSup bounds how many rows may be dropped as outliers.
func Search(t *relation.Table, scheme generalize.Scheme, k, maxSup int) (*Node, [][]int, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("lattice: k = %d < 1", k)
	}
	if t.Len() == 0 {
		return nil, nil, fmt.Errorf("lattice: empty table")
	}
	if len(scheme) != t.Degree() {
		return nil, nil, fmt.Errorf("lattice: scheme has %d hierarchies for degree %d", len(scheme), t.Degree())
	}
	if maxSup < 0 {
		maxSup = 0
	}
	m := t.Degree()

	// Per column: the generalization chain of every row value, bottom-up.
	// chains[j][i] = path from row i's value at column j to the root.
	chains := make([][][]string, m)
	maxLevel := make([]int, m)
	for j := 0; j < m; j++ {
		h := scheme[j]
		if h == nil {
			h = generalize.Suppression()
		}
		chains[j] = make([][]string, t.Len())
		for i := 0; i < t.Len(); i++ {
			v := t.Schema().Attribute(j).Value(t.Row(i)[j])
			chains[j][i] = chainOf(h, v)
			if l := len(chains[j][i]) - 1; l > maxLevel[j] {
				maxLevel[j] = l
			}
		}
	}

	// Enumerate level vectors in height order.
	totalMax := 0
	for _, l := range maxLevel {
		totalMax += l
	}
	levels := make([]int, m)
	var minimal [][]int
	for height := 0; height <= totalMax; height++ {
		minimal = minimal[:0]
		enumerate(levels, 0, height, maxLevel, func() {
			if feasible(t, chains, levels, k, maxSup) {
				minimal = append(minimal, append([]int(nil), levels...))
			}
		})
		if len(minimal) > 0 {
			sort.Slice(minimal, func(a, b int) bool {
				for j := range minimal[a] {
					if minimal[a][j] != minimal[b][j] {
						return minimal[a][j] < minimal[b][j]
					}
				}
				return false
			})
			node := materialize(t, chains, minimal[0], k)
			return node, minimal, nil
		}
	}
	// The all-root node makes every row identical, so with n ≥ k this
	// is unreachable; n < k needs full suppression of everything.
	if t.Len() <= maxSup {
		node := &Node{Levels: make([]int, m), Suppressed: allRows(t.Len())}
		return node, [][]int{node.Levels}, nil
	}
	return nil, nil, fmt.Errorf("lattice: no feasible node (n = %d < k = %d and maxSup = %d)", t.Len(), k, maxSup)
}

func allRows(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// chainOf is the hierarchy chain from value to root.
func chainOf(h *generalize.Hierarchy, value string) []string {
	return h.Chain(value)
}

// enumerate calls fn for every assignment of levels[j] ∈ [0, maxLevel[j]]
// with Σ levels = height.
func enumerate(levels []int, j, remaining int, maxLevel []int, fn func()) {
	if j == len(levels) {
		if remaining == 0 {
			fn()
		}
		return
	}
	// Prune: the remaining columns cannot absorb more than their max.
	rest := 0
	for jj := j; jj < len(maxLevel); jj++ {
		rest += maxLevel[jj]
	}
	if remaining > rest {
		return
	}
	for l := 0; l <= maxLevel[j] && l <= remaining; l++ {
		levels[j] = l
		enumerate(levels, j+1, remaining-l, maxLevel, fn)
	}
	levels[j] = 0
}

// labelAt returns row i's column-j label generalized to the given level
// (clamped to the value's own chain length).
func labelAt(chains [][][]string, i, j, level int) string {
	c := chains[j][i]
	if level >= len(c) {
		return c[len(c)-1]
	}
	return c[level]
}

// feasible reports whether the node k-anonymizes the table after
// suppressing at most maxSup violating rows.
func feasible(t *relation.Table, chains [][][]string, levels []int, k, maxSup int) bool {
	counts := make(map[string]int, t.Len())
	keys := make([]string, t.Len())
	for i := 0; i < t.Len(); i++ {
		key := rowKey(chains, i, levels)
		keys[i] = key
		counts[key]++
	}
	bad := 0
	for _, key := range keys {
		if counts[key] < k {
			bad++
			if bad > maxSup {
				return false
			}
		}
	}
	return true
}

func rowKey(chains [][][]string, i int, levels []int) string {
	out := ""
	for j, l := range levels {
		out += labelAt(chains, i, j, l) + "\x00"
	}
	return out
}

// materialize builds the released table for a feasible node.
func materialize(t *relation.Table, chains [][][]string, levels []int, k int) *Node {
	counts := make(map[string]int, t.Len())
	keys := make([]string, t.Len())
	for i := 0; i < t.Len(); i++ {
		keys[i] = rowKey(chains, i, levels)
		counts[keys[i]]++
	}
	node := &Node{Levels: append([]int(nil), levels...)}
	for _, l := range levels {
		node.Height += l
	}
	for i := 0; i < t.Len(); i++ {
		if counts[keys[i]] < k {
			node.Suppressed = append(node.Suppressed, i)
			continue
		}
		row := make([]string, len(levels))
		for j, l := range levels {
			row[j] = labelAt(chains, i, j, l)
		}
		node.Rows = append(node.Rows, row)
		node.Kept = append(node.Kept, i)
	}
	return node
}
