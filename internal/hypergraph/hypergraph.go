// Package hypergraph implements k-uniform hypergraphs and an exact
// perfect-matching decision procedure. The paper's hardness results
// (Theorems 3.1 and 3.2) reduce from k-Dimensional Perfect Matching:
// given a k-uniform hypergraph H = (U, E), decide whether some n/k
// hyperedges cover every vertex exactly once. This package supplies the
// reduction's source problem and the ground truth the reduction
// experiments compare against.
package hypergraph

import (
	"fmt"
	"sort"
)

// Graph is a k-uniform hypergraph on vertices 0..N−1. Edges are sorted
// vertex slices of length exactly K.
type Graph struct {
	N     int
	K     int
	Edges [][]int
}

// New returns an empty k-uniform hypergraph on n vertices. It panics if
// k < 2 or n < 0 (programmer error, not input error).
func New(n, k int) *Graph {
	if k < 2 {
		panic(fmt.Sprintf("hypergraph: uniformity k = %d < 2", k))
	}
	if n < 0 {
		panic(fmt.Sprintf("hypergraph: negative vertex count %d", n))
	}
	return &Graph{N: n, K: k}
}

// AddEdge adds a hyperedge over the given vertices. It returns an error
// if the edge has the wrong arity, repeats a vertex, references a vertex
// out of range, or duplicates an existing edge (the paper assumes H is
// simple).
func (g *Graph) AddEdge(vertices ...int) error {
	if len(vertices) != g.K {
		return fmt.Errorf("hypergraph: edge arity %d, want %d", len(vertices), g.K)
	}
	e := append([]int(nil), vertices...)
	sort.Ints(e)
	for i, v := range e {
		if v < 0 || v >= g.N {
			return fmt.Errorf("hypergraph: vertex %d out of range [0,%d)", v, g.N)
		}
		if i > 0 && e[i-1] == v {
			return fmt.Errorf("hypergraph: repeated vertex %d in edge", v)
		}
	}
	for _, ex := range g.Edges {
		if equalEdge(ex, e) {
			return fmt.Errorf("hypergraph: duplicate edge %v", e)
		}
	}
	g.Edges = append(g.Edges, e)
	return nil
}

// MustAddEdge is AddEdge that panics on error; for tests and fixed
// constructions.
func (g *Graph) MustAddEdge(vertices ...int) {
	if err := g.AddEdge(vertices...); err != nil {
		panic(err)
	}
}

func equalEdge(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// M reports the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// IsPerfectMatching reports whether the edge-index set S is a perfect
// matching: every vertex covered exactly once.
func (g *Graph) IsPerfectMatching(S []int) bool {
	if len(S)*g.K != g.N {
		return false
	}
	covered := make([]bool, g.N)
	for _, ei := range S {
		if ei < 0 || ei >= len(g.Edges) {
			return false
		}
		for _, v := range g.Edges[ei] {
			if covered[v] {
				return false
			}
			covered[v] = true
		}
	}
	return true
}

// PerfectMatching searches for a perfect matching and returns the edge
// indices of one, or nil if none exists. The search is exact: a
// backtracking cover of the lowest uncovered vertex, memoized on the
// covered-vertex bitmask for n ≤ 64. k-Dimensional Matching is NP-hard
// for k ≥ 3, so exponential worst-case time is expected; instances in
// the experiments keep n small enough (≤ ~30) for this to be instant.
func (g *Graph) PerfectMatching() []int {
	if g.N == 0 {
		return []int{}
	}
	if g.N%g.K != 0 || g.N > 64 {
		if g.N%g.K != 0 {
			return nil
		}
		// Fall back to unmemoized search for very large vertex sets;
		// not exercised by the experiments.
		return g.matchNoMemo(make([]bool, g.N), nil)
	}
	// byVertex[v] lists edges containing v.
	byVertex := make([][]int, g.N)
	for ei, e := range g.Edges {
		for _, v := range e {
			byVertex[v] = append(byVertex[v], ei)
		}
	}
	dead := make(map[uint64]bool)
	var chosen []int
	var rec func(mask uint64) bool
	full := uint64(1)<<uint(g.N) - 1
	if g.N == 64 {
		full = ^uint64(0)
	}
	rec = func(mask uint64) bool {
		if mask == full {
			return true
		}
		if dead[mask] {
			return false
		}
		// Lowest uncovered vertex.
		v := 0
		for mask&(1<<uint(v)) != 0 {
			v++
		}
		for _, ei := range byVertex[v] {
			em := uint64(0)
			ok := true
			for _, w := range g.Edges[ei] {
				b := uint64(1) << uint(w)
				if mask&b != 0 {
					ok = false
					break
				}
				em |= b
			}
			if !ok {
				continue
			}
			chosen = append(chosen, ei)
			if rec(mask | em) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
		}
		dead[mask] = true
		return false
	}
	if rec(0) {
		out := append([]int(nil), chosen...)
		sort.Ints(out)
		return out
	}
	return nil
}

// matchNoMemo is the unmemoized fallback for n > 64.
func (g *Graph) matchNoMemo(covered []bool, chosen []int) []int {
	v := -1
	for i, c := range covered {
		if !c {
			v = i
			break
		}
	}
	if v == -1 {
		out := append([]int(nil), chosen...)
		sort.Ints(out)
		return out
	}
	for ei, e := range g.Edges {
		contains := false
		free := true
		for _, w := range e {
			if w == v {
				contains = true
			}
			if covered[w] {
				free = false
			}
		}
		if !contains || !free {
			continue
		}
		for _, w := range e {
			covered[w] = true
		}
		if out := g.matchNoMemo(covered, append(chosen, ei)); out != nil {
			return out
		}
		for _, w := range e {
			covered[w] = false
		}
	}
	return nil
}

// HasPerfectMatching reports whether a perfect matching exists.
func (g *Graph) HasPerfectMatching() bool { return g.PerfectMatching() != nil }
