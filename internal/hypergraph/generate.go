package hypergraph

import (
	"math/rand"
)

// This file provides deterministic instance generators for the hardness
// experiments (E4, E5). All take an explicit *rand.Rand so corpora are
// reproducible from a seed.

// RandomSimple returns a simple k-uniform hypergraph on n vertices with
// (up to) m distinct random edges. If fewer than m distinct edges exist
// it returns as many as possible.
func RandomSimple(rng *rand.Rand, n, k, m int) *Graph {
	g := New(n, k)
	seen := make(map[string]bool)
	attempts := 0
	for g.M() < m && attempts < 50*m+100 {
		attempts++
		e := samplePerm(rng, n, k)
		key := edgeKey(e)
		if seen[key] {
			continue
		}
		seen[key] = true
		// AddEdge re-validates; errors cannot occur for a fresh sample.
		if err := g.AddEdge(e...); err != nil {
			panic(err)
		}
	}
	return g
}

// RandomWithPlantedMatching returns a simple k-uniform hypergraph on n
// vertices (n divisible by k) containing a planted perfect matching plus
// extra random distinct edges, for a total of (up to) m edges. The
// planted matching pairs consecutive vertex blocks after a random vertex
// permutation, so it is hidden from positional heuristics.
func RandomWithPlantedMatching(rng *rand.Rand, n, k, m int) *Graph {
	if n%k != 0 {
		panic("hypergraph: planted matching needs k | n")
	}
	g := New(n, k)
	seen := make(map[string]bool)
	perm := rng.Perm(n)
	for i := 0; i < n; i += k {
		e := append([]int(nil), perm[i:i+k]...)
		if err := g.AddEdge(e...); err != nil {
			panic(err)
		}
		seen[edgeKey(sortedCopy(e))] = true
	}
	attempts := 0
	for g.M() < m && attempts < 50*m+100 {
		attempts++
		e := samplePerm(rng, n, k)
		key := edgeKey(e)
		if seen[key] {
			continue
		}
		seen[key] = true
		if err := g.AddEdge(e...); err != nil {
			panic(err)
		}
	}
	return g
}

// samplePerm samples k distinct vertices from 0..n−1, sorted.
func samplePerm(rng *rand.Rand, n, k int) []int {
	p := rng.Perm(n)[:k]
	return sortedCopy(p)
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func edgeKey(sorted []int) string {
	b := make([]byte, 0, len(sorted)*2)
	for _, v := range sorted {
		b = append(b, byte(v), byte(v>>8))
	}
	return string(b)
}
