package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(6, 3)
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := g.AddEdge(0, 1, 1); err == nil {
		t.Error("repeated vertex accepted")
	}
	if err := g.AddEdge(0, 1, 6); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if err := g.AddEdge(2, 1, 0); err == nil {
		t.Error("duplicate edge (reordered) accepted")
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func TestNewPanics(t *testing.T) {
	for _, c := range []struct{ n, k int }{{5, 1}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.n, c.k)
				}
			}()
			New(c.n, c.k)
		}()
	}
}

func TestIsPerfectMatching(t *testing.T) {
	g := New(6, 3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(3, 4, 5)
	g.MustAddEdge(0, 3, 4)
	if !g.IsPerfectMatching([]int{0, 1}) {
		t.Error("edges {0,1} form a perfect matching")
	}
	if g.IsPerfectMatching([]int{0, 2}) {
		t.Error("edges {0,2} overlap at vertex 0")
	}
	if g.IsPerfectMatching([]int{0}) {
		t.Error("single edge cannot cover 6 vertices")
	}
	if g.IsPerfectMatching([]int{0, 99}) {
		t.Error("out-of-range edge index accepted")
	}
}

func TestPerfectMatchingPositive(t *testing.T) {
	g := New(9, 3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(3, 4, 5)
	g.MustAddEdge(6, 7, 8)
	g.MustAddEdge(0, 3, 6) // distractors
	g.MustAddEdge(1, 4, 7)
	m := g.PerfectMatching()
	if m == nil {
		t.Fatal("matching exists but was not found")
	}
	if !g.IsPerfectMatching(m) {
		t.Fatalf("returned non-matching %v", m)
	}
}

func TestPerfectMatchingNegative(t *testing.T) {
	// Every edge uses vertex 0, so at most one edge can be chosen and
	// 6 vertices cannot be covered.
	g := New(6, 3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(0, 3, 4)
	g.MustAddEdge(0, 4, 5)
	if g.HasPerfectMatching() {
		t.Error("found matching in matchless graph")
	}
}

func TestPerfectMatchingIndivisible(t *testing.T) {
	g := New(7, 3)
	g.MustAddEdge(0, 1, 2)
	if g.PerfectMatching() != nil {
		t.Error("7 vertices cannot be perfectly matched by 3-edges")
	}
}

func TestPerfectMatchingEmptyGraph(t *testing.T) {
	g := New(0, 3)
	m := g.PerfectMatching()
	if m == nil || len(m) != 0 {
		t.Errorf("empty graph should have the empty matching, got %v", m)
	}
}

func TestPerfectMatchingNoEdges(t *testing.T) {
	g := New(3, 3)
	if g.HasPerfectMatching() {
		t.Error("edgeless graph cannot have a matching")
	}
}

// TestPlantedAlwaysMatched: the planted generator must always produce a
// graph with a perfect matching, and the solver must find one.
func TestPlantedAlwaysMatched(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		blocks := 1 + rng.Intn(4)
		n := k * blocks
		m := blocks + rng.Intn(10)
		g := RandomWithPlantedMatching(rng, n, k, m)
		match := g.PerfectMatching()
		return match != nil && g.IsPerfectMatching(match)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSolverAgreesWithBruteForce cross-checks the memoized solver
// against exhaustive subset search on tiny instances.
func TestSolverAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(2)
		n := k * (1 + rng.Intn(3))
		m := 1 + rng.Intn(8)
		g := RandomSimple(rng, n, k, m)
		want := bruteForceHasMatching(g)
		if got := g.HasPerfectMatching(); got != want {
			t.Fatalf("trial %d: solver=%v brute=%v on %+v", trial, got, want, g)
		}
	}
}

func bruteForceHasMatching(g *Graph) bool {
	need := g.N / g.K
	if g.N%g.K != 0 {
		return false
	}
	idx := make([]int, need)
	var rec func(pos, from int) bool
	rec = func(pos, from int) bool {
		if pos == need {
			return g.IsPerfectMatching(idx)
		}
		for e := from; e < g.M(); e++ {
			idx[pos] = e
			if rec(pos+1, e+1) {
				return true
			}
		}
		return false
	}
	if need == 0 {
		return true
	}
	return rec(0, 0)
}

func TestRandomSimpleProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomSimple(rng, 10, 3, 15)
	if g.M() > 15 {
		t.Errorf("M = %d > requested 15", g.M())
	}
	seen := map[string]bool{}
	for _, e := range g.Edges {
		if len(e) != 3 {
			t.Errorf("edge arity %d", len(e))
		}
		k := edgeKey(e)
		if seen[k] {
			t.Errorf("duplicate edge %v", e)
		}
		seen[k] = true
	}
}

func TestRandomSimpleSaturation(t *testing.T) {
	// Only C(3,2) = 3 distinct edges exist; asking for 10 must not loop
	// forever and must return at most 3.
	rng := rand.New(rand.NewSource(5))
	g := RandomSimple(rng, 3, 2, 10)
	if g.M() > 3 {
		t.Errorf("M = %d, want ≤ 3", g.M())
	}
}

func TestPlantedNeedsDivisibility(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RandomWithPlantedMatching accepted n not divisible by k")
		}
	}()
	RandomWithPlantedMatching(rand.New(rand.NewSource(1)), 7, 3, 5)
}

func TestDeterministicGeneration(t *testing.T) {
	a := RandomSimple(rand.New(rand.NewSource(99)), 12, 3, 20)
	b := RandomSimple(rand.New(rand.NewSource(99)), 12, 3, 20)
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts %d vs %d", a.M(), b.M())
	}
	for i := range a.Edges {
		if !equalEdge(a.Edges[i], b.Edges[i]) {
			t.Fatalf("same seed, different edge %d: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
}

func TestMustAddEdgePanics(t *testing.T) {
	g := New(3, 2)
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge did not panic on invalid edge")
		}
	}()
	g.MustAddEdge(0, 0)
}

// TestLargeVertexFallback exercises the unmemoized search used when the
// vertex count exceeds the 64-bit mask.
func TestLargeVertexFallback(t *testing.T) {
	n := 66
	g := New(n, 3)
	// Planted matching over consecutive triples plus a few distractors.
	for v := 0; v < n; v += 3 {
		g.MustAddEdge(v, v+1, v+2)
	}
	g.MustAddEdge(0, 4, 8)
	g.MustAddEdge(1, 5, 9)
	m := g.PerfectMatching()
	if m == nil || !g.IsPerfectMatching(m) {
		t.Fatalf("fallback solver failed on 66-vertex planted instance: %v", m)
	}
	// Matchless large instance: every edge shares vertex 0 except the
	// planted first triple removed.
	g2 := New(66, 3)
	g2.MustAddEdge(0, 1, 2)
	g2.MustAddEdge(0, 3, 4)
	if g2.HasPerfectMatching() {
		t.Error("fallback found matching in matchless 66-vertex graph")
	}
}
