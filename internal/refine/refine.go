// Package refine post-optimizes a k-anonymity partition by local
// search. The paper's greedy algorithms optimize the diameter-sum
// surrogate (Lemma 4.1 ties it to the star count only up to a Θ(k)
// factor), so their output routinely leaves star-count slack on the
// table; this package closes part of that gap with three cost-direct
// moves that preserve feasibility:
//
//   - relocate: move a row from a group with > k members to another
//     group, when that lowers the total star count;
//   - swap: exchange two rows between groups;
//   - dissolve: disband a group with ≤ 2k−1 members, distributing its
//     rows over other groups (only when every destination keeps the
//     move profitable in aggregate).
//
// Local search is the natural "can the constant be improved in
// practice?" companion to §5's open question; experiment E10 measures
// what it buys on each algorithm's output. The refinement never
// increases cost and never breaks k-anonymity, so it is safe to apply
// unconditionally; the approximation guarantees of the input survive.
package refine

import (
	"context"
	"fmt"

	"kanon/internal/core"
	"kanon/internal/relation"
)

// Options bounds the search.
type Options struct {
	// Ctx cancels or bounds the search: it is polled at every round
	// boundary and every ~1024 candidate-move evaluations, so even a
	// single O(n²) move scan aborts promptly. A cancelled call returns
	// an error wrapping ctx.Err(); the partition is left in a valid
	// (every move preserves feasibility) but partially refined state.
	// Nil means context.Background().
	Ctx context.Context
	// MaxRounds caps full passes over all rows (default 8).
	MaxRounds int
	// NoDissolve disables the group-dissolving move.
	NoDissolve bool
}

// pollEvery is how many candidate evaluations pass between context
// polls; a power of two so the check is a mask, not a division.
const pollEvery = 1024

// Stats reports what the search did.
type Stats struct {
	Rounds     int
	Relocates  int
	Swaps      int
	Dissolves  int
	CostBefore int
	CostAfter  int
}

// Partition improves p in place and returns search statistics. The
// input must be a valid partition with groups of size ≥ k; group sizes
// may grow past 2k−1 (that cap is an analysis device, not a feasibility
// constraint — larger uniform groups are fine and sometimes cheaper).
func Partition(t *relation.Table, p *core.Partition, k int, opt *Options) (*Stats, error) {
	if opt == nil {
		opt = &Options{}
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 8
	}
	// poll amortizes the context check over pollEvery candidate
	// evaluations (each one core.Anon call, the scan's unit of work).
	evals := 0
	poll := func() error {
		evals++
		if evals&(pollEvery-1) != 0 {
			return nil
		}
		return ctx.Err()
	}
	if err := p.Validate(t.Len(), k, 0); err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}

	groups := p.Groups
	cost := make([]int, len(groups))
	for gi, g := range groups {
		cost[gi] = core.Anon(t, g)
	}
	total := 0
	for _, c := range cost {
		total += c
	}
	st := &Stats{CostBefore: total}

	owner := make([]int, t.Len())
	for gi, g := range groups {
		for _, i := range g {
			owner[i] = gi
		}
	}

	// withRow / withoutRow build candidate groups without mutating.
	withRow := func(g []int, i int) []int {
		out := make([]int, 0, len(g)+1)
		out = append(out, g...)
		return append(out, i)
	}
	withoutRow := func(g []int, i int) []int {
		out := make([]int, 0, len(g)-1)
		for _, x := range g {
			if x != i {
				out = append(out, x)
			}
		}
		return out
	}

	improved := true
	for st.Rounds = 0; improved && st.Rounds < maxRounds; st.Rounds++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("refine: %w", err)
		}
		improved = false

		// Relocate pass.
		for i := 0; i < t.Len(); i++ {
			from := owner[i]
			if len(groups[from]) <= k {
				continue
			}
			shrunk := withoutRow(groups[from], i)
			shrunkCost := core.Anon(t, shrunk)
			bestG, bestDelta := -1, 0
			var bestGrown []int
			var bestGrownCost int
			for gi := range groups {
				if gi == from {
					continue
				}
				if err := poll(); err != nil {
					return nil, fmt.Errorf("refine: %w", err)
				}
				grown := withRow(groups[gi], i)
				grownCost := core.Anon(t, grown)
				delta := (shrunkCost + grownCost) - (cost[from] + cost[gi])
				if delta < bestDelta {
					bestG, bestDelta = gi, delta
					bestGrown, bestGrownCost = grown, grownCost
				}
			}
			if bestG >= 0 {
				groups[from] = shrunk
				cost[from] = shrunkCost
				groups[bestG] = bestGrown
				cost[bestG] = bestGrownCost
				owner[i] = bestG
				total += bestDelta
				st.Relocates++
				improved = true
			}
		}

		// Swap pass.
		for i := 0; i < t.Len(); i++ {
			gi := owner[i]
			for j := i + 1; j < t.Len(); j++ {
				gj := owner[j]
				if gi == gj {
					continue
				}
				if err := poll(); err != nil {
					return nil, fmt.Errorf("refine: %w", err)
				}
				newI := withRow(withoutRow(groups[gi], i), j)
				newJ := withRow(withoutRow(groups[gj], j), i)
				ci, cj := core.Anon(t, newI), core.Anon(t, newJ)
				delta := (ci + cj) - (cost[gi] + cost[gj])
				if delta < 0 {
					groups[gi], groups[gj] = newI, newJ
					cost[gi], cost[gj] = ci, cj
					owner[i], owner[j] = gj, gi
					total += delta
					st.Swaps++
					improved = true
					gi = owner[i]
				}
			}
		}

		// Dissolve pass: disband a whole group into the others.
		if !opt.NoDissolve {
			for gi := 0; gi < len(groups); gi++ {
				if len(groups) == 1 {
					break
				}
				g := groups[gi]
				if len(g) > 2*k-1 {
					continue // large groups rarely profit and blow up the scan
				}
				// Tentatively place each row in the group where its
				// marginal cost (including earlier tentative joiners)
				// is lowest.
				extra := map[int][]int{} // dst → rows joining it
				feasible := true
				for _, row := range g {
					bestDst, bestMarginal := -1, 0
					for gj := range groups {
						if gj == gi {
							continue
						}
						if err := poll(); err != nil {
							return nil, fmt.Errorf("refine: %w", err)
						}
						cand := withRow(append(append([]int(nil), groups[gj]...), extra[gj]...), row)
						marginal := core.Anon(t, cand) - cost[gj]
						if bestDst == -1 || marginal < bestMarginal {
							bestDst, bestMarginal = gj, marginal
						}
					}
					if bestDst == -1 {
						feasible = false
						break
					}
					extra[bestDst] = append(extra[bestDst], row)
				}
				if !feasible {
					continue
				}
				// Evaluate the aggregate delta with all placements applied.
				newCosts := map[int]int{}
				for dst, rows := range extra {
					cand := append(append([]int(nil), groups[dst]...), rows...)
					newCosts[dst] = core.Anon(t, cand)
				}
				delta := -cost[gi]
				for dst, nc := range newCosts {
					delta += nc - cost[dst]
				}
				if delta >= 0 {
					continue
				}
				for dst, rows := range extra {
					// Copy before growing: a group may share backing
					// storage with a sibling (e.g. after an oversize
					// split), and in-place append would clobber it.
					groups[dst] = append(append([]int(nil), groups[dst]...), rows...)
					cost[dst] = newCosts[dst]
					for _, r := range rows {
						owner[r] = dst
					}
				}
				groups = append(groups[:gi], groups[gi+1:]...)
				cost = append(cost[:gi], cost[gi+1:]...)
				for r := range owner {
					if owner[r] > gi {
						owner[r]--
					}
				}
				total += delta
				st.Dissolves++
				improved = true
				gi--
			}
		}
	}

	p.Groups = groups
	st.CostAfter = total
	if err := p.Validate(t.Len(), k, 0); err != nil {
		return nil, fmt.Errorf("refine: internal: %w", err)
	}
	if got := p.Cost(t); got != total {
		return nil, fmt.Errorf("refine: internal: incremental cost %d != recomputed %d", total, got)
	}
	return st, nil
}
