package refine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"kanon/internal/algo"
	"kanon/internal/dataset"
)

// countCtx is a context whose Err() flips to Canceled after a fixed
// number of polls — a deterministic probe that the search's amortized
// poll actually fires mid-pass, independent of wall-clock timing.
type countCtx struct {
	context.Context
	remaining int
}

func (c *countCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestCancelBeforeStart: an already-cancelled context returns
// immediately with an error wrapping ctx.Err().
func TestCancelBeforeStart(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tab := dataset.Census(rng, 80, 5)
	res, err := algo.GreedyBall(tab, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Partition(tab, res.Partition, 3, &Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelMidSearch: the poll inside the O(n²) move scans observes
// cancellation between round boundaries, so even a single long pass
// aborts; the partition left behind must still be valid.
func TestCancelMidSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := dataset.Census(rng, 300, 6)
	res, err := algo.GreedyBall(tab, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Survive a handful of polls, then cancel: the search dies inside a
	// pass, not at a round boundary.
	ctx := &countCtx{Context: context.Background(), remaining: 3}
	_, err = Partition(tab, res.Partition, 3, &Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := res.Partition.Validate(tab.Len(), 3, 0); err != nil {
		t.Fatalf("cancelled search left an invalid partition: %v", err)
	}
}

// TestCancelSettlesFast is the regression for the cancellation gap:
// cancelling mid-refine on a large instance must settle well under the
// 2-second bound, where the un-polled search would have run its scans
// to completion.
func TestCancelSettlesFast(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tab := dataset.Census(rng, 2000, 8)
	res, err := algo.GreedyBall(tab, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Partition(tab, res.Partition, 3, &Options{Ctx: ctx})
		done <- err
	}()
	// Let the search get into its first pass, then pull the plug.
	time.Sleep(50 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
		if settle := time.Since(start); settle > 2*time.Second {
			t.Fatalf("cancellation settled in %v, want < 2s", settle)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("refine did not settle within 2s of cancellation")
	}
}
