package refine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kanon/internal/algo"
	"kanon/internal/baseline"
	"kanon/internal/core"
	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/relation"
)

func TestRelocateFixesObviousMistake(t *testing.T) {
	// Rows 0,1,2 identical; rows 3,4,5 identical. A partition that
	// crosses the clusters is strictly improvable.
	tab := relation.MustFromVectors([][]int{
		{1, 1}, {1, 1}, {1, 1}, {2, 2}, {2, 2}, {2, 2},
	})
	p := &core.Partition{Groups: [][]int{{0, 1, 3}, {2, 4, 5}}}
	before := p.Cost(tab)
	st, err := Partition(tab, p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CostBefore != before {
		t.Errorf("CostBefore = %d, want %d", st.CostBefore, before)
	}
	if st.CostAfter != 0 {
		t.Errorf("CostAfter = %d, want 0 (clusters are separable)", st.CostAfter)
	}
	if st.Relocates+st.Swaps+st.Dissolves == 0 {
		t.Error("no moves recorded despite improvement")
	}
}

func TestSwapFixesCrossedPairs(t *testing.T) {
	// Two groups of exactly k=2 with crossed membership: only a swap
	// (not a relocate, which would break the size floor) can fix it.
	tab := relation.MustFromVectors([][]int{
		{1, 1}, {2, 2}, {1, 1}, {2, 2},
	})
	p := &core.Partition{Groups: [][]int{{0, 1}, {2, 3}}}
	st, err := Partition(tab, p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CostAfter != 0 {
		t.Errorf("CostAfter = %d, want 0", st.CostAfter)
	}
	if st.Swaps == 0 {
		t.Error("expected at least one swap")
	}
}

func TestDissolveMergesUselessGroup(t *testing.T) {
	// Three groups; the middle one's rows each belong with one of the
	// outer clusters. Relocation alone cannot empty it (size floor k),
	// dissolving can.
	tab := relation.MustFromVectors([][]int{
		{1, 1}, {1, 1}, // cluster A
		{1, 1}, {2, 2}, // stragglers
		{2, 2}, {2, 2}, // cluster B
	})
	p := &core.Partition{Groups: [][]int{{0, 1}, {2, 3}, {4, 5}}}
	st, err := Partition(tab, p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CostAfter != 0 {
		t.Errorf("CostAfter = %d, want 0 (got groups %v)", st.CostAfter, p.Groups)
	}
	if st.Dissolves == 0 {
		t.Error("expected a dissolve")
	}
	if len(p.Groups) != 2 {
		t.Errorf("groups = %v, want 2 groups", p.Groups)
	}
}

func TestNoDissolveOption(t *testing.T) {
	tab := relation.MustFromVectors([][]int{
		{1, 1}, {1, 1}, {1, 1}, {2, 2}, {2, 2}, {2, 2},
	})
	p := &core.Partition{Groups: [][]int{{0, 1, 2}, {3, 4, 5}}}
	st, err := Partition(tab, p, 3, &Options{NoDissolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Dissolves != 0 {
		t.Error("dissolve ran despite NoDissolve")
	}
	if st.CostAfter != 0 {
		t.Errorf("CostAfter = %d", st.CostAfter)
	}
}

func TestRejectsInvalidPartition(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1}, {2}, {3}})
	p := &core.Partition{Groups: [][]int{{0}, {1, 2}}}
	if _, err := Partition(tab, p, 2, nil); err == nil {
		t.Error("accepted partition with undersized group")
	}
}

// TestNeverWorseAndAlwaysValid: on random partitions of random tables,
// refinement never increases cost, never violates validity, and its
// incremental accounting matches a recomputation.
func TestNeverWorseAndAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(2)
		n := 2*k + rng.Intn(14)
		tab := dataset.Uniform(rng, n, 2+rng.Intn(5), 2+rng.Intn(2))
		// Random valid partition: shuffled chunks of size k..2k−1.
		perm := rng.Perm(n)
		var groups [][]int
		for len(perm) > 0 {
			sz := k + rng.Intn(k)
			if sz > len(perm) || len(perm)-sz < k {
				sz = len(perm)
			}
			groups = append(groups, append([]int(nil), perm[:sz]...))
			perm = perm[sz:]
		}
		p := &core.Partition{Groups: groups}
		before := p.Cost(tab)
		st, err := Partition(tab, p, k, nil)
		if err != nil {
			return false
		}
		if st.CostAfter > before {
			return false
		}
		if err := p.Validate(n, k, 0); err != nil {
			return false
		}
		return p.Cost(tab) == st.CostAfter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestNeverBelowOPT: refinement of any feasible start stays ≥ OPT.
func TestNeverBelowOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		k := 2 + trial%2
		n := 8 + rng.Intn(6)
		tab := dataset.Uniform(rng, n, 4, 2)
		opt, err := exact.OPT(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		r, err := baseline.RandomChunks(tab, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Partition(tab, r.Partition, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.CostAfter < opt {
			t.Fatalf("trial %d: refined cost %d below OPT %d", trial, st.CostAfter, opt)
		}
	}
}

// TestImprovesGreedyBall: the headline use — refinement should recover
// a meaningful fraction of the ball greedy's slack on census-like data.
func TestImprovesGreedyBall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	totalBefore, totalAfter := 0, 0
	for trial := 0; trial < 5; trial++ {
		tab := dataset.Census(rng, 80, 6)
		r, err := algo.GreedyBall(tab, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Partition(tab, r.Partition, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		totalBefore += st.CostBefore
		totalAfter += st.CostAfter
	}
	if totalAfter > totalBefore {
		t.Fatalf("refinement increased aggregate cost %d → %d", totalBefore, totalAfter)
	}
	if totalAfter == totalBefore {
		t.Log("refinement found no slack on this corpus (unusual but legal)")
	} else {
		t.Logf("refinement: %d → %d stars (−%.1f%%)", totalBefore, totalAfter,
			100*float64(totalBefore-totalAfter)/float64(totalBefore))
	}
}

func TestMaxRoundsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := dataset.Uniform(rng, 20, 4, 2)
	r, err := baseline.RandomChunks(tab, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Partition(tab, r.Partition, 2, &Options{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds > 1 {
		t.Errorf("Rounds = %d, want ≤ 1", st.Rounds)
	}
}

// TestDissolveWithAliasedChunks is a regression test: SplitOversize
// used to return chunks sharing one backing array, and the dissolve
// pass's in-place append then clobbered a sibling group, losing rows.
// Reproduce the shape: an oversize group split into aliased chunks,
// followed by refinement that dissolves one of them.
func TestDissolveWithAliasedChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		tab := dataset.Census(rng, 120, 6)
		k := 2 + trial%4
		r, err := algo.GreedyBall(tab, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Partition(tab, r.Partition, k, nil); err != nil {
			t.Fatalf("trial %d (k=%d): %v", trial, k, err)
		}
		if err := r.Partition.Validate(tab.Len(), k, 0); err != nil {
			t.Fatalf("trial %d (k=%d): corrupted partition: %v", trial, k, err)
		}
	}
}
