// Package solver is the registry every anonymization family plugs
// into: a name → solver map shared by the public facade, the kanond
// job server, kanon-bench, and the fuzzers. Each family package
// (internal/algo, internal/pattern, internal/exact, internal/baseline,
// internal/hierarchy) registers its solvers from an init function, so
// adding a family is a leaf change — one Register call — instead of a
// switch-statement edit in every binary.
//
// A solver consumes a Request (the table, k, and the cross-family
// knobs) and produces either a partition of row indices — the
// suppression families, whose groups the facade suppresses to
// uniformity — or a directly rendered release (the hierarchy family,
// whose output labels live outside the input alphabet).
package solver

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"kanon/internal/core"
	"kanon/internal/metric"
	"kanon/internal/obs"
	"kanon/internal/relation"
)

// Request carries one anonymization call's inputs across the registry
// boundary. Families read the knobs they understand and ignore the
// rest; every field beyond Table and K has a usable zero value.
type Request struct {
	// Ctx bounds the run; nil means context.Background().
	Ctx context.Context
	// Table is the input relation.
	Table *relation.Table
	// K is the anonymity parameter.
	K int
	// Seed feeds the randomized baselines' shuffles.
	Seed int64
	// SplitSorted selects the similarity-aware oversize-group split in
	// the greedy families.
	SplitSorted bool
	// TrueDiameterWeights makes the ball family weight candidates by
	// exact diameter instead of the 2·radius bound.
	TrueDiameterWeights bool
	// Workers bounds the parallel hot paths (0 = all CPUs).
	Workers int
	// Kernel selects the distance-kernel backend of the metric-driven
	// families.
	Kernel metric.Choice
	// Weights prices each column's suppressed entries (nil = all 1).
	// Honored by the ball and exact families.
	Weights core.Weights
	// MaxSuppress is the hierarchy family's suppression budget: how
	// many outlier rows a lattice node may drop (fully suppress) and
	// still count as k-anonymous.
	MaxSuppress int
	// Hierarchy is the hierarchy family's generalization spec
	// (*hierarchy.Spec), kept opaque here so the registry does not
	// depend on the family packages it registers. Nil auto-derives a
	// spec from the table.
	Hierarchy any
	// Trace is the parent span the solver's phase spans and counters
	// attach under; nil disables instrumentation.
	Trace *obs.Span
	// Log receives structured run events; nil is silent.
	Log *obs.Events
}

// Context returns the request's context, never nil.
func (r *Request) Context() context.Context {
	if r.Ctx == nil {
		return context.Background()
	}
	return r.Ctx
}

// Result is a solver outcome in one of two shapes. Suppression
// families return a Partition and leave Rows nil: the facade suppresses
// each group to uniformity and prices the stars. Direct-release
// families (hierarchy) return the rendered Rows themselves plus the
// bookkeeping the facade would otherwise compute from the partition.
type Result struct {
	// Partition groups row indices; non-nil for suppression families.
	Partition *core.Partition
	// Rows is the rendered release in input row order; non-nil for
	// direct-release families.
	Rows [][]string
	// Groups lists the release's equivalence classes (direct-release
	// families only; derived from Partition otherwise).
	Groups [][]int
	// Cost is the family's integer objective for a direct release:
	// the number of cells whose released label differs from the input
	// value (a fully suppressed row contributes its whole width).
	Cost int
	// NCP is the normalized certainty penalty of a direct release in
	// [0, 1]; 0 for suppression families.
	NCP float64
	// Suppressed lists rows released as fully suppressed outliers
	// (direct-release families only).
	Suppressed []int
	// Optimal marks provably optimal output (the exact family).
	Optimal bool
}

// Func runs one registered solver.
type Func func(req Request) (*Result, error)

// Info describes one registered solver.
type Info struct {
	// Name is the short CLI/API name ("ball", "exact", "hierarchy", …).
	Name string
	// Run executes the solver.
	Run Func
	// Optimal marks families whose output is provably optimal, so the
	// facade can skip the refine post-pass and stamp the result.
	Optimal bool
	// Description is a one-line summary for usage strings.
	Description string
}

var (
	mu       sync.RWMutex
	registry = map[string]Info{}
)

// Register adds a solver under its name. It panics on an empty name,
// a nil Run, or a duplicate registration — all programmer errors that
// should fail at init, loudly.
func Register(info Info) {
	if info.Name == "" {
		panic("solver: Register with empty name")
	}
	if info.Run == nil {
		panic("solver: Register " + info.Name + " with nil Run")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic("solver: duplicate Register " + info.Name)
	}
	registry[info.Name] = info
}

// Lookup returns the solver registered under name.
func Lookup(name string) (Info, bool) {
	mu.RLock()
	defer mu.RUnlock()
	info, ok := registry[name]
	return info, ok
}

// Names returns every registered solver name, sorted — the canonical
// list for usage strings and "unknown algorithm" errors.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ErrUnknown builds the canonical unknown-solver error, listing the
// registered names so a typo'd -algo or ?algo= tells the caller what
// would have worked.
func ErrUnknown(name string) error {
	return fmt.Errorf("unknown algorithm %q (registered: %s)", name, strings.Join(Names(), ", "))
}
