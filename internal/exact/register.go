package exact

import "kanon/internal/solver"

func init() {
	solver.Register(solver.Info{
		Name:        "exact",
		Description: "provably optimal bitmask DP (n ≤ 24)",
		Optimal:     true,
		Run: func(req solver.Request) (*solver.Result, error) {
			var r *Result
			var err error
			if req.Weights != nil {
				r, err = SolveWeightedCtx(req.Context(), req.Table, req.K, req.Weights, req.Trace)
			} else {
				r, err = SolveCtx(req.Context(), req.Table, req.K, Stars, req.Trace)
			}
			if err != nil {
				return nil, err
			}
			return &solver.Result{Partition: r.Partition, Optimal: true}, nil
		},
	})
}
