// Package exact computes ground-truth optima for the experiments: the
// optimal suppression k-anonymization OPT(V) (the quantity the paper
// proves NP-hard to compute in general) and the optimal k-minimum
// diameter sum (the intermediate objective of §4.1–4.2).
//
// The workhorse is a bitmask dynamic program over row subsets,
// exponential in n by necessity; the paper's §4.1 wlog — any partition
// may be refined to group sizes in [k, 2k−1] without increasing either
// objective — keeps the transition fan-out polynomial in n for fixed k.
// A complementary branch-and-bound solver handles somewhat larger n on
// structured instances and degrades to an anytime upper bound under a
// node budget.
package exact

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"kanon/internal/core"
	"kanon/internal/metric"
	"kanon/internal/obs"
	"kanon/internal/relation"
)

// MaxDPRows bounds the bitmask DP: 2^n table entries.
const MaxDPRows = 24

// Objective selects what the solvers minimize.
type Objective int

const (
	// Stars minimizes total suppressed entries — the paper's OPT(V).
	Stars Objective = iota
	// DiameterSum minimizes Σ_S d(S) over (k, 2k−1)-partitions — the
	// k-minimum diameter sum problem of §4.1.
	DiameterSum
)

// Result is an exact (or best-found) solution.
type Result struct {
	Partition *core.Partition
	Value     int
	// Optimal is false only for budgeted branch-and-bound runs that
	// exhausted their node budget before closing the gap.
	Optimal bool
	// Nodes counts explored search nodes (branch-and-bound only).
	Nodes int64
}

// Solve computes the optimal value and an optimal (k, 2k−1)-partition by
// dynamic programming over subsets. It errors if n > MaxDPRows or the
// instance is infeasible (n < k).
func Solve(t *relation.Table, k int, obj Objective) (*Result, error) {
	return SolveTraced(t, k, obj, nil)
}

// SolveTraced is Solve with instrumentation under the given parent
// span: an "exact.dp" span around the DP plus counters for candidate
// groups costed (exact.groups_costed) and DP states expanded
// (exact.dp_masks). Tracing never changes the computed optimum.
func SolveTraced(t *relation.Table, k int, obj Objective, sp *obs.Span) (*Result, error) {
	return SolveCtx(context.Background(), t, k, obj, sp)
}

// SolveCtx is SolveTraced with cancellation: the context is polled
// every 4096 DP states (and every 1024 candidate groups during the
// cost precompute), so the exponential solve — the NP-hard step a
// server must be able to bound — aborts promptly when the caller
// cancels or times out. The returned error wraps ctx.Err().
func SolveCtx(ctx context.Context, t *relation.Table, k int, obj Objective, sp *obs.Span) (*Result, error) {
	n := t.Len()
	if k < 1 {
		return nil, fmt.Errorf("exact: k = %d < 1", k)
	}
	if n < k {
		return nil, fmt.Errorf("exact: n = %d < k = %d", n, k)
	}
	if n > MaxDPRows {
		return nil, fmt.Errorf("exact: n = %d exceeds DP limit %d", n, MaxDPRows)
	}
	mat := metric.NewMatrix(t)
	return solveCost(ctx, t, k, groupCostFunc(t, mat, obj), sp)
}

// solveCost is the DP core shared by Solve and SolveWeighted; the
// caller has validated (t, k) against MaxDPRows already or delegates
// here directly for the weighted path.
func solveCost(ctx context.Context, t *relation.Table, k int, groupCost func([]int) int, sp *obs.Span) (*Result, error) {
	ds := sp.Start("exact.dp")
	defer ds.End()
	n := t.Len()
	if k < 1 {
		return nil, fmt.Errorf("exact: k = %d < 1", k)
	}
	if n < k {
		return nil, fmt.Errorf("exact: n = %d < k = %d", n, k)
	}
	if n > MaxDPRows {
		return nil, fmt.Errorf("exact: n = %d exceeds DP limit %d", n, MaxDPRows)
	}
	maxSize := 2*k - 1
	size := 1 << uint(n)

	// Precompute the cost of every candidate group (mask with popcount
	// in [k, 2k−1]); there are only Σ_s C(n, s) of them, so this is the
	// cheap part and keeps the DP inner loop free of cost evaluation.
	cost := make([]int32, size)
	groupsCosted := 0
	sizeH := sp.Histogram("exact.group_size")
	{
		members := make([]int, 0, maxSize)
		var ctxErr error
		var gen func(next int)
		gen = func(next int) {
			if ctxErr != nil {
				return
			}
			if len(members) >= k {
				if groupsCosted&1023 == 0 {
					if err := ctx.Err(); err != nil {
						ctxErr = err
						return
					}
				}
				cost[subsetMask(members)] = int32(groupCost(members))
				groupsCosted++
				sizeH.Observe(int64(len(members)))
			}
			if len(members) == maxSize {
				return
			}
			for v := next; v < n; v++ {
				members = append(members, v)
				gen(v + 1)
				members = members[:len(members)-1]
			}
		}
		gen(0)
		if ctxErr != nil {
			return nil, fmt.Errorf("exact: costing groups: %w", ctxErr)
		}
	}

	const inf = math.MaxInt32
	dp := make([]int32, size)
	choice := make([]uint32, size)
	for i := 1; i < size; i++ {
		dp[i] = inf
	}

	// dp[mask] = optimal objective for the rows in mask, composed of
	// groups of size [k, 2k−1]. Transitions pick the group containing
	// mask's lowest set bit; the enumeration below walks all such
	// groups using integer operations only.
	var scratch [32]int
	masksExpanded := 0
	for mask := 1; mask < size; mask++ {
		if mask&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("exact: dp: %w", err)
			}
		}
		if bits.OnesCount(uint(mask)) < k {
			continue
		}
		masksExpanded++
		low := bits.TrailingZeros(uint(mask))
		lowBit := 1 << uint(low)
		rest := mask ^ lowBit
		// avail holds the candidate extra members as bit positions.
		avail := scratch[:0]
		for a := rest; a != 0; {
			b := a & (-a)
			a ^= b
			avail = append(avail, bits.TrailingZeros(uint(b)))
		}
		best := dp[mask]
		bestSub := uint32(choice[mask])
		var rec func(sub int, cnt, from int)
		rec = func(sub int, cnt, from int) {
			if cnt >= k {
				remain := mask ^ sub
				if remain == 0 || dp[remain] != inf {
					c := cost[sub]
					if remain != 0 {
						c += dp[remain]
					}
					if c < best {
						best = c
						bestSub = uint32(sub)
					}
				}
			}
			if cnt == maxSize {
				return
			}
			for i := from; i < len(avail); i++ {
				rec(sub|1<<uint(avail[i]), cnt+1, i+1)
			}
		}
		rec(lowBit, 1, 0)
		dp[mask] = best
		choice[mask] = bestSub
	}

	sp.Counter("exact.groups_costed").Add(int64(groupsCosted))
	sp.Counter("exact.dp_masks").Add(int64(masksExpanded))

	full := size - 1
	if dp[full] == inf {
		return nil, fmt.Errorf("exact: no feasible (%d, %d)-partition of %d rows", k, maxSize, n)
	}
	// Reconstruct.
	p := &core.Partition{}
	for mask := full; mask != 0; {
		sub := int(choice[mask])
		p.Groups = append(p.Groups, maskMembers(sub))
		mask ^= sub
	}
	p.Normalize()
	return &Result{Partition: p, Value: int(dp[full]), Optimal: true}, nil
}

// groupCostFunc returns the per-group cost for the objective.
func groupCostFunc(t *relation.Table, mat metric.Kernel, obj Objective) func([]int) int {
	switch obj {
	case Stars:
		return func(g []int) int { return core.Anon(t, g) }
	case DiameterSum:
		return func(g []int) int { return mat.Diameter(g) }
	default:
		panic(fmt.Sprintf("exact: unknown objective %d", obj))
	}
}

func subsetMask(members []int) int {
	m := 0
	for _, v := range members {
		m |= 1 << uint(v)
	}
	return m
}

func maskMembers(mask int) []int {
	var out []int
	for mask != 0 {
		b := mask & (-mask)
		mask ^= b
		out = append(out, bits.TrailingZeros(uint(b)))
	}
	return out
}

// OPT is shorthand for Solve(t, k, Stars).Value — the paper's OPT(V).
func OPT(t *relation.Table, k int) (int, error) {
	r, err := Solve(t, k, Stars)
	if err != nil {
		return 0, err
	}
	return r.Value, nil
}

// SolveWeighted is Solve with column-weighted star costs: group S costs
// Σ over non-uniform columns j of |S|·w_j (core.AnonWeighted). A nil
// weight vector reduces to Solve(t, k, Stars).
func SolveWeighted(t *relation.Table, k int, w core.Weights) (*Result, error) {
	return SolveWeightedTraced(t, k, w, nil)
}

// SolveWeightedTraced is SolveWeighted with instrumentation under the
// given parent span (see SolveTraced).
func SolveWeightedTraced(t *relation.Table, k int, w core.Weights, sp *obs.Span) (*Result, error) {
	return SolveWeightedCtx(context.Background(), t, k, w, sp)
}

// SolveWeightedCtx is SolveWeightedTraced with cancellation (see
// SolveCtx for the polling granularity).
func SolveWeightedCtx(ctx context.Context, t *relation.Table, k int, w core.Weights, sp *obs.Span) (*Result, error) {
	if err := w.Validate(t.Degree()); err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	return solveCost(ctx, t, k, func(g []int) int { return core.AnonWeighted(t, g, w) }, sp)
}
