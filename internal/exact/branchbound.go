package exact

import (
	"context"
	"fmt"
	"math"
	"sort"

	"kanon/internal/core"
	"kanon/internal/metric"
	"kanon/internal/obs"
	"kanon/internal/relation"
)

// BranchBound solves optimal k-anonymity by depth-first search over
// (k, 2k−1)-partitions with lower-bound pruning. Unlike the DP it has
// no hard row limit; on structured instances it closes moderately
// larger n, and under a node budget it degrades gracefully into an
// anytime solver whose Result.Optimal reports whether the search
// completed.
//
// The pruning bound: every row i placed in a group S pays at least
// U(S) ≥ max_{j∈S} d(i, j) ≥ d(i, its (k−1)-th nearest neighbor) stars,
// so Σ over unassigned rows of their (k−1)-NN distance lower-bounds the
// remaining cost (each row's group must contain k−1 other rows, though
// possibly already-assigned ones — hence the global, not residual,
// (k−1)-NN distance is used).
func BranchBound(t *relation.Table, k int, maxNodes int64) (*Result, error) {
	return BranchBoundTraced(t, k, maxNodes, nil)
}

// BranchBoundTraced is BranchBound with instrumentation under the given
// parent span: an "exact.branch-bound" span and an exact.nodes counter
// for search nodes expanded (the same quantity Result.Nodes reports).
func BranchBoundTraced(t *relation.Table, k int, maxNodes int64, sp *obs.Span) (*Result, error) {
	bs := sp.Start("exact.branch-bound")
	defer bs.End()
	n := t.Len()
	if k < 1 {
		return nil, fmt.Errorf("exact: k = %d < 1", k)
	}
	if n < k {
		return nil, fmt.Errorf("exact: n = %d < k = %d", n, k)
	}
	if maxNodes <= 0 {
		maxNodes = 50_000_000
	}
	// Auto kernel selection: the (k−1)-NN warm-up is the only metric
	// consumer here, so large instances get the matrix-free kernel's
	// tiled counting-sort pass instead of an O(n²) matrix fill.
	mat, _ := metric.NewKernelCtx(context.Background(), t, metric.Auto, 0)
	nnLB := mat.KthNearest(k - 1)

	// Greedy initial incumbent: lexicographic chunks — cheap, valid.
	incumbent, incumbentCost := chunkPartition(t, k)

	assigned := make([]bool, n)
	var cur [][]int
	var nodes int64
	budgetHit := false
	maxSize := 2*k - 1

	// suffixLB[i] = Σ_{j ≥ i unassigned} nnLB[j] maintained
	// incrementally via a running total.
	totalLB := 0
	for _, v := range nnLB {
		totalLB += v
	}

	depthH := bs.Histogram("exact.node_depth")
	var rec func(costSoFar int)
	rec = func(costSoFar int) {
		if budgetHit {
			return
		}
		nodes++
		depthH.Observe(int64(len(cur)))
		if nodes > maxNodes {
			budgetHit = true
			return
		}
		if costSoFar+totalLB >= incumbentCost {
			return
		}
		first := -1
		for i := 0; i < n; i++ {
			if !assigned[i] {
				first = i
				break
			}
		}
		if first == -1 {
			// Complete partition.
			if costSoFar < incumbentCost {
				incumbentCost = costSoFar
				incumbent = clonePartition(cur)
			}
			return
		}
		var rest []int
		for i := first + 1; i < n; i++ {
			if !assigned[i] {
				rest = append(rest, i)
			}
		}
		if 1+len(rest) < k {
			return // cannot form a feasible group
		}
		group := []int{first}
		assigned[first] = true
		totalLB -= nnLB[first]
		var build func(from int)
		build = func(from int) {
			if budgetHit {
				return
			}
			remaining := 0
			for _, r := range rest {
				if !assigned[r] {
					remaining++
				}
			}
			if len(group) >= k && (remaining == 0 || remaining >= k) {
				c := core.Anon(t, group)
				cur = append(cur, append([]int(nil), group...))
				rec(costSoFar + c)
				cur = cur[:len(cur)-1]
			}
			if len(group) == maxSize {
				return
			}
			for idx := from; idx < len(rest); idx++ {
				r := rest[idx]
				if assigned[r] {
					continue
				}
				group = append(group, r)
				assigned[r] = true
				totalLB -= nnLB[r]
				build(idx + 1)
				totalLB += nnLB[r]
				assigned[r] = false
				group = group[:len(group)-1]
			}
		}
		build(0)
		totalLB += nnLB[first]
		assigned[first] = false
	}
	rec(0)
	bs.Counter("exact.nodes").Add(nodes)

	p := &core.Partition{Groups: incumbent}
	p.Normalize()
	if err := p.Validate(n, k, 0); err != nil {
		return nil, fmt.Errorf("exact: internal: branch-and-bound produced invalid partition: %w", err)
	}
	return &Result{
		Partition: p,
		Value:     incumbentCost,
		Optimal:   !budgetHit,
		Nodes:     nodes,
	}, nil
}

// chunkPartition builds the sorted-chunks incumbent: rows in
// lexicographic order, consecutive groups of k with the remainder
// spread over the last group.
func chunkPartition(t *relation.Table, k int) ([][]int, int) {
	idx := t.SortedIndex()
	var groups [][]int
	for len(idx) > 0 {
		sz := k
		if len(idx) < 2*k {
			sz = len(idx)
		}
		g := append([]int(nil), idx[:sz]...)
		sort.Ints(g)
		groups = append(groups, g)
		idx = idx[sz:]
	}
	cost := 0
	for _, g := range groups {
		cost += core.Anon(t, g)
	}
	return groups, cost
}

func clonePartition(groups [][]int) [][]int {
	out := make([][]int, len(groups))
	for i, g := range groups {
		out[i] = append([]int(nil), g...)
	}
	return out
}

// Certify checks that a claimed optimum is consistent: the partition is
// valid, its suppressor cost equals value, and value does not exceed the
// cost of a handful of alternative feasible partitions. Used by tests
// as a sanity harness around the solvers.
func Certify(t *relation.Table, k int, r *Result) error {
	if err := r.Partition.Validate(t.Len(), k, 0); err != nil {
		return err
	}
	if got := r.Partition.Cost(t); got != r.Value {
		return fmt.Errorf("exact: partition cost %d != reported value %d", got, r.Value)
	}
	if _, c := chunkPartition(t, k); c < r.Value {
		return fmt.Errorf("exact: sorted-chunks cost %d beats claimed optimum %d", c, r.Value)
	}
	return nil
}

// LowerBoundNN returns the Σ (k−1)-NN lower bound on OPT(V): every row
// must share a group with at least k−1 others, so it pays at least its
// distance to its (k−1)-th nearest neighbor. Cheap and useful as a
// certificate on instances too large for the exact solvers.
func LowerBoundNN(t *relation.Table, k int) int {
	if k < 2 {
		return 0
	}
	mat, _ := metric.NewKernelCtx(context.Background(), t, metric.Auto, 0)
	total := 0
	for _, v := range mat.KthNearest(k - 1) {
		total += v
	}
	return total
}

// Ratio returns approx/opt guarding the zero-optimum case: when OPT = 0
// and the approximation also found 0 the ratio is 1; when OPT = 0 but
// the approximation paid something, the ratio is +Inf (the approximation
// bound is multiplicative, so any positive cost is a violation only if
// OPT > 0 — the experiments report these rows separately).
func Ratio(approx, opt int) float64 {
	if opt == 0 {
		if approx == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(approx) / float64(opt)
}
