package exact

import (
	"math"
	"math/rand"
	"testing"

	"kanon/internal/core"
	"kanon/internal/metric"
	"kanon/internal/relation"
)

func randomTable(rng *rand.Rand, n, m, sigma int) *relation.Table {
	vecs := make([][]int, n)
	for i := range vecs {
		v := make([]int, m)
		for j := range v {
			v[j] = rng.Intn(sigma)
		}
		vecs[i] = v
	}
	return relation.MustFromVectors(vecs)
}

// bruteForceOPT enumerates all partitions into groups of size ≥ k via
// recursive generation (no 2k−1 cap, so it independently validates the
// wlog the DP relies on). Only for very small n.
func bruteForceOPT(t *relation.Table, k int, obj Objective) int {
	n := t.Len()
	mat := metric.NewMatrix(t)
	cost := groupCostFunc(t, mat, obj)
	best := math.MaxInt32
	assigned := make([]int, n) // group id per row, -1 = none
	for i := range assigned {
		assigned[i] = -1
	}
	var groups [][]int
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			total := 0
			for _, g := range groups {
				if len(g) < k {
					return
				}
				total += cost(g)
			}
			if total < best {
				best = total
			}
			return
		}
		// Join an existing group or open a new one.
		for gi := range groups {
			groups[gi] = append(groups[gi], i)
			rec(i + 1)
			groups[gi] = groups[gi][:len(groups[gi])-1]
		}
		groups = append(groups, []int{i})
		rec(i + 1)
		groups = groups[:len(groups)-1]
	}
	rec(0)
	return best
}

func TestSolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(2)
		n := k + rng.Intn(8-k+1)
		if n < k {
			n = k
		}
		tab := randomTable(rng, n, 3, 2)
		for _, obj := range []Objective{Stars, DiameterSum} {
			r, err := Solve(tab, k, obj)
			if err != nil {
				t.Fatalf("trial %d: Solve: %v", trial, err)
			}
			want := bruteForceOPT(tab, k, obj)
			if r.Value != want {
				t.Fatalf("trial %d (n=%d k=%d obj=%d): DP=%d brute=%d", trial, n, k, obj, r.Value, want)
			}
			if err := r.Partition.Validate(tab.Len(), k, 2*k-1); err != nil {
				t.Fatalf("trial %d: invalid partition: %v", trial, err)
			}
			if obj == Stars {
				if got := r.Partition.Cost(tab); got != r.Value {
					t.Fatalf("trial %d: partition cost %d != value %d", trial, got, r.Value)
				}
			} else {
				mat := metric.NewMatrix(tab)
				if got := r.Partition.DiameterSum(mat); got != r.Value {
					t.Fatalf("trial %d: diameter sum %d != value %d", trial, got, r.Value)
				}
			}
		}
	}
}

func TestSolveKnownInstances(t *testing.T) {
	// Paper's §4 example: V = {1010, 1110, 0110}, k = 3. The only
	// partition is one group; cols 0,1 non-uniform → OPT = 6.
	tab := relation.MustFromBitstrings("1010", "1110", "0110")
	v, err := OPT(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Errorf("OPT(example, 3) = %d, want 6", v)
	}
	// Already 2-anonymous table: OPT = 0.
	dup := relation.MustFromVectors([][]int{{1, 2}, {1, 2}, {3, 4}, {3, 4}})
	v, err = OPT(dup, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("OPT(duplicated, 2) = %d, want 0", v)
	}
	// Diameter-sum objective on the same: min diameter sum 0.
	r, err := Solve(dup, 2, DiameterSum)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0 {
		t.Errorf("min diameter sum = %d, want 0", r.Value)
	}
}

func TestSolveErrors(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1}, {2}})
	if _, err := Solve(tab, 0, Stars); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Solve(tab, 3, Stars); err == nil {
		t.Error("accepted n < k")
	}
	big := randomTable(rand.New(rand.NewSource(1)), MaxDPRows+1, 2, 2)
	if _, err := Solve(big, 2, Stars); err == nil {
		t.Error("accepted n > MaxDPRows")
	}
}

func TestSolveInfeasibleSizeGap(t *testing.T) {
	// n = 5, k = 3: only partitions are one group of 5 > 2k−1 = 5 ✓
	// feasible actually ({5} has size 5 = 2k−1). n = 7, k = 3: groups
	// from {3,4,5}: 3+4 = 7 ✓ feasible. True infeasibility needs
	// n in (k, 2k) split impossibility… n=5,k=4: single group of 5 ≤ 7 ✓.
	// In fact any n ≥ k is feasible (one group, split if > 2k−1; n ≥ k
	// guarantees chunks ≥ k). So Solve must succeed for all n ≥ k ≤ DP cap.
	rng := rand.New(rand.NewSource(2))
	for k := 2; k <= 4; k++ {
		for n := k; n <= 12; n++ {
			tab := randomTable(rng, n, 3, 2)
			if _, err := Solve(tab, k, Stars); err != nil {
				t.Errorf("n=%d k=%d: %v", n, k, err)
			}
		}
	}
}

func TestBranchBoundMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(2)
		n := k + rng.Intn(10)
		tab := randomTable(rng, n, 4, 3)
		dp, err := Solve(tab, k, Stars)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := BranchBound(tab, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bb.Optimal {
			t.Fatalf("trial %d: branch-and-bound hit default budget on n=%d", trial, n)
		}
		if bb.Value != dp.Value {
			t.Fatalf("trial %d (n=%d k=%d): BB=%d DP=%d", trial, n, k, bb.Value, dp.Value)
		}
		if err := Certify(tab, k, bb); err != nil {
			t.Fatalf("trial %d: certify: %v", trial, err)
		}
	}
}

func TestBranchBoundBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tab := randomTable(rng, 16, 6, 4)
	r, err := BranchBound(tab, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Optimal {
		t.Error("50-node budget should not close a 16-row instance")
	}
	// Anytime result must still be a valid partition with true cost.
	if err := Certify(tab, 3, r); err != nil {
		t.Errorf("budgeted result not certified: %v", err)
	}
}

func TestBranchBoundErrors(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1}, {2}})
	if _, err := BranchBound(tab, 0, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := BranchBound(tab, 3, 0); err == nil {
		t.Error("accepted n < k")
	}
}

func TestLowerBoundNN(t *testing.T) {
	tab := relation.MustFromBitstrings("0000", "0001", "1110", "1111")
	// (k−1)=1-NN distances: each row's nearest is at distance 1 → LB 4.
	if got := LowerBoundNN(tab, 2); got != 4 {
		t.Errorf("LowerBoundNN = %d, want 4", got)
	}
	if got := LowerBoundNN(tab, 1); got != 0 {
		t.Errorf("LowerBoundNN(k=1) = %d, want 0", got)
	}
	opt, err := OPT(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opt < LowerBoundNN(tab, 2) {
		t.Errorf("OPT %d below NN lower bound", opt)
	}
}

func TestLowerBoundNeverExceedsOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(2)
		n := k + rng.Intn(9)
		tab := randomTable(rng, n, 4, 2)
		opt, err := OPT(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		if lb := LowerBoundNN(tab, k); lb > opt {
			t.Errorf("trial %d: LB %d > OPT %d", trial, lb, opt)
		}
	}
}

func TestCertifyCatchesBadClaims(t *testing.T) {
	tab := relation.MustFromBitstrings("0000", "0001", "1110", "1111")
	// Wrong value.
	p := &core.Partition{Groups: [][]int{{0, 1}, {2, 3}}}
	bad := &Result{Partition: p, Value: 999}
	if err := Certify(tab, 2, bad); err == nil {
		t.Error("Certify accepted wrong value")
	}
	// Claimed optimum worse than sorted chunks.
	expensive := &core.Partition{Groups: [][]int{{0, 2}, {1, 3}}}
	worse := &Result{Partition: expensive, Value: expensive.Cost(tab)}
	if err := Certify(tab, 2, worse); err == nil {
		t.Error("Certify accepted a beatable 'optimum'")
	}
	// Invalid partition.
	invalid := &Result{Partition: &core.Partition{Groups: [][]int{{0}, {1, 2, 3}}}, Value: 0}
	if err := Certify(tab, 2, invalid); err == nil {
		t.Error("Certify accepted invalid partition")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(10, 5); got != 2 {
		t.Errorf("Ratio(10,5) = %v", got)
	}
	if got := Ratio(0, 0); got != 1 {
		t.Errorf("Ratio(0,0) = %v", got)
	}
	if got := Ratio(3, 0); !math.IsInf(got, 1) {
		t.Errorf("Ratio(3,0) = %v, want +Inf", got)
	}
}

func TestChunkPartition(t *testing.T) {
	tab := randomTable(rand.New(rand.NewSource(37)), 11, 3, 2)
	groups, cost := chunkPartition(tab, 3)
	p := &core.Partition{Groups: groups}
	if err := p.Validate(11, 3, 0); err != nil {
		t.Fatalf("chunk partition invalid: %v", err)
	}
	if got := p.Cost(tab); got != cost {
		t.Errorf("reported cost %d != recomputed %d", cost, got)
	}
	for _, g := range groups {
		if len(g) > 5 { // 2k−1 with k=3
			t.Errorf("chunk group size %d > 5", len(g))
		}
	}
}
