// Package hierarchy solves k-anonymity by full-domain generalization:
// instead of suppressing individual entries (the paper's model), every
// column is generalized uniformly to one level of a per-attribute
// hierarchy, and rows that still sit in undersized classes are
// suppressed whole, up to a budget.
//
// The subsystem has four parts. A Spec describes the hierarchies (a
// JSON or CSV sidecar, or derived from the data); Compile turns it
// into constant-time code lookup tables. A CountTree over the distinct
// base tuples checks any lattice node in one O(distinct·m) walk
// without materializing the generalized table. Search enumerates the
// generalization lattice with OLA-style predictive tagging (or a
// greedy beam when the lattice is huge) for the minimum-NCP
// k-anonymous cut. Solve glues them together and materializes the
// winning release.
package hierarchy

import (
	"context"
	"fmt"

	"kanon/internal/core"
	"kanon/internal/obs"
	"kanon/internal/relation"
)

// Options configures Solve.
type Options struct {
	// MaxSuppress is the row-suppression budget: how many rows may be
	// dropped (released fully starred) instead of forcing the whole
	// table to a coarser cut.
	MaxSuppress int
	// Spec declares the hierarchies; nil derives one from the data
	// (intervals for integer columns, balanced trees otherwise).
	Spec *Spec
	// Workers bounds search parallelism; results never depend on it.
	Workers int
	// MaxNodes and BeamWidth tune the lattice search (0 = defaults).
	MaxNodes, BeamWidth int
	// Ctx cancels the search between count-tree walks.
	Ctx context.Context
	// Trace receives phase spans, counters, and gauges.
	Trace *obs.Span
}

// Result is a solved hierarchy release.
type Result struct {
	// Levels is the chosen generalization level per column.
	Levels []int
	// Rows is the released table: generalized labels, with suppressed
	// rows rendered fully starred.
	Rows [][]string
	// Groups lists row indices per equivalence class, including one
	// class for the suppressed rows (if any), in normalized order.
	Groups [][]int
	// Suppressed lists the suppressed row indices in ascending order.
	Suppressed []int
	// Cost counts released cells that differ from the input, the
	// nearest analogue of the paper's suppression count.
	Cost int
	// NCP is the release's normalized certainty penalty in [0,1].
	NCP float64
	// Optimal reports whether the lattice was enumerated exhaustively,
	// making Levels the provably minimum-NCP k-anonymous cut.
	Optimal bool
	// Search carries the lattice-search telemetry.
	Search *SearchResult
}

// Solve finds and materializes the minimum-NCP k-anonymous
// generalization of t.
func Solve(t *relation.Table, k int, opt *Options) (*Result, error) {
	if opt == nil {
		opt = &Options{}
	}
	n, m := t.Len(), t.Degree()
	if k < 1 {
		return nil, fmt.Errorf("hierarchy: k must be ≥ 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("hierarchy: k=%d exceeds table size %d", k, n)
	}
	if m == 0 {
		return nil, fmt.Errorf("hierarchy: table has no columns")
	}
	if opt.MaxSuppress < 0 {
		return nil, fmt.Errorf("hierarchy: suppression budget %d < 0", opt.MaxSuppress)
	}

	spec := opt.Spec
	if spec == nil {
		sp := opt.Trace.Start("hierarchy.derive")
		spec = Derive(t)
		sp.End()
	}
	sp := opt.Trace.Start("hierarchy.columns")
	cols, err := Compile(spec, t)
	sp.End()
	if err != nil {
		return nil, err
	}

	sp = opt.Trace.Start("hierarchy.count_tree")
	ct := BuildCountTree(t, cols)
	sp.End()
	opt.Trace.Gauge("hierarchy.count_tree_nodes").Set(int64(ct.Nodes()))
	opt.Trace.Gauge("hierarchy.distinct_tuples").Set(int64(ct.Distinct()))

	sp = opt.Trace.Start("hierarchy.search")
	sr, err := Search(ct, k, opt.MaxSuppress, &SearchOptions{
		Workers:   opt.Workers,
		MaxNodes:  opt.MaxNodes,
		BeamWidth: opt.BeamWidth,
		Ctx:       opt.Ctx,
		Trace:     sp,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	opt.Trace.Gauge("hierarchy.lattice_nodes").Set(sr.LatticeNodes)
	opt.Trace.Counter("hierarchy.nodes_walked").Add(int64(sr.Walked))
	opt.Trace.Counter("hierarchy.tags_anonymous").Add(int64(sr.TagsAnonymous))
	opt.Trace.Counter("hierarchy.tags_failing").Add(int64(sr.TagsFailing))
	opt.Trace.Counter("hierarchy.tag_hits").Add(int64(sr.TagHits))

	sp = opt.Trace.Start("hierarchy.materialize")
	res := materialize(t, cols, k, sr)
	sp.End()

	// Self-check: recount the materialized release. Every kept class
	// must have ≥ k rows and the suppression budget must hold; a
	// violation here is a search or materialization bug.
	if len(res.Suppressed) > opt.MaxSuppress {
		return nil, fmt.Errorf("hierarchy: internal error: cut suppresses %d rows, budget %d", len(res.Suppressed), opt.MaxSuppress)
	}
	for _, g := range res.Groups {
		if len(g) < k && !isSuppressedGroup(res, g) {
			return nil, fmt.Errorf("hierarchy: internal error: released class of size %d < k=%d", len(g), k)
		}
	}
	return res, nil
}

// isSuppressedGroup reports whether every row of g was suppressed (the
// all-star class is exempt from the size-k floor: suppressed rows
// carry no information to link).
func isSuppressedGroup(res *Result, g []int) bool {
	if len(res.Suppressed) == 0 {
		return false
	}
	sup := make(map[int]bool, len(res.Suppressed))
	for _, i := range res.Suppressed {
		sup[i] = true
	}
	for _, i := range g {
		if !sup[i] {
			return false
		}
	}
	return true
}

// materialize renders the winning cut: one pass to size the classes,
// one to emit labels, with undersized classes suppressed whole.
func materialize(t *relation.Table, cols []*Column, k int, sr *SearchResult) *Result {
	n, m := t.Len(), t.Degree()
	levels := sr.Levels
	// Class keys are the generalized code tuples, packed into strings.
	keyOf := func(i int) string {
		b := make([]byte, 0, 4*m)
		row := t.Row(i)
		for j := 0; j < m; j++ {
			c := cols[j].Code(levels[j], row[j])
			b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		}
		return string(b)
	}
	size := make(map[string]int, n)
	for i := 0; i < n; i++ {
		size[keyOf(i)]++
	}
	rows := make([][]string, n)
	members := make(map[string][]int, len(size))
	var keys []string
	var suppressed []int
	var supGroup []int
	cost := 0
	for i := 0; i < n; i++ {
		key := keyOf(i)
		row := t.Row(i)
		out := make([]string, m)
		if size[key] < k {
			suppressed = append(suppressed, i)
			supGroup = append(supGroup, i)
			for j := 0; j < m; j++ {
				out[j] = relation.StarString
				if row[j] != relation.Star {
					cost++
				}
			}
		} else {
			if members[key] == nil {
				keys = append(keys, key)
			}
			members[key] = append(members[key], i)
			for j := 0; j < m; j++ {
				out[j] = cols[j].Label(levels[j], cols[j].Code(levels[j], row[j]))
				if out[j] != t.Schema().Attribute(j).Value(row[j]) {
					cost++
				}
			}
		}
		rows[i] = out
	}
	groups := make([][]int, 0, len(keys)+1)
	for _, key := range keys {
		groups = append(groups, members[key])
	}
	if len(supGroup) > 0 {
		groups = append(groups, supGroup)
	}
	p := &core.Partition{Groups: groups}
	p.Normalize()
	return &Result{
		Levels:     levels,
		Rows:       rows,
		Groups:     p.Groups,
		Suppressed: suppressed,
		Cost:       cost,
		NCP:        sr.NCP,
		Optimal:    sr.Exhaustive,
		Search:     sr,
	}
}
