package hierarchy

import (
	"reflect"
	"strings"
	"testing"
)

const jsonSpec = `{
  "version": "kanon-hierarchy/1",
  "columns": [
    {"name": "city", "kind": "tree", "paths": {
      "oslo":   ["norway", "europe", "*"],
      "bergen": ["norway", "europe", "*"],
      "paris":  ["france", "europe", "*"],
      "tokyo":  ["japan",  "asia",   "*"]
    }},
    {"name": "age", "kind": "interval", "width": 10},
    {"name": "id", "kind": "suppress"}
  ]
}`

func TestParseSpecJSON(t *testing.T) {
	s, err := ParseSpec([]byte(jsonSpec))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Columns) != 3 {
		t.Fatalf("got %d columns, want 3", len(s.Columns))
	}
	if c, _ := s.Column("city"); c.Height() != 3 {
		t.Fatalf("city height = %d, want 3", c.Height())
	}
	if c, _ := s.Column("id"); c.Height() != 1 {
		t.Fatalf("id height = %d, want 1", c.Height())
	}
}

func TestParseSpecCSV(t *testing.T) {
	csv := `# city hierarchy
city,oslo,norway,europe,*
city,bergen,norway,europe,*
city,paris,france,europe,*
zip,100,10x,*
zip,101,10x,*
`
	s, err := ParseSpec([]byte(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Columns) != 2 {
		t.Fatalf("got %d columns, want 2", len(s.Columns))
	}
	city, _ := s.Column("city")
	if got := city.Paths["oslo"]; !reflect.DeepEqual(got, []string{"norway", "europe", "*"}) {
		t.Fatalf("oslo path = %v", got)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	s, err := ParseSpec([]byte(jsonSpec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(b)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip changed the spec:\n%+v\n%+v", s, s2)
	}
}

func TestSpecValidationRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"level gap", `{"columns":[{"name":"c","paths":{"a":["x","*"],"b":["*"]}}]}`, "level gap"},
		{"dangling parent", `{"columns":[{"name":"c","paths":{"a":["x","*"],"b":["x","y","*"]}}]}`, "level gap"},
		{"conflicting parent", `{"columns":[{"name":"c","paths":{"a":["x","p","*"],"b":["x","q","*"]}}]}`, "dangling parent"},
		{"label at two levels", `{"columns":[{"name":"c","paths":{"a":["x","y","*"],"b":["y","x","*"]}}]}`, "cycle"},
		{"leaf as interior", `{"columns":[{"name":"c","paths":{"a":["b","*"],"b":["b","*"]}}]}`, "parent"},
		{"leaf is its own root", `{"columns":[{"name":"c","paths":{"a":["b"],"b":["b"]}}]}`, "cycle"},
		{"different roots", `{"columns":[{"name":"c","paths":{"a":["x","*"],"b":["x","any"]}}]}`, "root"},
		{"empty label", `{"columns":[{"name":"c","paths":{"a":["","*"]}}]}`, "empty label"},
		{"unknown kind", `{"columns":[{"name":"c","kind":"wat"}]}`, "unknown kind"},
		{"dup column", `{"columns":[{"name":"c","kind":"suppress"},{"name":"c","kind":"suppress"}]}`, "twice"},
		{"no columns", `{"columns":[]}`, "no columns"},
		{"bad version", `{"version":"nope/9","columns":[{"name":"c","kind":"suppress"}]}`, "version"},
		{"min over max", `{"columns":[{"name":"c","kind":"interval","min":9,"max":1}]}`, "min"},
		{"bad fanout", `{"columns":[{"name":"c","kind":"interval","fanout":1}]}`, "fanout"},
		{"tree with width", `{"columns":[{"name":"c","width":3,"paths":{"a":["*"]}}]}`, "interval fields"},
		{"suppress with paths", `{"columns":[{"name":"c","kind":"suppress","paths":{"a":["*"]}}]}`, "hierarchy fields"},
		{"unknown field", `{"columns":[{"name":"c","kind":"suppress","wat":1}]}`, "wat"},
		{"empty", ``, "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted invalid spec %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDeriveValidatesAndCovers(t *testing.T) {
	tab := tableOf(t, []string{"city", "age"}, [][]string{
		{"oslo", "31"}, {"bergen", "35"}, {"paris", "47"}, {"tokyo", "29"},
		{"lima", "31"}, {"cairo", "62"}, {"quito", "18"}, {"pune", "55"},
	})
	s := Derive(tab)
	if err := s.Validate(); err != nil {
		t.Fatalf("derived spec invalid: %v", err)
	}
	if c, _ := s.Column("age"); c.Kind != KindInterval {
		t.Fatalf("numeric column derived as %q", c.Kind)
	}
	if c, _ := s.Column("city"); c.Kind != KindTree {
		t.Fatalf("categorical column derived as %q", c.Kind)
	}
	if _, err := Compile(s, tab); err != nil {
		t.Fatalf("derived spec does not compile against its own table: %v", err)
	}
	// Derived trees must also survive an encode/parse round trip.
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec(b); err != nil {
		t.Fatalf("derived spec does not re-parse: %v", err)
	}
}

func TestCompileRejectsUncoveredValue(t *testing.T) {
	tab := tableOf(t, []string{"city"}, [][]string{{"oslo"}, {"atlantis"}})
	s := &Spec{Columns: []ColumnSpec{{Name: "city", Kind: KindTree,
		Paths: map[string][]string{"oslo": {"*"}}}}}
	if _, err := Compile(s, tab); err == nil || !strings.Contains(err.Error(), "atlantis") {
		t.Fatalf("want uncovered-value error naming atlantis, got %v", err)
	}
}

func TestCompileRejectsColumnMismatch(t *testing.T) {
	tab := tableOf(t, []string{"a", "b"}, [][]string{{"1", "2"}})
	s := &Spec{Columns: []ColumnSpec{{Name: "a", Kind: KindSuppress}}}
	if _, err := Compile(s, tab); err == nil {
		t.Fatal("want column-count mismatch error")
	}
	s = &Spec{Columns: []ColumnSpec{{Name: "a", Kind: KindSuppress}, {Name: "z", Kind: KindSuppress}}}
	if _, err := Compile(s, tab); err == nil || !strings.Contains(err.Error(), `"b"`) {
		t.Fatalf("want undeclared-column error naming b, got %v", err)
	}
}

func TestCompileIntervalRejectsNonInteger(t *testing.T) {
	tab := tableOf(t, []string{"age"}, [][]string{{"31"}, {"old"}})
	s := &Spec{Columns: []ColumnSpec{{Name: "age", Kind: KindInterval}}}
	if _, err := Compile(s, tab); err == nil || !strings.Contains(err.Error(), "old") {
		t.Fatalf("want non-integer error naming the value, got %v", err)
	}
}
