package hierarchy

import (
	"sort"

	"kanon/internal/relation"
)

// CountTree is a trie over the table's distinct base-value tuples with
// multiplicities, in the style of ARX's count tree: checking whether a
// lattice node is k-anonymous walks the trie once, merging sibling
// branches whose codes generalize to the same label, without ever
// materializing the generalized table. One build serves every node of
// the lattice.
type CountTree struct {
	cols []*Column
	n    int
	// children[d] holds, for every depth-d trie node, the index range
	// of its children at depth d+1 via span[d]; codes[d][i] is the base
	// code of the i-th depth-d node. counts holds row multiplicities at
	// the deepest level. Nodes at each depth are stored in
	// lexicographic tuple order, so sibling ranges are contiguous.
	codes  [][]int32
	span   [][]int32 // span[d][i]..span[d][i+1] indexes depth d+1 (d < m-1)
	counts []int32   // multiplicity per deepest node
	nodes  int
}

// BuildCountTree sorts the table's rows lexicographically by base code
// and folds equal prefixes into trie layers. O(n log n · m) build,
// O(distinct tuples · m) memory.
func BuildCountTree(t *relation.Table, cols []*Column) *CountTree {
	n, m := t.Len(), t.Degree()
	ct := &CountTree{cols: cols, n: n}
	if n == 0 || m == 0 {
		return ct
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := t.Row(order[a]), t.Row(order[b])
		for j := 0; j < m; j++ {
			if ra[j] != rb[j] {
				return ra[j] < rb[j]
			}
		}
		return false
	})
	ct.codes = make([][]int32, m)
	ct.span = make([][]int32, m-1)
	// prev[d] is the code of the last node emitted at depth d.
	prevRow := make(relation.Row, m)
	first := true
	for _, i := range order {
		row := t.Row(i)
		// diverge is the first depth where this tuple leaves the
		// previous one's path.
		diverge := 0
		if !first {
			for diverge < m && row[diverge] == prevRow[diverge] {
				diverge++
			}
			if diverge == m {
				ct.counts[len(ct.counts)-1]++
				continue
			}
		}
		for d := diverge; d < m; d++ {
			if d < m-1 {
				// The new child range at depth d+1 starts where the
				// next layer currently ends.
				ct.span[d] = append(ct.span[d], int32(len(ct.codes[d+1])))
			}
			ct.codes[d] = append(ct.codes[d], row[d])
			ct.nodes++
		}
		ct.counts = append(ct.counts, 1)
		copy(prevRow, row)
		first = false
	}
	// Close the span ranges with a sentinel end offset.
	for d := 0; d < m-1; d++ {
		ct.span[d] = append(ct.span[d], int32(len(ct.codes[d+1])))
	}
	return ct
}

// Rows returns the table size the tree was built from.
func (ct *CountTree) Rows() int { return ct.n }

// Distinct returns the number of distinct base tuples (trie leaves).
func (ct *CountTree) Distinct() int { return len(ct.counts) }

// Nodes returns the total trie node count, reported as a gauge.
func (ct *CountTree) Nodes() int { return ct.nodes }

// Check walks the trie at one lattice node. It returns whether the
// node is k-anonymous within the suppression budget maxSup, how many
// rows fall in undersized classes (and would be suppressed), and the
// release's NCP in [0,1]: kept rows pay their per-cell certainty
// penalty, suppressed rows pay 1 per cell. By default the walk aborts
// as soon as suppressed exceeds maxSup (ok=false, ncp meaningless);
// full=true always completes it, which scoring callers use to rank
// failing nodes by their true suppression count.
func (ct *CountTree) Check(levels []int, k, maxSup int, full bool) (ok bool, suppressed int, ncp float64) {
	if ct.n == 0 || len(ct.codes) == 0 {
		return true, 0, 0
	}
	w := walkState{ct: ct, levels: levels, k: k, limit: maxSup}
	if full {
		w.limit = ct.n
	}
	// The depth-0 sibling set is the whole first layer.
	all := make([]int32, len(ct.codes[0]))
	for i := range all {
		all[i] = int32(i)
	}
	w.walk(all, 0, 0)
	if w.aborted {
		return false, w.suppressed, 0
	}
	m := len(ct.cols)
	ncp = (w.keptNCP + float64(w.suppressed)*float64(m)) / (float64(ct.n) * float64(m))
	return w.suppressed <= maxSup, w.suppressed, ncp
}

// walkState accumulates one Check traversal.
type walkState struct {
	ct         *CountTree
	levels     []int
	k, limit   int
	suppressed int
	keptNCP    float64
	aborted    bool
	// scratch buffers reused across recursion levels to keep the walk
	// allocation-light.
	pairs [][]pair
}

// pair tags a trie node index with its generalized code for sorting.
type pair struct {
	gen  int32
	node int32
}

// walk merges the sibling set `nodes` (trie indices at `depth`) by
// generalized code, in deterministic ascending-code order, and
// recurses into the concatenated child ranges of each merged group.
func (w *walkState) walk(nodes []int32, depth int, pathNCP float64) {
	if w.aborted {
		return
	}
	col := w.ct.cols[depth]
	level := w.levels[depth]
	for len(w.pairs) <= depth {
		w.pairs = append(w.pairs, nil)
	}
	ps := w.pairs[depth][:0]
	for _, nd := range nodes {
		ps = append(ps, pair{gen: col.Code(level, w.ct.codes[depth][nd]), node: nd})
	}
	// Trie nodes are in base-code order; a stable sort by generalized
	// code keeps the merge deterministic.
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].gen < ps[b].gen })
	w.pairs[depth] = ps
	last := len(w.ct.cols) - 1
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].gen == ps[i].gen {
			j++
		}
		cell := col.NCP(level, ps[i].gen)
		if depth == last {
			size := 0
			for _, p := range ps[i:j] {
				size += int(w.ct.counts[p.node])
			}
			if size < w.k {
				w.suppressed += size
				if w.limit >= 0 && w.suppressed > w.limit {
					w.aborted = true
					return
				}
			} else {
				w.keptNCP += float64(size) * (pathNCP + cell)
			}
		} else {
			// Gather the merged group's children. The slice must be
			// fresh per group because recursion reuses w.pairs[depth+1].
			var children []int32
			for _, p := range ps[i:j] {
				lo, hi := w.ct.span[depth][p.node], w.ct.span[depth][p.node+1]
				for c := lo; c < hi; c++ {
					children = append(children, c)
				}
			}
			w.walk(children, depth+1, pathNCP+cell)
			if w.aborted {
				return
			}
		}
		i = j
	}
}
