package hierarchy

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kanon/internal/obs"
)

// Search limits and defaults.
const (
	// DefaultMaxNodes caps the lattice size the exhaustive engine will
	// enumerate; larger lattices fall back to the greedy beam.
	DefaultMaxNodes = 1 << 16
	// DefaultBeamWidth is the beam engine's frontier size.
	DefaultBeamWidth = 32
)

// SearchOptions tunes the lattice cut search.
type SearchOptions struct {
	// Workers bounds the goroutines used for count-tree walks; ≤ 1
	// walks sequentially. Parallelism never changes the result: walk
	// results are applied in a fixed node order.
	Workers int
	// MaxNodes caps exhaustive enumeration (0 = DefaultMaxNodes).
	MaxNodes int
	// BeamWidth sizes the greedy fallback frontier (0 = DefaultBeamWidth).
	BeamWidth int
	// Ctx cancels a long search between walks.
	Ctx context.Context
	// Trace receives search counters and the per-walk histogram.
	Trace *obs.Span
}

// SearchResult is the chosen lattice cut plus search telemetry.
type SearchResult struct {
	// Levels is the minimum-NCP k-anonymous generalization level per
	// column (ties broken by lexicographically smallest levels).
	Levels []int
	// NCP is the release's normalized certainty penalty in [0,1].
	NCP float64
	// Suppressed is how many rows the cut suppresses.
	Suppressed int
	// Exhaustive reports whether the full lattice was enumerated (true
	// means Levels is provably the minimum-NCP anonymous node).
	Exhaustive bool
	// LatticeNodes is the lattice's total size.
	LatticeNodes int64
	// Walked counts count-tree walks performed; TagsAnonymous and
	// TagsFailing count predictive tags applied; TagHits counts walks
	// avoided because a tag already decided the node.
	Walked, TagsAnonymous, TagsFailing, TagHits int
}

// ErrNoCut reports that no lattice node is k-anonymous within the
// suppression budget (possible only when the input already contains
// suppressed cells, so even the root node splits into small classes).
var ErrNoCut = fmt.Errorf("hierarchy: no k-anonymous generalization within the suppression budget")

// Search finds the minimum-NCP k-anonymous node of the generalization
// lattice over the count tree's columns. Lattices up to MaxNodes are
// enumerated exactly with OLA-style predictive tagging: a binary
// search on lattice height first brackets the lowest anonymous height
// (anonymous nodes tag all their ancestors anonymous, failing nodes
// tag all their descendants failing), then a bottom-up sweep over the
// remaining heights walks only untagged nodes. Larger lattices use a
// deterministic greedy beam from the bottom of the lattice.
func Search(ct *CountTree, k, maxSup int, opts *SearchOptions) (*SearchResult, error) {
	if opts == nil {
		opts = &SearchOptions{}
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	e := &engine{
		ct:     ct,
		k:      k,
		maxSup: maxSup,
		ctx:    opts.Ctx,
		sp:     opts.Trace,
		walkNS: opts.Trace.Histogram("hierarchy.walk_ns"),
	}
	if e.ctx == nil {
		e.ctx = context.Background()
	}
	e.workers = opts.Workers
	if e.workers < 1 {
		e.workers = 1
	}
	m := len(ct.cols)
	e.dims = make([]int, m)
	total := int64(1)
	for j, c := range ct.cols {
		e.dims[j] = c.Height + 1
		if total <= int64(maxNodes) {
			total *= int64(e.dims[j])
		}
	}
	var res *SearchResult
	var err error
	if total <= int64(maxNodes) {
		res, err = e.exhaustive(int(total))
	} else {
		bw := opts.BeamWidth
		if bw <= 0 {
			bw = DefaultBeamWidth
		}
		res, err = e.beam(bw)
		// The beam can't size the lattice it skipped; report the
		// (possibly clamped) product for the gauge.
		total = -1
	}
	if err != nil {
		return nil, err
	}
	res.LatticeNodes = total
	res.Walked = e.walked
	res.TagsAnonymous = e.tagsAnon
	res.TagsFailing = e.tagsFail
	res.TagHits = e.tagHits
	return res, nil
}

// node statuses in the exhaustive engine.
const (
	stUnknown uint8 = iota
	stAnon          // known anonymous (walked or tagged)
	stFail          // known failing (walked or tagged)
)

// engine holds one search's shared state.
type engine struct {
	ct      *CountTree
	k       int
	maxSup  int
	workers int
	ctx     context.Context
	sp      *obs.Span
	walkNS  *obs.Histogram

	dims []int // levels per column (height+1)

	// exhaustive-engine state, indexed by mixed-radix rank.
	status   []uint8
	walkedAt []bool
	ncp      []float64
	supp     []int32

	walked, tagsAnon, tagsFail, tagHits int
}

// levelsOf decodes a mixed-radix rank into per-column levels.
func (e *engine) levelsOf(rank int, out []int) []int {
	if out == nil {
		out = make([]int, len(e.dims))
	}
	for j := len(e.dims) - 1; j >= 0; j-- {
		out[j] = rank % e.dims[j]
		rank /= e.dims[j]
	}
	return out
}

// rankOf encodes per-column levels into a rank.
func (e *engine) rankOf(levels []int) int {
	r := 0
	for j, l := range levels {
		r = r*e.dims[j] + l
	}
	return r
}

// walkRes is one count-tree walk's outcome.
type walkRes struct {
	ok         bool
	suppressed int
	ncp        float64
}

// walkOne checks a single lattice node, recording telemetry.
func (e *engine) walkOne(levels []int, full bool) walkRes {
	t0 := time.Now()
	ok, sup, ncp := e.ct.Check(levels, e.k, e.maxSup, full)
	e.walkNS.ObserveDuration(time.Since(t0))
	return walkRes{ok: ok, suppressed: sup, ncp: ncp}
}

// walkMany checks many nodes, in parallel when workers allow. Results
// are positionally aligned with ranks, so callers apply them in a
// deterministic order regardless of scheduling.
func (e *engine) walkMany(ranks []int, full bool) ([]walkRes, error) {
	if err := e.ctx.Err(); err != nil {
		return nil, fmt.Errorf("hierarchy: search cancelled: %w", err)
	}
	res := make([]walkRes, len(ranks))
	e.walked += len(ranks)
	if e.workers <= 1 || len(ranks) < 2 {
		levels := make([]int, len(e.dims))
		for i, r := range ranks {
			if i%64 == 63 {
				if err := e.ctx.Err(); err != nil {
					return nil, fmt.Errorf("hierarchy: search cancelled: %w", err)
				}
			}
			res[i] = e.walkOne(e.levelsOf(r, levels), full)
		}
		return res, nil
	}
	var next int64
	var wg sync.WaitGroup
	workers := e.workers
	if workers > len(ranks) {
		workers = len(ranks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			levels := make([]int, len(e.dims))
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(ranks) || e.ctx.Err() != nil {
					return
				}
				res[i] = e.walkOne(e.levelsOf(ranks[i], levels), full)
			}
		}()
	}
	wg.Wait()
	if err := e.ctx.Err(); err != nil {
		return nil, fmt.Errorf("hierarchy: search cancelled: %w", err)
	}
	return res, nil
}

// tagAnonAncestors marks every strict ancestor of rank anonymous,
// stopping a branch at nodes already known.
func (e *engine) tagAnonAncestors(rank int) {
	stack := []int{rank}
	levels := make([]int, len(e.dims))
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e.levelsOf(r, levels)
		stride := 1
		for j := len(e.dims) - 1; j >= 0; j-- {
			if levels[j]+1 < e.dims[j] {
				p := r + stride
				if e.status[p] == stUnknown {
					e.status[p] = stAnon
					e.tagsAnon++
					stack = append(stack, p)
				}
			}
			stride *= e.dims[j]
		}
	}
}

// tagFailDescendants marks every strict descendant of rank failing.
func (e *engine) tagFailDescendants(rank int) {
	stack := []int{rank}
	levels := make([]int, len(e.dims))
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e.levelsOf(r, levels)
		stride := 1
		for j := len(e.dims) - 1; j >= 0; j-- {
			if levels[j] > 0 {
				c := r - stride
				if e.status[c] == stUnknown {
					e.status[c] = stFail
					e.tagsFail++
					stack = append(stack, c)
				}
			}
			stride *= e.dims[j]
		}
	}
}

// applyWalk records one walked node's result and propagates tags.
func (e *engine) applyWalk(rank int, r walkRes) {
	e.walkedAt[rank] = true
	if r.ok {
		e.status[rank] = stAnon
		e.ncp[rank] = r.ncp
		e.supp[rank] = int32(r.suppressed)
		e.tagAnonAncestors(rank)
	} else {
		e.status[rank] = stFail
		e.tagFailDescendants(rank)
	}
}

// better reports whether (ncp, levels) beats the incumbent best.
func better(ncp float64, levels []int, bestNCP float64, bestLevels []int) bool {
	if bestLevels == nil {
		return true
	}
	if ncp != bestNCP {
		return ncp < bestNCP
	}
	for j := range levels {
		if levels[j] != bestLevels[j] {
			return levels[j] < bestLevels[j]
		}
	}
	return false
}

// exhaustive enumerates the whole lattice with predictive tagging.
func (e *engine) exhaustive(total int) (*SearchResult, error) {
	m := len(e.dims)
	e.status = make([]uint8, total)
	e.walkedAt = make([]bool, total)
	e.ncp = make([]float64, total)
	e.supp = make([]int32, total)
	hmax := 0
	for _, d := range e.dims {
		hmax += d - 1
	}
	// Bucket ranks by lattice height once; sweep and binary search both
	// iterate heights in ascending rank order for determinism.
	heights := make([][]int, hmax+1)
	levels := make([]int, m)
	for r := 0; r < total; r++ {
		h := 0
		for _, l := range e.levelsOf(r, levels) {
			h += l
		}
		heights[h] = append(heights[h], r)
	}

	// The root must be anonymous for any cut to exist (anonymity is
	// monotone up the lattice); bail out early when it isn't.
	top := total - 1
	rs, err := e.walkMany([]int{top}, false)
	if err != nil {
		return nil, err
	}
	e.applyWalk(top, rs[0])
	if e.status[top] != stAnon {
		return nil, ErrNoCut
	}

	// Phase 1: binary search the lowest height that contains an
	// anonymous node. P(h) = "some node at height h is anonymous" is
	// monotone in h because every anonymous node tags its parents.
	sp := e.sp.Start("hierarchy.search.bracket")
	lo, hi := 0, hmax
	for lo < hi {
		mid := (lo + hi) / 2
		anyAnon := false
		var unknown []int
		for _, r := range heights[mid] {
			switch e.status[r] {
			case stAnon:
				anyAnon = true
				e.tagHits++
			case stFail:
				e.tagHits++
			default:
				unknown = append(unknown, r)
			}
			if anyAnon {
				break
			}
		}
		if !anyAnon {
			rs, err := e.walkMany(unknown, false)
			if err != nil {
				sp.End()
				return nil, err
			}
			for i, r := range unknown {
				e.applyWalk(r, rs[i])
				if rs[i].ok {
					anyAnon = true
				}
			}
		}
		if anyAnon {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	sp.End()

	// Phase 2: sweep heights lo..hmax. With no suppression budget NCP
	// is monotone along chains, so tagged-anonymous nodes (which have
	// an anonymous child) can never beat a walked node and are pruned;
	// the sweep also stops at the first all-anonymous height. With a
	// budget, suppressed rows trade against generalization, so every
	// non-failing node is scored.
	sp = e.sp.Start("hierarchy.search.sweep")
	defer sp.End()
	var bestLevels []int
	var bestNCP float64
	var bestSup int
	consider := func(r int, res walkRes) {
		lv := e.levelsOf(r, nil)
		if better(res.ncp, lv, bestNCP, bestLevels) {
			bestLevels, bestNCP, bestSup = lv, res.ncp, res.suppressed
		}
	}
	for h := lo; h <= hmax; h++ {
		allAnon := true
		var walk []int
		for _, r := range heights[h] {
			switch e.status[r] {
			case stFail:
				allAnon = false
				e.tagHits++
			case stAnon:
				if e.walkedAt[r] {
					consider(r, walkRes{ok: true, suppressed: int(e.supp[r]), ncp: e.ncp[r]})
				} else if e.maxSup > 0 {
					// Tagged anonymous: NCP unknown, and with a budget it
					// may undercut its descendants — score it.
					walk = append(walk, r)
				} else {
					e.tagHits++
				}
			default:
				walk = append(walk, r)
			}
		}
		rs, err := e.walkMany(walk, false)
		if err != nil {
			return nil, err
		}
		for i, r := range walk {
			e.applyWalk(r, rs[i])
			if rs[i].ok {
				consider(r, rs[i])
			} else {
				allAnon = false
			}
		}
		if allAnon && e.maxSup == 0 {
			// Everything above this height generalizes an anonymous
			// node and can only cost more.
			break
		}
	}
	if bestLevels == nil {
		return nil, ErrNoCut
	}
	return &SearchResult{Levels: bestLevels, NCP: bestNCP, Suppressed: bestSup, Exhaustive: true}, nil
}

// beamNode is one scored frontier entry in the greedy fallback.
type beamNode struct {
	levels []int
	res    walkRes
}

// beam greedily climbs the lattice with a bounded frontier, ranking
// nodes by (suppressed, ncp, lex levels). It is deterministic but not
// guaranteed optimal; Exhaustive=false in the result flags that.
func (e *engine) beam(width int) (*SearchResult, error) {
	m := len(e.dims)
	key := func(levels []int) string {
		b := make([]byte, m)
		for j, l := range levels {
			b[j] = byte(l)
		}
		return string(b)
	}
	visited := map[string]bool{}
	var bestLevels []int
	var bestNCP float64
	var bestSup int

	// walkLevels scores a batch by levels directly — the exhaustive
	// rank encoding could overflow on the huge lattices the beam serves.
	walkLevels := func(batch [][]int) ([]walkRes, error) {
		res := make([]walkRes, len(batch))
		if err := e.ctx.Err(); err != nil {
			return nil, fmt.Errorf("hierarchy: search cancelled: %w", err)
		}
		e.walked += len(batch)
		if e.workers <= 1 || len(batch) < 2 {
			for i, lv := range batch {
				res[i] = e.walkOne(lv, true)
			}
			return res, nil
		}
		var next int64
		var wg sync.WaitGroup
		workers := e.workers
		if workers > len(batch) {
			workers = len(batch)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= len(batch) || e.ctx.Err() != nil {
						return
					}
					res[i] = e.walkOne(batch[i], true)
				}
			}()
		}
		wg.Wait()
		if err := e.ctx.Err(); err != nil {
			return nil, fmt.Errorf("hierarchy: search cancelled: %w", err)
		}
		return res, nil
	}

	bottom := make([]int, m)
	visited[key(bottom)] = true
	rs, err := walkLevels([][]int{bottom})
	if err != nil {
		return nil, err
	}
	frontier := []beamNode{{levels: bottom, res: rs[0]}}
	if rs[0].ok {
		bestLevels, bestNCP, bestSup = bottom, rs[0].ncp, rs[0].suppressed
	}

	for len(frontier) > 0 {
		// Expand: all unvisited parents of the frontier, in
		// deterministic lexicographic order.
		var parents [][]int
		for _, bn := range frontier {
			if bn.res.ok && (e.maxSup == 0 || bn.res.suppressed == 0) {
				// Anonymous with nothing suppressed: ancestors only cost
				// more NCP, stop expanding this branch.
				continue
			}
			for j := 0; j < m; j++ {
				if bn.levels[j]+1 >= e.dims[j] {
					continue
				}
				p := append([]int(nil), bn.levels...)
				p[j]++
				if kk := key(p); !visited[kk] {
					visited[kk] = true
					parents = append(parents, p)
				}
			}
		}
		if len(parents) == 0 {
			break
		}
		sort.Slice(parents, func(a, b int) bool {
			for j := 0; j < m; j++ {
				if parents[a][j] != parents[b][j] {
					return parents[a][j] < parents[b][j]
				}
			}
			return false
		})
		rs, err := walkLevels(parents)
		if err != nil {
			return nil, err
		}
		var nextFrontier []beamNode
		for i, p := range parents {
			if rs[i].ok && better(rs[i].ncp, p, bestNCP, bestLevels) {
				bestLevels, bestNCP, bestSup = p, rs[i].ncp, rs[i].suppressed
			}
			nextFrontier = append(nextFrontier, beamNode{levels: p, res: rs[i]})
		}
		// Keep the most promising `width` nodes: closest to anonymity
		// first, then least information loss.
		sort.SliceStable(nextFrontier, func(a, b int) bool {
			na, nb := nextFrontier[a], nextFrontier[b]
			if na.res.suppressed != nb.res.suppressed {
				return na.res.suppressed < nb.res.suppressed
			}
			if na.res.ncp != nb.res.ncp {
				return na.res.ncp < nb.res.ncp
			}
			for j := 0; j < m; j++ {
				if na.levels[j] != nb.levels[j] {
					return na.levels[j] < nb.levels[j]
				}
			}
			return false
		})
		if len(nextFrontier) > width {
			nextFrontier = nextFrontier[:width]
		}
		frontier = nextFrontier
	}

	if bestLevels == nil {
		// The beam can drop every path before reaching an anonymous
		// node; the lattice root is the universal fallback.
		top := make([]int, m)
		for j := range top {
			top[j] = e.dims[j] - 1
		}
		rs, err := walkLevels([][]int{top})
		if err != nil {
			return nil, err
		}
		if !rs[0].ok {
			return nil, ErrNoCut
		}
		bestLevels, bestNCP, bestSup = top, rs[0].ncp, rs[0].suppressed
	}
	return &SearchResult{Levels: bestLevels, NCP: bestNCP, Suppressed: bestSup, Exhaustive: false}, nil
}
