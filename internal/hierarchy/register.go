package hierarchy

import (
	"fmt"

	"kanon/internal/solver"
)

func init() {
	solver.Register(solver.Info{
		Name:        "hierarchy",
		Description: "full-domain generalization lattice, minimum-NCP cut",
		Run: func(req solver.Request) (*solver.Result, error) {
			var spec *Spec
			switch h := req.Hierarchy.(type) {
			case nil:
			case *Spec:
				spec = h
			default:
				return nil, fmt.Errorf("hierarchy: unsupported spec payload %T", req.Hierarchy)
			}
			r, err := Solve(req.Table, req.K, &Options{
				MaxSuppress: req.MaxSuppress,
				Spec:        spec,
				Workers:     req.Workers,
				Ctx:         req.Ctx,
				Trace:       req.Trace,
			})
			if err != nil {
				return nil, err
			}
			return &solver.Result{
				Rows:       r.Rows,
				Groups:     r.Groups,
				Cost:       r.Cost,
				NCP:        r.NCP,
				Suppressed: r.Suppressed,
				Optimal:    r.Optimal,
			}, nil
		},
	})
}
