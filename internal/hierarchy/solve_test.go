package hierarchy

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"kanon/internal/obs"
	"kanon/internal/relation"
)

// TestSolveEndToEnd: the released table is k-anonymous (suppressed
// rows exempt), classes match Groups, and Cost counts changed cells.
func TestSolveEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := randomTable(t, rng, 70, 3, 4, 0)
	const k, budget = 3, 2
	res, err := Solve(tab, k, &Options{MaxSuppress: budget})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != tab.Len() {
		t.Fatalf("release has %d rows, want %d", len(res.Rows), tab.Len())
	}
	if len(res.Suppressed) > budget {
		t.Fatalf("suppressed %d rows, budget %d", len(res.Suppressed), budget)
	}
	// Textual recount.
	classes := map[string][]int{}
	for i, row := range res.Rows {
		classes[strings.Join(row, "\x00")] = append(classes[strings.Join(row, "\x00")], i)
	}
	for key, members := range classes {
		allStar := !strings.ContainsFunc(strings.ReplaceAll(key, "\x00", ""), func(r rune) bool { return r != '*' })
		if len(members) < k && !allStar {
			t.Fatalf("class %q has %d < %d members", key, len(members), k)
		}
	}
	// Cost recount.
	cost := 0
	for i := range res.Rows {
		orig := tab.Strings(i)
		for j := range orig {
			if res.Rows[i][j] != orig[j] {
				cost++
			}
		}
	}
	if cost != res.Cost {
		t.Fatalf("cost %d, recount %d", res.Cost, cost)
	}
	// Groups must partition the rows consistently with the rendering.
	seen := 0
	for _, g := range res.Groups {
		seen += len(g)
		first := strings.Join(res.Rows[g[0]], "\x00")
		for _, i := range g[1:] {
			if strings.Join(res.Rows[i], "\x00") != first {
				t.Fatalf("group %v not textually uniform", g)
			}
		}
	}
	if seen != tab.Len() {
		t.Fatalf("groups cover %d rows, want %d", seen, tab.Len())
	}
}

// TestSolveDeterministic: byte-identical output across workers 1/4 and
// trace on/off — the repo-wide determinism contract.
func TestSolveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tab := randomTable(t, rng, 90, 4, 5, 0.04)
	var base *Result
	for _, workers := range []int{1, 4} {
		for _, trace := range []bool{false, true} {
			opt := &Options{MaxSuppress: 3, Workers: workers}
			var tr *obs.Tracer
			if trace {
				tr = obs.New()
				sp := tr.Start("test")
				opt.Trace = sp
			}
			res, err := Solve(tab, 3, opt)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(res.Rows, base.Rows) || !reflect.DeepEqual(res.Groups, base.Groups) ||
				res.Cost != base.Cost || res.NCP != base.NCP || !reflect.DeepEqual(res.Levels, base.Levels) {
				t.Fatalf("workers=%d trace=%v changed the release", workers, trace)
			}
			if trace && tr.Snapshot() == nil {
				t.Fatal("trace produced no snapshot")
			}
		}
	}
}

// TestSolveSpecLabels pins the released labels for a tiny hand-checked
// instance: k=2 forces city to level 1 (country) and age to width-10
// intervals.
func TestSolveSpecLabels(t *testing.T) {
	tab := tableOf(t, []string{"city", "age"}, [][]string{
		{"oslo", "33"}, {"bergen", "38"},
		{"paris", "47"}, {"paris", "45"},
	})
	spec := &Spec{Columns: []ColumnSpec{
		{Name: "city", Kind: KindTree, Paths: map[string][]string{
			"oslo": {"norway", "europe"}, "bergen": {"norway", "europe"},
			"paris": {"france", "europe"},
		}},
		{Name: "age", Kind: KindInterval, Width: 10, Min: intp(0), Max: intp(79)},
	}}
	res, err := Solve(tab, 2, &Options{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"norway", "30-39"}, {"norway", "30-39"},
		{"france", "40-49"}, {"france", "40-49"},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("release = %v, want %v", res.Rows, want)
	}
	if !reflect.DeepEqual(res.Levels, []int{1, 1}) {
		t.Fatalf("levels = %v, want [1 1]", res.Levels)
	}
	if !res.Optimal {
		t.Fatal("tiny lattice should be exhaustive")
	}
}

func intp(v int) *int { return &v }

// TestSolveValidation covers the argument errors.
func TestSolveValidation(t *testing.T) {
	tab := tableOf(t, []string{"a"}, [][]string{{"x"}, {"y"}})
	if _, err := Solve(tab, 0, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Solve(tab, 3, nil); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Solve(tab, 1, &Options{MaxSuppress: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestSolveObservability: with a span attached, the run records the
// hierarchy phase spans, counters, and gauges.
func TestSolveObservability(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tab := randomTable(t, rng, 40, 3, 4, 0)
	tr := obs.New()
	sp := tr.Start("run")
	if _, err := Solve(tab, 2, &Options{Trace: sp}); err != nil {
		t.Fatal(err)
	}
	sp.End()
	snap := tr.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot")
	}
	var names []string
	var walkNames func(s obs.SpanSnapshot)
	walkNames = func(s obs.SpanSnapshot) {
		names = append(names, s.Name)
		for _, c := range s.Children {
			walkNames(c)
		}
	}
	for _, s := range snap.Spans {
		walkNames(s)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"hierarchy.derive", "hierarchy.columns", "hierarchy.count_tree", "hierarchy.search", "hierarchy.materialize"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("span %q missing from %v", want, names)
		}
	}
	if snap.Counters["hierarchy.nodes_walked"] == 0 {
		t.Fatalf("nodes_walked counter missing: %v", snap.Counters)
	}
	if snap.Gauges["hierarchy.count_tree_nodes"].Last == 0 {
		t.Fatalf("count_tree_nodes gauge missing: %v", snap.Gauges)
	}
	if snap.Histograms["hierarchy.walk_ns"].Count == 0 {
		t.Fatalf("walk_ns histogram missing: %v", snap.Histograms)
	}
}

// TestPreStarredRowsStayStarred: pre-suppressed cells release as "*"
// at every cut and never corrupt class formation.
func TestPreStarredRowsStayStarred(t *testing.T) {
	tab := tableOf(t, []string{"a", "b"}, [][]string{
		{"x", "1"}, {"x", "1"}, {"*", "1"}, {"*", "1"},
	})
	res, err := Solve(tab, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 3; i++ {
		if res.Rows[i][0] != relation.StarString {
			t.Fatalf("row %d starred cell released as %q", i, res.Rows[i][0])
		}
	}
}
