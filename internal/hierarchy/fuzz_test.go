package hierarchy

import (
	"reflect"
	"testing"
)

// FuzzHierarchySpec hammers the sidecar decoder: arbitrary bytes must
// never panic, and any spec the decoder accepts must survive an
// encode → parse round trip unchanged — the durable-manifest contract
// for hierarchy jobs.
func FuzzHierarchySpec(f *testing.F) {
	f.Add([]byte(jsonSpec))
	f.Add([]byte("city,oslo,norway,europe,*\ncity,paris,france,europe,*\n"))
	f.Add([]byte(`{"columns":[{"name":"a","kind":"interval","width":5,"min":0,"max":99}]}`))
	f.Add([]byte(`{"columns":[{"name":"a","paths":{"x":["*"]}}]}`))
	f.Add([]byte(`{"columns":[{"name":"a","paths":{"x":["x"]}}]}`))                   // cycle
	f.Add([]byte(`{"columns":[{"name":"a","paths":{"x":["*"],"y":[]}}]}`))            // level gap
	f.Add([]byte(`{"columns":[{"name":"a","paths":{"x":["p","*"],"y":["p","z"]}}]}`)) // split root
	f.Add([]byte("a,b\n"))
	f.Add([]byte("{"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		b, err := s.Encode()
		if err != nil {
			t.Fatalf("accepted spec does not encode: %v", err)
		}
		s2, err := ParseSpec(b)
		if err != nil {
			t.Fatalf("encoded spec does not re-parse: %v\n%s", err, b)
		}
		// The version is stamped on encode; align before comparing.
		s.Version = SpecVersion
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the spec:\n%+v\n%+v", s, s2)
		}
	})
}
