package hierarchy

import (
	"fmt"
	"sort"
	"strconv"

	"kanon/internal/relation"
)

// Column is one attribute's compiled hierarchy: constant-time lookup
// tables from base symbol codes to generalized codes, labels, and NCP
// leaf counts at every level. Level 0 is the raw values; level Height
// is the root.
//
// Pre-suppressed input cells (relation.Star) are handled uniformly:
// every level carries a star code whose label is "*" and whose NCP is
// that of the root, so a starred cell stays starred at every lattice
// node and always costs full information loss.
type Column struct {
	Name   string
	Height int
	// up[l][base] is the generalized code of base symbol `base` at
	// level l; up[0] is the identity.
	up [][]int32
	// labels[l][code] is the released string for generalized code
	// `code` at level l.
	labels [][]string
	// leaves[l][code] counts domain leaves under the node, the NCP
	// numerator.
	leaves [][]int
	// star[l] is the generalized code starred cells map to at level l.
	star []int32
	// total is the domain leaf count, the NCP denominator.
	total int
}

// Code maps a base symbol code (possibly relation.Star) to its
// generalized code at the given level.
func (c *Column) Code(level int, base int32) int32 {
	if base == relation.Star {
		return c.star[level]
	}
	return c.up[level][base]
}

// Label renders a generalized code at the given level.
func (c *Column) Label(level int, code int32) string {
	return c.labels[level][code]
}

// NCP is the normalized certainty penalty of releasing one cell at the
// given generalized code: 0 when the node covers a single leaf,
// leaves/total otherwise (1 at the root).
func (c *Column) NCP(level int, code int32) float64 {
	lv := c.leaves[level][code]
	if lv <= 1 {
		return 0
	}
	return float64(lv) / float64(c.total)
}

// Sizes returns the number of generalized codes at each level,
// reported as a lattice-shape gauge.
func (c *Column) Sizes() []int {
	out := make([]int, len(c.labels))
	for l := range c.labels {
		out[l] = len(c.labels[l])
	}
	return out
}

// compileColumn binds a column spec to a table attribute, building the
// level lookup tables. Every non-star value the attribute interns must
// be covered by the hierarchy.
func compileColumn(spec *ColumnSpec, attr *relation.Attribute) (*Column, error) {
	switch spec.kind() {
	case KindTree:
		return compileTree(spec, attr)
	case KindInterval:
		return compileInterval(spec, attr)
	case KindSuppress:
		return compileSuppress(spec, attr)
	}
	return nil, fmt.Errorf("hierarchy: column %q: unknown kind %q", spec.Name, spec.Kind)
}

// newColumn allocates the level tables with identity level 0.
func newColumn(name string, height int, attr *relation.Attribute, total int) *Column {
	a := attr.AlphabetSize()
	c := &Column{
		Name:   name,
		Height: height,
		up:     make([][]int32, height+1),
		labels: make([][]string, height+1),
		leaves: make([][]int, height+1),
		star:   make([]int32, height+1),
		total:  total,
	}
	c.up[0] = make([]int32, a)
	c.labels[0] = append([]string(nil), attr.Alphabet()...)
	c.leaves[0] = make([]int, a, a+1)
	for b := 0; b < a; b++ {
		c.up[0][b] = int32(b)
		c.leaves[0][b] = 1
	}
	return c
}

// addStar appends (or reuses) the star code at one level. A level
// whose labels already include "*" (a root spelled "*") absorbs
// starred cells so textually identical cells always share a code.
func (c *Column) addStar(level int) {
	for code, lab := range c.labels[level] {
		if lab == relation.StarString {
			c.star[level] = int32(code)
			c.leaves[level][code] = c.total
			return
		}
	}
	c.star[level] = int32(len(c.labels[level]))
	c.labels[level] = append(c.labels[level], relation.StarString)
	c.leaves[level] = append(c.leaves[level], c.total)
}

// compileTree builds lookup tables from explicit root-ward paths.
func compileTree(spec *ColumnSpec, attr *relation.Attribute) (*Column, error) {
	height := spec.Height()
	c := newColumn(spec.Name, height, attr, len(spec.Paths))
	// Codes per level are assigned by first appearance over the sorted
	// leaf order, so identical specs always compile identically.
	leafOrder := sortedKeys(spec.Paths)
	type levelTab struct {
		code  map[string]int32
		count map[string]int
	}
	tabs := make([]levelTab, height+1)
	for l := 1; l <= height; l++ {
		tabs[l] = levelTab{code: map[string]int32{}, count: map[string]int{}}
	}
	for _, leaf := range leafOrder {
		for l := 1; l <= height; l++ {
			label := spec.Paths[leaf][l-1]
			if _, ok := tabs[l].code[label]; !ok {
				tabs[l].code[label] = int32(len(tabs[l].code))
			}
			tabs[l].count[label]++
		}
	}
	for l := 1; l <= height; l++ {
		n := len(tabs[l].code)
		c.up[l] = make([]int32, attr.AlphabetSize())
		c.labels[l] = make([]string, n, n+1)
		c.leaves[l] = make([]int, n, n+1)
		for label, code := range tabs[l].code {
			c.labels[l][code] = label
			c.leaves[l][code] = tabs[l].count[label]
		}
	}
	for b := 0; b < attr.AlphabetSize(); b++ {
		v := attr.Value(int32(b))
		path, ok := spec.Paths[v]
		if !ok {
			return nil, fmt.Errorf("hierarchy: column %q: value %q not covered by the hierarchy", spec.Name, v)
		}
		for l := 1; l <= height; l++ {
			c.up[l][b] = tabs[l].code[path[l-1]]
		}
	}
	for l := 0; l <= height; l++ {
		c.addStar(l)
	}
	return c, nil
}

// compileInterval builds aligned integer intervals that widen by
// ×fanout per level until a single bucket covers the domain.
func compileInterval(spec *ColumnSpec, attr *relation.Attribute) (*Column, error) {
	a := attr.AlphabetSize()
	vals := make([]int, a)
	for b := 0; b < a; b++ {
		v, err := strconv.Atoi(attr.Value(int32(b)))
		if err != nil {
			return nil, fmt.Errorf("hierarchy: column %q: interval hierarchy over non-integer value %q", spec.Name, attr.Value(int32(b)))
		}
		vals[b] = v
	}
	min, max := 0, 0
	if len(vals) > 0 {
		min, max = vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if spec.Min != nil {
		if len(vals) > 0 && min < *spec.Min {
			return nil, fmt.Errorf("hierarchy: column %q: value %d below declared min %d", spec.Name, min, *spec.Min)
		}
		min = *spec.Min
	}
	if spec.Max != nil {
		if len(vals) > 0 && max > *spec.Max {
			return nil, fmt.Errorf("hierarchy: column %q: value %d above declared max %d", spec.Name, max, *spec.Max)
		}
		max = *spec.Max
	}
	span := max - min + 1
	if span <= 0 {
		return nil, fmt.Errorf("hierarchy: column %q: interval domain [%d,%d] too large", spec.Name, min, max)
	}
	width := spec.Width
	if width == 0 {
		width = (span + 7) / 8
	}
	if width > span {
		width = span
	}
	fanout := spec.Fanout
	if fanout == 0 {
		fanout = 2
	}
	buckets := (span + width - 1) / width
	height := 1
	for b := buckets; b > 1; b = (b + fanout - 1) / fanout {
		height++
	}
	c := newColumn(spec.Name, height, attr, span)
	for l := 1; l <= height; l++ {
		// step is the integer span one bucket covers at this level.
		step := width
		for j := 1; j < l; j++ {
			step *= fanout
			if step >= span {
				step = span
				break
			}
		}
		// Generalized codes are assigned to occupied buckets in
		// ascending bucket order.
		occ := map[int]bool{}
		for _, v := range vals {
			occ[(v-min)/step] = true
		}
		idxs := make([]int, 0, len(occ))
		for i := range occ {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		code := map[int]int32{}
		c.labels[l] = make([]string, 0, len(idxs)+1)
		c.leaves[l] = make([]int, 0, len(idxs)+1)
		for _, i := range idxs {
			lo := min + i*step
			hi := lo + step - 1
			if hi > max {
				hi = max
			}
			label := strconv.Itoa(lo)
			if hi > lo {
				label = strconv.Itoa(lo) + "-" + strconv.Itoa(hi)
			}
			code[i] = int32(len(c.labels[l]))
			c.labels[l] = append(c.labels[l], label)
			c.leaves[l] = append(c.leaves[l], hi-lo+1)
		}
		c.up[l] = make([]int32, a)
		for b, v := range vals {
			c.up[l][b] = code[(v-min)/step]
		}
	}
	for l := 0; l <= height; l++ {
		c.addStar(l)
	}
	return c, nil
}

// compileSuppress builds the paper's two-level value → ★ hierarchy.
func compileSuppress(spec *ColumnSpec, attr *relation.Attribute) (*Column, error) {
	c := newColumn(spec.Name, 1, attr, attr.AlphabetSize())
	c.up[1] = make([]int32, attr.AlphabetSize())
	c.labels[1] = []string{relation.StarString}
	c.leaves[1] = []int{c.total}
	for l := 0; l <= 1; l++ {
		c.addStar(l)
	}
	return c, nil
}

// Compile binds a spec to a table, strictly: every table column must
// be declared by the spec and vice versa, so a mismatched sidecar
// fails loudly instead of silently suppressing a column.
func Compile(s *Spec, t *relation.Table) ([]*Column, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	names := t.Schema().Names()
	if len(s.Columns) != len(names) {
		declared := make([]string, len(s.Columns))
		for i := range s.Columns {
			declared[i] = s.Columns[i].Name
		}
		return nil, fmt.Errorf("hierarchy: spec declares %d columns %v, table has %d %v",
			len(s.Columns), declared, len(names), names)
	}
	cols := make([]*Column, len(names))
	for j, name := range names {
		cs, ok := s.Column(name)
		if !ok {
			return nil, fmt.Errorf("hierarchy: table column %q not declared in spec", name)
		}
		c, err := compileColumn(cs, t.Schema().Attribute(j))
		if err != nil {
			return nil, err
		}
		cols[j] = c
	}
	return cols, nil
}
