package hierarchy

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// bruteForce finds the best cut by scoring every lattice node with the
// same count-tree walk the search uses — no tagging, no pruning, no
// binary search. The tagged search must return exactly this node.
func bruteForce(ct *CountTree, cols []*Column, k, maxSup int) *SearchResult {
	var best *SearchResult
	for _, levels := range allNodes(cols) {
		ok, sup, ncp := ct.Check(levels, k, maxSup, false)
		if !ok {
			continue
		}
		if best == nil || better(ncp, levels, best.NCP, best.Levels) {
			best = &SearchResult{Levels: levels, NCP: ncp, Suppressed: sup}
		}
	}
	return best
}

// TestSearchMatchesBruteForce: on exhaustively enumerable lattices the
// predictive-tagged search returns the brute-force minimum-NCP cut —
// i.e. tagging never prunes the optimum. Covers budgets and pre-starred
// cells.
func TestSearchMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		starProb := 0.0
		if seed%3 == 2 {
			starProb = 0.08
		}
		tab := randomTable(t, rng, 30+rng.Intn(50), 3, 4, starProb)
		cols, err := Compile(Derive(tab), tab)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ct := BuildCountTree(tab, cols)
		for _, maxSup := range []int{0, 2, 8} {
			k := 2 + rng.Intn(4)
			want := bruteForce(ct, cols, k, maxSup)
			got, err := Search(ct, k, maxSup, nil)
			if want == nil {
				if err == nil {
					t.Fatalf("seed %d k=%d sup=%d: brute force found no cut but Search returned %v", seed, k, maxSup, got.Levels)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed %d k=%d sup=%d: %v", seed, k, maxSup, err)
			}
			if !got.Exhaustive {
				t.Fatalf("seed %d: lattice should be exhaustively enumerable", seed)
			}
			if !reflect.DeepEqual(got.Levels, want.Levels) || got.NCP != want.NCP {
				t.Fatalf("seed %d k=%d sup=%d: search %v ncp=%g, brute force %v ncp=%g",
					seed, k, maxSup, got.Levels, got.NCP, want.Levels, want.NCP)
			}
			if got.Suppressed != want.Suppressed {
				t.Fatalf("seed %d: suppressed %d vs %d", seed, got.Suppressed, want.Suppressed)
			}
		}
	}
}

// TestSearchDeterministicAcrossWorkers: worker count must never change
// the chosen cut, for both engines.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := randomTable(t, rng, 80, 4, 5, 0.05)
	cols, err := Compile(Derive(tab), tab)
	if err != nil {
		t.Fatal(err)
	}
	ct := BuildCountTree(tab, cols)
	for _, maxNodes := range []int{0 /* exhaustive */, 4 /* forces beam */} {
		var base *SearchResult
		for _, workers := range []int{1, 4} {
			got, err := Search(ct, 3, 2, &SearchOptions{Workers: workers, MaxNodes: maxNodes})
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = got
				continue
			}
			if !reflect.DeepEqual(got.Levels, base.Levels) || got.NCP != base.NCP || got.Suppressed != base.Suppressed {
				t.Fatalf("maxNodes=%d: workers changed the cut: %v ncp=%g vs %v ncp=%g",
					maxNodes, got.Levels, got.NCP, base.Levels, base.NCP)
			}
		}
	}
}

// TestBeamFindsAnonymousCut: the greedy fallback must return a valid
// (if not optimal) k-anonymous cut, flagged non-exhaustive.
func TestBeamFindsAnonymousCut(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tab := randomTable(t, rng, 100, 4, 5, 0)
	cols, err := Compile(Derive(tab), tab)
	if err != nil {
		t.Fatal(err)
	}
	ct := BuildCountTree(tab, cols)
	got, err := Search(ct, 4, 0, &SearchOptions{MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Exhaustive {
		t.Fatal("MaxNodes=2 should force the beam")
	}
	sup, ncp := naiveNode(tab, cols, got.Levels, 4)
	if sup != 0 {
		t.Fatalf("beam cut %v suppresses %d rows with zero budget", got.Levels, sup)
	}
	if math.Abs(got.NCP-ncp) > 1e-9 {
		t.Fatalf("beam ncp %g, recount %g", got.NCP, ncp)
	}
}

// TestBudgetNeverHurts: enlarging the suppression budget can only
// lower (or keep) the optimal NCP.
func TestBudgetNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := randomTable(t, rng, 60, 3, 5, 0)
	cols, err := Compile(Derive(tab), tab)
	if err != nil {
		t.Fatal(err)
	}
	ct := BuildCountTree(tab, cols)
	prev := 2.0
	for _, maxSup := range []int{0, 2, 5, 10} {
		got, err := Search(ct, 4, maxSup, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.NCP > prev+1e-12 {
			t.Fatalf("budget %d raised optimal NCP: %g > %g", maxSup, got.NCP, prev)
		}
		prev = got.NCP
	}
}

// TestSearchNoCut: a table whose pre-starred rows split even the root
// node below k has no anonymous cut.
func TestSearchNoCut(t *testing.T) {
	tab := tableOf(t, []string{"c"}, [][]string{{"a"}, {"b"}, {"*"}})
	spec := &Spec{Columns: []ColumnSpec{{Name: "c", Kind: KindTree,
		Paths: map[string][]string{"a": {"any"}, "b": {"any"}}}}}
	cols, err := Compile(spec, tab)
	if err != nil {
		t.Fatal(err)
	}
	ct := BuildCountTree(tab, cols)
	// At the root: {any, any, *} — the starred row is its own class of
	// size 1 < k=3, and the others form a class of 2 < 3.
	if _, err := Search(ct, 3, 0, nil); err != ErrNoCut {
		t.Fatalf("want ErrNoCut, got %v", err)
	}
	// A budget of 1 still fails (class of 2 remains); 3 suppresses all.
	if _, err := Search(ct, 3, 1, nil); err != ErrNoCut {
		t.Fatalf("budget 1: want ErrNoCut, got %v", err)
	}
	if got, err := Search(ct, 3, 3, nil); err != nil || got.Suppressed != 3 {
		t.Fatalf("budget 3: want all-suppressed cut, got %+v err=%v", got, err)
	}
}

// TestSearchCancellation: a pre-cancelled context aborts promptly.
func TestSearchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := randomTable(t, rng, 40, 3, 4, 0)
	cols, err := Compile(Derive(tab), tab)
	if err != nil {
		t.Fatal(err)
	}
	ct := BuildCountTree(tab, cols)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ct, 3, 0, &SearchOptions{Ctx: ctx}); err == nil {
		t.Fatal("want cancellation error")
	}
}

// TestSearchPrunes sanity-checks the telemetry: on a lattice with a
// failing bottom region the tags must actually save walks.
func TestSearchPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := randomTable(t, rng, 120, 4, 6, 0)
	cols, err := Compile(Derive(tab), tab)
	if err != nil {
		t.Fatal(err)
	}
	ct := BuildCountTree(tab, cols)
	got, err := Search(ct, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.LatticeNodes <= 0 {
		t.Fatalf("lattice nodes gauge = %d", got.LatticeNodes)
	}
	if got.Walked >= int(got.LatticeNodes) && got.TagsAnonymous+got.TagsFailing == 0 {
		t.Fatalf("search walked all %d nodes and tagged nothing", got.LatticeNodes)
	}
}
