package hierarchy

import (
	"sort"
	"strconv"

	"kanon/internal/relation"
)

// deriveFanout is the grouping factor for derived categorical trees.
const deriveFanout = 3

// Derive builds a generalization spec from the data itself: columns
// whose every value parses as an integer get interval hierarchies with
// data-derived bounds, and categorical columns get balanced fanout-3
// trees over their sorted distinct values with range labels like
// "axe..cat". This is what `kanon-datagen -hierarchy` emits and what
// hierarchy mode falls back to when no sidecar is given.
func Derive(t *relation.Table) *Spec {
	s := &Spec{Version: SpecVersion}
	for j, name := range t.Schema().Names() {
		attr := t.Schema().Attribute(j)
		s.Columns = append(s.Columns, deriveColumn(name, attr.Alphabet()))
	}
	return s
}

// deriveColumn picks a hierarchy shape for one column's alphabet.
func deriveColumn(name string, alphabet []string) ColumnSpec {
	if len(alphabet) == 0 {
		return ColumnSpec{Name: name, Kind: KindSuppress}
	}
	numeric := true
	for _, v := range alphabet {
		if _, err := strconv.Atoi(v); err != nil {
			numeric = false
			break
		}
	}
	if numeric {
		return ColumnSpec{Name: name, Kind: KindInterval}
	}
	return ColumnSpec{Name: name, Kind: KindTree, Paths: deriveTree(alphabet)}
}

// deriveTree groups the sorted distinct values into consecutive runs
// of deriveFanout per level until one group remains, then roots the
// tree at "*". Interior labels are "first..last" ranges of the leaves
// they cover, suffixed with "+" until unique — a pass-through group
// repeats its child's range, and Validate rejects a label that
// appears at two levels as a cycle.
func deriveTree(alphabet []string) map[string][]string {
	leaves := append([]string(nil), alphabet...)
	sort.Strings(leaves)
	used := make(map[string]bool, 2*len(leaves))
	for _, v := range leaves {
		used[v] = true
	}
	// member[i] lists the leaves under the i-th group at the current
	// level; groups keep the leaves' sorted order.
	member := make([][]string, len(leaves))
	for i, v := range leaves {
		member[i] = []string{v}
	}
	paths := make(map[string][]string, len(leaves))
	for len(member) > 1 {
		var next [][]string
		for i := 0; i < len(member); i += deriveFanout {
			end := i + deriveFanout
			if end > len(member) {
				end = len(member)
			}
			var leavesUnder []string
			for _, m := range member[i:end] {
				leavesUnder = append(leavesUnder, m...)
			}
			label := rangeLabel(leavesUnder[0], leavesUnder[len(leavesUnder)-1])
			for used[label] {
				label += "+"
			}
			used[label] = true
			for _, leaf := range leavesUnder {
				paths[leaf] = append(paths[leaf], label)
			}
			next = append(next, leavesUnder)
		}
		member = next
	}
	for _, leaf := range leaves {
		paths[leaf] = append(paths[leaf], relation.StarString)
	}
	return paths
}
