package hierarchy

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"kanon/internal/relation"
)

// tableOf interns a header+rows table for tests.
func tableOf(t testing.TB, header []string, rows [][]string) *relation.Table {
	t.Helper()
	tab := relation.NewTable(relation.NewSchema(header...))
	for _, r := range rows {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// randomTable builds a small random table; starProb scatters
// pre-suppressed cells to exercise the star paths.
func randomTable(t testing.TB, rng *rand.Rand, n, m, alphabet int, starProb float64) *relation.Table {
	header := make([]string, m)
	for j := range header {
		header[j] = fmt.Sprintf("c%d", j)
	}
	rows := make([][]string, n)
	for i := range rows {
		row := make([]string, m)
		for j := range row {
			if rng.Float64() < starProb {
				row[j] = relation.StarString
			} else if j%2 == 1 {
				// Odd columns are numeric so Derive builds intervals.
				row[j] = fmt.Sprintf("%d", 10+rng.Intn(alphabet)*7)
			} else {
				row[j] = fmt.Sprintf("v%d", rng.Intn(alphabet))
			}
		}
		rows[i] = row
	}
	return tableOf(t, header, rows)
}

// naiveNode evaluates one lattice node the obvious way: render every
// row's labels, group by the rendered tuple, suppress undersized
// classes. The count-tree walk must agree exactly.
func naiveNode(t *relation.Table, cols []*Column, levels []int, k int) (suppressed int, ncp float64) {
	n, m := t.Len(), t.Degree()
	classes := map[string][]int{}
	for i := 0; i < n; i++ {
		row := t.Row(i)
		parts := make([]string, m)
		for j := 0; j < m; j++ {
			parts[j] = cols[j].Label(levels[j], cols[j].Code(levels[j], row[j]))
		}
		key := strings.Join(parts, "\x00")
		classes[key] = append(classes[key], i)
	}
	var sum float64
	for _, members := range classes {
		if len(members) < k {
			suppressed += len(members)
			sum += float64(len(members)) * float64(m)
			continue
		}
		for _, i := range members {
			row := t.Row(i)
			for j := 0; j < m; j++ {
				sum += cols[j].NCP(levels[j], cols[j].Code(levels[j], row[j]))
			}
		}
	}
	return suppressed, sum / (float64(n) * float64(m))
}

// allNodes enumerates every level vector of the compiled columns.
func allNodes(cols []*Column) [][]int {
	var out [][]int
	var rec func(prefix []int, j int)
	rec = func(prefix []int, j int) {
		if j == len(cols) {
			out = append(out, append([]int(nil), prefix...))
			return
		}
		for l := 0; l <= cols[j].Height; l++ {
			rec(append(prefix, l), j+1)
		}
	}
	rec(nil, 0)
	return out
}

// TestCountTreeMatchesNaiveGroupBy is the core equivalence property:
// for random tables (including pre-starred cells) and every lattice
// node, the single count-tree walk reports exactly the suppression
// count and NCP of a direct group-by of the generalized table.
func TestCountTreeMatchesNaiveGroupBy(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		starProb := 0.0
		if seed >= 4 {
			starProb = 0.1
		}
		tab := randomTable(t, rng, 40+rng.Intn(40), 3, 4, starProb)
		cols, err := Compile(Derive(tab), tab)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ct := BuildCountTree(tab, cols)
		if ct.Rows() != tab.Len() {
			t.Fatalf("seed %d: tree rows %d != %d", seed, ct.Rows(), tab.Len())
		}
		k := 2 + rng.Intn(3)
		for _, levels := range allNodes(cols) {
			wantSup, wantNCP := naiveNode(tab, cols, levels, k)
			ok, sup, ncp := ct.Check(levels, k, tab.Len(), false)
			if !ok {
				t.Fatalf("seed %d node %v: walk not ok under budget n", seed, levels)
			}
			if sup != wantSup {
				t.Fatalf("seed %d node %v: suppressed %d, naive %d", seed, levels, sup, wantSup)
			}
			if math.Abs(ncp-wantNCP) > 1e-9 {
				t.Fatalf("seed %d node %v: ncp %g, naive %g", seed, levels, ncp, wantNCP)
			}
		}
	}
}

// TestCountTreeAbortsOverBudget checks the pruned walk agrees with the
// full walk on the anonymity verdict.
func TestCountTreeAbortsOverBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := randomTable(t, rng, 60, 3, 5, 0)
	cols, err := Compile(Derive(tab), tab)
	if err != nil {
		t.Fatal(err)
	}
	ct := BuildCountTree(tab, cols)
	for _, levels := range allNodes(cols) {
		for _, maxSup := range []int{0, 3, 10} {
			_, fullSup, _ := ct.Check(levels, 3, maxSup, true)
			ok, _, _ := ct.Check(levels, 3, maxSup, false)
			if want := fullSup <= maxSup; ok != want {
				t.Fatalf("node %v maxSup %d: pruned ok=%v, full suppressed=%d", levels, maxSup, ok, fullSup)
			}
		}
	}
}

// TestNCPMonotoneAlongChains: with no suppression budget, walking any
// chain up the lattice (one column at a time) never decreases NCP.
func TestNCPMonotoneAlongChains(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := randomTable(t, rng, 50, 3, 4, 0.05)
	cols, err := Compile(Derive(tab), tab)
	if err != nil {
		t.Fatal(err)
	}
	ct := BuildCountTree(tab, cols)
	for trial := 0; trial < 200; trial++ {
		levels := make([]int, len(cols))
		_, _, prev := ct.Check(levels, 1, 0, true) // k=1: nothing suppressed, pure NCP
		for {
			// Pick a random raisable column.
			var raisable []int
			for j, c := range cols {
				if levels[j] < c.Height {
					raisable = append(raisable, j)
				}
			}
			if len(raisable) == 0 {
				break
			}
			j := raisable[rng.Intn(len(raisable))]
			levels[j]++
			_, _, cur := ct.Check(levels, 1, 0, true)
			if cur < prev-1e-12 {
				t.Fatalf("NCP decreased along chain at %v: %g -> %g", levels, prev, cur)
			}
			prev = cur
		}
	}
}

// TestCountTreeTrivialShapes covers degenerate inputs.
func TestCountTreeTrivialShapes(t *testing.T) {
	// Single distinct tuple: anonymous at the bottom for any k ≤ n.
	tab := tableOf(t, []string{"a", "b"}, [][]string{{"x", "1"}, {"x", "1"}, {"x", "1"}})
	cols, err := Compile(Derive(tab), tab)
	if err != nil {
		t.Fatal(err)
	}
	ct := BuildCountTree(tab, cols)
	if ct.Distinct() != 1 {
		t.Fatalf("distinct = %d, want 1", ct.Distinct())
	}
	ok, sup, ncp := ct.Check([]int{0, 0}, 3, 0, false)
	if !ok || sup != 0 || ncp != 0 {
		t.Fatalf("uniform table at bottom: ok=%v sup=%d ncp=%g", ok, sup, ncp)
	}
}
