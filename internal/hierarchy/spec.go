package hierarchy

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"unicode/utf8"
)

// SpecVersion tags the sidecar format. Decoders reject other versions
// instead of guessing.
const SpecVersion = "kanon-hierarchy/1"

// Column kinds a spec may declare.
const (
	// KindTree is an explicit per-value generalization tree, given as
	// uniform-height root-ward paths.
	KindTree = "tree"
	// KindInterval is an integer column generalized to aligned
	// intervals that double (or ×fanout) per level.
	KindInterval = "interval"
	// KindSuppress is the paper's two-level value → ★ hierarchy.
	KindSuppress = "suppress"
)

// Spec is the sidecar description of one table's generalization
// hierarchies: one ColumnSpec per quasi-identifier column, matched to
// the table by column name.
type Spec struct {
	// Version is SpecVersion; empty is accepted on input (and stamped
	// on encode) so hand-written specs stay terse.
	Version string `json:"version,omitempty"`
	// Columns declares one hierarchy per table column.
	Columns []ColumnSpec `json:"columns"`
}

// ColumnSpec declares one column's hierarchy.
type ColumnSpec struct {
	// Name is the table column this hierarchy applies to.
	Name string `json:"name"`
	// Kind is one of KindTree, KindInterval, KindSuppress. Empty means
	// KindTree when Paths is present.
	Kind string `json:"kind,omitempty"`
	// Paths (KindTree) maps each leaf value to its root-ward ancestor
	// chain: Paths[leaf][l-1] is the leaf's label at level l, and the
	// final element is the column's root. Every path must have the same
	// length — full-domain generalization needs a well-defined level.
	Paths map[string][]string `json:"paths,omitempty"`
	// Width (KindInterval) is the level-1 interval width; 0 derives a
	// width from the data range.
	Width int `json:"width,omitempty"`
	// Fanout (KindInterval) is how many intervals merge per level above
	// the first; 0 means 2.
	Fanout int `json:"fanout,omitempty"`
	// Min and Max (KindInterval) bound the domain for the NCP
	// denominator and interval alignment; nil derives them from data.
	Min *int `json:"min,omitempty"`
	Max *int `json:"max,omitempty"`
}

// kind resolves the column's effective kind.
func (c *ColumnSpec) kind() string {
	if c.Kind == "" && len(c.Paths) > 0 {
		return KindTree
	}
	return c.Kind
}

// Height returns the number of generalization levels above the raw
// values that this column spec declares, or 0 when the height is
// data-dependent (intervals with derived bounds).
func (c *ColumnSpec) Height() int {
	if c.kind() == KindTree {
		for _, p := range c.Paths {
			return len(p)
		}
	}
	if c.kind() == KindSuppress {
		return 1
	}
	return 0
}

// Validate checks the spec's internal consistency: well-formed kinds,
// unique column names, and — for trees — uniform path heights (no
// level gaps), acyclic labeling (no label on two levels), and
// consistent parents (no dangling or conflicting edges).
func (s *Spec) Validate() error {
	if s.Version != "" && s.Version != SpecVersion {
		return fmt.Errorf("hierarchy: spec version %q, want %q", s.Version, SpecVersion)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("hierarchy: spec declares no columns")
	}
	seen := map[string]bool{}
	for i := range s.Columns {
		c := &s.Columns[i]
		if c.Name == "" {
			return fmt.Errorf("hierarchy: column %d has no name", i)
		}
		if !utf8.ValidString(c.Name) {
			return fmt.Errorf("hierarchy: column %d name is not valid UTF-8", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("hierarchy: column %q declared twice", c.Name)
		}
		seen[c.Name] = true
		if err := c.validate(); err != nil {
			return fmt.Errorf("hierarchy: column %q: %w", c.Name, err)
		}
	}
	return nil
}

// validate checks one column spec.
func (c *ColumnSpec) validate() error {
	switch c.kind() {
	case KindTree:
		return c.validateTree()
	case KindInterval:
		if len(c.Paths) > 0 {
			return fmt.Errorf("interval column carries tree paths")
		}
		if c.Width < 0 {
			return fmt.Errorf("width %d < 0", c.Width)
		}
		if c.Fanout != 0 && c.Fanout < 2 {
			return fmt.Errorf("fanout %d < 2", c.Fanout)
		}
		if c.Min != nil && c.Max != nil && *c.Min > *c.Max {
			return fmt.Errorf("min %d > max %d", *c.Min, *c.Max)
		}
		return nil
	case KindSuppress:
		if len(c.Paths) > 0 || c.Width != 0 || c.Fanout != 0 || c.Min != nil || c.Max != nil {
			return fmt.Errorf("suppress column carries hierarchy fields")
		}
		return nil
	case "":
		return fmt.Errorf("no kind and no paths")
	default:
		return fmt.Errorf("unknown kind %q", c.Kind)
	}
}

// validateTree enforces the tree invariants the compiler and the
// lattice search rely on.
func (c *ColumnSpec) validateTree() error {
	if c.Width != 0 || c.Fanout != 0 || c.Min != nil || c.Max != nil {
		return fmt.Errorf("tree column carries interval fields")
	}
	if len(c.Paths) == 0 {
		return fmt.Errorf("tree column declares no paths")
	}
	leaves := sortedKeys(c.Paths)
	height := len(c.Paths[leaves[0]])
	if height < 1 {
		return fmt.Errorf("leaf %q has an empty path", leaves[0])
	}
	root := c.Paths[leaves[0]][height-1]
	// levelOf records the unique level each label lives at; a label on
	// two levels would make the implied parent relation cyclic or
	// ill-formed, so it is rejected as a cycle.
	levelOf := map[string]int{}
	// parentOf records each label's unique parent label; conflicting
	// re-declarations are dangling/inconsistent edges.
	parentOf := map[string]string{}
	for _, leaf := range leaves {
		if leaf == "" {
			return fmt.Errorf("tree declares an empty leaf value")
		}
		if !utf8.ValidString(leaf) {
			return fmt.Errorf("leaf %q is not valid UTF-8", leaf)
		}
		path := c.Paths[leaf]
		if len(path) != height {
			return fmt.Errorf("leaf %q has %d levels, leaf %q has %d (level gap)",
				leaf, len(path), leaves[0], height)
		}
		if path[height-1] != root {
			return fmt.Errorf("leaf %q ends at root %q, leaf %q at %q",
				leaf, path[height-1], leaves[0], root)
		}
		prev := leaf
		for l, label := range path {
			if label == "" {
				return fmt.Errorf("leaf %q has an empty label at level %d", leaf, l+1)
			}
			if !utf8.ValidString(label) {
				return fmt.Errorf("leaf %q has a non-UTF-8 label at level %d", leaf, l+1)
			}
			if at, ok := levelOf[label]; ok {
				if at != l+1 {
					return fmt.Errorf("label %q appears at level %d and level %d (cycle)", label, at, l+1)
				}
			} else {
				levelOf[label] = l + 1
			}
			if p, ok := parentOf[prev]; ok && p != label {
				return fmt.Errorf("label %q has parents %q and %q (dangling parent)", prev, p, label)
			}
			parentOf[prev] = label
			prev = label
		}
	}
	for _, leaf := range leaves {
		if l, ok := levelOf[leaf]; ok {
			return fmt.Errorf("leaf %q also appears as a level-%d label (cycle)", leaf, l)
		}
	}
	return nil
}

// ParseSpec decodes a sidecar from JSON (first non-space byte '{') or
// CSV (anything else) and validates it. The CSV form is one record per
// leaf: column,leaf,level1,…,root — the familiar per-attribute
// hierarchy-file shape, with '#' comment lines allowed.
func ParseSpec(b []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(b, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("hierarchy: empty spec")
	}
	var s *Spec
	var err error
	if trimmed[0] == '{' {
		s, err = parseJSONSpec(trimmed)
	} else {
		s, err = parseCSVSpec(b)
	}
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseJSONSpec strictly decodes the JSON form; unknown fields are
// rejected so typos fail loudly instead of silently meaning defaults.
func parseJSONSpec(b []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("hierarchy: decoding spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("hierarchy: trailing data after spec object")
	}
	return &s, nil
}

// parseCSVSpec decodes the CSV form into tree columns.
func parseCSVSpec(b []byte) (*Spec, error) {
	cr := csv.NewReader(bytes.NewReader(b))
	cr.Comment = '#'
	cr.FieldsPerRecord = -1 // columns may have different heights
	cr.TrimLeadingSpace = true
	var s Spec
	byName := map[string]*ColumnSpec{}
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("hierarchy: csv spec: %w", err)
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("hierarchy: csv spec record %d has %d fields, want ≥ 3 (column,leaf,levels…)", line, len(rec))
		}
		name := rec[0]
		col := byName[name]
		if col == nil {
			s.Columns = append(s.Columns, ColumnSpec{Name: name, Kind: KindTree, Paths: map[string][]string{}})
			col = &s.Columns[len(s.Columns)-1]
			byName[name] = col
		}
		leaf := rec[1]
		if _, dup := col.Paths[leaf]; dup {
			return nil, fmt.Errorf("hierarchy: csv spec declares leaf %q of column %q twice", leaf, name)
		}
		col.Paths[leaf] = append([]string(nil), rec[2:]...)
	}
	if len(s.Columns) == 0 {
		return nil, fmt.Errorf("hierarchy: empty spec")
	}
	return &s, nil
}

// Encode serializes the spec as canonical indented JSON (the sidecar
// format kanon-datagen emits), stamping the version.
func (s *Spec) Encode() ([]byte, error) {
	out := *s
	out.Version = SpecVersion
	if err := out.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("hierarchy: encoding spec: %w", err)
	}
	return append(b, '\n'), nil
}

// Column returns the spec entry for the named column.
func (s *Spec) Column(name string) (*ColumnSpec, bool) {
	for i := range s.Columns {
		if s.Columns[i].Name == name {
			return &s.Columns[i], true
		}
	}
	return nil, false
}

// sortedKeys returns the map's keys in sorted order, the package's
// deterministic iteration idiom.
func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// rangeLabel renders the derived-tree label covering sorted values
// lo..hi; singleton groups keep both endpoints so a derived interior
// label can never collide with a leaf value.
func rangeLabel(lo, hi string) string {
	return lo + ".." + hi
}
