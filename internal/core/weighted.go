package core

import (
	"context"
	"fmt"

	"kanon/internal/metric"
	"kanon/internal/relation"
)

// Column-weighted costs. The paper charges every suppressed entry 1;
// real releases value columns differently (starring a rare diagnosis
// hurts more than starring a zip digit). All of §4's machinery survives
// weighting because the weighted disagreement count
//
//	d_w(u, v) = Σ_j w_j · [u[j] ≠ v[j]]
//
// is still a metric (a nonnegative combination of per-column metrics),
// so ball families, Lemma 4.2, the greedy analysis, and Reduce carry
// over verbatim; only the cost accounting changes.

// Weights holds one nonnegative integer weight per column. A nil
// Weights means all-ones (the paper's objective).
type Weights []int

// UniformWeights returns the all-ones weight vector of length m.
func UniformWeights(m int) Weights {
	w := make(Weights, m)
	for j := range w {
		w[j] = 1
	}
	return w
}

// Validate checks the weight vector against a table's degree.
func (w Weights) Validate(m int) error {
	if w == nil {
		return nil
	}
	if len(w) != m {
		return fmt.Errorf("core: %d weights for degree %d", len(w), m)
	}
	for j, x := range w {
		if x < 0 {
			return fmt.Errorf("core: negative weight %d for column %d", x, j)
		}
	}
	return nil
}

// col returns the weight of column j (1 when w is nil).
func (w Weights) col(j int) int {
	if w == nil {
		return 1
	}
	return w[j]
}

// AnonWeighted returns the weighted Anon(S): each non-uniform column j
// costs |S|·w_j.
func AnonWeighted(t *relation.Table, indices []int, w Weights) int {
	if len(indices) <= 1 {
		return 0
	}
	m := t.Degree()
	first := t.Row(indices[0])
	cost := 0
	for j := 0; j < m; j++ {
		v := first[j]
		for _, i := range indices[1:] {
			if t.Row(i)[j] != v {
				cost += len(indices) * w.col(j)
				break
			}
		}
	}
	return cost
}

// CostWeighted returns Σ_{S∈p} AnonWeighted(S).
func (p *Partition) CostWeighted(t *relation.Table, w Weights) int {
	total := 0
	for _, g := range p.Groups {
		total += AnonWeighted(t, g, w)
	}
	return total
}

// WeightedStars returns the weighted objective value of a suppressor:
// Σ over suppressed entries (i, j) of w_j.
func (s *Suppressor) WeightedStars(w Weights) int {
	total := 0
	for _, row := range s.mask {
		for j, b := range row {
			if b {
				total += w.col(j)
			}
		}
	}
	return total
}

// WeightedMatrix builds the d_w distance matrix for a table.
func WeightedMatrix(t *relation.Table, w Weights) *metric.Matrix {
	m, _ := WeightedMatrixCtx(context.Background(), t, w, 1)
	return m
}

// WeightedMatrixCtx is WeightedMatrix with cancellation and
// parallelism: the O(n²m) fill polls ctx per row and shards rows
// across workers, like the unweighted NewMatrixCtx. The matrix is
// byte-identical for every worker count; a non-nil error wraps
// ctx.Err().
func WeightedMatrixCtx(ctx context.Context, t *relation.Table, w Weights, workers int) (*metric.Matrix, error) {
	if w == nil {
		return metric.NewMatrixCtx(ctx, t, workers)
	}
	return metric.NewMatrixFuncCtx(ctx, t.Len(), workers, func(i, j int) int {
		ri, rj := t.Row(i), t.Row(j)
		d := 0
		for c := range ri {
			if ri[c] != rj[c] {
				d += w.col(c)
			}
		}
		return d
	})
}
