package core

import (
	"math"

	"kanon/internal/metric"
	"kanon/internal/relation"
)

// This file implements the quantitative relationships of §4.1 so that
// experiments E1/E2/E6 can check them on concrete instances.
//
// A note on constants. For a group S, let U(S) be its number of
// non-uniform columns, so Anon(S) = |S|·U(S) exactly (a non-uniform
// column must be starred in every row of the group, a uniform one in
// none). Two inequalities are certain:
//
//	d(S) ≤ U(S) ≤ (|S|−1)·d(S)
//
// The lower holds because every column on which a farthest pair differs
// is non-uniform; the upper because fixing any u ∈ S, each non-uniform
// column is witnessed against u by some v (if column j has x[j] ≠ y[j]
// then u differs from x or from y at j), so U(S) = |∪_v diff(u, v)| ≤
// Σ_v d(u, v) ≤ (|S|−1)·d(S). The supplied paper text prints the
// stronger per-group claim Anon(S) ≤ |S|·d(S), which admits
// counterexamples (S = {110, 011, 101}: d = 2 but U = 3); sunflower
// families show U(S) can reach ≈ |S|·d(S)/2, so the safe aggregate bound
// is OPT ≤ (2k−1)(2k−2)·d(Π) for a (k, 2k−1) partition Π, giving a
// final ratio ≤ ((2k−1)(2k−2)/k)·(1+ln k) ≤ 4k(1+ln k) — consistent with
// the abstract's "O(k log k) where the constant in the big-O is no more
// than 4". Experiments report both the printed and the safe bound.

// AnonDiameterBounds reports, for a single group S, the quantities the
// §4.1 analysis relates: |S|·d(S) ≤ Anon(S) ≤ |S|·(|S|−1)·d(S).
type AnonDiameterBounds struct {
	Size       int // |S|
	Diameter   int // d(S)
	NonUniform int // number of non-uniform columns U(S)
	Anon       int // |S| · U(S)
}

// GroupBounds computes the quantities of AnonDiameterBounds for one
// group.
func GroupBounds(t *relation.Table, m metric.Kernel, group []int) AnonDiameterBounds {
	return AnonDiameterBounds{
		Size:       len(group),
		Diameter:   m.Diameter(group),
		NonUniform: NonUniformColumns(t, group),
		Anon:       Anon(t, group),
	}
}

// Lemma41Check holds the quantities Lemma 4.1 relates for a whole
// (k, 2k−1) partition, under both the paper's printed constants and the
// safe (provable) ones.
type Lemma41Check struct {
	K           int
	DiameterSum int // d(Π)
	Cost        int // Σ_{S∈Π} Anon(S)

	// Paper's printed sandwich: (k/2)·d(Π) ≤ Cost and Cost ≤ (2k−1)·d(Π).
	PaperLower, PaperUpper           float64
	PaperLowerHolds, PaperUpperHolds bool

	// Safe sandwich: k·d(Π) ≤ Cost and Cost ≤ (2k−1)(2k−2)·d(Π).
	SafeLower, SafeUpper           float64
	SafeLowerHolds, SafeUpperHolds bool
}

// CheckLemma41 evaluates both sandwiches on a concrete (k, 2k−1)
// partition.
func CheckLemma41(t *relation.Table, m metric.Kernel, p *Partition, k int) Lemma41Check {
	c := Lemma41Check{
		K:           k,
		DiameterSum: p.DiameterSum(m),
		Cost:        p.Cost(t),
	}
	ds := float64(c.DiameterSum)
	c.PaperLower = float64(k) / 2 * ds
	c.PaperUpper = float64(2*k-1) * ds
	c.SafeLower = float64(k) * ds
	c.SafeUpper = float64(2*k-1) * float64(2*k-2) * ds
	cost := float64(c.Cost)
	c.PaperLowerHolds = cost >= c.PaperLower
	c.PaperUpperHolds = cost <= c.PaperUpper
	c.SafeLowerHolds = cost >= c.SafeLower
	c.SafeUpperHolds = cost <= c.SafeUpper
	return c
}

// Theorem41Bound returns the approximation guarantee 3k(1 + ln k) as
// printed in Theorem 4.1.
func Theorem41Bound(k int) float64 {
	return 3 * float64(k) * (1 + math.Log(float64(k)))
}

// Theorem41SafeBound returns the guarantee that follows from the safe
// per-group inequality: ((2k−1)(2k−2)/k)·(1 + ln k) ≤ 4k(1 + ln k).
func Theorem41SafeBound(k int) float64 {
	return float64(2*k-1) * float64(2*k-2) / float64(k) * (1 + math.Log(float64(k)))
}

// Theorem42Bound returns the approximation guarantee 6k(1 + ln m) as
// printed in Theorem 4.2.
func Theorem42Bound(k, m int) float64 {
	return 6 * float64(k) * (1 + math.Log(float64(m)))
}

// Theorem42SafeBound is the ball-family analogue of Theorem41SafeBound:
// the greedy cover over balls is a (1 + ln n)-approximation in the worst
// case (set sizes may reach n), each ball has d(S_{c,i}) ≤ 2i (Lemma
// 4.2), and the per-group conversion loses (2k−1)(2k−2)/k.
func Theorem42SafeBound(k, n int) float64 {
	return 2 * float64(2*k-1) * float64(2*k-2) / float64(k) * (1 + math.Log(float64(n)))
}
