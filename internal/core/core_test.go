package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kanon/internal/metric"
	"kanon/internal/relation"
)

func TestSuppressorApply(t *testing.T) {
	tab := relation.MustFromBitstrings("1010", "1110", "0110")
	s := NewSuppressor(3, 4)
	// The paper's §4 example suppressor t(b1 b2 b3 b4) = ★★b3b4.
	for i := 0; i < 3; i++ {
		s.Suppress(i, 0)
		s.Suppress(i, 1)
	}
	if got := s.Stars(); got != 6 {
		t.Fatalf("Stars = %d, want 6", got)
	}
	out := s.Apply(tab)
	if !out.IsKAnonymous(3) {
		t.Error("anonymized example should be 3-anonymous")
	}
	for i := 0; i < 3; i++ {
		r := out.Row(i)
		if r[0] != relation.Star || r[1] != relation.Star {
			t.Errorf("row %d = %v, want first two entries starred", i, r)
		}
	}
	// Original table untouched.
	if tab.TotalStars() != 0 {
		t.Error("Apply mutated the input table")
	}
	if !s.Suppressed(0, 1) || s.Suppressed(0, 2) {
		t.Error("Suppressed() reports wrong mask")
	}
	if s.Rows() != 3 {
		t.Errorf("Rows = %d, want 3", s.Rows())
	}
}

func TestAnonCost(t *testing.T) {
	tab := relation.MustFromBitstrings("1010", "1110", "0110")
	// Non-uniform columns of the full set: col0 (1,1,0), col1 (0,1,1);
	// cols 2,3 are uniform. Anon = 3 rows × 2 cols = 6.
	if got := Anon(tab, []int{0, 1, 2}); got != 6 {
		t.Errorf("Anon = %d, want 6", got)
	}
	if got := Anon(tab, []int{1}); got != 0 {
		t.Errorf("singleton Anon = %d, want 0", got)
	}
	if got := Anon(tab, nil); got != 0 {
		t.Errorf("empty Anon = %d, want 0", got)
	}
	if got := NonUniformColumns(tab, []int{0, 1}); got != 1 {
		t.Errorf("NonUniformColumns({0,1}) = %d, want 1", got)
	}
}

func TestAnonEqualsGroupStarCount(t *testing.T) {
	// Property: applying a partition's suppressor yields exactly
	// Cost(partition) stars and a table where each group is uniform.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		m := 2 + rng.Intn(6)
		vecs := make([][]int, n)
		for i := range vecs {
			v := make([]int, m)
			for j := range v {
				v[j] = rng.Intn(3)
			}
			vecs[i] = v
		}
		tab := relation.MustFromVectors(vecs)
		// Random partition into contiguous chunks of size ≥ 2.
		var p Partition
		perm := rng.Perm(n)
		for len(perm) > 0 {
			sz := 2 + rng.Intn(3)
			if sz > len(perm) || len(perm)-sz == 1 {
				sz = len(perm)
			}
			p.Groups = append(p.Groups, perm[:sz])
			perm = perm[sz:]
		}
		sup := p.Suppressor(tab)
		if sup.Stars() != p.Cost(tab) {
			return false
		}
		out := sup.Apply(tab)
		for _, g := range p.Groups {
			first := out.Row(g[0])
			for _, i := range g[1:] {
				if !out.Row(i).Equal(first) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPartitionValidate(t *testing.T) {
	cases := []struct {
		name   string
		groups [][]int
		n, k   int
		kMax   int
		wantOK bool
	}{
		{"valid", [][]int{{0, 1}, {2, 3}}, 4, 2, 3, true},
		{"undersized group", [][]int{{0}, {1, 2, 3}}, 4, 2, 0, false},
		{"oversized group", [][]int{{0, 1, 2, 3}}, 4, 2, 3, false},
		{"duplicate index", [][]int{{0, 1}, {1, 2, 3}}, 4, 2, 0, false},
		{"missing index", [][]int{{0, 1}}, 4, 2, 0, false},
		{"out of range", [][]int{{0, 1}, {2, 9}}, 4, 2, 0, false},
		{"negative index", [][]int{{0, 1}, {2, -1}}, 4, 2, 0, false},
		{"no max check when kMax=0", [][]int{{0, 1, 2, 3}}, 4, 2, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := Partition{Groups: c.groups}
			err := p.Validate(c.n, c.k, c.kMax)
			if (err == nil) != c.wantOK {
				t.Errorf("Validate = %v, wantOK=%v", err, c.wantOK)
			}
		})
	}
}

func TestPartitionCostAndDiameterSum(t *testing.T) {
	tab := relation.MustFromBitstrings("0000", "0001", "1110", "1111")
	m := metric.NewMatrix(tab)
	p := Partition{Groups: [][]int{{0, 1}, {2, 3}}}
	if got := p.Cost(tab); got != 4 { // each pair differs in 1 column → 2 stars per group
		t.Errorf("Cost = %d, want 4", got)
	}
	if got := p.DiameterSum(m); got != 2 {
		t.Errorf("DiameterSum = %d, want 2", got)
	}
}

func TestSplitOversize(t *testing.T) {
	p := Partition{Groups: [][]int{{0, 1, 2, 3, 4, 5, 6}}}
	p.SplitOversize(2)
	for _, g := range p.Groups {
		if len(g) < 2 || len(g) > 3 {
			t.Errorf("group size %d outside [2,3]", len(g))
		}
	}
	if err := p.Validate(7, 2, 3); err != nil {
		t.Errorf("split partition invalid: %v", err)
	}
	// A group below 2k is untouched.
	q := Partition{Groups: [][]int{{0, 1, 2}}}
	q.SplitOversize(2)
	if len(q.Groups) != 1 || len(q.Groups[0]) != 3 {
		t.Errorf("SplitOversize split a size-3 group at k=2: %v", q.Groups)
	}
}

// TestSplitNeverIncreasesCost verifies the paper's §4.1 wlog: splitting
// an oversize group into parts of size ≥ k never increases total stars.
func TestSplitNeverIncreasesCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(2)
		n := 2*k + rng.Intn(3*k)
		m := 2 + rng.Intn(5)
		vecs := make([][]int, n)
		for i := range vecs {
			v := make([]int, m)
			for j := range v {
				v[j] = rng.Intn(2)
			}
			vecs[i] = v
		}
		tab := relation.MustFromVectors(vecs)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		whole := Partition{Groups: [][]int{all}}
		before := whole.Cost(tab)
		whole.SplitOversize(k)
		if err := whole.Validate(n, k, 2*k-1); err != nil {
			return false
		}
		return whole.Cost(tab) <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitOversizeSorted(t *testing.T) {
	// Two well-separated clusters interleaved inside one big group; the
	// similarity-aware split should recover them, and never cost more
	// than the arbitrary split.
	tab := relation.MustFromBitstrings(
		"000000", "111111", "000001", "111110", "000010", "111101",
	)
	m := metric.NewMatrix(tab)
	arbitrary := Partition{Groups: [][]int{{0, 1, 2, 3, 4, 5}}}
	sorted := Partition{Groups: [][]int{{0, 1, 2, 3, 4, 5}}}
	arbitrary.SplitOversize(3)
	sorted.SplitOversizeSorted(3, m)
	if err := sorted.Validate(6, 3, 5); err != nil {
		t.Fatalf("sorted split invalid: %v", err)
	}
	ca, cs := arbitrary.Cost(tab), sorted.Cost(tab)
	if cs > ca {
		t.Errorf("similarity-aware split cost %d > arbitrary %d", cs, ca)
	}
	// The nearest-neighbor chain from row 0 gathers the even cluster
	// first: expect the clusters separated exactly.
	if cs != 12 { // two groups of 3, each with 2 non-uniform columns × 3 rows
		t.Errorf("sorted split cost = %d, want 12", cs)
	}
}

func TestPartitionSuppressorProducesKAnonymity(t *testing.T) {
	tab := relation.MustFromBitstrings("1010", "1110", "0110", "0001", "1001")
	p := Partition{Groups: [][]int{{0, 1, 2}, {3, 4}}}
	out := p.Suppressor(tab).Apply(tab)
	if !out.IsKAnonymous(2) {
		t.Error("output not 2-anonymous")
	}
	grp := FromAnonymized(out)
	grp.Normalize()
	if len(grp.Groups) != 2 {
		t.Fatalf("recovered %d groups, want 2", len(grp.Groups))
	}
}

func TestFromAnonymized(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1, 1}, {2, 2}, {1, 1}, {2, 2}, {1, 1}})
	p := FromAnonymized(tab)
	p.Normalize()
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %v", p.Groups)
	}
	if len(p.Groups[0]) != 3 || p.Groups[0][0] != 0 {
		t.Errorf("first group = %v, want [0 2 4]", p.Groups[0])
	}
	if len(p.Groups[1]) != 2 || p.Groups[1][0] != 1 {
		t.Errorf("second group = %v, want [1 3]", p.Groups[1])
	}
}

func TestNormalize(t *testing.T) {
	p := Partition{Groups: [][]int{{5, 3}, {2, 0, 4}}}
	p.Normalize()
	if p.Groups[0][0] != 0 || p.Groups[1][0] != 3 {
		t.Errorf("Normalize order wrong: %v", p.Groups)
	}
}

func TestGroupBounds(t *testing.T) {
	tab := relation.MustFromBitstrings("110", "011", "101")
	m := metric.NewMatrix(tab)
	b := GroupBounds(tab, m, []int{0, 1, 2})
	if b.Diameter != 2 || b.NonUniform != 3 || b.Anon != 9 || b.Size != 3 {
		t.Errorf("GroupBounds = %+v", b)
	}
	// This is the counterexample to the printed Anon(S) ≤ |S|·d(S):
	// 9 > 3·2. The safe bound |S|(|S|−1)d(S) = 12 holds.
	if b.Anon <= b.Size*b.Diameter {
		t.Error("expected the printed per-group bound to fail on this instance")
	}
	if b.Anon > b.Size*(b.Size-1)*b.Diameter {
		t.Error("safe per-group bound violated")
	}
}

// TestSafeGroupBoundsProperty checks |S|·d(S) ≤ Anon(S) ≤ |S|(|S|−1)d(S)
// on random groups.
func TestSafeGroupBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		vecs := make([][]int, n)
		for i := range vecs {
			v := make([]int, m)
			for j := range v {
				v[j] = rng.Intn(3)
			}
			vecs[i] = v
		}
		tab := relation.MustFromVectors(vecs)
		mat := metric.NewMatrix(tab)
		g := make([]int, n)
		for i := range g {
			g[i] = i
		}
		b := GroupBounds(tab, mat, g)
		if b.Anon < b.Size*b.Diameter {
			return false
		}
		if b.Size > 1 && b.Anon > b.Size*(b.Size-1)*b.Diameter {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCheckLemma41(t *testing.T) {
	tab := relation.MustFromBitstrings("0000", "0001", "1110", "1111")
	m := metric.NewMatrix(tab)
	p := Partition{Groups: [][]int{{0, 1}, {2, 3}}}
	c := CheckLemma41(tab, m, &p, 2)
	if c.DiameterSum != 2 || c.Cost != 4 {
		t.Fatalf("check = %+v", c)
	}
	if !c.PaperLowerHolds || !c.PaperUpperHolds {
		t.Errorf("paper sandwich should hold here: %+v", c)
	}
	if !c.SafeLowerHolds || !c.SafeUpperHolds {
		t.Errorf("safe sandwich should hold here: %+v", c)
	}
}

func TestBoundFormulas(t *testing.T) {
	if got := Theorem41Bound(1); got != 3 { // 3·1·(1+ln 1) = 3
		t.Errorf("Theorem41Bound(1) = %v, want 3", got)
	}
	if Theorem41Bound(5) <= Theorem41Bound(2) {
		t.Error("Theorem41Bound should increase with k")
	}
	if Theorem42Bound(3, 100) <= Theorem42Bound(3, 4) {
		t.Error("Theorem42Bound should increase with m")
	}
	// Safe bound dominated by 4k(1+ln k).
	for k := 2; k <= 10; k++ {
		if got, cap := Theorem41SafeBound(k), 4*Theorem41Bound(k)/3; got > cap {
			t.Errorf("Theorem41SafeBound(%d) = %v exceeds 4k(1+ln k) = %v", k, got, cap)
		}
	}
	if Theorem42SafeBound(3, 10) <= 0 {
		t.Error("Theorem42SafeBound should be positive")
	}
}
