package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kanon/internal/metric"
	"kanon/internal/relation"
)

func TestWeightsValidate(t *testing.T) {
	if err := Weights(nil).Validate(5); err != nil {
		t.Errorf("nil weights rejected: %v", err)
	}
	if err := (Weights{1, 2, 3}).Validate(3); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
	if err := (Weights{1, 2}).Validate(3); err == nil {
		t.Error("short weights accepted")
	}
	if err := (Weights{1, -2, 3}).Validate(3); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestUniformWeights(t *testing.T) {
	w := UniformWeights(4)
	if len(w) != 4 {
		t.Fatalf("len = %d", len(w))
	}
	for j, x := range w {
		if x != 1 {
			t.Errorf("w[%d] = %d", j, x)
		}
	}
}

func TestAnonWeightedKnown(t *testing.T) {
	tab := relation.MustFromBitstrings("1010", "1110", "0110")
	g := []int{0, 1, 2}
	// Non-uniform columns: 0 and 1.
	w := Weights{10, 1, 100, 100}
	if got := AnonWeighted(tab, g, w); got != 3*(10+1) {
		t.Errorf("AnonWeighted = %d, want 33", got)
	}
	if got := AnonWeighted(tab, g, nil); got != Anon(tab, g) {
		t.Errorf("nil weights: %d != unweighted %d", got, Anon(tab, g))
	}
	if got := AnonWeighted(tab, []int{1}, w); got != 0 {
		t.Errorf("singleton = %d", got)
	}
}

// TestAnonWeightedReducesToUnweighted: all-ones weights reproduce the
// paper's objective everywhere.
func TestAnonWeightedReducesToUnweighted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(6)
		vecs := make([][]int, n)
		for i := range vecs {
			v := make([]int, m)
			for j := range v {
				v[j] = rng.Intn(3)
			}
			vecs[i] = v
		}
		tab := relation.MustFromVectors(vecs)
		g := rng.Perm(n)[:1+rng.Intn(n)]
		return AnonWeighted(tab, g, UniformWeights(m)) == Anon(tab, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCostWeightedAndWeightedStars(t *testing.T) {
	tab := relation.MustFromBitstrings("00", "01", "10", "11")
	p := Partition{Groups: [][]int{{0, 1}, {2, 3}}}
	w := Weights{5, 1}
	// Each group: column 1 non-uniform (weight 1) × 2 rows = 2; total 4.
	if got := p.CostWeighted(tab, w); got != 4 {
		t.Errorf("CostWeighted = %d, want 4", got)
	}
	sup := p.Suppressor(tab)
	if got := sup.WeightedStars(w); got != 4 {
		t.Errorf("WeightedStars = %d, want 4", got)
	}
	if got := sup.WeightedStars(nil); got != sup.Stars() {
		t.Errorf("nil-weight stars %d != %d", got, sup.Stars())
	}
}

func TestWeightedMatrix(t *testing.T) {
	tab := relation.MustFromBitstrings("00", "01", "11")
	w := Weights{7, 3}
	mat := WeightedMatrix(tab, w)
	if got := mat.Dist(0, 1); got != 3 {
		t.Errorf("d_w(00,01) = %d, want 3", got)
	}
	if got := mat.Dist(0, 2); got != 10 {
		t.Errorf("d_w(00,11) = %d, want 10", got)
	}
	// nil weights fall back to the plain matrix.
	plain := WeightedMatrix(tab, nil)
	if got := plain.Dist(0, 2); got != metric.Distance(tab.Row(0), tab.Row(2)) {
		t.Errorf("nil-weight matrix wrong: %d", got)
	}
}

// TestWeightedDistanceIsMetric: d_w keeps the triangle inequality.
func TestWeightedDistanceIsMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(6)
		w := make(Weights, m)
		for j := range w {
			w[j] = rng.Intn(9)
		}
		vecs := make([][]int, 3)
		for i := range vecs {
			v := make([]int, m)
			for j := range v {
				v[j] = rng.Intn(3)
			}
			vecs[i] = v
		}
		tab := relation.MustFromVectors(vecs)
		mat := WeightedMatrix(tab, w)
		return mat.Dist(0, 2) <= mat.Dist(0, 1)+mat.Dist(1, 2) &&
			mat.Dist(0, 1) == mat.Dist(1, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
