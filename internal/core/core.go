// Package core implements the problem definitions of the paper's §2 and
// the partition machinery of §4.1: suppressors, the k-anonymity
// predicate, the Anon(S) group cost, (k, 2k−1) partitions and their
// normalization, and the Lemma 4.1 relationship between k-anonymity cost
// and the k-minimum diameter sum.
package core

import (
	"fmt"
	"sort"

	"kanon/internal/metric"
	"kanon/internal/relation"
)

// Suppressor is the paper's map t: V → (Σ ∪ {★})^m, represented as a
// boolean mask per row: mask[i][j] == true means entry (i, j) is
// suppressed. A suppressor may only replace entries with ★, never change
// them (Definition 2.1); the mask representation makes that structural.
type Suppressor struct {
	mask [][]bool
}

// NewSuppressor returns an all-clear suppressor for an n×m table.
func NewSuppressor(n, m int) *Suppressor {
	mask := make([][]bool, n)
	for i := range mask {
		mask[i] = make([]bool, m)
	}
	return &Suppressor{mask: mask}
}

// Suppress marks entry (i, j) for suppression.
func (s *Suppressor) Suppress(i, j int) { s.mask[i][j] = true }

// Suppressed reports whether entry (i, j) is suppressed.
func (s *Suppressor) Suppressed(i, j int) bool { return s.mask[i][j] }

// Stars counts the suppressed entries — the paper's objective value.
func (s *Suppressor) Stars() int {
	n := 0
	for _, row := range s.mask {
		for _, b := range row {
			if b {
				n++
			}
		}
	}
	return n
}

// Rows reports the number of rows the suppressor covers.
func (s *Suppressor) Rows() int { return len(s.mask) }

// Apply returns t(V): a clone of the table with the masked entries
// replaced by ★.
func (s *Suppressor) Apply(t *relation.Table) *relation.Table {
	out := t.Clone()
	for i := 0; i < out.Len(); i++ {
		row := out.Row(i)
		for j := range row {
			if s.mask[i][j] {
				row[j] = relation.Star
			}
		}
	}
	return out
}

// Anon returns the paper's ANON(S): the minimum number of entries that
// must be suppressed so that all rows of S (given as indices into t)
// become identical. A coordinate must be starred in every row of S iff
// the rows are not already uniform on it, so
// Anon(S) = |S| × #(non-uniform coordinates of S).
func Anon(t *relation.Table, indices []int) int {
	if len(indices) <= 1 {
		return 0
	}
	return len(indices) * NonUniformColumns(t, indices)
}

// NonUniformColumns counts the coordinates on which the rows of S are
// not all equal.
func NonUniformColumns(t *relation.Table, indices []int) int {
	m := t.Degree()
	first := t.Row(indices[0])
	cnt := 0
	for j := 0; j < m; j++ {
		v := first[j]
		for _, i := range indices[1:] {
			if t.Row(i)[j] != v {
				cnt++
				break
			}
		}
	}
	return cnt
}

// Partition is a disjoint grouping of row indices; the image of a
// k-anonymizer (Π(t, V) in §4.1). Groups hold sorted row indices.
type Partition struct {
	Groups [][]int
}

// Validate checks that p is a partition of {0..n−1} with every group of
// size ≥ kMin (and ≤ kMax when kMax > 0). It returns a descriptive error
// otherwise.
func (p *Partition) Validate(n, kMin, kMax int) error {
	seen := make([]bool, n)
	total := 0
	for gi, g := range p.Groups {
		if len(g) < kMin {
			return fmt.Errorf("core: group %d has size %d < %d", gi, len(g), kMin)
		}
		if kMax > 0 && len(g) > kMax {
			return fmt.Errorf("core: group %d has size %d > %d", gi, len(g), kMax)
		}
		for _, i := range g {
			if i < 0 || i >= n {
				return fmt.Errorf("core: group %d contains out-of-range index %d", gi, i)
			}
			if seen[i] {
				return fmt.Errorf("core: index %d appears in more than one group", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("core: partition covers %d of %d rows", total, n)
	}
	return nil
}

// Cost returns Σ_{S∈p} Anon(S): the number of stars the partition's
// induced suppressor inserts.
func (p *Partition) Cost(t *relation.Table) int {
	total := 0
	for _, g := range p.Groups {
		total += Anon(t, g)
	}
	return total
}

// DiameterSum returns Σ_{S∈p} d(S), the objective of the k-minimum
// diameter sum problem.
func (p *Partition) DiameterSum(m metric.Kernel) int {
	total := 0
	for _, g := range p.Groups {
		total += m.Diameter(g)
	}
	return total
}

// Suppressor builds the suppressor induced by the partition: within each
// group, every non-uniform coordinate is starred in every row of the
// group (the algorithm of Corollary 4.1, step 3).
func (p *Partition) Suppressor(t *relation.Table) *Suppressor {
	s := NewSuppressor(t.Len(), t.Degree())
	for _, g := range p.Groups {
		if len(g) <= 1 {
			continue
		}
		first := t.Row(g[0])
		for j := 0; j < t.Degree(); j++ {
			uniform := true
			for _, i := range g[1:] {
				if t.Row(i)[j] != first[j] {
					uniform = false
					break
				}
			}
			if !uniform {
				for _, i := range g {
					s.Suppress(i, j)
				}
			}
		}
	}
	return s
}

// Normalize sorts each group and the group list, giving a canonical form
// for comparison in tests.
func (p *Partition) Normalize() {
	for _, g := range p.Groups {
		sort.Ints(g)
	}
	sort.Slice(p.Groups, func(a, b int) bool {
		ga, gb := p.Groups[a], p.Groups[b]
		if len(ga) == 0 || len(gb) == 0 {
			return len(ga) < len(gb)
		}
		return ga[0] < gb[0]
	})
}

// SplitOversize rewrites groups of size ≥ 2k into chunks with sizes in
// [k, 2k−1], implementing the paper's wlog in §4.1: splitting a set
// arbitrarily into parts of size ≥ k never increases the number of stars
// required. Chunks are taken in the group's current order; callers that
// want similarity-aware splitting should order the group first (see
// SplitOversizeSorted).
func (p *Partition) SplitOversize(k int) {
	var out [][]int
	for _, g := range p.Groups {
		out = append(out, splitChunks(g, k)...)
	}
	p.Groups = out
}

// splitChunks splits g into chunks of size in [k, 2k−1] preserving
// order. A group of size < 2k is returned unchanged. Chunks are copies:
// callers (e.g. the local-search refiner) append to groups in place,
// which must not clobber a sibling chunk sharing g's backing array.
func splitChunks(g []int, k int) [][]int {
	if len(g) < 2*k {
		return [][]int{g}
	}
	var out [][]int
	rest := g
	for len(rest) >= 2*k {
		out = append(out, append([]int(nil), rest[:k]...))
		rest = rest[k:]
	}
	out = append(out, append([]int(nil), rest...)) // k ≤ len(rest) ≤ 2k−1
	return out
}

// SplitOversizeSorted is SplitOversize after ordering each oversize
// group greedily by proximity (nearest-neighbor chain from the group's
// first element), so that consecutive chunks hold similar rows. This is
// the similarity-aware split policy measured by ablation E10; it
// preserves the same worst-case bound as the arbitrary split.
func (p *Partition) SplitOversizeSorted(k int, m metric.Kernel) {
	var out [][]int
	for _, g := range p.Groups {
		if len(g) < 2*k {
			out = append(out, g)
			continue
		}
		ordered := nearestNeighborOrder(g, m)
		out = append(out, splitChunks(ordered, k)...)
	}
	p.Groups = out
}

// nearestNeighborOrder returns g reordered as a greedy nearest-neighbor
// chain starting from g[0].
func nearestNeighborOrder(g []int, m metric.Kernel) []int {
	remaining := make([]int, len(g))
	copy(remaining, g)
	out := make([]int, 0, len(g))
	cur := remaining[0]
	remaining = remaining[1:]
	out = append(out, cur)
	for len(remaining) > 0 {
		best, bestD := 0, int(^uint(0)>>1)
		for idx, cand := range remaining {
			if d := m.Dist(cur, cand); d < bestD {
				best, bestD = idx, d
			}
		}
		cur = remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		out = append(out, cur)
	}
	return out
}

// FromAnonymized recovers the partition induced by an anonymized table:
// rows with identical (textually indistinguishable) contents form a
// group. This is Π(t, V) for a given k-anonymizer output.
func FromAnonymized(t *relation.Table) *Partition {
	buckets := make(map[string][]int)
	order := make([]string, 0)
	for i := 0; i < t.Len(); i++ {
		k := t.Signature(i)
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], i)
	}
	p := &Partition{}
	for _, k := range order {
		p.Groups = append(p.Groups, buckets[k])
	}
	return p
}
