package harness

// The regression bench suite: a fixed set of pinned-seed cases spanning
// every solver family, emitted as one self-describing JSON report
// (BenchReport). CI runs it on every push and compares the report
// against the checked-in BENCH_BASELINE.json with cmd/benchdiff: costs
// must match exactly (the algorithms are deterministic for a fixed
// seed), wall times within a tolerance. A calibration workload — a
// fixed-iteration xorshift loop — is timed alongside the cases so the
// comparator can scale wall tolerances when baseline and current runs
// executed on machines of different speeds.

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"kanon/internal/algo"
	"kanon/internal/core"
	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/hierarchy"
	"kanon/internal/metric"
	"kanon/internal/pattern"
	"kanon/internal/relation"
	"kanon/internal/stream"
)

// BenchSchema versions the report format; benchdiff refuses to compare
// reports with different schemas.
const BenchSchema = "kanon-bench-regress/1"

// BenchCase is one measured case of the regression suite.
type BenchCase struct {
	// Name identifies the case; baseline and current reports are joined
	// on it.
	Name string `json:"name"`
	// N, M, K describe the instance.
	N int `json:"n"`
	M int `json:"m"`
	K int `json:"k"`
	// Cost is the suppression objective the run produced. Deterministic
	// for a fixed seed, so benchdiff compares it exactly.
	Cost int `json:"cost"`
	// WallNS is the case's wall time in nanoseconds (monotonic clock),
	// best of BenchReps runs.
	WallNS int64 `json:"wall_ns"`
	// PeakAllocBytes is the heap allocated during the case — the
	// runtime.MemStats.TotalAlloc delta across one run, minimum over
	// the reps, after a forced GC. It upper-bounds the case's working
	// set, so it exposes O(n²) materialization: a dense n×n matrix
	// shows up as ≥ 2n² bytes here, the matrix-free kernel as O(n·m/64).
	// benchdiff reports it as informational only; it never gates.
	PeakAllocBytes int64 `json:"peak_alloc_bytes,omitempty"`
}

// BenchReport is the suite's self-describing output: environment,
// configuration, calibration, and the measured cases, in stable field
// order.
type BenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`
	Workers    int    `json:"workers"`
	Quick      bool   `json:"quick"`
	// CalibrationNS times a fixed-work xorshift loop on this machine;
	// the ratio of two reports' calibrations estimates their relative
	// single-core speed.
	CalibrationNS int64       `json:"calibration_ns"`
	Cases         []BenchCase `json:"cases"`
}

// BenchReps is how many times each case runs; the report keeps the
// minimum wall time, the standard noise-robust choice.
const BenchReps = 3

// calibrationIters is the fixed iteration count of the xorshift
// calibration loop (~10ms of scalar work on a current laptop core).
const calibrationIters = 20_000_000

// Calibrate times the fixed xorshift workload. The loop's state feeds
// back into itself so the compiler cannot elide it.
func Calibrate() int64 {
	best := int64(0)
	for rep := 0; rep < BenchReps; rep++ {
		start := time.Now()
		x := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < calibrationIters; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		el := time.Since(start).Nanoseconds()
		if x == 0 { // never true; keeps x live
			el++
		}
		if rep == 0 || el < best {
			best = el
		}
	}
	return best
}

// benchSpec defines one suite case: its shape and how to run it.
type benchSpec struct {
	name    string
	n, m, k int
	quickN  int // n under Config.Quick
	// kern pins the case to one distance-kernel backend; metric.Auto
	// (the zero value) defers to Config.Kernel.
	kern metric.Choice
	run  func(t *relation.Table, k, workers int, kern metric.Choice) (cost int, err error)
}

// benchSpecs returns the pinned suite. Every solver family appears:
// the two greedy algorithms (implicit and materialized families), the
// weighted variant, the pattern cover, the exact DP, and the streaming
// pipeline. Instances are sized so the full suite finishes in a few
// seconds — small enough for CI, large enough that a real regression
// in a hot path moves the needle.
func benchSpecs() []benchSpec {
	ball := func(t *relation.Table, k, workers int, kern metric.Choice) (int, error) {
		r, err := algo.GreedyBall(t, k, &algo.Options{Workers: workers, Kernel: kern})
		if err != nil {
			return 0, err
		}
		return r.Cost, nil
	}
	stream_ := func(t *relation.Table, k, workers int, kern metric.Choice) (int, error) {
		r, err := stream.Anonymize(t, k, &stream.Options{BlockRows: 512, Workers: workers, Kernel: kern})
		if err != nil {
			return 0, err
		}
		return r.Cost, nil
	}
	return []benchSpec{
		{name: "ball_planted", n: 1200, m: 8, k: 3, quickN: 300, run: ball},
		{name: "ball_census", n: 1500, m: 6, k: 4, quickN: 300, run: ball},
		{name: "ball_diam", n: 600, m: 8, k: 3, quickN: 200, run: func(t *relation.Table, k, workers int, kern metric.Choice) (int, error) {
			r, err := algo.GreedyBall(t, k, &algo.Options{TrueDiameterWeights: true, Workers: workers, Kernel: kern})
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
		{name: "ball_weighted", n: 800, m: 6, k: 3, quickN: 200, run: func(t *relation.Table, k, workers int, kern metric.Choice) (int, error) {
			w := make(core.Weights, t.Degree())
			for j := range w {
				w[j] = 1 + j%3
			}
			r, err := algo.GreedyBallWeighted(t, k, w, &algo.Options{Workers: workers})
			if err != nil {
				return 0, err
			}
			return r.WeightedCost, nil
		}},
		{name: "exhaustive", n: 60, m: 6, k: 2, quickN: 40, run: func(t *relation.Table, k, workers int, kern metric.Choice) (int, error) {
			r, err := algo.GreedyExhaustive(t, k, &algo.Options{Workers: workers, Kernel: kern})
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
		{name: "pattern", n: 800, m: 10, k: 3, quickN: 200, run: func(t *relation.Table, k, workers int, kern metric.Choice) (int, error) {
			r, err := pattern.Anonymize(t, k)
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
		{name: "exact_dp", n: 18, m: 5, k: 3, quickN: 14, run: func(t *relation.Table, k, workers int, kern metric.Choice) (int, error) {
			r, err := exact.Solve(t, k, exact.Stars)
			if err != nil {
				return 0, err
			}
			return r.Value, nil
		}},
		{name: "stream", n: 8000, m: 8, k: 3, quickN: 1500, run: stream_},
		// The two large-n cases pin the matrix-free kernel: at these
		// sizes a dense matrix would cost 800 MB (ball_bitset) and make
		// the case a memory benchmark instead of a kernel benchmark.
		// Their peak_alloc_bytes in the baseline documents the
		// O(n·m/64) footprint.
		{name: "ball_bitset", n: 20000, m: 8, k: 3, quickN: 2000, kern: metric.Bitset, run: ball},
		{name: "stream_bitset", n: 100000, m: 8, k: 3, quickN: 5000, kern: metric.Bitset, run: stream_},
		// The hierarchy cases pin the generalization-lattice solver:
		// count-tree construction plus the tagged cut search. The planted
		// case runs with no budget (pure pruning path); the census case
		// adds a suppression budget, which forces full-score walks of
		// every non-failing node — the solver's other hot regime.
		{name: "hier_planted", n: 1500, m: 8, k: 3, quickN: 300, run: func(t *relation.Table, k, workers int, kern metric.Choice) (int, error) {
			r, err := hierarchy.Solve(t, k, &hierarchy.Options{Workers: workers})
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
		{name: "hier_census", n: 2000, m: 6, k: 4, quickN: 400, run: func(t *relation.Table, k, workers int, kern metric.Choice) (int, error) {
			r, err := hierarchy.Solve(t, k, &hierarchy.Options{Workers: workers, MaxSuppress: 10})
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
	}
}

// benchTable builds the pinned instance for a spec: census-like data
// for the census case, planted clusters elsewhere (per-case seeds are
// derived from the suite seed so cases are independent).
func benchTable(spec benchSpec, n int, seed int64, idx int) *relation.Table {
	rng := rand.New(rand.NewSource(seed + int64(idx)*1_000_003))
	if spec.name == "ball_census" || spec.name == "hier_census" {
		return dataset.Census(rng, n, spec.m)
	}
	return dataset.Planted(rng, n, spec.m, 6, spec.k, 1)
}

// RunBenchSuite executes the regression suite. slowdown ≥ 1 multiplies
// the recorded wall times — it exists solely so CI can verify the gate
// actually fires on a regression without hurting a real hot path.
func RunBenchSuite(cfg Config, slowdown float64) (*BenchReport, error) {
	if slowdown < 1 {
		slowdown = 1
	}
	rep := &BenchReport{
		Schema:        BenchSchema,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          cfg.EffectiveSeed(),
		Workers:       cfg.Workers,
		Quick:         cfg.Quick,
		CalibrationNS: Calibrate(),
	}
	for i, spec := range benchSpecs() {
		n := spec.n
		if cfg.Quick {
			n = spec.quickN
		}
		t := benchTable(spec, n, rep.Seed, i)
		kern := spec.kern
		if kern == metric.Auto {
			kern = cfg.Kernel
		}
		var cost int
		var best, bestAlloc int64
		var ms0, ms1 runtime.MemStats
		for r := 0; r < BenchReps; r++ {
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			c, err := spec.run(t, spec.k, cfg.Workers, kern)
			el := time.Since(start).Nanoseconds()
			runtime.ReadMemStats(&ms1)
			alloc := int64(ms1.TotalAlloc - ms0.TotalAlloc)
			if err != nil {
				return nil, fmt.Errorf("harness: bench case %s: %w", spec.name, err)
			}
			if r == 0 {
				cost = c
			} else if c != cost {
				return nil, fmt.Errorf("harness: bench case %s: nondeterministic cost: %d then %d", spec.name, cost, c)
			}
			if r == 0 || el < best {
				best = el
			}
			if r == 0 || alloc < bestAlloc {
				bestAlloc = alloc
			}
		}
		rep.Cases = append(rep.Cases, BenchCase{
			Name:           spec.name,
			N:              n,
			M:              spec.m,
			K:              spec.k,
			Cost:           cost,
			WallNS:         int64(float64(best) * slowdown),
			PeakAllocBytes: bestAlloc,
		})
	}
	return rep, nil
}
