package harness

import (
	"math/rand"

	"kanon/internal/algo"
	"kanon/internal/core"
	"kanon/internal/dataset"
	"kanon/internal/exact"
)

// runE14 measures the column-weighted extension: pricing one column
// above the others should move suppression away from it, at a bounded
// premium in raw stars. Ground truth comes from the weighted exact DP
// at small n; at working sizes the weighted greedy's protected-column
// star share is compared against the unweighted run.
func runE14(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Beyond the paper: column-weighted suppression (utility-aware)",
		Header: []string{"protected col weight", "k", "trials",
			"protected stars (unweighted)", "protected stars (weighted)",
			"total stars (unweighted)", "total stars (weighted)",
			"weighted greedy/OPT_w (small n)"},
		Notes: []string{
			"census workload, n = 60, m = 6; 'protected' is the zip column (weight shown, others 1)",
			"the weighted metric is still a metric, so Theorem 4.2's machinery applies with W = Σ w_j in place of m",
		},
	}
	trials := 8
	n := 60
	if cfg.Quick {
		trials, n = 3, 40
	}
	const protected = 1 // column index of zip in the census schema
	for _, wp := range []int{2, 5, 20} {
		for _, k := range []int{3, 5} {
			rng := rand.New(rand.NewSource(cfg.seed() + int64(wp*10+k)))
			var pu, pw, tu, tw int
			worstRatio := 1.0
			for trial := 0; trial < trials; trial++ {
				tab := dataset.Census(rng, n, 6)
				w := core.UniformWeights(6)
				w[protected] = wp

				plain, err := algo.GreedyBall(tab, k, nil)
				if err != nil {
					return nil, err
				}
				weighted, err := algo.GreedyBallWeighted(tab, k, w, nil)
				if err != nil {
					return nil, err
				}
				pu += columnStars(plain, protected)
				pw += columnStars(weighted, protected)
				tu += plain.Cost
				tw += weighted.Cost

				// Small-n exact comparison.
				sub := tab.SubTable(firstN(12))
				opt, err := exact.SolveWeighted(sub, k, w)
				if err != nil {
					return nil, err
				}
				g, err := algo.GreedyBallWeighted(sub, k, w, nil)
				if err != nil {
					return nil, err
				}
				if opt.Value > 0 {
					if r := exact.Ratio(g.WeightedCost, opt.Value); r > worstRatio {
						worstRatio = r
					}
				}
			}
			t.AddRow(itoa(wp), itoa(k), itoa(trials),
				itoa(pu), itoa(pw), itoa(tu), itoa(tw), f3(worstRatio))
		}
	}
	return []*Table{t}, nil
}

// columnStars counts the stars an algo.Result placed in one column.
func columnStars(r *algo.Result, col int) int {
	total := 0
	for i := 0; i < r.Suppressor.Rows(); i++ {
		if r.Suppressor.Suppressed(i, col) {
			total++
		}
	}
	return total
}

func firstN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
