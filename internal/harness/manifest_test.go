package harness

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var errTest = errors.New("boom")

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest(Config{Quick: true, Workers: 2})
	if m.Schema != ManifestSchema {
		t.Fatalf("schema = %q", m.Schema)
	}
	if m.Seed != DefaultSeed {
		t.Errorf("seed = %d, want resolved default %d", m.Seed, DefaultSeed)
	}
	if m.GOMAXPROCS < 1 || m.GOOS == "" || m.GOARCH == "" {
		t.Errorf("machine shape not stamped: %+v", m)
	}
	if m.Build.GoVersion == "" {
		t.Error("build info not stamped")
	}
	m.AddExperiment("E1", "planted", 3*time.Millisecond, 1, nil)
	m.AddExperiment("E2", "census", 5*time.Millisecond, 2, errTest)
	m.Finish()
	if m.WallNS < 0 {
		t.Errorf("WallNS = %d", m.WallNS)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Experiments) != 2 {
		t.Fatalf("experiments = %d, want 2", len(got.Experiments))
	}
	e1, e2 := got.Experiments[0], got.Experiments[1]
	if e1.ID != "E1" || e1.Verdict != VerdictOK || e1.Error != "" || e1.WallNS != 3e6 {
		t.Errorf("E1 = %+v", e1)
	}
	if e2.Verdict != VerdictError || e2.Error != "boom" || e2.Tables != 2 {
		t.Errorf("E2 = %+v", e2)
	}
	if got.Quick != true || got.Workers != 2 || got.Seed != DefaultSeed {
		t.Errorf("config fields lost: %+v", got)
	}
}

func TestReadManifestRejects(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, `{"schema":"other/9"}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong-schema manifest accepted: %v", err)
	}
	garbled := filepath.Join(dir, "garbled.json")
	if err := writeFile(garbled, `{nope`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(garbled); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestNilManifestIsDisabled(t *testing.T) {
	var m *RunManifest
	m.AddExperiment("E1", "t", time.Second, 1, nil) // must not panic
	m.Finish()
	if err := m.Write(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("nil manifest Write succeeded")
	}
}
