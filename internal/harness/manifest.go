package harness

// Experiment provenance manifests. A RunManifest is one kanon-bench
// invocation's self-describing record: the exact binary that ran (build
// info with VCS revision and dirty flag), the machine shape, the
// configuration, and a per-experiment verdict with wall time. CI
// uploads the manifest next to the coverage artifact so every recorded
// experiment run names the code, seed, and environment that produced
// it; cmd/benchdiff -manifest diffs two manifests the way the bench
// gate diffs two BenchReports.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"kanon/internal/obs"
)

// ManifestSchema versions the manifest format; readers refuse to
// compare manifests with different schemas.
const ManifestSchema = "kanon-manifest/1"

// Verdicts recorded per experiment.
const (
	VerdictOK    = "ok"
	VerdictError = "error"
)

// ManifestExperiment is one experiment's outcome inside a manifest.
type ManifestExperiment struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	WallNS int64  `json:"wall_ns"`
	// Verdict is VerdictOK or VerdictError.
	Verdict string `json:"verdict"`
	// Error holds the failure message when Verdict is VerdictError.
	Error string `json:"error,omitempty"`
	// Tables is how many result tables the experiment emitted.
	Tables int `json:"tables"`
}

// RunManifest is the provenance record of one experiment run.
type RunManifest struct {
	Schema     string        `json:"schema"`
	Build      obs.BuildInfo `json:"build"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Seed       int64         `json:"seed"`
	Workers    int           `json:"workers"`
	Quick      bool          `json:"quick"`
	// Kernel is the configured distance-kernel backend's short name.
	Kernel string `json:"kernel,omitempty"`
	// StartUnixNS is the run's wall-clock start (Unix nanoseconds).
	StartUnixNS int64 `json:"start_unix_ns"`
	// WallNS is the whole run's duration, set by Finish.
	WallNS      int64                `json:"wall_ns"`
	Experiments []ManifestExperiment `json:"experiments,omitempty"`
	// Bench embeds the regression suite's report when the run included
	// it (kanon-bench -regress -manifest).
	Bench *BenchReport `json:"bench,omitempty"`

	start time.Time
}

// NewManifest starts a manifest for the given configuration, stamping
// build provenance and machine shape.
func NewManifest(cfg Config) *RunManifest {
	now := time.Now()
	return &RunManifest{
		Schema:      ManifestSchema,
		Build:       obs.ReadBuild(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        cfg.EffectiveSeed(),
		Workers:     cfg.Workers,
		Quick:       cfg.Quick,
		Kernel:      cfg.Kernel.String(),
		StartUnixNS: now.UnixNano(),
		start:       now,
	}
}

// AddExperiment records one experiment's outcome. A nil *RunManifest is
// disabled (the no-manifest path), matching the obs instrument
// convention.
func (m *RunManifest) AddExperiment(id, title string, wall time.Duration, tables int, err error) {
	if m == nil {
		return
	}
	e := ManifestExperiment{
		ID:      id,
		Title:   title,
		WallNS:  wall.Nanoseconds(),
		Verdict: VerdictOK,
		Tables:  tables,
	}
	if err != nil {
		e.Verdict = VerdictError
		e.Error = err.Error()
	}
	m.Experiments = append(m.Experiments, e)
}

// Finish stamps the total wall time; call once, before Write.
func (m *RunManifest) Finish() {
	if m == nil {
		return
	}
	m.WallNS = time.Since(m.start).Nanoseconds()
}

// Write serializes the manifest as indented JSON to path.
func (m *RunManifest) Write(path string) error {
	if m == nil {
		return fmt.Errorf("harness: nil manifest")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest loads and validates a manifest written by Write.
func ReadManifest(path string) (*RunManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, m.Schema, ManifestSchema)
	}
	return &m, nil
}
