package harness

import (
	"math/rand"
	"time"

	"kanon/internal/algo"
	"kanon/internal/cover"
	"kanon/internal/dataset"
	"kanon/internal/metric"
	"kanon/internal/pattern"
	"kanon/internal/relation"
)

// runE10 quantifies the design decisions DESIGN.md calls out: the
// oversize-split policy, ball weight mode, candidate family choice,
// lazy vs naive greedy, and the value of the Reduce phase.
func runE10(cfg Config) ([]*Table, error) {
	trials := 10
	n := 40
	if cfg.Quick {
		trials, n = 4, 24
	}

	split := &Table{
		ID:     "E10",
		Title:  "Ablation: oversize-group split policy (GreedyBall)",
		Header: []string{"workload", "k", "trials", "arbitrary stars", "similarity stars", "delta"},
	}
	weights := &Table{
		ID:     "E10",
		Title:  "Ablation: ball weights — 2·radius bound vs true diameter",
		Header: []string{"workload", "k", "trials", "radius-bound stars", "true-diameter stars", "delta"},
	}
	family := &Table{
		ID:     "E10",
		Title:  "Ablation: candidate family — exhaustive C vs balls D vs patterns (small n)",
		Header: []string{"workload", "k", "trials", "exhaustive", "ball", "pattern"},
		Notes:  []string{"mean stars over the corpus; exhaustive is Theorem 4.1's family, feasible only at this scale"},
	}
	lazy := &Table{
		ID:     "E10",
		Title:  "Ablation: lazy greedy vs naive full-rescan greedy (identical outputs)",
		Header: []string{"n", "family sets", "identical picks", "naive time", "lazy time", "speedup"},
	}
	reduce := &Table{
		ID:     "E10",
		Title:  "Ablation: Phase 2 Reduce — cover vs partition diameter sums",
		Header: []string{"workload", "k", "trials", "cover Σd", "partition Σd", "increases"},
		Notes:  []string{"the paper's guarantee: Reduce never increases the diameter sum"},
	}

	type wl struct {
		name string
		gen  func(rng *rand.Rand, k int) *relation.Table
	}
	wls := []wl{
		{"census", func(rng *rand.Rand, k int) *relation.Table { return dataset.Census(rng, n, 6) }},
		{"planted", func(rng *rand.Rand, k int) *relation.Table { return dataset.Planted(rng, n, 6, 3, k, 2) }},
	}

	for _, w := range wls {
		for _, k := range []int{3, 5} {
			rng := rand.New(rand.NewSource(cfg.seed() + int64(k)))
			sumArb, sumSorted, sumBound, sumTrue := 0, 0, 0, 0
			coverD, partD, increases := 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				tab := w.gen(rng, k)
				a, err := algo.GreedyBall(tab, k, nil)
				if err != nil {
					return nil, err
				}
				s, err := algo.GreedyBall(tab, k, &algo.Options{SplitSorted: true})
				if err != nil {
					return nil, err
				}
				td, err := algo.GreedyBall(tab, k, &algo.Options{TrueDiameterWeights: true})
				if err != nil {
					return nil, err
				}
				sumArb += a.Cost
				sumSorted += s.Cost
				sumBound += a.Cost
				sumTrue += td.Cost

				// Reduce effect, measured directly on the cover.
				mat := metric.NewMatrix(tab)
				chosen, err := cover.GreedyBalls(mat, k)
				if err != nil {
					return nil, err
				}
				before := cover.DiameterSum(mat, chosen)
				p, err := cover.Reduce(tab.Len(), chosen, k)
				if err != nil {
					return nil, err
				}
				after := p.DiameterSum(mat)
				coverD += before
				partD += after
				if after > before {
					increases++
				}
			}
			split.AddRow(w.name, itoa(k), itoa(trials), itoa(sumArb), itoa(sumSorted), itoa(sumSorted-sumArb))
			weights.AddRow(w.name, itoa(k), itoa(trials), itoa(sumBound), itoa(sumTrue), itoa(sumTrue-sumBound))
			reduce.AddRow(w.name, itoa(k), itoa(trials), itoa(coverD), itoa(partD), itoa(increases))
		}
	}

	// Family ablation at exact-friendly scale.
	fn := 14
	for _, w := range wls {
		for _, k := range []int{2, 3} {
			rng := rand.New(rand.NewSource(cfg.seed() + int64(k*7)))
			sumEx, sumBall, sumPat := 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				var tab *relation.Table
				if w.name == "census" {
					tab = dataset.Census(rng, fn, 6)
				} else {
					tab = dataset.Planted(rng, fn, 6, 3, k, 2)
				}
				e, err := algo.GreedyExhaustive(tab, k, nil)
				if err != nil {
					return nil, err
				}
				b, err := algo.GreedyBall(tab, k, nil)
				if err != nil {
					return nil, err
				}
				p, err := pattern.Anonymize(tab, k)
				if err != nil {
					return nil, err
				}
				sumEx += e.Cost
				sumBall += b.Cost
				sumPat += p.Cost
			}
			family.AddRow(w.name, itoa(k), itoa(trials),
				f1(float64(sumEx)/float64(trials)),
				f1(float64(sumBall)/float64(trials)),
				f1(float64(sumPat)/float64(trials)))
		}
	}

	// Lazy vs naive greedy on materialized ball families.
	for _, ln := range []int{30, 60, 120} {
		if cfg.Quick && ln > 60 {
			break
		}
		rng := rand.New(rand.NewSource(cfg.seed() + int64(ln)))
		tab := dataset.Census(rng, ln, 6)
		mat := metric.NewMatrix(tab)
		sets, err := cover.Balls(mat, 3, cover.WeightRadiusBound)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		naive, err := cover.GreedyNaive(tab.Len(), sets)
		if err != nil {
			return nil, err
		}
		naiveT := time.Since(start)
		start = time.Now()
		fast, err := cover.Greedy(tab.Len(), sets)
		if err != nil {
			return nil, err
		}
		lazyT := time.Since(start)
		identical := len(naive) == len(fast)
		if identical {
			for i := range naive {
				if naive[i].Weight != fast[i].Weight || len(naive[i].Members) != len(fast[i].Members) {
					identical = false
					break
				}
			}
		}
		speed := "-"
		if lazyT > 0 {
			speed = f2(float64(naiveT) / float64(lazyT))
		}
		lazy.AddRow(itoa(ln), itoa(len(sets)), yesNo(identical), dur(naiveT), dur(lazyT), speed)
	}

	return []*Table{split, weights, family, lazy, reduce}, nil
}
