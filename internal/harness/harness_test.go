package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := Config{Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if tbl.ID != e.ID {
					t.Errorf("table ID %q under experiment %q", tbl.ID, e.ID)
				}
				if len(tbl.Rows) == 0 {
					t.Errorf("%s table %q has no rows", e.ID, tbl.Title)
				}
				for _, r := range tbl.Rows {
					if len(r) != len(tbl.Header) {
						t.Errorf("%s: row width %d != header width %d", e.ID, len(r), len(tbl.Header))
					}
				}
			}
		})
	}
}

func TestE4E5AllIffsHold(t *testing.T) {
	cfg := Config{Quick: true}
	for _, id := range []string{"E4", "E5"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("%s not found", id)
		}
		tables, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tbl := range tables {
			iffCol := -1
			for j, h := range tbl.Header {
				if h == "iff holds" {
					iffCol = j
				}
			}
			if iffCol == -1 {
				t.Fatalf("%s table missing 'iff holds' column", id)
			}
			for _, r := range tbl.Rows {
				parts := strings.Split(r[iffCol], "/")
				if len(parts) != 2 || parts[0] != parts[1] {
					t.Errorf("%s row %v: iff column %q short of full agreement", id, r, r[iffCol])
				}
			}
		}
	}
}

func TestE9NoViolations(t *testing.T) {
	e, _ := Find("E9")
	tables, err := e.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tables[0].Rows {
		if r[len(r)-1] != "0" {
			t.Errorf("property %q has %s violations", r[0], r[len(r)-1])
		}
	}
}

func TestE7ExamplesAgree(t *testing.T) {
	e, _ := Find("E7")
	tables, err := e.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("E7 produced %d tables, want 2", len(tables))
	}
	// Hospital table's match note.
	foundMatch := false
	for _, n := range tables[0].Notes {
		if strings.Contains(n, "matches paper's printed 2-anonymization: true") {
			foundMatch = true
		}
	}
	if !foundMatch {
		t.Errorf("hospital reproduction does not match the paper: notes = %v", tables[0].Notes)
	}
	// §4 table: all rows agree.
	for _, r := range tables[1].Rows {
		if r[len(r)-1] != "✓" {
			t.Errorf("§4 example row %v does not agree", r)
		}
	}
}

func TestRenderAndRunAll(t *testing.T) {
	tbl := &Table{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"col", "value"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("x", "1")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== EX: demo ==", "col", "x", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := Find("e10"); !ok {
		t.Error("Find should be case-insensitive")
	}
	if _, ok := Find("E99"); ok {
		t.Error("found nonexistent experiment")
	}
}

func TestConfigSeedDefault(t *testing.T) {
	if (Config{}).seed() != DefaultSeed {
		t.Error("zero config should use DefaultSeed")
	}
	if (Config{Seed: 5}).seed() != 5 {
		t.Error("explicit seed ignored")
	}
}

func TestAllOrdered(t *testing.T) {
	exps := All()
	if len(exps) != 15 {
		t.Fatalf("got %d experiments, want 15", len(exps))
	}
	for i, e := range exps {
		if idOrder(e.ID) != i+1 {
			t.Errorf("experiment %d is %s", i, e.ID)
		}
	}
}

func TestRunAllQuickWritesEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite")
	}
	var buf bytes.Buffer
	if err := RunAll(Config{Quick: true}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "== "+e.ID+":") {
			t.Errorf("RunAll output missing %s", e.ID)
		}
		if !strings.Contains(out, "("+e.ID+" completed in") {
			t.Errorf("RunAll output missing %s timing line", e.ID)
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	tbl := &Table{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"a", "b"},
		Notes:  []string{"hello"},
	}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tbl.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### EX: demo", "| a | b |", "| --- | --- |", "| 1 | 2 |", "*hello*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
