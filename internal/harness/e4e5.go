package harness

import (
	"fmt"
	"math/rand"

	"kanon/internal/attribute"
	"kanon/internal/exact"
	"kanon/internal/hypergraph"
	"kanon/internal/reduction"
)

// runE4 exercises the Theorem 3.1 reduction: over random and planted
// 3-uniform hypergraphs, OPT of the reduced table equals n(m−1) exactly
// when a perfect matching exists, and exceeds it otherwise; witnesses
// round-trip in both directions.
func runE4(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Theorem 3.1: OPT(V) ≤ n(m−1) ⇔ perfect matching (k = 3)",
		Header: []string{"n", "m", "instances", "with PM", "iff holds", "witness round-trips",
			"min OPT-threshold gap (no PM)"},
		Notes: []string{
			"OPT from the exact DP; PM from the exact matching solver; construction uses the repaired v_i[j] = i filler (see DESIGN.md)",
		},
	}
	trials := 10
	if cfg.Quick {
		trials = 4
	}
	for _, shape := range []struct{ n, m int }{{6, 6}, {9, 6}, {9, 9}, {12, 8}} {
		rng := rand.New(rand.NewSource(cfg.seed() + int64(shape.n*100+shape.m)))
		withPM, iffOK, roundTrips := 0, 0, 0
		minGap := -1
		instances := 0
		for trial := 0; trial < trials; trial++ {
			var g *hypergraph.Graph
			if trial%2 == 0 {
				g = hypergraph.RandomWithPlantedMatching(rng, shape.n, 3, shape.m)
			} else {
				g = hypergraph.RandomSimple(rng, shape.n, 3, shape.m)
			}
			if g.M() == 0 {
				continue
			}
			instances++
			inst, err := reduction.FromMatchingEntry(g)
			if err != nil {
				return nil, err
			}
			opt, err := exact.Solve(inst.Table, 3, exact.Stars)
			if err != nil {
				return nil, err
			}
			matching := g.PerfectMatching()
			if matching != nil {
				withPM++
				if opt.Value == inst.Threshold {
					iffOK++
				}
				// Round trip A: matching → suppressor at threshold.
				sup, err := inst.SuppressorFromMatching(matching)
				if err == nil && sup.Stars() == inst.Threshold {
					// Round trip B: optimal partition → matching.
					if back, err := inst.MatchingFromPartition(opt.Partition); err == nil && g.IsPerfectMatching(back) {
						roundTrips++
					}
				}
			} else {
				if opt.Value > inst.Threshold {
					iffOK++
					gap := opt.Value - inst.Threshold
					if minGap == -1 || gap < minGap {
						minGap = gap
					}
				}
			}
		}
		gapStr := "-"
		if minGap >= 0 {
			gapStr = itoa(minGap)
		}
		t.AddRow(itoa(shape.n), itoa(shape.m), itoa(instances), itoa(withPM),
			fmt.Sprintf("%d/%d", iffOK, instances),
			fmt.Sprintf("%d/%d", roundTrips, withPM), gapStr)
	}
	return []*Table{t}, nil
}

// runE5 exercises the Theorem 3.2 reduction with the exact attribute
// solver as ground truth.
func runE5(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Theorem 3.2: min attributes suppressed = m − n/k ⇔ perfect matching",
		Header: []string{"k", "n", "m", "instances", "with PM", "iff holds",
			"witness round-trips"},
		Notes: []string{
			"boolean alphabet (b0, b1) = (0, 1) exactly as in the proof sketch",
		},
	}
	trials := 10
	if cfg.Quick {
		trials = 4
	}
	for _, shape := range []struct{ k, blocks, m int }{{3, 2, 6}, {3, 3, 8}, {4, 2, 7}, {4, 3, 10}} {
		n := shape.k * shape.blocks
		rng := rand.New(rand.NewSource(cfg.seed() + int64(shape.k*1000+n*10+shape.m)))
		withPM, iffOK, roundTrips := 0, 0, 0
		instances := 0
		for trial := 0; trial < trials; trial++ {
			var g *hypergraph.Graph
			if trial%2 == 0 {
				g = hypergraph.RandomWithPlantedMatching(rng, n, shape.k, shape.m)
			} else {
				g = hypergraph.RandomSimple(rng, n, shape.k, shape.m)
			}
			if g.M() == 0 {
				continue
			}
			instances++
			inst, err := reduction.FromMatchingAttribute(g)
			if err != nil {
				return nil, err
			}
			ex, err := attribute.Exact(inst.Table, shape.k)
			if err != nil {
				return nil, err
			}
			matching := g.PerfectMatching()
			if matching != nil {
				withPM++
				if len(ex.Dropped) == inst.Threshold {
					iffOK++
				}
				drop, err := inst.AttributesFromMatching(matching)
				if err == nil && attribute.IsKAnonymousProjection(inst.Table, drop, shape.k) {
					if back, err := inst.MatchingFromAttributes(drop); err == nil && g.IsPerfectMatching(back) {
						roundTrips++
					}
				}
			} else if len(ex.Dropped) > inst.Threshold {
				iffOK++
			}
		}
		t.AddRow(itoa(shape.k), itoa(n), itoa(shape.m), itoa(instances), itoa(withPM),
			fmt.Sprintf("%d/%d", iffOK, instances),
			fmt.Sprintf("%d/%d", roundTrips, withPM))
	}
	return []*Table{t}, nil
}
