package harness

import (
	"math/rand"

	"kanon/internal/algo"
	"kanon/internal/attribute"
	"kanon/internal/dataset"
	"kanon/internal/generalize"
	"kanon/internal/lattice"
	"kanon/internal/refine"
)

// runE12 relates the three granularities of k-anonymization the paper
// touches: cell-level suppression (the paper's model, §2–§4),
// whole-attribute suppression (§3.1), and full-domain generalization
// (Samarati/Sweeney [10], the §1 setting). With two-level hierarchies,
// full-domain generalization and attribute suppression are the same
// problem — the table cross-checks that the two independent solvers
// agree exactly — and cell-level suppression is the strict refinement,
// never more expensive and usually far cheaper.
func runE12(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Granularity: cell suppression vs attribute suppression vs full-domain lattice",
		Header: []string{"workload", "n", "m", "k", "cell (ball+refine)", "attribute exact",
			"lattice (2-level)", "attr = lattice", "cell ≤ attribute"},
		Notes: []string{
			"all costs in suppressed entries; attribute cost = dropped columns × n; lattice cost = height × n under suppression-only hierarchies",
			"the attribute solver (subset enumeration) and the lattice search (monotone level walk) are independent implementations of the same optimum",
		},
	}
	shapes := []struct{ n, m int }{{40, 6}, {80, 8}}
	trials := 6
	if cfg.Quick {
		shapes = []struct{ n, m int }{{30, 5}}
		trials = 3
	}
	for _, workload := range []string{"census", "zipf"} {
		for _, shape := range shapes {
			for _, k := range []int{2, 4} {
				rng := rand.New(rand.NewSource(cfg.seed() + int64(shape.n*10+k)))
				sumCell, sumAttr, sumLat := 0, 0, 0
				agree, cheaper := 0, 0
				for trial := 0; trial < trials; trial++ {
					var tab = dataset.Census(rng, shape.n, shape.m)
					if workload == "zipf" {
						tab = dataset.Zipf(rng, shape.n, shape.m, 8, 1.6)
					}

					cell, err := algo.GreedyBall(tab, k, nil)
					if err != nil {
						return nil, err
					}
					if _, err := refine.Partition(tab, cell.Partition, k, nil); err != nil {
						return nil, err
					}
					cellCost := cell.Partition.Cost(tab)

					attr, err := attribute.Exact(tab, k)
					if err != nil {
						return nil, err
					}
					attrCost := len(attr.Dropped) * tab.Len()

					node, _, err := lattice.Search(tab, generalize.ForTable(tab), k, 0)
					if err != nil {
						return nil, err
					}
					latCost := node.Height * tab.Len()

					sumCell += cellCost
					sumAttr += attrCost
					sumLat += latCost
					if attrCost == latCost {
						agree++
					}
					if cellCost <= attrCost {
						cheaper++
					}
				}
				t.AddRow(workload, itoa(shape.n), itoa(shape.m), itoa(k),
					itoa(sumCell), itoa(sumAttr), itoa(sumLat),
					frac(agree, trials), frac(cheaper, trials))
			}
		}
	}
	return []*Table{t}, nil
}
