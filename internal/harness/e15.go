package harness

import (
	"fmt"
	"math/rand"

	"kanon/internal/algo"
	"kanon/internal/dataset"
	"kanon/internal/hierarchy"
)

// runE15 measures the generalization-lattice extension against the
// paper's cell suppression on the same instances: full-domain
// generalization trades many small losses (coarser labels everywhere)
// for zero stars, and a small row-suppression budget buys back most of
// the NCP that outlier rows would otherwise force onto every column.
func runE15(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Beyond the paper: hierarchy generalization vs cell suppression",
		Header: []string{"workload", "k", "suppress budget",
			"NCP", "rows suppressed", "cells changed", "optimal cut",
			"ball stars", "ball stars %"},
		Notes: []string{
			"hierarchies derived from the data (intervals for integer columns, fanout-3 value trees otherwise)",
			"NCP ∈ [0,1] is the normalized certainty penalty of the released table; 'optimal cut' means the lattice was enumerated exhaustively",
			"ball stars is Theorem 4.2's greedy on the same instance — the suppression-only alternative",
		},
	}
	n := 200
	trials := 4
	if cfg.Quick {
		n, trials = 80, 2
	}
	for _, wl := range []string{"census", "planted"} {
		for _, k := range []int{3, 5} {
			for _, budget := range []int{0, 2, 8} {
				var ncp float64
				var sup, changed, stars, cells int
				optimal := true
				for trial := 0; trial < trials; trial++ {
					rng := rand.New(rand.NewSource(cfg.seed() + int64(trial)))
					var tab = dataset.Census(rng, n, 5)
					if wl == "planted" {
						tab = dataset.Planted(rng, n, 5, 6, k, 1)
					}
					hr, err := hierarchy.Solve(tab, k, &hierarchy.Options{MaxSuppress: budget})
					if err != nil {
						return nil, err
					}
					ncp += hr.NCP
					sup += len(hr.Suppressed)
					changed += hr.Cost
					optimal = optimal && hr.Optimal
					cells += tab.Len() * tab.Degree()

					br, err := algo.GreedyBall(tab, k, nil)
					if err != nil {
						return nil, err
					}
					stars += br.Cost
				}
				t.AddRow(wl, itoa(k), itoa(budget),
					f3(ncp/float64(trials)), itoa(sup), itoa(changed),
					fmt.Sprintf("%v", optimal),
					itoa(stars), f3(100*float64(stars)/float64(cells)))
			}
		}
	}
	return []*Table{t}, nil
}
