package harness

import (
	"fmt"
	"math/rand"

	"kanon/internal/algo"
	"kanon/internal/dataset"
	"kanon/internal/exact"
)

// runE13 probes the paper's other §5 remark — "our proof for the
// general case uses an alphabet Σ of large size, so it is possible that
// the problem is still tractable for small constant-sized alphabets" —
// with an empirical hardness proxy: the nodes the branch-and-bound
// solver explores to close instances of identical shape but different
// alphabet size, plus the greedy's optimality gap. Binary instances
// closing with far fewer nodes (they carry many duplicate rows and
// cheap groups) is consistent with, though of course no proof of, the
// conjectured easier subcase.
func runE13(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Beyond the paper (§5): alphabet size as empirical hardness dial",
		Header: []string{"|Σ|", "k", "trials", "mean OPT", "mean B&B nodes",
			"worst greedy ratio"},
		Notes: []string{
			"fixed shape n = 13, m = 6; only the per-column alphabet varies",
			"B&B nodes measure how hard the exact search works; the Theorem 3.1 hardness construction needs |Σ| ≥ n",
		},
	}
	trials := 10
	n, m := 13, 6
	if cfg.Quick {
		trials, n = 4, 11
	}
	for _, sigma := range []int{2, 3, 5, n} {
		for _, k := range []int{2, 3} {
			rng := rand.New(rand.NewSource(cfg.seed() + int64(sigma*100+k)))
			var nodes, optSum int64
			worst := 1.0
			for trial := 0; trial < trials; trial++ {
				tab := dataset.Uniform(rng, n, m, sigma)
				bb, err := exact.BranchBound(tab, k, 0)
				if err != nil {
					return nil, err
				}
				if !bb.Optimal {
					return nil, fmt.Errorf("E13: branch-and-bound hit its node budget at |Σ|=%d k=%d", sigma, k)
				}
				nodes += bb.Nodes
				optSum += int64(bb.Value)
				if bb.Value > 0 {
					g, err := algo.GreedyBall(tab, k, nil)
					if err != nil {
						return nil, err
					}
					if r := exact.Ratio(g.Cost, bb.Value); r > worst {
						worst = r
					}
				}
			}
			t.AddRow(itoa(sigma), itoa(k), itoa(trials),
				f1(float64(optSum)/float64(trials)),
				itoa(int(nodes/int64(trials))),
				f3(worst))
		}
	}
	return []*Table{t}, nil
}
