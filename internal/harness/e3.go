package harness

import (
	"math/rand"
	"runtime"
	"time"

	"kanon/internal/algo"
	"kanon/internal/dataset"
	"kanon/internal/stream"
)

// runE3 measures wall-clock scaling of the two algorithms: the
// exhaustive family explodes as O(n^{2k−1}) candidate sets while the
// ball variant stays strongly polynomial — the crossover motivating
// §4.3.
func runE3(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "Runtime scaling (census-like workload, m = 8)",
		Header: []string{"algorithm", "k", "n", "family sets", "cover time", "total time", "cost"},
		Notes: []string{
			"exhaustive rows stop where the candidate family exceeds the 5M-set guard — the O(n^{2k}) wall",
			"ball rows continue to n in the thousands (paper: O(mn^2 + n^3))",
		},
	}
	exhaustiveNs := map[int][]int{
		2: {10, 20, 40, 80, 160, 320},
		3: {10, 15, 20, 30, 40, 60},
	}
	ballNs := []int{10, 40, 160, 640, 2000}
	if cfg.Quick {
		exhaustiveNs = map[int][]int{2: {10, 20, 40}, 3: {10, 15, 20}}
		ballNs = []int{10, 40, 160, 500}
	}

	for _, k := range []int{2, 3} {
		for _, n := range exhaustiveNs[k] {
			rng := rand.New(rand.NewSource(cfg.seed() + int64(n*10+k)))
			tab := dataset.Census(rng, n, 8)
			start := time.Now()
			r, err := algo.GreedyExhaustive(tab, k, nil)
			total := time.Since(start)
			if err != nil {
				// The family guard fired: record the wall and stop.
				t.AddRow("exhaustive", itoa(k), itoa(n), ">5M (guard)", "-", "-", "-")
				break
			}
			t.AddRow("exhaustive", itoa(k), itoa(n), itoa(r.Stats.FamilySize),
				dur(r.Stats.PhaseCover), dur(total), itoa(r.Cost))
		}
	}
	for _, k := range []int{2, 3} {
		for _, n := range ballNs {
			rng := rand.New(rand.NewSource(cfg.seed() + int64(n*10+k)))
			tab := dataset.Census(rng, n, 8)
			start := time.Now()
			r, err := algo.GreedyBall(tab, k, &algo.Options{Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			total := time.Since(start)
			t.AddRow("ball", itoa(k), itoa(n), "implicit",
				dur(r.Stats.PhaseCover), dur(total), itoa(r.Cost))
		}
	}

	// The streaming pipeline extends past the n² matrix wall with
	// bounded memory; block size 1000 keeps per-block work constant.
	streamNs := []int{2000, 10000, 30000}
	if cfg.Quick {
		streamNs = []int{2000, 6000}
	}
	for _, n := range streamNs {
		rng := rand.New(rand.NewSource(cfg.seed() + int64(n)))
		tab := dataset.Census(rng, n, 8)
		start := time.Now()
		sr, err := stream.Anonymize(tab, 3, &stream.Options{BlockRows: 1000, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		total := time.Since(start)
		t.AddRow("stream(b=1000)", "3", itoa(n), "implicit", "-", dur(total), itoa(sr.Cost))
	}

	// Worker sweep: the same workload at 1, 2, 4, ... NumCPU workers,
	// so the parallel layer's scaling is visible next to the sequential
	// baseline (outputs are byte-identical by construction).
	sweepN := 2000
	if cfg.Quick {
		sweepN = 500
	}
	for _, w := range workerSweep() {
		rng := rand.New(rand.NewSource(cfg.seed() + int64(sweepN*10+3)))
		tab := dataset.Census(rng, sweepN, 8)
		start := time.Now()
		r, err := algo.GreedyBall(tab, 3, &algo.Options{Workers: w})
		if err != nil {
			return nil, err
		}
		total := time.Since(start)
		t.AddRow("ball(workers="+itoa(w)+")", "3", itoa(sweepN), "implicit",
			dur(r.Stats.PhaseCover), dur(total), itoa(r.Cost))
	}
	for _, w := range workerSweep() {
		rng := rand.New(rand.NewSource(cfg.seed() + int64(10*sweepN)))
		tab := dataset.Census(rng, 10*sweepN, 8)
		start := time.Now()
		sr, err := stream.Anonymize(tab, 3, &stream.Options{BlockRows: 1000, Workers: w})
		if err != nil {
			return nil, err
		}
		total := time.Since(start)
		t.AddRow("stream(b=1000,workers="+itoa(w)+")", "3", itoa(10*sweepN), "implicit",
			"-", dur(total), itoa(sr.Cost))
	}
	return []*Table{t}, nil
}

// workerSweep returns 1, 2, 4, ... up to and including NumCPU (deduped
// when NumCPU is itself a power of two or 1).
func workerSweep() []int {
	ncpu := runtime.NumCPU()
	var ws []int
	for w := 1; w < ncpu; w *= 2 {
		ws = append(ws, w)
	}
	return append(ws, ncpu)
}
