package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestBenchSuiteDeterministicCosts runs the quick suite twice and
// checks that every case reproduces its cost — the property the CI
// gate's exact cost comparison relies on.
func TestBenchSuiteDeterministicCosts(t *testing.T) {
	cfg := Config{Quick: true, Workers: 1}
	a, err := RunBenchSuite(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchSuite(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cases) != len(b.Cases) {
		t.Fatalf("case count drifted: %d vs %d", len(a.Cases), len(b.Cases))
	}
	for i := range a.Cases {
		if a.Cases[i].Name != b.Cases[i].Name || a.Cases[i].Cost != b.Cases[i].Cost {
			t.Errorf("case %d: (%s, cost %d) vs (%s, cost %d)",
				i, a.Cases[i].Name, a.Cases[i].Cost, b.Cases[i].Name, b.Cases[i].Cost)
		}
	}
}

// TestBenchReportSelfDescribing checks the report carries the metadata
// benchdiff joins and validates on, and that JSON round-trips.
func TestBenchReportSelfDescribing(t *testing.T) {
	rep, err := RunBenchSuite(Config{Quick: true, Workers: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, BenchSchema)
	}
	if rep.Seed != DefaultSeed {
		t.Errorf("seed = %d, want default %d", rep.Seed, DefaultSeed)
	}
	if rep.GoVersion == "" || rep.GOOS == "" || rep.GOARCH == "" || rep.GOMAXPROCS < 1 {
		t.Errorf("environment fields incomplete: %+v", rep)
	}
	if rep.CalibrationNS <= 0 {
		t.Errorf("calibration_ns = %d, want > 0", rep.CalibrationNS)
	}
	for _, c := range rep.Cases {
		if c.WallNS <= 0 {
			t.Errorf("case %s: wall_ns = %d, want > 0", c.Name, c.WallNS)
		}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(rep); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != rep.Schema || len(back.Cases) != len(rep.Cases) {
		t.Errorf("round-trip lost data: %+v", back)
	}
}

// TestBenchSlowdownInflatesWalls verifies the CI self-test hook: a
// slowdown factor scales recorded walls without touching costs.
func TestBenchSlowdownInflatesWalls(t *testing.T) {
	cfg := Config{Quick: true, Workers: 1}
	a, err := RunBenchSuite(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchSuite(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cases {
		if b.Cases[i].Cost != a.Cases[i].Cost {
			t.Errorf("case %s: slowdown changed cost %d -> %d",
				a.Cases[i].Name, a.Cases[i].Cost, b.Cases[i].Cost)
		}
		// 100x inflation dwarfs run-to-run noise; 10x is a safe floor.
		if b.Cases[i].WallNS < 10*a.Cases[i].WallNS {
			t.Errorf("case %s: wall %d not inflated vs %d",
				a.Cases[i].Name, b.Cases[i].WallNS, a.Cases[i].WallNS)
		}
	}
}
