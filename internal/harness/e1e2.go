package harness

import (
	"math"
	"math/rand"

	"kanon/internal/algo"
	"kanon/internal/core"
	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/relation"
)

// ratioRow aggregates approximation quality over a corpus cell.
type ratioRow struct {
	trials     int
	zeroOPT    int // instances with OPT = 0 (approx also 0 on all, or counted as miss)
	zeroMissed int // OPT = 0 but approximation paid > 0
	sum, worst float64
}

func (r *ratioRow) add(approxCost, opt int) {
	r.trials++
	if opt == 0 {
		r.zeroOPT++
		if approxCost > 0 {
			r.zeroMissed++
		}
		return
	}
	ratio := float64(approxCost) / float64(opt)
	r.sum += ratio
	if ratio > r.worst {
		r.worst = ratio
	}
}

func (r *ratioRow) mean() float64 {
	n := r.trials - r.zeroOPT
	if n == 0 {
		return 1
	}
	return r.sum / float64(n)
}

// approxCorpus runs one approximation algorithm against exact OPT over
// the E1/E2 corpus and returns rows per (workload, k, m).
func approxCorpus(cfg Config, run func(t *relation.Table, k int) (int, error), bound func(k, m, n int) float64) ([][]string, error) {
	trials := 12
	n := 14
	if cfg.Quick {
		trials, n = 4, 10
	}
	type cell struct {
		workload string
		k, m     int
	}
	var cells []cell
	for _, workload := range []string{"uniform", "planted"} {
		for _, k := range []int{2, 3} {
			for _, m := range []int{4, 8, 16} {
				cells = append(cells, cell{workload, k, m})
			}
		}
	}
	var rows [][]string
	for _, c := range cells {
		rng := rand.New(rand.NewSource(cfg.seed() + int64(c.k*1000+c.m)))
		rr := &ratioRow{}
		for trial := 0; trial < trials; trial++ {
			var tab *relation.Table
			switch c.workload {
			case "uniform":
				tab = dataset.Uniform(rng, n, c.m, 3)
			case "planted":
				tab = dataset.Planted(rng, n, c.m, 3, c.k, 2)
			}
			opt, err := exact.OPT(tab, c.k)
			if err != nil {
				return nil, err
			}
			cost, err := run(tab, c.k)
			if err != nil {
				return nil, err
			}
			rr.add(cost, opt)
		}
		b := bound(c.k, c.m, n)
		rows = append(rows, []string{
			c.workload, itoa(c.k), itoa(c.m), itoa(rr.trials), itoa(rr.zeroOPT), itoa(rr.zeroMissed),
			f3(rr.mean()), f3(math.Max(rr.worst, 1)), f1(b),
		})
	}
	return rows, nil
}

func runE1(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "GreedyExhaustive (Thm 4.1) approximation ratio vs exact OPT",
		Header: []string{"workload", "k", "m", "trials", "OPT=0", "OPT=0 missed",
			"mean ratio", "worst ratio", "3k(1+ln k)"},
		Notes: []string{
			"ratio = greedy stars / optimal stars; OPT=0 instances reported separately (multiplicative bounds are vacuous there)",
			"printed bound 3k(1+ln k); conservative bound (2k-1)(2k-2)(1+ln k)/k also holds on every row",
		},
	}
	rows, err := approxCorpus(cfg,
		func(tab *relation.Table, k int) (int, error) {
			r, err := algo.GreedyExhaustive(tab, k, nil)
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		},
		func(k, m, n int) float64 { return core.Theorem41Bound(k) },
	)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}

func runE2(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "GreedyBall (Thm 4.2) approximation ratio vs exact OPT",
		Header: []string{"workload", "k", "m", "trials", "OPT=0", "OPT=0 missed",
			"mean ratio", "worst ratio", "6k(1+ln m)"},
		Notes: []string{
			"the strongly polynomial variant over the ball family D of §4.3",
		},
	}
	rows, err := approxCorpus(cfg,
		func(tab *relation.Table, k int) (int, error) {
			r, err := algo.GreedyBall(tab, k, nil)
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		},
		func(k, m, n int) float64 { return core.Theorem42Bound(k, m) },
	)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}
