package harness

import (
	"math/rand"

	"kanon/internal/dataset"
	"kanon/internal/metric"
)

// runE9 checks, over large random corpora, the geometric facts the
// approximation analysis rests on: d is a metric (§4's remark), Lemma
// 4.2's ball-diameter bound d(S_{c,i}) ≤ 2i, and Figure 1's
// diameter triangle inequality d(S_i ∪ S_j) ≤ d(S_i) + d(S_j) for
// overlapping sets.
func runE9(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Metric and diameter properties (Figure 1, Lemma 4.2)",
		Header: []string{"property", "trials", "violations"},
	}
	trials := 4000
	if cfg.Quick {
		trials = 500
	}
	rng := rand.New(rand.NewSource(cfg.seed()))

	symmetry, identity, triangle := 0, 0, 0
	for i := 0; i < trials; i++ {
		tab := dataset.Uniform(rng, 3, 1+rng.Intn(12), 2+rng.Intn(3))
		u, v, w := tab.Row(0), tab.Row(1), tab.Row(2)
		if metric.Distance(u, v) != metric.Distance(v, u) {
			symmetry++
		}
		if metric.Distance(u, u) != 0 {
			identity++
		}
		if metric.Distance(u, w) > metric.Distance(u, v)+metric.Distance(v, w) {
			triangle++
		}
	}
	t.AddRow("d symmetric", itoa(trials), itoa(symmetry))
	t.AddRow("d(u,u) = 0", itoa(trials), itoa(identity))
	t.AddRow("d triangle inequality", itoa(trials), itoa(triangle))

	ballViolations := 0
	for i := 0; i < trials/4; i++ {
		n := 4 + rng.Intn(12)
		m := 2 + rng.Intn(8)
		tab := dataset.Uniform(rng, n, m, 2+rng.Intn(3))
		mat := metric.NewMatrix(tab)
		c := rng.Intn(n)
		radius := rng.Intn(m + 1)
		ball := mat.Ball(c, radius)
		if mat.Diameter(ball) > 2*radius {
			ballViolations++
		}
	}
	t.AddRow("Lemma 4.2: d(S_{c,i}) ≤ 2i", itoa(trials/4), itoa(ballViolations))

	// Figure 1: overlapping sets' union diameter.
	fig1Violations := 0
	for i := 0; i < trials/4; i++ {
		n := 6 + rng.Intn(10)
		tab := dataset.Uniform(rng, n, 3+rng.Intn(6), 2+rng.Intn(3))
		mat := metric.NewMatrix(tab)
		// Two random sets sharing at least one element.
		shared := rng.Intn(n)
		si := []int{shared}
		sj := []int{shared}
		for v := 0; v < n; v++ {
			if v == shared {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				si = append(si, v)
			case 1:
				sj = append(sj, v)
			}
		}
		union := append(append([]int(nil), si...), sj[1:]...)
		if mat.Diameter(union) > mat.Diameter(si)+mat.Diameter(sj) {
			fig1Violations++
		}
	}
	t.AddRow("Figure 1: d(Si∪Sj) ≤ d(Si)+d(Sj), Si∩Sj ≠ ∅", itoa(trials/4), itoa(fig1Violations))
	return []*Table{t}, nil
}
