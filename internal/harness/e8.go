package harness

import (
	"math/rand"
	"time"

	"kanon/internal/algo"
	"kanon/internal/baseline"
	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/pattern"
	"kanon/internal/refine"
	"kanon/internal/relation"
)

// runE8 compares the paper's ball greedy against practical baselines on
// realistic (census-like and Zipf) workloads — the "we believe this
// algorithm could potentially be quite fast in practice" claim, with k
// in the 5–6 range the paper cites from Sweeney.
func runE8(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Cost and latency on realistic workloads",
		Header: []string{"workload", "n", "k", "algorithm", "stars", "vs best", "NN lower bound", "time"},
		Notes: []string{
			"'vs best' normalizes stars to the best algorithm on that instance",
			"'NN lower bound' is Σ (k−1)-NN distance ≤ OPT — a certificate since exact OPT is out of reach at these sizes",
		},
	}
	ns := []int{100, 400, 1200}
	ks := []int{2, 5, 6}
	if cfg.Quick {
		ns = []int{60, 150}
		ks = []int{2, 5}
	}
	type runnerFn struct {
		name string
		run  func(tab *relation.Table, k int) (int, error)
	}
	runners := []runnerFn{
		{"ball (Thm 4.2)", func(tab *relation.Table, k int) (int, error) {
			r, err := algo.GreedyBall(tab, k, &algo.Options{Workers: cfg.Workers})
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
		{"ball+refine", func(tab *relation.Table, k int) (int, error) {
			r, err := algo.GreedyBall(tab, k, &algo.Options{Workers: cfg.Workers})
			if err != nil {
				return 0, err
			}
			st, err := refine.Partition(tab, r.Partition, k, nil)
			if err != nil {
				return 0, err
			}
			return st.CostAfter, nil
		}},
		{"kmember", func(tab *relation.Table, k int) (int, error) {
			r, err := baseline.KMember(tab, k)
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
		{"mondrian", func(tab *relation.Table, k int) (int, error) {
			r, err := baseline.Mondrian(tab, k)
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
		{"sorted", func(tab *relation.Table, k int) (int, error) {
			r, err := baseline.SortedChunks(tab, k)
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
		{"random", func(tab *relation.Table, k int) (int, error) {
			r, err := baseline.RandomChunks(tab, k, rand.New(rand.NewSource(1)))
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
		{"columns", func(tab *relation.Table, k int) (int, error) {
			r, err := baseline.SuppressColumns(tab, k)
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
		{"pattern", func(tab *relation.Table, k int) (int, error) {
			r, err := pattern.Anonymize(tab, k)
			if err != nil {
				return 0, err
			}
			return r.Cost, nil
		}},
	}
	gens := []struct {
		name string
		gen  func(rng *rand.Rand, n int) *relation.Table
	}{
		{"census", func(rng *rand.Rand, n int) *relation.Table { return dataset.Census(rng, n, 8) }},
		{"zipf", func(rng *rand.Rand, n int) *relation.Table { return dataset.Zipf(rng, n, 8, 12, 1.6) }},
	}
	for _, g := range gens {
		for _, n := range ns {
			for _, k := range ks {
				rng := rand.New(rand.NewSource(cfg.seed() + int64(n*10+k)))
				tab := g.gen(rng, n)
				lb := exact.LowerBoundNN(tab, k)
				type outcome struct {
					name string
					cost int
					d    time.Duration
				}
				var outs []outcome
				best := -1
				for _, r := range runners {
					start := time.Now()
					cost, err := r.run(tab, k)
					if err != nil {
						return nil, err
					}
					d := time.Since(start)
					outs = append(outs, outcome{r.name, cost, d})
					if best == -1 || cost < best {
						best = cost
					}
				}
				for _, o := range outs {
					vs := "1.00"
					if best > 0 {
						vs = f2(float64(o.cost) / float64(best))
					} else if o.cost > 0 {
						vs = "inf"
					}
					t.AddRow(g.name, itoa(n), itoa(k), o.name, itoa(o.cost), vs, itoa(lb), dur(o.d))
				}
			}
		}
	}
	return []*Table{t}, nil
}
