package harness

import (
	"fmt"
	"math/rand"

	"kanon/internal/core"
	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/metric"
	"kanon/internal/relation"
)

// runE6 measures Lemma 4.1's sandwich between the k-anonymity optimum
// and the k-minimum diameter sum, using exact solvers for both
// objectives. It reports both the paper's printed constants and the
// conservative ones, plus the adversarial sunflower family on which the
// printed upper constant fails.
func runE6(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Lemma 4.1 sandwich: OPT(V) vs optimal diameter-sum partition Π*",
		Header: []string{"workload", "k", "trials", "d(Π*)=0",
			"min OPT/d(Π*)", "max OPT/d(Π*)",
			"k/2 lower ok", "(2k-1) upper ok", "safe upper ok"},
		Notes: []string{
			"lower bounds compare OPT against (k/2)·d(Π*); 'upper ok' counts instances with OPT ≤ (2k−1)·d(Π*) (printed) and ≤ (2k−1)(2k−2)·d(Π*) (safe)",
			"sunflower rows are the adversarial family where the printed constant fails (see DESIGN.md and internal/core)",
		},
	}
	trials := 12
	n := 12
	if cfg.Quick {
		trials, n = 5, 10
	}
	type wl struct {
		name string
		gen  func(rng *rand.Rand, k int) *relation.Table
	}
	wls := []wl{
		{"uniform", func(rng *rand.Rand, k int) *relation.Table { return dataset.Uniform(rng, n, 6, 3) }},
		{"planted", func(rng *rand.Rand, k int) *relation.Table { return dataset.Planted(rng, n, 6, 3, k, 2) }},
		{"zipf", func(rng *rand.Rand, k int) *relation.Table { return dataset.Zipf(rng, n, 6, 4, 1.5) }},
	}
	for _, w := range wls {
		for _, k := range []int{2, 3} {
			rng := rand.New(rand.NewSource(cfg.seed() + int64(k)))
			zeroD := 0
			minR, maxR := -1.0, 0.0
			lowerOK, upperOK, safeOK, counted := 0, 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				tab := w.gen(rng, k)
				opt, err := exact.OPT(tab, k)
				if err != nil {
					return nil, err
				}
				ds, err := exact.Solve(tab, k, exact.DiameterSum)
				if err != nil {
					return nil, err
				}
				if ds.Value == 0 {
					zeroD++
					continue
				}
				counted++
				r := float64(opt) / float64(ds.Value)
				if minR < 0 || r < minR {
					minR = r
				}
				if r > maxR {
					maxR = r
				}
				if float64(opt) >= float64(k)/2*float64(ds.Value) {
					lowerOK++
				}
				if float64(opt) <= float64(2*k-1)*float64(ds.Value) {
					upperOK++
				}
				if float64(opt) <= float64((2*k-1)*(2*k-2))*float64(ds.Value) {
					safeOK++
				}
			}
			minStr := "-"
			if minR >= 0 {
				minStr = f2(minR)
			}
			t.AddRow(w.name, itoa(k), itoa(trials), itoa(zeroD), minStr, f2(maxR),
				frac(lowerOK, counted), frac(upperOK, counted), frac(safeOK, counted))
		}
	}

	// Adversarial sunflowers: one group forced (n = 2k−1 rows), printed
	// upper constant (2k−1) fails while the safe constant holds.
	for _, k := range []int{3, 4, 5} {
		petals := 2*k - 2 // rows = petals + 1 = 2k−1
		tab := dataset.Sunflower(petals, 2)
		mat := metric.NewMatrix(tab)
		all := make([]int, tab.Len())
		for i := range all {
			all[i] = i
		}
		p := &core.Partition{Groups: [][]int{all}}
		check := core.CheckLemma41(tab, mat, p, k)
		t.AddRow(fmt.Sprintf("sunflower(%d,2)", petals), itoa(k), "1", "0",
			f2(float64(check.Cost)/float64(check.DiameterSum)),
			f2(float64(check.Cost)/float64(check.DiameterSum)),
			boolFrac(check.PaperLowerHolds), boolFrac(check.PaperUpperHolds), boolFrac(check.SafeUpperHolds))
	}
	return []*Table{t}, nil
}

func frac(a, b int) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%d/%d", a, b)
}

func boolFrac(ok bool) string {
	if ok {
		return "1/1"
	}
	return "0/1"
}
