package harness

import (
	"math/rand"

	"kanon/internal/algo"
	"kanon/internal/core"
	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/refine"
	"kanon/internal/relation"
)

// runE11 probes the paper's §5 open question — "can an approximation be
// found whose performance ratio is independent of k? We suspect
// Ω(log k) might be a lower bound" — empirically: for growing k, the
// worst observed greedy ratio over a fixed-seed corpus, with and
// without cost-direct local-search refinement. A ratio that visibly
// grows with k on adversarial corpora is consistent with the paper's
// suspicion; a flat refined ratio would hint the gap is an artifact of
// the diameter surrogate rather than the problem.
func runE11(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Beyond the paper (§5 open question): ratio growth with k",
		Header: []string{"workload", "k", "trials", "worst ball", "worst ball+refine",
			"worst exhaustive", "bound 3k(1+ln k)"},
		Notes: []string{
			"worst measured cost/OPT over the corpus; exact OPT via DP, so n is small and k ≤ 4",
			"the paper suspects an Ω(log k) hardness floor; measured greedy ratios at this scale stay ≈ flat",
		},
	}
	trials := 14
	n := 14
	if cfg.Quick {
		trials, n = 5, 12
	}
	type gen struct {
		name string
		make func(rng *rand.Rand, k int) *relation.Table
	}
	gens := []gen{
		{"uniform", func(rng *rand.Rand, k int) *relation.Table { return dataset.Uniform(rng, n, 6, 2) }},
		{"planted", func(rng *rand.Rand, k int) *relation.Table { return dataset.Planted(rng, n, 6, 3, k, 2) }},
	}
	for _, g := range gens {
		for _, k := range []int{2, 3, 4} {
			rng := rand.New(rand.NewSource(cfg.seed() + int64(100*k)))
			worstBall, worstRefine, worstEx := 1.0, 1.0, 1.0
			for trial := 0; trial < trials; trial++ {
				tab := g.make(rng, k)
				opt, err := exact.OPT(tab, k)
				if err != nil {
					return nil, err
				}
				if opt == 0 {
					continue
				}
				ball, err := algo.GreedyBall(tab, k, nil)
				if err != nil {
					return nil, err
				}
				if r := exact.Ratio(ball.Cost, opt); r > worstBall {
					worstBall = r
				}
				st, err := refine.Partition(tab, ball.Partition, k, nil)
				if err != nil {
					return nil, err
				}
				if r := exact.Ratio(st.CostAfter, opt); r > worstRefine {
					worstRefine = r
				}
				ex, err := algo.GreedyExhaustive(tab, k, nil)
				if err != nil {
					return nil, err
				}
				if r := exact.Ratio(ex.Cost, opt); r > worstEx {
					worstEx = r
				}
			}
			t.AddRow(g.name, itoa(k), itoa(trials), f3(worstBall), f3(worstRefine),
				f3(worstEx), f1(core.Theorem41Bound(k)))
		}
	}
	return []*Table{t}, nil
}
