// Package harness implements the reproduction experiments E1–E12
// defined in DESIGN.md. Each experiment regenerates one table of
// EXPERIMENTS.md: it builds a fixed-seed instance corpus, runs the
// relevant solvers, and renders a plain-text table with the measured
// quantities next to the paper's claimed bounds.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"kanon/internal/metric"
)

// Config tunes experiment scale.
type Config struct {
	// Quick shrinks corpora so the full suite finishes in seconds; the
	// default (false) matches the numbers recorded in EXPERIMENTS.md.
	Quick bool
	// Seed drives all instance generation; experiments derive
	// per-instance seeds from it deterministically.
	Seed int64
	// Workers bounds the parallelism of the algorithms under test
	// (0 = all CPUs, 1 = sequential). E3 and E8 additionally sweep it
	// where the comparison is the point of the experiment.
	Workers int
	// Kernel selects the distance-kernel backend for the metric-driven
	// solvers (metric.Auto sizes it to each instance). Bench cases
	// pinned to a specific backend ignore it.
	Kernel metric.Choice
}

// DefaultSeed is the corpus seed used for EXPERIMENTS.md.
const DefaultSeed = 20040614 // PODS 2004, June 14–16

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return DefaultSeed
	}
	return c.Seed
}

// EffectiveSeed resolves the zero-value default to the seed the
// experiments actually use; bench tooling records it so runs are
// self-describing.
func (c Config) EffectiveSeed() int64 { return c.seed() }

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Notes  []string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for j, h := range t.Header {
		widths[j] = len(h)
	}
	for _, r := range t.Rows {
		for j, c := range r {
			if j < len(widths) && len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[j]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for j := range sep {
		sep[j] = strings.Repeat("-", widths[j])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table,
// for pasting into EXPERIMENTS.md.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for j := range sep {
		sep[j] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderJSON writes the table as one JSON object on a single line —
// the machine-readable form kanon-bench -json emits for trajectory
// tooling (BENCH_*.json).
func (t *Table) RenderJSON(w io.Writer) error {
	obj := struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes}
	enc := json.NewEncoder(w)
	return enc.Encode(obj)
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]*Table, error)
}

// All returns the experiments in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "Theorem 4.1 — exhaustive greedy vs exact OPT", runE1},
		{"E2", "Theorem 4.2 — ball greedy vs exact OPT", runE2},
		{"E3", "Runtime scaling — O(n^2k) vs strongly polynomial", runE3},
		{"E4", "Theorem 3.1 — entry-suppression hardness reduction", runE4},
		{"E5", "Theorem 3.2 — attribute-suppression hardness reduction", runE5},
		{"E6", "Lemma 4.1 — diameter-sum sandwich", runE6},
		{"E7", "Paper worked examples (§1 table, §4 example)", runE7},
		{"E8", "Baselines on realistic workloads", runE8},
		{"E9", "Figure 1 and metric properties", runE9},
		{"E10", "Ablations (split policy, weights, family, laziness)", runE10},
		{"E11", "Beyond the paper: ratio growth with k (§5 open question)", runE11},
		{"E12", "Granularity: cell vs attribute vs full-domain lattice", runE12},
		{"E13", "Beyond the paper: alphabet size as hardness dial (§5)", runE13},
		{"E14", "Beyond the paper: column-weighted suppression", runE14},
		{"E15", "Beyond the paper: hierarchy generalization vs cell suppression", runE15},
	}
	sort.Slice(exps, func(a, b int) bool { return idOrder(exps[a].ID) < idOrder(exps[b].ID) })
	return exps
}

func idOrder(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment and writes the tables to w.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range All() {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("harness: %s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// f1, f2, f3 format floats at fixed precision for table cells.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

func itoa(x int) string { return fmt.Sprintf("%d", x) }

func dur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
