// Package baseline implements the comparison heuristics for experiment
// E8: the practical algorithms a deployment of suppression k-anonymity
// would otherwise reach for. None carries an approximation guarantee
// (random and sorted chunking can be arbitrarily bad); their role is to
// calibrate the paper's greedy algorithms on realistic workloads.
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"kanon/internal/core"
	"kanon/internal/metric"
	"kanon/internal/relation"
)

// Result mirrors algo.Result for the baselines: partition, suppressor,
// anonymized table and star count.
type Result struct {
	K          int
	Partition  *core.Partition
	Suppressor *core.Suppressor
	Anonymized *relation.Table
	Cost       int
}

// finish materializes a Result from a partition, validating k-anonymity.
func finish(t *relation.Table, k int, p *core.Partition) (*Result, error) {
	if err := p.Validate(t.Len(), k, 0); err != nil {
		return nil, fmt.Errorf("baseline: internal: %w", err)
	}
	sup := p.Suppressor(t)
	anon := sup.Apply(t)
	if !anon.IsKAnonymous(k) {
		return nil, fmt.Errorf("baseline: internal: output not %d-anonymous", k)
	}
	return &Result{K: k, Partition: p, Suppressor: sup, Anonymized: anon, Cost: sup.Stars()}, nil
}

func checkInstance(t *relation.Table, k int) error {
	if k < 1 {
		return fmt.Errorf("baseline: k = %d < 1", k)
	}
	if t.Len() < k {
		return fmt.Errorf("baseline: table has %d rows, fewer than k = %d", t.Len(), k)
	}
	return nil
}

// SortedChunks sorts rows lexicographically and groups consecutive runs
// of k (the last group absorbs the remainder). Fast — O(n log n · m) —
// and surprisingly strong on data whose prefix columns carry most
// identity, which is why it is the standard strawman.
func SortedChunks(t *relation.Table, k int) (*Result, error) {
	if err := checkInstance(t, k); err != nil {
		return nil, err
	}
	idx := t.SortedIndex()
	p := &core.Partition{}
	for len(idx) > 0 {
		sz := k
		if len(idx) < 2*k {
			sz = len(idx)
		}
		g := append([]int(nil), idx[:sz]...)
		sort.Ints(g)
		p.Groups = append(p.Groups, g)
		idx = idx[sz:]
	}
	return finish(t, k, p)
}

// RandomChunks shuffles rows with the supplied source and groups
// consecutive runs of k. The no-effort baseline; expected cost is near
// the all-suppressed maximum on high-entropy data.
func RandomChunks(t *relation.Table, k int, rng *rand.Rand) (*Result, error) {
	if err := checkInstance(t, k); err != nil {
		return nil, err
	}
	idx := rng.Perm(t.Len())
	p := &core.Partition{}
	for len(idx) > 0 {
		sz := k
		if len(idx) < 2*k {
			sz = len(idx)
		}
		g := append([]int(nil), idx[:sz]...)
		sort.Ints(g)
		p.Groups = append(p.Groups, g)
		idx = idx[sz:]
	}
	return finish(t, k, p)
}

// KMember is a greedy clustering in the style of Byun et al.'s k-member
// algorithm: repeatedly seed a new group with the row farthest from the
// previous seed, then grow the group to size k by adding the row whose
// inclusion costs the fewest extra stars; leftover rows (< k of them)
// join the group where they are cheapest.
func KMember(t *relation.Table, k int) (*Result, error) {
	if err := checkInstance(t, k); err != nil {
		return nil, err
	}
	n := t.Len()
	mat := metric.NewMatrix(t)
	unassigned := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		unassigned[i] = true
	}
	var groups [][]int
	seed := 0 // first seed: row 0; subsequent: farthest from last seed
	for len(unassigned) >= k {
		// Pick seed: farthest unassigned row from the previous seed.
		best, bestD := -1, -1
		for v := range unassigned {
			if d := mat.Dist(seed, v); d > bestD || (d == bestD && v < best) {
				best, bestD = v, d
			}
		}
		seed = best
		group := []int{seed}
		delete(unassigned, seed)
		for len(group) < k {
			cand, candCost := -1, -1
			for v := range unassigned {
				c := core.Anon(t, append(group, v))
				if candCost == -1 || c < candCost || (c == candCost && v < cand) {
					cand, candCost = v, c
				}
			}
			group = append(group, cand)
			delete(unassigned, cand)
		}
		sort.Ints(group)
		groups = append(groups, group)
	}
	// Distribute the < k leftovers to their cheapest group, in index
	// order for determinism (map iteration order is randomized).
	leftovers := make([]int, 0, len(unassigned))
	for v := range unassigned {
		leftovers = append(leftovers, v)
	}
	sort.Ints(leftovers)
	for _, v := range leftovers {
		bestG, bestDelta := -1, -1
		for gi, g := range groups {
			delta := core.Anon(t, append(append([]int(nil), g...), v)) - core.Anon(t, g)
			if bestDelta == -1 || delta < bestDelta || (delta == bestDelta && gi < bestG) {
				bestG, bestDelta = gi, delta
			}
		}
		groups[bestG] = append(groups[bestG], v)
		sort.Ints(groups[bestG])
	}
	return finish(t, k, &core.Partition{Groups: groups})
}

// Mondrian adapts the multidimensional Mondrian partitioner (LeFevre et
// al.) to the suppression model: recursively split the current row set
// on the attribute with the most distinct values, sending each value
// class to the side with fewer rows so both halves keep ≥ k rows; stop
// when no attribute admits a feasible split and emit the leaf as one
// group.
func Mondrian(t *relation.Table, k int) (*Result, error) {
	if err := checkInstance(t, k); err != nil {
		return nil, err
	}
	var groups [][]int
	all := make([]int, t.Len())
	for i := range all {
		all[i] = i
	}
	var split func(rows []int)
	split = func(rows []int) {
		if len(rows) < 2*k {
			g := append([]int(nil), rows...)
			sort.Ints(g)
			groups = append(groups, g)
			return
		}
		// Rank attributes by distinct-value count among rows (Mondrian's
		// widest-dimension heuristic for categorical data) and take the
		// first that admits an allowable cut — one leaving ≥ k rows on
		// both sides.
		type attr struct{ j, distinct int }
		attrs := make([]attr, 0, t.Degree())
		for j := 0; j < t.Degree(); j++ {
			seen := map[int32]bool{}
			for _, i := range rows {
				seen[t.Row(i)[j]] = true
			}
			if len(seen) > 1 {
				attrs = append(attrs, attr{j, len(seen)})
			}
		}
		sort.Slice(attrs, func(a, b int) bool {
			if attrs[a].distinct != attrs[b].distinct {
				return attrs[a].distinct > attrs[b].distinct
			}
			return attrs[a].j < attrs[b].j
		})
		for _, a := range attrs {
			// Partition rows by value and greedily pack value classes
			// into two halves balancing sizes.
			byVal := map[int32][]int{}
			var vals []int32
			for _, i := range rows {
				v := t.Row(i)[a.j]
				if _, ok := byVal[v]; !ok {
					vals = append(vals, v)
				}
				byVal[v] = append(byVal[v], i)
			}
			sort.Slice(vals, func(x, y int) bool {
				if len(byVal[vals[x]]) != len(byVal[vals[y]]) {
					return len(byVal[vals[x]]) > len(byVal[vals[y]])
				}
				return vals[x] < vals[y]
			})
			var left, right []int
			for _, v := range vals {
				if len(left) <= len(right) {
					left = append(left, byVal[v]...)
				} else {
					right = append(right, byVal[v]...)
				}
			}
			if len(left) >= k && len(right) >= k {
				split(left)
				split(right)
				return
			}
		}
		// No attribute admits an allowable cut: emit the leaf.
		g := append([]int(nil), rows...)
		sort.Ints(g)
		groups = append(groups, g)
	}
	split(all)
	return finish(t, k, &core.Partition{Groups: groups})
}

// SuppressColumns is the whole-attribute strawman: greedily suppress the
// attribute whose removal most reduces the number of k-anonymity
// violations (rows in equivalence classes smaller than k) until the
// projection is k-anonymous, then group rows by their surviving
// projection. Cost is counted in entries (n per suppressed column) so it
// is comparable with the cell-suppression algorithms.
func SuppressColumns(t *relation.Table, k int) (*Result, error) {
	if err := checkInstance(t, k); err != nil {
		return nil, err
	}
	m := t.Degree()
	kept := make([]bool, m)
	for j := range kept {
		kept[j] = true
	}
	violations := func(drop int) int {
		sig := make(map[string]int, t.Len())
		keys := make([]string, t.Len())
		for i := 0; i < t.Len(); i++ {
			key := projectionKey(t.Row(i), kept, drop)
			keys[i] = key
			sig[key]++
		}
		bad := 0
		for _, key := range keys {
			if sig[key] < k {
				bad++
			}
		}
		return bad
	}
	for violations(-1) > 0 {
		bestJ, bestBad := -1, -1
		for j := 0; j < m; j++ {
			if !kept[j] {
				continue
			}
			bad := violations(j)
			if bestBad == -1 || bad < bestBad {
				bestJ, bestBad = j, bad
			}
		}
		if bestJ == -1 {
			break // nothing left to drop; single-class projection is k-anonymous for n ≥ k
		}
		kept[bestJ] = false
	}
	// Group rows by surviving projection.
	buckets := map[string][]int{}
	var order []string
	for i := 0; i < t.Len(); i++ {
		key := projectionKey(t.Row(i), kept, -1)
		if _, ok := buckets[key]; !ok {
			order = append(order, key)
		}
		buckets[key] = append(buckets[key], i)
	}
	p := &core.Partition{}
	for _, key := range order {
		p.Groups = append(p.Groups, buckets[key])
	}
	// The partition's induced suppressor stars exactly the dropped
	// columns (plus any column non-uniform within a group — none by
	// construction), so finish() accounts the cost correctly.
	return finish(t, k, p)
}

// projectionKey renders the row restricted to kept columns, optionally
// treating column drop as removed too.
func projectionKey(r relation.Row, kept []bool, drop int) string {
	b := make([]byte, 0, len(r)*3)
	for j, v := range r {
		if !kept[j] || j == drop {
			continue
		}
		b = append(b, byte(j), byte(v), byte(v>>8), '|')
	}
	return string(b)
}
