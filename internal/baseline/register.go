package baseline

import (
	"math/rand"

	"kanon/internal/core"
	"kanon/internal/relation"
	"kanon/internal/solver"
)

// register wires one baseline under a span named after it, preserving
// the facade's historical "baseline.<name>" trace phases.
func register(name, desc string, run func(req solver.Request) (*core.Partition, error)) {
	solver.Register(solver.Info{
		Name:        name,
		Description: desc,
		Run: func(req solver.Request) (*solver.Result, error) {
			sp := req.Trace.Start("baseline." + name)
			p, err := run(req)
			sp.End()
			if err != nil {
				return nil, err
			}
			return &solver.Result{Partition: p}, nil
		},
	})
}

func init() {
	part := func(f func(t *relation.Table, k int) (*Result, error)) func(req solver.Request) (*core.Partition, error) {
		return func(req solver.Request) (*core.Partition, error) {
			r, err := f(req.Table, req.K)
			if err != nil {
				return nil, err
			}
			return r.Partition, nil
		}
	}
	register("kmember", "greedy clustering baseline", part(KMember))
	register("mondrian", "median-split partitioning baseline", part(Mondrian))
	register("sorted", "lexicographic-chunks baseline", part(SortedChunks))
	register("random", "shuffled-chunks baseline", func(req solver.Request) (*core.Partition, error) {
		r, err := RandomChunks(req.Table, req.K, rand.New(rand.NewSource(req.Seed)))
		if err != nil {
			return nil, err
		}
		return r.Partition, nil
	})
}
