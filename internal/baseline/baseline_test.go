package baseline

import (
	"math/rand"
	"testing"

	"kanon/internal/algo"
	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/relation"
)

type runner func(t *relation.Table, k int) (*Result, error)

func allRunners() map[string]runner {
	return map[string]runner{
		"sorted":   SortedChunks,
		"kmember":  KMember,
		"mondrian": Mondrian,
		"columns":  SuppressColumns,
		"random": func(t *relation.Table, k int) (*Result, error) {
			return RandomChunks(t, k, rand.New(rand.NewSource(1234)))
		},
	}
}

func checkResult(t *testing.T, tab *relation.Table, k int, r *Result) {
	t.Helper()
	if err := r.Partition.Validate(tab.Len(), k, 0); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	if !r.Anonymized.IsKAnonymous(k) {
		t.Fatal("output not k-anonymous")
	}
	if r.Anonymized.TotalStars() != r.Cost {
		t.Fatalf("cost %d != stars %d", r.Cost, r.Anonymized.TotalStars())
	}
}

func TestAllBaselinesProduceValidAnonymizations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tables := map[string]*relation.Table{
		"uniform": dataset.Uniform(rng, 23, 5, 3),
		"planted": dataset.Planted(rng, 24, 6, 3, 4, 1),
		"census":  dataset.Census(rng, 25, 6),
		"zipf":    dataset.Zipf(rng, 22, 5, 6, 1.5),
	}
	for tname, tab := range tables {
		for _, k := range []int{2, 3, 5} {
			for bname, run := range allRunners() {
				t.Run(tname+"/"+bname, func(t *testing.T) {
					r, err := run(tab, k)
					if err != nil {
						t.Fatal(err)
					}
					checkResult(t, tab, k, r)
				})
			}
		}
	}
}

func TestBaselinesInputValidation(t *testing.T) {
	tab := dataset.Uniform(rand.New(rand.NewSource(6)), 3, 2, 2)
	for name, run := range allRunners() {
		t.Run(name, func(t *testing.T) {
			if _, err := run(tab, 0); err == nil {
				t.Error("accepted k=0")
			}
			if _, err := run(tab, 5); err == nil {
				t.Error("accepted n < k")
			}
		})
	}
}

func TestSortedChunksOnPresortedClusters(t *testing.T) {
	// Identical triples are adjacent after sorting, so sorted chunks
	// recovers zero cost on a duplicated table.
	tab := relation.MustFromVectors([][]int{
		{1, 1}, {2, 2}, {1, 1}, {2, 2}, {1, 1}, {2, 2},
	})
	r, err := SortedChunks(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Errorf("cost = %d, want 0", r.Cost)
	}
}

func TestKMemberRecoverPlanted(t *testing.T) {
	// Zero-noise planted clusters: k-member should pay nothing.
	tab := dataset.Planted(rand.New(rand.NewSource(7)), 15, 6, 4, 3, 0)
	r, err := KMember(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Errorf("k-member cost %d on planted clusters, want 0", r.Cost)
	}
}

func TestMondrianIdenticalRows(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}})
	r, err := Mondrian(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Errorf("cost = %d on identical rows, want 0", r.Cost)
	}
}

func TestMondrianSplitsSeparableClusters(t *testing.T) {
	tab := relation.MustFromVectors([][]int{
		{0, 0, 0}, {0, 0, 1}, {9, 9, 0}, {9, 9, 1}, {0, 0, 2}, {9, 9, 2},
	})
	r, err := Mondrian(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, tab, 3, r)
	// Perfect split: two groups {0,1,4} and {2,3,5}, each uniform on
	// the first two columns, paying only the third column: 3+3 stars
	// per group = 6 total... column 3 has 3 distinct values in each
	// group, so cost = 2 groups × 3 rows × 1 column = 6.
	if r.Cost != 6 {
		t.Errorf("cost = %d, want 6", r.Cost)
	}
}

func TestSuppressColumnsAllDistinctOneColumn(t *testing.T) {
	// Column 0 identifies rows uniquely; dropping it is the only way to
	// k-anonymize, with cost n (4 rows × 1 column).
	tab := relation.MustFromVectors([][]int{
		{1, 7}, {2, 7}, {3, 7}, {4, 7},
	})
	r, err := SuppressColumns(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 4 {
		t.Errorf("cost = %d, want 4", r.Cost)
	}
}

func TestSuppressColumnsAlreadyAnonymous(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1, 2}, {1, 2}, {1, 2}})
	r, err := SuppressColumns(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Errorf("cost = %d, want 0", r.Cost)
	}
}

// TestGreedyBeatsWeakBaselines is the E8 shape in miniature: on skewed
// census-like data the paper's ball greedy should beat random chunking
// decisively and be no worse than ~1.5× the strongest baseline.
func TestGreedyBeatsWeakBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tab := dataset.Census(rng, 60, 6)
	k := 3
	g, err := algo.GreedyBall(tab, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomChunks(tab, k, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if g.Cost >= rnd.Cost {
		t.Errorf("greedy %d should beat random %d", g.Cost, rnd.Cost)
	}
	km, err := KMember(tab, k)
	if err != nil {
		t.Fatal(err)
	}
	if float64(g.Cost) > 1.5*float64(km.Cost)+1 {
		t.Errorf("greedy %d much worse than k-member %d", g.Cost, km.Cost)
	}
}

// TestBaselinesNeverBeatExact sanity-checks the exact solver from the
// other side: no baseline may go below OPT.
func TestBaselinesNeverBeatExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		tab := dataset.Uniform(rng, 10, 4, 2)
		k := 2 + trial%2
		opt, err := exact.OPT(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range allRunners() {
			r, err := run(tab, k)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if r.Cost < opt {
				t.Errorf("trial %d: %s cost %d < OPT %d", trial, name, r.Cost, opt)
			}
		}
	}
}

func TestKMemberDeterministic(t *testing.T) {
	tab := dataset.Zipf(rand.New(rand.NewSource(10)), 17, 5, 4, 1.4)
	a, err := KMember(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMember(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("nondeterministic: %d vs %d", a.Cost, b.Cost)
	}
	a.Partition.Normalize()
	b.Partition.Normalize()
	for i := range a.Partition.Groups {
		ga, gb := a.Partition.Groups[i], b.Partition.Groups[i]
		if len(ga) != len(gb) {
			t.Fatal("nondeterministic partition")
		}
		for j := range ga {
			if ga[j] != gb[j] {
				t.Fatal("nondeterministic partition")
			}
		}
	}
}
