// Package relation implements the tabular substrate of the reproduction:
// schemas, attribute alphabets, rows of interned symbols, and the star
// sentinel used for suppression.
//
// The paper (Meyerson & Williams, PODS 2004, §2) models a database as a
// set V ⊆ Σ^m of m-dimensional vectors over a finite alphabet Σ, with a
// fresh symbol ★ ∉ Σ standing for a suppressed entry. This package
// represents vectors as rows of small integer symbols, one interning
// table per attribute, so that distance computations and group signature
// hashing are cheap and allocation-free on the hot paths.
package relation

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Star is the sentinel symbol code representing a suppressed entry (the
// paper's ★). It is deliberately outside every attribute alphabet, whose
// symbol codes are always non-negative.
const Star int32 = -1

// StarString is the textual rendering of a suppressed entry.
const StarString = "*"

// Attribute describes a single column: its name and the interned
// alphabet of values observed (or declared) for it.
type Attribute struct {
	Name string

	// symbols maps the symbol code (index) back to the external string.
	symbols []string
	// index maps an external string to its symbol code.
	index map[string]int32
}

// NewAttribute returns an attribute with the given name and an empty
// alphabet.
func NewAttribute(name string) *Attribute {
	return &Attribute{Name: name, index: make(map[string]int32)}
}

// Intern returns the symbol code for value, adding it to the alphabet if
// it has not been seen before.
func (a *Attribute) Intern(value string) int32 {
	if code, ok := a.index[value]; ok {
		return code
	}
	code := int32(len(a.symbols))
	a.symbols = append(a.symbols, value)
	a.index[value] = code
	return code
}

// Lookup returns the symbol code for value, or (0, false) if the value is
// not in the alphabet.
func (a *Attribute) Lookup(value string) (int32, bool) {
	code, ok := a.index[value]
	return code, ok
}

// Value returns the external string for a symbol code. The Star code
// renders as StarString.
func (a *Attribute) Value(code int32) string {
	if code == Star {
		return StarString
	}
	return a.symbols[code]
}

// AlphabetSize reports the number of distinct values interned so far.
func (a *Attribute) AlphabetSize() int { return len(a.symbols) }

// Alphabet returns a copy of the attribute's alphabet in symbol-code
// order.
func (a *Attribute) Alphabet() []string {
	out := make([]string, len(a.symbols))
	copy(out, a.symbols)
	return out
}

// Schema is an ordered list of attributes. The paper's degree m is
// len(schema).
type Schema struct {
	attrs []*Attribute
}

// NewSchema builds a schema from attribute names.
func NewSchema(names ...string) *Schema {
	s := &Schema{attrs: make([]*Attribute, 0, len(names))}
	for _, n := range names {
		s.attrs = append(s.attrs, NewAttribute(n))
	}
	return s
}

// Degree reports the number of attributes (the paper's m).
func (s *Schema) Degree() int { return len(s.attrs) }

// Attribute returns the j-th attribute.
func (s *Schema) Attribute(j int) *Attribute { return s.attrs[j] }

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// ColumnIndex returns the index of the attribute with the given name, or
// -1 if absent.
func (s *Schema) ColumnIndex(name string) int {
	for i, a := range s.attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Row is a single tuple: one symbol code per attribute. A code of Star
// means the entry is suppressed.
type Row []int32

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two rows are identical entry for entry
// (suppressed entries compare equal to each other, as in the paper's
// "textually indistinguishable").
func (r Row) Equal(other Row) bool {
	if len(r) != len(other) {
		return false
	}
	for j := range r {
		if r[j] != other[j] {
			return false
		}
	}
	return true
}

// Stars counts the suppressed entries in the row.
func (r Row) Stars() int {
	n := 0
	for _, c := range r {
		if c == Star {
			n++
		}
	}
	return n
}

// Table is a relation instance: a schema plus n rows drawn from it. Rows
// are a multiset; duplicates are permitted and significant (a row that
// already appears k times is k-anonymous with zero suppression).
type Table struct {
	schema *Schema
	rows   []Row
}

// NewTable returns an empty table over the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{schema: schema}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len reports the number of rows (the paper's n = |V|).
func (t *Table) Len() int { return len(t.rows) }

// Degree reports the number of attributes (the paper's m).
func (t *Table) Degree() int { return t.schema.Degree() }

// Row returns the i-th row. The returned slice aliases table storage;
// callers that mutate it must Clone first.
func (t *Table) Row(i int) Row { return t.rows[i] }

// Rows returns the underlying row slice. The slice aliases table
// storage.
func (t *Table) Rows() []Row { return t.rows }

// AppendRow appends a pre-interned row. It returns an error if the row
// degree does not match the schema.
func (t *Table) AppendRow(r Row) error {
	if len(r) != t.schema.Degree() {
		return fmt.Errorf("relation: row degree %d does not match schema degree %d", len(r), t.schema.Degree())
	}
	t.rows = append(t.rows, r)
	return nil
}

// AppendStrings interns the given values and appends them as a row.
func (t *Table) AppendStrings(values ...string) error {
	if len(values) != t.schema.Degree() {
		return fmt.Errorf("relation: %d values for schema degree %d", len(values), t.schema.Degree())
	}
	r := make(Row, len(values))
	for j, v := range values {
		if v == StarString {
			r[j] = Star
			continue
		}
		r[j] = t.schema.Attribute(j).Intern(v)
	}
	t.rows = append(t.rows, r)
	return nil
}

// Clone returns a deep copy of the table sharing the schema (alphabets
// are append-only, so sharing is safe for concurrent readers).
func (t *Table) Clone() *Table {
	out := &Table{schema: t.schema, rows: make([]Row, len(t.rows))}
	for i, r := range t.rows {
		out.rows[i] = r.Clone()
	}
	return out
}

// Strings renders row i as external strings.
func (t *Table) Strings(i int) []string {
	r := t.rows[i]
	out := make([]string, len(r))
	for j, c := range r {
		out[j] = t.schema.Attribute(j).Value(c)
	}
	return out
}

// TotalStars counts suppressed entries over the whole table — the
// paper's objective value for a suppressed table.
func (t *Table) TotalStars() int {
	n := 0
	for _, r := range t.rows {
		n += r.Stars()
	}
	return n
}

// Signature returns a canonical string key for row i, used to bucket
// identical anonymized rows. Two rows have equal signatures iff they are
// textually indistinguishable.
func (t *Table) Signature(i int) string {
	return RowSignature(t.rows[i])
}

// RowSignature returns a canonical key for a row independent of any
// table.
func RowSignature(r Row) string {
	var b strings.Builder
	b.Grow(len(r) * 4)
	for _, c := range r {
		// Symbol codes are small; a simple decimal encoding with a
		// separator is canonical and cheap.
		fmt.Fprintf(&b, "%d|", c)
	}
	return b.String()
}

// GroupSizes returns, for each row index, the size of its
// textual-equivalence class in the table.
func (t *Table) GroupSizes() []int {
	counts := make(map[string]int, len(t.rows))
	keys := make([]string, len(t.rows))
	for i := range t.rows {
		k := t.Signature(i)
		keys[i] = k
		counts[k]++
	}
	out := make([]int, len(t.rows))
	for i, k := range keys {
		out[i] = counts[k]
	}
	return out
}

// IsKAnonymous reports whether every row's equivalence class has
// cardinality at least k (Definition 2.2).
func (t *Table) IsKAnonymous(k int) bool {
	if k <= 0 {
		return true
	}
	for _, sz := range t.GroupSizes() {
		if sz < k {
			return false
		}
	}
	return true
}

// ErrSchemaMismatch is returned when combining tables over different
// schemas.
var ErrSchemaMismatch = errors.New("relation: schema mismatch")

// SubTable returns a new table holding clones of the rows at the given
// indices, sharing the schema.
func (t *Table) SubTable(indices []int) *Table {
	out := &Table{schema: t.schema, rows: make([]Row, 0, len(indices))}
	for _, i := range indices {
		out.rows = append(out.rows, t.rows[i].Clone())
	}
	return out
}

// SortedIndex returns row indices sorted lexicographically by symbol
// codes. Used by the sorted-chunks baseline and for canonical output.
func (t *Table) SortedIndex() []int {
	idx := make([]int, len(t.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := t.rows[idx[a]], t.rows[idx[b]]
		for j := range ra {
			if ra[j] != rb[j] {
				return ra[j] < rb[j]
			}
		}
		return idx[a] < idx[b]
	})
	return idx
}

// String renders the table as an aligned text grid, mirroring the
// paper's display tables. Intended for examples and debugging, not
// machine interchange (use CSV for that).
func (t *Table) String() string {
	names := t.schema.Names()
	widths := make([]int, len(names))
	for j, n := range names {
		widths[j] = len(n)
	}
	cells := make([][]string, len(t.rows))
	for i := range t.rows {
		cells[i] = t.Strings(i)
		for j, c := range cells[i] {
			if len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			for p := len(v); p < widths[j]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
