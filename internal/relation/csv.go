package relation

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV parses a table from CSV. The first record is the header and
// becomes the schema; every subsequent record is interned as a row.
// A cell equal to StarString is read back as a suppressed entry, so
// ReadCSV(WriteCSV(t)) round-trips anonymized tables.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("relation: empty CSV header")
	}
	t := NewTable(NewSchema(header...))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		if err := t.AppendStrings(rec...); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
	return t, nil
}

// ReadCSVRows parses a header + data rows table from CSV without
// interning it into a Table — the shared codec behind cmd/kanon's file
// handling and the server's job ingest, both of which hand plain string
// rows to the public facade. Every record must have the header's
// arity; a table with no data rows is an error (there is nothing to
// anonymize).
func ReadCSVRows(r io.Reader) (header []string, rows [][]string, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err = cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("reading CSV header: %w", err)
	}
	if len(header) == 0 {
		return nil, nil, fmt.Errorf("empty CSV header")
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, nil, fmt.Errorf("CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		rows = append(rows, rec)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("no data rows")
	}
	return header, rows, nil
}

// WriteCSVRows renders a header + rows table as CSV — the inverse of
// ReadCSVRows, used to emit anonymized releases.
//
// A record whose only field is the empty string is written as a quoted
// `""` rather than encoding/csv's bare empty line, which the reader
// would silently skip; this keeps ReadCSVRows(WriteCSVRows(t)) lossless
// for single-column tables with empty cells.
func WriteCSVRows(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := writeRecord(cw, w, header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := writeRecord(cw, w, r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeRecord writes one record through cw, special-casing the lone
// empty field (see WriteCSVRows). The raw write flushes first so the
// two write paths cannot interleave out of order.
func writeRecord(cw *csv.Writer, w io.Writer, rec []string) error {
	if len(rec) == 1 && rec[0] == "" {
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		_, err := io.WriteString(w, "\"\"\n")
		return err
	}
	return cw.Write(rec)
}

// WriteCSV renders the table as CSV with a header row. Suppressed
// entries render as StarString.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := writeRecord(cw, w, t.Schema().Names()); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	for i := 0; i < t.Len(); i++ {
		if err := writeRecord(cw, w, t.Strings(i)); err != nil {
			return fmt.Errorf("relation: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("relation: flushing CSV: %w", err)
	}
	return nil
}
