package relation

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV parses a table from CSV. The first record is the header and
// becomes the schema; every subsequent record is interned as a row.
// A cell equal to StarString is read back as a suppressed entry, so
// ReadCSV(WriteCSV(t)) round-trips anonymized tables.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("relation: empty CSV header")
	}
	t := NewTable(NewSchema(header...))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		if err := t.AppendStrings(rec...); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
	return t, nil
}

// WriteCSV renders the table as CSV with a header row. Suppressed
// entries render as StarString.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	for i := 0; i < t.Len(); i++ {
		if err := cw.Write(t.Strings(i)); err != nil {
			return fmt.Errorf("relation: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("relation: flushing CSV: %w", err)
	}
	return nil
}
