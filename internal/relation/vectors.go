package relation

import (
	"fmt"
	"strconv"
)

// FromVectors builds a table from raw integer vectors over a generic
// schema with attribute names a0, a1, …. Each integer is interned via
// its decimal string, so symbol codes are stable across equal values but
// need not equal the integers themselves. Rows must be rectangular.
//
// This is the bridge used by the §3 reductions, the synthetic
// generators, and most tests, which all work with abstract Σ^m vectors
// rather than named microdata.
func FromVectors(vectors [][]int) (*Table, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("relation: FromVectors needs at least one vector")
	}
	m := len(vectors[0])
	names := make([]string, m)
	for j := range names {
		names[j] = "a" + strconv.Itoa(j)
	}
	t := NewTable(NewSchema(names...))
	for i, v := range vectors {
		if len(v) != m {
			return nil, fmt.Errorf("relation: vector %d has degree %d, want %d", i, len(v), m)
		}
		r := make(Row, m)
		for j, x := range v {
			r[j] = t.schema.Attribute(j).Intern(strconv.Itoa(x))
		}
		t.rows = append(t.rows, r)
	}
	return t, nil
}

// MustFromVectors is FromVectors that panics on error; for tests and
// fixed examples.
func MustFromVectors(vectors [][]int) *Table {
	t, err := FromVectors(vectors)
	if err != nil {
		panic(err)
	}
	return t
}

// FromBitstrings builds a table from equal-length strings of '0'/'1'
// characters, as in the paper's §4 worked example V = {1010, 1110,
// 0110}.
func FromBitstrings(rows ...string) (*Table, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("relation: FromBitstrings needs at least one row")
	}
	vecs := make([][]int, len(rows))
	m := len(rows[0])
	for i, s := range rows {
		if len(s) != m {
			return nil, fmt.Errorf("relation: bitstring %d has length %d, want %d", i, len(s), m)
		}
		v := make([]int, m)
		for j, ch := range s {
			switch ch {
			case '0':
				v[j] = 0
			case '1':
				v[j] = 1
			default:
				return nil, fmt.Errorf("relation: bitstring %d has non-binary character %q", i, ch)
			}
		}
		vecs[i] = v
	}
	return FromVectors(vecs)
}

// MustFromBitstrings is FromBitstrings that panics on error.
func MustFromBitstrings(rows ...string) *Table {
	t, err := FromBitstrings(rows...)
	if err != nil {
		panic(err)
	}
	return t
}
