package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestAttributeIntern(t *testing.T) {
	a := NewAttribute("race")
	c1 := a.Intern("Afr-Am")
	c2 := a.Intern("Cauc")
	c3 := a.Intern("Afr-Am")
	if c1 != c3 {
		t.Errorf("Intern not idempotent: %d vs %d", c1, c3)
	}
	if c1 == c2 {
		t.Errorf("distinct values interned to same code %d", c1)
	}
	if got := a.AlphabetSize(); got != 2 {
		t.Errorf("AlphabetSize = %d, want 2", got)
	}
	if got := a.Value(c2); got != "Cauc" {
		t.Errorf("Value(%d) = %q, want Cauc", c2, got)
	}
	if got := a.Value(Star); got != StarString {
		t.Errorf("Value(Star) = %q, want %q", got, StarString)
	}
	if _, ok := a.Lookup("Hisp"); ok {
		t.Error("Lookup found value that was never interned")
	}
	if code, ok := a.Lookup("Cauc"); !ok || code != c2 {
		t.Errorf("Lookup(Cauc) = (%d, %v), want (%d, true)", code, ok, c2)
	}
}

func TestAttributeAlphabetCopy(t *testing.T) {
	a := NewAttribute("x")
	a.Intern("p")
	a.Intern("q")
	alpha := a.Alphabet()
	alpha[0] = "mutated"
	if a.Value(0) != "p" {
		t.Error("Alphabet() exposed internal storage")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("first", "last", "age", "race")
	if s.Degree() != 4 {
		t.Fatalf("Degree = %d, want 4", s.Degree())
	}
	if got := s.ColumnIndex("age"); got != 2 {
		t.Errorf("ColumnIndex(age) = %d, want 2", got)
	}
	if got := s.ColumnIndex("zip"); got != -1 {
		t.Errorf("ColumnIndex(zip) = %d, want -1", got)
	}
	names := s.Names()
	if strings.Join(names, ",") != "first,last,age,race" {
		t.Errorf("Names = %v", names)
	}
}

// hospitalTable builds the paper's §1 example relation.
func hospitalTable(t *testing.T) *Table {
	t.Helper()
	tab := NewTable(NewSchema("first", "last", "age", "race"))
	rows := [][]string{
		{"Harry", "Stone", "34", "Afr-Am"},
		{"John", "Reyser", "36", "Cauc"},
		{"Beatrice", "Stone", "47", "Afr-Am"},
		{"John", "Ramos", "22", "Hisp"},
	}
	for _, r := range rows {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatalf("AppendStrings: %v", err)
		}
	}
	return tab
}

func TestTableBasics(t *testing.T) {
	tab := hospitalTable(t)
	if tab.Len() != 4 || tab.Degree() != 4 {
		t.Fatalf("Len/Degree = %d/%d, want 4/4", tab.Len(), tab.Degree())
	}
	got := tab.Strings(2)
	want := []string{"Beatrice", "Stone", "47", "Afr-Am"}
	for j := range want {
		if got[j] != want[j] {
			t.Errorf("Strings(2)[%d] = %q, want %q", j, got[j], want[j])
		}
	}
	if tab.TotalStars() != 0 {
		t.Errorf("fresh table has %d stars", tab.TotalStars())
	}
}

func TestAppendDegreeMismatch(t *testing.T) {
	tab := NewTable(NewSchema("a", "b"))
	if err := tab.AppendStrings("only-one"); err == nil {
		t.Error("AppendStrings accepted wrong arity")
	}
	if err := tab.AppendRow(Row{1, 2, 3}); err == nil {
		t.Error("AppendRow accepted wrong arity")
	}
}

func TestStarsRoundTrip(t *testing.T) {
	tab := NewTable(NewSchema("a", "b"))
	if err := tab.AppendStrings("*", "x"); err != nil {
		t.Fatalf("AppendStrings: %v", err)
	}
	if tab.Row(0)[0] != Star {
		t.Errorf("star cell interned as %d, want Star", tab.Row(0)[0])
	}
	if tab.Row(0).Stars() != 1 {
		t.Errorf("Stars = %d, want 1", tab.Row(0).Stars())
	}
	if tab.TotalStars() != 1 {
		t.Errorf("TotalStars = %d, want 1", tab.TotalStars())
	}
}

func TestRowEqualAndClone(t *testing.T) {
	r := Row{1, Star, 3}
	c := r.Clone()
	if !r.Equal(c) {
		t.Error("clone not Equal to original")
	}
	c[0] = 9
	if r[0] != 1 {
		t.Error("Clone aliases original storage")
	}
	if r.Equal(c) {
		t.Error("Equal ignored a differing entry")
	}
	if r.Equal(Row{1, Star}) {
		t.Error("Equal ignored differing lengths")
	}
}

func TestCloneTableDeep(t *testing.T) {
	tab := hospitalTable(t)
	c := tab.Clone()
	c.Row(0)[0] = Star
	if tab.Row(0)[0] == Star {
		t.Error("Clone aliases row storage")
	}
	if c.Schema() != tab.Schema() {
		t.Error("Clone should share the schema")
	}
}

func TestGroupSizesAndKAnonymity(t *testing.T) {
	tab := MustFromVectors([][]int{
		{1, 2}, {1, 2}, {3, 4}, {3, 4}, {3, 4},
	})
	sizes := tab.GroupSizes()
	want := []int{2, 2, 3, 3, 3}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("GroupSizes[%d] = %d, want %d", i, sizes[i], want[i])
		}
	}
	if !tab.IsKAnonymous(2) {
		t.Error("table should be 2-anonymous")
	}
	if tab.IsKAnonymous(3) {
		t.Error("table should not be 3-anonymous (one group has size 2)")
	}
	if !tab.IsKAnonymous(0) {
		t.Error("every table is 0-anonymous")
	}
}

func TestSignatureDistinguishesStarFromValue(t *testing.T) {
	tab := NewTable(NewSchema("a"))
	if err := tab.AppendStrings("*"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendStrings("x"); err != nil {
		t.Fatal(err)
	}
	if tab.Signature(0) == tab.Signature(1) {
		t.Error("star row and value row share a signature")
	}
}

func TestSubTable(t *testing.T) {
	tab := hospitalTable(t)
	sub := tab.SubTable([]int{3, 1})
	if sub.Len() != 2 {
		t.Fatalf("SubTable Len = %d, want 2", sub.Len())
	}
	if sub.Strings(0)[1] != "Ramos" || sub.Strings(1)[1] != "Reyser" {
		t.Errorf("SubTable rows wrong: %v %v", sub.Strings(0), sub.Strings(1))
	}
	sub.Row(0)[0] = Star
	if tab.Row(3)[0] == Star {
		t.Error("SubTable aliases parent rows")
	}
}

func TestSortedIndex(t *testing.T) {
	tab := MustFromVectors([][]int{
		{2, 0}, {1, 1}, {1, 0}, {2, 0},
	})
	idx := tab.SortedIndex()
	// Symbol codes are interned in first-seen order: value 2 at column
	// a0 interned first (code 0), then 1 (code 1). So rows with
	// original value 2 sort first.
	for p := 1; p < len(idx); p++ {
		a, b := tab.Row(idx[p-1]), tab.Row(idx[p])
		for j := range a {
			if a[j] < b[j] {
				break
			}
			if a[j] > b[j] {
				t.Fatalf("SortedIndex out of order at position %d", p)
			}
		}
	}
	// Stability: equal rows keep original relative order.
	posOf := map[int]int{}
	for p, i := range idx {
		posOf[i] = p
	}
	if posOf[0] > posOf[3] {
		t.Error("SortedIndex is not stable for duplicate rows")
	}
}

func TestStringRendering(t *testing.T) {
	tab := hospitalTable(t)
	s := tab.String()
	if !strings.Contains(s, "first") || !strings.Contains(s, "Beatrice") {
		t.Errorf("String() missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("String() has %d lines, want 5 (header + 4 rows)", len(lines))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := hospitalTable(t)
	// Suppress an entry to check stars survive the round trip.
	tab.Row(0)[0] = Star
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != tab.Len() || back.Degree() != tab.Degree() {
		t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
			back.Len(), back.Degree(), tab.Len(), tab.Degree())
	}
	for i := 0; i < tab.Len(); i++ {
		a, b := tab.Strings(i), back.Strings(i)
		for j := range a {
			if a[j] != b[j] {
				t.Errorf("row %d col %d: %q vs %q", i, j, a[j], b[j])
			}
		}
	}
	if back.Row(0)[0] != Star {
		t.Error("star did not survive CSV round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty input", ""},
		{"ragged row", "a,b\n1\n"},
		{"bad quoting", "a,b\n\"unterminated,2\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadCSV(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestFromVectors(t *testing.T) {
	tab := MustFromVectors([][]int{{0, 5}, {0, 7}})
	if tab.Len() != 2 || tab.Degree() != 2 {
		t.Fatalf("shape %dx%d", tab.Len(), tab.Degree())
	}
	if tab.Strings(1)[1] != "7" {
		t.Errorf("value = %q, want 7", tab.Strings(1)[1])
	}
	if _, err := FromVectors([][]int{{1, 2}, {3}}); err == nil {
		t.Error("FromVectors accepted ragged input")
	}
	if _, err := FromVectors(nil); err == nil {
		t.Error("FromVectors accepted empty input")
	}
}

func TestFromBitstrings(t *testing.T) {
	tab := MustFromBitstrings("1010", "1110", "0110")
	if tab.Len() != 3 || tab.Degree() != 4 {
		t.Fatalf("shape %dx%d", tab.Len(), tab.Degree())
	}
	if _, err := FromBitstrings("10", "1"); err == nil {
		t.Error("accepted ragged bitstrings")
	}
	if _, err := FromBitstrings("1a"); err == nil {
		t.Error("accepted non-binary character")
	}
	if _, err := FromBitstrings(); err == nil {
		t.Error("accepted empty input")
	}
}

func TestUnicodeAndEmptyValues(t *testing.T) {
	tab := NewTable(NewSchema("名前", "city"))
	rows := [][]string{
		{"山田", "東京"},
		{"", "東京"}, // empty string is a legitimate value, distinct from "*"
		{"山田", "東京"},
		{"", "東京"},
	}
	for _, r := range rows {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatal(err)
		}
	}
	if !tab.IsKAnonymous(2) {
		t.Error("duplicated unicode rows should be 2-anonymous")
	}
	if tab.Signature(0) == tab.Signature(1) {
		t.Error("empty string collides with a non-empty value")
	}
	if got := tab.Strings(1)[0]; got != "" {
		t.Errorf("empty value round-trips as %q", got)
	}
	// Empty string must also be distinct from the star sentinel.
	star := NewTable(NewSchema("a"))
	if err := star.AppendStrings("*"); err != nil {
		t.Fatal(err)
	}
	if err := star.AppendStrings(""); err != nil {
		t.Fatal(err)
	}
	if star.Signature(0) == star.Signature(1) {
		t.Error("empty string collides with the star sentinel")
	}
}

func TestWideTable(t *testing.T) {
	const m = 300
	names := make([]string, m)
	vals := make([]string, m)
	for j := range names {
		names[j] = "c" + string(rune('0'+j%10)) + string(rune('a'+j%26)) + string(rune('A'+(j/26)%26))
	}
	// Ensure names unique.
	seen := map[string]bool{}
	for j, n := range names {
		for seen[n] {
			n += "x"
		}
		seen[n] = true
		names[j] = n
		vals[j] = "v"
	}
	tab := NewTable(NewSchema(names...))
	if err := tab.AppendStrings(vals...); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendStrings(vals...); err != nil {
		t.Fatal(err)
	}
	if !tab.IsKAnonymous(2) {
		t.Error("identical wide rows should be 2-anonymous")
	}
	if tab.Degree() != m {
		t.Errorf("Degree = %d", tab.Degree())
	}
}

// TestCSVRowsLoneEmptyField pins the encoding/csv edge the fuzz target
// found: a record whose only field is "" must be written as a quoted
// `""`, because a bare empty line is skipped on read and the row would
// silently vanish from the round trip.
func TestCSVRowsLoneEmptyField(t *testing.T) {
	header := []string{"h"}
	rows := [][]string{{""}, {"x"}, {""}}
	var buf bytes.Buffer
	if err := WriteCSVRows(&buf, header, rows); err != nil {
		t.Fatal(err)
	}
	h2, r2, err := ReadCSVRows(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("round trip failed to parse %q: %v", buf.String(), err)
	}
	if len(h2) != 1 || len(r2) != 3 {
		t.Fatalf("round trip shape %dx%d, want 3x1 (%q)", len(r2), len(h2), buf.String())
	}
	for i, want := range rows {
		if r2[i][0] != want[0] {
			t.Errorf("row %d = %q, want %q", i, r2[i][0], want[0])
		}
	}

	// The Table writer takes the same path.
	tab := NewTable(NewSchema("h"))
	for _, r := range rows {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatal(err)
		}
	}
	buf.Reset()
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	t2, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if t2.Len() != 3 {
		t.Errorf("table round trip kept %d rows, want 3", t2.Len())
	}
}
