package reduction

import (
	"math/rand"
	"testing"

	"kanon/internal/attribute"
	"kanon/internal/core"
	"kanon/internal/exact"
	"kanon/internal/hypergraph"
	"kanon/internal/relation"
)

// matchedGraph returns a 3-uniform graph on 9 vertices with a planted
// perfect matching plus distractor edges.
func matchedGraph() *hypergraph.Graph {
	g := hypergraph.New(9, 3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(3, 4, 5)
	g.MustAddEdge(6, 7, 8)
	g.MustAddEdge(0, 3, 6)
	g.MustAddEdge(1, 4, 7)
	return g
}

// matchlessGraph returns a 3-uniform graph on 6 vertices with edges all
// sharing vertex 0, so no perfect matching exists.
func matchlessGraph() *hypergraph.Graph {
	g := hypergraph.New(6, 3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(0, 3, 4)
	g.MustAddEdge(0, 4, 5)
	g.MustAddEdge(0, 2, 5)
	return g
}

func TestEntryInstanceShape(t *testing.T) {
	g := matchedGraph()
	inst, err := FromMatchingEntry(g)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Table.Len() != 9 || inst.Table.Degree() != 5 {
		t.Fatalf("table shape %dx%d, want 9x5", inst.Table.Len(), inst.Table.Degree())
	}
	if inst.Threshold != 9*4 {
		t.Errorf("threshold %d, want 36", inst.Threshold)
	}
	// Row i has 0 exactly on columns of edges containing vertex i, and
	// a private symbol elsewhere — so two rows agree on a column iff
	// both vertices are on that edge.
	for i := 0; i < 9; i++ {
		for j := 0; j < 5; j++ {
			onEdge := false
			for _, v := range g.Edges[j] {
				if v == i {
					onEdge = true
				}
			}
			val := inst.Table.Strings(i)[j]
			if onEdge && val != "0" {
				t.Errorf("row %d col %d = %q, want 0", i, j, val)
			}
			if !onEdge && val == "0" {
				t.Errorf("row %d col %d = 0 but vertex not on edge", i, j)
			}
		}
	}
	// Private fillers: distinct rows never share a non-zero value.
	for j := 0; j < 5; j++ {
		seen := map[string]int{}
		for i := 0; i < 9; i++ {
			v := inst.Table.Strings(i)[j]
			if v == "0" {
				continue
			}
			if prev, ok := seen[v]; ok {
				t.Errorf("col %d: rows %d and %d share filler %q", j, prev, i, v)
			}
			seen[v] = i
		}
	}
}

func TestEntryReductionErrors(t *testing.T) {
	empty := hypergraph.New(5, 3)
	if _, err := FromMatchingEntry(empty); err == nil {
		t.Error("accepted edgeless graph")
	}
	zero := hypergraph.New(0, 3)
	if _, err := FromMatchingEntry(zero); err == nil {
		t.Error("accepted vertexless graph")
	}
}

func TestSuppressorFromMatching(t *testing.T) {
	g := matchedGraph()
	inst, err := FromMatchingEntry(g)
	if err != nil {
		t.Fatal(err)
	}
	matching := []int{0, 1, 2}
	sup, err := inst.SuppressorFromMatching(matching)
	if err != nil {
		t.Fatal(err)
	}
	if sup.Stars() != inst.Threshold {
		t.Errorf("stars %d, want threshold %d", sup.Stars(), inst.Threshold)
	}
	anon := sup.Apply(inst.Table)
	if !anon.IsKAnonymous(3) {
		t.Error("matching-derived suppressor not 3-anonymous")
	}
	// Non-matching input rejected.
	if _, err := inst.SuppressorFromMatching([]int{0, 3}); err == nil {
		t.Error("accepted a non-matching")
	}
}

// TestTheorem31IffHolds is experiment E4 in miniature: over random
// graphs, OPT(table) ≤ n(m−1) iff the graph has a perfect matching.
func TestTheorem31IffHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	checked, withMatching := 0, 0
	for trial := 0; trial < 30; trial++ {
		n := 6 + 3*rng.Intn(2) // 6 or 9 vertices (DP-friendly)
		m := 3 + rng.Intn(6)
		var g *hypergraph.Graph
		if trial%2 == 0 {
			g = hypergraph.RandomWithPlantedMatching(rng, n, 3, m)
		} else {
			g = hypergraph.RandomSimple(rng, n, 3, m)
		}
		if g.M() == 0 {
			continue
		}
		inst, err := FromMatchingEntry(g)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.OPT(inst.Table, 3)
		if err != nil {
			t.Fatal(err)
		}
		has := g.HasPerfectMatching()
		if has {
			withMatching++
			if opt != inst.Threshold {
				t.Errorf("trial %d: matching exists but OPT %d != threshold %d", trial, opt, inst.Threshold)
			}
		} else if opt <= inst.Threshold {
			t.Errorf("trial %d: no matching but OPT %d ≤ threshold %d", trial, opt, inst.Threshold)
		}
		checked++
	}
	if checked < 20 || withMatching < 5 {
		t.Fatalf("corpus too thin: %d checked, %d with matching", checked, withMatching)
	}
}

// TestTheorem31RoundTrip: matching → suppressor → partition → matching.
func TestTheorem31RoundTrip(t *testing.T) {
	g := matchedGraph()
	inst, err := FromMatchingEntry(g)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := inst.SuppressorFromMatching([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	p := core.FromAnonymized(sup.Apply(inst.Table))
	back, err := inst.MatchingFromPartition(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0] != 0 || back[1] != 1 || back[2] != 2 {
		t.Errorf("round trip gave %v, want [0 1 2]", back)
	}
}

// TestMatchingFromOptimalPartition extracts a matching from the exact
// solver's partition, the full reverse direction of the proof.
func TestMatchingFromOptimalPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := hypergraph.RandomWithPlantedMatching(rng, 9, 3, 7)
	inst, err := FromMatchingEntry(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := exact.Solve(inst.Table, 3, exact.Stars)
	if err != nil {
		t.Fatal(err)
	}
	matching, err := inst.MatchingFromPartition(r.Partition)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsPerfectMatching(matching) {
		t.Errorf("extracted %v is not a perfect matching", matching)
	}
}

func TestMatchingFromPartitionRejectsExpensive(t *testing.T) {
	g := matchlessGraph()
	inst, err := FromMatchingEntry(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := exact.Solve(inst.Table, 3, exact.Stars)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.MatchingFromPartition(r.Partition); err == nil {
		t.Error("extracted a matching from a matchless instance")
	}
}

func TestAttributeInstanceShape(t *testing.T) {
	g := matchedGraph()
	inst, err := FromMatchingAttribute(g)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Table.Len() != 9 || inst.Table.Degree() != 5 {
		t.Fatalf("shape %dx%d, want 9x5", inst.Table.Len(), inst.Table.Degree())
	}
	if inst.Threshold != 5-3 {
		t.Errorf("threshold %d, want 2", inst.Threshold)
	}
	// Boolean alphabet only.
	for j := 0; j < inst.Table.Degree(); j++ {
		if sz := inst.Table.Schema().Attribute(j).AlphabetSize(); sz > 2 {
			t.Errorf("col %d alphabet %d, want ≤ 2", j, sz)
		}
	}
	// Exactly k ones per column.
	for j := 0; j < inst.Table.Degree(); j++ {
		ones := 0
		for i := 0; i < inst.Table.Len(); i++ {
			if inst.Table.Strings(i)[j] == "1" {
				ones++
			}
		}
		if ones != 3 {
			t.Errorf("col %d has %d ones, want 3", j, ones)
		}
	}
}

func TestAttributeReductionErrors(t *testing.T) {
	empty := hypergraph.New(6, 3)
	if _, err := FromMatchingAttribute(empty); err == nil {
		t.Error("accepted edgeless graph")
	}
	odd := hypergraph.New(7, 3)
	odd.MustAddEdge(0, 1, 2)
	if _, err := FromMatchingAttribute(odd); err == nil {
		t.Error("accepted n not divisible by k")
	}
}

// TestTheorem32IffHolds is experiment E5 in miniature: minimum columns
// suppressed = m − n/k iff a perfect matching exists (and > otherwise).
func TestTheorem32IffHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	checked, withMatching := 0, 0
	for trial := 0; trial < 30; trial++ {
		k := 3 + rng.Intn(2) // 3 or 4
		blocks := 2 + rng.Intn(2)
		n := k * blocks
		m := blocks + 1 + rng.Intn(7)
		var g *hypergraph.Graph
		if trial%2 == 0 {
			g = hypergraph.RandomWithPlantedMatching(rng, n, k, m)
		} else {
			g = hypergraph.RandomSimple(rng, n, k, m)
		}
		if g.M() == 0 || g.M() > attribute.MaxExactColumns {
			continue
		}
		inst, err := FromMatchingAttribute(g)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := attribute.Exact(inst.Table, k)
		if err != nil {
			t.Fatal(err)
		}
		has := g.HasPerfectMatching()
		if has {
			withMatching++
			if len(ex.Dropped) != inst.Threshold {
				t.Errorf("trial %d: matching exists but min drop %d != threshold %d", trial, len(ex.Dropped), inst.Threshold)
			}
		} else if len(ex.Dropped) <= inst.Threshold {
			t.Errorf("trial %d: no matching but min drop %d ≤ threshold %d", trial, len(ex.Dropped), inst.Threshold)
		}
		checked++
	}
	if checked < 20 || withMatching < 5 {
		t.Fatalf("corpus too thin: %d checked, %d with matching", checked, withMatching)
	}
}

// TestTheorem32RoundTrip: matching → attribute set → matching, plus
// feasibility of the attribute set.
func TestTheorem32RoundTrip(t *testing.T) {
	g := matchedGraph()
	inst, err := FromMatchingAttribute(g)
	if err != nil {
		t.Fatal(err)
	}
	drop, err := inst.AttributesFromMatching([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(drop) != inst.Threshold {
		t.Fatalf("dropped %v, want %d columns", drop, inst.Threshold)
	}
	if !attribute.IsKAnonymousProjection(inst.Table, drop, 3) {
		t.Error("matching-derived attribute set does not k-anonymize")
	}
	back, err := inst.MatchingFromAttributes(drop)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsPerfectMatching(back) {
		t.Errorf("round trip gave %v", back)
	}
	// Error paths.
	if _, err := inst.AttributesFromMatching([]int{0, 3}); err == nil {
		t.Error("accepted non-matching")
	}
	if _, err := inst.MatchingFromAttributes([]int{0, 1, 2, 3}); err == nil {
		t.Error("accepted over-threshold drop set")
	}
	if _, err := inst.MatchingFromAttributes([]int{99}); err == nil {
		t.Error("accepted out-of-range column")
	}
}

func TestMatchingFromAttributesRejectsNonMatching(t *testing.T) {
	g := matchedGraph()
	inst, err := FromMatchingAttribute(g)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping columns 0,1 leaves {2,3,4}: too many columns (3 > n/k
	// would be fine) but overlapping edges → not a matching.
	if _, err := inst.MatchingFromAttributes([]int{0, 1}); err == nil {
		t.Error("accepted surviving set that is not a matching")
	}
}

// printedVariantTable builds the construction exactly as printed in the
// supplied paper text — v_i[j] = 0 if u_i ∈ e_j, *1* otherwise — which
// the repair note in this package argues cannot be what the authors
// intended.
func printedVariantTable(g *hypergraph.Graph) *relation.Table {
	vecs := make([][]int, g.N)
	for i := range vecs {
		row := make([]int, g.M())
		for j := range row {
			row[j] = 1
		}
		vecs[i] = row
	}
	for ej, e := range g.Edges {
		for _, v := range e {
			vecs[v][ej] = 0
		}
	}
	return relation.MustFromVectors(vecs)
}

// TestPrintedVariantBreaksIff documents the OCR repair: under the
// printed "1 otherwise" construction, Theorem 3.1's iff fails on
// concrete instances (rows collide on shared 1-entries, so cheap
// anonymizations exist without a perfect matching), while the repaired
// private-filler construction used by FromMatchingEntry satisfies the
// iff on the same corpus (TestTheorem31IffHolds).
func TestPrintedVariantBreaksIff(t *testing.T) {
	violations := 0
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := hypergraph.RandomSimple(rng, 9, 3, 6)
		if g.M() == 0 {
			continue
		}
		tab := printedVariantTable(g)
		opt, err := exact.OPT(tab, 3)
		if err != nil {
			t.Fatal(err)
		}
		threshold := g.N * (g.M() - 1)
		if (opt <= threshold) != g.HasPerfectMatching() {
			violations++
		}
	}
	if violations == 0 {
		t.Error("printed construction satisfied the iff on all 30 instances; the repair note would be unjustified")
	}
	t.Logf("printed-variant iff violations: %d/30", violations)
}
