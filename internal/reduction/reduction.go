// Package reduction implements the paper's §3 NP-hardness constructions
// as executable objects: the map from k-Dimensional Perfect Matching to
// optimal k-anonymity by entry suppression (Theorem 3.1) and to optimal
// k-anonymity by attribute suppression (Theorem 3.2), together with
// witness extraction in both directions. Experiments E4/E5 run these on
// instance corpora with exact solvers on both sides and check the iff.
//
// A note on the Theorem 3.1 construction. The supplied paper text prints
// v_i[j] := 0 if u_i ∈ e_j, "1 otherwise", but its own proof requires
// that two rows can agree only on 0-entries ("any two v_i vectors can
// match only in coordinates that are 0") and the theorem statement
// requires an alphabet as large as the table (Σ = {0, 1, …, n}). Both
// are satisfied by the repaired construction used here:
//
//	v_i[j] = 0 if u_i ∈ e_j, and v_i[j] = i+1 otherwise
//
// (each row carries a private filler symbol). TestTheorem31IffHolds
// fails if the printed "1 otherwise" variant is substituted, which is
// how the repair was validated.
package reduction

import (
	"fmt"

	"kanon/internal/core"
	"kanon/internal/hypergraph"
	"kanon/internal/relation"
)

// EntryInstance is the output of the Theorem 3.1 reduction: a table
// whose optimal k-anonymization cost reveals whether the source
// hypergraph has a perfect matching.
type EntryInstance struct {
	Graph *hypergraph.Graph
	Table *relation.Table
	K     int
	// Threshold is n(m−1): OPT(Table) ≤ Threshold iff Graph has a
	// perfect matching (and then OPT = Threshold exactly, provided the
	// graph has at least one edge per vertex).
	Threshold int
}

// FromMatchingEntry builds the Theorem 3.1 instance from a k-uniform
// hypergraph. The resulting table has one row per vertex and one column
// per hyperedge over the alphabet {0, 1, …, n}.
func FromMatchingEntry(g *hypergraph.Graph) (*EntryInstance, error) {
	if g.M() == 0 {
		return nil, fmt.Errorf("reduction: hypergraph has no edges")
	}
	if g.N == 0 {
		return nil, fmt.Errorf("reduction: hypergraph has no vertices")
	}
	onEdge := make([][]bool, g.N)
	for i := range onEdge {
		onEdge[i] = make([]bool, g.M())
	}
	for ej, e := range g.Edges {
		for _, v := range e {
			onEdge[v][ej] = true
		}
	}
	vecs := make([][]int, g.N)
	for i := 0; i < g.N; i++ {
		row := make([]int, g.M())
		for j := 0; j < g.M(); j++ {
			if onEdge[i][j] {
				row[j] = 0
			} else {
				row[j] = i + 1 // private filler symbol for row i
			}
		}
		vecs[i] = row
	}
	t, err := relation.FromVectors(vecs)
	if err != nil {
		return nil, fmt.Errorf("reduction: %w", err)
	}
	return &EntryInstance{
		Graph:     g,
		Table:     t,
		K:         g.K,
		Threshold: g.N * (g.M() - 1),
	}, nil
}

// SuppressorFromMatching converts a perfect matching (edge indices) of
// the source graph into a k-anonymizer of the reduced table with exactly
// Threshold stars: row i keeps only the column of its matching edge.
func (inst *EntryInstance) SuppressorFromMatching(matching []int) (*core.Suppressor, error) {
	if !inst.Graph.IsPerfectMatching(matching) {
		return nil, fmt.Errorf("reduction: not a perfect matching")
	}
	edgeOf := make([]int, inst.Graph.N)
	for i := range edgeOf {
		edgeOf[i] = -1
	}
	for _, ej := range matching {
		for _, v := range inst.Graph.Edges[ej] {
			edgeOf[v] = ej
		}
	}
	s := core.NewSuppressor(inst.Table.Len(), inst.Table.Degree())
	for i := 0; i < inst.Table.Len(); i++ {
		for j := 0; j < inst.Table.Degree(); j++ {
			if j != edgeOf[i] {
				s.Suppress(i, j)
			}
		}
	}
	return s, nil
}

// MatchingFromPartition extracts a perfect matching from a k-anonymity
// partition of the reduced table whose cost is at most Threshold,
// reversing the proof of Theorem 3.1: such a partition must leave each
// row exactly one unsuppressed coordinate, which names the matching edge
// covering that vertex. Returns an error if the partition costs more
// than Threshold (no matching can be concluded).
func (inst *EntryInstance) MatchingFromPartition(p *core.Partition) ([]int, error) {
	if err := p.Validate(inst.Table.Len(), inst.K, 0); err != nil {
		return nil, fmt.Errorf("reduction: %w", err)
	}
	if got := p.Cost(inst.Table); got > inst.Threshold {
		return nil, fmt.Errorf("reduction: partition cost %d exceeds threshold %d", got, inst.Threshold)
	}
	m := inst.Table.Degree()
	edgeSet := map[int]bool{}
	for _, g := range p.Groups {
		u := core.NonUniformColumns(inst.Table, g)
		kept := m - u
		if kept != 1 {
			// Cost ≤ Threshold forces exactly one kept column per row
			// (see the proof); kept = 0 can only appear if the cost
			// accounting is broken.
			return nil, fmt.Errorf("reduction: group %v keeps %d columns, want 1", g, kept)
		}
		// Find the kept (uniform) column; it must be 0-valued, i.e. an
		// edge containing every vertex of the group.
		for j := 0; j < m; j++ {
			uniform := true
			first := inst.Table.Row(g[0])[j]
			for _, i := range g[1:] {
				if inst.Table.Row(i)[j] != first {
					uniform = false
					break
				}
			}
			if uniform {
				edgeSet[j] = true
				break
			}
		}
	}
	matching := make([]int, 0, len(edgeSet))
	for ej := range edgeSet {
		matching = append(matching, ej)
	}
	sortInts(matching)
	if !inst.Graph.IsPerfectMatching(matching) {
		return nil, fmt.Errorf("reduction: extracted edge set %v is not a perfect matching", matching)
	}
	return matching, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// AttributeInstance is the output of the Theorem 3.2 reduction: a
// boolean table (one row per vertex, one column per edge) whose minimum
// attribute-suppression k-anonymization reveals whether the source
// graph has a perfect matching.
type AttributeInstance struct {
	Graph *hypergraph.Graph
	Table *relation.Table
	K     int
	// Threshold is m − n/k: the graph has a perfect matching iff the
	// table can be k-anonymized by suppressing exactly Threshold
	// attributes (and no fewer suffice).
	Threshold int
}

// FromMatchingAttribute builds the Theorem 3.2 instance: v_i[j] = b1 if
// u_i ∈ e_j else b0, over the boolean alphabet {b0, b1} = {0, 1}.
func FromMatchingAttribute(g *hypergraph.Graph) (*AttributeInstance, error) {
	if g.M() == 0 {
		return nil, fmt.Errorf("reduction: hypergraph has no edges")
	}
	if g.N%g.K != 0 {
		return nil, fmt.Errorf("reduction: n = %d not divisible by k = %d; threshold m − n/k undefined", g.N, g.K)
	}
	vecs := make([][]int, g.N)
	for i := range vecs {
		vecs[i] = make([]int, g.M())
	}
	for ej, e := range g.Edges {
		for _, v := range e {
			vecs[v][ej] = 1
		}
	}
	t, err := relation.FromVectors(vecs)
	if err != nil {
		return nil, fmt.Errorf("reduction: %w", err)
	}
	return &AttributeInstance{
		Graph:     g,
		Table:     t,
		K:         g.K,
		Threshold: g.M() - g.N/g.K,
	}, nil
}

// AttributesFromMatching converts a perfect matching into the set of
// column indices to suppress: every column whose edge is not in the
// matching. The result has exactly Threshold columns.
func (inst *AttributeInstance) AttributesFromMatching(matching []int) ([]int, error) {
	if !inst.Graph.IsPerfectMatching(matching) {
		return nil, fmt.Errorf("reduction: not a perfect matching")
	}
	inMatching := make([]bool, inst.Graph.M())
	for _, ej := range matching {
		inMatching[ej] = true
	}
	var drop []int
	for j := 0; j < inst.Graph.M(); j++ {
		if !inMatching[j] {
			drop = append(drop, j)
		}
	}
	return drop, nil
}

// MatchingFromAttributes extracts a perfect matching from a set of
// suppressed columns that k-anonymizes the table with |drop| ≤
// Threshold: the surviving columns are pairwise disjoint edges covering
// all vertices.
func (inst *AttributeInstance) MatchingFromAttributes(drop []int) ([]int, error) {
	if len(drop) > inst.Threshold {
		return nil, fmt.Errorf("reduction: %d attributes suppressed, more than threshold %d", len(drop), inst.Threshold)
	}
	dropped := make([]bool, inst.Graph.M())
	for _, j := range drop {
		if j < 0 || j >= inst.Graph.M() {
			return nil, fmt.Errorf("reduction: column %d out of range", j)
		}
		dropped[j] = true
	}
	var matching []int
	for j := 0; j < inst.Graph.M(); j++ {
		if !dropped[j] {
			matching = append(matching, j)
		}
	}
	if !inst.Graph.IsPerfectMatching(matching) {
		return nil, fmt.Errorf("reduction: surviving columns %v are not a perfect matching", matching)
	}
	return matching, nil
}
