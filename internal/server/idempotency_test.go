package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"kanon/internal/store"
)

// postKeyed submits a CSV body with an Idempotency-Key header.
func postKeyed(t *testing.T, url, query, key, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs?"+query, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

// TestSubmitIdempotentReplay: a duplicate submission with the same key
// replays the original acceptance — same job ID, Idempotency-Replay
// header, Location — and admits no second job.
func TestSubmitIdempotentReplay(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Store: st})

	resp, b := postKeyed(t, ts.URL, "k=2", "key-dup-1", sampleCSV)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("Idempotency-Key"); got != "key-dup-1" {
		t.Errorf("acceptance did not echo the key: %q", got)
	}
	if resp.Header.Get("Idempotency-Replay") != "" {
		t.Error("fresh acceptance marked as replay")
	}
	var first Status
	if err := json.Unmarshal(b, &first); err != nil {
		t.Fatal(err)
	}

	resp2, b2 := postKeyed(t, ts.URL, "k=2", "key-dup-1", sampleCSV)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate submit: %d %s", resp2.StatusCode, b2)
	}
	if resp2.Header.Get("Idempotency-Replay") != "true" {
		t.Error("duplicate acceptance missing Idempotency-Replay: true")
	}
	if loc := resp2.Header.Get("Location"); loc != "/v1/jobs/"+first.ID {
		t.Errorf("replay Location = %q", loc)
	}
	var second Status
	if err := json.Unmarshal(b2, &second); err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("duplicate admitted a twin: %s then %s", first.ID, second.ID)
	}

	pollUntil(t, ts, first.ID, 10*time.Second, func(s Status) bool { return s.State.Terminal() })
	manifests, _, err := st.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(manifests) != 1 {
		t.Fatalf("%d job directories exist, want exactly 1", len(manifests))
	}
	if manifests[0].IdempotencyKey != "key-dup-1" {
		t.Errorf("manifest lost the key: %+v", manifests[0])
	}

	// Replay still answers after the job finished.
	resp3, b3 := postKeyed(t, ts.URL, "k=2", "key-dup-1", sampleCSV)
	if resp3.StatusCode != http.StatusAccepted || resp3.Header.Get("Idempotency-Replay") != "true" {
		t.Fatalf("post-completion replay: %d %s", resp3.StatusCode, b3)
	}
}

// TestSubmitIdempotentWithoutStore: the in-memory key table answers
// replays even with no persistence configured.
func TestSubmitIdempotentWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, b := postKeyed(t, ts.URL, "k=2", "mem-key", sampleCSV)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var first Status
	if err := json.Unmarshal(b, &first); err != nil {
		t.Fatal(err)
	}
	resp2, b2 := postKeyed(t, ts.URL, "k=2", "mem-key", sampleCSV)
	var second Status
	if err := json.Unmarshal(b2, &second); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusAccepted || second.ID != first.ID {
		t.Fatalf("replay: %d id %s, want 202 with %s", resp2.StatusCode, second.ID, first.ID)
	}
}

// TestSubmitRejectsBadIdempotencyKey: a malformed key is a client
// error before the body is even parsed.
func TestSubmitRejectsBadIdempotencyKey(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, _ := postKeyed(t, ts.URL, "k=2", "bad key with spaces", sampleCSV)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestIdempotencySurvivesRestart: the key rides in the manifest, so a
// new process over the same store still replays it.
func TestIdempotencySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Store: st})
	resp, b := postKeyed(t, ts.URL, "k=2", "key-restart", sampleCSV)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var first Status
	if err := json.Unmarshal(b, &first); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, ts, first.ID, 10*time.Second, func(s Status) bool { return s.State.Terminal() })

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Workers: 2, Store: st2})
	resp2, b2 := postKeyed(t, ts2.URL, "k=2", "key-restart", sampleCSV)
	if resp2.StatusCode != http.StatusAccepted || resp2.Header.Get("Idempotency-Replay") != "true" {
		t.Fatalf("replay after restart: %d %s", resp2.StatusCode, b2)
	}
	var second Status
	if err := json.Unmarshal(b2, &second); err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("restart admitted a twin: %s then %s", first.ID, second.ID)
	}
}

// TestReplicaEndpoints: the replication surface serves the job
// inventory and whitelisted spool files, and rejects everything else.
func TestReplicaEndpoints(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Store: st})
	stj, resp := submit(t, ts, "k=2", sampleCSV)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	pollUntil(t, ts, stj.ID, 10*time.Second, func(s Status) bool { return s.State.Terminal() })

	lr, err := http.Get(ts.URL + "/v1/replica/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []store.ReplicaJob
	err = json.NewDecoder(lr.Body).Decode(&jobs)
	lr.Body.Close()
	if err != nil || lr.StatusCode != http.StatusOK {
		t.Fatalf("listing: %d, %v", lr.StatusCode, err)
	}
	if len(jobs) != 1 || jobs[0].Manifest == nil || jobs[0].Manifest.ID != stj.ID {
		t.Fatalf("listing = %+v", jobs)
	}
	hasRequest := false
	for _, f := range jobs[0].Files {
		if f.Name == "request.csv" && f.Size > 0 {
			hasRequest = true
		}
	}
	if !hasRequest {
		t.Fatalf("listing lacks request.csv: %+v", jobs[0].Files)
	}

	fr, err := http.Get(ts.URL + "/v1/replica/jobs/" + stj.ID + "/file?name=request.csv")
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := io.ReadAll(fr.Body)
	fr.Body.Close()
	if fr.StatusCode != http.StatusOK || string(fb) != sampleCSV {
		t.Fatalf("file fetch: %d %q", fr.StatusCode, fb)
	}

	for path, want := range map[string]int{
		"/v1/replica/jobs/" + stj.ID + "/file?name=manifest.json": http.StatusBadRequest,
		"/v1/replica/jobs/" + stj.ID + "/file?name=..%2Fescape":   http.StatusBadRequest,
		"/v1/replica/jobs/job-none/file?name=request.csv":         http.StatusNotFound,
	} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, r.StatusCode, want)
		}
	}
}

// TestReplicaEndpointsAbsentWithoutStore: an in-memory server has
// nothing to replicate and the endpoints stay unregistered.
func TestReplicaEndpointsAbsentWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	r, err := http.Get(ts.URL + "/v1/replica/jobs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", r.StatusCode)
	}
}
