package server

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kanon"
	"kanon/internal/dataset"
	"kanon/internal/store"
)

// openStoreAt opens an independent store handle on dir — each cluster
// manager gets its own, the way separate kanond processes would.
func openStoreAt(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newClusterManager builds a cluster-mode manager on dir under node.
func newClusterManager(t *testing.T, dir, node string, mut func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		Store:      openStoreAt(t, dir),
		NodeID:     node,
		Workers:    2,
		JobTimeout: time.Minute,
		ResultTTL:  time.Minute,
		Log:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	if mut != nil {
		mut(&cfg)
	}
	return newTestManager(t, cfg)
}

// waitManifestState polls the store until the job's manifest reaches
// the wanted state.
func waitManifestState(t *testing.T, st *store.Store, id, state string) *store.Manifest {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		if m, err := st.ReadManifest(id); err == nil {
			if m.State == state {
				return m
			}
			last = m.State
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q (last seen %q)", id, state, last)
	return nil
}

// smallInstance is a quick deterministic workload with a known direct
// (single-node CLI) release to compare against.
func smallInstance(t *testing.T, seed int64) (header []string, rows [][]string, direct *kanon.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	header, rows = renderTable(dataset.Census(rng, 60, 4))
	direct, err := kanon.Anonymize(header, rows, 3, &kanon.Options{Algorithm: kanon.AlgoGreedyBall})
	if err != nil {
		t.Fatal(err)
	}
	return header, rows, direct
}

// slowInstance is a workload big enough (~seconds) that a test can
// reliably act on the job while it is still running.
func slowInstance(t *testing.T) (header []string, rows [][]string) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	header, rows = renderTable(dataset.Census(rng, 2000, 6))
	return header, rows
}

// assertSameRelease fails unless the served CSV matches the direct run
// cell for cell — the cluster must not change a single byte.
func assertSameRelease(t *testing.T, header []string, rows [][]string, want *kanon.Result) {
	t.Helper()
	if len(rows) != len(want.Rows) {
		t.Fatalf("release has %d rows, want %d", len(rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if rows[i][j] != want.Rows[i][j] {
				t.Fatalf("cell (%d,%d): %q, want %q", i, j, rows[i][j], want.Rows[i][j])
			}
		}
	}
	for i := range want.Header {
		if header[i] != want.Header[i] {
			t.Fatalf("header[%d]: %q, want %q", i, header[i], want.Header[i])
		}
	}
}

// TestClusterForeignClaimAndReadThrough: two nodes share one data dir;
// a job submitted through one node's API is drained by the cluster, and
// BOTH nodes serve its status and byte-identical result afterwards —
// including the one that never touched it.
func TestClusterForeignClaimAndReadThrough(t *testing.T) {
	dir := t.TempDir()
	header, rows, direct := smallInstance(t, 61)
	probe := openStoreAt(t, dir)

	mA := newClusterManager(t, dir, "node-a", nil)
	mB := newClusterManager(t, dir, "node-b", nil)

	job, err := mA.Submit(header, rows, JobRequest{K: 3, Algorithm: kanon.AlgoGreedyBall})
	if err != nil {
		t.Fatal(err)
	}
	man := waitManifestState(t, probe, job.ID, store.StateSucceeded)
	if man.Cost == nil || *man.Cost != direct.Cost {
		t.Fatalf("manifest cost %v, want %d", man.Cost, direct.Cost)
	}

	for _, m := range []*Manager{mA, mB} {
		st, ok := m.StatusOf(job.ID)
		if !ok || st.State != StateSucceeded {
			t.Fatalf("StatusOf on %s: ok=%v state=%v", m.cfg.NodeID, ok, st.State)
		}
		if st.Node != "node-a" && st.Node != "node-b" {
			t.Fatalf("status node = %q", st.Node)
		}
		h, r, err := m.ResultBytes(job.ID)
		if err != nil {
			t.Fatalf("ResultBytes on %s: %v", m.cfg.NodeID, err)
		}
		assertSameRelease(t, h, r, direct)
	}
	claimed := mA.Snapshot().Counters["server.leases_claimed"] +
		mB.Snapshot().Counters["server.leases_claimed"]
	if claimed != 1 {
		t.Fatalf("leases_claimed across cluster = %d, want 1", claimed)
	}
}

// TestClusterForeignQueuedJobDrained: a queued manifest written by a
// node that no longer exists (no local submission, no poke) is found by
// the claim loop's ticker and run to the correct release.
func TestClusterForeignQueuedJobDrained(t *testing.T) {
	dir := t.TempDir()
	header, rows, direct := smallInstance(t, 62)
	probe := openStoreAt(t, dir)
	man := &store.Manifest{
		ID: "foreign-q", State: store.StateQueued, K: 3, Algo: "ball",
		Rows: len(rows), Cols: len(header), SubmittedAt: time.Now().UTC(),
	}
	if err := probe.CreateJob(man, header, rows); err != nil {
		t.Fatal(err)
	}

	m := newClusterManager(t, dir, "node-b", nil)
	waitManifestState(t, probe, "foreign-q", store.StateSucceeded)
	h, r, err := m.ResultBytes("foreign-q")
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelease(t, h, r, direct)
	if got := m.Snapshot().Counters["server.leases_stolen"]; got != 0 {
		t.Errorf("claiming a queued job counted as a steal (%d)", got)
	}
}

// TestClusterStealsExpiredLease: a job left running under a dead node's
// expired lease is stolen — fence bumped past the corpse's, the steal
// counted, and the release byte-identical to a direct run.
func TestClusterStealsExpiredLease(t *testing.T) {
	dir := t.TempDir()
	header, rows, direct := smallInstance(t, 63)
	probe := openStoreAt(t, dir)
	man := &store.Manifest{
		ID: "orphan-r", State: store.StateQueued, K: 3, Algo: "ball",
		Rows: len(rows), Cols: len(header), SubmittedAt: time.Now().UTC(),
	}
	if err := probe.CreateJob(man, header, rows); err != nil {
		t.Fatal(err)
	}
	// The dead node claimed it a minute ago and never renewed.
	if _, _, err := probe.ClaimJob("orphan-r", "dead-node", time.Second, time.Now().Add(-time.Minute)); err != nil {
		t.Fatal(err)
	}

	m := newClusterManager(t, dir, "node-b", nil)
	got := waitManifestState(t, probe, "orphan-r", store.StateSucceeded)
	if got.Fence != 2 {
		t.Errorf("fence after steal = %d, want 2", got.Fence)
	}
	if n := m.Snapshot().Counters["server.leases_stolen"]; n != 1 {
		t.Errorf("leases_stolen = %d, want 1", n)
	}
	h, r, err := m.ResultBytes("orphan-r")
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelease(t, h, r, direct)
}

// TestClusterCancelBeforeClaimHonored: a cancellation requested while a
// job sat under a dead node's lease is honored by whichever node steals
// it — the job lands canceled without being re-run.
func TestClusterCancelBeforeClaimHonored(t *testing.T) {
	dir := t.TempDir()
	header, rows, _ := smallInstance(t, 64)
	probe := openStoreAt(t, dir)
	man := &store.Manifest{
		ID: "doomed-r", State: store.StateQueued, K: 3, Algo: "ball",
		Rows: len(rows), Cols: len(header), SubmittedAt: time.Now().UTC(),
	}
	if err := probe.CreateJob(man, header, rows); err != nil {
		t.Fatal(err)
	}
	if _, _, err := probe.ClaimJob("doomed-r", "dead-node", time.Second, time.Now().Add(-time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := probe.RequestCancel("doomed-r", "user asked", time.Now()); err != nil {
		t.Fatal(err)
	}

	m := newClusterManager(t, dir, "node-b", nil)
	got := waitManifestState(t, probe, "doomed-r", store.StateCanceled)
	if got.Claim != nil {
		t.Errorf("canceled job still holds a lease: %+v", got.Claim)
	}
	if st, ok := m.StatusOf("doomed-r"); !ok || st.State != StateCanceled {
		t.Errorf("StatusOf = %+v ok=%v, want canceled", st, ok)
	}
}

// TestClusterCancelRunningCrossNode: DELETE on a node that does NOT run
// the job flags the manifest; the lease holder notices at its next
// renewal and unwinds to canceled.
func TestClusterCancelRunningCrossNode(t *testing.T) {
	dir := t.TempDir()
	header, rows := slowInstance(t)
	probe := openStoreAt(t, dir)
	short := func(c *Config) { c.LeaseTTL = 300 * time.Millisecond }

	mA := newClusterManager(t, dir, "node-a", short)
	mB := newClusterManager(t, dir, "node-b", short)

	job, err := mA.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	man := waitManifestState(t, probe, job.ID, store.StateRunning)
	if man.Claim == nil {
		t.Fatal("running manifest has no claim")
	}
	// Cancel through the node that is NOT the lease holder.
	other := mA
	if man.Claim.Node == "node-a" {
		other = mB
	}
	st, ok := other.CancelByID(job.ID)
	if !ok {
		t.Fatalf("cancel via %s: unknown job", other.cfg.NodeID)
	}
	if st.State.Terminal() && st.State != StateCanceled {
		t.Fatalf("cancel answered terminal state %v", st.State)
	}
	got := waitManifestState(t, probe, job.ID, store.StateCanceled)
	if got.Claim != nil {
		t.Errorf("canceled job still holds a lease: %+v", got.Claim)
	}
}

// TestClusterShutdownReleasesRunning: a drain deadline that fires while
// a claimed job runs releases it back to the shared queue — state
// queued, lease cleared, fence intact — so a peer can claim and finish
// it instead of the work being lost or marked canceled.
func TestClusterShutdownReleasesRunning(t *testing.T) {
	dir := t.TempDir()
	header, rows := slowInstance(t)
	probe := openStoreAt(t, dir)

	m := NewManager(Config{
		Store: openStoreAt(t, dir), NodeID: "node-a", Workers: 1,
		JobTimeout: time.Minute, ResultTTL: time.Minute,
	})
	job, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	waitManifestState(t, probe, job.ID, store.StateRunning)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // drain budget already spent: force the release path
	if err := m.Shutdown(ctx); err == nil {
		t.Fatal("shutdown with expired deadline returned nil")
	}
	man := waitManifestState(t, probe, job.ID, store.StateQueued)
	if man.Claim != nil {
		t.Fatalf("released job still holds a lease: %+v", man.Claim)
	}
	if man.Fence != 1 {
		t.Errorf("fence after release = %d, want 1 (fence survives release)", man.Fence)
	}
	if n := m.Snapshot().Counters["server.leases_released"]; n != 1 {
		t.Errorf("leases_released = %d, want 1", n)
	}
	// A peer (modeled directly against the store) claims the released
	// job at the next fence.
	claimed, stolen, err := probe.ClaimJob(job.ID, "node-b", time.Minute, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if stolen || claimed.Fence != 2 {
		t.Errorf("re-claim: stolen=%v fence=%d, want false/2", stolen, claimed.Fence)
	}
}

// TestClusterHealth: the /healthz payload carries the node identity and
// capacity picture a router balances on.
func TestClusterHealth(t *testing.T) {
	dir := t.TempDir()
	header, rows, _ := smallInstance(t, 65)
	probe := openStoreAt(t, dir)
	m := newClusterManager(t, dir, "node-a", func(c *Config) { c.Workers = 2 })

	h := m.Health()
	if h.Status != "ok" || h.Node != "node-a" || h.Capacity != 2 || h.Free != 2 ||
		h.Running != 0 || h.Queued != 0 || h.Claimed != 0 {
		t.Fatalf("idle health = %+v", h)
	}

	job, err := m.Submit(header, rows, JobRequest{K: 3, Algorithm: kanon.AlgoGreedyBall})
	if err != nil {
		t.Fatal(err)
	}
	waitManifestState(t, probe, job.ID, store.StateSucceeded)
	h = m.Health()
	if h.Jobs != 1 || h.Queued != 0 || h.Claimed != 0 || h.Free != 2 {
		t.Fatalf("post-job health = %+v", h)
	}
}

// TestLegacyHealth: outside cluster mode the payload keeps the old
// fields and derives capacity from the worker pool, with no node label.
func TestLegacyHealth(t *testing.T) {
	m := newTestManager(t, Config{Workers: 3})
	h := m.Health()
	if h.Node != "" || h.Capacity != 3 || h.Free != 3 || h.Status != "ok" {
		t.Fatalf("legacy health = %+v", h)
	}
	if q, c := m.ClusterDepths(); q != 0 || c != 0 {
		t.Fatalf("legacy ClusterDepths = %d/%d, want 0/0", q, c)
	}
}

// TestClusterUnrunnableJobFailsDurably: a claimed job whose request
// spool is unreadable is failed on disk — once, durably — instead of
// ping-ponging between nodes as claim/release forever.
func TestClusterUnrunnableJobFailsDurably(t *testing.T) {
	dir := t.TempDir()
	header, rows, _ := smallInstance(t, 66)
	probe := openStoreAt(t, dir)
	man := &store.Manifest{
		ID: "hollow", State: store.StateQueued, K: 3, Algo: "ball",
		Rows: len(rows), Cols: len(header), SubmittedAt: time.Now().UTC(),
	}
	if err := probe.CreateJob(man, header, rows); err != nil {
		t.Fatal(err)
	}
	// Corrupt the request spool: the manifest claims, the table is gone.
	if err := os.Remove(filepath.Join(dir, "jobs", "hollow", "request.csv")); err != nil {
		t.Fatal(err)
	}

	m := newClusterManager(t, dir, "node-b", nil)
	got := waitManifestState(t, probe, "hollow", store.StateFailed)
	if got.Error == "" {
		t.Error("failed manifest carries no error text")
	}
	if n := m.Snapshot().Counters["server.jobs_failed"]; n != 1 {
		t.Errorf("jobs_failed = %d, want 1", n)
	}
	// The failure is terminal: nothing re-claims it.
	time.Sleep(50 * time.Millisecond)
	if got2, err := probe.ReadManifest("hollow"); err != nil || got2.State != store.StateFailed {
		t.Errorf("job left %v/%v, want stable failed state", got2, err)
	}
}

// TestClusterJanitorReapsForeignTerminal: the cluster sweep reaps an
// expired terminal job finished by a node that no longer exists.
func TestClusterJanitorReapsForeignTerminal(t *testing.T) {
	dir := t.TempDir()
	header, rows, _ := smallInstance(t, 67)
	probe := openStoreAt(t, dir)
	old := time.Now().Add(-time.Hour).UTC()
	man := &store.Manifest{
		ID: "stale-t", State: store.StateFailed, K: 3, Algo: "ball",
		Rows: len(rows), Cols: len(header), SubmittedAt: old.Add(-time.Minute),
		Error: "boom", FinishedAt: &old, Node: "dead-node",
	}
	if err := probe.CreateJob(man, header, rows); err != nil {
		t.Fatal(err)
	}
	// A job that finished moments ago is inside its TTL: the sweep must
	// leave it alone while reaping its expired sibling.
	fresh := time.Now().Add(time.Hour).UTC() // far future: immune to slow test runs
	man2 := &store.Manifest{
		ID: "fresh-t", State: store.StateFailed, K: 3, Algo: "ball",
		Rows: len(rows), Cols: len(header), SubmittedAt: old,
		Error: "boom", FinishedAt: &fresh, Node: "dead-node",
	}
	if err := probe.CreateJob(man2, header, rows); err != nil {
		t.Fatal(err)
	}

	newClusterManager(t, dir, "node-b", func(c *Config) { c.ResultTTL = 50 * time.Millisecond })
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := probe.ReadManifest("stale-t"); err != nil {
			break // reaped
		}
		if time.Now().After(deadline) {
			t.Fatal("foreign terminal job never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := probe.ReadManifest("fresh-t"); err != nil {
		t.Errorf("sweep reaped a terminal job inside its TTL: %v", err)
	}
}

// TestClusterCancelByIDPaths: the cancel entry point across its cluster
// branches — unknown IDs, a job running locally, and a job still
// queued.
func TestClusterCancelByIDPaths(t *testing.T) {
	dir := t.TempDir()
	probe := openStoreAt(t, dir)
	m := newClusterManager(t, dir, "node-a", func(c *Config) { c.Workers = 1 })

	if _, ok := m.CancelByID("no-such-job"); ok {
		t.Fatal("cancel of unknown id reported ok")
	}

	// Occupy the single worker with a slow job, then cancel it locally —
	// the direct (same-node) fast path.
	slowHeader, slowRows := slowInstance(t)
	running, err := m.Submit(slowHeader, slowRows, JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	waitManifestState(t, probe, running.ID, store.StateRunning)
	if _, claimed := m.ClusterDepths(); claimed != 1 {
		t.Errorf("ClusterDepths claimed = %d, want 1", claimed)
	}

	// A second submission has no free slot: it stays queued, and its
	// cancellation goes through the store.
	header, rows, _ := smallInstance(t, 68)
	queued, err := m.Submit(header, rows, JobRequest{K: 3, Algorithm: kanon.AlgoGreedyBall})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := m.CancelByID(queued.ID)
	if !ok || st.State != StateCanceled {
		t.Fatalf("queued cancel: ok=%v state=%v", ok, st.State)
	}
	if man, err := probe.ReadManifest(queued.ID); err != nil || man.State != store.StateCanceled {
		t.Fatalf("queued cancel on disk: %v %v", man, err)
	}

	if _, ok := m.CancelByID(running.ID); !ok {
		t.Fatal("running cancel: unknown job")
	}
	got := waitManifestState(t, probe, running.ID, store.StateCanceled)
	if got.Claim != nil {
		t.Errorf("canceled job still holds a lease: %+v", got.Claim)
	}
}

// TestClusterQueueFullAcrossNodes: admission control measures the
// cluster-wide backlog, so a node with idle submitters still rejects
// once the shared queue is at capacity.
func TestClusterQueueFullAcrossNodes(t *testing.T) {
	dir := t.TempDir()
	header, rows, _ := smallInstance(t, 69)
	probe := openStoreAt(t, dir)
	// No manager is running: manifests pile up queued, as if submitted
	// on nodes whose workers are saturated.
	for _, id := range []string{"q1", "q2"} {
		man := &store.Manifest{
			ID: id, State: store.StateQueued, K: 3, Algo: "ball",
			Rows: len(rows), Cols: len(header), SubmittedAt: time.Now().UTC(),
		}
		if err := probe.CreateJob(man, header, rows); err != nil {
			t.Fatal(err)
		}
	}
	m := newClusterManager(t, dir, "node-a", func(c *Config) {
		c.QueueCapacity = 2
		c.Workers = 1
	})
	// The two queued foreign jobs fill the shared queue faster than the
	// single worker drains it; keep submitting until the depth check
	// fires or the backlog empties (then the test cannot assert).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := m.Submit(header, rows, JobRequest{K: 3, Algorithm: kanon.AlgoGreedyBall})
		if errors.Is(err, ErrQueueFull) {
			return // admission correctly measured the shared backlog
		}
		if err != nil {
			t.Fatalf("unexpected submit error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Skip("workers drained the backlog faster than submissions; cannot provoke queue-full")
		}
	}
}

// TestClusterSubmitWhileDraining: a submission racing shutdown is
// refused and its just-written store entry unwound.
func TestClusterSubmitWhileDraining(t *testing.T) {
	dir := t.TempDir()
	header, rows, _ := smallInstance(t, 70)
	probe := openStoreAt(t, dir)
	m := NewManager(Config{
		Store: openStoreAt(t, dir), NodeID: "node-a",
		JobTimeout: time.Minute, ResultTTL: time.Minute,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	job, err := m.Submit(header, rows, JobRequest{K: 3, Algorithm: kanon.AlgoGreedyBall})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	if job != nil {
		if _, rerr := probe.ReadManifest(job.ID); rerr == nil {
			t.Error("refused submission left its store entry behind")
		}
	}
}

// TestClusterLeaseStolenMidRun: a node that loses its lease mid-run
// observes the fence at its next renewal, abandons the job locally, and
// never commits over the thief's claim.
func TestClusterLeaseStolenMidRun(t *testing.T) {
	dir := t.TempDir()
	header, rows := slowInstance(t)
	probe := openStoreAt(t, dir)
	m := newClusterManager(t, dir, "node-a", func(c *Config) {
		c.LeaseTTL = 300 * time.Millisecond
		c.Workers = 1
	})
	job, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	waitManifestState(t, probe, job.ID, store.StateRunning)

	// Steal the lease out from under the runner: pretend to be a node
	// whose clock says the lease expired (the store trusts the caller's
	// "now"; real nodes only steal past the deadline). The long TTL
	// keeps the stolen claim live so node-a cannot steal it back.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, err := probe.ClaimJob(job.ID, "thief", time.Hour, time.Now().Add(time.Minute)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("could not steal the lease")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Node-a's next renewal is fenced: it must flag the loss, cancel the
	// run, and leave the thief's claim untouched.
	deadline = time.Now().Add(10 * time.Second)
	for m.Snapshot().Counters["server.leases_lost"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease loss never observed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Give the abandoned run a moment to unwind, then confirm the
	// thief's claim survived whatever node-a did on the way out.
	time.Sleep(100 * time.Millisecond)
	man, err := probe.ReadManifest(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if man.State != store.StateRunning || man.Claim == nil || man.Claim.Node != "thief" || man.Fence != 2 {
		t.Fatalf("thief's claim clobbered: %+v fence=%d", man.Claim, man.Fence)
	}
	if st, ok := m.StatusOf(job.ID); ok && st.State.Terminal() {
		t.Errorf("abandoned job reported terminal locally: %+v", st)
	}
}
