package server

import (
	"bytes"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"kanon"
	"kanon/internal/relation"
)

const hierSpecJSON = `{
  "columns": [
    {"name": "age", "kind": "interval", "width": 10, "min": 0, "max": 79},
    {"name": "zip", "kind": "tree", "paths": {
      "15213": ["152xx"],
      "15217": ["152xx"]
    }},
    {"name": "dx", "kind": "suppress"}
  ]
}`

// TestE2EHierarchyMatchesCLI: a hierarchy job through the HTTP API is
// byte-identical to the direct facade run, across worker counts and
// with tracing on — the repo-wide determinism contract extended to the
// new solver family.
func TestE2EHierarchyMatchesCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	header, rows, err := relation.ReadCSVRows(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		query url.Values
		opts  kanon.Options
	}{
		{"derived", url.Values{"k": {"2"}, "algo": {"hierarchy"}},
			kanon.Options{Algorithm: kanon.AlgoHierarchy}},
		{"spec+budget", url.Values{"k": {"2"}, "algo": {"hierarchy"}, "hierarchy": {hierSpecJSON}, "suppress": {"1"}},
			kanon.Options{Algorithm: kanon.AlgoHierarchy, MaxSuppress: 1}},
		{"workers=1", url.Values{"k": {"2"}, "algo": {"hierarchy"}, "workers": {"1"}},
			kanon.Options{Algorithm: kanon.AlgoHierarchy, Workers: 1}},
		{"workers=4+trace", url.Values{"k": {"2"}, "algo": {"hierarchy"}, "workers": {"4"}, "trace": {"true"}},
			kanon.Options{Algorithm: kanon.AlgoHierarchy, Workers: 4}},
	} {
		st, resp := submit(t, ts, tc.query.Encode(), sampleCSV)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: submit status %d", tc.name, resp.StatusCode)
		}
		done := pollUntil(t, ts, st.ID, 10*time.Second, func(s Status) bool { return s.State.Terminal() })
		if done.State != StateSucceeded {
			t.Fatalf("%s: state %s, error %q", tc.name, done.State, done.Error)
		}
		rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(rr.Body)
		rr.Body.Close()
		if rr.StatusCode != http.StatusOK {
			t.Fatalf("%s: result status %d: %s", tc.name, rr.StatusCode, got)
		}
		opts := tc.opts
		if tc.query.Has("hierarchy") {
			spec, err := kanon.ParseHierarchySpec([]byte(tc.query.Get("hierarchy")))
			if err != nil {
				t.Fatal(err)
			}
			opts.Hierarchy = spec
		}
		res, err := kanon.Anonymize(header, rows, 2, &opts)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := relation.WriteCSVRows(&want, res.Header, res.Rows); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("%s: service bytes differ from direct run:\nservice:\n%s\ndirect:\n%s", tc.name, got, want.Bytes())
		}
		if done.Cost == nil || *done.Cost != res.Cost {
			t.Errorf("%s: status cost = %v, want %d", tc.name, done.Cost, res.Cost)
		}
	}
}

// TestSubmitUnknownAlgo400 is the regression test for the admission
// fix: an unknown ?algo= is a 400 whose body lists every registered
// solver, instead of an accepted job that fails later.
func TestSubmitUnknownAlgo400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/jobs?k=2&algo=wat", "text/csv", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	for _, name := range kanon.AlgorithmNames() {
		if !strings.Contains(string(body), name) {
			t.Errorf("error body does not list registered solver %q:\n%s", name, body)
		}
	}
}

// TestHierarchyParamsValidation: malformed specs are 400s at admission,
// and hierarchy knobs on other algorithms are rejected.
func TestHierarchyParamsValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name  string
		query url.Values
	}{
		{"bad spec", url.Values{"k": {"2"}, "algo": {"hierarchy"}, "hierarchy": {`{"columns":[]}`}}},
		{"bad suppress", url.Values{"k": {"2"}, "algo": {"hierarchy"}, "suppress": {"-1"}}},
		{"spec on ball", url.Values{"k": {"2"}, "hierarchy": {hierSpecJSON}}},
		{"suppress on exact", url.Values{"k": {"2"}, "algo": {"exact"}, "suppress": {"1"}}},
	}
	for _, tc := range cases {
		_, resp := submit(t, ts, tc.query.Encode(), sampleCSV)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestHierarchyManifestRoundTrip: the spec and budget survive the
// durable manifest, so crash recovery re-runs the same lattice.
func TestHierarchyManifestRoundTrip(t *testing.T) {
	spec, err := kanon.ParseHierarchySpec([]byte(hierSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{
		ID: "job-roundtrip",
		Req: JobRequest{
			K: 2, Algorithm: kanon.AlgoHierarchy,
			HierarchySpec: spec, MaxSuppress: 3,
		},
		header:    []string{"age", "zip", "dx"},
		rows:      [][]string{{"34", "15213", "flu"}, {"36", "15213", "flu"}},
		state:     StateQueued,
		submitted: time.Now(),
	}
	m := j.manifest()
	if m.HierarchySpec == "" || m.MaxSuppress != 3 {
		t.Fatalf("manifest dropped hierarchy fields: %+v", m)
	}
	req, err := requestFromManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if req.MaxSuppress != 3 || req.HierarchySpec == nil {
		t.Fatalf("recovered request dropped hierarchy fields: %+v", req)
	}
	// The recovered spec must describe the same hierarchy.
	b1, _ := spec.Encode()
	b2, _ := req.HierarchySpec.Encode()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("recovered spec differs:\n%s\nvs\n%s", b1, b2)
	}
}
