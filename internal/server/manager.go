package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"kanon"
	"kanon/internal/core"
	"kanon/internal/metric"
	"kanon/internal/obs"
	"kanon/internal/relation"
	"kanon/internal/store"
	"kanon/internal/stream"
)

// Config tunes the job manager and HTTP server. The zero value is
// usable: every field has a production-shaped default.
type Config struct {
	// QueueCapacity bounds the FIFO admission queue; submissions beyond
	// it are rejected with ErrQueueFull (HTTP 429). Default 64.
	QueueCapacity int
	// Workers is how many jobs run concurrently. Default half the CPUs
	// (each job may itself parallelize via its Workers knob).
	Workers int
	// JobTimeout is the per-job deadline, and the ceiling for
	// client-requested timeouts. Default 5m.
	JobTimeout time.Duration
	// ResultTTL is how long a terminal job (result or error) stays
	// retrievable before the janitor evicts it. Default 15m.
	ResultTTL time.Duration
	// MaxBodyBytes bounds the CSV request body. Default 32 MiB.
	MaxBodyBytes int64
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// Kernel is the distance-kernel backend for jobs whose submission
	// does not name one. The zero value (kanon.KernelAuto) sizes the
	// choice to each job's table; output is identical either way.
	Kernel kanon.Kernel
	// Log receives structured job lifecycle events (with each job's ID
	// as run_id); nil is silent.
	Log *slog.Logger
	// Store, when non-nil, persists every job to disk (request bytes,
	// lifecycle manifest, result spool, and per-block checkpoints for
	// stream jobs), so admitted work survives a crash. Nil keeps the
	// in-memory-only behavior.
	Store *store.Store
	// Recover, with a Store, re-admits jobs found queued or running on
	// disk at startup: they re-enter the queue (in original admission
	// order, ahead of capacity limits) and stream jobs resume from
	// their last completed block checkpoint. Terminal jobs are reloaded
	// so their status and results stay retrievable across restarts.
	// Cluster mode (NodeID set) supersedes this: recovery there is the
	// claim loop's normal behavior, running continuously instead of
	// once at startup.
	Recover bool
	// NodeID, with a Store, switches the manager to cluster mode: the
	// on-disk manifests become the queue, jobs are claimed under
	// renewable leases with fencing tokens, and any number of kanond
	// processes with distinct NodeIDs sharing the data directory drain
	// the backlog together, stealing work from crashed peers once their
	// leases expire. Empty keeps the single-node in-memory dispatch.
	NodeID string
	// LeaseTTL is how long a claimed job's lease lasts between
	// renewals (which happen at TTL/3). It is the crash-failover knob:
	// a dead node's jobs become stealable one TTL after its last
	// renewal. Default 15s.
	LeaseTTL time.Duration
	// ClaimInterval bounds how long a node waits before re-scanning the
	// store for claimable work it was not poked about (foreign
	// submissions, expired leases). Default LeaseTTL/5, clamped to
	// [50ms, 2s].
	ClaimInterval time.Duration
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.Workers <= 0 {
		c.Workers = max(1, runtime.NumCPU()/2)
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 15 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.ClaimInterval <= 0 {
		c.ClaimInterval = c.LeaseTTL / 5
		if c.ClaimInterval < 50*time.Millisecond {
			c.ClaimInterval = 50 * time.Millisecond
		}
		if c.ClaimInterval > 2*time.Second {
			c.ClaimInterval = 2 * time.Second
		}
	}
	return c
}

// Admission-control errors, surfaced by Submit and mapped to HTTP
// status codes by the handlers.
var (
	// ErrQueueFull means the bounded queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining means the server is shutting down and no longer
	// admits work (HTTP 503).
	ErrDraining = errors.New("server: draining, not accepting jobs")
	// ErrStore means the job store could not persist an admitted job;
	// the job is withdrawn rather than accepted with a broken
	// durability promise (HTTP 500).
	ErrStore = errors.New("server: persisting job")
	// ErrIdempotentReplay means the submission's Idempotency-Key already
	// admitted a job; the caller should look the original up and replay
	// its acceptance instead of reporting an error.
	ErrIdempotentReplay = errors.New("server: idempotency key already used")
)

// Manager owns the job queue, the worker pool, the in-memory result
// store, and the server-wide telemetry registry. It is safe for
// concurrent use.
type Manager struct {
	cfg Config
	tr  *obs.Tracer

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	queue    chan *Job
	draining bool
	// idem maps Idempotency-Key → job ID for every key-carrying job this
	// node knows. It is the fast path and the same-node race guard;
	// cluster-wide lookups additionally scan the store's manifests
	// (which carry the key durably and replicate with everything else).
	idem map[string]string

	workerWG    sync.WaitGroup
	janitorStop chan struct{}
	janitorDone chan struct{}

	// Cluster-mode runtime (nil / unused outside cluster mode): worker
	// slots as a token bucket, the claim loop's lifecycle channels, the
	// set of jobs running on this node, and the in-flight run group.
	slots        chan struct{}
	claimPoke    chan struct{}
	claimStop    chan struct{}
	claimDone    chan struct{}
	runningLocal map[string]bool
	runWG        sync.WaitGroup

	// Hoisted instruments (obs lookup takes the registry lock).
	qDepth        *obs.Gauge
	running       *obs.Gauge
	submitted     *obs.Counter
	succeeded     *obs.Counter
	failed        *obs.Counter
	canceled      *obs.Counter
	rejected      *obs.Counter
	expired       *obs.Counter
	recovered     *obs.Counter
	blocksResumed *obs.Counter
	queueWait     *obs.Histogram
	jobDur        *obs.Histogram
	jobCost       *obs.Histogram

	// Lease instruments (cluster mode).
	leasesClaimed  *obs.Counter
	leasesStolen   *obs.Counter
	leasesRenewed  *obs.Counter
	leasesLost     *obs.Counter
	leasesReleased *obs.Counter
}

// NewManager starts the worker pool and the TTL janitor. When the
// config carries a Store with Recover set, jobs found queued or running
// on disk are re-admitted before the workers start — the queue is sized
// to hold the whole recovered backlog even past QueueCapacity, so a
// restart never sheds work it already accepted. In cluster mode
// (Store + NodeID) the channel dispatch is replaced by the claim loop:
// no startup recovery pass is needed, because claiming queued jobs and
// stealing expired leases IS recovery, running continuously. Call
// Shutdown to stop.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()

	// Scan the store before sizing the queue: the recovered backlog
	// must fit even if it exceeds the configured capacity.
	var recoverable, terminal []*Job
	if cfg.Store != nil && cfg.Recover && !cfg.cluster() {
		recoverable, terminal = loadPersistedJobs(cfg)
	}
	queueCap := cfg.QueueCapacity
	if len(recoverable) > queueCap {
		queueCap = len(recoverable)
	}

	ctx, cancel := context.WithCancel(context.Background())
	tr := obs.New()
	m := &Manager{
		cfg:            cfg,
		tr:             tr,
		baseCtx:        ctx,
		baseCancel:     cancel,
		jobs:           make(map[string]*Job),
		idem:           make(map[string]string),
		janitorStop:    make(chan struct{}),
		janitorDone:    make(chan struct{}),
		qDepth:         tr.Gauge("server.queue_depth"),
		running:        tr.Gauge("server.jobs_running"),
		submitted:      tr.Counter("server.jobs_submitted"),
		succeeded:      tr.Counter("server.jobs_succeeded"),
		failed:         tr.Counter("server.jobs_failed"),
		canceled:       tr.Counter("server.jobs_canceled"),
		rejected:       tr.Counter("server.jobs_rejected"),
		expired:        tr.Counter("server.jobs_expired"),
		recovered:      tr.Counter("server.jobs_recovered"),
		blocksResumed:  tr.Counter("server.blocks_resumed"),
		queueWait:      tr.Histogram("server.queue_wait_ns"),
		jobDur:         tr.Histogram("server.job_duration_ns"),
		jobCost:        tr.Histogram("server.job_cost"),
		leasesClaimed:  tr.Counter("server.leases_claimed"),
		leasesStolen:   tr.Counter("server.leases_stolen"),
		leasesRenewed:  tr.Counter("server.leases_renewed"),
		leasesLost:     tr.Counter("server.leases_lost"),
		leasesReleased: tr.Counter("server.leases_released"),
	}
	tr.Gauge("server.workers").Set(int64(cfg.Workers))
	if cfg.cluster() {
		m.slots = make(chan struct{}, cfg.Workers)
		for i := 0; i < cfg.Workers; i++ {
			m.slots <- struct{}{}
		}
		m.claimPoke = make(chan struct{}, 1)
		m.claimStop = make(chan struct{})
		m.claimDone = make(chan struct{})
		m.runningLocal = make(map[string]bool)
		go m.claimLoop()
		go m.janitor()
		return m
	}
	m.queue = make(chan *Job, queueCap)
	for _, j := range terminal {
		m.jobs[j.ID] = j
		m.rememberIdem(j)
	}
	for _, j := range recoverable {
		m.jobs[j.ID] = j
		m.rememberIdem(j)
		m.queue <- j // cannot block: the queue was sized for the backlog
		m.qDepth.Add(1)
		m.recovered.Inc()
		m.persist(j) // running → queued: the disk state follows the re-admission
		m.log(j, slog.LevelInfo, "job_recovered",
			slog.String("algo", j.Req.Algorithm.String()), slog.Int("k", j.Req.K),
			slog.Int("rows", len(j.rows)))
	}
	for i := 0; i < cfg.Workers; i++ {
		m.workerWG.Add(1)
		go m.worker()
	}
	go m.janitor()
	return m
}

// loadPersistedJobs turns the store's manifests back into jobs: queued
// and running manifests become re-admittable (queued) jobs, terminal
// manifests become finished jobs whose status and results stay
// retrievable. Directories that cannot be decoded or replayed are
// logged and skipped — recovery is best-effort per job, never
// all-or-nothing.
func loadPersistedJobs(cfg Config) (recoverable, terminal []*Job) {
	warn := func(id, problem string, err error) {
		if cfg.Log != nil {
			cfg.Log.LogAttrs(context.Background(), slog.LevelWarn, "job_recovery_skipped",
				slog.String("run_id", id), slog.String("problem", problem), slog.String("error", err.Error()))
		}
	}
	manifests, skipped, err := cfg.Store.Jobs()
	if err != nil {
		warn("", "scanning store", err)
		return nil, nil
	}
	for _, name := range skipped {
		warn(name, "undecodable job directory", errors.New("manifest missing or invalid"))
	}
	for _, man := range manifests {
		req, err := requestFromManifest(man)
		if err != nil {
			warn(man.ID, "manifest request", err)
			continue
		}
		job := &Job{
			ID:        man.ID,
			Req:       req,
			state:     State(man.State),
			submitted: man.SubmittedAt,
			done:      make(chan struct{}),
		}
		if man.StartedAt != nil {
			job.started = *man.StartedAt
		}
		if man.FinishedAt != nil {
			job.finished = *man.FinishedAt
		}
		if man.Recoverable() {
			header, rows, err := cfg.Store.ReadRequest(man.ID)
			if err != nil {
				warn(man.ID, "request spool", err)
				continue
			}
			job.header, job.rows = header, rows
			job.state = StateQueued // a crashed running job re-enters the queue
			job.started = time.Time{}
			recoverable = append(recoverable, job)
			continue
		}
		// Terminal job: status (and, for successes, the result spool)
		// stays retrievable until its TTL, clocked from when it finished.
		job.expires = job.finished.Add(cfg.ResultTTL)
		// Size-only placeholders: Status reports the request's shape.
		job.header = make([]string, man.Cols)
		job.rows = make([][]string, man.Rows)
		if man.Error != "" {
			job.err = errors.New(man.Error)
		}
		if man.State == store.StateSucceeded {
			header, rows, err := cfg.Store.ReadResult(man.ID)
			if err != nil {
				warn(man.ID, "result spool", err)
				continue
			}
			cost := 0
			if man.Cost != nil {
				cost = *man.Cost
			}
			job.result = &kanon.Result{K: man.K, Header: header, Rows: rows, Cost: cost}
		}
		close(job.done)
		terminal = append(terminal, job)
	}
	return recoverable, terminal
}

// persist mirrors the job's current lifecycle state to the store.
// Best-effort after admission: for a live process the in-memory state
// is authoritative and the manifest exists for the next process, so a
// failed write degrades durability, not correctness — loudly.
func (m *Manager) persist(j *Job) {
	if m.cfg.Store == nil {
		return
	}
	if err := m.cfg.Store.WriteManifest(j.manifest()); err != nil {
		m.log(j, slog.LevelWarn, "job_persist_failed", slog.String("error", err.Error()))
	}
}

// Snapshot freezes the server-wide telemetry registry — the /metrics
// and /debug/obs source. The snapshot is stamped with this node's ID
// so one scrape identifies the node without a second probe.
func (m *Manager) Snapshot() *obs.Snapshot {
	s := m.tr.Snapshot()
	s.Node = m.cfg.NodeID
	return s
}

// rememberIdem indexes a recovered or adopted job's idempotency key.
// Held-lock-free: call outside m.mu only at startup, else under it.
func (m *Manager) rememberIdem(j *Job) {
	if j.Req.IdempotencyKey != "" {
		m.idem[j.Req.IdempotencyKey] = j.ID
	}
}

// Idempotent resolves an idempotency key to the status of the job it
// admitted, if any — the replay lookup behind duplicate submissions.
// The local table answers for jobs this node has seen; cluster mode
// falls back to scanning the store's manifests, so the answer covers
// jobs admitted by peers (exactly when the directory is shared,
// eventually when replicated).
func (m *Manager) Idempotent(key string) (Status, bool) {
	if key == "" {
		return Status{}, false
	}
	m.mu.Lock()
	id, ok := m.idem[key]
	m.mu.Unlock()
	if ok {
		if st, ok := m.StatusOf(id); ok {
			return st, true
		}
	}
	if m.cfg.Store != nil {
		if man, err := m.cfg.Store.FindIdempotent(key); err == nil && man != nil {
			m.mu.Lock()
			m.idem[key] = man.ID
			m.mu.Unlock()
			if st, ok := m.StatusOf(man.ID); ok {
				return st, true
			}
			return statusFromManifest(man), true
		}
	}
	return Status{}, false
}

// reserveIdem claims a key for a submission in flight, so two racing
// duplicates cannot both admit. Returns ErrIdempotentReplay when the
// key is already bound (to a finished admission or a racing one — the
// caller re-resolves via Idempotent either way).
func (m *Manager) reserveIdem(key, id string) error {
	if key == "" {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.idem[key]; ok {
		return ErrIdempotentReplay
	}
	m.idem[key] = id
	return nil
}

// unreserveIdem releases a key whose submission failed admission.
func (m *Manager) unreserveIdem(key, id string) {
	if key == "" {
		return
	}
	m.mu.Lock()
	if m.idem[key] == id {
		delete(m.idem, key)
	}
	m.mu.Unlock()
}

// Submit admits a job: it validates the instance, then either enqueues
// it (FIFO) or rejects it with ErrQueueFull / ErrDraining. The input
// slices are retained; callers must not mutate them afterwards.
func (m *Manager) Submit(header []string, rows [][]string, req JobRequest) (*Job, error) {
	if err := validateInstance(req, len(rows)); err != nil {
		return nil, err
	}
	// Resolve the kernel default at admission so the choice is frozen
	// into the job's manifest: a recovered job re-runs with the kernel
	// it was admitted under even if the server restarts with a
	// different -kernel default.
	if !req.KernelSet {
		req.Kernel, req.KernelSet = m.cfg.Kernel, true
	}
	job := &Job{
		ID:        obs.NewRunID(),
		Req:       req,
		header:    header,
		rows:      rows,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if err := m.reserveIdem(req.IdempotencyKey, job.ID); err != nil {
		return nil, err
	}
	if m.cfg.cluster() {
		j, err := m.submitCluster(job)
		if err != nil {
			m.unreserveIdem(req.IdempotencyKey, job.ID)
		}
		return j, err
	}
	// Persist before the job becomes visible to workers: otherwise a
	// fast worker's "running" manifest could be overwritten by this
	// initial "queued" snapshot, leaving the disk behind reality. A
	// rejection below unwinds the directory; a crash between the write
	// and the enqueue recovers a job the client never got a 202 for —
	// at-least-once admission, which deterministic jobs make harmless.
	if m.cfg.Store != nil {
		if err := m.cfg.Store.CreateJob(job.manifest(), header, rows); err != nil {
			m.rejected.Inc()
			m.unreserveIdem(req.IdempotencyKey, job.ID)
			m.log(job, slog.LevelWarn, "job_persist_failed", slog.String("error", err.Error()))
			return nil, fmt.Errorf("%w: %v", ErrStore, err)
		}
		m.journal(job.ID).Record(obs.JournalEvent{Event: obs.EvSubmitted,
			Detail: fmt.Sprintf("algo=%s k=%d rows=%d", req.Algorithm, req.K, len(rows))})
	}
	unwind := func() {
		m.unreserveIdem(req.IdempotencyKey, job.ID)
		if m.cfg.Store != nil {
			if err := m.cfg.Store.Delete(job.ID); err != nil {
				m.log(job, slog.LevelWarn, "job_reap_failed", slog.String("error", err.Error()))
			}
		}
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.rejected.Inc()
		unwind()
		return nil, ErrDraining
	}
	select {
	case m.queue <- job:
		m.jobs[job.ID] = job
	default:
		m.mu.Unlock()
		m.rejected.Inc()
		unwind()
		return nil, ErrQueueFull
	}
	m.mu.Unlock()
	m.qDepth.Add(1)
	m.submitted.Inc()
	m.log(job, slog.LevelInfo, "job_queued",
		slog.Int("k", req.K), slog.String("algo", req.Algorithm.String()),
		slog.Int("rows", len(rows)), slog.Int("cols", len(header)))
	return job, nil
}

// Get returns the job with the given ID, if it is still stored.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. A queued job transitions to
// canceled immediately (its queue slot is discarded when a worker
// reaches it); a running job has its context cancelled and transitions
// once the compute layer unwinds — promptly, because every algorithm
// polls its context. Terminal jobs are unaffected. The second return
// is false if the ID is unknown.
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = context.Canceled
		j.finished = time.Now()
		j.expires = j.finished.Add(m.cfg.ResultTTL)
		close(j.done)
		j.mu.Unlock()
		m.canceled.Inc()
		m.persist(j)
		m.journal(j.ID).Record(obs.JournalEvent{Event: obs.EvCanceled, Detail: "while queued"})
		m.log(j, slog.LevelInfo, "job_canceled", slog.String("while", "queued"))
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		m.journal(j.ID).Record(obs.JournalEvent{Event: obs.EvCancelRequested})
		m.log(j, slog.LevelInfo, "job_cancel_requested", slog.String("while", "running"))
	default:
		j.mu.Unlock()
	}
	return j, true
}

// worker claims queued jobs until the queue is closed and drained.
func (m *Manager) worker() {
	defer m.workerWG.Done()
	for job := range m.queue {
		m.qDepth.Add(-1)
		m.runJob(job)
	}
}

// runJob executes one job end to end: state transition, context with
// deadline, the anonymization itself, and terminal bookkeeping.
func (m *Manager) runJob(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting
		job.mu.Unlock()
		return
	}
	timeout := m.cfg.JobTimeout
	if job.Req.Timeout > 0 && job.Req.Timeout < timeout {
		timeout = job.Req.Timeout
	}
	ctx, cancel := context.WithTimeout(m.baseCtx, timeout)
	defer cancel()
	job.state = StateRunning
	job.started = time.Now()
	job.cancel = cancel
	wait := job.started.Sub(job.submitted)
	job.mu.Unlock()

	m.running.Add(1)
	m.queueWait.ObserveDuration(wait)
	m.persist(job)
	m.log(job, slog.LevelInfo, "job_started", slog.Duration("queue_wait", wait))
	o := m.startJobObs(job)
	o.journal.Record(obs.JournalEvent{Event: obs.EvClaimed,
		Detail: fmt.Sprintf("algo=%s k=%d", job.Req.Algorithm, job.Req.K)})
	o.journal.Record(obs.JournalEvent{Event: obs.EvPhaseStart, Phase: "anonymize"})

	res, resumed, err := m.execute(ctx, job, o)

	o.journal.Record(obs.JournalEvent{Event: obs.EvPhaseDone, Phase: "anonymize"})
	finalTrace := m.finishJobObs(job, o, true)
	if err == nil && job.Req.Trace && finalTrace != nil {
		res.Stats = finalTrace
	}

	job.mu.Lock()
	job.finished = time.Now()
	job.expires = job.finished.Add(m.cfg.ResultTTL)
	dur := job.finished.Sub(job.started)
	switch {
	case err == nil:
		job.state = StateSucceeded
		job.result = res
	case errors.Is(err, context.Canceled):
		job.state = StateCanceled
		job.err = err
	default:
		// Deadline exhaustion and instance errors both land here; the
		// error text tells them apart.
		job.state = StateFailed
		job.err = err
	}
	state := job.state
	job.mu.Unlock()
	// job.done stays open until the terminal bookkeeping below lands:
	// waiters see a fully committed job — counters bumped, journal
	// terminal event appended, result spooled, manifest flipped.
	defer close(job.done)

	m.running.Add(-1)
	m.jobDur.ObserveDuration(dur)
	switch state {
	case StateSucceeded:
		o.journal.Record(obs.JournalEvent{Event: obs.EvSucceeded,
			Detail: fmt.Sprintf("cost=%d", res.Cost)})
		m.succeeded.Inc()
		m.jobCost.Observe(int64(res.Cost))
		if resumed > 0 {
			m.blocksResumed.Add(int64(resumed))
			m.log(job, slog.LevelInfo, "job_blocks_resumed", slog.Int("blocks_resumed", resumed))
		}
		// Spool the release before flipping the manifest to succeeded,
		// so a succeeded manifest always has a readable result. If the
		// spool fails, the manifest stays "running" and the next
		// recovery re-runs the (deterministic) job.
		if m.cfg.Store != nil {
			if werr := m.cfg.Store.WriteResult(job.ID, res.Header, res.Rows); werr != nil {
				m.log(job, slog.LevelWarn, "job_persist_failed", slog.String("error", werr.Error()))
			} else {
				m.persist(job)
			}
		}
		m.log(job, slog.LevelInfo, "job_done", slog.Int("cost", res.Cost), slog.Duration("wall", dur),
			slog.Int("blocks_resumed", resumed))
	case StateCanceled:
		o.journal.Record(obs.JournalEvent{Event: obs.EvCanceled})
		m.canceled.Inc()
		m.persist(job)
		m.log(job, slog.LevelInfo, "job_canceled", slog.String("while", "running"), slog.Duration("wall", dur))
	default:
		o.journal.Record(obs.JournalEvent{Event: obs.EvFailed, Detail: err.Error()})
		m.failed.Inc()
		m.persist(job)
		m.log(job, slog.LevelWarn, "job_failed", slog.String("error", err.Error()), slog.Duration("wall", dur))
	}
}

// execute runs the job's anonymization under ctx: the facade for
// whole-table jobs, the bounded-memory stream pipeline for block jobs.
// The second return is how many stream blocks were replayed from the
// job's checkpoints instead of recomputed. o carries the run's
// observability: with a root span (store-backed runs) the compute
// attaches its phase tree there and checkpoints journal their commits
// and resumes; the release is byte-identical either way.
func (m *Manager) execute(ctx context.Context, job *Job, o jobObs) (*kanon.Result, int, error) {
	req := job.Req
	if req.BlockRows > 0 {
		var ckpt stream.Checkpoint
		if m.cfg.Store != nil {
			c, err := m.cfg.Store.Checkpoint(job.ID, job.header)
			if err != nil {
				return nil, 0, err
			}
			ckpt = &journalCheckpoint{inner: c, m: m, job: job, jr: o.journal}
		}
		return streamResult(ctx, job, ckpt, o.root)
	}
	opts := &kanon.Options{
		Algorithm:   req.Algorithm,
		Kernel:      req.Kernel,
		Seed:        req.Seed,
		Refine:      req.Refine,
		Workers:     req.Workers,
		Hierarchy:   req.HierarchySpec,
		MaxSuppress: req.MaxSuppress,
		Log:         m.cfg.Log,
	}
	if o.root != nil {
		opts.Span = o.root // per-job tracer; Stats come from its snapshot
	} else {
		opts.Trace = req.Trace
	}
	res, err := kanon.AnonymizeContext(ctx, job.header, job.rows, req.K, opts)
	return res, 0, err
}

// streamResult mirrors cmd/kanon's block path: anonymize in bounded
// blocks and adapt the stream result to the facade's Result shape. A
// non-nil checkpoint sink makes the pass durable and resumable: each
// finished block is spooled, and blocks a prior (crashed) run finished
// are replayed rather than recomputed — byte-identically, because block
// bounds and the per-block algorithm are deterministic.
func streamResult(ctx context.Context, job *Job, ckpt stream.Checkpoint, sp *obs.Span) (*kanon.Result, int, error) {
	t := relation.NewTable(relation.NewSchema(job.header...))
	for _, r := range job.rows {
		if err := t.AppendStrings(r...); err != nil {
			return nil, 0, err
		}
	}
	sr, err := stream.Anonymize(t, job.Req.K, &stream.Options{
		Ctx:        ctx,
		BlockRows:  job.Req.BlockRows,
		Refine:     job.Req.Refine,
		Workers:    job.Req.Workers,
		Kernel:     kernelChoice(job.Req.Kernel),
		Checkpoint: ckpt,
		Trace:      sp,
	})
	if err != nil {
		return nil, 0, err
	}
	out := make([][]string, sr.Anonymized.Len())
	for i := range out {
		out[i] = sr.Anonymized.Strings(i)
	}
	groups := core.FromAnonymized(sr.Anonymized)
	groups.Normalize()
	return &kanon.Result{
		K:      job.Req.K,
		Header: append([]string(nil), job.header...),
		Rows:   out,
		Groups: groups.Groups,
		Cost:   sr.Cost,
	}, sr.BlocksResumed, nil
}

// kernelChoice maps the public kernel enum to the internal choice the
// stream layer takes; the facade does this conversion itself on the
// non-stream path. Kernel names parse by construction.
func kernelChoice(k kanon.Kernel) metric.Choice {
	c, err := metric.ParseChoice(k.String())
	if err != nil {
		return metric.Auto
	}
	return c
}

// janitor evicts terminal jobs whose result TTL has expired.
func (m *Manager) janitor() {
	defer close(m.janitorDone)
	interval := m.cfg.ResultTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case now := <-tick.C:
			m.evictExpired(now)
		}
	}
}

// evictExpired removes terminal jobs past their expiry. The disk side
// goes through ReapTerminal, which re-checks the manifest under the
// per-job mutation lock before deleting: reaping and claiming (or a
// recovery read) serialize on the same lock, so a janitor whose view
// of a job races a concurrent claim — the manifest-mtime race — can no
// longer delete live work, it simply finds the job non-terminal and
// leaves it alone.
func (m *Manager) evictExpired(now time.Time) {
	m.mu.Lock()
	var evicted []*Job
	for id, j := range m.jobs {
		j.mu.Lock()
		gone := j.state.Terminal() && !j.expires.IsZero() && now.After(j.expires)
		j.mu.Unlock()
		if gone {
			delete(m.jobs, id)
			if key := j.Req.IdempotencyKey; key != "" && m.idem[key] == id {
				delete(m.idem, key)
			}
			evicted = append(evicted, j)
		}
	}
	m.mu.Unlock()
	for _, j := range evicted {
		m.expired.Inc()
		if m.cfg.Store != nil {
			if _, err := m.cfg.Store.ReapTerminal(j.ID, now); err != nil {
				m.log(j, slog.LevelWarn, "job_reap_failed", slog.String("error", err.Error()))
			}
		}
		m.log(j, slog.LevelDebug, "job_expired")
	}
	if m.cfg.cluster() {
		// Cluster sweep: reap expired terminal jobs this node never held
		// in memory (finished by peers, possibly dead ones).
		m.reapClusterTerminal(now)
	}
}

// Shutdown stops admission, drains queued and running jobs until ctx
// expires, then cancels whatever is left and waits for the workers to
// exit. It returns ctx.Err() if the deadline forced cancellation, nil
// on a clean drain. Safe to call more than once.
//
// In cluster mode the drain covers only locally claimed jobs: the
// claim loop stops (no new claims), running jobs get the drain budget
// to finish, and any still running at the deadline are cancelled and
// released back to the shared queue — fenced, so the release cannot
// clobber a peer that already stole the lease. Locally submitted jobs
// still queued stay queued on disk for the rest of the cluster.
func (m *Manager) Shutdown(ctx context.Context) error {
	if m.cfg.cluster() {
		return m.shutdownCluster(ctx)
	}
	m.mu.Lock()
	first := !m.draining
	if first {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		m.workerWG.Wait()
		close(workersDone)
	}()
	var err error
	select {
	case <-workersDone:
	case <-ctx.Done():
		// Deadline: cancel the base context — running jobs abort at
		// their next context poll, and still-queued jobs are claimed
		// and immediately fail their (already cancelled) context.
		m.baseCancel()
		<-workersDone
		err = ctx.Err()
	}
	m.finalizeQueued()
	if first {
		close(m.janitorStop)
	}
	<-m.janitorDone
	m.baseCancel()
	return err
}

// shutdownCluster is Shutdown's cluster-mode body: stop claiming,
// drain locally running jobs, cancel-and-release the stragglers.
func (m *Manager) shutdownCluster(ctx context.Context) error {
	m.mu.Lock()
	first := !m.draining
	if first {
		m.draining = true
		close(m.claimStop)
	}
	m.mu.Unlock()
	<-m.claimDone

	runsDone := make(chan struct{})
	go func() {
		m.runWG.Wait()
		close(runsDone)
	}()
	var err error
	select {
	case <-runsDone:
	case <-ctx.Done():
		// Deadline: cancel the base context. Each running job unwinds at
		// its next context poll and, not being user-cancelled, is
		// released back to the shared queue for a peer to finish.
		m.baseCancel()
		<-runsDone
		err = ctx.Err()
	}
	if first {
		close(m.janitorStop)
	}
	<-m.janitorDone
	m.baseCancel()
	return err
}

// finalizeQueued marks any job still queued after the workers exited
// (possible when shutdown cancels the base context) as canceled, so no
// job is left in a non-terminal state.
func (m *Manager) finalizeQueued() {
	m.mu.Lock()
	var finalized []*Job
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCanceled
			j.err = context.Canceled
			j.finished = time.Now()
			j.expires = j.finished.Add(m.cfg.ResultTTL)
			close(j.done)
			m.canceled.Inc()
			finalized = append(finalized, j)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	for _, j := range finalized {
		m.persist(j)
	}
}

// Draining reports whether the manager has stopped admitting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// JobCounts returns the number of stored jobs and how many of them are
// queued or running — the /healthz payload.
func (m *Manager) JobCounts() (total, active int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.state.Terminal() {
			active++
		}
		j.mu.Unlock()
	}
	return len(m.jobs), active
}

// Health is the /healthz payload: liveness plus the capacity picture a
// front-end router balances on. Jobs/Active count this node's in-memory
// jobs (the legacy payload); Capacity/Free/Running describe this node's
// worker pool; Queued/Claimed are the cluster-wide backlog read from
// the shared store (zero outside cluster mode, where Queued falls back
// to the local queue depth).
type Health struct {
	Status string `json:"status"`
	Node   string `json:"node,omitempty"`
	// Version is the node's build identity (module version, VCS
	// revision, Go toolchain) so cluster health surfaces mixed-version
	// deployments.
	Version  string `json:"version,omitempty"`
	Jobs     int    `json:"jobs"`
	Active   int    `json:"active"`
	Capacity int    `json:"capacity"`
	Free     int    `json:"free"`
	Running  int    `json:"running"`
	Queued   int    `json:"queued"`
	Claimed  int    `json:"claimed"`
}

// buildVersion is the process's build identity, read once — ReadBuild
// walks the embedded build info on every call.
var buildVersion = obs.ReadBuild().String()

// Health snapshots the node for /healthz.
func (m *Manager) Health() Health {
	total, active := m.JobCounts()
	h := Health{Status: "ok", Version: buildVersion, Jobs: total, Active: active, Capacity: m.cfg.Workers}
	if m.Draining() {
		h.Status = "draining"
	}
	if m.cfg.cluster() {
		h.Node = m.cfg.NodeID
		h.Free = len(m.slots)
		m.mu.Lock()
		h.Running = len(m.runningLocal)
		m.mu.Unlock()
		h.Queued, h.Claimed = m.ClusterDepths()
		return h
	}
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateRunning:
			h.Running++
		case StateQueued:
			h.Queued++
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	h.Free = max(0, h.Capacity-h.Running)
	return h
}

// log emits one job lifecycle event with the job ID as run_id.
func (m *Manager) log(j *Job, level slog.Level, msg string, attrs ...slog.Attr) {
	if m.cfg.Log == nil {
		return
	}
	attrs = append([]slog.Attr{slog.String("run_id", j.ID)}, attrs...)
	m.cfg.Log.LogAttrs(context.Background(), level, msg, attrs...)
}
