// Cluster mode: lease-based job claiming over a shared store.
//
// When Config carries both a Store and a NodeID, the manager stops
// dispatching through its in-memory channel and instead runs a claim
// loop against the store: the on-disk manifests ARE the queue, and N
// kanond processes sharing the data directory drain it together. Each
// node claims the oldest claimable job (queued, or running with an
// expired lease — crash-failover work stealing), runs it under a lease
// it renews at TTL/3, and commits every persisted transition through
// the store's fenced operations, so a node that lost its lease can
// never clobber the new owner's state. Stolen stream jobs resume from
// the dead node's committed block checkpoints, byte-identically —
// block bounds and per-block algorithms are deterministic, so the
// release never depends on which node (or how many, across a steal)
// computed it.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"kanon"
	"kanon/internal/obs"
	"kanon/internal/store"
)

// cluster reports whether the config puts the manager in cluster mode.
func (c Config) cluster() bool { return c.Store != nil && c.NodeID != "" }

// pokeClaim nudges the claim loop without blocking — called after a
// local submission and after a slot frees, so claims happen at those
// edges instead of waiting out the poll interval.
func (m *Manager) pokeClaim() {
	select {
	case m.claimPoke <- struct{}{}:
	default:
	}
}

// claimLoop is the cluster-mode dispatcher: one goroutine per node that
// claims work whenever a slot is free and the store has claimable jobs.
// It wakes on submissions (poke), freed slots (poke), and a ticker that
// bounds how long a foreign job — or an expired lease left by a crashed
// peer — can wait for this node to notice it.
func (m *Manager) claimLoop() {
	defer close(m.claimDone)
	tick := time.NewTicker(m.cfg.ClaimInterval)
	defer tick.Stop()
	for {
		m.claimAvailable()
		select {
		case <-m.claimStop:
			return
		case <-m.claimPoke:
		case <-tick.C:
		}
	}
}

// claimAvailable claims and launches jobs while this node has free
// worker slots and the store has claimable work.
func (m *Manager) claimAvailable() {
	for {
		select {
		case <-m.slots:
		default:
			return // all workers busy
		}
		job, man, stolen := m.claimOne()
		if job == nil {
			m.slots <- struct{}{}
			return
		}
		m.mu.Lock()
		m.runningLocal[job.ID] = true
		m.mu.Unlock()
		m.runWG.Add(1)
		go func() {
			defer func() {
				m.mu.Lock()
				delete(m.runningLocal, job.ID)
				m.mu.Unlock()
				m.slots <- struct{}{}
				m.runWG.Done()
				m.pokeClaim()
			}()
			m.runClaimed(job, man, stolen)
		}()
	}
}

// claimOne scans the store oldest-submission-first and claims the first
// claimable job: queued, or running with an expired (or absent) lease.
// Jobs already running on this node are skipped — a node never steals
// from itself; its own renewal loop arbitrates its leases.
func (m *Manager) claimOne() (*Job, *store.Manifest, bool) {
	manifests, _, err := m.cfg.Store.Jobs()
	if err != nil {
		m.logBare(slog.LevelWarn, "claim_scan_failed", slog.String("error", err.Error()))
		return nil, nil, false
	}
	now := time.Now()
	for _, man := range manifests {
		if !man.Recoverable() {
			continue
		}
		if man.State == store.StateRunning && man.Claim != nil && now.Before(man.Claim.Expires) {
			continue // live lease elsewhere
		}
		m.mu.Lock()
		mine := m.runningLocal[man.ID]
		m.mu.Unlock()
		if mine {
			continue
		}
		claimed, stolen, err := m.cfg.Store.ClaimJob(man.ID, m.cfg.NodeID, m.cfg.LeaseTTL, now)
		if err != nil {
			continue // lost the race, job reaped, or store hiccup — move on
		}
		if stolen {
			// Journal the failover edge: whose lease lapsed, who took over.
			// The pre-claim manifest names the old owner; Record stamps the
			// stolen event with this node.
			oldNode := man.Node
			if man.Claim != nil {
				oldNode = man.Claim.Node
			}
			jr := m.journal(man.ID)
			jr.Record(obs.JournalEvent{Event: obs.EvLeaseExpired, Node: oldNode, Fence: man.Fence})
			jr.Record(obs.JournalEvent{Event: obs.EvLeaseStolen, Fence: claimed.Fence,
				Detail: fmt.Sprintf("from %s", oldNode)})
		}
		if claimed.CancelRequested {
			// A cancellation landed while the job sat unclaimed; honor it
			// instead of running doomed work.
			m.finalizeClaimedCancel(man.ID, claimed.Fence, now)
			continue
		}
		job, err := m.adoptJob(claimed)
		if err != nil {
			// We hold the claim but cannot run the job (request spool
			// unreadable). Fail it durably rather than releasing it into
			// an endless claim/fail ping-pong across the cluster.
			m.failClaimOnDisk(claimed, err)
			continue
		}
		return job, claimed, stolen
	}
	return nil, nil, false
}

// adoptJob returns the in-memory job for a claimed manifest, building
// one from the request spool when the job was submitted on another node
// (or on a previous life of this one).
func (m *Manager) adoptJob(man *store.Manifest) (*Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[man.ID]
	m.mu.Unlock()
	if ok {
		return j, nil
	}
	header, rows, err := m.cfg.Store.ReadRequest(man.ID)
	if err != nil {
		return nil, err
	}
	req, err := requestFromManifest(man)
	if err != nil {
		return nil, err
	}
	j = &Job{
		ID:        man.ID,
		Req:       req,
		header:    header,
		rows:      rows,
		state:     StateQueued,
		submitted: man.SubmittedAt,
		done:      make(chan struct{}),
	}
	m.mu.Lock()
	m.jobs[man.ID] = j
	m.rememberIdem(j)
	m.mu.Unlock()
	return j, nil
}

// finalizeClaimedCancel commits a claimed-then-found-cancelled job to
// its terminal state, on disk and (if known locally) in memory.
func (m *Manager) finalizeClaimedCancel(id string, fence uint64, now time.Time) {
	_, err := m.cfg.Store.UpdateClaimed(id, m.cfg.NodeID, fence, func(sm *store.Manifest) error {
		sm.State = store.StateCanceled
		sm.Error = context.Canceled.Error()
		t := now
		sm.FinishedAt = &t
		return nil
	})
	if err != nil {
		m.logBare(slog.LevelWarn, "job_persist_failed",
			slog.String("run_id", id), slog.String("error", err.Error()))
		return
	}
	m.journal(id).Record(obs.JournalEvent{Event: obs.EvCanceled, Fence: fence,
		Detail: "cancel requested before the job ran"})
	m.canceled.Inc()
	if j, ok := m.Get(id); ok {
		j.mu.Lock()
		if !j.state.Terminal() {
			j.state = StateCanceled
			j.err = context.Canceled
			j.finished = now
			j.expires = now.Add(m.cfg.ResultTTL)
			close(j.done)
		}
		j.mu.Unlock()
		m.log(j, slog.LevelInfo, "job_canceled", slog.String("while", "queued"))
	}
}

// failClaimOnDisk marks a claimed-but-unrunnable job failed so it stops
// being claimable.
func (m *Manager) failClaimOnDisk(man *store.Manifest, cause error) {
	_, err := m.cfg.Store.UpdateClaimed(man.ID, m.cfg.NodeID, man.Fence, func(sm *store.Manifest) error {
		sm.State = store.StateFailed
		sm.Error = fmt.Sprintf("unrunnable on %s: %v", m.cfg.NodeID, cause)
		t := time.Now()
		sm.FinishedAt = &t
		return nil
	})
	if err != nil {
		m.logBare(slog.LevelWarn, "job_persist_failed",
			slog.String("run_id", man.ID), slog.String("error", err.Error()))
	}
	m.failed.Inc()
	m.logBare(slog.LevelWarn, "job_failed",
		slog.String("run_id", man.ID), slog.String("error", cause.Error()))
}

// runClaimed executes one claimed job end to end under its lease:
// in-memory transition, renewal ticker, the anonymization itself, and
// the fenced terminal commit. Every outcome that is not "we still own
// the lease and finished" degrades safely: a lost lease discards local
// state (the thief owns the job now), a drain deadline releases the
// job back to the queue for a peer to finish.
func (m *Manager) runClaimed(job *Job, man *store.Manifest, stolen bool) {
	fence := man.Fence
	job.mu.Lock()
	timeout := m.cfg.JobTimeout
	if job.Req.Timeout > 0 && job.Req.Timeout < timeout {
		timeout = job.Req.Timeout
	}
	ctx, cancel := context.WithTimeout(m.baseCtx, timeout)
	defer cancel()
	job.state = StateRunning
	job.started = time.Now()
	job.cancel = cancel
	job.fence = fence
	job.claimNode = m.cfg.NodeID
	wait := job.started.Sub(job.submitted)
	job.mu.Unlock()

	m.running.Add(1)
	defer m.running.Add(-1)
	m.queueWait.ObserveDuration(wait)
	m.leasesClaimed.Inc()
	if stolen {
		m.leasesStolen.Inc()
	}
	m.log(job, slog.LevelInfo, "lease_claimed",
		slog.Uint64("fence", fence), slog.Bool("stolen", stolen),
		slog.String("algo", job.Req.Algorithm.String()), slog.Int("k", job.Req.K))
	m.log(job, slog.LevelInfo, "job_started", slog.Duration("queue_wait", wait))
	o := m.startJobObs(job)
	o.journal.Record(obs.JournalEvent{Event: obs.EvClaimed, Fence: fence,
		Detail: fmt.Sprintf("algo=%s k=%d stolen=%t", job.Req.Algorithm, job.Req.K, stolen)})
	o.journal.Record(obs.JournalEvent{Event: obs.EvPhaseStart, Phase: "anonymize"})

	var lost, userCancel atomic.Bool
	renewStop := make(chan struct{})
	renewDone := make(chan struct{})
	go m.renewLoop(job, fence, cancel, &lost, &userCancel, renewStop, renewDone)

	res, resumed, err := m.execute(ctx, job, o)
	close(renewStop)
	<-renewDone

	o.journal.Record(obs.JournalEvent{Event: obs.EvPhaseDone, Phase: "anonymize"})
	// Persist the final timeline only while the lease looks ours: after a
	// loss the thief owns trace.json, and a late flush would overwrite
	// its fuller view. (A commit below can still discover a loss after
	// this flush — the thief's next flush repairs the file; the journal,
	// being append-only, never has this race.)
	finalTrace := m.finishJobObs(job, o, !lost.Load())
	if err == nil && job.Req.Trace && finalTrace != nil {
		res.Stats = finalTrace
	}

	job.mu.Lock()
	userCanceled := job.userCanceled || userCancel.Load()
	job.mu.Unlock()

	switch {
	case err == nil:
		m.commitClaimedSuccess(job, fence, res, resumed, &lost)
	case errors.Is(err, context.Canceled) && lost.Load():
		m.abandonLost(job)
	case errors.Is(err, context.Canceled) && !userCanceled:
		// Shutdown drain deadline: hand the job back to the cluster.
		m.releaseClaimed(job, fence)
	case errors.Is(err, context.Canceled):
		m.commitClaimedTerminal(job, fence, StateCanceled, err, &lost)
		if !lost.Load() {
			m.canceled.Inc()
			m.log(job, slog.LevelInfo, "job_canceled", slog.String("while", "running"))
		}
	default:
		// Deadline exhaustion and instance errors both land here; the
		// error text tells them apart.
		m.commitClaimedTerminal(job, fence, StateFailed, err, &lost)
		if !lost.Load() {
			m.failed.Inc()
			m.log(job, slog.LevelWarn, "job_failed", slog.String("error", err.Error()))
		}
	}
}

// renewLoop extends the job's lease at TTL/3 until stopped. A fenced
// renewal means the lease was stolen: the loop flags the loss and
// cancels the run so the stale node stops burning CPU on work it no
// longer owns. Renewals also carry back cross-node cancellation
// requests. Transient store errors are logged and retried — the lease
// survives until its deadline, so one slow fsync does not forfeit it.
func (m *Manager) renewLoop(job *Job, fence uint64, cancel context.CancelFunc, lost, userCancel *atomic.Bool, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	interval := m.cfg.LeaseTTL / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		man, err := m.cfg.Store.RenewLease(job.ID, m.cfg.NodeID, fence, m.cfg.LeaseTTL, time.Now())
		if errors.Is(err, store.ErrFenced) {
			lost.Store(true)
			m.leasesLost.Inc()
			m.journal(job.ID).Record(obs.JournalEvent{Event: obs.EvLeaseLost, Fence: fence})
			m.log(job, slog.LevelWarn, "lease_lost", slog.Uint64("fence", fence))
			cancel()
			return
		}
		if err != nil {
			m.log(job, slog.LevelWarn, "lease_renew_failed", slog.String("error", err.Error()))
			continue
		}
		m.leasesRenewed.Inc()
		m.journal(job.ID).Record(obs.JournalEvent{Event: obs.EvLeaseRenewed, Fence: fence})
		if man.CancelRequested && !userCancel.Load() {
			userCancel.Store(true)
			m.journal(job.ID).Record(obs.JournalEvent{Event: obs.EvCancelRequested, Fence: fence})
			m.log(job, slog.LevelInfo, "job_cancel_requested", slog.String("while", "running"))
			cancel()
			// Keep renewing: holding the lease through the unwind stops a
			// peer from stealing a job that is about to be cancelled.
		}
	}
}

// commitClaimedSuccess spools the result and flips the manifest to
// succeeded under the fence, then mirrors the outcome in memory. The
// result is spooled before the manifest flip (a succeeded manifest
// always has a readable result); a fenced commit downgrades the whole
// outcome to "lost" — the thief is authoritative now, and since jobs
// are deterministic its result is byte-identical to ours anyway.
func (m *Manager) commitClaimedSuccess(job *Job, fence uint64, res *kanon.Result, resumed int, lost *atomic.Bool) {
	if err := m.cfg.Store.WriteResult(job.ID, res.Header, res.Rows); err != nil {
		// Lease intact but the spool failed: leave the manifest running.
		// The lease expires, a node re-claims, and the deterministic job
		// re-runs — durability degraded to retry, not to a phantom result.
		m.log(job, slog.LevelWarn, "job_persist_failed", slog.String("error", err.Error()))
		m.abandonLost(job)
		return
	}
	now := time.Now()
	_, err := m.cfg.Store.UpdateClaimed(job.ID, m.cfg.NodeID, fence, func(sm *store.Manifest) error {
		sm.State = store.StateSucceeded
		c := res.Cost
		sm.Cost = &c
		t := now
		sm.FinishedAt = &t
		return nil
	})
	if errors.Is(err, store.ErrFenced) {
		lost.Store(true)
		m.leasesLost.Inc()
		m.journal(job.ID).Record(obs.JournalEvent{Event: obs.EvLeaseLost, Fence: fence})
		m.log(job, slog.LevelWarn, "lease_lost", slog.Uint64("fence", fence))
		m.abandonLost(job)
		return
	}
	if err != nil {
		m.log(job, slog.LevelWarn, "job_persist_failed", slog.String("error", err.Error()))
		m.abandonLost(job)
		return
	}
	m.journal(job.ID).Record(obs.JournalEvent{Event: obs.EvSucceeded, Fence: fence,
		Detail: fmt.Sprintf("cost=%d", res.Cost)})
	job.mu.Lock()
	job.state = StateSucceeded
	job.result = res
	job.finished = now
	job.expires = now.Add(m.cfg.ResultTTL)
	dur := job.finished.Sub(job.started)
	close(job.done)
	job.mu.Unlock()
	m.succeeded.Inc()
	m.jobDur.ObserveDuration(dur)
	m.jobCost.Observe(int64(res.Cost))
	if resumed > 0 {
		m.blocksResumed.Add(int64(resumed))
		m.log(job, slog.LevelInfo, "job_blocks_resumed", slog.Int("blocks_resumed", resumed))
	}
	m.log(job, slog.LevelInfo, "job_done", slog.Int("cost", res.Cost), slog.Duration("wall", dur),
		slog.Int("blocks_resumed", resumed))
}

// commitClaimedTerminal commits a failed/canceled outcome under the
// fence and mirrors it in memory; a fenced commit becomes a loss.
func (m *Manager) commitClaimedTerminal(job *Job, fence uint64, state State, cause error, lost *atomic.Bool) {
	now := time.Now()
	_, err := m.cfg.Store.UpdateClaimed(job.ID, m.cfg.NodeID, fence, func(sm *store.Manifest) error {
		sm.State = string(state)
		sm.Error = cause.Error()
		t := now
		sm.FinishedAt = &t
		return nil
	})
	if errors.Is(err, store.ErrFenced) {
		lost.Store(true)
		m.leasesLost.Inc()
		m.journal(job.ID).Record(obs.JournalEvent{Event: obs.EvLeaseLost, Fence: fence})
		m.log(job, slog.LevelWarn, "lease_lost", slog.Uint64("fence", fence))
		m.abandonLost(job)
		return
	}
	if err != nil {
		m.log(job, slog.LevelWarn, "job_persist_failed", slog.String("error", err.Error()))
	}
	terminalEv := obs.EvFailed
	if state == StateCanceled {
		terminalEv = obs.EvCanceled
	}
	m.journal(job.ID).Record(obs.JournalEvent{Event: terminalEv, Fence: fence, Detail: cause.Error()})
	job.mu.Lock()
	job.state = state
	job.err = cause
	job.finished = now
	job.expires = now.Add(m.cfg.ResultTTL)
	dur := job.finished.Sub(job.started)
	close(job.done)
	job.mu.Unlock()
	m.jobDur.ObserveDuration(dur)
}

// abandonLost resets the local view of a job whose lease this node no
// longer holds: in memory it goes back to queued (the new owner's
// manifest is authoritative, and StatusOf reads through to it), nothing
// is written to disk, and the done channel stays open — the job is not
// finished, it is just no longer ours.
func (m *Manager) abandonLost(job *Job) {
	job.mu.Lock()
	job.state = StateQueued
	job.started = time.Time{}
	job.cancel = nil
	job.claimNode = ""
	job.mu.Unlock()
	m.log(job, slog.LevelInfo, "job_abandoned")
}

// releaseClaimed hands a job this node cannot finish (shutdown drain
// deadline) back to the cluster: state queued, claim cleared, fenced so
// the release cannot clobber a faster thief.
func (m *Manager) releaseClaimed(job *Job, fence uint64) {
	_, err := m.cfg.Store.ReleaseJob(job.ID, m.cfg.NodeID, fence)
	switch {
	case errors.Is(err, store.ErrFenced):
		m.leasesLost.Inc()
		m.journal(job.ID).Record(obs.JournalEvent{Event: obs.EvLeaseLost, Fence: fence})
		m.log(job, slog.LevelWarn, "lease_lost", slog.Uint64("fence", fence))
	case err != nil:
		m.log(job, slog.LevelWarn, "job_persist_failed", slog.String("error", err.Error()))
	default:
		m.leasesReleased.Inc()
		m.journal(job.ID).Record(obs.JournalEvent{Event: obs.EvLeaseReleased, Fence: fence,
			Detail: "drain: released back to the queue"})
		m.log(job, slog.LevelInfo, "lease_released", slog.Uint64("fence", fence))
	}
	m.abandonLost(job)
}

// submitCluster is Submit's cluster-mode tail: admission against the
// store-wide queue depth, durable enqueue, and a poke at the claim
// loop. The manifest on disk is the queue entry; no channel is fed.
func (m *Manager) submitCluster(job *Job) (*Job, error) {
	if depth := m.storeQueuedDepth(); depth >= m.cfg.QueueCapacity {
		m.rejected.Inc()
		return nil, fmt.Errorf("%w (cluster backlog %d)", ErrQueueFull, depth)
	}
	if err := m.cfg.Store.CreateJob(job.manifest(), job.header, job.rows); err != nil {
		m.rejected.Inc()
		m.log(job, slog.LevelWarn, "job_persist_failed", slog.String("error", err.Error()))
		return nil, fmt.Errorf("%w: %v", ErrStore, err)
	}
	m.journal(job.ID).Record(obs.JournalEvent{Event: obs.EvSubmitted,
		Detail: fmt.Sprintf("algo=%s k=%d rows=%d", job.Req.Algorithm, job.Req.K, len(job.rows))})
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.rejected.Inc()
		if err := m.cfg.Store.Delete(job.ID); err != nil {
			m.log(job, slog.LevelWarn, "job_reap_failed", slog.String("error", err.Error()))
		}
		return nil, ErrDraining
	}
	m.jobs[job.ID] = job
	m.mu.Unlock()
	m.submitted.Inc()
	m.log(job, slog.LevelInfo, "job_queued",
		slog.Int("k", job.Req.K), slog.String("algo", job.Req.Algorithm.String()),
		slog.Int("rows", len(job.rows)), slog.Int("cols", len(job.header)))
	m.pokeClaim()
	return job, nil
}

// storeQueuedDepth counts queued manifests across the cluster — the
// shared backlog admission control measures against.
func (m *Manager) storeQueuedDepth() int {
	manifests, _, err := m.cfg.Store.Jobs()
	if err != nil {
		return 0 // admission stays open if the scan hiccups; Submit's persist will fail loudly instead
	}
	n := 0
	for _, man := range manifests {
		if man.State == store.StateQueued {
			n++
		}
	}
	return n
}

// ClusterDepths scans the store for the cluster-wide queue picture:
// queued (unclaimed backlog) and claimed (running under a live or
// expired lease, anywhere). Zero values outside cluster mode.
func (m *Manager) ClusterDepths() (queued, claimed int) {
	if !m.cfg.cluster() {
		return 0, 0
	}
	manifests, _, err := m.cfg.Store.Jobs()
	if err != nil {
		return 0, 0
	}
	for _, man := range manifests {
		switch man.State {
		case store.StateQueued:
			queued++
		case store.StateRunning:
			claimed++
		}
	}
	return queued, claimed
}

// StatusOf resolves a job's status with cluster read-through: a local
// job answers from memory, but a non-terminal local view is checked
// against the manifest (the job may have been claimed, finished, or
// cancelled by another node); unknown IDs fall back to the store
// entirely, so any node can answer for any job in the cluster.
func (m *Manager) StatusOf(id string) (Status, bool) {
	j, ok := m.Get(id)
	if ok {
		st := j.Status()
		if m.cfg.cluster() && !st.State.Terminal() {
			if man, err := m.cfg.Store.ReadManifest(id); err == nil && string(st.State) != man.State {
				return statusFromManifest(man), true
			}
		}
		return st, true
	}
	if m.cfg.cluster() {
		if man, err := m.cfg.Store.ReadManifest(id); err == nil {
			return statusFromManifest(man), true
		}
	}
	return Status{}, false
}

// ResultBytes resolves a succeeded job's release with cluster
// read-through: from the local result when this node ran the job, else
// from the store's result spool (succeeded manifests always have one).
func (m *Manager) ResultBytes(id string) (header []string, rows [][]string, err error) {
	if j, ok := m.Get(id); ok {
		if res, ok := j.Result(); ok {
			return res.Header, res.Rows, nil
		}
	}
	if m.cfg.cluster() {
		return m.cfg.Store.ReadResult(id)
	}
	return nil, nil, errUnknownJob
}

// CancelByID requests cancellation with cluster semantics: a job
// running on this node is cancelled directly; anything else goes
// through the store, which cancels queued jobs on the spot and flags
// running ones for their lease holder to notice at the next renewal.
// Outside cluster mode it defers to the legacy in-memory path.
func (m *Manager) CancelByID(id string) (Status, bool) {
	if !m.cfg.cluster() {
		j, ok := m.Cancel(id)
		if !ok {
			return Status{}, false
		}
		return j.Status(), true
	}
	if j, ok := m.Get(id); ok {
		j.mu.Lock()
		if j.state == StateRunning && j.cancel != nil && j.claimNode == m.cfg.NodeID {
			j.userCanceled = true
			cancel := j.cancel
			j.mu.Unlock()
			cancel()
			m.journal(j.ID).Record(obs.JournalEvent{Event: obs.EvCancelRequested})
			m.log(j, slog.LevelInfo, "job_cancel_requested", slog.String("while", "running"))
			return j.Status(), true
		}
		j.mu.Unlock()
	}
	man, err := m.cfg.Store.RequestCancel(id, context.Canceled.Error(), time.Now())
	if err != nil {
		return Status{}, false
	}
	if man.State != store.StateCanceled {
		m.journal(id).Record(obs.JournalEvent{Event: obs.EvCancelRequested,
			Detail: "flagged for the lease holder"})
	}
	if man.State == store.StateCanceled {
		m.journal(id).Record(obs.JournalEvent{Event: obs.EvCanceled, Detail: "while queued"})
		// Cancelled while queued: mirror it into the local copy, if any.
		if j, ok := m.Get(id); ok {
			j.mu.Lock()
			if !j.state.Terminal() {
				j.state = StateCanceled
				j.err = context.Canceled
				j.finished = time.Now()
				j.expires = j.finished.Add(m.cfg.ResultTTL)
				close(j.done)
			}
			j.mu.Unlock()
			m.canceled.Inc()
			m.log(j, slog.LevelInfo, "job_canceled", slog.String("while", "queued"))
		}
	}
	return m.statusAfterCancel(id, man), true
}

// statusAfterCancel prefers the local (possibly mid-unwind) view over
// the manifest snapshot RequestCancel returned.
func (m *Manager) statusAfterCancel(id string, man *store.Manifest) Status {
	if st, ok := m.StatusOf(id); ok {
		return st
	}
	return statusFromManifest(man)
}

// statusFromManifest renders a Status for a job this node never held
// in memory — the read-through path.
func statusFromManifest(man *store.Manifest) Status {
	st := Status{
		ID:          man.ID,
		State:       State(man.State),
		K:           man.K,
		Algo:        man.Algo,
		Kernel:      man.Kernel,
		Rows:        man.Rows,
		Cols:        man.Cols,
		Cost:        man.Cost,
		Error:       man.Error,
		SubmittedAt: man.SubmittedAt,
		StartedAt:   man.StartedAt,
		FinishedAt:  man.FinishedAt,
	}
	if man.Kernel == "" {
		st.Kernel = kanon.KernelAuto.String()
	}
	st.Node = man.Node
	if man.StartedAt != nil {
		st.QueueWaitMS = man.StartedAt.Sub(man.SubmittedAt).Milliseconds()
		if man.FinishedAt != nil {
			st.DurationMS = man.FinishedAt.Sub(*man.StartedAt).Milliseconds()
		}
	}
	return st
}

// reapClusterTerminal is the cluster janitor sweep: every node scans
// the shared store and reaps terminal jobs whose TTL has lapsed —
// including jobs finished by nodes that no longer exist. ReapTerminal
// re-checks state under the per-job lock, so a reap can never race a
// claim or a recovery read into deleting live work.
func (m *Manager) reapClusterTerminal(now time.Time) {
	manifests, _, err := m.cfg.Store.Jobs()
	if err != nil {
		return
	}
	cutoff := now.Add(-m.cfg.ResultTTL)
	for _, man := range manifests {
		if !man.Terminal() || man.FinishedAt == nil || man.FinishedAt.After(cutoff) {
			continue
		}
		reaped, err := m.cfg.Store.ReapTerminal(man.ID, cutoff)
		if err != nil {
			m.logBare(slog.LevelWarn, "job_reap_failed",
				slog.String("run_id", man.ID), slog.String("error", err.Error()))
			continue
		}
		if reaped {
			m.logBare(slog.LevelDebug, "job_reaped", slog.String("run_id", man.ID))
		}
	}
}

// logBare emits a structured event that is not tied to a local Job.
func (m *Manager) logBare(level slog.Level, msg string, attrs ...slog.Attr) {
	if m.cfg.Log == nil {
		return
	}
	m.cfg.Log.LogAttrs(context.Background(), level, msg, attrs...)
}
