package server

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kanon"
	"kanon/internal/dataset"
	"kanon/internal/relation"
	"kanon/internal/store"
)

// renderTable flattens a relation table into the header/rows shape the
// manager ingests.
func renderTable(t *relation.Table) (header []string, rows [][]string) {
	header = t.Schema().Names()
	rows = make([][]string, t.Len())
	for i := range rows {
		rows[i] = t.Strings(i)
	}
	return header, rows
}

func openTestStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

func shutdownManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestRecoverQueuedJob: a queued manifest left behind by a crash is
// re-admitted at startup and runs to the same release a live submission
// produces.
func TestRecoverQueuedJob(t *testing.T) {
	st := openTestStore(t)
	rng := rand.New(rand.NewSource(51))
	header, rows := renderTable(dataset.Census(rng, 60, 4))

	// Simulate the crash's leftovers directly: CreateJob is exactly what
	// a pre-crash Submit persisted.
	man := &store.Manifest{
		ID: "crashed-q", State: store.StateQueued, K: 3, Algo: "ball",
		Rows: len(rows), Cols: len(header), SubmittedAt: time.Now().UTC(),
	}
	if err := st.CreateJob(man, header, rows); err != nil {
		t.Fatal(err)
	}

	m := newTestManager(t, Config{Store: st, Recover: true})
	job, ok := m.Get("crashed-q")
	if !ok {
		t.Fatal("recovered job not in manager")
	}
	waitDone(t, job)
	res, ok := job.Result()
	if !ok {
		t.Fatalf("recovered job did not succeed: %+v", job.Status())
	}
	if got := m.Snapshot().Counters["server.jobs_recovered"]; got != 1 {
		t.Errorf("jobs_recovered = %d, want 1", got)
	}

	direct, err := kanon.Anonymize(header, rows, 3, &kanon.Options{Algorithm: kanon.AlgoGreedyBall})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != direct.Cost || len(res.Rows) != len(direct.Rows) {
		t.Fatalf("recovered run cost/rows %d/%d, direct %d/%d", res.Cost, len(res.Rows), direct.Cost, len(direct.Rows))
	}
	for i := range direct.Rows {
		for j := range direct.Rows[i] {
			if res.Rows[i][j] != direct.Rows[i][j] {
				t.Fatalf("cell (%d,%d): %q, want %q", i, j, res.Rows[i][j], direct.Rows[i][j])
			}
		}
	}
}

// TestRecoverCrashedStreamJob: a stream job that crashed mid-run
// restarts from its surviving block checkpoints — the completed blocks
// are replayed (counted by server.blocks_resumed), and the release is
// byte-identical to the uninterrupted run.
func TestRecoverCrashedStreamJob(t *testing.T) {
	st := openTestStore(t)
	rng := rand.New(rand.NewSource(52))
	header, rows := renderTable(dataset.Census(rng, 120, 4))

	// The uninterrupted run, for both the byte-identity baseline and a
	// fully populated checkpoint directory.
	m1 := NewManager(Config{Store: st, JobTimeout: time.Minute, ResultTTL: time.Hour})
	job1, err := m1.Submit(header, rows, JobRequest{K: 3, Algorithm: kanon.AlgoGreedyBall, BlockRows: 30})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job1)
	want, ok := job1.Result()
	if !ok {
		t.Fatalf("baseline job failed: %+v", job1.Status())
	}
	shutdownManager(t, m1)

	// Rewind the disk to "crashed mid-run": manifest back to running,
	// result spool gone, only the first two block checkpoints surviving.
	man, err := st.ReadManifest(job1.ID)
	if err != nil {
		t.Fatal(err)
	}
	man.State = store.StateRunning
	man.Cost = nil
	man.FinishedAt = nil
	if err := st.WriteManifest(man); err != nil {
		t.Fatal(err)
	}
	jobDir := filepath.Join(st.Dir(), "jobs", job1.ID)
	if err := os.Remove(filepath.Join(jobDir, "result.csv")); err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(jobDir, "checkpoints")
	entries, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, e := range entries {
		// Keep blocks [0,30) and [30,60); drop the rest (both spool files,
		// so the surviving set is internally consistent).
		lo := e.Name()[len("block-") : len("block-")+9]
		if lo != "000000000" && lo != "000000030" {
			if err := os.Remove(filepath.Join(ckptDir, e.Name())); err != nil {
				t.Fatal(err)
			}
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("no checkpoints removed; crash simulation is vacuous")
	}

	m2 := newTestManager(t, Config{Store: st, Recover: true, ResultTTL: time.Hour})
	job2, ok := m2.Get(job1.ID)
	if !ok {
		t.Fatal("crashed job not recovered")
	}
	waitDone(t, job2)
	got, ok := job2.Result()
	if !ok {
		t.Fatalf("recovered job failed: %+v", job2.Status())
	}
	if got.Cost != want.Cost {
		t.Fatalf("resumed cost %d, want %d", got.Cost, want.Cost)
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("cell (%d,%d): %q, want %q", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	snap := m2.Snapshot()
	if snap.Counters["server.blocks_resumed"] != 2 {
		t.Errorf("blocks_resumed = %d, want 2", snap.Counters["server.blocks_resumed"])
	}
	if snap.Counters["server.jobs_recovered"] != 1 {
		t.Errorf("jobs_recovered = %d, want 1", snap.Counters["server.jobs_recovered"])
	}
}

// TestTerminalJobsSurviveRestart: succeeded and failed manifests are
// reloaded read-only — status and results stay retrievable without
// re-running anything.
func TestTerminalJobsSurviveRestart(t *testing.T) {
	st := openTestStore(t)
	rng := rand.New(rand.NewSource(53))
	header, rows := renderTable(dataset.Census(rng, 40, 4))

	m1 := NewManager(Config{Store: st, JobTimeout: time.Minute, ResultTTL: time.Hour})
	job, err := m1.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	want, ok := job.Result()
	if !ok {
		t.Fatalf("job failed: %+v", job.Status())
	}
	shutdownManager(t, m1)

	// A failed job alongside it, injected as a crashed process would have
	// left it.
	fman := &store.Manifest{
		ID: "failed-1", State: store.StateFailed, K: 2, Algo: "ball",
		Rows: len(rows), Cols: len(header), Error: "deadline exceeded",
		SubmittedAt: time.Now().UTC(),
	}
	fin := time.Now().UTC()
	fman.FinishedAt = &fin
	if err := st.CreateJob(fman, header, rows); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Config{Store: st, Recover: true, ResultTTL: time.Hour})
	re, ok := m2.Get(job.ID)
	if !ok {
		t.Fatal("succeeded job gone after restart")
	}
	status := re.Status()
	if status.State != StateSucceeded || status.Cost == nil || *status.Cost != want.Cost {
		t.Fatalf("reloaded status %+v, want succeeded with cost %d", status, want.Cost)
	}
	if status.Rows != len(rows) || status.Cols != len(header) {
		t.Errorf("reloaded shape %dx%d, want %dx%d", status.Rows, status.Cols, len(rows), len(header))
	}
	res, ok := re.Result()
	if !ok || len(res.Rows) != len(want.Rows) {
		t.Fatalf("reloaded result unavailable or truncated")
	}
	fre, ok := m2.Get("failed-1")
	if !ok {
		t.Fatal("failed job gone after restart")
	}
	if s := fre.Status(); s.State != StateFailed || s.Error != "deadline exceeded" {
		t.Fatalf("failed job status %+v", s)
	}
	// Recovered terminal jobs must not be re-run or re-counted.
	if got := m2.Snapshot().Counters["server.jobs_recovered"]; got != 0 {
		t.Errorf("jobs_recovered = %d, want 0", got)
	}
}

// TestRecoverDisabled: with Recover off, the store persists but nothing
// is re-admitted.
func TestRecoverDisabled(t *testing.T) {
	st := openTestStore(t)
	rng := rand.New(rand.NewSource(54))
	header, rows := renderTable(dataset.Census(rng, 20, 3))
	man := &store.Manifest{
		ID: "orphan", State: store.StateQueued, K: 2, Algo: "ball",
		Rows: len(rows), Cols: len(header), SubmittedAt: time.Now().UTC(),
	}
	if err := st.CreateJob(man, header, rows); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Config{Store: st, Recover: false})
	if _, ok := m.Get("orphan"); ok {
		t.Error("job recovered with Recover: false")
	}
}

// TestLifecyclePersisted: every state transition lands on disk — the
// manifest tracks queued → running → succeeded, and a successful job's
// result spool is readable and matches what the API serves.
func TestLifecyclePersisted(t *testing.T) {
	st := openTestStore(t)
	rng := rand.New(rand.NewSource(55))
	header, rows := renderTable(dataset.Census(rng, 30, 3))

	m := newTestManager(t, Config{Store: st, ResultTTL: time.Hour})
	job, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	res, ok := job.Result()
	if !ok {
		t.Fatalf("job failed: %+v", job.Status())
	}

	man, err := st.ReadManifest(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if man.State != store.StateSucceeded {
		t.Errorf("persisted state %q", man.State)
	}
	if man.Cost == nil || *man.Cost != res.Cost {
		t.Errorf("persisted cost %v, want %d", man.Cost, res.Cost)
	}
	if man.StartedAt == nil || man.FinishedAt == nil {
		t.Errorf("persisted timestamps missing: %+v", man)
	}
	_, spooled, err := st.ReadResult(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(spooled) != len(res.Rows) {
		t.Fatalf("spooled %d rows, served %d", len(spooled), len(res.Rows))
	}
	for i := range res.Rows {
		for j := range res.Rows[i] {
			if spooled[i][j] != res.Rows[i][j] {
				t.Fatalf("spooled cell (%d,%d): %q, want %q", i, j, spooled[i][j], res.Rows[i][j])
			}
		}
	}
}

// TestJanitorReapsDirectories: once a terminal job's TTL expires, its
// directory is deleted along with its in-memory record.
func TestJanitorReapsDirectories(t *testing.T) {
	st := openTestStore(t)
	rng := rand.New(rand.NewSource(56))
	header, rows := renderTable(dataset.Census(rng, 20, 3))

	m := newTestManager(t, Config{Store: st, ResultTTL: 40 * time.Millisecond})
	job, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)

	dir := filepath.Join(st.Dir(), "jobs", job.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, inMem := m.Get(job.ID)
		_, statErr := os.Stat(dir)
		if !inMem && os.IsNotExist(statErr) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not reaped: in-memory=%v, dir err=%v", inMem, statErr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
