// Per-job observability: the durable lifecycle journal and the
// persisted trace timeline.
//
// With a Store attached, every job carries two artifacts next to its
// manifest. events.jsonl is the append-only journal: submitted,
// claimed, lease renewals/steals, checkpoint commits and resumes,
// phases, and the terminal event — each line stamped with the node that
// wrote it, so a stolen job's history names every node that touched it.
// trace.json is the job's span timeline, flushed at checkpoint commits
// and terminal transitions; each run captures the previously persisted
// segments ONCE at start (priorTrace) and merges its own live tracer in
// front of every flush, so a job that crossed nodes stitches into one
// wall-clock-ordered timeline without ever re-merging its own output.
// EventsOf and TraceOf read through the store like StatusOf, so any
// node answers for any job.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"

	"kanon/internal/obs"
	"kanon/internal/stream"
)

// journal returns the job's durable event sink — nil (disabled) without
// a store, so call sites never branch. Append failures degrade loudly:
// journaling is observability, it never fails the job.
func (m *Manager) journal(id string) *obs.Journal {
	if m.cfg.Store == nil {
		return nil
	}
	return obs.NewJournal(m.cfg.NodeID, func(line []byte) error {
		return m.cfg.Store.AppendJournal(id, line)
	}, func(err error) {
		m.logBare(slog.LevelWarn, "journal_append_failed",
			slog.String("run_id", id), slog.String("error", err.Error()))
	})
}

// jobObs bundles the observability handles of one run: the root span of
// this node's trace segment and the job's journal. The zero value is
// fully disabled (nil-safe all the way down).
type jobObs struct {
	root    *obs.Span
	journal *obs.Journal
}

// startJobObs opens a run's observability: a fresh per-job tracer whose
// root span names this node ("job@node-a", or "job" single-node), and a
// one-time capture of any previously persisted trace segments. The
// capture happens once, here, so later flushes merge prior + live and
// never fold an earlier flush of this same run back into itself.
func (m *Manager) startJobObs(job *Job) jobObs {
	o := jobObs{journal: m.journal(job.ID)}
	if m.cfg.Store == nil {
		return o
	}
	name := "job"
	if m.cfg.NodeID != "" {
		name = "job@" + m.cfg.NodeID
	}
	tr := obs.New()
	o.root = tr.Start(name)
	var prior *obs.Snapshot
	if b, err := m.cfg.Store.ReadTrace(job.ID); err == nil && len(b) > 0 {
		var snap obs.Snapshot
		if json.Unmarshal(b, &snap) == nil {
			prior = &snap
		}
	}
	job.mu.Lock()
	job.tracer, job.priorTrace = tr, prior
	job.mu.Unlock()
	return o
}

// jobTraceSnapshot merges the job's prior persisted segments with its
// live tracer into one timeline; nil when the job has no tracer.
func (m *Manager) jobTraceSnapshot(job *Job) *obs.Snapshot {
	job.mu.Lock()
	tr, prior := job.tracer, job.priorTrace
	job.mu.Unlock()
	if tr == nil {
		return nil
	}
	snap := &obs.Snapshot{}
	snap.Merge(prior)
	snap.Merge(tr.Snapshot())
	return snap
}

// flushJobTrace persists the job's merged timeline — called at every
// checkpoint commit and at terminal transitions. Last write wins; each
// flush is a strictly fuller view of the same run.
func (m *Manager) flushJobTrace(job *Job) {
	snap := m.jobTraceSnapshot(job)
	if snap == nil || m.cfg.Store == nil {
		return
	}
	b, err := json.Marshal(snap)
	if err == nil {
		err = m.cfg.Store.WriteTrace(job.ID, b)
	}
	if err != nil {
		m.log(job, slog.LevelWarn, "trace_persist_failed", slog.String("error", err.Error()))
	}
}

// finishJobObs closes a run's observability: end the root span, flush
// the final timeline (unless the lease was lost — the thief owns
// trace.json now and a late flush would clobber its fuller view), and
// detach the tracer so TraceOf reads the persisted file from here on.
// Returns the final merged timeline (nil without a store).
func (m *Manager) finishJobObs(job *Job, o jobObs, persist bool) *obs.Snapshot {
	o.root.End()
	snap := m.jobTraceSnapshot(job)
	if persist {
		m.flushJobTrace(job)
	}
	job.mu.Lock()
	job.tracer, job.priorTrace = nil, nil
	job.mu.Unlock()
	return snap
}

// journalCheckpoint wraps the store-backed stream checkpoint with the
// journal and trace hooks: every committed block appends a
// checkpoint_committed event and flushes the trace (so a thief resuming
// from this block also inherits the timeline up to it), and every
// replayed block appends checkpoint_resumed — the durable record that a
// resume actually reused the dead node's work.
type journalCheckpoint struct {
	inner    stream.Checkpoint
	m        *Manager
	job      *Job
	jr       *obs.Journal
	resumed  int
	commited int
}

func (c *journalCheckpoint) Save(stat stream.BlockStat, rows [][]string) error {
	if err := c.inner.Save(stat, rows); err != nil {
		return err
	}
	c.commited++
	c.jr.Record(obs.JournalEvent{
		Event:  obs.EvCheckpointCommitted,
		Detail: fmt.Sprintf("block [%d,%d) cost=%d", stat.Lo, stat.Hi, stat.Cost),
	})
	c.m.flushJobTrace(c.job)
	return nil
}

func (c *journalCheckpoint) Load(lo, hi int) ([][]string, *stream.BlockStat, bool, error) {
	rows, stat, ok, err := c.inner.Load(lo, hi)
	if ok && err == nil {
		c.resumed++
		c.jr.Record(obs.JournalEvent{
			Event:  obs.EvCheckpointResumed,
			Detail: fmt.Sprintf("block [%d,%d)", lo, hi),
		})
	}
	return rows, stat, ok, err
}

// jobKnown reports whether the ID names a job this node can answer for:
// held in memory, or present in the shared store.
func (m *Manager) jobKnown(id string) bool {
	if _, ok := m.Get(id); ok {
		return true
	}
	if m.cfg.Store != nil {
		if _, err := m.cfg.Store.ReadManifest(id); err == nil {
			return true
		}
	}
	return false
}

// EventsOf returns the job's decoded journal, reading through the store
// like StatusOf so any node answers for any job. The second return is
// false for unknown IDs; a known job without a journal (no store, or
// nothing recorded yet) answers an empty list.
func (m *Manager) EventsOf(id string) ([]obs.JournalEvent, bool) {
	if !m.jobKnown(id) {
		return nil, false
	}
	if m.cfg.Store == nil {
		return nil, true
	}
	b, err := m.cfg.Store.ReadJournal(id)
	if err != nil {
		m.logBare(slog.LevelWarn, "journal_read_failed",
			slog.String("run_id", id), slog.String("error", err.Error()))
		return nil, true
	}
	events, err := obs.DecodeJournal(b)
	if err != nil {
		m.logBare(slog.LevelWarn, "journal_corrupt",
			slog.String("run_id", id), slog.String("error", err.Error()))
		return nil, true
	}
	return events, true
}

// TraceOf returns the job's merged span timeline: the live prior+tracer
// view while this node is running the job, the persisted trace.json
// otherwise. The second return is false for unknown IDs; a known job
// with no timeline yet answers an empty snapshot.
func (m *Manager) TraceOf(id string) (*obs.Snapshot, bool) {
	if j, ok := m.Get(id); ok {
		if snap := m.jobTraceSnapshot(j); snap != nil {
			return snap, true
		}
	}
	if !m.jobKnown(id) {
		return nil, false
	}
	if m.cfg.Store != nil {
		if b, err := m.cfg.Store.ReadTrace(id); err == nil && len(b) > 0 {
			var snap obs.Snapshot
			if err := json.Unmarshal(b, &snap); err == nil {
				return &snap, true
			}
			m.logBare(slog.LevelWarn, "trace_corrupt", slog.String("run_id", id))
		}
	}
	return &obs.Snapshot{}, true
}
