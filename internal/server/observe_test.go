package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"kanon"
	"kanon/internal/obs"
	"kanon/internal/store"
)

// getJSON fetches url and decodes the body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// eventIndex returns the position of the first event with the given
// name, or -1.
func eventIndex(events []obs.JournalEvent, name string) int {
	for i, e := range events {
		if e.Event == name {
			return i
		}
	}
	return -1
}

// TestJournalLifecycleSingleNode: a store-backed job's journal narrates
// the whole lifecycle in order — submitted, claimed, phase, checkpoint
// commits (block streaming), terminal — and both read APIs serve it.
func TestJournalLifecycleSingleNode(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Store: st})
	jobSt, _ := submit(t, ts, "k=2&block=2", sampleCSV)
	pollUntil(t, ts, jobSt.ID, 30e9, func(s Status) bool { return s.State == StateSucceeded })

	var events []obs.JournalEvent
	if code := getJSON(t, ts.URL+"/v1/jobs/"+jobSt.ID+"/events", &events); code != http.StatusOK {
		t.Fatalf("GET events: %d", code)
	}
	order := []string{
		obs.EvSubmitted, obs.EvClaimed, obs.EvPhaseStart,
		obs.EvCheckpointCommitted, obs.EvPhaseDone, obs.EvSucceeded,
	}
	last := -1
	for _, name := range order {
		i := eventIndex(events, name)
		if i < 0 {
			t.Fatalf("journal missing %q: %+v", name, events)
		}
		if i < last {
			t.Fatalf("journal out of order: %q at %d after index %d: %+v", name, i, last, events)
		}
		last = i
	}

	var snap obs.Snapshot
	if code := getJSON(t, ts.URL+"/v1/jobs/"+jobSt.ID+"/trace", &snap); code != http.StatusOK {
		t.Fatalf("GET trace: %d", code)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "job" {
		t.Fatalf("trace roots = %+v, want one root named job", snap.Spans)
	}
	if snap.Spans[0].WallNS == 0 || snap.Spans[0].DurNS <= 0 {
		t.Errorf("root span not wall-anchored or empty: %+v", snap.Spans[0])
	}

	// Unknown IDs are 404 on both endpoints.
	if code := getJSON(t, ts.URL+"/v1/jobs/nope/events", nil); code != http.StatusNotFound {
		t.Errorf("events for unknown job: %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope/trace", nil); code != http.StatusNotFound {
		t.Errorf("trace for unknown job: %d, want 404", code)
	}
}

// TestEventsWithoutStore: an in-memory server still answers both
// endpoints for known jobs — empty list, empty snapshot — rather than
// pretending the job does not exist.
func TestEventsWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	jobSt, _ := submit(t, ts, "k=2", sampleCSV)
	pollUntil(t, ts, jobSt.ID, 30e9, func(s Status) bool { return s.State == StateSucceeded })

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobSt.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body[:n])) != "[]" {
		t.Errorf("events without store: %d %q, want 200 []", resp.StatusCode, body[:n])
	}
	var snap obs.Snapshot
	if code := getJSON(t, ts.URL+"/v1/jobs/"+jobSt.ID+"/trace", &snap); code != http.StatusOK {
		t.Errorf("trace without store: %d, want 200", code)
	}
	if len(snap.Spans) != 0 {
		t.Errorf("trace without store has spans: %+v", snap.Spans)
	}
}

// TestCanceledJobJournalsTerminalEvent: cancellation lands in the
// journal as cancel_requested (or a direct canceled for queued jobs)
// followed by the canceled terminal event.
func TestCanceledJobJournalsTerminalEvent(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Config{Workers: 1, Store: st})
	job, err := m.Submit([]string{"a", "b", "c", "d"}, slowRows(), JobRequest{K: 2, Algorithm: kanon.AlgoExact})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, job.ID)
	if _, ok := m.CancelByID(job.ID); !ok {
		t.Fatal("cancel refused")
	}
	<-job.Done()
	events, ok := m.EventsOf(job.ID)
	if !ok {
		t.Fatal("EventsOf lost the job")
	}
	if eventIndex(events, obs.EvCanceled) < 0 {
		t.Fatalf("journal missing canceled event: %+v", events)
	}
}

// TestObservabilityPreservesReleaseBytes pins determinism: the same
// instance run with full journaling/trace persistence and with none
// releases cell-identical bytes — observability watches the compute, it
// never alters it.
func TestObservabilityPreservesReleaseBytes(t *testing.T) {
	header, rows, direct := smallInstance(t, 83)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Workers: 1},            // journaling off: no store
		{Workers: 1, Store: st}, // journaling + trace persistence on
	} {
		m := newTestManager(t, cfg)
		job, err := m.Submit(header, rows, JobRequest{K: 3, Algorithm: kanon.AlgoGreedyBall, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		<-job.Done()
		res, ok := job.Result()
		if !ok {
			t.Fatalf("job did not succeed: %+v", job.Status())
		}
		assertSameRelease(t, res.Header, res.Rows, direct)
	}
}

// slowRows builds the 22-row pairwise-distinct exact-solver instance
// from slowCSV as parsed rows.
func slowRows() [][]string {
	lines := strings.Split(strings.TrimSpace(slowCSV()), "\n")
	rows := make([][]string, 0, len(lines)-1)
	for _, l := range lines[1:] {
		rows = append(rows, strings.Split(l, ","))
	}
	return rows
}

// waitRunning polls the manager until the job reports running.
func waitRunning(t *testing.T, m *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := m.StatusOf(id); ok && st.State == StateRunning {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}
