package server

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"kanon"
)

// kernelCSV builds a deterministic clustered table for the kernel
// byte-identity runs.
func kernelCSV(n int) string {
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	b.WriteString("age,zip,dx\n")
	for i := 0; i < n; i++ {
		c := rng.Intn(6)
		fmt.Fprintf(&b, "%d,%d,d%d\n", 20+c*5+rng.Intn(2), 15200+c, c%3)
	}
	return b.String()
}

// runJob submits, waits for success, and returns the result bytes.
func runJob(t *testing.T, ts *httptest.Server, query, body string) ([]byte, Status) {
	t.Helper()
	st, resp := submit(t, ts, query, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("%s: submit status %d", query, resp.StatusCode)
	}
	done := pollUntil(t, ts, st.ID, 10e9, func(s Status) bool { return s.State.Terminal() })
	if done.State != StateSucceeded {
		t.Fatalf("%s: state %s, error %q", query, done.State, done.Error)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	got, _ := io.ReadAll(rr.Body)
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("%s: result status %d: %s", query, rr.StatusCode, got)
	}
	return got, done
}

// TestE2EKernelByteIdentity is the service half of the cross-kernel
// acceptance criterion: the same submission under kernel=dense,
// kernel=bitset, and kernel=auto returns byte-identical results, with
// tracing both off and on, for every algorithm the service runs and
// for the block-streaming path.
func TestE2EKernelByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	csv := kernelCSV(150)
	for _, base := range []string{
		"k=2",
		"k=2&algo=exhaustive",
		"k=2&algo=pattern",
		"k=2&algo=random&seed=7",
		"k=2&block=40",
	} {
		for _, trace := range []string{"", "&trace=true"} {
			dense, dst := runJob(t, ts, base+trace+"&kernel=dense", csv)
			bitset, bst := runJob(t, ts, base+trace+"&kernel=bitset", csv)
			auto, _ := runJob(t, ts, base+trace+"&kernel=auto", csv)
			if string(dense) != string(bitset) {
				t.Errorf("%s%s: dense and bitset results differ", base, trace)
			}
			if string(dense) != string(auto) {
				t.Errorf("%s%s: dense and auto results differ", base, trace)
			}
			if dst.Cost == nil || bst.Cost == nil || *dst.Cost != *bst.Cost {
				t.Errorf("%s%s: costs differ: %v vs %v", base, trace, dst.Cost, bst.Cost)
			}
			if dst.Kernel != "dense" || bst.Kernel != "bitset" {
				t.Errorf("%s%s: status kernels = %q, %q", base, trace, dst.Kernel, bst.Kernel)
			}
		}
	}
}

// TestKernelDefaultFromConfig pins the admission-time resolution: a
// submission without ?kernel= runs under the server's configured
// default, and the status reports the resolved choice.
func TestKernelDefaultFromConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Kernel: kanon.KernelBitset})
	_, st := runJob(t, ts, "k=2", sampleCSV)
	if st.Kernel != "bitset" {
		t.Errorf("status kernel = %q, want the configured bitset default", st.Kernel)
	}
}

func TestKernelParamRejected(t *testing.T) {
	if _, err := ParseJobRequest(url.Values{"k": {"2"}, "kernel": {"sparse"}}); err == nil {
		t.Error("accepted unknown kernel name")
	}
	req, err := ParseJobRequest(url.Values{"k": {"2"}, "kernel": {"dense"}})
	if err != nil {
		t.Fatal(err)
	}
	if !req.KernelSet || req.Kernel != kanon.KernelDense {
		t.Errorf("parsed request = %+v, want explicit dense", req)
	}
	req, err = ParseJobRequest(url.Values{"k": {"2"}})
	if err != nil {
		t.Fatal(err)
	}
	if req.KernelSet {
		t.Error("KernelSet true for a submission without ?kernel=")
	}
}

// TestKernelManifestRoundTrip pins the durability contract: the
// resolved kernel survives the manifest encode/decode cycle, and a
// legacy manifest without the field recovers as auto.
func TestKernelManifestRoundTrip(t *testing.T) {
	job := &Job{
		ID:  "job-roundtrip",
		Req: JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall, Kernel: kanon.KernelBitset, KernelSet: true},
	}
	man := job.manifest()
	if man.Kernel != "bitset" {
		t.Fatalf("manifest kernel = %q, want bitset", man.Kernel)
	}
	req, err := requestFromManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	if req.Kernel != kanon.KernelBitset || !req.KernelSet {
		t.Errorf("recovered request = %+v, want explicit bitset", req)
	}
	man.Kernel = "" // a manifest written before the field existed
	req, err = requestFromManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	if req.Kernel != kanon.KernelAuto {
		t.Errorf("legacy manifest recovered kernel %v, want auto", req.Kernel)
	}
}
