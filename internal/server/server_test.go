package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kanon"
	"kanon/internal/obs"
	"kanon/internal/relation"
)

const sampleCSV = "age,zip,dx\n34,15213,flu\n36,15213,flu\n34,15217,cold\n47,15217,cold\n"

// slowCSV is an instance the exact solver chews on for seconds: 22
// pairwise-distinct rows make the 2^22-mask DP the dominant cost, while
// its every-4096-masks context poll keeps cancellation prompt.
func slowCSV() string {
	var b strings.Builder
	b.WriteString("a,b,c,d\n")
	for i := 0; i < 22; i++ {
		fmt.Fprintf(&b, "v%d,w%d,x%d,y%d\n", i, i*3, i*7, i*11)
	}
	return b.String()
}

// newTestServer builds a server with test-friendly defaults and
// registers cleanup that force-drains it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = time.Minute
	}
	if cfg.ResultTTL == 0 {
		cfg.ResultTTL = time.Minute
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

// submit POSTs a CSV body and decodes the response status.
func submit(t *testing.T, ts *httptest.Server, query, body string) (Status, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs?"+query, "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp
}

// pollUntil polls the job's status until pred or the deadline.
func pollUntil(t *testing.T, ts *httptest.Server, id string, timeout time.Duration, pred func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not reach wanted state in %v; last: %+v", id, timeout, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestE2EResultMatchesCLI pins the tentpole acceptance criterion: for
// the same input, algorithm, and seed, the service's result bytes equal
// what the library (and hence the kanon CLI) produces directly.
func TestE2EResultMatchesCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, tc := range []struct {
		query string
		opts  kanon.Options
	}{
		{"k=2", kanon.Options{}},
		{"k=2&algo=exhaustive", kanon.Options{Algorithm: kanon.AlgoGreedyExhaustive}},
		{"k=2&algo=random&seed=7&refine=true", kanon.Options{Algorithm: kanon.AlgoRandom, Seed: 7, Refine: true}},
		{"k=2&algo=exact", kanon.Options{Algorithm: kanon.AlgoExact}},
	} {
		st, resp := submit(t, ts, tc.query, sampleCSV)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: submit status %d", tc.query, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
			t.Errorf("%s: Location = %q", tc.query, loc)
		}
		done := pollUntil(t, ts, st.ID, 10*time.Second, func(s Status) bool { return s.State.Terminal() })
		if done.State != StateSucceeded {
			t.Fatalf("%s: state %s, error %q", tc.query, done.State, done.Error)
		}

		rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(rr.Body)
		rr.Body.Close()
		if rr.StatusCode != http.StatusOK {
			t.Fatalf("%s: result status %d: %s", tc.query, rr.StatusCode, got)
		}
		if ct := rr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
			t.Errorf("%s: result Content-Type = %q", tc.query, ct)
		}

		header, rows, err := relation.ReadCSVRows(strings.NewReader(sampleCSV))
		if err != nil {
			t.Fatal(err)
		}
		opts := tc.opts
		res, err := kanon.Anonymize(header, rows, 2, &opts)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := relation.WriteCSVRows(&want, res.Header, res.Rows); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("%s: service bytes differ from direct run:\nservice:\n%s\ndirect:\n%s", tc.query, got, want.Bytes())
		}
		if done.Cost == nil || *done.Cost != res.Cost {
			t.Errorf("%s: status cost = %v, want %d", tc.query, done.Cost, res.Cost)
		}
	}
}

// TestE2EBlockStreaming pins the block path against the CLI's stream
// pipeline adapter.
func TestE2EBlockStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var b strings.Builder
	b.WriteString("a,b\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "%c,%c\n", 'a'+i%4, 'p'+i%3)
	}
	st, resp := submit(t, ts, "k=2&block=10", b.String())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	done := pollUntil(t, ts, st.ID, 10*time.Second, func(s Status) bool { return s.State.Terminal() })
	if done.State != StateSucceeded {
		t.Fatalf("state %s, error %q", done.State, done.Error)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	header, rows, err := relation.ReadCSVRows(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("result does not parse: %v", err)
	}
	ok, err := kanon.Verify(header, rows, 2)
	if err != nil || !ok {
		t.Fatalf("streamed result not 2-anonymous (ok=%v err=%v)", ok, err)
	}
}

// TestQueueFull429 fills the single worker and the one queue slot, then
// expects admission control to reject the next submission with 429 and
// a Retry-After hint.
func TestQueueFull429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 1, RetryAfter: 3 * time.Second})
	slow := slowCSV()

	running, resp := submit(t, ts, "k=2&algo=exact", slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	pollUntil(t, ts, running.ID, 5*time.Second, func(s Status) bool { return s.State == StateRunning })

	queued, resp := submit(t, ts, "k=2&algo=exact", slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}

	_, resp = submit(t, ts, "k=2", sampleCSV)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}

	// Cancel both so cleanup doesn't wait on the DP.
	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCancelRunningJob pins prompt cancellation: DELETE on a running
// exact job must reach a terminal canceled state well under the two
// seconds the compute layer's poll granularity guarantees.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st, resp := submit(t, ts, "k=2&algo=exact", slowCSV())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	pollUntil(t, ts, st.ID, 5*time.Second, func(s Status) bool { return s.State == StateRunning })

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	start := time.Now()
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dr.Body)
	dr.Body.Close()
	if dr.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status %d", dr.StatusCode)
	}

	done := pollUntil(t, ts, st.ID, 2*time.Second, func(s Status) bool { return s.State.Terminal() })
	if done.State != StateCanceled {
		t.Fatalf("state = %s, want canceled (error %q)", done.State, done.Error)
	}
	if !strings.Contains(done.Error, "context canceled") {
		t.Errorf("error = %q, want context canceled", done.Error)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}

	// A canceled job has no retrievable result.
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Errorf("result status %d, want 409", rr.StatusCode)
	}
}

// TestShutdownDrains pins graceful shutdown: in-flight work finishes,
// new admissions get 503, healthz flips to draining.
func TestShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	st, resp := submit(t, ts, "k=2", sampleCSV)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain was forced: %v", err)
	}

	// The quick job drained to success and its result is retrievable.
	done := pollUntil(t, ts, st.ID, time.Second, func(s Status) bool { return s.State.Terminal() })
	if done.State != StateSucceeded {
		t.Fatalf("drained job state = %s", done.State)
	}

	_, resp = submit(t, ts, "k=2", sampleCSV)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit status %d, want 503", resp.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz status %d, want 503 while draining", hr.StatusCode)
	}
}

// TestShutdownCancelsAtDeadline pins the other half of shutdown: a job
// slower than the drain budget is cancelled, not waited out.
func TestShutdownCancelsAtDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	st, resp := submit(t, ts, "k=2&algo=exact", slowCSV())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	pollUntil(t, ts, st.ID, 5*time.Second, func(s Status) bool { return s.State == StateRunning })

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown reported a clean drain despite the running DP")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("forced shutdown took %v", elapsed)
	}
	job, ok := s.Manager().Get(st.ID)
	if !ok {
		t.Fatal("job evaporated")
	}
	if got := job.Status().State; got != StateCanceled {
		t.Errorf("job state after forced shutdown = %s, want canceled", got)
	}
}

// TestHTTPErrors sweeps the failure-path status codes.
func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 256})

	for _, tc := range []struct {
		name, query, body string
		want              int
	}{
		{"missing k", "", sampleCSV, http.StatusBadRequest},
		{"bad k", "k=zero", sampleCSV, http.StatusBadRequest},
		{"unknown param", "k=2&bogus=1", sampleCSV, http.StatusBadRequest},
		{"bad algo", "k=2&algo=quantum", sampleCSV, http.StatusBadRequest},
		{"k larger than table", "k=99", sampleCSV, http.StatusBadRequest},
		{"empty body", "k=2", "", http.StatusBadRequest},
		{"ragged csv", "k=2", "a,b\n1\n", http.StatusBadRequest},
		{"block with exact", "k=2&algo=exact&block=4", sampleCSV, http.StatusBadRequest},
		{"oversize body", "k=2", "a,b\n" + strings.Repeat("x,y\n", 100), http.StatusRequestEntityTooLarge},
	} {
		_, resp := submit(t, ts, tc.query, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/v1/jobs/nonesuch", http.StatusNotFound},
		{http.MethodGet, "/v1/jobs/nonesuch/result", http.StatusNotFound},
		{http.MethodDelete, "/v1/jobs/nonesuch", http.StatusNotFound},
		{http.MethodPut, "/v1/jobs", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestMetricsEndpoint pins the observability acceptance criteria: the
// server's /metrics output carries the queue and job instruments and
// passes the repo's own Prometheus linter.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st, resp := submit(t, ts, "k=2", sampleCSV)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	pollUntil(t, ts, st.ID, 5*time.Second, func(s Status) bool { return s.State.Terminal() })

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mr.StatusCode)
	}
	if err := obs.LintPrometheus(body); err != nil {
		t.Errorf("metrics output fails lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"kanon_server_queue_depth",
		"kanon_server_jobs_running",
		"kanon_server_jobs_submitted_total",
		"kanon_server_jobs_succeeded_total",
		"kanon_server_queue_wait_ns_bucket",
		"kanon_server_queue_wait_ns_count",
		"kanon_server_job_duration_ns_sum",
		"kanon_server_job_cost_count",
		"kanon_server_workers",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

// TestHealthz pins the liveness payload while the server is admitting.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}
	var payload struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Status != "ok" {
		t.Errorf("healthz status field = %q", payload.Status)
	}
}
