package server

import (
	"fmt"
	"net/url"
	"strconv"
	"sync"
	"time"

	"kanon"
	"kanon/internal/exact"
	"kanon/internal/obs"
	"kanon/internal/store"
)

// State is a job's position in its lifecycle. Transitions are strictly
// forward: queued → running → one of the three terminal states, or
// queued → canceled directly when a job is cancelled before a worker
// claims it. DESIGN.md maps each state to the obs instruments that
// observe it.
type State string

const (
	// StateQueued means the job is admitted and waiting for a worker.
	StateQueued State = "queued"
	// StateRunning means a worker is executing the job.
	StateRunning State = "running"
	// StateSucceeded means the job finished and its result is
	// retrievable until the result TTL expires.
	StateSucceeded State = "succeeded"
	// StateFailed means the job returned an error (bad instance,
	// deadline exceeded); the error text is in the status.
	StateFailed State = "failed"
	// StateCanceled means the job was cancelled by DELETE or by server
	// shutdown before it could finish.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final (the job holds a result
// or error and its TTL clock is running).
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// JobRequest is the validated parameter set of one submission — the
// query-string knobs of POST /v1/jobs, mirroring cmd/kanon's flags.
type JobRequest struct {
	// K is the anonymity parameter (required, ≥ 1).
	K int
	// Algorithm is the strategy to run (default AlgoGreedyBall).
	Algorithm kanon.Algorithm
	// Workers bounds the per-job parallel hot paths (0 = all CPUs).
	Workers int
	// BlockRows > 0 streams the table in blocks of this many rows.
	BlockRows int
	// Refine post-optimizes with cost-direct local search.
	Refine bool
	// Seed feeds AlgoRandom's shuffle.
	Seed int64
	// Timeout bounds the job's run time; 0 means the server default,
	// and requests are clamped to the server default as a ceiling.
	Timeout time.Duration
	// Trace collects the phase-span tree into the job's status.
	Trace bool
	// Kernel selects the distance-kernel backend; output is identical
	// for every choice. Meaningful only when KernelSet is true —
	// otherwise Submit fills in the server's configured default.
	Kernel kanon.Kernel
	// KernelSet records whether the submission named a kernel
	// explicitly (the zero kanon.Kernel is the valid "auto", so
	// presence cannot be read off the value alone).
	KernelSet bool
	// HierarchySpec is AlgoHierarchy's generalization sidecar, parsed
	// and validated at admission; nil derives one from the data.
	HierarchySpec *kanon.HierarchySpec
	// MaxSuppress is AlgoHierarchy's row-suppression budget.
	MaxSuppress int
	// IdempotencyKey, when non-empty, makes the submission exactly-once:
	// at most one admitted job carries a given key, and a resubmission
	// with the same key replays the original acceptance. Carried from
	// the Idempotency-Key request header, never from the query string.
	IdempotencyKey string
}

// ParseJobRequest validates the query parameters of a submission:
// k (required), algo, workers, block, refine, seed, timeout, trace,
// kernel, hierarchy, suppress. Unknown parameters are rejected so
// typos fail loudly instead of silently running with defaults.
func ParseJobRequest(q url.Values) (JobRequest, error) {
	req := JobRequest{Algorithm: kanon.AlgoGreedyBall}
	for key := range q {
		switch key {
		case "k", "algo", "workers", "block", "refine", "seed", "timeout", "trace", "kernel",
			"hierarchy", "suppress":
		default:
			return req, fmt.Errorf("unknown parameter %q", key)
		}
	}
	if !q.Has("k") {
		return req, fmt.Errorf("missing required parameter k")
	}
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil || k < 1 {
		return req, fmt.Errorf("k must be a positive integer, got %q", q.Get("k"))
	}
	req.K = k
	if v := q.Get("algo"); v != "" {
		a, err := kanon.ParseAlgorithm(v)
		if err != nil {
			return req, err
		}
		req.Algorithm = a
	}
	if v := q.Get("workers"); v != "" {
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return req, fmt.Errorf("workers must be a nonnegative integer, got %q", v)
		}
		req.Workers = w
	}
	if v := q.Get("block"); v != "" {
		b, err := strconv.Atoi(v)
		if err != nil || b < 0 {
			return req, fmt.Errorf("block must be a nonnegative integer, got %q", v)
		}
		req.BlockRows = b
	}
	if v := q.Get("refine"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return req, fmt.Errorf("refine must be a boolean, got %q", v)
		}
		req.Refine = b
	}
	if v := q.Get("seed"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return req, fmt.Errorf("seed must be an integer, got %q", v)
		}
		req.Seed = s
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return req, fmt.Errorf("timeout must be a positive duration, got %q", v)
		}
		req.Timeout = d
	}
	if v := q.Get("trace"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return req, fmt.Errorf("trace must be a boolean, got %q", v)
		}
		req.Trace = b
	}
	if v := q.Get("kernel"); v != "" {
		kern, err := kanon.ParseKernel(v)
		if err != nil {
			return req, err
		}
		req.Kernel, req.KernelSet = kern, true
	}
	if v := q.Get("hierarchy"); v != "" {
		// The spec document travels in the parameter itself, validated at
		// admission so a malformed sidecar is a 400, not a failed job.
		s, err := kanon.ParseHierarchySpec([]byte(v))
		if err != nil {
			return req, err
		}
		req.HierarchySpec = s
	}
	if v := q.Get("suppress"); v != "" {
		s, err := strconv.Atoi(v)
		if err != nil || s < 0 {
			return req, fmt.Errorf("suppress must be a nonnegative integer, got %q", v)
		}
		req.MaxSuppress = s
	}
	return req, nil
}

// validateInstance rejects work the compute layer is guaranteed to
// refuse, so infeasible jobs never occupy a queue slot.
func validateInstance(req JobRequest, rows int) error {
	if rows < req.K {
		return fmt.Errorf("table has %d rows, fewer than k = %d", rows, req.K)
	}
	if req.BlockRows > 0 && req.Algorithm != kanon.AlgoGreedyBall {
		return fmt.Errorf("block streaming supports only algo=ball, got %s", req.Algorithm)
	}
	if req.Algorithm != kanon.AlgoHierarchy && (req.HierarchySpec != nil || req.MaxSuppress != 0) {
		return fmt.Errorf("hierarchy and suppress parameters require algo=hierarchy, got %s", req.Algorithm)
	}
	if req.Algorithm == kanon.AlgoExact && rows > exact.MaxDPRows {
		return fmt.Errorf("exact solver is limited to %d rows (got %d); use a greedy algorithm",
			exact.MaxDPRows, rows)
	}
	return nil
}

// Job is one admitted anonymization request moving through the queue.
// The input table and request are immutable after Submit; the lifecycle
// fields are guarded by mu.
type Job struct {
	// ID is the job's run identifier — the handle of the HTTP API and
	// the run_id label on every log event the job emits.
	ID string
	// Req is the validated request.
	Req JobRequest

	header []string
	rows   [][]string

	mu        sync.Mutex
	state     State
	err       error
	result    *kanon.Result
	submitted time.Time
	started   time.Time
	finished  time.Time
	expires   time.Time
	cancel    func() // non-nil once running; cancels the job's context
	done      chan struct{}

	// Cluster-mode lease bookkeeping: the fencing token and node of the
	// claim this run holds, and whether cancellation was requested by a
	// user (as opposed to a drain deadline, which releases the job back
	// to the queue instead of cancelling it terminally).
	fence        uint64
	claimNode    string
	userCanceled bool

	// Observability (store-backed runs): the per-run tracer, live while
	// this node runs the job, and the trace segments persisted by
	// earlier runs — captured once at run start so re-flushes never
	// merge this run's own output back into itself.
	tracer     *obs.Tracer
	priorTrace *obs.Snapshot
}

// manifest snapshots the job's lifecycle as a durable store record.
// The states share their textual form with the store by construction,
// so the mapping is a cast, not a translation table.
func (j *Job) manifest() *store.Manifest {
	j.mu.Lock()
	defer j.mu.Unlock()
	m := &store.Manifest{
		Version:        store.ManifestVersion,
		ID:             j.ID,
		State:          string(j.state),
		K:              j.Req.K,
		Algo:           j.Req.Algorithm.String(),
		Kernel:         j.Req.Kernel.String(),
		Workers:        j.Req.Workers,
		BlockRows:      j.Req.BlockRows,
		Refine:         j.Req.Refine,
		Seed:           j.Req.Seed,
		TimeoutMS:      j.Req.Timeout.Milliseconds(),
		MaxSuppress:    j.Req.MaxSuppress,
		Rows:           len(j.rows),
		Cols:           len(j.header),
		SubmittedAt:    j.submitted,
		IdempotencyKey: j.Req.IdempotencyKey,
	}
	if j.Req.HierarchySpec != nil {
		// The spec was validated at admission, so encoding cannot fail;
		// persisting the canonical JSON keeps recovery format-independent
		// of how the submission spelled it (JSON or CSV).
		if b, err := j.Req.HierarchySpec.Encode(); err == nil {
			m.HierarchySpec = string(b)
		}
	}
	if !j.started.IsZero() {
		t := j.started
		m.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		m.FinishedAt = &t
	}
	if j.err != nil {
		m.Error = j.err.Error()
	}
	if j.state == StateSucceeded && j.result != nil {
		c := j.result.Cost
		m.Cost = &c
	}
	return m
}

// requestFromManifest rebuilds the request a manifest records — the
// recovery path's inverse of manifest(). The manifest was validated on
// decode; only the algorithm and kernel names still need parsing. A
// manifest written before the kernel field existed has an empty name,
// which parses to the auto kernel.
func requestFromManifest(m *store.Manifest) (JobRequest, error) {
	algo, err := kanon.ParseAlgorithm(m.Algo)
	if err != nil {
		return JobRequest{}, err
	}
	kern, err := kanon.ParseKernel(m.Kernel)
	if err != nil {
		return JobRequest{}, err
	}
	req := JobRequest{
		K:              m.K,
		Algorithm:      algo,
		Workers:        m.Workers,
		BlockRows:      m.BlockRows,
		Refine:         m.Refine,
		Seed:           m.Seed,
		Timeout:        time.Duration(m.TimeoutMS) * time.Millisecond,
		Kernel:         kern,
		KernelSet:      true,
		MaxSuppress:    m.MaxSuppress,
		IdempotencyKey: m.IdempotencyKey,
	}
	if m.HierarchySpec != "" {
		s, err := kanon.ParseHierarchySpec([]byte(m.HierarchySpec))
		if err != nil {
			return JobRequest{}, err
		}
		req.HierarchySpec = s
	}
	return req, nil
}

// Status is the JSON view of a job served by GET /v1/jobs/{id} and
// returned by POST and DELETE.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	K     int    `json:"k"`
	Algo  string `json:"algo"`
	// Kernel is the resolved distance-kernel backend the job runs
	// under (the submission's choice, or the server default).
	Kernel string `json:"kernel"`
	Rows   int    `json:"rows"`
	Cols   int    `json:"cols"`
	// Cost is the suppression objective; present once succeeded.
	Cost *int `json:"cost,omitempty"`
	// Node is the cluster node whose lease covers (or covered) the
	// job's run; empty outside cluster mode and before the first claim.
	Node string `json:"node,omitempty"`
	// Error is the failure or cancellation reason, if terminal and not
	// succeeded.
	Error       string       `json:"error,omitempty"`
	SubmittedAt time.Time    `json:"submitted_at"`
	StartedAt   *time.Time   `json:"started_at,omitempty"`
	FinishedAt  *time.Time   `json:"finished_at,omitempty"`
	QueueWaitMS int64        `json:"queue_wait_ms"`
	DurationMS  int64        `json:"duration_ms,omitempty"`
	Stats       *kanon.Stats `json:"stats,omitempty"`
}

// Status snapshots the job's lifecycle under its lock.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.ID,
		State:       j.state,
		K:           j.Req.K,
		Algo:        j.Req.Algorithm.String(),
		Kernel:      j.Req.Kernel.String(),
		Rows:        len(j.rows),
		Cols:        len(j.header),
		Node:        j.claimNode,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
		st.QueueWaitMS = j.started.Sub(j.submitted).Milliseconds()
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
		if !j.started.IsZero() {
			st.DurationMS = j.finished.Sub(j.started).Milliseconds()
		}
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.result != nil {
		c := j.result.Cost
		st.Cost = &c
		st.Stats = j.result.Stats
	}
	return st
}

// Result returns the completed result, or false if the job is not in
// StateSucceeded.
func (j *Job) Result() (*kanon.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateSucceeded {
		return nil, false
	}
	return j.result, true
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }
