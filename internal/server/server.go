// Package server exposes the kanon pipeline as a long-running HTTP
// service: a bounded job queue with admission control, a worker pool
// running the anonymization algorithms under per-job deadlines, an
// in-memory result store with TTL eviction, and graceful shutdown.
//
// The HTTP surface:
//
//	POST   /v1/jobs            submit a CSV body with ?k=...&algo=... → 202 + job status
//	GET    /v1/jobs/{id}        job status JSON
//	GET    /v1/jobs/{id}/result anonymized CSV once succeeded
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /healthz             liveness + drain state
//	GET    /metrics             Prometheus text (via internal/obs)
//	/debug/pprof, /debug/vars, /debug/obs (via internal/obs)
//
// Results are byte-identical to `kanon` CLI runs with the same input,
// parameters, and seed: the service bounds and observes the NP-hard
// compute, it never alters it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"kanon/internal/obs"
	"kanon/internal/relation"
	"kanon/internal/store"
)

// Server is the HTTP front end of a Manager.
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// New builds a Server (and its Manager) from cfg. The returned server
// handles the /v1 job API plus the obs debug/metrics surface. Call
// Shutdown to stop it.
func New(cfg Config) *Server {
	m := NewManager(cfg)
	s := &Server{m: m}
	// The obs mux brings /metrics, /debug/pprof, /debug/vars, and
	// /debug/obs, all reading the manager's live telemetry registry.
	mux := obs.DebugMux(m.Snapshot)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if m.cfg.Store != nil {
		// Replication surface: what this node's store shows its peers.
		// Registered whenever a store exists — a shared-directory cluster
		// simply never gets polled.
		mux.HandleFunc("GET /v1/replica/jobs", s.handleReplicaJobs)
		mux.HandleFunc("GET /v1/replica/jobs/{id}/file", s.handleReplicaFile)
	}
	s.mux = mux
	return s
}

// Manager returns the server's job manager, for direct submission and
// inspection (tests, embedding).
func (s *Server) Manager() *Manager { return s.m }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown delegates to the manager: stop admission, drain until ctx
// expires, cancel the rest.
func (s *Server) Shutdown(ctx context.Context) error { return s.m.Shutdown(ctx) }

// handleSubmit ingests a CSV body and admits a job.
//
// Error mapping: oversized body → 413; malformed query/CSV/instance →
// 400; queue full → 429 with Retry-After; draining → 503.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := ParseJobRequest(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		if err := store.ValidateIdempotencyKey(key); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req.IdempotencyKey = key
		// Replay before reading the body: a duplicate costs one lookup,
		// not a full CSV parse.
		if st, ok := s.m.Idempotent(key); ok {
			s.replaySubmit(w, key, st)
			return
		}
	}
	body := http.MaxBytesReader(w, r.Body, s.m.cfg.MaxBodyBytes)
	header, rows, err := relation.ReadCSVRows(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.m.Submit(header, rows, req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(max(1, s.m.cfg.RetryAfter.Seconds()))))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrIdempotentReplay):
		// Lost a race with a duplicate of ourselves; the winner's job is
		// the submission's job.
		if st, ok := s.m.Idempotent(req.IdempotencyKey); ok {
			s.replaySubmit(w, req.IdempotencyKey, st)
			return
		}
		// The winner unwound (rejected) between its reservation and our
		// lookup; the client should retry.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrStore):
		writeError(w, http.StatusInternalServerError, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.IdempotencyKey != "" {
		w.Header().Set("Idempotency-Key", req.IdempotencyKey)
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.Status())
}

// replaySubmit answers a duplicate submission with the original job's
// acceptance: same 202, same Location, plus a marker header so clients
// can tell a replay from a fresh admission.
func (s *Server) replaySubmit(w http.ResponseWriter, key string, st Status) {
	w.Header().Set("Idempotency-Key", key)
	w.Header().Set("Idempotency-Replay", "true")
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// handleReplicaJobs serves this node's job inventory — manifests plus
// spool-file listings — to replication peers.
func (s *Server) handleReplicaJobs(w http.ResponseWriter, r *http.Request) {
	jobs, err := s.m.cfg.Store.ReplicaJobs()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if jobs == nil {
		jobs = []store.ReplicaJob{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

// handleReplicaFile serves one whitelisted spool file raw. 400 for a
// name outside the whitelist, 404 for a file (or job) that is gone —
// pullers treat 404 as "retry next round", not an error.
func (s *Server) handleReplicaFile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name := r.URL.Query().Get("name")
	if err := store.ValidateID(id); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := store.ValidateReplicaFile(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	b, err := s.m.cfg.Store.ReadJobFile(id, name)
	if err != nil {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// handleStatus serves a job's lifecycle snapshot. In cluster mode the
// lookup reads through to the shared store, so any node answers for
// any job in the cluster — including jobs submitted to, or finished
// by, a node that no longer exists.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.m.StatusOf(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResult streams the anonymized CSV of a succeeded job. A job in
// any other state answers 409 with its status, so pollers can
// distinguish "not yet" from "never". Cluster mode serves foreign
// results from the store's result spool.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.m.StatusOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	if st.State != StateSucceeded {
		writeJSON(w, http.StatusConflict, st)
		return
	}
	header, rows, err := s.m.ResultBytes(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// Write errors past this point mean the client went away; there is
	// nothing useful to do with them.
	_ = relation.WriteCSVRows(w, header, rows)
}

// handleEvents serves the job's durable lifecycle journal as a JSON
// array. Read-through like status: any node answers for any job, so a
// survivor can narrate a job whose original owner is dead. A known job
// with nothing journaled yet answers an empty list.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	events, ok := s.m.EventsOf(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	if events == nil {
		events = []obs.JournalEvent{}
	}
	writeJSON(w, http.StatusOK, events)
}

// handleTrace serves the job's merged span timeline (an obs.Snapshot):
// live while this node runs the job, the persisted trace.json
// otherwise. A job that crossed nodes answers one timeline whose root
// spans name every node that ran a segment, in wall-clock order.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.m.TraceOf(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleCancel requests cancellation and answers with the job's
// (possibly still running) status. In cluster mode the request reaches
// jobs anywhere: queued jobs cancel on the spot wherever they were
// submitted, and a job running on another node is flagged through the
// store for its lease holder to notice at the next renewal.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.m.CancelByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleHealthz reports liveness: 200 while admitting, 503 once
// draining, either way with the node's capacity picture — the payload
// a front-end router balances on.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.m.Health()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

var errUnknownJob = errors.New("unknown job id")

// writeJSON encodes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError answers a JSON error envelope.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
