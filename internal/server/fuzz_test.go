package server

import (
	"bytes"
	"net/url"
	"testing"

	"kanon/internal/relation"
)

// FuzzJobRequest drives the server's two untrusted-input decoders — the
// query-string job request and the CSV body — with arbitrary bytes. The
// invariants: neither may panic; an accepted request satisfies its own
// validation rules; an accepted CSV parses into a rectangular table
// that round-trips through the shared codec.
func FuzzJobRequest(f *testing.F) {
	f.Add("k=2", []byte("a,b\n1,2\n3,4\n"))
	f.Add("k=3&algo=exact&workers=2&timeout=5s", []byte("x\n*\n*\n*\n"))
	f.Add("k=2&block=10&refine=true", []byte("a,b\n\"q,u\",v\n1,2\n"))
	f.Add("k=-1&seed=⁂", []byte(",,,\n"))
	f.Add("", []byte{})
	f.Add("k=2&k=3", []byte("h\n\xff\xfe\n"))
	f.Fuzz(func(t *testing.T, query string, body []byte) {
		q, err := url.ParseQuery(query)
		if err == nil {
			req, err := ParseJobRequest(q)
			if err == nil {
				if req.K < 1 {
					t.Fatalf("accepted request with k = %d", req.K)
				}
				if req.Workers < 0 || req.BlockRows < 0 || req.Timeout < 0 {
					t.Fatalf("accepted negative knobs: %+v", req)
				}
				// validateInstance must decide, never panic, for any
				// accepted request.
				_ = validateInstance(req, 10)
			}
		}

		header, rows, err := relation.ReadCSVRows(bytes.NewReader(body))
		if err != nil {
			return
		}
		if len(header) == 0 || len(rows) == 0 {
			t.Fatalf("accepted degenerate table: header %d, rows %d", len(header), len(rows))
		}
		for i, r := range rows {
			if len(r) != len(header) {
				t.Fatalf("row %d has %d fields, header has %d", i, len(r), len(header))
			}
		}
		var buf bytes.Buffer
		if err := relation.WriteCSVRows(&buf, header, rows); err != nil {
			t.Fatalf("accepted table does not re-encode: %v", err)
		}
		h2, r2, err := relation.ReadCSVRows(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded table does not parse: %v", err)
		}
		if len(h2) != len(header) || len(r2) != len(rows) {
			t.Fatalf("round trip changed shape: %dx%d → %dx%d", len(rows), len(header), len(r2), len(h2))
		}
	})
}
