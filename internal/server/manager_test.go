package server

import (
	"context"
	"errors"
	"net/url"
	"strings"
	"testing"
	"time"

	"kanon"
	"kanon/internal/relation"
)

func mustParse(t *testing.T, csv string) ([]string, [][]string) {
	t.Helper()
	header, rows, err := relation.ReadCSVRows(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	return header, rows
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = time.Minute
	}
	if cfg.ResultTTL == 0 {
		cfg.ResultTTL = time.Minute
	}
	m := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return m
}

func TestParseJobRequest(t *testing.T) {
	cases := []struct {
		name  string
		query string
		ok    bool
		check func(JobRequest) bool
	}{
		{"minimal", "k=3", true, func(r JobRequest) bool {
			return r.K == 3 && r.Algorithm == kanon.AlgoGreedyBall
		}},
		{"full", "k=2&algo=exact&workers=4&refine=1&seed=-9&timeout=30s&trace=true", true, func(r JobRequest) bool {
			return r.K == 2 && r.Algorithm == kanon.AlgoExact && r.Workers == 4 &&
				r.Refine && r.Seed == -9 && r.Timeout == 30*time.Second && r.Trace
		}},
		{"block", "k=2&block=128", true, func(r JobRequest) bool { return r.BlockRows == 128 }},
		{"missing k", "algo=ball", false, nil},
		{"zero k", "k=0", false, nil},
		{"negative k", "k=-2", false, nil},
		{"non-numeric k", "k=three", false, nil},
		{"unknown algo", "k=2&algo=quantum", false, nil},
		{"negative workers", "k=2&workers=-1", false, nil},
		{"negative block", "k=2&block=-5", false, nil},
		{"bad refine", "k=2&refine=maybe", false, nil},
		{"bad seed", "k=2&seed=pi", false, nil},
		{"zero timeout", "k=2&timeout=0s", false, nil},
		{"bad timeout", "k=2&timeout=soon", false, nil},
		{"bad trace", "k=2&trace=7up", false, nil},
		{"unknown param", "k=2&turbo=1", false, nil},
	}
	for _, tc := range cases {
		q, err := url.ParseQuery(tc.query)
		if err != nil {
			t.Fatal(err)
		}
		req, err := ParseJobRequest(q)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
			continue
		}
		if tc.ok && tc.check != nil && !tc.check(req) {
			t.Errorf("%s: parsed %+v", tc.name, req)
		}
	}
}

func TestValidateInstance(t *testing.T) {
	if err := validateInstance(JobRequest{K: 5, Algorithm: kanon.AlgoGreedyBall}, 4); err == nil {
		t.Error("accepted k > rows")
	}
	if err := validateInstance(JobRequest{K: 2, Algorithm: kanon.AlgoExact}, 25); err == nil {
		t.Error("accepted exact beyond MaxDPRows")
	}
	if err := validateInstance(JobRequest{K: 2, Algorithm: kanon.AlgoExact, BlockRows: 8}, 16); err == nil {
		t.Error("accepted block streaming with a non-ball algorithm")
	}
	if err := validateInstance(JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall, BlockRows: 8}, 16); err != nil {
		t.Errorf("rejected valid block request: %v", err)
	}
}

// TestCancelQueuedJob pins the queued → canceled shortcut: a job
// cancelled before any worker claims it terminates immediately and is
// skipped when its queue slot is finally popped.
func TestCancelQueuedJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueCapacity: 4})
	header, rows := mustParse(t, slowCSV())

	blocker, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoExact})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoExact})
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := m.Cancel(queued.ID); !ok {
		t.Fatal("Cancel lost the queued job")
	}
	select {
	case <-queued.Done():
	case <-time.After(time.Second):
		t.Fatal("queued job not terminal after Cancel")
	}
	if st := queued.Status(); st.State != StateCanceled || !strings.Contains(st.Error, "context canceled") {
		t.Errorf("queued cancel status = %+v", st)
	}
	if _, ok := queued.Result(); ok {
		t.Error("canceled job has a result")
	}

	if _, ok := m.Cancel(blocker.ID); !ok {
		t.Fatal("Cancel lost the running job")
	}
	select {
	case <-blocker.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("running job not canceled within 2s")
	}
}

// TestCancelUnknownAndTerminal pins Cancel's edges: unknown IDs report
// !ok, and cancelling a finished job leaves it untouched.
func TestCancelUnknownAndTerminal(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	if _, ok := m.Cancel("nonesuch"); ok {
		t.Error("Cancel invented a job")
	}
	header, rows := mustParse(t, sampleCSV)
	job, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if st := job.Status().State; st != StateSucceeded {
		t.Fatalf("job state %s", st)
	}
	m.Cancel(job.ID)
	if st := job.Status().State; st != StateSucceeded {
		t.Errorf("Cancel rewrote a terminal state to %s", st)
	}
	if res, ok := job.Result(); !ok || res.Cost <= 0 {
		t.Errorf("result after no-op cancel: %v %v", res, ok)
	}
}

// TestSubmitQueueFull pins admission control at the Manager layer.
func TestSubmitQueueFull(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueCapacity: 1})
	header, rows := mustParse(t, slowCSV())
	running, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoExact})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker claims it so the queue slot is free.
	deadline := time.Now().Add(5 * time.Second)
	for running.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoExact}); err != nil {
		t.Fatalf("queue-slot submit failed: %v", err)
	}
	if _, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoExact}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
}

// TestTTLEviction pins the janitor: terminal jobs disappear once their
// result TTL passes.
func TestTTLEviction(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, ResultTTL: 30 * time.Millisecond})
	header, rows := mustParse(t, sampleCSV)
	job, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if _, ok := m.Get(job.ID); !ok {
		t.Fatal("job gone before TTL")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := m.Get(job.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job not evicted 2s past a 30ms TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobTimeoutCeiling pins the deadline policy: a client-requested
// timeout caps the job, and exceeding it fails (not cancels) the job
// with a deadline error.
func TestJobTimeoutCeiling(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, JobTimeout: time.Minute})
	header, rows := mustParse(t, slowCSV())
	job, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoExact, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("timed-out job not terminal within 5s")
	}
	st := job.Status()
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "deadline exceeded") {
		t.Errorf("error = %q, want a deadline error", st.Error)
	}
}

// TestShutdownIdempotent pins that a second Shutdown is safe and also
// drains.
func TestShutdownIdempotent(t *testing.T) {
	m := NewManager(Config{Workers: 1, JobTimeout: time.Minute, ResultTTL: time.Minute})
	ctx := context.Background()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	header, rows := mustParse(t, sampleCSV)
	if _, err := m.Submit(header, rows, JobRequest{K: 2, Algorithm: kanon.AlgoGreedyBall}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-shutdown submit error = %v, want ErrDraining", err)
	}
}
