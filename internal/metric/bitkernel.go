package metric

import (
	"context"
	"fmt"
	"math/bits"

	"kanon/internal/relation"
)

// BitKernel is the matrix-free distance kernel: each row's symbol codes
// are packed into per-attribute equality bitsets and every distance is
// computed on the fly as d(u, v) = m − popcount(agree(u, v)). Memory is
// O(n·m/64) words instead of the Matrix's O(n²) cells, which is what
// lets the ball algorithms scale from thousands of rows to hundreds of
// thousands.
//
// Layout: column j with alphabet Σ_j gets |Σ_j|+1 consecutive bit
// slots — slot 0 for relation.Star, slot c+1 for symbol code c — and a
// row sets exactly one bit per column, at the slot of its value. Two
// rows agree on column j iff their bitsets share a set bit inside j's
// slot range, so the number of agreeing columns is the popcount of the
// AND of the two rows' words. Columns whose slot range would exceed
// maxOnehotWidth bits (high-cardinality attributes, e.g. near-unique
// identifiers) would bloat every row's bitset; they fall back to a
// packed row-major int32 code array compared directly.
type BitKernel struct {
	n, m int
	// One-hot block: words uint64s per row, covering onehotCols columns.
	words      int
	onehotCols int
	onehot     []uint64
	// Packed fallback: packedCols high-cardinality columns, row-major.
	packedCols int
	packed     []int32
}

// maxOnehotWidth caps the bit-slot range of a one-hot column
// (|alphabet|+1 slots). One word per column keeps the per-row bitset at
// most m words; wider columns cost less as 4-byte packed codes.
const maxOnehotWidth = 64

// NewBitKernel packs the rows of t into a matrix-free kernel.
func NewBitKernel(t *relation.Table) *BitKernel {
	b, _ := NewBitKernelCtx(context.Background(), t)
	return b
}

// NewBitKernelCtx is NewBitKernel with cancellation, polled every 1024
// rows during the O(n·m) packing pass. The returned error wraps
// ctx.Err().
func NewBitKernelCtx(ctx context.Context, t *relation.Table) (*BitKernel, error) {
	n, m := t.Len(), t.Degree()
	b := &BitKernel{n: n, m: m}
	sch := t.Schema()
	var onehotIdx, packedIdx []int
	offsets := make([]int, 0, m) // bit offset of each one-hot column's slot 0
	bitWidth := 0
	for j := 0; j < m; j++ {
		if w := sch.Attribute(j).AlphabetSize() + 1; w <= maxOnehotWidth {
			onehotIdx = append(onehotIdx, j)
			offsets = append(offsets, bitWidth)
			bitWidth += w
		} else {
			packedIdx = append(packedIdx, j)
		}
	}
	b.onehotCols = len(onehotIdx)
	b.packedCols = len(packedIdx)
	b.words = (bitWidth + 63) / 64
	b.onehot = make([]uint64, n*b.words)
	if b.packedCols > 0 {
		b.packed = make([]int32, n*b.packedCols)
	}
	for i := 0; i < n; i++ {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("metric: bit kernel: %w", err)
			}
		}
		row := t.Row(i)
		w := b.onehot[i*b.words : (i+1)*b.words]
		for c, j := range onehotIdx {
			slot := offsets[c] + slotOf(row[j])
			w[slot>>6] |= 1 << (slot & 63)
		}
		for c, j := range packedIdx {
			b.packed[i*b.packedCols+c] = row[j]
		}
	}
	return b, nil
}

// slotOf maps a symbol code to its bit slot within the column's range:
// Star to slot 0, code c to slot c+1.
func slotOf(code int32) int {
	if code == relation.Star {
		return 0
	}
	if code < 0 {
		panic(fmt.Sprintf("metric: invalid symbol code %d", code))
	}
	return int(code) + 1
}

// Len reports the number of rows the kernel covers.
func (b *BitKernel) Len() int { return b.n }

// Dist returns d(row i, row j): the one-hot columns contribute
// onehotCols − popcount(AND of the rows' words), the packed columns a
// direct disagreement count.
func (b *BitKernel) Dist(i, j int) int {
	d := b.onehotCols
	if b.words > 0 {
		u := b.onehot[i*b.words : (i+1)*b.words]
		v := b.onehot[j*b.words : (j+1)*b.words : (j+1)*b.words]
		agree := 0
		for w, x := range u {
			agree += bits.OnesCount64(x & v[w])
		}
		d -= agree
	}
	if b.packedCols > 0 {
		pu := b.packed[i*b.packedCols : (i+1)*b.packedCols]
		pv := b.packed[j*b.packedCols : (j+1)*b.packedCols : (j+1)*b.packedCols]
		for c, x := range pu {
			if x != pv[c] {
				d++
			}
		}
	}
	return d
}

// MaxDist returns the degree m — the Hamming bound on every pairwise
// distance. It is an upper bound rather than the realized maximum (the
// kernel never runs an all-pairs pass); callers only use it to size
// counting-sort buckets and saturate diameter sweeps, where a bound is
// all that is needed.
func (b *BitKernel) MaxDist() int { return b.m }

// DistRow fills out[v] = d(center, v) for all v in one pass — the
// RowFiller fast path the cover package's radius kernels use.
func (b *BitKernel) DistRow(center int, out []int32) {
	for v := 0; v < b.n; v++ {
		out[v] = int32(b.Dist(center, v))
	}
}

// Diameter returns the maximum pairwise distance within the index set.
func (b *BitKernel) Diameter(indices []int) int {
	best := 0
	for a := 0; a < len(indices); a++ {
		ia := indices[a]
		for c := a + 1; c < len(indices); c++ {
			if d := b.Dist(ia, indices[c]); d > best {
				best = d
			}
		}
	}
	return best
}

// DiameterWith returns the diameter of indices ∪ {extra} given the
// diameter of indices, in O(|indices|).
func (b *BitKernel) DiameterWith(indices []int, current int, extra int) int {
	best := current
	for _, i := range indices {
		if d := b.Dist(i, extra); d > best {
			best = d
		}
	}
	return best
}

// Ball returns the indices v with d(center, v) ≤ radius, in index
// order, by one lazy scan of the center's distances — no n×n state.
func (b *BitKernel) Ball(center, radius int) []int {
	var out []int
	for v := 0; v < b.n; v++ {
		if b.Dist(center, v) <= radius {
			out = append(out, v)
		}
	}
	return out
}

// kthNearestTile is the center-block size of the tiled KthNearest pass:
// the block's bitset rows stay cache-hot while the j scan streams every
// row past them once per block.
const kthNearestTile = 64

// KthNearest returns, for each row i, the distance to its r-th nearest
// other row (r ≥ 1), matching Matrix.KthNearest exactly. Distances are
// histogrammed into MaxDist()+1 counting buckets per center; centers
// are processed in cache-blocked tiles so the O(n²) pair scan streams
// the packed rows instead of thrashing.
func (b *BitKernel) KthNearest(r int) []int {
	out := make([]int, b.n)
	if r <= 0 {
		return out
	}
	width := b.MaxDist() + 1
	cnt := make([]int32, kthNearestTile*width)
	for i0 := 0; i0 < b.n; i0 += kthNearestTile {
		i1 := i0 + kthNearestTile
		if i1 > b.n {
			i1 = b.n
		}
		for i := range cnt {
			cnt[i] = 0
		}
		for j := 0; j < b.n; j++ {
			for i := i0; i < i1; i++ {
				if i == j {
					continue
				}
				cnt[(i-i0)*width+b.Dist(i, j)]++
			}
		}
		for i := i0; i < i1; i++ {
			out[i] = kthFromCounts(cnt[(i-i0)*width:(i-i0+1)*width], r)
		}
	}
	return out
}

// kthFromCounts returns the r-th smallest value (1-based) of the
// multiset histogrammed in cnt (cnt[d] = multiplicity of d). If r
// exceeds the multiset size it returns the maximum; an empty multiset
// yields 0 — the same conventions as kthSmallest.
func kthFromCounts(cnt []int32, r int) int {
	seen := 0
	last := 0
	for d, c := range cnt {
		if c == 0 {
			continue
		}
		seen += int(c)
		last = d
		if seen >= r {
			return d
		}
	}
	return last
}
