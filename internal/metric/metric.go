// Package metric implements the distance of Definition 4.1 and the group
// diameter machinery that drives both of the paper's approximation
// algorithms.
//
// For u, v ∈ Σ^m the distance d(u, v) = |{j : u[j] ≠ v[j]}| is the number
// of coordinates on which the vectors disagree — the Hamming distance on
// symbol codes. The diameter of a set S is max_{u,v∈S} d(u, v). The
// paper notes (and TestDistanceIsMetric verifies) that d is a metric.
package metric

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"kanon/internal/relation"
)

// Distance returns d(u, v), the number of coordinates where the rows
// differ. Suppressed entries (relation.Star) compare like any other
// symbol: star equals star and differs from every concrete value. The
// paper only ever measures distance on un-suppressed vectors, but this
// convention makes the function total.
func Distance(u, v relation.Row) int {
	d := 0
	for j := range u {
		if u[j] != v[j] {
			d++
		}
	}
	return d
}

// Diameter returns the diameter of the set of rows at the given indices
// of t: the maximum pairwise distance. The diameter of an empty or
// singleton set is 0.
func Diameter(t *relation.Table, indices []int) int {
	best := 0
	for a := 0; a < len(indices); a++ {
		ra := t.Row(indices[a])
		for b := a + 1; b < len(indices); b++ {
			if d := Distance(ra, t.Row(indices[b])); d > best {
				best = d
			}
		}
	}
	return best
}

// DiameterRows is Diameter over explicit rows rather than table indices.
func DiameterRows(rows []relation.Row) int {
	best := 0
	for a := 0; a < len(rows); a++ {
		for b := a + 1; b < len(rows); b++ {
			if d := Distance(rows[a], rows[b]); d > best {
				best = d
			}
		}
	}
	return best
}

// Matrix is a precomputed symmetric distance matrix over the rows of a
// table. Both approximation algorithms consult pairwise distances
// heavily; precomputing them once turns the inner loops into table
// lookups.
//
// Storage is int16 (narrow) while every distance fits, which is the
// common Hamming case (d ≤ m and tables rarely have thousands of
// columns); the matrix widens to int32 storage when a distance exceeds
// math.MaxInt16 — tables with m > 32767 columns, or weighted metrics
// whose column weights sum past int16 — instead of silently
// overflowing. The widening is transparent to every reader.
type Matrix struct {
	n    int
	d    []int16 // narrow row-major n×n storage; nil once widened
	wide []int32 // wide storage; nil unless a distance exceeded int16
	maxD int     // largest distance stored (counting-sort bucket bound)
}

// maxNarrow is the largest distance the narrow int16 storage can hold.
const maxNarrow = math.MaxInt16

// NewMatrixFunc builds a matrix from an arbitrary symmetric distance
// function over indices 0..n−1. Used by the generalization extension,
// whose per-cell costs come from hierarchy trees rather than symbol
// equality, and by the column-weighted metric; any metric works with
// the cover machinery. Distances that overflow int16 widen the storage;
// negative or int32-overflowing distances panic (they would corrupt
// every downstream algorithm silently otherwise).
func NewMatrixFunc(n int, dist func(i, j int) int) *Matrix {
	m := &Matrix{n: n, d: make([]int16, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.set(i, j, dist(i, j))
		}
	}
	return m
}

// NewMatrixFuncCtx is NewMatrixFunc with cancellation and parallelism:
// the fill polls ctx once per row and shards rows across workers (0 or
// negative means all CPUs), so the generalization and weighted paths
// abort as promptly as NewMatrixCtx does. Because an arbitrary metric's
// range is unknown up front, the fill stages into int32 and narrows to
// int16 afterwards when every distance fits; the result is identical to
// NewMatrixFunc for every worker count. A non-nil error wraps
// ctx.Err().
func NewMatrixFuncCtx(ctx context.Context, n, workers int, dist func(i, j int) int) (*Matrix, error) {
	wide := make([]int32, n*n)
	var sharedMax atomic.Int64
	fill := func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		localMax := 0
		for j := i + 1; j < n; j++ {
			v := dist(i, j)
			if v < 0 || v > math.MaxInt32 {
				panic(fmt.Sprintf("metric: distance d(%d,%d) = %d outside [0, MaxInt32]", i, j, v))
			}
			if v > localMax {
				localMax = v
			}
			wide[i*n+j] = int32(v)
			wide[j*n+i] = int32(v)
		}
		for {
			cur := sharedMax.Load()
			if int64(localMax) <= cur || sharedMax.CompareAndSwap(cur, int64(localMax)) {
				return nil
			}
		}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	var firstErr error
	if workers <= 1 || n < parallelThreshold {
		for i := 0; i < n && firstErr == nil; i++ {
			firstErr = fill(i)
		}
	} else {
		// Interleave rows across workers like NewMatrixCtx: row i costs
		// ~(n−i) pairs, so striding balances the load queue-free.
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					if errs[w] = fill(i); errs[w] != nil {
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("metric: distance matrix: %w", firstErr)
	}
	m := &Matrix{n: n, maxD: int(sharedMax.Load())}
	if m.maxD > maxNarrow {
		m.wide = wide
		return m, nil
	}
	m.d = make([]int16, n*n)
	for i, v := range wide {
		m.d[i] = int16(v)
	}
	return m, nil
}

// set stores d(i, j) = d(j, i) = v, widening the backing array the
// first time a value exceeds the narrow range.
func (m *Matrix) set(i, j, v int) {
	if v < 0 || v > math.MaxInt32 {
		panic(fmt.Sprintf("metric: distance d(%d,%d) = %d outside [0, MaxInt32]", i, j, v))
	}
	if v > m.maxD {
		m.maxD = v
	}
	if m.wide == nil && v > maxNarrow {
		m.widen()
	}
	if m.wide != nil {
		m.wide[i*m.n+j] = int32(v)
		m.wide[j*m.n+i] = int32(v)
		return
	}
	m.d[i*m.n+j] = int16(v)
	m.d[j*m.n+i] = int16(v)
}

// widen migrates narrow storage to int32 in place.
func (m *Matrix) widen() {
	m.wide = make([]int32, len(m.d))
	for i, v := range m.d {
		m.wide[i] = int32(v)
	}
	m.d = nil
}

// parallelThreshold is the row count above which NewMatrix fans the
// O(n²m) distance computation out over all CPUs. Below it the goroutine
// overhead outweighs the work.
const parallelThreshold = 256

// NewMatrix computes the full pairwise distance matrix of t. Large
// tables are computed in parallel over all CPUs; the result is
// identical either way (each worker owns disjoint rows of the output).
func NewMatrix(t *relation.Table) *Matrix {
	return NewMatrixWorkers(t, 0)
}

// NewMatrixWorkers is NewMatrix with an explicit worker count: 0 (or
// negative) means runtime.NumCPU(), 1 forces the sequential fill. The
// output is byte-identical for every worker count.
func NewMatrixWorkers(t *relation.Table, workers int) *Matrix {
	m, _ := NewMatrixCtx(context.Background(), t, workers)
	return m
}

// NewMatrixCtx is NewMatrixWorkers with cancellation: the fill polls
// ctx once per row (cheap next to a row's O(n·m) distance work), so an
// O(n²m) fill on a large table aborts promptly instead of running to
// completion after its caller gave up. A non-nil error wraps ctx.Err();
// the partially filled matrix is not returned. The output is
// byte-identical for every worker count and unaffected by ctx.
func NewMatrixCtx(ctx context.Context, t *relation.Table, workers int) (*Matrix, error) {
	n := t.Len()
	m := &Matrix{n: n}
	// The Hamming distance is bounded by the degree; tables wider than
	// int16 get wide storage up front instead of overflowing (the
	// satellite guard for m > 32767 columns).
	if t.Degree() > maxNarrow {
		m.wide = make([]int32, n*n)
	} else {
		m.d = make([]int16, n*n)
	}
	var sharedMax atomic.Int64
	fill := func(lo, hi int) error {
		localMax := 0
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			ri := t.Row(i)
			for j := i + 1; j < n; j++ {
				d := Distance(ri, t.Row(j))
				if d > localMax {
					localMax = d
				}
				if m.wide != nil {
					m.wide[i*n+j] = int32(d)
					m.wide[j*n+i] = int32(d)
				} else {
					m.d[i*n+j] = int16(d)
					m.d[j*n+i] = int16(d)
				}
			}
		}
		for {
			cur := sharedMax.Load()
			if int64(localMax) <= cur || sharedMax.CompareAndSwap(cur, int64(localMax)) {
				return nil
			}
		}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < parallelThreshold {
		if err := fill(0, n); err != nil {
			return nil, fmt.Errorf("metric: distance matrix: %w", err)
		}
		m.maxD = int(sharedMax.Load())
		return m, nil
	}
	var wg sync.WaitGroup
	// Row i costs ~(n−i) pairs; interleave rows across workers so the
	// load balances without a work queue. Workers observe cancellation
	// independently; first error wins.
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if errs[w] = fill(i, i+1); errs[w] != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("metric: distance matrix: %w", err)
		}
	}
	m.maxD = int(sharedMax.Load())
	return m, nil
}

// Len reports the number of rows the matrix covers.
func (m *Matrix) Len() int { return m.n }

// Dist returns d(row i, row j).
func (m *Matrix) Dist(i, j int) int {
	if m.wide != nil {
		return int(m.wide[i*m.n+j])
	}
	return int(m.d[i*m.n+j])
}

// MaxDist returns the largest distance stored anywhere in the matrix.
// The counting-sort kernels use it to bound bucket counts.
func (m *Matrix) MaxDist() int { return m.maxD }

// Wide reports whether the matrix needed int32 storage (some distance
// exceeded math.MaxInt16).
func (m *Matrix) Wide() bool { return m.wide != nil }

// DistRow copies row center of the matrix into out — the RowFiller
// fast path the cover package's radius kernels use instead of n Dist
// calls.
func (m *Matrix) DistRow(center int, out []int32) {
	if m.wide != nil {
		copy(out, m.wide[center*m.n:(center+1)*m.n])
		return
	}
	row := m.d[center*m.n : (center+1)*m.n]
	for v, d := range row {
		out[v] = int32(d)
	}
}

// Diameter returns the diameter of the index set using precomputed
// distances.
func (m *Matrix) Diameter(indices []int) int {
	best := 0
	for a := 0; a < len(indices); a++ {
		ia := indices[a]
		for b := a + 1; b < len(indices); b++ {
			if d := m.Dist(ia, indices[b]); d > best {
				best = d
			}
		}
	}
	return best
}

// DiameterWith returns the diameter of indices ∪ {extra}, given the
// diameter of indices, in O(|indices|) — the incremental step used by
// the exhaustive-family enumerator.
func (m *Matrix) DiameterWith(indices []int, current int, extra int) int {
	best := current
	for _, i := range indices {
		if d := m.Dist(i, extra); d > best {
			best = d
		}
	}
	return best
}

// Ball returns the indices v with d(center, v) ≤ radius, in index order.
// This is the paper's S_{c,i} (§4.3).
func (m *Matrix) Ball(center, radius int) []int {
	var out []int
	for v := 0; v < m.n; v++ {
		if m.Dist(center, v) <= radius {
			out = append(out, v)
		}
	}
	return out
}

// KthNearest returns, for each row i, the distance to its r-th nearest
// other row (r ≥ 1). Every k-group containing i must contain k−1 other
// rows, each of which forces at least d(i, ·) suppressed coordinates on
// i; hence KthNearest(k−1) is a per-row lower bound used by the
// branch-and-bound exact solver.
func (m *Matrix) KthNearest(r int) []int {
	out := make([]int, m.n)
	if r <= 0 {
		return out
	}
	// Counting sort over maxD+1 buckets: one O(n) histogram pass per
	// row instead of the O(r·n) selection scan. Metrics whose range
	// dwarfs n (heavily weighted columns) fall back to selection rather
	// than allocating giant bucket arrays.
	if m.maxD <= 8*m.n+1024 {
		cnt := make([]int32, m.maxD+1)
		for i := 0; i < m.n; i++ {
			for j := range cnt {
				cnt[j] = 0
			}
			for j := 0; j < m.n; j++ {
				if j != i {
					cnt[m.Dist(i, j)]++
				}
			}
			out[i] = kthFromCounts(cnt, r)
		}
		return out
	}
	buf := make([]int, 0, m.n-1)
	for i := 0; i < m.n; i++ {
		buf = buf[:0]
		for j := 0; j < m.n; j++ {
			if j != i {
				buf = append(buf, m.Dist(i, j))
			}
		}
		out[i] = kthSmallest(buf, r)
	}
	return out
}

// kthSmallest returns the r-th smallest element (1-based) of xs,
// mutating xs. If r > len(xs) it returns the maximum.
func kthSmallest(xs []int, r int) int {
	if len(xs) == 0 {
		return 0
	}
	if r > len(xs) {
		r = len(xs)
	}
	// Simple partial selection sort: r is tiny (k−1 ≤ a handful).
	for a := 0; a < r; a++ {
		min := a
		for b := a + 1; b < len(xs); b++ {
			if xs[b] < xs[min] {
				min = b
			}
		}
		xs[a], xs[min] = xs[min], xs[a]
	}
	return xs[r-1]
}
