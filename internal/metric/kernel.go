package metric

import (
	"context"
	"fmt"

	"kanon/internal/relation"
)

// Kernel is the read interface over pairwise row distances that the
// cover, core, algo, and exact layers consume. Two implementations
// exist: the dense precomputed Matrix (O(n²) memory, O(1) lookups) and
// the matrix-free BitKernel (O(n·m/64) memory, popcount lookups). Both
// return identical values for every query, so every solver is
// byte-identical across kernels; the choice is purely a time/memory
// trade-off.
type Kernel interface {
	// Len reports the number of rows the kernel covers.
	Len() int
	// Dist returns d(row i, row j).
	Dist(i, j int) int
	// MaxDist returns an upper bound on every pairwise distance, tight
	// enough to size counting-sort buckets (exact for Matrix, the
	// degree bound for BitKernel).
	MaxDist() int
	// Diameter returns the maximum pairwise distance within the index
	// set (0 for empty or singleton sets).
	Diameter(indices []int) int
	// DiameterWith returns the diameter of indices ∪ {extra} given the
	// diameter of indices, in O(|indices|).
	DiameterWith(indices []int, current int, extra int) int
	// Ball returns the indices v with d(center, v) ≤ radius, in index
	// order — the paper's S_{c,i} (§4.3).
	Ball(center, radius int) []int
	// KthNearest returns, for each row i, the distance to its r-th
	// nearest other row (r ≥ 1).
	KthNearest(r int) []int
}

// RowFiller is an optional fast path a Kernel may provide: fill out
// (length Len()) with the full distance row of one center in a single
// pass. The cover package's counting-sort radius kernels use it via
// type assertion; kernels without it are queried pairwise.
type RowFiller interface {
	DistRow(center int, out []int32)
}

// Choice selects which kernel implementation NewKernelCtx builds.
type Choice int

const (
	// Auto picks Dense below AutoBitsetThreshold rows and Bitset at or
	// above it — small instances keep the O(1) lookups, large ones
	// avoid the O(n²) fill and footprint.
	Auto Choice = iota
	// Dense always builds the precomputed Matrix.
	Dense
	// Bitset always builds the matrix-free BitKernel.
	Bitset
)

// AutoBitsetThreshold is the row count at and above which Auto selects
// the matrix-free kernel. At n = 4096 the dense matrix is 32 MiB of
// int16 — already past L2/L3 on most hardware, so its O(1) lookups
// stop winning against popcount on cached bitset rows, while the fill
// alone costs an O(n²m) pass the bitset kernel never pays.
const AutoBitsetThreshold = 4096

// ParseChoice parses a kernel name as accepted by the -kernel flags:
// "auto", "dense", or "bitset".
func ParseChoice(s string) (Choice, error) {
	switch s {
	case "auto", "":
		return Auto, nil
	case "dense":
		return Dense, nil
	case "bitset":
		return Bitset, nil
	}
	return Auto, fmt.Errorf("metric: unknown kernel %q (want auto, dense, or bitset)", s)
}

// String renders the choice in ParseChoice's vocabulary.
func (c Choice) String() string {
	switch c {
	case Dense:
		return "dense"
	case Bitset:
		return "bitset"
	}
	return "auto"
}

// Resolve maps Auto to the concrete kernel a table of n rows gets.
func (c Choice) Resolve(n int) Choice {
	if c == Auto {
		if n >= AutoBitsetThreshold {
			return Bitset
		}
		return Dense
	}
	return c
}

// NewKernelCtx builds the distance kernel selected by choice for the
// Hamming metric over t's rows, polling ctx during construction (per
// row for the dense fill, per row block for the bitset packing).
// Workers bounds the dense fill's parallelism and is ignored by the
// bitset kernel, whose construction is a single O(n·m) pass. The
// returned error wraps ctx.Err().
func NewKernelCtx(ctx context.Context, t *relation.Table, choice Choice, workers int) (Kernel, error) {
	if choice.Resolve(t.Len()) == Bitset {
		return NewBitKernelCtx(ctx, t)
	}
	return NewMatrixCtx(ctx, t, workers)
}
