package metric

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"testing"

	"kanon/internal/relation"
)

// kernelTable builds a random table whose column alphabets and star
// density are drawn per column, so both BitKernel layouts appear: small
// alphabets pack one-hot, alphabets wider than the 64-bit word fall
// back to packed codes.
func kernelTable(rng *rand.Rand, n, m int, maxSigma int, starP float64) *relation.Table {
	names := make([]string, m)
	for j := range names {
		names[j] = "c" + strconv.Itoa(j)
	}
	tab := relation.NewTable(relation.NewSchema(names...))
	sigma := make([]int, m)
	for j := range sigma {
		sigma[j] = 1 + rng.Intn(maxSigma)
	}
	for i := 0; i < n; i++ {
		row := make([]string, m)
		for j := range row {
			if rng.Float64() < starP {
				row[j] = relation.StarString
			} else {
				row[j] = strconv.Itoa(rng.Intn(sigma[j]))
			}
		}
		if err := tab.AppendStrings(row...); err != nil {
			panic(err)
		}
	}
	return tab
}

// kernelShapes spans the layouts the equivalence suite must cover:
// one-hot-only, the packed high-cardinality fallback, wide tables with
// m > 64 columns, and star-heavy rows.
var kernelShapes = []struct {
	name     string
	n, m     int
	maxSigma int
	starP    float64
}{
	{"small_onehot", 40, 4, 5, 0.1},
	{"high_cardinality", 60, 3, 200, 0.05},
	{"wide_m70", 30, 70, 4, 0.1},
	{"star_heavy", 50, 6, 3, 0.5},
	{"mixed", 80, 9, 90, 0.15},
}

// TestKernelEquivalence is the cross-kernel property suite: for random
// tables over every shape, the BitKernel must agree with the row-wise
// Distance definition and with the dense Matrix on every interface
// method, under workers 1 and 4.
func TestKernelEquivalence(t *testing.T) {
	for _, shape := range kernelShapes {
		t.Run(shape.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(shape.name)) * 7919))
			tab := kernelTable(rng, shape.n, shape.m, shape.maxSigma, shape.starP)
			for _, workers := range []int{1, 4} {
				mat, err := NewMatrixCtx(context.Background(), tab, workers)
				if err != nil {
					t.Fatalf("NewMatrixCtx: %v", err)
				}
				bit, err := NewBitKernelCtx(context.Background(), tab)
				if err != nil {
					t.Fatalf("NewBitKernelCtx: %v", err)
				}
				checkKernelsAgree(t, tab, mat, bit, rng)
			}
		})
	}
}

func checkKernelsAgree(t *testing.T, tab *relation.Table, mat *Matrix, bit *BitKernel, rng *rand.Rand) {
	t.Helper()
	n := tab.Len()
	if bit.Len() != n || mat.Len() != n {
		t.Fatalf("Len: matrix %d, bitkernel %d, want %d", mat.Len(), bit.Len(), n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := Distance(tab.Row(i), tab.Row(j))
			if got := bit.Dist(i, j); got != want {
				t.Fatalf("BitKernel.Dist(%d,%d) = %d, want %d", i, j, got, want)
			}
			if got := mat.Dist(i, j); got != want {
				t.Fatalf("Matrix.Dist(%d,%d) = %d, want %d", i, j, got, want)
			}
			if want > bit.MaxDist() {
				t.Fatalf("BitKernel.MaxDist() = %d below realized distance %d", bit.MaxDist(), want)
			}
		}
	}

	// DistRow agreement (both kernels implement RowFiller).
	rowM, rowB := make([]int32, n), make([]int32, n)
	for _, c := range []int{0, n / 2, n - 1} {
		mat.DistRow(c, rowM)
		bit.DistRow(c, rowB)
		for i := range rowM {
			if rowM[i] != rowB[i] {
				t.Fatalf("DistRow(%d)[%d]: matrix %d, bitkernel %d", c, i, rowM[i], rowB[i])
			}
		}
	}

	// Balls at every radius up to MaxDist for sampled centers.
	for trial := 0; trial < 8; trial++ {
		c := rng.Intn(n)
		for r := 0; r <= bit.MaxDist(); r++ {
			bm, bb := mat.Ball(c, r), bit.Ball(c, r)
			if len(bm) != len(bb) {
				t.Fatalf("Ball(%d,%d): matrix %d members, bitkernel %d", c, r, len(bm), len(bb))
			}
			for i := range bm {
				if bm[i] != bb[i] {
					t.Fatalf("Ball(%d,%d)[%d]: matrix %d, bitkernel %d", c, r, i, bm[i], bb[i])
				}
			}
		}
	}

	// Diameter and DiameterWith over random subsets.
	for trial := 0; trial < 12; trial++ {
		size := 1 + rng.Intn(n-1)
		idx := rng.Perm(n)[:size]
		dm, db := mat.Diameter(idx), bit.Diameter(idx)
		if dm != db {
			t.Fatalf("Diameter(%v): matrix %d, bitkernel %d", idx, dm, db)
		}
		extra := rng.Intn(n)
		wm := mat.DiameterWith(idx, dm, extra)
		wb := bit.DiameterWith(idx, db, extra)
		if wm != wb {
			t.Fatalf("DiameterWith(%v,%d,%d): matrix %d, bitkernel %d", idx, dm, extra, wm, wb)
		}
	}

	// KthNearest for every meaningful rank.
	for r := 1; r < n; r += 1 + n/7 {
		km, kb := mat.KthNearest(r), bit.KthNearest(r)
		for i := range km {
			if km[i] != kb[i] {
				t.Fatalf("KthNearest(%d)[%d]: matrix %d, bitkernel %d", r, i, km[i], kb[i])
			}
		}
	}
}

func TestChoiceParseAndString(t *testing.T) {
	cases := []struct {
		in   string
		want Choice
		ok   bool
	}{
		{"auto", Auto, true},
		{"", Auto, true},
		{"dense", Dense, true},
		{"bitset", Bitset, true},
		{"matrix", 0, false},
	}
	for _, c := range cases {
		got, err := ParseChoice(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParseChoice(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, c := range []Choice{Auto, Dense, Bitset} {
		back, err := ParseChoice(c.String())
		if err != nil || back != c {
			t.Errorf("ParseChoice(%v.String()) = %v, %v; want identity", c, back, err)
		}
	}
}

func TestChoiceResolve(t *testing.T) {
	if got := Auto.Resolve(AutoBitsetThreshold - 1); got != Dense {
		t.Errorf("Auto.Resolve(small) = %v, want Dense", got)
	}
	if got := Auto.Resolve(AutoBitsetThreshold); got != Bitset {
		t.Errorf("Auto.Resolve(threshold) = %v, want Bitset", got)
	}
	if got := Dense.Resolve(1 << 20); got != Dense {
		t.Errorf("Dense.Resolve stays Dense, got %v", got)
	}
	if got := Bitset.Resolve(2); got != Bitset {
		t.Errorf("Bitset.Resolve stays Bitset, got %v", got)
	}
}

func TestNewKernelCtxSelectsBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := kernelTable(rng, 16, 4, 4, 0.1)
	k, err := NewKernelCtx(context.Background(), tab, Auto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.(*Matrix); !ok {
		t.Errorf("Auto on a small table built %T, want *Matrix", k)
	}
	k, err = NewKernelCtx(context.Background(), tab, Bitset, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.(*BitKernel); !ok {
		t.Errorf("forced Bitset built %T, want *BitKernel", k)
	}
}

func TestBitKernelCtxCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tab := kernelTable(rng, 4096, 4, 4, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewBitKernelCtx(ctx, tab); !errors.Is(err, context.Canceled) {
		t.Errorf("NewBitKernelCtx on a cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestNewMatrixFuncCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewMatrixFuncCtx(ctx, 64, 1, func(i, j int) int { return 1 })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("NewMatrixFuncCtx on a cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestNewMatrixFuncCtxMatchesSequential pins the ctx/workers variant to
// the plain constructor for a nontrivial distance function.
func TestNewMatrixFuncCtxMatchesSequential(t *testing.T) {
	n := 37
	dist := func(i, j int) int { return (i*31 + j*17) % 23 }
	sym := func(i, j int) int {
		if i > j {
			i, j = j, i
		}
		return dist(i, j)
	}
	want := NewMatrixFunc(n, sym)
	for _, workers := range []int{1, 3, 8} {
		got, err := NewMatrixFuncCtx(context.Background(), n, workers, sym)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if want.Dist(i, j) != got.Dist(i, j) {
					t.Fatalf("workers=%d: Dist(%d,%d) = %d, want %d",
						workers, i, j, got.Dist(i, j), want.Dist(i, j))
				}
			}
		}
	}
}

func TestRadixPackerMatchesProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tab := kernelTable(rng, 60, 6, 8, 0.2)
	pk := NewRadixPacker(tab)
	if pk == nil {
		t.Fatal("NewRadixPacker returned nil for a small-alphabet table")
	}
	n, m := tab.Len(), tab.Degree()
	projEqual := func(i, j int, pat uint) bool {
		for c := 0; c < m; c++ {
			if pat&(1<<uint(c)) == 0 {
				continue
			}
			if tab.Row(i)[c] != tab.Row(j)[c] {
				return false
			}
		}
		return true
	}
	for pat := uint(0); pat < 1<<uint(m); pat += 5 {
		for trial := 0; trial < 50; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			keysEqual := pk.ProjectionKey(i, pat) == pk.ProjectionKey(j, pat)
			if keysEqual != projEqual(i, j, pat) {
				t.Fatalf("pattern %b rows (%d,%d): key equality %v, projection equality %v",
					pat, i, j, keysEqual, projEqual(i, j, pat))
			}
		}
	}
}

// TestBitKernelAllPackedColumns drives the layout where every column
// exceeds the one-hot word width, so the kernel has no bitset words at
// all and distances come entirely from the packed-code comparison.
func TestBitKernelAllPackedColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	names := []string{"a", "b", "c"}
	tab := relation.NewTable(relation.NewSchema(names...))
	for i := 0; i < 80; i++ {
		row := make([]string, len(names))
		for j := range row {
			if rng.Intn(10) == 0 {
				row[j] = relation.StarString
			} else {
				row[j] = strconv.Itoa(rng.Intn(120))
			}
		}
		if err := tab.AppendStrings(row...); err != nil {
			t.Fatal(err)
		}
	}
	// Force every alphabet past the one-hot cutoff.
	for j := 0; j < len(names); j++ {
		a := tab.Schema().Attribute(j)
		for v := 0; v < 120; v++ {
			a.Intern(strconv.Itoa(v))
		}
	}
	bit := NewBitKernel(tab)
	mat := NewMatrix(tab)
	checkKernelsAgree(t, tab, mat, bit, rng)
}

// TestKthNearestLargeRangeFallback pins the counting-sort cutoff: a
// metric whose range dwarfs n must take the selection path and still
// agree with a naive sort.
func TestKthNearestLargeRangeFallback(t *testing.T) {
	n := 20
	scale := 8*n + 2048 // maxD past the bucket cutoff
	dist := func(i, j int) int {
		if i == j {
			return 0
		}
		return ((i*13 + j*7) % 11) * scale / 11
	}
	sym := func(i, j int) int {
		if i > j {
			i, j = j, i
		}
		return dist(i, j)
	}
	mat := NewMatrixFunc(n, sym)
	if mat.maxD <= 8*n+1024 {
		t.Fatalf("test metric range %d does not exceed the cutoff", mat.maxD)
	}
	for _, r := range []int{1, 3, n - 1, n + 5} {
		got := mat.KthNearest(r)
		for i := 0; i < n; i++ {
			ds := make([]int, 0, n-1)
			for j := 0; j < n; j++ {
				if j != i {
					ds = append(ds, sym(i, j))
				}
			}
			want := naiveKth(ds, r)
			if got[i] != want {
				t.Fatalf("KthNearest(%d)[%d] = %d, want %d", r, i, got[i], want)
			}
		}
	}
}

func naiveKth(ds []int, r int) int {
	s := append([]int(nil), ds...)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	if r > len(s) {
		return s[len(s)-1]
	}
	return s[r-1]
}

// TestWideMatrixRowFillerAndKthNearest covers the int32 (widened)
// matrix's DistRow and counting-sort paths.
func TestWideMatrixRowFillerAndKthNearest(t *testing.T) {
	n := 12
	big := 40_000 // past MaxInt16 after doubling? No — directly > 32767 to force widening
	sym := func(i, j int) int {
		if i == j {
			return 0
		}
		return big + (i+j)%7
	}
	mat := NewMatrixFunc(n, sym)
	if !mat.Wide() {
		t.Fatal("matrix did not widen past int16")
	}
	out := make([]int32, n)
	mat.DistRow(3, out)
	for j := range out {
		if int(out[j]) != sym(3, j) {
			t.Fatalf("wide DistRow[%d] = %d, want %d", j, out[j], sym(3, j))
		}
	}
	got := mat.KthNearest(2)
	for i := range got {
		ds := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				ds = append(ds, sym(i, j))
			}
		}
		if want := naiveKth(ds, 2); got[i] != want {
			t.Fatalf("wide KthNearest(2)[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestRadixPackerOverflowReturnsNil(t *testing.T) {
	// 11 columns of alphabet ~64 give (64+1)^11 ≈ 2^66 > 2^64 states.
	names := make([]string, 11)
	for j := range names {
		names[j] = "c" + strconv.Itoa(j)
	}
	tab := relation.NewTable(relation.NewSchema(names...))
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		row := make([]string, len(names))
		for j := range row {
			row[j] = strconv.Itoa(rng.Intn(64))
		}
		if err := tab.AppendStrings(row...); err != nil {
			t.Fatal(err)
		}
	}
	if pk := NewRadixPacker(tab); pk != nil {
		t.Error("NewRadixPacker should refuse a key space past uint64")
	}
}
