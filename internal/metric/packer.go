package metric

import (
	"math/bits"

	"kanon/internal/relation"
)

// RadixPacker assigns every (column, symbol) pair a mixed-radix weight
// so that a row's projection onto any column subset hashes perfectly
// into a uint64. Column j with alphabet Σ_j gets radix |Σ_j|+1 (slot 0
// for relation.Star, slot c+1 for code c) and positional weight
// w_j = Π_{i<j}(|Σ_i|+1); a projection key is Σ_{j∈P} w_j·slot_j.
// Uniqueness of the mixed-radix representation makes keys collide
// exactly when the projections agree — excluded columns contribute the
// zero digit for both rows being compared, so they never mix with
// in-pattern stars. The pattern solver uses this in place of byte-string
// bucket keys, turning each of its 2^m bucket passes from string
// hashing and allocation into integer map inserts.
type RadixPacker struct {
	m      int
	digits []uint64 // n×m, digits[i*m+j] = w_j · slot(row_i[j])
}

// NewRadixPacker precomputes the per-row digits for t, or returns nil
// when the full-width radix product overflows uint64 (astronomically
// wide or high-cardinality tables); callers then keep their generic
// bucketing path.
func NewRadixPacker(t *relation.Table) *RadixPacker {
	n, m := t.Len(), t.Degree()
	sch := t.Schema()
	weights := make([]uint64, m)
	w := uint64(1)
	for j := 0; j < m; j++ {
		weights[j] = w
		radix := uint64(sch.Attribute(j).AlphabetSize() + 1)
		hi, lo := bits.Mul64(w, radix)
		if hi != 0 {
			return nil
		}
		w = lo
	}
	p := &RadixPacker{m: m, digits: make([]uint64, n*m)}
	for i := 0; i < n; i++ {
		row := t.Row(i)
		d := p.digits[i*m : (i+1)*m]
		for j, code := range row {
			d[j] = weights[j] * uint64(slotOf(code))
		}
	}
	return p
}

// ProjectionKey returns the perfect-hash key of row i projected onto
// the columns set in the pattern bitmask.
func (p *RadixPacker) ProjectionKey(i int, pattern uint) uint64 {
	d := p.digits[i*p.m : (i+1)*p.m]
	key := uint64(0)
	for pat := pattern; pat != 0; pat &= pat - 1 {
		key += d[bits.TrailingZeros(pat)]
	}
	return key
}
