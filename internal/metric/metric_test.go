package metric

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"kanon/internal/relation"
)

func TestDistanceBasics(t *testing.T) {
	tab := relation.MustFromBitstrings("1010", "1110", "0110")
	cases := []struct {
		i, j, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 2, 1},
		{0, 2, 2}, // the paper's §4 example: 1010 and 0110 differ in two coordinates
	}
	for _, c := range cases {
		if got := Distance(tab.Row(c.i), tab.Row(c.j)); got != c.want {
			t.Errorf("Distance(row %d, row %d) = %d, want %d", c.i, c.j, got, c.want)
		}
	}
}

func TestDistanceWithStars(t *testing.T) {
	u := relation.Row{relation.Star, 1, 2}
	v := relation.Row{relation.Star, 1, 3}
	if got := Distance(u, v); got != 1 {
		t.Errorf("Distance = %d, want 1 (stars compare equal)", got)
	}
	w := relation.Row{0, 1, 3}
	if got := Distance(u, w); got != 2 {
		t.Errorf("Distance = %d, want 2 (star differs from concrete)", got)
	}
}

// TestDistanceIsMetric verifies the paper's remark that d is a metric,
// using testing/quick over random vector triples.
func TestDistanceIsMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(12)
		mk := func() relation.Row {
			r := make(relation.Row, m)
			for j := range r {
				r[j] = int32(rng.Intn(3))
			}
			return r
		}
		u, v, w := mk(), mk(), mk()
		duv, dvu := Distance(u, v), Distance(v, u)
		if duv != dvu { // symmetry
			return false
		}
		if Distance(u, u) != 0 { // identity
			return false
		}
		if duv == 0 && !u.Equal(v) { // separation
			return false
		}
		// triangle inequality
		return Distance(u, w) <= duv+Distance(v, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDiameter(t *testing.T) {
	tab := relation.MustFromBitstrings("1010", "1110", "0110")
	// The paper's example: the 3-group has diameter 2.
	if got := Diameter(tab, []int{0, 1, 2}); got != 2 {
		t.Errorf("Diameter = %d, want 2", got)
	}
	if got := Diameter(tab, []int{1}); got != 0 {
		t.Errorf("singleton Diameter = %d, want 0", got)
	}
	if got := Diameter(tab, nil); got != 0 {
		t.Errorf("empty Diameter = %d, want 0", got)
	}
	rows := []relation.Row{tab.Row(0), tab.Row(2)}
	if got := DiameterRows(rows); got != 2 {
		t.Errorf("DiameterRows = %d, want 2", got)
	}
}

func randomTable(rng *rand.Rand, n, m, sigma int) *relation.Table {
	vecs := make([][]int, n)
	for i := range vecs {
		v := make([]int, m)
		for j := range v {
			v[j] = rng.Intn(sigma)
		}
		vecs[i] = v
	}
	return relation.MustFromVectors(vecs)
}

func TestMatrixAgreesWithDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := randomTable(rng, 20, 6, 3)
	m := NewMatrix(tab)
	if m.Len() != 20 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < tab.Len(); i++ {
		for j := 0; j < tab.Len(); j++ {
			want := Distance(tab.Row(i), tab.Row(j))
			if got := m.Dist(i, j); got != want {
				t.Fatalf("Dist(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestMatrixDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := randomTable(rng, 15, 5, 2)
	m := NewMatrix(tab)
	sets := [][]int{{0, 1, 2}, {3, 7, 9, 14}, {5}, {}}
	for _, s := range sets {
		if got, want := m.Diameter(s), Diameter(tab, s); got != want {
			t.Errorf("Matrix.Diameter(%v) = %d, want %d", s, got, want)
		}
	}
}

func TestDiameterWith(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tab := randomTable(rng, 12, 6, 3)
	m := NewMatrix(tab)
	set := []int{1, 4, 7}
	cur := m.Diameter(set)
	for extra := 0; extra < tab.Len(); extra++ {
		want := m.Diameter(append([]int{extra}, set...))
		if got := m.DiameterWith(set, cur, extra); got != want {
			t.Errorf("DiameterWith(%v, %d) = %d, want %d", set, extra, got, want)
		}
	}
}

func TestBall(t *testing.T) {
	tab := relation.MustFromBitstrings("0000", "1000", "1100", "1110", "1111")
	m := NewMatrix(tab)
	got := m.Ball(0, 2)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Ball(0,2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ball(0,2) = %v, want %v", got, want)
		}
	}
	if got := m.Ball(0, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("Ball(0,0) = %v, want [0]", got)
	}
	if got := m.Ball(0, 4); len(got) != 5 {
		t.Errorf("Ball(0,4) = %v, want all 5", got)
	}
}

// TestBallDiameterLemma42 checks Lemma 4.2: d(S_{c,i}) ≤ 2i.
func TestBallDiameterLemma42(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		mdeg := 2 + rng.Intn(8)
		tab := randomTable(rng, n, mdeg, 2+rng.Intn(3))
		mat := NewMatrix(tab)
		c := rng.Intn(n)
		i := rng.Intn(mdeg + 1)
		ball := mat.Ball(c, i)
		return mat.Diameter(ball) <= 2*i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKthNearest(t *testing.T) {
	tab := relation.MustFromBitstrings("0000", "0001", "0011", "1111")
	m := NewMatrix(tab)
	// Distances from row 0: 1, 2, 4.
	got := m.KthNearest(1)
	if got[0] != 1 {
		t.Errorf("KthNearest(1)[0] = %d, want 1", got[0])
	}
	got = m.KthNearest(2)
	if got[0] != 2 {
		t.Errorf("KthNearest(2)[0] = %d, want 2", got[0])
	}
	got = m.KthNearest(3)
	if got[0] != 4 {
		t.Errorf("KthNearest(3)[0] = %d, want 4", got[0])
	}
	// r beyond n−1 clamps to the maximum.
	got = m.KthNearest(99)
	if got[0] != 4 {
		t.Errorf("KthNearest(99)[0] = %d, want 4", got[0])
	}
	// r ≤ 0 is all zeros.
	got = m.KthNearest(0)
	for i, v := range got {
		if v != 0 {
			t.Errorf("KthNearest(0)[%d] = %d, want 0", i, v)
		}
	}
}

func TestKthSmallest(t *testing.T) {
	cases := []struct {
		xs   []int
		r    int
		want int
	}{
		{[]int{5, 1, 3}, 1, 1},
		{[]int{5, 1, 3}, 2, 3},
		{[]int{5, 1, 3}, 3, 5},
		{[]int{5, 1, 3}, 9, 5},
		{[]int{2}, 1, 2},
		{nil, 1, 0},
	}
	for _, c := range cases {
		xs := append([]int(nil), c.xs...)
		if got := kthSmallest(xs, c.r); got != c.want {
			t.Errorf("kthSmallest(%v, %d) = %d, want %d", c.xs, c.r, got, c.want)
		}
	}
}

// TestMatrixParallelMatchesSerial builds a matrix large enough to take
// the parallel path and cross-checks every entry against Distance.
func TestMatrixParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tab := randomTable(rng, parallelThreshold+40, 5, 3)
	m := NewMatrix(tab)
	for trial := 0; trial < 2000; trial++ {
		i, j := rng.Intn(tab.Len()), rng.Intn(tab.Len())
		if want := Distance(tab.Row(i), tab.Row(j)); m.Dist(i, j) != want {
			t.Fatalf("Dist(%d,%d) = %d, want %d", i, j, m.Dist(i, j), want)
		}
	}
}

func TestMatrixFuncWidensPastInt16(t *testing.T) {
	// A metric whose distances exceed math.MaxInt16 (e.g. heavily
	// weighted columns) must widen to int32 storage, not silently
	// truncate.
	n := 6
	dist := func(i, j int) int {
		if i == j {
			return 0
		}
		return 40000 + (i+j)*1000
	}
	m := NewMatrixFunc(n, dist)
	if !m.Wide() {
		t.Fatal("matrix with distances > MaxInt16 did not widen")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0
			if i != j {
				lo, hi := i, j
				if lo > hi {
					lo, hi = hi, lo
				}
				want = dist(lo, hi)
			}
			if m.Dist(i, j) != want {
				t.Fatalf("Dist(%d,%d) = %d, want %d", i, j, m.Dist(i, j), want)
			}
		}
	}
	if m.MaxDist() != 40000+(4+5)*1000 {
		t.Fatalf("MaxDist = %d", m.MaxDist())
	}
}

func TestMatrixFuncNarrowStaysNarrow(t *testing.T) {
	m := NewMatrixFunc(4, func(i, j int) int { return i + j })
	if m.Wide() {
		t.Fatal("small distances should keep int16 storage")
	}
	if m.MaxDist() != 5 {
		t.Fatalf("MaxDist = %d, want 5", m.MaxDist())
	}
}

func TestMatrixFuncNegativeDistancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative distance did not panic")
		}
	}()
	NewMatrixFunc(3, func(i, j int) int { return -1 })
}

func TestMatrixWideTableGuard(t *testing.T) {
	// A table wider than 32767 columns used to overflow the int16
	// distance storage; it must now get int32 storage up front and
	// report exact Hamming distances.
	if testing.Short() {
		t.Skip("builds a 40000-column schema")
	}
	m := 40000
	names := make([]string, m)
	for j := range names {
		names[j] = "c" + string(rune('a'+j%26)) + fmt.Sprint(j)
	}
	tab := relation.NewTable(relation.NewSchema(names...))
	rowA := make([]string, m)
	rowB := make([]string, m)
	rowC := make([]string, m)
	for j := 0; j < m; j++ {
		rowA[j] = "a"
		rowB[j] = "b"
		rowC[j] = "a"
	}
	// rowC differs from rowA on exactly the first 33000 columns.
	for j := 0; j < 33000; j++ {
		rowC[j] = "c"
	}
	for _, r := range [][]string{rowA, rowB, rowC} {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatal(err)
		}
	}
	mat := NewMatrix(tab)
	if !mat.Wide() {
		t.Fatal("matrix over a 40000-column table did not use wide storage")
	}
	if got := mat.Dist(0, 1); got != m {
		t.Fatalf("Dist(0,1) = %d, want %d", got, m)
	}
	if got := mat.Dist(0, 2); got != 33000 {
		t.Fatalf("Dist(0,2) = %d, want 33000 (int16 would have overflowed)", got)
	}
	if mat.MaxDist() != m {
		t.Fatalf("MaxDist = %d, want %d", mat.MaxDist(), m)
	}
}

func TestNewMatrixWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := randomTable(rng, parallelThreshold+20, 6, 4)
	ref := NewMatrixWorkers(tab, 1)
	for _, workers := range []int{0, 2, 3, 8} {
		m := NewMatrixWorkers(tab, workers)
		for i := 0; i < tab.Len(); i++ {
			for j := 0; j < tab.Len(); j++ {
				if m.Dist(i, j) != ref.Dist(i, j) {
					t.Fatalf("workers=%d: Dist(%d,%d) = %d, want %d", workers, i, j, m.Dist(i, j), ref.Dist(i, j))
				}
			}
		}
		if m.MaxDist() != ref.MaxDist() {
			t.Fatalf("workers=%d: MaxDist = %d, want %d", workers, m.MaxDist(), ref.MaxDist())
		}
	}
}

// TestMatrixCtx pins the cancellable fill: a live context produces the
// same matrix as the plain constructors, a pre-cancelled one aborts
// with a wrapped ctx error at both worker counts.
func TestMatrixCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := randomTable(rng, parallelThreshold+10, 4, 3)
	want := NewMatrix(tab)
	got, err := NewMatrixCtx(context.Background(), tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.Len(); i++ {
		for j := 0; j < tab.Len(); j++ {
			if got.Dist(i, j) != want.Dist(i, j) {
				t.Fatalf("Dist(%d,%d) = %d, want %d", i, j, got.Dist(i, j), want.Dist(i, j))
			}
		}
	}
	if got.MaxDist() != want.MaxDist() {
		t.Fatalf("MaxDist = %d, want %d", got.MaxDist(), want.MaxDist())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := NewMatrixCtx(ctx, tab, workers); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}
