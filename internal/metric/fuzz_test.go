package metric

import (
	"context"
	"strconv"
	"testing"

	"kanon/internal/relation"
)

// FuzzBitKernel decodes arbitrary bytes into a small table — the byte
// stream supplies the shape (n, m), the per-column alphabet widths, and
// every cell, including stars — then cross-checks the matrix-free
// kernel against the row-wise Distance definition and the dense Matrix
// on all pairs, plus one Ball and one KthNearest query. Any
// disagreement is a found bug: the kernels are specified to be
// byte-identical.
func FuzzBitKernel(f *testing.F) {
	f.Add([]byte{3, 2, 4, 4, 0, 1, 2, 3, 0, 0})
	f.Add([]byte{5, 1, 200, 9, 8, 7, 6, 5})
	f.Add([]byte("\x04\x03**any bytes at all**"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		n := 1 + int(next())%24
		m := 1 + int(next())%80
		sigma := make([]int, m)
		for j := range sigma {
			// Widths past 63 force the packed (non-one-hot) layout.
			sigma[j] = 1 + int(next())%200
		}
		names := make([]string, m)
		for j := range names {
			names[j] = "c" + strconv.Itoa(j)
		}
		tab := relation.NewTable(relation.NewSchema(names...))
		for i := 0; i < n; i++ {
			row := make([]string, m)
			for j := range row {
				v := int(next())
				if v%7 == 0 {
					row[j] = relation.StarString
				} else {
					row[j] = strconv.Itoa(v % sigma[j])
				}
			}
			if err := tab.AppendStrings(row...); err != nil {
				t.Fatal(err)
			}
		}

		bit, err := NewBitKernelCtx(context.Background(), tab)
		if err != nil {
			t.Fatal(err)
		}
		mat := NewMatrix(tab)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := Distance(tab.Row(i), tab.Row(j))
				if got := bit.Dist(i, j); got != want {
					t.Fatalf("BitKernel.Dist(%d,%d) = %d, want %d (n=%d m=%d)", i, j, got, want, n, m)
				}
				if got := mat.Dist(i, j); got != want {
					t.Fatalf("Matrix.Dist(%d,%d) = %d, want %d (n=%d m=%d)", i, j, got, want, n, m)
				}
			}
		}
		c := int(next()) % n
		r := int(next()) % (bit.MaxDist() + 1)
		bm, bb := mat.Ball(c, r), bit.Ball(c, r)
		if len(bm) != len(bb) {
			t.Fatalf("Ball(%d,%d): matrix %v, bitkernel %v", c, r, bm, bb)
		}
		for i := range bm {
			if bm[i] != bb[i] {
				t.Fatalf("Ball(%d,%d): matrix %v, bitkernel %v", c, r, bm, bb)
			}
		}
		if n > 1 {
			rank := 1 + int(next())%(n-1)
			km, kb := mat.KthNearest(rank), bit.KthNearest(rank)
			for i := range km {
				if km[i] != kb[i] {
					t.Fatalf("KthNearest(%d)[%d]: matrix %d, bitkernel %d", rank, i, km[i], kb[i])
				}
			}
		}
	})
}
