package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Progress tracks completion of a long-running pass — blocks streamed,
// cover elements covered — for live rendering (cmd/kanon -progress) and
// the /debug/obs endpoint. Done and Total are atomic, so hot paths feed
// it without locking; the creation time anchors the rate and ETA
// estimates. A nil *Progress is disabled: every method is a nil-check
// no-op, with no clock reads, same as the other instruments.
type Progress struct {
	start time.Time
	total atomic.Int64
	done  atomic.Int64
}

// SetTotal declares the number of work units the pass will complete.
func (p *Progress) SetTotal(n int64) {
	if p == nil {
		return
	}
	p.total.Store(n)
}

// Add records n completed work units.
func (p *Progress) Add(n int64) {
	if p == nil {
		return
	}
	p.done.Add(n)
}

// stat freezes the progress against the given instant.
func (p *Progress) stat(now time.Time) ProgressStat {
	return ProgressStat{
		Done:      p.done.Load(),
		Total:     p.total.Load(),
		ElapsedNS: now.Sub(p.start).Nanoseconds(),
	}
}

// ProgressStat is frozen progress: units done of total, and the time
// elapsed since the instrument was created.
type ProgressStat struct {
	Done      int64 `json:"done"`
	Total     int64 `json:"total"`
	ElapsedNS int64 `json:"elapsed_ns"`
}

// Fraction returns completion in [0, 1] (0 when the total is unknown).
func (s ProgressStat) Fraction() float64 {
	if s.Total <= 0 {
		return 0
	}
	f := float64(s.Done) / float64(s.Total)
	if f > 1 {
		f = 1
	}
	return f
}

// ETA estimates the remaining wall time by linear extrapolation of the
// observed rate; 0 when nothing is done yet or the pass is complete.
func (s ProgressStat) ETA() time.Duration {
	if s.Done <= 0 || s.Total <= 0 || s.Done >= s.Total || s.ElapsedNS <= 0 {
		return 0
	}
	perUnit := float64(s.ElapsedNS) / float64(s.Done)
	return time.Duration(perUnit * float64(s.Total-s.Done))
}

// Progress returns the named progress instrument, creating it on first
// use (the creation instant anchors its ETA); nil on a nil tracer.
func (t *Tracer) Progress(name string) *Progress {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.progress == nil {
		t.progress = make(map[string]*Progress)
	}
	p := t.progress[name]
	if p == nil {
		p = &Progress{start: time.Now()}
		t.progress[name] = p
	}
	return p
}

// Progress is shorthand for s.Tracer().Progress(name); nil-safe.
func (s *Span) Progress(name string) *Progress {
	if s == nil {
		return nil
	}
	return s.tr.Progress(name)
}

// ProgressLine renders the snapshot's progress instruments as one
// compact status line ("cover.covered 1200/3000 40% eta 2.1s; ..."),
// or "" when nothing is in flight — what the -progress ticker prints.
func (s *Snapshot) ProgressLine() string {
	if s == nil || len(s.Progress) == 0 {
		return ""
	}
	names := make([]string, 0, len(s.Progress))
	for name := range s.Progress {
		names = append(names, name)
	}
	sort.Strings(names)
	var parts []string
	for _, name := range names {
		ps := s.Progress[name]
		if ps.Total <= 0 {
			continue
		}
		part := fmt.Sprintf("%s %d/%d %.0f%%", name, ps.Done, ps.Total, 100*ps.Fraction())
		if eta := ps.ETA(); eta > 0 {
			part += fmt.Sprintf(" eta %s", fmtDur(eta))
		}
		parts = append(parts, part)
	}
	return strings.Join(parts, "; ")
}
