package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo is the provenance stamp of the running binary: module
// version and VCS state from debug.ReadBuildInfo plus the toolchain.
// The CLIs print it for -version, embed it in the kanon-bench -json
// meta line, and record it in every RunManifest, so an experiment
// artifact always names the exact code that produced it.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Module is the main module path ("kanon").
	Module string `json:"module,omitempty"`
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version,omitempty"`
	// VCSRevision is the vcs.revision build setting (empty outside a
	// checkout or when buildvcs is off).
	VCSRevision string `json:"vcs_revision,omitempty"`
	// VCSModified is true when the working tree was dirty at build time.
	VCSModified bool `json:"vcs_modified,omitempty"`
}

// ReadBuild collects the binary's build provenance. Every field
// degrades gracefully: a test binary or GOFLAGS=-buildvcs=false build
// simply reports fewer fields.
func ReadBuild() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	bi.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.VCSRevision = s.Value
		case "vcs.modified":
			bi.VCSModified = s.Value == "true"
		}
	}
	return bi
}

// String renders a one-line -version stamp: module, version, VCS
// revision (with a +dirty marker), and toolchain.
func (b BuildInfo) String() string {
	out := b.Module
	if out == "" {
		out = "kanon"
	}
	if b.Version != "" {
		out += " " + b.Version
	}
	if b.VCSRevision != "" {
		rev := b.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if b.VCSModified {
			rev += "+dirty"
		}
		out += " " + rev
	}
	return fmt.Sprintf("%s (%s)", out, b.GoVersion)
}
