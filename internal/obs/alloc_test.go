package obs

import (
	"testing"
	"time"
)

// TestDisabledInstrumentsAllocateNothing extends the zero-allocation
// pin to the telemetry-export instruments: a nil Histogram, Progress,
// and Events must cost a nil check and nothing else.
func TestDisabledInstrumentsAllocateNothing(t *testing.T) {
	var h *Histogram
	var p *Progress
	var ev *Events
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(42)
		h.ObserveDuration(time.Millisecond)
		_ = h.Count()
		_ = h.Sum()
		p.SetTotal(10)
		p.Add(1)
		ev.RunStart("a", 1, 2, 3)
		ev.PhaseStart("p")
		ev.PhaseDone("p", time.Millisecond)
		ev.WorkerStart("w", 1)
		ev.WorkerDone("w", 1, time.Millisecond)
		ev.Anomaly("k", 7)
		ev.RunDone(0, time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("disabled instruments allocate %.1f objects per op, want 0", allocs)
	}
}

// BenchmarkDisabledInstruments is the CI allocation guard: run with
// -benchmem, the disabled paths must report 0 B/op and 0 allocs/op.
func BenchmarkDisabledInstruments(b *testing.B) {
	var tr *Tracer
	var h *Histogram
	var p *Progress
	var ev *Events
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("x")
		h.Observe(int64(i))
		p.Add(1)
		ev.PhaseStart("p")
		sp.End()
	}
}

// BenchmarkHistogramObserve measures the enabled hot path (two atomic
// adds and one atomic bucket increment — and 0 allocs/op).
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
