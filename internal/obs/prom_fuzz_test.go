package obs

import (
	"strings"
	"testing"
)

// FuzzPromText pins the exposition writer's safety property: no
// instrument name, label value, or observed value — however hostile —
// can make WritePrometheus emit text that fails the exposition lint.
// The CI fuzz smoke runs this briefly on every push.
func FuzzPromText(f *testing.F) {
	f.Add("cover.sets_picked", "stream.queue", "blk[0,512)", `quo"te\back`+"\nnl", int64(42), "kanon")
	f.Add("", "", "", "", int64(-1), "")
	f.Add("a.b", "a_b", "h_count", "progress_done", int64(1)<<40, "9ns")
	f.Add("span", "span_max", "x", "x", int64(0), "_")
	f.Fuzz(func(t *testing.T, cname, gname, hname, pname string, v int64, ns string) {
		tr := New()
		root := tr.Start(cname)
		root.Counter(cname).Add(v)
		root.Gauge(gname).Set(v)
		h := root.Histogram(hname)
		h.Observe(v)
		h.Observe(v / 2)
		p := root.Progress(pname)
		p.SetTotal(v)
		p.Add(1)
		sub := root.Start(gname)
		sub.End()
		root.End()

		var b strings.Builder
		if err := tr.Snapshot().WritePrometheus(&b, ns); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := LintPrometheus([]byte(b.String())); err != nil {
			t.Fatalf("lint: %v\nnames %q %q %q %q ns %q v %d\n%s",
				err, cname, gname, hname, pname, ns, v, b.String())
		}
	})
}
