package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestEventsJSON(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ev := NewEvents(l, "abc123")
	if !ev.Enabled() {
		t.Fatal("live events report disabled")
	}
	ev.RunStart("greedy-ball", 100, 8, 3)
	ev.PhaseStart("matrix")
	ev.PhaseDone("matrix", 5*time.Millisecond)
	ev.WorkerStart("stream", 2)
	ev.WorkerDone("stream", 2, time.Millisecond)
	ev.Anomaly("matrix_widened", 70000)
	ev.RunError(errors.New("boom"))
	ev.RunDone(42, 10*time.Millisecond)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d event lines, want 8:\n%s", len(lines), buf.String())
	}
	wantMsg := []string{"run_start", "phase_start", "phase_done", "worker_start", "worker_done", "anomaly", "run_error", "run_done"}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if rec["msg"] != wantMsg[i] {
			t.Errorf("line %d msg = %v, want %s", i, rec["msg"], wantMsg[i])
		}
		if rec["run_id"] != "abc123" {
			t.Errorf("line %d run_id = %v, want abc123", i, rec["run_id"])
		}
	}
	var start map[string]any
	_ = json.Unmarshal([]byte(lines[0]), &start)
	if start["algo"] != "greedy-ball" || start["n"] != float64(100) || start["k"] != float64(3) {
		t.Errorf("run_start fields wrong: %s", lines[0])
	}
	var anomaly map[string]any
	_ = json.Unmarshal([]byte(lines[5]), &anomaly)
	if anomaly["kind"] != "matrix_widened" || anomaly["magnitude"] != float64(70000) || anomaly["level"] != "WARN" {
		t.Errorf("anomaly fields wrong: %s", lines[5])
	}
}

func TestEventsNilSafety(t *testing.T) {
	if NewEvents(nil, "id") != nil {
		t.Error("NewEvents(nil) returned live events")
	}
	var ev *Events
	if ev.Enabled() {
		t.Error("nil events report enabled")
	}
	// None of these may panic.
	ev.RunStart("a", 1, 2, 3)
	ev.RunDone(0, 0)
	ev.RunError(errors.New("x"))
	ev.PhaseStart("p")
	ev.PhaseDone("p", 0)
	ev.WorkerStart("w", 0)
	ev.WorkerDone("w", 0, 0)
	ev.Anomaly("k", 1)
	// RunError with nil error is a no-op even on live events.
	var buf bytes.Buffer
	live := NewEvents(slog.New(slog.NewJSONHandler(&buf, nil)), "id")
	live.RunError(nil)
	if buf.Len() != 0 {
		t.Errorf("RunError(nil) logged: %s", buf.String())
	}
}

func TestNewRunID(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == b {
		t.Errorf("consecutive run IDs equal: %s", a)
	}
	if len(a) != 12 {
		t.Errorf("run ID %q length %d, want 12 hex chars", a, len(a))
	}
	for _, c := range a {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Errorf("run ID %q has non-hex char %q", a, c)
		}
	}
}
