package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Snapshot is a tracer's state frozen into plain serializable data: the
// span tree plus the counter and gauge registries. It is the type the
// public facade returns (kanon.Result.Stats) and what the CLIs render
// as a phase tree or emit as JSON. encoding/json sorts map keys, so the
// serialized form is deterministic for a given run.
type Snapshot struct {
	// Node identifies the process the snapshot came from (the kanond
	// node ID), so an aggregator scraping /debug/obs can label each
	// node's series without a second probe. Empty outside cluster mode.
	Node       string                   `json:"node,omitempty"`
	Spans      []SpanSnapshot           `json:"spans,omitempty"`
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]GaugeStat     `json:"gauges,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
	Progress   map[string]ProgressStat  `json:"progress,omitempty"`
}

// SpanSnapshot is one frozen span. StartNS is the offset from the
// parent span's start (0 for roots), DurNS the measured duration; both
// are integer nanoseconds so JSON round-trips exactly. WallNS anchors
// the span to the wall clock (UnixNano at start) so timelines recorded
// by different processes — a job's segments before and after a lease
// steal — can be ordered against each other; within one process,
// StartNS offsets (monotonic clock) remain the precise ordering.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	StartNS  int64          `json:"start_ns"`
	DurNS    int64          `json:"dur_ns"`
	WallNS   int64          `json:"wall_ns,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// GaugeStat is a frozen gauge: its final value and high-water mark.
type GaugeStat struct {
	Last int64 `json:"last"`
	Max  int64 `json:"max"`
}

// Snapshot freezes the tracer's current state. Unfinished spans are
// reported with their duration so far; the tracer remains usable (the
// debug endpoints poll it mid-run). Returns nil on a nil tracer.
func (t *Tracer) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := &Snapshot{}
	for _, r := range t.roots {
		// One time.Now() per root, taken under the lock: a now captured
		// before the lock lags by however long acquisition stalled, which
		// made an unfinished span's DurNS shrink between polls.
		snap.Spans = append(snap.Spans, snapSpan(r, r.start, time.Now()))
	}
	now := time.Now()
	if len(t.counters) > 0 {
		snap.Counters = make(map[string]int64, len(t.counters))
		for name, c := range t.counters {
			snap.Counters[name] = c.Load()
		}
	}
	if len(t.gauges) > 0 {
		snap.Gauges = make(map[string]GaugeStat, len(t.gauges))
		for name, g := range t.gauges {
			snap.Gauges[name] = GaugeStat{Last: g.Load(), Max: g.Max()}
		}
	}
	if len(t.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramStat, len(t.histograms))
		for name, h := range t.histograms {
			snap.Histograms[name] = h.stat()
		}
	}
	if len(t.progress) > 0 {
		snap.Progress = make(map[string]ProgressStat, len(t.progress))
		for name, p := range t.progress {
			snap.Progress[name] = p.stat(now)
		}
	}
	return snap
}

// snapSpan freezes s relative to parentStart; caller holds t.mu (child
// lists and attachments are only mutated under it).
func snapSpan(s *Span, parentStart, now time.Time) SpanSnapshot {
	d := s.dur
	if !s.ended {
		d = now.Sub(s.start)
	}
	out := SpanSnapshot{
		Name:    s.name,
		StartNS: s.start.Sub(parentStart).Nanoseconds(),
		DurNS:   d.Nanoseconds(),
		WallNS:  s.start.UnixNano(),
	}
	for _, c := range s.children {
		out.Children = append(out.Children, snapSpan(c, s.start, now))
	}
	out.Children = append(out.Children, s.attached...)
	sort.SliceStable(out.Children, func(a, b int) bool {
		return out.Children[a].StartNS < out.Children[b].StartNS
	})
	return out
}

// Merge folds other into s. Counters sum; gauges keep the larger max
// and other's last value; histograms merge bucket-wise; progress keeps
// the furthest state. Span roots from other are appended and the
// combined roots ordered by wall-clock anchor, so the two segments of a
// stolen job — recorded by different processes whose monotonic clocks
// don't compare — stitch into one chronological timeline. (To nest
// subtrees under a live span instead, graft with Span.Attach before
// snapshotting.) Used by the CLI to combine its own whole-run tracer
// with the facade's Stats, and by the server to stitch cross-node job
// traces.
func (s *Snapshot) Merge(other *Snapshot) {
	if s == nil || other == nil {
		return
	}
	if len(other.Spans) > 0 {
		s.Spans = append(s.Spans, other.Spans...)
		sort.SliceStable(s.Spans, func(a, b int) bool {
			return s.Spans[a].WallNS < s.Spans[b].WallNS
		})
	}
	if len(other.Counters) > 0 && s.Counters == nil {
		s.Counters = make(map[string]int64, len(other.Counters))
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	if len(other.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = make(map[string]GaugeStat, len(other.Gauges))
	}
	for name, g := range other.Gauges {
		cur, ok := s.Gauges[name]
		if !ok {
			s.Gauges[name] = g
			continue
		}
		if g.Max > cur.Max {
			cur.Max = g.Max
		}
		cur.Last = g.Last
		s.Gauges[name] = cur
	}
	if len(other.Histograms) > 0 && s.Histograms == nil {
		s.Histograms = make(map[string]HistogramStat, len(other.Histograms))
	}
	for name, h := range other.Histograms {
		cur := s.Histograms[name]
		cur.Merge(h)
		s.Histograms[name] = cur
	}
	if len(other.Progress) > 0 && s.Progress == nil {
		s.Progress = make(map[string]ProgressStat, len(other.Progress))
	}
	for name, p := range other.Progress {
		cur, ok := s.Progress[name]
		if !ok {
			s.Progress[name] = p
			continue
		}
		// Two views of the same pass, not two passes: keep the furthest
		// state rather than summing.
		if p.Done > cur.Done {
			cur.Done = p.Done
		}
		if p.Total > cur.Total {
			cur.Total = p.Total
		}
		if p.ElapsedNS > cur.ElapsedNS {
			cur.ElapsedNS = p.ElapsedNS
		}
		s.Progress[name] = cur
	}
}

// SpanTotalNS sums the durations of the root spans — "how much time the
// trace accounts for", the quantity the CI acceptance check compares
// against wall time.
func (s *Snapshot) SpanTotalNS() int64 {
	if s == nil {
		return 0
	}
	var total int64
	for _, r := range s.Spans {
		total += r.DurNS
	}
	return total
}

// WriteTree renders the snapshot as a human-readable phase tree —
// span durations with percent-of-root — followed by the counter and
// gauge registries in sorted order.
func (s *Snapshot) WriteTree(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, "(no trace)\n")
		return err
	}
	var b strings.Builder
	for _, root := range s.Spans {
		rootNS := root.DurNS
		if rootNS <= 0 {
			rootNS = 1 // avoid division by zero on empty spans
		}
		writeSpan(&b, root, "", "", rootNS)
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-36s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			g := s.Gauges[name]
			fmt.Fprintf(&b, "  %-36s %d (max %d)\n", name, g.Last, g.Max)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "  %-36s n=%d mean=%.1f p50≤%d p99≤%d\n",
				name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
		}
	}
	if len(s.Progress) > 0 {
		b.WriteString("progress:\n")
		for _, name := range sortedKeys(s.Progress) {
			p := s.Progress[name]
			fmt.Fprintf(&b, "  %-36s %d/%d (%.0f%%)\n", name, p.Done, p.Total, 100*p.Fraction())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSpan renders one span line and recurses with box-drawing
// prefixes; pct is relative to rootNS.
func writeSpan(b *strings.Builder, sp SpanSnapshot, prefix, childPrefix string, rootNS int64) {
	pct := 100 * float64(sp.DurNS) / float64(rootNS)
	label := prefix + sp.Name
	fmt.Fprintf(b, "%-44s %10s %6.1f%%\n", label, fmtDur(time.Duration(sp.DurNS)), pct)
	for i, c := range sp.Children {
		last := i == len(sp.Children)-1
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		writeSpan(b, c, childPrefix+branch, childPrefix+cont, rootNS)
	}
}

// fmtDur formats a duration for the tree at a stable width.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
