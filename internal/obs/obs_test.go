package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := New()
	root := tr.Start("root")
	a := root.Start("a")
	aa := a.Start("a.a")
	time.Sleep(time.Millisecond)
	aa.End()
	a.End()
	b := root.Start("b")
	b.End()
	root.End()

	snap := tr.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(snap.Spans))
	}
	r := snap.Spans[0]
	if r.Name != "root" || len(r.Children) != 2 {
		t.Fatalf("root = %q with %d children, want root with 2", r.Name, len(r.Children))
	}
	if r.Children[0].Name != "a" || r.Children[1].Name != "b" {
		t.Fatalf("children = %q, %q; want a, b", r.Children[0].Name, r.Children[1].Name)
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].Name != "a.a" {
		t.Fatalf("grandchildren wrong: %+v", r.Children[0].Children)
	}
	// Containment: a well-nested child never outlasts its parent.
	if got, limit := r.Children[0].Children[0].DurNS, r.Children[0].DurNS; got > limit {
		t.Errorf("child dur %d > parent dur %d", got, limit)
	}
	if r.DurNS < r.Children[0].DurNS {
		t.Errorf("root dur %d < child dur %d", r.DurNS, r.Children[0].DurNS)
	}
	if r.Children[1].StartNS < r.Children[0].StartNS {
		t.Errorf("children not in start order: %d before %d", r.Children[1].StartNS, r.Children[0].StartNS)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := New()
	sp := tr.Start("s")
	sp.End()
	first := tr.Snapshot().Spans[0].DurNS
	time.Sleep(2 * time.Millisecond)
	sp.End() // must not extend the span
	if again := tr.Snapshot().Spans[0].DurNS; again != first {
		t.Errorf("second End changed duration: %d → %d", first, again)
	}
}

func TestUnfinishedSpanReportsElapsed(t *testing.T) {
	tr := New()
	_ = tr.Start("open")
	time.Sleep(2 * time.Millisecond)
	if d := tr.Snapshot().Spans[0].DurNS; d < int64(time.Millisecond) {
		t.Errorf("unfinished span duration %d, want ≥ 1ms", d)
	}
}

// TestCounterAtomicity hammers one counter and one gauge from many
// goroutines; run under -race this doubles as the data-race proof.
func TestCounterAtomicity(t *testing.T) {
	tr := New()
	root := tr.Start("root")
	c := root.Counter("hits")
	g := root.Gauge("depth")
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Load(); got != 0 {
		t.Errorf("gauge settled at %d, want 0", got)
	}
	if max := g.Max(); max < 1 || max > workers {
		t.Errorf("gauge max = %d, want in [1, %d]", max, workers)
	}
	// Same name must return the same counter.
	if tr.Counter("hits") != c {
		t.Error("Counter(name) not idempotent")
	}
}

// TestConcurrentChildSpans mirrors the stream workers: many goroutines
// opening children under one parent. Run with -race.
func TestConcurrentChildSpans(t *testing.T) {
	tr := New()
	root := tr.Start("stream")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := root.Start(fmt.Sprintf("block-%d-%d", w, i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	snap := tr.Snapshot()
	if got := len(snap.Spans[0].Children); got != 8*50 {
		t.Errorf("child spans = %d, want %d", got, 8*50)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	tr := New()
	root := tr.Start("root")
	child := root.Start("phase")
	child.End()
	root.Counter("cover.sets_picked").Add(7)
	root.Gauge("queue").Set(3)
	root.Gauge("queue").Set(1)
	root.End()
	snap := tr.Snapshot()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*snap, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, *snap)
	}
	// Serialization is deterministic (encoding/json sorts map keys).
	data2, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("snapshot JSON not deterministic")
	}
}

// TestNilSafety drives the whole API through nil receivers — the
// disabled-tracer path every instrumented hot loop takes.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("ignored")
	if sp != nil {
		t.Fatal("nil tracer returned live span")
	}
	child := sp.Start("ignored")
	if child != nil {
		t.Fatal("nil span returned live child")
	}
	sp.End()
	sp.Attach(SpanSnapshot{Name: "x"})
	c := sp.Counter("n")
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Error("nil counter loaded nonzero")
	}
	g := sp.Gauge("n")
	g.Set(5)
	g.Add(1)
	if g.Load() != 0 || g.Max() != 0 {
		t.Error("nil gauge loaded nonzero")
	}
	if tr.Counter("n") != nil || tr.Gauge("n") != nil || sp.Tracer() != nil {
		t.Error("nil tracer handed out live instruments")
	}
	if tr.Snapshot() != nil {
		t.Error("nil tracer produced snapshot")
	}
	var ns *Snapshot
	if ns.SpanTotalNS() != 0 {
		t.Error("nil snapshot has span total")
	}
	ns.Merge(&Snapshot{Counters: map[string]int64{"a": 1}})
	if err := ns.WriteTree(io.Discard); err != nil {
		t.Errorf("nil snapshot WriteTree: %v", err)
	}
}

// TestDisabledPathAllocatesNothing pins the "compiled-out-cheap" claim:
// a disabled span is a nil check, with no clock reads or allocations.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var tr *Tracer
	var c *Counter
	var g *Gauge
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("x")
		inner := sp.Start("y")
		c.Add(1)
		g.Set(2)
		inner.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %.1f objects per op, want 0", allocs)
	}
}

func TestWriteTreeShape(t *testing.T) {
	snap := &Snapshot{
		Spans: []SpanSnapshot{{
			Name: "kanon", DurNS: int64(100 * time.Millisecond),
			Children: []SpanSnapshot{
				{Name: "load", DurNS: int64(10 * time.Millisecond)},
				{Name: "anonymize", DurNS: int64(80 * time.Millisecond),
					Children: []SpanSnapshot{{Name: "cover", StartNS: 1, DurNS: int64(60 * time.Millisecond)}}},
			},
		}},
		Counters: map[string]int64{"cover.sets_picked": 12},
		Gauges:   map[string]GaugeStat{"queue": {Last: 0, Max: 4}},
	}
	var b strings.Builder
	if err := snap.WriteTree(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"kanon", "├─ load", "└─ anonymize", "└─ cover", "100.0%", "cover.sets_picked", "queue", "(max 4)"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestMerge(t *testing.T) {
	a := &Snapshot{Counters: map[string]int64{"x": 1}, Gauges: map[string]GaugeStat{"g": {Last: 1, Max: 5}}}
	b := &Snapshot{Counters: map[string]int64{"x": 2, "y": 3}, Gauges: map[string]GaugeStat{"g": {Last: 2, Max: 3}, "h": {Last: 1, Max: 1}}}
	a.Merge(b)
	if a.Counters["x"] != 3 || a.Counters["y"] != 3 {
		t.Errorf("merged counters = %v", a.Counters)
	}
	if g := a.Gauges["g"]; g.Last != 2 || g.Max != 5 {
		t.Errorf("merged gauge = %+v, want last 2 max 5", g)
	}
	if _, ok := a.Gauges["h"]; !ok {
		t.Error("merge dropped new gauge")
	}
	// Merging into an empty snapshot allocates the maps.
	var c Snapshot
	c.Merge(b)
	if c.Counters["y"] != 3 || c.Gauges["h"].Max != 1 {
		t.Errorf("merge into empty = %+v", c)
	}
}

func TestDebugServer(t *testing.T) {
	tr := New()
	root := tr.Start("run")
	root.Counter("n").Add(42)
	srv, err := StartDebugServer("127.0.0.1:0", tr.Snapshot)
	if err != nil {
		t.Skipf("cannot listen on loopback in this environment: %v", err)
	}
	defer srv.Close()
	for _, path := range []string{"/debug/obs", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if path == "/debug/obs" && !strings.Contains(string(body), `"counters"`) {
			t.Errorf("obs endpoint body missing counters: %s", body)
		}
	}
}
