package obs

import "sync/atomic"

// Counter is a monotonically accumulating atomic int64. A nil *Counter
// is disabled: Add and Inc are nil-check no-ops and Load reports 0.
// Safe for concurrent use without external locking.
type Counter struct {
	v atomic.Int64
}

// Add accumulates d (negative deltas are permitted but unconventional).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a disabled counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that also tracks its high-water
// mark — queue depths, in-flight block counts. A nil *Gauge is disabled.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores v and raises the high-water mark if needed.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add moves the gauge by d and raises the high-water mark if needed.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(d))
}

// Load returns the current value (0 on a disabled gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 on a disabled gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// raise lifts the high-water mark to at least v.
func (g *Gauge) raise(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}
