package obs

import (
	"fmt"
	"io"
	"sort"
)

// Cluster-wide Prometheus aggregation: the router fetches one Snapshot
// per kanond node and renders them as a single exposition where every
// series carries a node label. Families are shared across nodes —
// HELP/TYPE once, one sample per node — so a scrape of the router reads
// like a scrape of the whole cluster. The single-snapshot
// WritePrometheus delegates here with one unlabeled entry, keeping the
// legacy output byte-identical.

// NodeSnapshot pairs a node identity with its frozen telemetry.
type NodeSnapshot struct {
	Node string
	Snap *Snapshot
}

// WritePrometheusNodes writes the snapshots as one Prometheus text
// exposition, labeling every sample with its node (the label is omitted
// for an empty node name, which reproduces the single-node format).
// Entries with nil snapshots are dropped; entries sharing a node name
// are merged first (Snapshot.Merge), since duplicate series within a
// family are invalid exposition. Output is deterministic: nodes sort by
// name, families by instrument name.
func WritePrometheusNodes(w io.Writer, namespace string, nodes []NodeSnapshot) error {
	if namespace == "" {
		namespace = "kanon"
	}
	merged := map[string]*Snapshot{}
	var order []string
	for _, n := range nodes {
		if n.Snap == nil {
			continue
		}
		if cur, ok := merged[n.Node]; ok {
			// Merge into a fresh snapshot so neither caller's is mutated.
			clone := &Snapshot{}
			clone.Merge(cur)
			clone.Merge(n.Snap)
			merged[n.Node] = clone
			continue
		}
		merged[n.Node] = n.Snap
		order = append(order, n.Node)
	}
	sort.Strings(order)

	e := &promEmitter{w: w, ns: promSanitizeLabelName(namespace), seen: map[string]bool{}}
	nodeLabel := func(node string, labels ...promLabel) []promLabel {
		if node == "" {
			return labels
		}
		return append(labels, promLabel{"node", node})
	}

	for _, name := range unionKeys(order, merged, func(s *Snapshot) []string { return sortedKeys(s.Counters) }) {
		fam := e.family(name, "_total")
		e.head(fam, fmt.Sprintf("obs counter %q", name), "counter")
		for _, node := range order {
			if v, ok := merged[node].Counters[name]; ok {
				e.series(fam, nodeLabel(node), fmt.Sprintf("%d", v))
			}
		}
	}
	for _, name := range unionKeys(order, merged, func(s *Snapshot) []string { return sortedKeys(s.Gauges) }) {
		fam := e.family(name, "")
		e.head(fam, fmt.Sprintf("obs gauge %q (current value)", name), "gauge")
		for _, node := range order {
			if g, ok := merged[node].Gauges[name]; ok {
				e.series(fam, nodeLabel(node), fmt.Sprintf("%d", g.Last))
			}
		}
		famMax := e.family(name, "_max")
		e.head(famMax, fmt.Sprintf("obs gauge %q (high-water mark)", name), "gauge")
		for _, node := range order {
			if g, ok := merged[node].Gauges[name]; ok {
				e.series(famMax, nodeLabel(node), fmt.Sprintf("%d", g.Max))
			}
		}
	}
	for _, name := range unionKeys(order, merged, func(s *Snapshot) []string { return sortedKeys(s.Histograms) }) {
		fam := e.familyMulti(name, "_bucket", "_sum", "_count")
		e.head(fam, fmt.Sprintf("obs histogram %q (log2 buckets)", name), "histogram")
		for _, node := range order {
			h, ok := merged[node].Histograms[name]
			if !ok {
				continue
			}
			cum := int64(0)
			for _, b := range h.Buckets {
				cum += b.Count
				e.series(fam+"_bucket", nodeLabel(node, promLabel{"le", fmt.Sprintf("%d", b.Le)}), fmt.Sprintf("%d", cum))
			}
			e.series(fam+"_bucket", nodeLabel(node, promLabel{"le", "+Inf"}), fmt.Sprintf("%d", h.Count))
			e.series(fam+"_sum", nodeLabel(node), fmt.Sprintf("%d", h.Sum))
			e.series(fam+"_count", nodeLabel(node), fmt.Sprintf("%d", h.Count))
		}
	}
	progNames := unionKeys(order, merged, func(s *Snapshot) []string { return sortedKeys(s.Progress) })
	if len(progNames) > 0 {
		done := e.family("progress_done", "")
		e.head(done, "obs progress (work units completed)", "gauge")
		total := e.family("progress_total_units", "")
		e.head(total, "obs progress (work units planned)", "gauge")
		for _, name := range progNames {
			for _, node := range order {
				if p, ok := merged[node].Progress[name]; ok {
					e.series(done, nodeLabel(node, promLabel{"task", name}), fmt.Sprintf("%d", p.Done))
					e.series(total, nodeLabel(node, promLabel{"task", name}), fmt.Sprintf("%d", p.Total))
				}
			}
		}
	}
	spanAgg := map[string]map[string]int64{} // node → span name → total ns
	for _, node := range order {
		if len(merged[node].Spans) == 0 {
			continue
		}
		agg := map[string]int64{}
		var walk func(sp SpanSnapshot)
		walk = func(sp SpanSnapshot) {
			agg[sp.Name] += sp.DurNS
			for _, c := range sp.Children {
				walk(c)
			}
		}
		for _, r := range merged[node].Spans {
			walk(r)
		}
		spanAgg[node] = agg
	}
	if len(spanAgg) > 0 {
		fam := e.family("span_seconds", "")
		e.head(fam, "cumulative span duration by name", "gauge")
		names := map[string]bool{}
		for _, agg := range spanAgg {
			for name := range agg {
				names[name] = true
			}
		}
		for _, name := range sortedKeys(names) {
			for _, node := range order {
				if ns, ok := spanAgg[node][name]; ok {
					e.series(fam, nodeLabel(node, promLabel{"span", name}), fmt.Sprintf("%.9f", float64(ns)/1e9))
				}
			}
		}
	}
	return e.err
}

// unionKeys collects the sorted union of one instrument registry's names
// across every node.
func unionKeys(order []string, merged map[string]*Snapshot, keys func(*Snapshot) []string) []string {
	set := map[string]bool{}
	for _, node := range order {
		for _, k := range keys(merged[node]) {
			set[k] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	return sortedKeys(set)
}
