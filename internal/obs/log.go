package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"
)

// Events is the structured event log of one run: phase boundaries,
// worker lifecycle, and anomalies, emitted through a caller-supplied
// *slog.Logger (typically a JSON handler) with the run ID attached to
// every record. It complements the tracer — spans measure, events
// narrate — and follows the same contract: a nil *Events is disabled,
// every method on it is a nil-check no-op with fixed (non-variadic)
// arguments, so the disabled path performs zero allocations and the
// released output is byte-identical with logging on or off.
type Events struct {
	l *slog.Logger
}

// NewEvents wraps the logger with the run ID baked into every record.
// A nil logger yields a nil (disabled) Events.
func NewEvents(l *slog.Logger, runID string) *Events {
	if l == nil {
		return nil
	}
	return &Events{l: l.With(slog.String("run_id", runID))}
}

// runSeq disambiguates run IDs minted in the same process.
var runSeq atomic.Int64

// NewRunID mints a short unique run identifier: 6 random bytes hex,
// falling back to a time+sequence form if the system randomness source
// fails. Run IDs label telemetry only — they never influence results.
func NewRunID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%x-%d", time.Now().UnixNano(), runSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// RunStart records the run's shape: algorithm, rows, columns, k.
func (e *Events) RunStart(algo string, n, m, k int) {
	if e == nil {
		return
	}
	e.l.LogAttrs(context.Background(), slog.LevelInfo, "run_start",
		slog.String("algo", algo), slog.Int("n", n), slog.Int("m", m), slog.Int("k", k))
}

// RunDone records the run's outcome and total wall time.
func (e *Events) RunDone(cost int, d time.Duration) {
	if e == nil {
		return
	}
	e.l.LogAttrs(context.Background(), slog.LevelInfo, "run_done",
		slog.Int("cost", cost), slog.Duration("wall", d))
}

// RunError records a failed run.
func (e *Events) RunError(err error) {
	if e == nil || err == nil {
		return
	}
	e.l.LogAttrs(context.Background(), slog.LevelError, "run_error",
		slog.String("error", err.Error()))
}

// PhaseStart marks a phase (matrix fill, cover, reduce, …) beginning.
func (e *Events) PhaseStart(phase string) {
	if e == nil {
		return
	}
	e.l.LogAttrs(context.Background(), slog.LevelInfo, "phase_start",
		slog.String("phase", phase))
}

// PhaseDone marks a phase finishing with its measured duration.
func (e *Events) PhaseDone(phase string, d time.Duration) {
	if e == nil {
		return
	}
	e.l.LogAttrs(context.Background(), slog.LevelInfo, "phase_done",
		slog.String("phase", phase), slog.Duration("wall", d))
}

// WorkerStart records a pool worker spinning up.
func (e *Events) WorkerStart(pool string, id int) {
	if e == nil {
		return
	}
	e.l.LogAttrs(context.Background(), slog.LevelDebug, "worker_start",
		slog.String("pool", pool), slog.Int("worker", id))
}

// WorkerDone records a pool worker exiting with its busy time.
func (e *Events) WorkerDone(pool string, id int, busy time.Duration) {
	if e == nil {
		return
	}
	e.l.LogAttrs(context.Background(), slog.LevelDebug, "worker_done",
		slog.String("pool", pool), slog.Int("worker", id), slog.Duration("busy", busy))
}

// Anomaly records an unusual-but-handled condition (matrix widening,
// oversize-group split fallbacks, block-size raises) with a magnitude.
func (e *Events) Anomaly(kind string, magnitude int64) {
	if e == nil {
		return
	}
	e.l.LogAttrs(context.Background(), slog.LevelWarn, "anomaly",
		slog.String("kind", kind), slog.Int64("magnitude", magnitude))
}

// Enabled reports whether events are being recorded — for callers that
// must do real work (formatting, hashing) before logging.
func (e *Events) Enabled() bool { return e != nil }
