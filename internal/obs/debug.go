package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// publishOnce guards the process-global expvar registration: expvar
// panics on duplicate names, and tests may start several servers.
var publishOnce sync.Once

// StartDebugServer serves the opt-in diagnostics endpoints on addr:
//
//	/debug/pprof/...  – net/http/pprof profiles (CPU, heap, goroutine, trace)
//	/debug/vars       – expvar (memstats, cmdline, kanon_obs)
//	/debug/obs        – the live tracer snapshot as JSON
//
// snap is polled on each request, so long-running bench sweeps can be
// inspected mid-run; it must be safe for concurrent calls (a Tracer's
// Snapshot method is). The server runs on its own mux — importing this
// package never touches http.DefaultServeMux — and is bound by the
// caller's -debug-addr flag only, never by default. The returned
// server's Addr field holds the resolved listen address; shut it down
// with Close.
func StartDebugServer(addr string, snap func() *Snapshot) (*http.Server, error) {
	publishOnce.Do(func() {
		expvar.Publish("kanon_obs", expvar.Func(func() any { return snap() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s := snap()
		if s == nil {
			s = &Snapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Addr:              ln.Addr().String(),
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
