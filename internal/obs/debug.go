package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// publishOnce guards the process-global expvar registration: expvar
// panics on duplicate names, and tests may start several servers.
var publishOnce sync.Once

// DebugMux builds the diagnostics handler tree served by
// StartDebugServer:
//
//	/debug/pprof/...  – net/http/pprof profiles (CPU, heap, goroutine, trace)
//	/debug/vars       – expvar (memstats, cmdline, kanon_obs)
//	/debug/obs        – the live tracer snapshot as JSON (spans, counters,
//	                    gauges, histograms, progress)
//	/metrics          – the snapshot in Prometheus text exposition format
//
// snap is polled on each request, so long-running bench sweeps can be
// inspected (or scraped) mid-run; it must be safe for concurrent calls
// (a Tracer's Snapshot method is). Exposed separately from the server
// so handler tests can drive it through httptest without binding a
// port.
func DebugMux(snap func() *Snapshot) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s := snap()
		if s == nil {
			s = &Snapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = snap().WritePrometheus(w, "kanon")
	})
	return mux
}

// StartDebugServer serves the DebugMux endpoints on addr. The server
// runs on its own mux — importing this package never touches
// http.DefaultServeMux — and is bound by the caller's -debug-addr flag
// only, never by default. The returned server's Addr field holds the
// resolved listen address; shut it down with Close.
func StartDebugServer(addr string, snap func() *Snapshot) (*http.Server, error) {
	publishOnce.Do(func() {
		expvar.Publish("kanon_obs", expvar.Func(func() any { return snap() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Addr:              ln.Addr().String(),
		Handler:           DebugMux(snap),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
