package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDebugMuxHandlers drives every diagnostics endpoint through
// httptest, no real port needed.
func TestDebugMuxHandlers(t *testing.T) {
	tr := New()
	root := tr.Start("run")
	root.Counter("hits").Add(7)
	root.Gauge("depth").Set(2)
	root.Histogram("lat").Observe(100)
	pr := root.Progress("work")
	pr.SetTotal(4)
	pr.Add(1)
	root.End()
	srv := httptest.NewServer(DebugMux(tr.Snapshot))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		return resp, string(body)
	}

	resp, body := get("/debug/obs")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/obs content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/obs not JSON: %v\n%s", err, body)
	}
	if snap.Counters["hits"] != 7 || snap.Histograms["lat"].Count != 1 || snap.Progress["work"].Total != 4 {
		t.Errorf("/debug/obs snapshot incomplete: %s", body)
	}

	resp, body = get("/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("/metrics content type = %q, want %q", ct, PromContentType)
	}
	if err := LintPrometheus([]byte(body)); err != nil {
		t.Errorf("/metrics lint: %v\n%s", err, body)
	}
	for _, want := range []string{"kanon_hits_total 7", "kanon_depth 2", "kanon_lat_bucket", `kanon_progress_done{task="work"} 1`} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	_, body = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing goroutine profile:\n%.200s", body)
	}
	_, body = get("/debug/pprof/cmdline")
	if body == "" {
		t.Error("pprof cmdline empty")
	}
	_, body = get("/debug/vars")
	if !strings.Contains(body, "memstats") {
		t.Errorf("expvar missing memstats:\n%.200s", body)
	}
}

// TestDebugMuxNilSnapshot: the handlers must not panic when the
// snapshot callback yields nil (tracer disabled).
func TestDebugMuxNilSnapshot(t *testing.T) {
	srv := httptest.NewServer(DebugMux(func() *Snapshot { return nil }))
	defer srv.Close()
	for _, path := range []string{"/debug/obs", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if path == "/debug/obs" && !strings.Contains(string(body), "{") {
			t.Errorf("nil snapshot /debug/obs body = %q", body)
		}
	}
}
