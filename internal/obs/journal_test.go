package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func journalFixture() []JournalEvent {
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	return []JournalEvent{
		{Event: EvSubmitted, TS: t0, Detail: "algo=ball k=3 rows=100"},
		{Event: EvClaimed, TS: t0.Add(time.Second), Node: "node-a", Fence: 1},
		{Event: EvPhaseStart, TS: t0.Add(time.Second), Node: "node-a", Phase: "anonymize"},
		{Event: EvCheckpointCommitted, TS: t0.Add(2 * time.Second), Node: "node-a", Detail: "block [0,64) cost=7"},
		{Event: EvLeaseExpired, TS: t0.Add(20 * time.Second), Node: "node-a", Fence: 1},
		{Event: EvLeaseStolen, TS: t0.Add(20 * time.Second), Node: "node-b", Fence: 2, Detail: "from node-a"},
		{Event: EvCheckpointResumed, TS: t0.Add(21 * time.Second), Node: "node-b", Detail: "block [0,64)"},
		{Event: EvSucceeded, TS: t0.Add(30 * time.Second), Node: "node-b", Fence: 2, Detail: "cost=11"},
	}
}

// encodeJournal spools the events; the fixture is valid by
// construction, so a failed encode is a test bug worth a panic (it is
// also used as a fuzz seed, outside any *testing.T).
func encodeJournal(events []JournalEvent) []byte {
	var buf bytes.Buffer
	for _, e := range events {
		line, err := EncodeJournalEvent(e)
		if err != nil {
			panic(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

func TestJournalRoundTrip(t *testing.T) {
	want := journalFixture()
	got, err := DecodeJournal(encodeJournal(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		w.V = JournalVersion // Encode stamps the version
		if got[i] != w {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], w)
		}
	}
}

func TestJournalDecodeEmpty(t *testing.T) {
	for _, b := range [][]byte{nil, {}, []byte("\n")} {
		events, err := DecodeJournal(b)
		if err != nil {
			t.Fatalf("decode %q: %v", b, err)
		}
		if len(events) != 0 {
			t.Fatalf("decode %q: got %d events, want 0", b, len(events))
		}
	}
}

// A torn final line — truncated mid-record by a crash — is skipped,
// never trusted, and every complete line before it survives.
func TestJournalTornTailSkipped(t *testing.T) {
	full := encodeJournal(journalFixture())
	complete := journalFixture()

	// Chop the final line at every possible byte boundary, including
	// "newline present but JSON invalid" (cut inside the line) and
	// "valid JSON but no terminating newline" (cut the last byte).
	lastStart := bytes.LastIndexByte(full[:len(full)-1], '\n') + 1
	for cut := lastStart; cut < len(full); cut++ {
		events, err := DecodeJournal(full[:cut])
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(events) != len(complete)-1 {
			t.Fatalf("cut at %d: got %d events, want %d", cut, len(events), len(complete)-1)
		}
	}

	// A terminated-but-garbage tail is also a torn tail, not corruption:
	// the crash may have torn the line and a later append supplied the
	// newline.
	b := append(append([]byte{}, full...), []byte("{\"v\":\"kanon-events/1\",\"event\":\"bogus\n")...)
	events, err := DecodeJournal(b)
	if err != nil {
		t.Fatalf("garbage tail: %v", err)
	}
	if len(events) != len(complete) {
		t.Fatalf("garbage tail: got %d events, want %d", len(events), len(complete))
	}
}

// An invalid interior line is corruption, not a torn tail: the decoder
// must refuse rather than silently dropping history.
func TestJournalInteriorCorruptionErrors(t *testing.T) {
	full := encodeJournal(journalFixture())
	mid := bytes.IndexByte(full, '\n') + 1
	corrupt := append([]byte{}, full[:mid]...)
	corrupt = append(corrupt, []byte("not json\n")...)
	corrupt = append(corrupt, full[mid:]...)
	if _, err := DecodeJournal(corrupt); err == nil {
		t.Fatal("decoder accepted an invalid interior line")
	}
}

func TestJournalEventValidation(t *testing.T) {
	ts := time.Now()
	cases := []struct {
		name string
		e    JournalEvent
	}{
		{"unknown event", JournalEvent{Event: "rebooted", TS: ts}},
		{"missing timestamp", JournalEvent{Event: EvClaimed}},
		{"bad node leading dash", JournalEvent{Event: EvClaimed, TS: ts, Node: "-node"}},
		{"bad node slash", JournalEvent{Event: EvClaimed, TS: ts, Node: "a/b"}},
		{"node too long", JournalEvent{Event: EvClaimed, TS: ts, Node: strings.Repeat("x", 65)}},
	}
	for _, tc := range cases {
		if _, err := EncodeJournalEvent(tc.e); err == nil {
			t.Errorf("%s: encode accepted %+v", tc.name, tc.e)
		}
	}
	// The decoder applies the same validation per line.
	line := `{"v":"kanon-events/0","ts":"2026-08-07T12:00:00Z","event":"claimed"}` + "\n"
	pad, err := EncodeJournalEvent(JournalEvent{Event: EvClaimed, TS: ts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeJournal(append([]byte(line), pad...)); err == nil {
		t.Error("decoder accepted a wrong-version interior line")
	}
}

func TestJournalRecordStampsNodeAndTime(t *testing.T) {
	var lines [][]byte
	j := NewJournal("node-a", func(line []byte) error {
		lines = append(lines, append([]byte{}, line...))
		return nil
	}, nil)
	j.Record(JournalEvent{Event: EvClaimed, Fence: 3})
	j.Record(JournalEvent{Event: EvLeaseStolen, Node: "node-b"})
	events, err := DecodeJournal(bytes.Join(lines, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Node != "node-a" || events[0].TS.IsZero() || events[0].Fence != 3 {
		t.Errorf("stamped event wrong: %+v", events[0])
	}
	if events[1].Node != "node-b" {
		t.Errorf("explicit node overridden: %+v", events[1])
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(JournalEvent{Event: EvClaimed}) // must not panic
	if NewJournal("n", nil, nil) != nil {
		t.Fatal("NewJournal with nil sink should be nil (disabled)")
	}
}

func TestJournalSinkErrorGoesToOnErr(t *testing.T) {
	sinkErr := errors.New("disk full")
	var got error
	j := NewJournal("n", func([]byte) error { return sinkErr }, func(err error) { got = err })
	j.Record(JournalEvent{Event: EvClaimed})
	if !errors.Is(got, sinkErr) {
		t.Fatalf("onErr got %v, want %v", got, sinkErr)
	}
}

// FuzzJobJournal drives the strict decoder with arbitrary bytes: it
// must never panic, must round-trip whatever it accepts, and must
// preserve a valid prefix when a torn tail follows it.
func FuzzJobJournal(f *testing.F) {
	f.Add([]byte(""))
	f.Add(encodeJournal(journalFixture()))
	f.Add([]byte(`{"v":"kanon-events/1","ts":"2026-08-07T12:00:00Z","event":"claimed","node":"a"}` + "\n"))
	f.Add([]byte("{\"v\":\"kanon-events/1\",\"ts\":\"2026-08-07T12:00:00Z\",\"event\":\"succe"))
	f.Add([]byte("not json\nmore garbage"))
	f.Fuzz(func(t *testing.T, b []byte) {
		events, err := DecodeJournal(b)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same events.
		var buf bytes.Buffer
		for _, e := range events {
			line, err := EncodeJournalEvent(e)
			if err != nil {
				t.Fatalf("accepted event does not re-encode: %+v: %v", e, err)
			}
			buf.Write(line)
		}
		again, err := DecodeJournal(buf.Bytes())
		if err != nil {
			t.Fatalf("re-encoded journal does not decode: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip lost events: %d → %d", len(events), len(again))
		}
		for i := range events {
			if !again[i].TS.Equal(events[i].TS) {
				t.Fatalf("event %d timestamp drifted: %v → %v", i, events[i].TS, again[i].TS)
			}
			a, b := again[i], events[i]
			a.TS, b.TS = time.Time{}, time.Time{}
			if a != b {
				t.Fatalf("event %d mutated in round trip: %+v → %+v", i, events[i], again[i])
			}
		}
		// A torn tail appended to a valid spool must not disturb the
		// prefix.
		torn := append(buf.Bytes(), []byte(`{"v":"kanon-events/1","ts":"2026-`)...)
		prefix, err := DecodeJournal(torn)
		if err != nil {
			t.Fatalf("valid spool + torn tail errored: %v", err)
		}
		if len(prefix) != len(events) {
			t.Fatalf("torn tail disturbed the prefix: %d → %d", len(events), len(prefix))
		}
	})
}
