package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of every Histogram: bucket i
// holds the observations whose value has bit length i, i.e. values in
// [2^(i−1), 2^i − 1] (bucket 0 holds values ≤ 0). The log-2 scale
// spans the full nonnegative int64 range with no configuration, so
// histograms recorded by different workers — or different runs — are
// always mergeable bucket-for-bucket.
const histBuckets = 64

// Histogram is a fixed-bucket log-scaled distribution instrument:
// nanosecond latencies, ball radii, cover sizes, search depths. All
// cells are atomic, so one histogram may be fed by many workers without
// locking, and two histograms (or their snapshots) merge by addition.
// A nil *Histogram is disabled: Observe is a nil-check no-op and the
// stat accessors report zeros, pinning the same zero-allocation
// contract as Counter and Gauge.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero (the
// instruments record counts, sizes, and durations, all nonnegative).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// ObserveDuration records a duration in integer nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations (0 on a disabled histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a disabled histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// stat freezes the histogram into its serializable form, keeping only
// occupied buckets.
func (h *Histogram) stat() HistogramStat {
	st := HistogramStat{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		st.Buckets = append(st.Buckets, HistogramBucket{Le: bucketBound(i), Count: c})
	}
	return st
}

// bucketBound returns bucket i's inclusive upper bound: 2^i − 1 (0 for
// bucket 0, MaxInt64 for the top bucket).
func bucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// HistogramBucket is one occupied bucket of a frozen histogram: the
// inclusive upper bound and the count of observations that landed in
// this bucket (per-bucket, not cumulative; the Prometheus writer
// accumulates).
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramStat is a frozen histogram. Buckets are sorted by upper
// bound and omit empty buckets, so the JSON form is compact and
// deterministic for a given state.
type HistogramStat struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistogramStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile of the recorded
// distribution: the upper bound of the bucket containing the ⌈q·count⌉-th
// observation. q outside (0, 1] clamps; returns 0 when empty.
func (s HistogramStat) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// Merge adds other's observations into s (bucket-wise; both sides use
// the same fixed bucket bounds by construction).
func (s *HistogramStat) Merge(other HistogramStat) {
	s.Count += other.Count
	s.Sum += other.Sum
	if len(other.Buckets) == 0 {
		return
	}
	merged := make([]HistogramBucket, 0, len(s.Buckets)+len(other.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(other.Buckets) {
		switch {
		case j == len(other.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Le < other.Buckets[j].Le):
			merged = append(merged, s.Buckets[i])
			i++
		case i == len(s.Buckets) || other.Buckets[j].Le < s.Buckets[i].Le:
			merged = append(merged, other.Buckets[j])
			j++
		default:
			merged = append(merged, HistogramBucket{Le: s.Buckets[i].Le, Count: s.Buckets[i].Count + other.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
}

// Histogram returns the named histogram, creating it on first use; nil
// (a disabled histogram) on a nil tracer. Same hoisting advice as
// Counter: look up once, Observe in the loop.
func (t *Tracer) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.histograms == nil {
		t.histograms = make(map[string]*Histogram)
	}
	h := t.histograms[name]
	if h == nil {
		h = &Histogram{}
		t.histograms[name] = h
	}
	return h
}

// Histogram is shorthand for s.Tracer().Histogram(name); nil-safe.
func (s *Span) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.tr.Histogram(name)
}
