package obs

import (
	"strings"
	"testing"
	"time"
)

// promSnapshot builds a snapshot exercising every family kind.
func promSnapshot() *Snapshot {
	tr := New()
	root := tr.Start("run")
	root.Counter("cover.sets_picked").Add(12)
	root.Gauge("stream.queue_depth").Set(3)
	h := root.Histogram("stream.block_ns")
	h.Observe(100)
	h.Observe(100)
	h.Observe(5000)
	p := root.Progress("stream.blocks")
	p.SetTotal(8)
	p.Add(5)
	root.End()
	return tr.Snapshot()
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := promSnapshot().WritePrometheus(&b, "kanon"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := LintPrometheus([]byte(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE kanon_cover_sets_picked_total counter",
		"kanon_cover_sets_picked_total 12",
		"# TYPE kanon_stream_queue_depth gauge",
		"kanon_stream_queue_depth 3",
		"kanon_stream_queue_depth_max 3",
		"# TYPE kanon_stream_block_ns histogram",
		`kanon_stream_block_ns_bucket{le="127"} 2`,
		`kanon_stream_block_ns_bucket{le="8191"} 3`,
		`kanon_stream_block_ns_bucket{le="+Inf"} 3`,
		"kanon_stream_block_ns_sum 5200",
		"kanon_stream_block_ns_count 3",
		`kanon_progress_done{task="stream.blocks"} 5`,
		`kanon_progress_total_units{task="stream.blocks"} 8`,
		`kanon_span_seconds{span="run"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic output for a fixed snapshot.
	var b2 strings.Builder
	snap := promSnapshot()
	_ = snap.WritePrometheus(&b2, "kanon")
	var b3 strings.Builder
	_ = snap.WritePrometheus(&b3, "kanon")
	if b2.String() != b3.String() {
		t.Error("exposition not deterministic for the same snapshot")
	}
}

func TestWritePrometheusNilAndEmpty(t *testing.T) {
	var b strings.Builder
	if err := (*Snapshot)(nil).WritePrometheus(&b, ""); err != nil || b.Len() != 0 {
		t.Errorf("nil snapshot wrote %q, err %v", b.String(), err)
	}
	if err := (&Snapshot{}).WritePrometheus(&b, ""); err != nil || b.Len() != 0 {
		t.Errorf("empty snapshot wrote %q, err %v", b.String(), err)
	}
}

// TestPromNameCollisions: distinct raw names sanitizing to the same
// family, and raw names that collide with histogram-derived series
// names, must still produce a lintable exposition (via _dupN suffixes).
func TestPromNameCollisions(t *testing.T) {
	snap := &Snapshot{
		Counters: map[string]int64{
			"a.b":           1,
			"a_b":           2,
			"h_count":       3, // collides with histogram h's _count series
			"":              4, // sanitizes to "x"
			"9lives":        5,
			"progress_done": 6, // collides with the synthetic progress family
		},
		Histograms: map[string]HistogramStat{
			"h": {Count: 1, Sum: 1, Buckets: []HistogramBucket{{Le: 1, Count: 1}}},
		},
		Progress: map[string]ProgressStat{"p": {Done: 1, Total: 2}},
	}
	var b strings.Builder
	if err := snap.WritePrometheus(&b, "kanon"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := LintPrometheus([]byte(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	if !strings.Contains(out, "_dup2") {
		t.Errorf("colliding names did not get a dedup suffix:\n%s", out)
	}
	// Both colliding counters kept their values.
	for _, want := range []string{" 1\n", " 2\n", " 3\n", " 4\n", " 5\n", " 6\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("a colliding counter's value %q was dropped:\n%s", strings.TrimSpace(want), out)
		}
	}
}

func TestPromLabelEscaping(t *testing.T) {
	snap := &Snapshot{
		Progress: map[string]ProgressStat{
			"blk[0,512)":    {Done: 1, Total: 2},
			"quo\"te\\back": {Done: 3, Total: 4},
			"new\nline":     {Done: 5, Total: 6},
		},
	}
	var b strings.Builder
	if err := snap.WritePrometheus(&b, "kanon"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := LintPrometheus([]byte(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		`task="blk[0,512)"`,
		`task="quo\"te\\back"`,
		`task="new\nline"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("escaped label %q missing:\n%s", want, out)
		}
	}
}

func TestPromSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"cover.sets_picked": "cover_sets_picked",
		"blk[0,512)":        "blk_0_512_",
		"ok_name9":          "ok_name9",
		"":                  "x",
		"héllo":             "h__llo", // é is two UTF-8 bytes
	} {
		if got := promSanitize(in); got != want {
			t.Errorf("promSanitize(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promSanitizeLabelName("9a"); got != "_9a" {
		t.Errorf("promSanitizeLabelName(9a) = %q, want _9a", got)
	}
}

func TestLintPrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"series without HELP/TYPE": "orphan_metric 1\n",
		"TYPE without HELP":        "# TYPE m counter\nm 1\n",
		"unknown TYPE":             "# HELP m h\n# TYPE m widget\nm 1\n",
		"duplicate TYPE":           "# HELP m h\n# TYPE m counter\n# TYPE m counter\nm 1\n",
		"duplicate HELP":           "# HELP m h\n# HELP m h\n# TYPE m counter\nm 1\n",
		"illegal metric name":      "# HELP 9m h\n# TYPE 9m counter\n9m 1\n",
		"malformed series line":    "# HELP m h\n# TYPE m counter\nm{x=unquoted} 1\n",
		"raw newline in label":     "# HELP m h\n# TYPE m gauge\nm{x=\"a\nb\"} 1\n",
		"histogram missing +Inf":   "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"1\"} 1\nm_count 1\nm_sum 1\n",
		"histogram not cumulative": "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"1\"} 5\nm_bucket{le=\"3\"} 2\nm_bucket{le=\"+Inf\"} 5\nm_count 5\nm_sum 9\n",
		"+Inf != count":            "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"+Inf\"} 5\nm_count 4\nm_sum 9\n",
	}
	for name, text := range cases {
		if err := LintPrometheus([]byte(text)); err == nil {
			t.Errorf("%s: lint accepted\n%s", name, text)
		}
	}
	good := "# a comment\n# HELP m h\n# TYPE m histogram\nm_bucket{le=\"1\"} 2\nm_bucket{le=\"+Inf\"} 5\nm_sum 9\nm_count 5\n"
	if err := LintPrometheus([]byte(good)); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}

// TestSpanSecondsAggregation: repeated span names aggregate into one
// labeled series rather than duplicate series lines.
func TestSpanSecondsAggregation(t *testing.T) {
	snap := &Snapshot{Spans: []SpanSnapshot{{
		Name: "run", DurNS: int64(2 * time.Second),
		Children: []SpanSnapshot{
			{Name: "block", DurNS: int64(time.Second)},
			{Name: "block", DurNS: int64(time.Second) / 2},
		},
	}}}
	var b strings.Builder
	if err := snap.WritePrometheus(&b, "kanon"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := LintPrometheus([]byte(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	if got := strings.Count(out, `span="block"`); got != 1 {
		t.Errorf("span=block series appears %d times, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, `kanon_span_seconds{span="block"} 1.500000000`) {
		t.Errorf("block spans not summed:\n%s", out)
	}
}
