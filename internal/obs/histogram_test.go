package obs

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	tr := New()
	h := tr.Histogram("lat")
	vals := []int64{0, 1, 2, 3, 4, 100, 1 << 40, math.MaxInt64, -7}
	var wantSum int64 // runtime sum so the MaxInt64 overflow wraps like the instrument's
	for _, v := range vals {
		h.Observe(v)
		if v > 0 {
			wantSum += v
		}
	}
	st := h.stat()
	if st.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", st.Count, len(vals))
	}
	if st.Sum != wantSum {
		t.Errorf("sum = %d, want %d", st.Sum, wantSum)
	}
	// Bucket membership: value v lands in the bucket whose inclusive
	// upper bound is the smallest 2^i − 1 ≥ v.
	byLe := map[int64]int64{}
	for _, b := range st.Buckets {
		byLe[b.Le] = b.Count
	}
	for le, want := range map[int64]int64{
		0:             2, // 0 and the clamped −7
		1:             1,
		3:             2, // 2, 3
		7:             1, // 4
		127:           1, // 100
		1<<41 - 1:     1, // 2^40
		math.MaxInt64: 1,
	} {
		if byLe[le] != want {
			t.Errorf("bucket le=%d count = %d, want %d (buckets %+v)", le, byLe[le], want, st.Buckets)
		}
	}
	// Buckets are sorted and non-empty only.
	for i, b := range st.Buckets {
		if b.Count == 0 {
			t.Errorf("empty bucket emitted: %+v", b)
		}
		if i > 0 && st.Buckets[i-1].Le >= b.Le {
			t.Errorf("buckets not sorted: %+v", st.Buckets)
		}
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket le=15
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket le=1023
	}
	st := h.stat()
	if got := st.Quantile(0.5); got != 15 {
		t.Errorf("p50 = %d, want 15", got)
	}
	if got := st.Quantile(0.99); got != 1023 {
		t.Errorf("p99 = %d, want 1023", got)
	}
	if got := st.Quantile(2); got != 1023 {
		t.Errorf("clamped q=2 = %d, want 1023", got)
	}
	wantMean := (90*10.0 + 10*1000.0) / 100
	if got := st.Mean(); math.Abs(got-wantMean) > 1e-9 {
		t.Errorf("mean = %f, want %f", got, wantMean)
	}
	if (HistogramStat{}).Quantile(0.5) != 0 || (HistogramStat{}).Mean() != 0 {
		t.Error("empty stat quantile/mean nonzero")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// under -race this is the data-race proof for the mergeable-across-
// workers claim.
func TestHistogramConcurrent(t *testing.T) {
	tr := New()
	h := tr.Histogram("h")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
	total := int64(0)
	for _, b := range h.stat().Buckets {
		total += b.Count
	}
	if total != workers*per {
		t.Errorf("bucket total = %d, want %d", total, workers*per)
	}
	if tr.Histogram("h") != h {
		t.Error("Histogram(name) not idempotent")
	}
}

func TestHistogramStatMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	a.Observe(100)
	b.Observe(100)
	b.Observe(1 << 20)
	sa, sb := a.stat(), b.stat()
	sa.Merge(sb)
	if sa.Count != 4 || sa.Sum != 1+100+100+(1<<20) {
		t.Errorf("merged count/sum = %d/%d", sa.Count, sa.Sum)
	}
	byLe := map[int64]int64{}
	for _, bk := range sa.Buckets {
		byLe[bk.Le] = bk.Count
	}
	if byLe[1] != 1 || byLe[127] != 2 || byLe[1<<21-1] != 1 {
		t.Errorf("merged buckets = %+v", sa.Buckets)
	}
	// Merge into the zero value adopts other's buckets.
	var zero HistogramStat
	zero.Merge(sb)
	if !reflect.DeepEqual(zero, sb) {
		t.Errorf("merge into zero = %+v, want %+v", zero, sb)
	}
}

func TestProgressStat(t *testing.T) {
	tr := New()
	p := tr.Progress("blocks")
	p.SetTotal(10)
	p.Add(1)
	time.Sleep(2 * time.Millisecond)
	p.Add(3)
	snap := tr.Snapshot()
	ps, ok := snap.Progress["blocks"]
	if !ok {
		t.Fatal("progress missing from snapshot")
	}
	if ps.Done != 4 || ps.Total != 10 {
		t.Errorf("progress = %d/%d, want 4/10", ps.Done, ps.Total)
	}
	if ps.ElapsedNS < int64(2*time.Millisecond) {
		t.Errorf("elapsed = %d, want ≥ 2ms", ps.ElapsedNS)
	}
	if f := ps.Fraction(); f != 0.4 {
		t.Errorf("fraction = %f, want 0.4", f)
	}
	if ps.ETA() <= 0 {
		t.Error("ETA not positive mid-run")
	}
	fin := ProgressStat{Done: 10, Total: 10, ElapsedNS: 100}
	if fin.ETA() != 0 {
		t.Error("ETA nonzero when complete")
	}
	over := ProgressStat{Done: 20, Total: 10}
	if over.Fraction() != 1 {
		t.Error("fraction not clamped to 1")
	}
	if tr.Progress("blocks") != p {
		t.Error("Progress(name) not idempotent")
	}
}

func TestProgressLine(t *testing.T) {
	snap := &Snapshot{Progress: map[string]ProgressStat{
		"stream.blocks": {Done: 3, Total: 12, ElapsedNS: int64(3 * time.Second)},
		"cover.covered": {Done: 50, Total: 100, ElapsedNS: int64(time.Second)},
		"untotaled":     {Done: 5},
	}}
	line := snap.ProgressLine()
	for _, want := range []string{"cover.covered 50/100 50%", "stream.blocks 3/12 25%", "eta"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %s", want, line)
		}
	}
	if strings.Contains(line, "untotaled") {
		t.Errorf("progress line includes total-less entry: %s", line)
	}
	if (*Snapshot)(nil).ProgressLine() != "" || (&Snapshot{}).ProgressLine() != "" {
		t.Error("empty snapshot produced progress line")
	}
}

// TestSnapshotRoundTripWithNewInstruments extends the JSON round-trip
// proof to histograms and progress.
func TestSnapshotRoundTripWithNewInstruments(t *testing.T) {
	tr := New()
	root := tr.Start("root")
	root.Histogram("h").Observe(42)
	root.Progress("p").SetTotal(3)
	root.Progress("p").Add(2)
	root.End()
	snap := tr.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*snap, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, *snap)
	}
}

// TestMergeNewInstruments covers Snapshot.Merge for histograms and
// progress.
func TestMergeNewInstruments(t *testing.T) {
	a := &Snapshot{
		Histograms: map[string]HistogramStat{"h": {Count: 1, Sum: 2, Buckets: []HistogramBucket{{Le: 3, Count: 1}}}},
		Progress:   map[string]ProgressStat{"p": {Done: 1, Total: 10, ElapsedNS: 5}},
	}
	b := &Snapshot{
		Histograms: map[string]HistogramStat{
			"h": {Count: 2, Sum: 8, Buckets: []HistogramBucket{{Le: 7, Count: 2}}},
			"g": {Count: 1, Sum: 1, Buckets: []HistogramBucket{{Le: 1, Count: 1}}},
		},
		Progress: map[string]ProgressStat{"p": {Done: 4, Total: 10, ElapsedNS: 9}, "q": {Done: 1, Total: 2}},
	}
	a.Merge(b)
	if h := a.Histograms["h"]; h.Count != 3 || h.Sum != 10 || len(h.Buckets) != 2 {
		t.Errorf("merged histogram = %+v", h)
	}
	if _, ok := a.Histograms["g"]; !ok {
		t.Error("merge dropped new histogram")
	}
	if p := a.Progress["p"]; p.Done != 4 || p.ElapsedNS != 9 {
		t.Errorf("merged progress = %+v", p)
	}
	if _, ok := a.Progress["q"]; !ok {
		t.Error("merge dropped new progress")
	}
	// Merge into empty allocates the maps.
	var c Snapshot
	c.Merge(b)
	if c.Histograms["g"].Count != 1 || c.Progress["q"].Done != 1 {
		t.Errorf("merge into empty = %+v", c)
	}
}
